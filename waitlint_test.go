package ldv

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"ldv/internal/obs"
)

// waitlintDirs are the packages with instrumented blocking points. The obs
// package itself is exempt: it defines WaitBegin.
var waitlintDirs = []string{
	"internal/engine",
	"internal/server",
}

// minWaitSites guards against the lint going vacuous: the engine and server
// instrument at least this many blocking points (table locks, the WAL
// group-commit flush, the replica read gate, the client read). Deleting an
// instrumentation site without updating the taxonomy should fail here.
const minWaitSites = 4

// TestWaitDiscipline is the wait lint run by `make check`. Two contracts:
//
// Every obs.WaitBegin call must assign its end function to a variable that is
// called via `defer <var>()` in the same function, so the wait is closed on
// every return path and a panic can never leave a session published as
// waiting forever. Waits that span only part of a function must be factored
// into a helper (see engine.lockSlow, server.readClient) — that is what
// keeps this check syntactic and total.
//
// Every wait event must carry a description, and both of its cumulative
// metrics must be registered with help text so they render as # HELP lines
// on /metrics.
func TestWaitDiscipline(t *testing.T) {
	sites := 0
	for _, dir := range waitlintDirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for path, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					n, problems := lintWaitFunc(fset, fd)
					sites += n
					for _, p := range problems {
						t.Errorf("%s: %s", filepath.Base(path), p)
					}
				}
			}
		}
	}
	if sites < minWaitSites {
		t.Errorf("found %d WaitBegin sites in %v, want at least %d — instrumentation removed?",
			sites, waitlintDirs, minWaitSites)
	}

	for _, ev := range obs.WaitEvents() {
		if ev.Name() == "" {
			t.Errorf("wait event %d has no name", ev)
		}
		if ev.Description() == "" {
			t.Errorf("wait event %s has no description", ev.Name())
		}
		for _, metric := range []string{ev.CountMetric(), ev.NSMetric()} {
			if d, ok := obs.Description(metric); !ok || d == "" {
				t.Errorf("wait event %s: metric %s has no registered description (# HELP would be missing)",
					ev.Name(), metric)
			}
		}
	}
}

// TestWaitLintCatchesViolations proves the lint bites: un-ended waits,
// discarded WaitBegin results, and non-deferred end calls are all reported,
// while the blessed `end := obs.WaitBegin(...); defer end()` shape is not.
func TestWaitLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name  string
		body  string
		sites int
		want  int
	}{
		{"deferred end ok", `end := obs.WaitBegin(ws, obs.WaitLockTable); defer end()`, 1, 0},
		{"no end", `end := obs.WaitBegin(ws, obs.WaitLockTable); _ = end`, 1, 1},
		{"non-deferred end", `end := obs.WaitBegin(ws, obs.WaitLockTable); end()`, 1, 1},
		{"discarded begin", `obs.WaitBegin(ws, obs.WaitLockTable)`, 1, 1},
		{"two leaks", `a := obs.WaitBegin(ws, e1); b := obs.WaitBegin(ws, e2); _, _ = a, b`, 2, 2},
	}
	for _, tc := range cases {
		src := "package p\nfunc f() {\n" + tc.body + "\n}\n"
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "x.go", src, 0)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		sites, got := lintWaitFunc(fset, f.Decls[0].(*ast.FuncDecl))
		if sites != tc.sites {
			t.Errorf("%s: %d sites (want %d)", tc.name, sites, tc.sites)
		}
		if len(got) != tc.want {
			t.Errorf("%s: %d problems (want %d): %v", tc.name, len(got), tc.want, got)
		}
	}
}

// lintWaitFunc checks one function — every WaitBegin call must be assigned
// to a variable, and every such variable must be invoked by a deferred call —
// returning the number of WaitBegin sites and one message per violation.
func lintWaitFunc(fset *token.FileSet, fd *ast.FuncDecl) (int, []string) {
	// Pass 1: end-function variables — LHS identifiers of assignments whose
	// RHS is a WaitBegin call. Remember call positions so pass 3 can spot
	// calls outside any assignment.
	endVars := map[string]token.Pos{}
	assigned := map[token.Pos]bool{}
	sites := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isWaitBegin(call) {
				continue
			}
			assigned[call.Pos()] = true
			if len(as.Lhs) == len(as.Rhs) {
				if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					endVars[id.Name] = as.Pos()
				}
			}
		}
		return true
	})

	// Pass 2: deferred invocations — defer <ident>().
	deferred := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		df, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if id, ok := df.Call.Fun.(*ast.Ident); ok {
			deferred[id.Name] = true
		}
		return true
	})

	var problems []string
	for name, pos := range endVars {
		if !deferred[name] {
			problems = append(problems, fmt.Sprintf(
				"%s: wait begun in %s (end func %q) has no `defer %s()`",
				position(fset, pos), fd.Name.Name, name, name))
		}
	}

	// Pass 3: WaitBegin calls outside any assignment leak their wait — the
	// session would be published as waiting until the next wait overwrites it.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isWaitBegin(call) {
			return true
		}
		sites++
		if !assigned[call.Pos()] {
			problems = append(problems, fmt.Sprintf(
				"%s: WaitBegin result discarded in %s — assign it and `defer <end>()`",
				position(fset, call.Pos()), fd.Name.Name))
		}
		return true
	})
	return sites, problems
}

// isWaitBegin reports whether a call is WaitBegin (as a selector, e.g.
// obs.WaitBegin).
func isWaitBegin(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "WaitBegin"
}
