module ldv

go 1.22
