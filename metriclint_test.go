package ldv

import (
	"fmt"
	"strings"
	"testing"

	"ldv/internal/obs"

	// Metric handles are package-level vars, so linking a package is what
	// registers its metrics. Pull in the metric-bearing packages the public
	// API does not already reach, so the lint below sees the full set.
	_ "ldv/internal/obs/log"
	_ "ldv/internal/repl"
	_ "ldv/internal/server"
	_ "ldv/internal/wire"
)

// histogramUnits are the unit tokens a histogram name must carry in one of
// its dot-segments (engine.exec_ns.select, wal.flush_ns, recovery.ns,
// engine.snapshot_age_ticks). The span.<name> duration family is exempt:
// its members are named after the span, and the family carries one
// prefix-registered description.
var histogramUnits = []string{"ns", "bytes", "ticks"}

// TestMetricDescriptions is the metric lint run by `make check`: every
// metric registered at init time must have a help string (obs.Describe,
// obs.DescribePrefix, or the obs.New* registration forms) — the ops
// /metrics endpoint renders these as Prometheus # HELP lines — and must
// follow the naming convention checked by lintMetricName. Dynamically named
// family members (wire.out.msgs.<Tag>, span.<name>) are covered by their
// prefix registrations, which this test exercises through the same
// obs.Description lookup the exporter uses.
func TestMetricDescriptions(t *testing.T) {
	s := obs.Default().Snapshot()
	total := 0
	check := func(name string, isHistogram bool) {
		total++
		for _, p := range lintMetricName(name, isHistogram) {
			t.Error(p)
		}
	}
	for name := range s.Counters {
		check(name, false)
	}
	for name := range s.Gauges {
		check(name, false)
	}
	for name := range s.Histograms {
		check(name, true)
	}
	// The engine, server, wire, repl, pack, auditor, and logging subsystems
	// all register metrics; an empty registry means the imports above went
	// stale and the lint is checking nothing.
	if total < 30 {
		t.Fatalf("only %d metrics registered — metric-bearing packages missing from this test's imports?", total)
	}
}

// TestMetricLintCatchesViolations proves the lint bites on undescribed and
// badly named metrics, and accepts the shapes the codebase uses.
func TestMetricLintCatchesViolations(t *testing.T) {
	obs.Describe("linttest.good.flush_ns", "described")
	obs.Describe("linttest.BadCase.x", "described")
	obs.Describe("linttest.no_unit", "described")
	obs.DescribePrefix("linttest.family.", "family")
	obs.Describe("wait.linttest_unitless", "described")
	cases := []struct {
		name        string
		isHistogram bool
		want        int
	}{
		{"linttest.good.flush_ns", true, 0},
		{"linttest.family.AnyTag", false, 0}, // prefix description, tag-cased leaf
		{"linttest.undescribed", false, 1},   // no Describe call
		{"linttest.BadCase.x", false, 1},     // uppercase outside the leaf segment
		{"linttest.no_unit", true, 1},        // histogram without a unit token
		{"span.client.query", true, 0},       // span family: unit rule exempt
		{"Linttest.undescribed", false, 2},   // bad first segment and undescribed
		{"wait.lock_table_ns", false, 0},     // wait family with a time unit
		{"wait.lock_table_count", false, 0},  // wait family with a count unit
		{"wait.linttest_unitless", false, 1}, // wait family without a unit
		// The time-travel families registered by the engine: the vacuum pass
		// histogram and horizon gauge carry unit suffixes (ns, ticks); plain
		// occurrence counters need none.
		{"vacuum.pass_ns", true, 0},
		{"vacuum.horizon_ticks", false, 0},
		{"asof.queries", false, 0},
		{"vacuum.linttest_pass", true, 2}, // undescribed histogram without a unit
	}
	for _, tc := range cases {
		got := lintMetricName(tc.name, tc.isHistogram)
		if len(got) != tc.want {
			t.Errorf("%s: %d problems (want %d): %v", tc.name, len(got), tc.want, got)
		}
	}
}

// lintMetricName checks one registered metric name, returning one message
// per violation. Convention: dotted lowercase_with_underscores segments,
// subsystem first ("engine.lock_wait_ns"); an uppercase letter is allowed
// only in the final segment, for families indexed by an exported identifier
// (wire.out.msgs.Query). Histograms must carry a unit token — a segment
// ending in ns, bytes, or ticks — except the span.<name> duration family.
func lintMetricName(name string, isHistogram bool) []string {
	var problems []string
	if _, ok := obs.Description(name); !ok {
		problems = append(problems, fmt.Sprintf(
			"metric %q has no description — register it with obs.NewCounter/NewGauge/NewHistogram or obs.Describe/DescribePrefix", name))
	}
	segs := strings.Split(name, ".")
	for i, seg := range segs {
		if seg == "" {
			problems = append(problems, fmt.Sprintf("metric %q has an empty name segment", name))
			continue
		}
		allowUpper := i == len(segs)-1 && i > 0
		for _, c := range seg {
			ok := c == '_' || (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
				(allowUpper && c >= 'A' && c <= 'Z')
			if !ok {
				problems = append(problems, fmt.Sprintf(
					"metric %q: segment %q violates the naming convention (lowercase_with_underscores; uppercase only in a family's final segment)", name, seg))
				break
			}
		}
	}
	if isHistogram && !strings.HasPrefix(name, "span.") {
		if !hasUnitToken(segs, histogramUnits) {
			problems = append(problems, fmt.Sprintf(
				"histogram %q has no unit token — name it with a segment ending in one of %v", name, histogramUnits))
		}
	}
	// The wait.* family carries explicit unit suffixes on every member —
	// counters included — so wait.lock_table_ns (time) and
	// wait.lock_table_count (occurrences) can never be confused when summed
	// or rated in a dashboard.
	if strings.HasPrefix(name, "wait.") {
		if !hasUnitToken(segs, waitUnits) {
			problems = append(problems, fmt.Sprintf(
				"wait-family metric %q has no unit token — name it with a segment ending in one of %v", name, waitUnits))
		}
	}
	return problems
}

// waitUnits are the unit tokens allowed on the wait.* metric family: the
// histogram units plus count (for the per-event occurrence counters).
var waitUnits = append([]string{"count"}, histogramUnits...)

// hasUnitToken reports whether any name segment is, or ends in, one of the
// unit tokens.
func hasUnitToken(segs, units []string) bool {
	for _, seg := range segs {
		for _, u := range units {
			if seg == u || strings.HasSuffix(seg, "_"+u) {
				return true
			}
		}
	}
	return false
}
