// Package ldv is the public API of the LDV (light-weight database
// virtualization) library — a from-scratch reproduction of "LDV:
// Light-weight Database Virtualization" (Pham, Malik, Glavic, Foster;
// ICDE 2015).
//
// LDV monitors the execution of an application that talks to a relational
// database, builds a combined OS+DB execution trace with temporal
// annotations, infers which database tuples the application's outputs
// depend on, and emits a self-contained re-executable package — either
// server-included (DBMS binary + the relevant tuple subset) or
// server-excluded (recorded query results replayed to the client library).
//
// The typical flow:
//
//	m, _ := ldv.NewMachine()               // simulated machine with a DB server
//	m.DB.ExecScript(ddlAndData, engine.ExecOptions{})
//	apps := []ldv.App{{Binary: "/bin/app", Libs: ldv.ClientLibs(), Prog: prog}}
//	aud, _ := ldv.Audit(m, apps)           // run under monitoring
//	pkg, _ := ldv.BuildServerIncluded(m, aud, apps)
//	replayed, _ := ldv.Replay(pkg, programs)
//
// Application programs are ordinary functions running on the simulated OS;
// they reach the database through ldv.Dial, which transparently adapts to
// plain, audited, or replayed execution.
//
// The heavy lifting lives in the internal packages: internal/engine (the
// provenance-enabled SQL engine), internal/osim (the simulated OS and
// ptrace-analog tracer), internal/prov and internal/deps (the provenance
// models and temporal dependency inference of the paper's §IV–§VI),
// internal/ldv (monitoring, packaging, replay), internal/tpch and
// internal/bench (the §IX evaluation).
package ldv

import (
	ildv "ldv/internal/ldv"
	"ldv/internal/osim"
	"ldv/internal/pack"
)

// Machine bundles a simulated kernel with an installed LDV database server.
type Machine = ildv.Machine

// App describes one application binary installed on a machine.
type App = ildv.App

// Auditor is the LDV monitor: syscall tracer plus client-library
// interceptor.
type Auditor = ildv.Auditor

// AuditOptions tune a monitored run.
type AuditOptions = ildv.AuditOptions

// Manifest describes a re-executable package.
type Manifest = ildv.Manifest

// ReplaySetup is a machine prepared from a package, ready to re-execute.
type ReplaySetup = ildv.ReplaySetup

// Archive is the package container (a virtual file tree with deterministic
// serialization).
type Archive = pack.Archive

// Program is the body of a simulated executable.
type Program = osim.Program

// Process is one simulated process; application programs receive theirs.
type Process = osim.Process

// Kernel is the simulated machine's OS.
type Kernel = osim.Kernel

// NewMachine boots a machine with standard libraries, a server binary, and
// an empty database.
func NewMachine() (*Machine, error) { return ildv.NewMachine() }

// ClientLibs lists the libraries a DB application links against.
func ClientLibs() []string { return ildv.ClientLibs() }

// ServerLibs lists the libraries the DB server links against.
func ServerLibs() []string { return ildv.ServerLibs() }

// Audit runs applications under full LDV monitoring (the ldv-audit entry
// point) and returns the auditor holding the combined execution trace.
func Audit(m *Machine, apps []App) (*Auditor, error) { return ildv.Audit(m, apps) }

// AuditWithOptions is Audit with explicit monitoring options.
func AuditWithOptions(m *Machine, apps []App, opts AuditOptions) (*Auditor, error) {
	return ildv.AuditWithOptions(m, apps, opts)
}

// Run executes applications without monitoring (the plain baseline).
func Run(m *Machine, apps []App) error { return ildv.Run(m, apps) }

// BuildServerIncluded assembles a server-included package: server binaries
// plus the relevant DB subset (§VII-D).
func BuildServerIncluded(m *Machine, aud *Auditor, apps []App) (*Archive, error) {
	return ildv.BuildServerIncluded(m, aud, apps)
}

// BuildServerExcluded assembles a server-excluded package: recorded query
// results replayed without any DBMS (§VII-D).
func BuildServerExcluded(m *Machine, aud *Auditor, apps []App) (*Archive, error) {
	return ildv.BuildServerExcluded(m, aud, apps)
}

// PrepareReplay extracts a package into a fresh machine (the ldv-exec
// initialization phase).
func PrepareReplay(arch *Archive, programs map[string]Program) (*ReplaySetup, error) {
	return ildv.PrepareReplay(arch, programs)
}

// Replay re-executes a package end to end and returns the machine for
// output inspection.
func Replay(arch *Archive, programs map[string]Program) (*Machine, error) {
	return ildv.Replay(arch, programs)
}

// Dial opens a DB session for an application process under the machine's
// ambient mode (plain, audited, or replayed).
func Dial(p *Process) (*Conn, error) { return ildv.Dial(p) }
