package ldv_test

import (
	"testing"

	"ldv"
)

// TestPublicAPIRoundTrip exercises the facade exactly as the README's
// library example does.
func TestPublicAPIRoundTrip(t *testing.T) {
	m, err := ldv.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.DB.ExecScript(
		`CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2), (3);`,
		ldv.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	app := ldv.App{
		Binary: "/bin/app",
		Libs:   ldv.ClientLibs(),
		Prog: func(p *ldv.Process) error {
			conn, err := ldv.Dial(p)
			if err != nil {
				return err
			}
			defer conn.Close()
			res, err := conn.Query("SELECT SUM(a) FROM t WHERE a > 1")
			if err != nil {
				return err
			}
			return p.WriteFile("/sum.txt", []byte(res.Rows[0][0].String()))
		},
	}
	apps := []ldv.App{app}

	aud, err := ldv.Audit(m, apps)
	if err != nil {
		t.Fatal(err)
	}
	if aud.RelevantTupleCount() != 2 {
		t.Fatalf("relevant = %d", aud.RelevantTupleCount())
	}

	for _, build := range []func(*ldv.Machine, *ldv.Auditor, []ldv.App) (*ldv.Archive, error){
		ldv.BuildServerIncluded, ldv.BuildServerExcluded,
	} {
		pkg, err := build(m, aud, apps)
		if err != nil {
			t.Fatal(err)
		}
		// Serialization survives the real-disk round trip.
		data := pkg.Marshal()
		back, err := ldv.UnmarshalArchive(data)
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := ldv.Replay(back, map[string]ldv.Program{app.Binary: app.Prog})
		if err != nil {
			t.Fatal(err)
		}
		got, err := replayed.Kernel.FS().ReadFile("/sum.txt")
		if err != nil || string(got) != "5" {
			t.Fatalf("replayed sum = %q, %v", got, err)
		}
	}

	// The PROV export add-on works through the facade.
	pkg, err := ldv.BuildServerIncluded(m, aud, apps)
	if err != nil {
		t.Fatal(err)
	}
	if err := ldv.AddPROVExport(pkg, aud); err != nil {
		t.Fatal(err)
	}
	if !pkg.Has("/ldv/trace.prov.json") {
		t.Fatal("PROV export missing")
	}

	// PrepareReplay gives the staged form.
	setup, err := ldv.PrepareReplay(pkg, map[string]ldv.Program{app.Binary: app.Prog})
	if err != nil {
		t.Fatal(err)
	}
	if setup.Manifest.Type != "server-included" {
		t.Fatalf("manifest type = %s", setup.Manifest.Type)
	}
	if err := setup.Run(); err != nil {
		t.Fatal(err)
	}

	// Plain (unmonitored) runs work through the facade too.
	m2, err := ldv.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.DB.ExecScript(`CREATE TABLE t (a INT); INSERT INTO t VALUES (9);`, ldv.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := ldv.Run(m2, apps); err != nil {
		t.Fatal(err)
	}

	// NewArchive/LoadArchive surface.
	a := ldv.NewArchive()
	a.Add("/x", []byte("y"))
	if a.TotalSize() != 1 {
		t.Fatal("archive facade broken")
	}
}
