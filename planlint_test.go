package ldv

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strings"
	"testing"
)

// planNodeMethods is the full operator surface a plan node must carry: the
// Explainable triple (EXPLAIN rendering), Children (tree walking), and
// Lineage (provenance classification). A node missing any of these either
// fails to satisfy plan.Node — caught at compile time only once something
// stores it as a Node — or silently drops out of EXPLAIN and lineage
// tracking when the executor type-switches past it.
var planNodeMethods = []string{"Op", "Detail", "EstRows", "Children", "Lineage"}

// lintPlanNodes checks every exported `...Node` struct in the parsed files
// against the required method set. The check is name-based, like the trace
// lint: a struct named SomethingNode that is not an operator should be
// renamed, not exempted.
func lintPlanNodes(files map[string]*ast.File) []string {
	nodes := map[string]bool{}
	methods := map[string]map[string]bool{}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() || !strings.HasSuffix(ts.Name.Name, "Node") {
						continue
					}
					if _, isStruct := ts.Type.(*ast.StructType); isStruct {
						nodes[ts.Name.Name] = true
					}
				}
			case *ast.FuncDecl:
				if d.Recv == nil || len(d.Recv.List) != 1 {
					continue
				}
				recv := d.Recv.List[0].Type
				if star, ok := recv.(*ast.StarExpr); ok {
					recv = star.X
				}
				id, ok := recv.(*ast.Ident)
				if !ok {
					continue
				}
				if methods[id.Name] == nil {
					methods[id.Name] = map[string]bool{}
				}
				methods[id.Name][d.Name.Name] = true
			}
		}
	}
	var problems []string
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, m := range planNodeMethods {
			if !methods[n][m] {
				problems = append(problems, fmt.Sprintf("plan node %s is missing method %s()", n, m))
			}
		}
	}
	if len(nodes) == 0 {
		problems = append(problems, "no plan node types found — package moved or lint gone stale?")
	}
	return problems
}

// TestPlanNodeSurface is the plan lint run by `make check`: every operator
// type in internal/plan implements the full explain + lineage surface.
func TestPlanNodeSurface(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, "internal/plan", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["plan"]
	if !ok {
		t.Fatal("package plan not found under internal/plan")
	}
	for _, p := range lintPlanNodes(pkg.Files) {
		t.Error(p)
	}
}

// TestPlanLintCatchesViolations proves the lint bites on an operator type
// with an incomplete method set.
func TestPlanLintCatchesViolations(t *testing.T) {
	src := `package plan
type GoodNode struct{}
func (n *GoodNode) Op() string           { return "good" }
func (n *GoodNode) Detail() string       { return "" }
func (n *GoodNode) EstRows() float64     { return 0 }
func (n *GoodNode) Children() []Node     { return nil }
func (n *GoodNode) Lineage() LineageMode { return 0 }
type BadNode struct{}
func (n *BadNode) Op() string { return "bad" }
type notANode struct{}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "synthetic.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	problems := lintPlanNodes(map[string]*ast.File{"synthetic.go": f})
	if len(problems) != len(planNodeMethods)-1 {
		t.Fatalf("problems = %v, want %d (BadNode missing all but Op)", problems, len(planNodeMethods)-1)
	}
	for _, p := range problems {
		if !strings.Contains(p, "BadNode") {
			t.Errorf("unexpected problem %q", p)
		}
	}
}
