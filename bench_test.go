// Benchmarks regenerating the paper's evaluation (§IX), one per table and
// figure. Absolute numbers depend on the host; the shapes — who wins, by
// roughly what factor, where crossovers fall — are the reproduction target
// (see EXPERIMENTS.md). Run with:
//
//	go test -bench=. -benchmem
//
// Larger, paper-proportioned runs: `go run ./cmd/ldv-bench -sf 0.02`.
package ldv_test

import (
	"io"
	"testing"

	"ldv/internal/baseline/vmi"
	"ldv/internal/bench"
	"ldv/internal/deps"
	"ldv/internal/engine"
	"ldv/internal/ldv"
	"ldv/internal/tpch"
)

// benchConfig is the benchmark scale: small enough for -bench=. to finish
// in minutes, large enough that data (not constant overheads) dominates.
func benchConfig() bench.Config {
	return bench.Config{SF: 0.001, Seed: 42, Inserts: 50, Selects: 4, Updates: 10}
}

func benchQuery(b *testing.B, id string) tpch.Query {
	b.Helper()
	q, err := tpch.QueryByID(benchConfig().TPCH(), id)
	if err != nil {
		b.Fatal(err)
	}
	return q
}

// ---- Figure 7a: audit time (whole workload, per system) ----

func benchmarkAudit(b *testing.B, sys bench.System) {
	cfg := benchConfig()
	q := benchQuery(b, "Q1-1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := bench.RunAudit(cfg, q, sys)
		if err != nil {
			b.Fatal(err)
		}
		if sys != bench.SysPlain && sys != bench.SysVM && out.Package == nil {
			b.Fatal("no package")
		}
	}
}

func BenchmarkFig7aAuditPlain(b *testing.B)          { benchmarkAudit(b, bench.SysPlain) }
func BenchmarkFig7aAuditPTU(b *testing.B)            { benchmarkAudit(b, bench.SysPTU) }
func BenchmarkFig7aAuditServerIncluded(b *testing.B) { benchmarkAudit(b, bench.SysSI) }
func BenchmarkFig7aAuditServerExcluded(b *testing.B) { benchmarkAudit(b, bench.SysSE) }

// ---- Figure 7b: replay time (whole workload, per system) ----

func benchmarkReplay(b *testing.B, sys bench.System) {
	cfg := benchConfig()
	q := benchQuery(b, "Q1-1")
	out, err := bench.RunAudit(cfg, q, sys)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunReplay(cfg, q, sys, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7bReplayPTU(b *testing.B)            { benchmarkReplay(b, bench.SysPTU) }
func BenchmarkFig7bReplayServerIncluded(b *testing.B) { benchmarkReplay(b, bench.SysSI) }
func BenchmarkFig7bReplayServerExcluded(b *testing.B) { benchmarkReplay(b, bench.SysSE) }
func BenchmarkFig7bReplayVM(b *testing.B)             { benchmarkReplay(b, bench.SysVM) }

// ---- Figure 8a: audit time per query family (select step only) ----

func benchmarkFig8a(b *testing.B, queryID string, sys bench.System) {
	cfg := benchConfig()
	cfg.Inserts, cfg.Updates = 0, 0
	q := benchQuery(b, queryID)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAudit(cfg, q, sys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8aQ1ServerIncluded(b *testing.B) { benchmarkFig8a(b, "Q1-2", bench.SysSI) }
func BenchmarkFig8aQ2ServerIncluded(b *testing.B) { benchmarkFig8a(b, "Q2-2", bench.SysSI) }
func BenchmarkFig8aQ3ServerIncluded(b *testing.B) { benchmarkFig8a(b, "Q3-2", bench.SysSI) }
func BenchmarkFig8aQ4ServerIncluded(b *testing.B) { benchmarkFig8a(b, "Q4-2", bench.SysSI) }
func BenchmarkFig8aQ1ServerExcluded(b *testing.B) { benchmarkFig8a(b, "Q1-2", bench.SysSE) }
func BenchmarkFig8aQ1PTU(b *testing.B)            { benchmarkFig8a(b, "Q1-2", bench.SysPTU) }

// ---- Figure 8b: replay time per query family ----

func benchmarkFig8b(b *testing.B, queryID string, sys bench.System) {
	cfg := benchConfig()
	cfg.Inserts, cfg.Updates = 0, 0
	q := benchQuery(b, queryID)
	out, err := bench.RunAudit(cfg, q, sys)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunReplay(cfg, q, sys, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8bQ1ServerIncluded(b *testing.B) { benchmarkFig8b(b, "Q1-2", bench.SysSI) }
func BenchmarkFig8bQ1ServerExcluded(b *testing.B) { benchmarkFig8b(b, "Q1-2", bench.SysSE) }
func BenchmarkFig8bQ3ServerExcluded(b *testing.B) { benchmarkFig8b(b, "Q3-2", bench.SysSE) }
func BenchmarkFig8bQ1VM(b *testing.B)             { benchmarkFig8b(b, "Q1-2", bench.SysVM) }

// ---- Figure 9: package construction, reporting sizes ----

func benchmarkFig9(b *testing.B, sys bench.System) {
	cfg := benchConfig()
	q := benchQuery(b, "Q1-2")
	var size int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := bench.RunAudit(cfg, q, sys)
		if err != nil {
			b.Fatal(err)
		}
		size = out.Package.TotalSize()
	}
	b.ReportMetric(float64(size)/(1<<20), "MB/package")
}

func BenchmarkFig9PackagePTU(b *testing.B)            { benchmarkFig9(b, bench.SysPTU) }
func BenchmarkFig9PackageServerIncluded(b *testing.B) { benchmarkFig9(b, bench.SysSI) }
func BenchmarkFig9PackageServerExcluded(b *testing.B) { benchmarkFig9(b, bench.SysSE) }

// ---- Table II: query execution against the generated data ----

func BenchmarkTable2Queries(b *testing.B) {
	cfg := benchConfig()
	db := engine.NewDB(nil)
	if _, err := tpch.Load(db, cfg.TPCH()); err != nil {
		b.Fatal(err)
	}
	queries := tpch.Queries(cfg.TPCH())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := db.Exec(q.SQL, engine.ExecOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Table III: package content inspection ----

func BenchmarkTable3(b *testing.B) {
	cfg := benchConfig()
	cfg.Inserts, cfg.Selects, cfg.Updates = 10, 2, 3
	for i := 0; i < b.N; i++ {
		if err := bench.Table3(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- §IX-F: VM image ----

func BenchmarkVMIBoot(b *testing.B) {
	m, err := ldv.NewMachine()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tpch.Load(m.DB, benchConfig().TPCH()); err != nil {
		b.Fatal(err)
	}
	if err := m.PersistData(); err != nil {
		b.Fatal(err)
	}
	img := vmi.BuildImage(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vmi.Boot(img)
	}
	b.ReportMetric(float64(img.TotalSize())/(1<<20), "MB/image")
}

// ---- Ablations (design choices from DESIGN.md) ----

// BenchmarkAblationTemporalPruning compares the cost of temporally
// restricted inference against naive reachability on an audited trace.
func BenchmarkAblationTemporalPruning(b *testing.B) {
	cfg := benchConfig()
	cfg.Inserts, cfg.Selects, cfg.Updates = 5, 2, 3
	q := benchQuery(b, "Q1-1")
	out, err := bench.RunAudit(cfg, q, bench.SysSI)
	if err != nil {
		b.Fatal(err)
	}
	_ = out
	m, err := bench.NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	aud, err := ldv.Audit(m, out.Apps)
	if err != nil {
		b.Fatal(err)
	}
	tr := aud.Trace()
	b.Run("temporal", func(b *testing.B) {
		inf := deps.NewDefaultInferencer(tr)
		for i := 0; i < b.N; i++ {
			_ = inf.All()
		}
	})
	b.Run("naive", func(b *testing.B) {
		inf := deps.NewDefaultInferencer(tr)
		inf.Naive = true
		for i := 0; i < b.N; i++ {
			_ = inf.All()
		}
	})
}

// BenchmarkAblationDedup compares audit with and without the §VII-D
// duplicate-suppression table.
func BenchmarkAblationDedup(b *testing.B) {
	cfg := benchConfig()
	q := benchQuery(b, "Q1-2")
	run := func(b *testing.B, disable bool) {
		var relevant int
		for i := 0; i < b.N; i++ {
			m, err := bench.NewMachine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var st bench.StepTimes
			app := bench.WorkloadApp(cfg, q, &st)
			aud, err := ldv.AuditWithOptions(m, []ldv.App{app},
				ldv.AuditOptions{CollectLineage: true, DisableDedup: disable})
			if err != nil {
				b.Fatal(err)
			}
			relevant = aud.RelevantTupleCount()
		}
		b.ReportMetric(float64(relevant), "tuples")
	}
	b.Run("dedup", func(b *testing.B) { run(b, false) })
	b.Run("nodedup", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationTableGranularity reports the package-size impact of
// tuple slicing vs whole-table copying.
func BenchmarkAblationTableGranularity(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := bench.AblationTableGranularity(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
