// Halofinder: the paper's running example (§I–§II). Alice's experiment has
// two processes — a loader that inserts observations parsed from a file,
// and a halo finder that joins observations against a catalog and writes
// candidates. Alice shares a server-excluded package with Bob, who replays
// it without any access to Alice's database server.
//
//	go run ./examples/halofinder
package main

import (
	"fmt"
	"log"
	"strings"

	"ldv"
	"ldv/internal/deps"
	ildv "ldv/internal/ldv"
)

const (
	loaderBin = "/home/alice/bin/loader"
	finderBin = "/home/alice/bin/halofinder"
	inputFile = "/home/alice/observations.csv"
	outFile   = "/home/alice/halos.txt"
)

func apps() []ldv.App {
	loader := ldv.App{
		Binary: loaderBin,
		Libs:   ldv.ClientLibs(),
		Prog: func(p *ldv.Process) error {
			data, err := p.ReadFile(inputFile)
			if err != nil {
				return err
			}
			conn, err := ldv.Dial(p)
			if err != nil {
				return err
			}
			defer conn.Close()
			for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
				f := strings.Split(line, ",")
				if len(f) != 3 {
					continue
				}
				sql := fmt.Sprintf("INSERT INTO observations VALUES (%s, %s, %s)", f[0], f[1], f[2])
				if _, err := conn.Exec(sql); err != nil {
					return err
				}
			}
			return nil
		},
	}
	finder := ldv.App{
		Binary: finderBin,
		Libs:   ldv.ClientLibs(),
		Prog: func(p *ldv.Process) error {
			conn, err := ldv.Dial(p)
			if err != nil {
				return err
			}
			defer conn.Close()
			res, err := conn.Query(`
				SELECT o.obs_id, r.name, o.mass FROM observations o, regions r
				WHERE o.region_id = r.region_id AND o.mass > 100 ORDER BY o.mass DESC`)
			if err != nil {
				return err
			}
			var sb strings.Builder
			sb.WriteString("dark matter halo candidates\n")
			for _, row := range res.Rows {
				fmt.Fprintf(&sb, "  obs %s in %s, mass %s\n", row[0], row[1], row[2])
			}
			return p.WriteFile(outFile, []byte(sb.String()))
		},
	}
	return []ldv.App{loader, finder}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Alice's machine: the SkyServer-like catalog is preloaded; her new
	// observations arrive in a CSV.
	m, err := ldv.NewMachine()
	if err != nil {
		return err
	}
	if _, err := m.DB.ExecScript(`
		CREATE TABLE regions (region_id INTEGER PRIMARY KEY, name TEXT);
		INSERT INTO regions VALUES (1, 'Ursa Major'), (2, 'Draco'), (3, 'Sculptor');
		CREATE TABLE observations (obs_id INTEGER PRIMARY KEY, region_id INTEGER, mass FLOAT);
		INSERT INTO observations VALUES (100, 1, 80.5), (101, 2, 240.0), (102, 3, 55.1);`,
		ldv.ExecOptions{}); err != nil {
		return err
	}
	if err := m.Kernel.FS().WriteFile(inputFile,
		[]byte("200,1,310.0\n201,3,95.0\n202,2,130.0\n")); err != nil {
		return err
	}

	theApps := apps()
	aud, err := ldv.Audit(m, theApps)
	if err != nil {
		return err
	}
	original, err := m.Kernel.FS().ReadFile(outFile)
	if err != nil {
		return err
	}
	fmt.Printf("Alice's run:\n%s\n", original)

	// Cross-model dependency queries over the combined execution trace
	// (§VI): the halo output depends on the observations CSV *through the
	// database* — file -> process -> insert -> tuple -> query -> result
	// tuple -> process -> file.
	inf := deps.NewDefaultInferencer(aud.Trace())
	fmt.Printf("halos.txt depends on observations.csv: %v\n",
		inf.DependsOn(ildv.FileNodeID(outFile), ildv.FileNodeID(inputFile)))
	fmt.Printf("halos.txt depends on the loader binary: %v\n",
		inf.DependsOn(ildv.FileNodeID(outFile), ildv.FileNodeID(loaderBin)))

	// Relevant DB subset: only catalog/observation tuples the queries used
	// and that the app did not create itself.
	fmt.Printf("relevant tuples packaged: %d\n\n", aud.RelevantTupleCount())

	// Alice cannot share the server (policy), so she builds a
	// server-excluded package for Bob.
	pkg, err := ldv.BuildServerExcluded(m, aud, theApps)
	if err != nil {
		return err
	}
	fmt.Printf("sharing a %0.2f MB server-excluded package with Bob (no DBMS, no DB content)\n",
		float64(pkg.TotalSize())/(1<<20))

	// Bob replays on his own machine: no server, the recorded responses are
	// substituted at the client library (§VIII).
	programs := map[string]ldv.Program{}
	for _, a := range theApps {
		programs[a.Binary] = a.Prog
	}
	bob, err := ldv.Replay(pkg, programs)
	if err != nil {
		return err
	}
	replayed, err := bob.Kernel.FS().ReadFile(outFile)
	if err != nil {
		return err
	}
	if string(replayed) == string(original) {
		fmt.Println("Bob's replay reproduced Alice's results exactly")
	} else {
		fmt.Println("REPLAY DIVERGED:")
		fmt.Println(string(replayed))
	}
	return nil
}
