// Replication demo: boot a primary and a read replica over real TCP in one
// process, route reads through the replica with read-your-writes, then
// promote the replica and write to it — the full failover round trip.
//
//	go run ./examples/replication
package main

import (
	"fmt"
	"log"
	"net"

	"ldv/internal/client"
	"ldv/internal/engine"
	"ldv/internal/obs"
	"ldv/internal/osim"
	"ldv/internal/repl"
	"ldv/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Primary: a WAL-backed database listening on a loopback port.
	pdb := engine.NewDB(nil)
	if err := pdb.EnableWAL(osim.NewFS(), "/wal"); err != nil {
		return err
	}
	if _, err := pdb.ExecScript(`
		CREATE TABLE readings (id INTEGER PRIMARY KEY, sensor TEXT, value FLOAT);
		INSERT INTO readings VALUES (1, 'alpha', 20.1), (2, 'beta', 19.7);`,
		engine.ExecOptions{}); err != nil {
		return err
	}
	psrv := server.New(pdb, nil)
	primary, err := repl.NewPrimary(pdb)
	if err != nil {
		return err
	}
	psrv.SetReplicationSource(primary)
	paddr, err := serve(psrv)
	if err != nil {
		return err
	}
	fmt.Println("primary listening on", paddr)

	// 2. Replica: bootstraps a snapshot from the primary over TCP, then
	// tails its WAL stream. The read gate holds bounded reads until the
	// apply loop catches up.
	rdb := engine.NewDB(nil)
	replica := repl.New(rdb, "demo-replica", func() (net.Conn, error) {
		return net.Dial("tcp", paddr)
	})
	rsrv := server.New(rdb, nil)
	rsrv.SetReadGate(replica)
	replica.Start()
	raddr, err := serve(rsrv)
	if err != nil {
		return err
	}
	if err := replica.WaitApplied(0); err != nil {
		return err
	}
	fmt.Println("replica bootstrapped, listening on", raddr)

	// 3. A routed client: writes go to the primary, SELECTs to the replica,
	// and read-your-writes guarantees each read sees the preceding write.
	conn, err := client.Dial(client.NetDialer{}, paddr, client.Options{
		Proc: "demo", ReadReplica: raddr, ReadYourWrites: true,
	})
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := conn.Exec("INSERT INTO readings VALUES (3, 'gamma', 21.4)"); err != nil {
		return err
	}
	res, err := conn.Query("SELECT id, sensor, value FROM readings ORDER BY id")
	if err != nil {
		return err
	}
	fmt.Printf("routed read served by the replica (write seq %d applied): %d rows\n",
		conn.LastCommitSeq(), len(res.Rows))
	for _, row := range res.Rows {
		fmt.Printf("  %v %v %v\n", row[0], row[1], row[2])
	}
	st := replica.ReplicationStatus()
	fmt.Printf("replica status: role=%v applied_seq=%v lag_records=%v\n",
		st["role"], st["applied_seq"], st["lag_records"])
	fmt.Printf("primary shipped %d records, %d bytes\n",
		obs.GetCounter("repl.records_shipped").Load(),
		obs.GetCounter("repl.bytes_shipped").Load())

	// 4. Failover: promote the replica and write to it directly.
	if err := replica.Promote(); err != nil {
		return err
	}
	pconn, err := client.Dial(client.NetDialer{}, raddr, client.Options{Proc: "demo2"})
	if err != nil {
		return err
	}
	defer pconn.Close()
	if _, err := pconn.Exec("INSERT INTO readings VALUES (4, 'delta', 18.9)"); err != nil {
		return err
	}
	res, err = pconn.Query("SELECT COUNT(*) FROM readings")
	if err != nil {
		return err
	}
	fmt.Printf("promoted replica accepted a write; it now holds %v rows\n", res.Rows[0][0])
	return nil
}

// serve starts accepting connections on an ephemeral loopback port.
func serve(s *server.Server) (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go s.HandleConn(c)
		}
	}()
	return l.Addr().String(), nil
}
