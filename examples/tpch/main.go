// TPC-H: the paper's §IX evaluation application at demo scale. Runs the
// insert/select/update workload for one Table II query under all three
// packaging systems, compares package sizes (a one-row slice of Figure 9),
// and verifies each package re-executes.
//
//	go run ./examples/tpch
package main

import (
	"fmt"
	"log"

	"ldv"
	"ldv/internal/baseline/ptu"
	ildv "ldv/internal/ldv"
	"ldv/internal/tpch"
)

const queryID = "Q1-2"

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func workloadApp(cfg tpch.Config) (ldv.App, error) {
	q, err := tpch.QueryByID(cfg, queryID)
	if err != nil {
		return ldv.App{}, err
	}
	return ldv.App{
		Binary: "/usr/bin/tpch-app",
		Libs:   ldv.ClientLibs(),
		Prog: func(p *ldv.Process) error {
			w := tpch.NewWorkload(cfg, q)
			w.NumInserts, w.NumSelects, w.NumUpdates = 100, 5, 25
			conn, err := ldv.Dial(p)
			if err != nil {
				return err
			}
			defer conn.Close()
			if err := w.InsertStep(conn); err != nil {
				return err
			}
			var rows int
			for i := 0; i < w.NumSelects; i++ {
				res, err := conn.Query(q.SQL)
				if err != nil {
					return err
				}
				rows = len(res.Rows)
			}
			if err := w.UpdateStep(conn); err != nil {
				return err
			}
			return p.WriteFile("/results/workload.out",
				[]byte(fmt.Sprintf("query %s returned %d rows\n", q.ID, rows)))
		},
	}, nil
}

func newMachine(cfg tpch.Config) (*ldv.Machine, error) {
	m, err := ldv.NewMachine()
	if err != nil {
		return nil, err
	}
	if _, err := tpch.Load(m.DB, cfg); err != nil {
		return nil, err
	}
	// The database exists on disk before any monitored run (§IX-A).
	if err := m.PersistData(); err != nil {
		return nil, err
	}
	return m, nil
}

func run() error {
	cfg := tpch.Config{SF: 0.002, Seed: 42}
	q, err := tpch.QueryByID(cfg, queryID)
	if err != nil {
		return err
	}
	fmt.Printf("TPC-H SF %g, workload query %s (PARAM=%s, selectivity %.1f%%)\n\n",
		cfg.SF, q.ID, q.Param, 100*q.Selectivity)

	app, err := workloadApp(cfg)
	if err != nil {
		return err
	}
	apps := []ldv.App{app}
	programs := map[string]ldv.Program{app.Binary: app.Prog}

	type row struct {
		name   string
		sizeMB float64
		note   string
	}
	var rows []row

	// PTU baseline: full DB in the package.
	{
		m, err := newMachine(cfg)
		if err != nil {
			return err
		}
		tr, err := ptu.Audit(m, apps)
		if err != nil {
			return err
		}
		pkg, err := ptu.BuildPackage(m, tr, apps)
		if err != nil {
			return err
		}
		if _, err := ptu.Replay(pkg, apps); err != nil {
			return fmt.Errorf("PTU replay: %w", err)
		}
		rows = append(rows, row{"PTU package", mb(pkg.TotalSize()), "full DB data files"})
	}

	// LDV server-included: relevant tuples only.
	{
		m, err := newMachine(cfg)
		if err != nil {
			return err
		}
		aud, err := ldv.Audit(m, apps)
		if err != nil {
			return err
		}
		pkg, err := ldv.BuildServerIncluded(m, aud, apps)
		if err != nil {
			return err
		}
		if _, err := ldv.Replay(pkg, programs); err != nil {
			return fmt.Errorf("server-included replay: %w", err)
		}
		rows = append(rows, row{"LDV server-included", mb(pkg.TotalSize()),
			fmt.Sprintf("%d relevant tuples, DBMS included", aud.RelevantTupleCount())})
	}

	// LDV server-excluded: recorded results only.
	{
		m, err := newMachine(cfg)
		if err != nil {
			return err
		}
		aud, err := ldv.AuditWithOptions(m, apps, ildv.AuditOptions{CollectLineage: false})
		if err != nil {
			return err
		}
		pkg, err := ldv.BuildServerExcluded(m, aud, apps)
		if err != nil {
			return err
		}
		if _, err := ldv.Replay(pkg, programs); err != nil {
			return fmt.Errorf("server-excluded replay: %w", err)
		}
		rows = append(rows, row{"LDV server-excluded", mb(pkg.TotalSize()), "recorded responses, no DBMS"})
	}

	fmt.Printf("%-22s %10s   %s\n", "Package", "size (MB)", "contents")
	for _, r := range rows {
		fmt.Printf("%-22s %10.2f   %s\n", r.name, r.sizeMB, r.note)
	}
	fmt.Println("\nall three packages re-executed successfully")
	return nil
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
