// Partialreplay: dependency reasoning over a packaged execution trace
// (§IV–§VI). The trace inside a server-included package answers which parts
// of an execution are needed to reproduce a chosen output — the basis for
// partial re-execution — and demonstrates how the temporal conditions of
// Definition 11 prune dependencies that plain graph reachability would
// invent.
//
//	go run ./examples/partialreplay
package main

import (
	"fmt"
	"log"

	"ldv"
	"ldv/internal/deps"
	ildv "ldv/internal/ldv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// The application has two independent pipelines sharing one database:
//   - pipeline A: readerA loads a.csv into table a_data; reportA queries it
//     and writes a.out.
//   - pipeline B: the same, over b.csv / b_data / b.out.
//
// Between the pipelines runs an archiver process that first copies a.out
// into archive.log and only afterwards peeks at b.csv — the shape of the
// paper's Figure 6a, where graph reachability alone would claim archive.log
// depends on b.csv but the temporal annotations refute it.
func apps() []ldv.App {
	mk := func(name string) []ldv.App {
		loader := ldv.App{
			Binary: "/bin/reader_" + name,
			Libs:   ldv.ClientLibs(),
			Prog: func(p *ldv.Process) error {
				data, err := p.ReadFile("/in/" + name + ".csv")
				if err != nil {
					return err
				}
				conn, err := ldv.Dial(p)
				if err != nil {
					return err
				}
				defer conn.Close()
				_, err = conn.Exec(fmt.Sprintf("INSERT INTO %s_data VALUES (1, %s)", name, string(data)))
				return err
			},
		}
		report := ldv.App{
			Binary: "/bin/report_" + name,
			Libs:   ldv.ClientLibs(),
			Prog: func(p *ldv.Process) error {
				conn, err := ldv.Dial(p)
				if err != nil {
					return err
				}
				defer conn.Close()
				res, err := conn.Query(fmt.Sprintf("SELECT SUM(v) FROM %s_data", name))
				if err != nil {
					return err
				}
				return p.WriteFile("/out/"+name+".out", []byte(res.Rows[0][0].String()+"\n"))
			},
		}
		return []ldv.App{loader, report}
	}
	archiver := ldv.App{
		Binary: "/bin/archiver",
		Libs:   ldv.ClientLibs(),
		Prog: func(p *ldv.Process) error {
			data, err := p.ReadFile("/out/a.out")
			if err != nil {
				return err
			}
			if err := p.WriteFile("/out/archive.log", append([]byte("archived: "), data...)); err != nil {
				return err
			}
			// Only now read b.csv (e.g. to schedule the next run) — after
			// archive.log has been written and closed.
			_, err = p.ReadFile("/in/b.csv")
			return err
		},
	}
	out := mk("a")
	out = append(out, archiver)
	return append(out, mk("b")...)
}

func run() error {
	m, err := ldv.NewMachine()
	if err != nil {
		return err
	}
	if _, err := m.DB.ExecScript(`
		CREATE TABLE a_data (id INTEGER, v INTEGER);
		CREATE TABLE b_data (id INTEGER, v INTEGER);
		INSERT INTO a_data VALUES (0, 10);
		INSERT INTO b_data VALUES (0, 20);`, ldv.ExecOptions{}); err != nil {
		return err
	}
	fs := m.Kernel.FS()
	fs.WriteFile("/in/a.csv", []byte("7"))
	fs.WriteFile("/in/b.csv", []byte("9"))

	theApps := apps()
	aud, err := ldv.Audit(m, theApps)
	if err != nil {
		return err
	}
	pkg, err := ldv.BuildServerIncluded(m, aud, theApps)
	if err != nil {
		return err
	}

	// A consumer loads the trace back out of the package — no live system
	// needed for dependency reasoning.
	tr, err := ildv.ReadTrace(pkg)
	if err != nil {
		return err
	}
	fmt.Printf("trace from package: %d nodes, %d edges, %d direct dependencies\n\n",
		tr.NodeCount(), tr.EdgeCount(), len(tr.Deps()))

	inf := deps.NewDefaultInferencer(tr)
	aOut := ildv.FileNodeID("/out/a.out")
	bOut := ildv.FileNodeID("/out/b.out")
	aIn := ildv.FileNodeID("/in/a.csv")
	bIn := ildv.FileNodeID("/in/b.csv")

	arc := ildv.FileNodeID("/out/archive.log")
	fmt.Println("temporally-restricted inference (Definition 11):")
	fmt.Printf("  a.out       <- a.csv: %v (expected true)\n", inf.DependsOn(aOut, aIn))
	fmt.Printf("  b.out       <- b.csv: %v (expected true)\n", inf.DependsOn(bOut, bIn))
	fmt.Printf("  archive.log <- a.out: %v (expected true)\n", inf.DependsOn(arc, aOut))
	fmt.Printf("  archive.log <- b.csv: %v (expected false: written before b.csv was read)\n",
		inf.DependsOn(arc, bIn))
	fmt.Printf("  b.out       <- a.csv: %v (expected false: no data dependency links the pipelines)\n\n",
		inf.DependsOn(bOut, aIn))

	// For partial re-execution of a.out we need exactly the entities a.out
	// depends on.
	fmt.Println("entities needed to reproduce a.out:")
	for _, d := range inf.Dependencies(aOut) {
		fmt.Printf("  %s\n", d)
	}

	fmt.Println("\nnaive (non-temporal) reachability for comparison:")
	inf.Naive = true
	fmt.Printf("  archive.log <- b.csv: %v  <- spurious: the blackbox rule makes every output\n",
		inf.DependsOn(arc, bIn))
	fmt.Println("                               depend on every input of the process; only the")
	fmt.Println("                               temporal annotations can refute it (Example 7)")
	return nil
}
