// Quickstart: audit a tiny DB application, build both package flavours, and
// re-execute each — the complete LDV round trip in one file.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ldv"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Boot a simulated machine and load data into its database. Rows
	// loaded here are "preloaded": they exist before the application runs,
	// like a production database an experiment reads.
	m, err := ldv.NewMachine()
	if err != nil {
		return err
	}
	if _, err := m.DB.ExecScript(`
		CREATE TABLE readings (id INTEGER PRIMARY KEY, sensor TEXT, value FLOAT);
		INSERT INTO readings VALUES
			(1, 'alpha', 3.5), (2, 'alpha', 12.5), (3, 'beta', 19.25),
			(4, 'beta', 4.0), (5, 'gamma', 22.0);`, ldv.ExecOptions{}); err != nil {
		return err
	}

	// 2. Define the application: a single binary that queries the DB and
	// writes a report file. It reaches the database through ldv.Dial, which
	// adapts transparently to plain, audited, and replayed execution.
	app := ldv.App{
		Binary: "/opt/analyzer/bin/report",
		Libs:   ldv.ClientLibs(),
		Prog: func(p *ldv.Process) error {
			conn, err := ldv.Dial(p)
			if err != nil {
				return err
			}
			defer conn.Close()
			res, err := conn.Query("SELECT sensor, COUNT(*) AS n, AVG(value) AS mean FROM readings WHERE value > 10 GROUP BY sensor ORDER BY sensor")
			if err != nil {
				return err
			}
			report := "sensors above threshold:\n"
			for _, row := range res.Rows {
				report += fmt.Sprintf("  %s: n=%s mean=%s\n", row[0], row[1], row[2])
			}
			return p.WriteFile("/opt/analyzer/report.txt", []byte(report))
		},
	}
	apps := []ldv.App{app}

	// 3. Audit: run the application under LDV monitoring.
	aud, err := ldv.Audit(m, apps)
	if err != nil {
		return err
	}
	original, err := m.Kernel.FS().ReadFile("/opt/analyzer/report.txt")
	if err != nil {
		return err
	}
	fmt.Printf("original run produced:\n%s\n", original)
	fmt.Printf("audit: %d statements, %d trace nodes, %d relevant tuples (of 5 in the DB)\n\n",
		aud.StatementCount(), aud.Trace().NodeCount(), aud.RelevantTupleCount())

	// 4. Package both ways.
	included, err := ldv.BuildServerIncluded(m, aud, apps)
	if err != nil {
		return err
	}
	excluded, err := ldv.BuildServerExcluded(m, aud, apps)
	if err != nil {
		return err
	}
	fmt.Printf("server-included package: %5.2f MB (%d members, ships the DBMS + 3 relevant tuples)\n",
		float64(included.TotalSize())/(1<<20), included.Len())
	fmt.Printf("server-excluded package: %5.2f MB (%d members, ships recorded results only)\n\n",
		float64(excluded.TotalSize())/(1<<20), excluded.Len())

	// 5. Re-execute each package on a fresh machine and verify the output.
	programs := map[string]ldv.Program{app.Binary: app.Prog}
	for name, pkg := range map[string]*ldv.Archive{"server-included": included, "server-excluded": excluded} {
		replayed, err := ldv.Replay(pkg, programs)
		if err != nil {
			return fmt.Errorf("%s replay: %w", name, err)
		}
		got, err := replayed.Kernel.FS().ReadFile("/opt/analyzer/report.txt")
		if err != nil {
			return err
		}
		match := "MATCHES"
		if string(got) != string(original) {
			match = "DIFFERS"
		}
		fmt.Printf("%s replay output %s the original\n", name, match)
	}
	return nil
}
