package ldv

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// spanStartNames are the methods/functions that begin a request-trace span.
// Anything returned by one of them owns a slot in the flight recorder until
// End is called; a span that is never ended keeps its whole trace open
// forever and the trace never reaches the recorder.
var spanStartNames = map[string]bool{
	"StartSpan":   true,
	"StartSpanIn": true,
	"Child":       true,
}

// tracelintDirs are the packages on the request path whose spans the lint
// polices. The obs package itself is exempt: it constructs spans internally.
var tracelintDirs = []string{
	"internal/engine",
	"internal/server",
	"internal/client",
}

// TestSpanEndDiscipline is the trace lint run by `make check`: in every
// function of the request-path packages, a variable assigned from
// StartSpan/StartSpanIn/Child must be ended by a `defer <var>.End()` in the
// same function, so the span is closed on every return path — including
// panics and early error returns. Span-start calls whose result is discarded
// are rejected outright. The check is name-based (no type information), which
// is exactly the point: adding an unrelated method named Child or End to
// these packages should make someone look at this lint.
func TestSpanEndDiscipline(t *testing.T) {
	for _, dir := range tracelintDirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for path, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					for _, p := range lintFunc(fset, fd) {
						t.Errorf("%s: %s", filepath.Base(path), p)
					}
				}
			}
		}
	}
}

// TestSpanLintCatchesViolations proves the lint bites: un-ended spans,
// discarded span starts, and non-deferred Ends are all reported, while the
// blessed `sp := start; defer sp.End()` shape is not.
func TestSpanLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		body string
		want int
	}{
		{"deferred end ok", `sp := obs.StartSpan("q"); defer sp.End(); _ = sp`, 0},
		{"chained start ok", `sp := obs.StartSpan("q").SetAttr("k", "v"); defer sp.End(); _ = sp`, 0},
		{"child ok", `sp := parent.Child("stage"); defer sp.End(); _ = sp`, 0},
		{"no end", `sp := obs.StartSpan("q"); _ = sp`, 1},
		{"non-deferred end", `sp := obs.StartSpan("q"); sp.End()`, 1},
		{"discarded start", `parent.Child("stage")`, 1},
		{"two leaks", `a := obs.StartSpan("q"); b := parent.Child("c"); _, _ = a, b`, 2},
	}
	for _, tc := range cases {
		src := "package p\nfunc f() {\n" + tc.body + "\n}\n"
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "x.go", src, 0)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := lintFunc(fset, f.Decls[0].(*ast.FuncDecl))
		if len(got) != tc.want {
			t.Errorf("%s: %d problems (want %d): %v", tc.name, len(got), tc.want, got)
		}
	}
}

// lintFunc checks one function — every span-start call must be assigned to a
// variable, and every such variable must have a deferred End — returning one
// message per violation.
func lintFunc(fset *token.FileSet, fd *ast.FuncDecl) []string {
	// Pass 1: span variables — LHS identifiers of assignments whose RHS
	// contains a span-start call (covers chained calls like
	// StartSpan(...).SetAttr(...)). Remember the start-call positions so
	// pass 3 can spot calls outside any assignment.
	spanVars := map[string]token.Pos{}
	assigned := map[token.Pos]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			found := false
			ast.Inspect(rhs, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isSpanStart(call) {
					found = true
					assigned[call.Pos()] = true
				}
				return true
			})
			if !found {
				continue
			}
			// With one RHS per LHS the positions line up; a multi-value RHS
			// (function call) taints every LHS conservatively.
			if len(as.Lhs) == len(as.Rhs) {
				if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					spanVars[id.Name] = as.Pos()
				}
			} else {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						spanVars[id.Name] = as.Pos()
					}
				}
			}
		}
		return true
	})

	// Pass 2: deferred ends — defer <ident>.End().
	ended := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		df, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if sel, ok := df.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
			if id, ok := sel.X.(*ast.Ident); ok {
				ended[id.Name] = true
			}
		}
		return true
	})

	var problems []string
	for name, pos := range spanVars {
		if !ended[name] {
			problems = append(problems, fmt.Sprintf(
				"%s: span %q started in %s has no `defer %s.End()`",
				position(fset, pos), name, fd.Name.Name, name))
		}
	}

	// Pass 3: span-start calls outside any assignment leak their span.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSpanStart(call) || assigned[call.Pos()] {
			return true
		}
		problems = append(problems, fmt.Sprintf(
			"%s: span-start result discarded in %s — assign it and `defer .End()`",
			position(fset, call.Pos()), fd.Name.Name))
		return true
	})
	return problems
}

// isSpanStart reports whether a call is StartSpan/StartSpanIn/Child (as a
// selector, e.g. obs.StartSpan or parent.Child).
func isSpanStart(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && spanStartNames[sel.Sel.Name]
}

func position(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%d:%d", p.Line, p.Column)
}
