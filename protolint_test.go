package ldv

import (
	"fmt"
	"os"
	"regexp"
	"testing"

	"ldv/internal/wire"
)

// protoHeading matches a message-kind section heading in PROTOCOL.md:
//
//	### Query ('Q')
//
// The kind name and quoted tag byte are captured so the lint can check
// them against the implementation.
var protoHeading = regexp.MustCompile(`(?m)^### ([A-Za-z]+) \('(.)'\)\s*$`)

// TestProtocolDoc is the proto lint run by `make check`: PROTOCOL.md is
// the canonical protocol reference, so it must document exactly the
// message kinds the wire package implements. Both directions are checked —
// a kind added to wire.Tags() without a PROTOCOL.md section fails, and so
// does a documented kind that no longer exists (or whose tag byte
// changed).
func TestProtocolDoc(t *testing.T) {
	doc, err := os.ReadFile("PROTOCOL.md")
	if err != nil {
		t.Fatalf("reading PROTOCOL.md: %v", err)
	}

	documented := map[string]byte{} // kind name -> tag byte
	for _, m := range protoHeading.FindAllStringSubmatch(string(doc), -1) {
		name, tag := m[1], m[2][0]
		if prev, dup := documented[name]; dup {
			t.Errorf("PROTOCOL.md documents %s twice (tags %q and %q)", name, prev, tag)
		}
		documented[name] = tag
	}
	if len(documented) == 0 {
		t.Fatal("PROTOCOL.md has no kind headings matching `### Name ('T')`")
	}

	// Implementation -> doc: every tag needs a section with the right byte.
	implemented := map[string]byte{}
	for _, tag := range wire.Tags() {
		name := wire.TagName(tag)
		if name == "unknown" {
			t.Errorf("wire.Tags() contains %q but TagName does not know it", tag)
			continue
		}
		implemented[name] = tag
		docTag, ok := documented[name]
		if !ok {
			t.Errorf("wire kind %s (tag %q) has no PROTOCOL.md section; add `### %s (%s)`",
				name, tag, name, fmt.Sprintf("'%c'", tag))
			continue
		}
		if docTag != tag {
			t.Errorf("PROTOCOL.md documents %s with tag %q, implementation uses %q", name, docTag, tag)
		}
	}

	// Doc -> implementation: no stale sections.
	for name, tag := range documented {
		implTag, ok := implemented[name]
		if !ok {
			t.Errorf("PROTOCOL.md documents kind %s (tag %q) that wire does not implement", name, tag)
			continue
		}
		if implTag != tag {
			// Already reported above from the other direction; keep the
			// message symmetric for doc-first readers.
			t.Errorf("PROTOCOL.md kind %s tag %q does not match implementation tag %q", name, tag, implTag)
		}
	}
}
