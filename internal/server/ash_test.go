package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ldv/internal/engine"
	"ldv/internal/obs"
	"ldv/internal/osim"
	"ldv/internal/sqlval"
	"ldv/internal/wire"
)

// slowAppendFS wraps an osim filesystem so every WAL append stalls — the
// group-commit flush becomes a visible, sampleable wait.
type slowAppendFS struct {
	*osim.FS
	delay time.Duration
}

func (s *slowAppendFS) AppendFile(path string, data []byte) error {
	time.Sleep(s.delay)
	return s.FS.AppendFile(path, data)
}

// queryRows runs one statement and returns the data rows.
func queryRows(t *testing.T, c net.Conn, sql string) [][]sqlval.Value {
	t.Helper()
	if err := wire.Write(c, wire.Query{SQL: sql}); err != nil {
		t.Fatal(err)
	}
	var rows [][]sqlval.Value
	for {
		msg, err := wire.Read(c)
		if err != nil {
			t.Fatal(err)
		}
		switch m := msg.(type) {
		case wire.RowDescription:
		case wire.DataRow:
			rows = append(rows, m.Values)
		case wire.CommandComplete:
		case wire.Error:
			t.Fatalf("%s: %s", sql, m.Message)
		case wire.Ready:
			return rows
		default:
			t.Fatalf("unexpected message %#v", msg)
		}
	}
}

// TestWaitProfileE2E drives a contended workload through the full wire
// protocol and asserts the wait-event machinery observed it end to end: the
// cumulative ldv_stat_wait_events view and the ldv_stat_ash sample ring must
// both hold non-zero lock.table and wal.group_commit evidence, queried back
// over the same unchanged protocol. Run under -race via `make test`.
func TestWaitProfileE2E(t *testing.T) {
	obs.Reset()
	obs.ASH().SetEnabled(true)
	obs.ASH().SetRate(4000)
	defer obs.ASH().SetRate(obs.DefaultASHRate)

	fs := &slowAppendFS{FS: osim.NewFS(), delay: 2 * time.Millisecond}
	srv := New(engine.NewDB(nil), nil)
	if _, err := srv.EnableDurability(fs, "/var/db", 0); err != nil {
		t.Fatal(err)
	}

	c1 := dial(t, srv, "proc:writer")
	defer c1.Close()
	queryRows(t, c1, "CREATE TABLE w (a INT PRIMARY KEY, b TEXT)")
	var ins strings.Builder
	ins.WriteString("INSERT INTO w VALUES ")
	for i := 0; i < 400; i++ {
		if i > 0 {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, "(%d, 'r%d')", i, i)
	}
	queryRows(t, c1, ins.String())

	// Contention: a reader holds w's read lock through an expensive
	// self-join while the writer's UPDATEs block on the write lock (and each
	// commit then waits on the slowed WAL flush). Two rounds so the lock
	// collision cannot be missed to scheduling luck.
	c2 := dial(t, srv, "proc:reader")
	defer c2.Close()
	for round := 0; round < 2; round++ {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows := queryRows(t, c2, "SELECT COUNT(*) FROM w x, w y WHERE x.a < y.a")
			if len(rows) != 1 {
				t.Errorf("self-join rows = %d", len(rows))
			}
		}()
		// Give the scan a head start so the UPDATE arrives mid-read.
		time.Sleep(5 * time.Millisecond)
		for i := 0; i < 5; i++ {
			queryRows(t, c1, fmt.Sprintf("UPDATE w SET b = 'u%d' WHERE a = %d", round, i))
		}
		wg.Wait()
	}

	// The cumulative view: both contended paths must have registered waits.
	waits := map[string][2]int64{}
	for _, row := range queryRows(t, c1,
		"SELECT event, waits, wait_ns FROM ldv_stat_wait_events ORDER BY event") {
		waits[row[0].Str()] = [2]int64{row[1].Int(), row[2].Int()}
	}
	for _, ev := range []string{"lock.table", "wal.group_commit", "client.read"} {
		got, ok := waits[ev]
		if !ok {
			t.Fatalf("ldv_stat_wait_events missing %s (have %v)", ev, waits)
		}
		if got[0] == 0 || got[1] == 0 {
			t.Errorf("%s: waits=%d wait_ns=%d, want both non-zero", ev, got[0], got[1])
		}
	}

	// The sample ring: the background sampler must have caught sessions
	// inside both waits (the lock wait ran tens of ms, the flush 2ms, the
	// sampler at 4000 Hz).
	for _, ev := range []string{"lock.table", "wal.group_commit"} {
		rows := queryRows(t, c1, fmt.Sprintf(
			"SELECT COUNT(*) FROM ldv_stat_ash WHERE event = '%s'", ev))
		if len(rows) != 1 || rows[0][0].Int() == 0 {
			t.Errorf("ldv_stat_ash has no %s samples", ev)
		}
	}

	// Sanity on sample shape over the wire: states are from the fixed set.
	for _, row := range queryRows(t, c1,
		"SELECT DISTINCT state FROM ldv_stat_ash") {
		switch row[0].Str() {
		case "cpu", "waiting", "idle":
		default:
			t.Errorf("unexpected ASH state %q", row[0].Str())
		}
	}
}
