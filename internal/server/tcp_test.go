package server

import (
	"net"
	"testing"

	"ldv/internal/client"
	"ldv/internal/engine"
)

type netAcceptor struct{ l net.Listener }

func (a netAcceptor) Accept() (net.Conn, error) { return a.l.Accept() }

// TestRealTCPSession exercises the full stack over an actual TCP socket —
// the standalone (non-simulated) deployment mode of cmd/ldvdb.
func TestRealTCPSession(t *testing.T) {
	s := newTestServer(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	defer l.Close()
	go s.Serve(netAcceptor{l})

	conn, err := client.Dial(client.NetDialer{}, l.Addr().String(), client.Options{Proc: "tcp-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	res, err := conn.Query("SELECT a, b FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[1][1].Str() != "y" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Lineage crosses the real network too.
	res, err = conn.Query("SELECT PROVENANCE a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lineage) != 2 || len(res.TupleValues) != 2 {
		t.Fatalf("lineage=%d values=%d", len(res.Lineage), len(res.TupleValues))
	}
	// DML metadata too.
	res, err = conn.Exec("UPDATE t SET b = 'z' WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	_ = engine.ExecOptions{}
}
