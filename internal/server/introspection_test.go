package server

import (
	"net"
	"strings"
	"testing"

	"ldv/internal/client"
	"ldv/internal/engine"
	"ldv/internal/obs"
	"ldv/internal/tpch"
)

// TestIntrospectionOverTCP is the end-to-end proof of the SQL-queryable
// introspection surface: a real TCP client runs TPC-H queries, then reads
// the system views with plain SELECTs over the same connection —
// ldv_stat_statements shows the collapsed fingerprints with call counts and
// latency quantiles, ldv_stat_activity shows the querying session itself,
// and EXPLAIN ANALYZE returns per-operator rows with actual counts and
// timings. Run under -race by `make check`.
func TestIntrospectionOverTCP(t *testing.T) {
	obs.Reset()
	db := engine.NewDB(nil)
	cfg := tpch.Config{SF: 0.002, Seed: 42}
	if _, err := tpch.Load(db, cfg); err != nil {
		t.Fatal(err)
	}
	s := New(db, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	defer l.Close()
	go s.Serve(netAcceptor{l})

	conn, err := client.Dial(client.NetDialer{}, l.Addr().String(), client.Options{Proc: "introspect-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Two executions differing only in literals must collapse to one
	// fingerprint; the fingerprint rides back on the wire with each result.
	q1 := "SELECT l_quantity FROM lineitem WHERE l_suppkey BETWEEN 1 AND 2"
	q2 := "SELECT l_quantity FROM lineitem WHERE l_suppkey BETWEEN 1 AND 3"
	res1, err := conn.Query(q1)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := conn.Query(q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Fingerprint) != 16 {
		t.Fatalf("wire fingerprint = %q, want 16 hex digits", res1.Fingerprint)
	}
	if res1.Fingerprint != res2.Fingerprint {
		t.Fatalf("literal variants did not collapse: %q vs %q", res1.Fingerprint, res2.Fingerprint)
	}

	// ldv_stat_statements: the collapsed entry has both calls, normalized
	// text, and populated latency quantiles — all through plain SQL
	// (filter + projection apply like any table).
	res, err := conn.Query(
		"SELECT query, calls, exec_ns, p95_exec_ns FROM ldv_stat_statements WHERE fingerprint = '" +
			res1.Fingerprint + "'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("ldv_stat_statements rows = %d, want 1", len(res.Rows))
	}
	row := res.Rows[0]
	if got := row[0].Str(); !strings.Contains(got, "BETWEEN ? AND ?") {
		t.Errorf("normalized text = %q, want literals collapsed to ?", got)
	}
	if row[1].Int() != 2 {
		t.Errorf("calls = %d, want 2", row[1].Int())
	}
	if row[2].Int() <= 0 || row[3].Int() <= 0 {
		t.Errorf("exec_ns = %d, p95_exec_ns = %d, want > 0", row[2].Int(), row[3].Int())
	}

	// ldv_stat_activity: the session reading the view sees itself, active,
	// running this very statement.
	actSQL := "SELECT proc, state, query FROM ldv_stat_activity"
	res, err = conn.Query(actSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("ldv_stat_activity rows = %d, want 1", len(res.Rows))
	}
	row = res.Rows[0]
	if row[0].Str() != "introspect-test" || row[1].Str() != "active" || row[2].Str() != actSQL {
		t.Errorf("activity row = %v", row)
	}

	// EXPLAIN without ANALYZE: the static plan outline, with NULL actuals.
	res, err = conn.Query("EXPLAIN " + q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 5 || res.Columns[0] != "op" || res.Columns[2] != "est_rows" {
		t.Fatalf("EXPLAIN columns = %v", res.Columns)
	}
	if len(res.Rows) == 0 || !res.Rows[0][3].IsNull() {
		t.Fatalf("EXPLAIN rows = %v, want static outline with NULL actuals", res.Rows)
	}

	// EXPLAIN ANALYZE on a TPC-H join: per-operator rows with actual row
	// counts and timings, plus the trailing result summary.
	joinQ, err := tpch.QueryByID(cfg, "Q2-1")
	if err != nil {
		t.Fatal(err)
	}
	res, err = conn.Query("EXPLAIN ANALYZE " + joinQ.SQL)
	if err != nil {
		t.Fatal(err)
	}
	ops := map[string]bool{}
	for _, r := range res.Rows {
		ops[r[0].Str()] = true
	}
	for _, want := range []string{"scan", "hash_join", "project", "result"} {
		if !ops[want] {
			t.Errorf("EXPLAIN ANALYZE missing operator %q in %v", want, res.Rows)
		}
	}
	var sawActuals bool
	for _, r := range res.Rows {
		if r[0].Str() == "scan" && r[3].Int() > 0 && r[4].Int() > 0 {
			sawActuals = true
		}
	}
	if !sawActuals {
		t.Errorf("no scan operator with actual rows and time: %v", res.Rows)
	}

	// ldv_stat_tables: per-table counters, live over the wire.
	res, err = conn.Query("SELECT live_rows FROM ldv_stat_tables WHERE name = 'lineitem'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() <= 0 {
		t.Fatalf("ldv_stat_tables lineitem = %v", res.Rows)
	}

	// ldv_stat_wal: empty without durability, but the view still resolves.
	res, err = conn.Query("SELECT seq FROM ldv_stat_wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("ldv_stat_wal rows = %v, want none without a WAL", res.Rows)
	}

	// The system-view namespace is reserved and the views are read-only.
	if _, err := conn.Exec("CREATE TABLE ldv_stat_custom (a INT)"); err == nil {
		t.Error("CREATE TABLE in the ldv_stat_ namespace should fail")
	}
	if _, err := conn.Exec("INSERT INTO ldv_stat_statements VALUES (1)"); err == nil {
		t.Error("INSERT into a system view should fail")
	}
}
