package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"ldv/internal/engine"
	"ldv/internal/obs"
	obslog "ldv/internal/obs/log"
	"ldv/internal/sqlval"
	"ldv/internal/wire"
)

// Protocol-v2 prepared statements: Parse registers a named statement on the
// connection, Bind stores parameter values, Execute runs the statement with
// the most recently bound values. Statement names are per connection (two
// sessions may both own an "s1"), but the underlying *engine.PreparedStmt —
// and therefore the plan cache — is shared process-wide. The server-side
// registry also feeds the ldv_stat_prepared system view.

var mStmtsPrepared = obs.NewCounter("server.stmts_prepared", "Prepared statements created over the wire (Parse messages)")

// sessionStmts is one connection's prepared-statement namespace. The mutex
// guards against the ldv_stat_prepared provider reading while the connection
// goroutine parses or closes statements.
type sessionStmts struct {
	sid int64

	mu    sync.Mutex
	stmts map[string]*engine.PreparedStmt
	args  map[string][]sqlval.Value // most recent Bind per statement
}

func (ss *sessionStmts) set(name string, ps *engine.PreparedStmt) {
	ss.mu.Lock()
	ss.stmts[name] = ps
	delete(ss.args, name) // a re-Parse invalidates any earlier Bind
	ss.mu.Unlock()
}

// bind stores parameter values for a statement's next Execute. Unknown names
// are stored anyway: Bind is fire-and-forget, so the error surfaces on the
// Execute that tries to use the statement.
func (ss *sessionStmts) bind(name string, args []sqlval.Value) {
	ss.mu.Lock()
	ss.args[name] = args
	ss.mu.Unlock()
}

func (ss *sessionStmts) lookup(name string) (*engine.PreparedStmt, []sqlval.Value, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ps, ok := ss.stmts[name]
	if !ok {
		return nil, nil, fmt.Errorf("unknown prepared statement %q", name)
	}
	return ps, ss.args[name], nil
}

func (ss *sessionStmts) close(name string) {
	ss.mu.Lock()
	delete(ss.stmts, name)
	delete(ss.args, name)
	ss.mu.Unlock()
}

func (s *Server) registerStmts(sid int64) *sessionStmts {
	ss := &sessionStmts{
		sid:   sid,
		stmts: map[string]*engine.PreparedStmt{},
		args:  map[string][]sqlval.Value{},
	}
	s.prepMu.Lock()
	s.prepared[sid] = ss
	s.prepMu.Unlock()
	return ss
}

func (s *Server) deregisterStmts(sid int64) {
	s.prepMu.Lock()
	delete(s.prepared, sid)
	s.prepMu.Unlock()
}

// handleParse prepares a statement under the client-chosen name and answers
// ParseComplete (or Error) followed by Ready.
func (s *Server) handleParse(conn io.Writer, sess *engine.Session, stmts *sessionStmts, m wire.Parse) error {
	ps, err := s.db.Prepare(m.SQL)
	if err != nil {
		mErrors.Inc()
		if werr := wire.Write(conn, wire.Error{Message: err.Error()}); werr != nil {
			return werr
		}
	} else {
		stmts.set(m.Name, ps)
		mStmtsPrepared.Inc()
		pc := wire.ParseComplete{Name: m.Name, NumParams: ps.NumParams, Fingerprint: ps.Fingerprint().String()}
		if werr := wire.Write(conn, pc); werr != nil {
			return werr
		}
	}
	return wire.Write(conn, wire.Ready{InTxn: sess.InTxn()})
}

// handleExecute runs a prepared statement and streams its response group,
// ending with Ready — the Execute counterpart of handleQuery. The writer is
// HandleConn's session output buffer, so a pipelined burst's response groups
// accumulate and leave in one flush.
func (s *Server) handleExecute(conn io.Writer, sess *engine.Session, act *sessionActivity, slog *obslog.Logger, proc string, stmts *sessionStmts, ex wire.Execute, sc obs.SpanContext) error {
	if err := s.runExecute(conn, sess, act, slog, proc, stmts, ex, sc); err != nil {
		return err
	}
	return wire.Write(conn, wire.Ready{InTxn: sess.InTxn()})
}

// runExecute is runQuery's prepared twin: same read gate, span, slow-query
// log and streaming, but the parse is already paid and the plan usually
// cached. A missing statement or a Bind arity mismatch surfaces here as an
// Error — Bind itself never responds.
func (s *Server) runExecute(conn io.Writer, sess *engine.Session, act *sessionActivity, slog *obslog.Logger, proc string, stmts *sessionStmts, ex wire.Execute, sc obs.SpanContext) error {
	var sp *obs.Span
	if !sc.IsZero() {
		sp = obs.StartSpanIn("server.execute", sc)
		slog = slog.With("trace", sp.TraceID())
	}
	defer sp.End()
	ps, args, err := stmts.lookup(ex.Stmt)
	if err != nil {
		mErrors.Inc()
		slog.Error("execute failed", "err", err, "stmt", ex.Stmt)
		return wire.Write(conn, wire.Error{Message: err.Error()})
	}
	if g := s.readGate(); g != nil {
		if err := gateWait(g, sess.WaitState(), ex.MinApplied); err != nil {
			mErrors.Inc()
			slog.Error("read gate failed", "err", err, "min_applied", ex.MinApplied)
			return wire.Write(conn, wire.Error{Message: err.Error()})
		}
	}
	t0 := time.Now()
	act.begin(ps.Fingerprint().String(), ps.SQL)
	res, err := sess.ExecPrepared(ps, args, engine.ExecOptions{Proc: proc, WithLineage: ex.WithLineage, Span: sp})
	act.finish(sess.InTxn())
	elapsed := time.Since(t0)
	if thr := s.slowQueryNS.Load(); thr > 0 && elapsed >= time.Duration(thr) {
		slog.Warn("slow query", "elapsed", elapsed, "fingerprint", ps.Fingerprint().String(),
			"waits", waitSummary(sess.WaitState()), "sql", ps.SQL)
	}
	if err != nil {
		mErrors.Inc()
		slog.Error("statement failed", "err", err, "sql", ps.SQL)
		return wire.Write(conn, wire.Error{Message: err.Error()})
	}
	return streamResult(conn, res, ex.Tag)
}

// registerPreparedView replaces the engine's placeholder ldv_stat_prepared
// with this server's live registry: one row per (session, statement name).
func (s *Server) registerPreparedView() {
	s.db.RegisterVirtualTable(&engine.VirtualTable{
		Name: "ldv_stat_prepared",
		Schema: engine.Schema{Columns: []engine.Column{
			{Name: "session", Type: sqlval.KindInt},
			{Name: "name", Type: sqlval.KindString},
			{Name: "fingerprint", Type: sqlval.KindString},
			{Name: "num_params", Type: sqlval.KindInt},
			{Name: "calls", Type: sqlval.KindInt},
			{Name: "cache_hits", Type: sqlval.KindInt},
		}},
		Rows: s.preparedRows,
	})
}

func (s *Server) preparedRows() [][]sqlval.Value {
	s.prepMu.Lock()
	sessions := make([]*sessionStmts, 0, len(s.prepared))
	for _, ss := range s.prepared {
		sessions = append(sessions, ss)
	}
	s.prepMu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].sid < sessions[j].sid })

	var rows [][]sqlval.Value
	for _, ss := range sessions {
		ss.mu.Lock()
		names := make([]string, 0, len(ss.stmts))
		for name := range ss.stmts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ps := ss.stmts[name]
			rows = append(rows, []sqlval.Value{
				sqlval.NewInt(ss.sid),
				sqlval.NewString(name),
				sqlval.NewString(ps.Fingerprint().String()),
				sqlval.NewInt(int64(ps.NumParams)),
				sqlval.NewInt(ps.Calls()),
				sqlval.NewInt(ps.CacheHits()),
			})
		}
		ss.mu.Unlock()
	}
	return rows
}
