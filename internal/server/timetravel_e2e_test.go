package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"ldv/internal/client"
	"ldv/internal/engine"
)

// renderRows flattens a result to one comparable string.
func renderRows(res *engine.Result) string {
	parts := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		cells := make([]string, len(r))
		for j, v := range r {
			cells[j] = v.String()
		}
		parts[i] = strings.Join(cells, "|")
	}
	return strings.Join(parts, ";")
}

// TestAsOfStableUnderConcurrentWritesTCP pins a historical tick, then hammers
// the table from concurrent writer connections while reader connections
// repeatedly issue AS OF reads at that tick over the real wire protocol. The
// historical result must be byte-stable: every read renders identically to
// the baseline taken before the churn began.
func TestAsOfStableUnderConcurrentWritesTCP(t *testing.T) {
	const (
		rows     = 8
		writers  = 4
		readers  = 3
		writeOps = 40
		readOps  = 40
	)
	db := engine.NewDB(nil)
	if _, err := db.Exec("CREATE TABLE kv (k INT, v INT)", engine.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, 0)", i), engine.ExecOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	s := New(db, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	defer l.Close()
	go s.Serve(netAcceptor{l})
	addr := l.Addr().String()

	dialConn := func(proc string) *client.Conn {
		t.Helper()
		conn, err := client.Dial(client.NetDialer{}, addr, client.Options{Proc: proc})
		if err != nil {
			t.Fatal(err)
		}
		return conn
	}

	past := db.ClockNow()
	base := dialConn("asof-base")
	defer base.Close()
	baseRes, err := base.QueryAt("SELECT k, v FROM kv ORDER BY k", past)
	if err != nil {
		t.Fatal(err)
	}
	baseline := renderRows(baseRes)
	if baseline == "" {
		t.Fatal("empty baseline")
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := client.Dial(client.NetDialer{}, addr, client.Options{Proc: fmt.Sprintf("writer-%d", w)})
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			for i := 0; i < writeOps; i++ {
				sql := fmt.Sprintf("UPDATE kv SET v = %d WHERE k = %d", i+1, (w+i)%rows)
				if _, err := conn.Exec(sql); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			conn, err := client.Dial(client.NetDialer{}, addr, client.Options{Proc: fmt.Sprintf("reader-%d", r)})
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			for i := 0; i < readOps; i++ {
				res, err := conn.QueryAt("SELECT k, v FROM kv ORDER BY k", past)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if got := renderRows(res); got != baseline {
					errs <- fmt.Errorf("reader %d: AS OF %d drifted: %q != %q", r, past, got, baseline)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The head moved on: at least one update must be visible now.
	head, err := base.Query("SELECT k, v FROM kv ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	if renderRows(head) == baseline {
		t.Fatal("head read unchanged after concurrent updates")
	}
	// And the historical cut still answers, identically, after the dust
	// settles — including via the SQL-level clause.
	res, err := base.Query(fmt.Sprintf("SELECT k, v FROM kv ORDER BY k AS OF %d", past))
	if err != nil {
		t.Fatal(err)
	}
	if got := renderRows(res); got != baseline {
		t.Fatalf("SQL AS OF = %q, want %q", got, baseline)
	}
}

// TestReenactOverWire commits a multi-statement transaction through a real
// client connection, mutates head state, then reenacts the transaction over
// the wire and checks the replay reproduces the original execution: per
// statement the replayed row count matches the recorded one, and the
// replayed SELECT renders exactly the rows the original SELECT returned.
func TestReenactOverWire(t *testing.T) {
	db := engine.NewDB(nil)
	if _, err := db.Exec("CREATE TABLE acct (id INT, bal INT)", engine.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO acct VALUES (1, 100)", engine.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	s := New(db, nil)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	defer l.Close()
	go s.Serve(netAcceptor{l})

	conn, err := client.Dial(client.NetDialer{}, l.Addr().String(), client.Options{Proc: "reenact-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// The original transaction: a transfer plus its audit read.
	for _, sql := range []string{
		"BEGIN",
		"INSERT INTO acct VALUES (2, 0)",
		"UPDATE acct SET bal = 70 WHERE id = 1",
		"UPDATE acct SET bal = 30 WHERE id = 2",
	} {
		if _, err := conn.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	orig, err := conn.Query("SELECT id, bal FROM acct ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	wantSelect := make([]string, len(orig.Rows))
	for i, r := range orig.Rows {
		wantSelect[i] = fmt.Sprintf("(%s, %s)", r[0].String(), r[1].String())
	}

	// The transaction id: the newest entry in the history view.
	idRes, err := conn.Query("SELECT txn FROM ldv_stat_versions ORDER BY txn DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(idRes.Rows) == 0 {
		t.Fatal("ldv_stat_versions empty after a committed transaction")
	}
	txid := idRes.Rows[0][0].Int()

	// Wreck the head state so the replay provably reads history.
	if _, err := conn.Exec("UPDATE acct SET bal = -1"); err != nil {
		t.Fatal(err)
	}

	res, err := conn.Query(fmt.Sprintf("REENACT TRANSACTION %d", txid))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("reenacted %d statements, want 4", len(res.Rows))
	}
	for _, r := range res.Rows {
		if !r[5].Bool() {
			t.Fatalf("statement %s (%s) replay mismatch: rows=%s recorded=%s",
				r[0].String(), r[1].String(), r[3].String(), r[4].String())
		}
	}
	if got, want := res.Rows[3][6].String(), strings.Join(wantSelect, "; "); got != want {
		t.Fatalf("replayed SELECT = %q, original returned %q", got, want)
	}

	// The what-if variant over the wire: substitute the audit read.
	whatIf, err := conn.Query(fmt.Sprintf(
		"REENACT TRANSACTION %d SUBSTITUTE 4 WITH 'SELECT bal FROM acct WHERE id = 2'", txid))
	if err != nil {
		t.Fatal(err)
	}
	if got := whatIf.Rows[3][6].String(); got != "(30)" {
		t.Fatalf("substituted SELECT = %q, want (30)", got)
	}
}
