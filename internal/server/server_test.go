package server

import (
	"net"
	"sync"
	"testing"

	"ldv/internal/engine"
	"ldv/internal/obs"
	"ldv/internal/osim"
	"ldv/internal/wire"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	db := engine.NewDB(nil)
	if _, err := db.ExecScript(`
		CREATE TABLE t (a INT PRIMARY KEY, b TEXT);
		INSERT INTO t VALUES (1, 'x'), (2, 'y');`, engine.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	return New(db, nil)
}

// dial starts a session over net.Pipe and performs the startup handshake.
func dial(t *testing.T, s *Server, proc string) net.Conn {
	t.Helper()
	c, srv := net.Pipe()
	go s.HandleConn(srv)
	if err := wire.Write(c, wire.Startup{Proc: proc, Database: "test"}); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.Read(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(wire.Ready); !ok {
		t.Fatalf("expected Ready, got %#v", msg)
	}
	return c
}

// query runs one statement and collects the full response.
func query(t *testing.T, c net.Conn, sql string, withLineage bool) (rows int, lineageRows int, serverErr string) {
	t.Helper()
	if err := wire.Write(c, wire.Query{SQL: sql, WithLineage: withLineage}); err != nil {
		t.Fatal(err)
	}
	for {
		msg, err := wire.Read(c)
		if err != nil {
			t.Fatal(err)
		}
		switch m := msg.(type) {
		case wire.RowDescription:
		case wire.DataRow:
			rows++
		case wire.LineageRow:
			lineageRows++
		case wire.TupleValues:
		case wire.CommandComplete:
		case wire.Error:
			serverErr = m.Message
		case wire.Ready:
			return rows, lineageRows, serverErr
		default:
			t.Fatalf("unexpected message %#v", msg)
		}
	}
}

func TestServerSessionLifecycle(t *testing.T) {
	s := newTestServer(t)
	c := dial(t, s, "proc:1")
	defer c.Close()
	rows, lineage, serr := query(t, c, "SELECT a FROM t ORDER BY a", false)
	if serr != "" || rows != 2 || lineage != 0 {
		t.Fatalf("rows=%d lineage=%d err=%q", rows, lineage, serr)
	}
	// Lineage per row when requested.
	rows, lineage, serr = query(t, c, "SELECT a FROM t", true)
	if serr != "" || rows != 2 || lineage != 2 {
		t.Fatalf("lineage rows = %d", lineage)
	}
	// Errors keep the session alive.
	_, _, serr = query(t, c, "SELECT nope FROM t", false)
	if serr == "" {
		t.Fatal("expected server error")
	}
	rows, _, serr = query(t, c, "SELECT a FROM t", false)
	if serr != "" || rows != 2 {
		t.Fatal("session broken after error")
	}
	// Clean termination.
	if err := wire.Write(c, wire.Terminate{}); err != nil {
		t.Fatal(err)
	}
}

func TestServerRejectsNonStartup(t *testing.T) {
	s := newTestServer(t)
	c, srv := net.Pipe()
	done := make(chan struct{})
	go func() { s.HandleConn(srv); close(done) }()
	if err := wire.Write(c, wire.Query{SQL: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.Read(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(wire.Error); !ok {
		t.Fatalf("expected protocol error, got %#v", msg)
	}
	c.Close()
	<-done
}

func TestServerUnexpectedMessageMidSession(t *testing.T) {
	s := newTestServer(t)
	c := dial(t, s, "p")
	defer c.Close()
	// A second Startup mid-session is a protocol error but keeps the session.
	if err := wire.Write(c, wire.Startup{Proc: "again"}); err != nil {
		t.Fatal(err)
	}
	msg, err := wire.Read(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(wire.Error); !ok {
		t.Fatalf("expected Error, got %#v", msg)
	}
	if msg, err = wire.Read(c); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(wire.Ready); !ok {
		t.Fatalf("expected Ready, got %#v", msg)
	}
	if rows, _, serr := query(t, c, "SELECT a FROM t", false); serr != "" || rows != 2 {
		t.Fatal("session unusable after protocol error")
	}
}

func TestServerProcBecomesProvP(t *testing.T) {
	s := newTestServer(t)
	c := dial(t, s, "proc:77")
	defer c.Close()
	if _, _, serr := query(t, c, "INSERT INTO t VALUES (3, 'z')", false); serr != "" {
		t.Fatal(serr)
	}
	res, err := s.DB().Exec("SELECT prov_p FROM t WHERE a = 3", engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Str() != "proc:77" {
		t.Fatalf("prov_p = %q", res.Rows[0][0].Str())
	}
}

func TestServerConcurrentSessions(t *testing.T) {
	s := newTestServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := dial(t, s, "p")
			defer c.Close()
			for j := 0; j < 10; j++ {
				if rows, _, serr := query(t, c, "SELECT a FROM t", false); serr != "" || rows < 2 {
					errs <- nil
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if len(errs) > 0 {
		t.Fatal("concurrent session failed")
	}
}

func TestServerEOFCloses(t *testing.T) {
	s := newTestServer(t)
	c := dial(t, s, "p")
	c.Close() // abrupt disconnect must not hang or panic the server
}

func TestServerCopyFromTo(t *testing.T) {
	s := newTestServer(t)
	fs := osim.NewFS()
	fs.WriteFile("/import.csv", []byte("10,ten\n11,\\N\n"))
	s.SetFS(fs)

	c := dial(t, s, "p")
	defer c.Close()
	rows, _, serr := query(t, c, "COPY t FROM '/import.csv'", false)
	if serr != "" {
		t.Fatalf("copy from: %s", serr)
	}
	_ = rows
	// 2 preloaded + 2 copied.
	if rows, _, _ := query(t, c, "SELECT a FROM t", false); rows != 4 {
		t.Fatalf("rows after copy = %d", rows)
	}
	// NULL round trip.
	if rows, _, _ := query(t, c, "SELECT a FROM t WHERE b IS NULL", false); rows != 1 {
		t.Fatal("NULL not loaded")
	}
	// Dump and re-load into a second table via the engine.
	if _, _, serr := query(t, c, "COPY t TO '/dump.csv'", false); serr != "" {
		t.Fatalf("copy to: %s", serr)
	}
	data, err := fs.ReadFile("/dump.csv")
	if err != nil || len(data) == 0 {
		t.Fatalf("dump missing: %v", err)
	}
	// Errors surface cleanly.
	if _, _, serr := query(t, c, "COPY t FROM '/missing.csv'", false); serr == "" {
		t.Fatal("missing file must error")
	}
	if _, _, serr := query(t, c, "COPY missing FROM '/import.csv'", false); serr == "" {
		t.Fatal("missing table must error")
	}
	// Without an FS, COPY is rejected.
	s2 := newTestServer(t)
	c2 := dial(t, s2, "p")
	defer c2.Close()
	if _, _, serr := query(t, c2, "COPY t TO '/x.csv'", false); serr == "" {
		t.Fatal("COPY without FS must error")
	}
}

func TestServerStatsRequest(t *testing.T) {
	s := newTestServer(t)
	c := dial(t, s, "proc:stats")
	defer c.Close()
	if _, _, serr := query(t, c, "SELECT a FROM t", false); serr != "" {
		t.Fatal(serr)
	}
	if err := wire.Write(c, wire.Stats{}); err != nil {
		t.Fatal(err)
	}
	var snap *obs.Snapshot
	for snap == nil {
		msg, err := wire.Read(c)
		if err != nil {
			t.Fatal(err)
		}
		switch m := msg.(type) {
		case wire.StatsResult:
			snap, err = obs.ParseSnapshot(m.JSON)
			if err != nil {
				t.Fatalf("bad snapshot JSON: %v", err)
			}
		case wire.Error:
			t.Fatalf("server error: %s", m.Message)
		default:
			t.Fatalf("unexpected message %#v", msg)
		}
	}
	// The Ready that ends the Stats exchange.
	if msg, err := wire.Read(c); err != nil {
		t.Fatal(err)
	} else if _, ok := msg.(wire.Ready); !ok {
		t.Fatalf("expected Ready after StatsResult, got %#v", msg)
	}
	// Metrics are process-global, so assert floors, not exact values.
	if snap.Counter("server.sessions") < 1 {
		t.Fatal("server.sessions not counted")
	}
	if snap.Counter("server.stmts") < 1 {
		t.Fatal("server.stmts not counted")
	}
	if snap.Counter("engine.stmts") < 1 {
		t.Fatal("engine.stmts not counted")
	}
}
