package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"ldv/internal/engine"
	"ldv/internal/wire"
)

// queryTxn runs one statement and additionally reports the transaction
// state the closing Ready carries, plus the first column of every data row.
func queryTxn(t *testing.T, c net.Conn, sql string) (vals []string, serverErr string, inTxn bool) {
	t.Helper()
	if err := wire.Write(c, wire.Query{SQL: sql}); err != nil {
		t.Fatal(err)
	}
	for {
		msg, err := wire.Read(c)
		if err != nil {
			t.Fatal(err)
		}
		switch m := msg.(type) {
		case wire.RowDescription, wire.CommandComplete:
		case wire.DataRow:
			vals = append(vals, m.Values[0].String())
		case wire.Error:
			serverErr = m.Message
		case wire.Ready:
			return vals, serverErr, m.InTxn
		default:
			t.Fatalf("unexpected message %#v", msg)
		}
	}
}

func mustQueryTxn(t *testing.T, c net.Conn, sql string) ([]string, bool) {
	t.Helper()
	vals, serr, inTxn := queryTxn(t, c, sql)
	if serr != "" {
		t.Fatalf("%s: %s", sql, serr)
	}
	return vals, inTxn
}

// Two wire sessions hold independent open transactions, each with snapshot
// reads, and the Ready message reports per-session transaction state.
func TestServerPerSessionTransactions(t *testing.T) {
	s := newTestServer(t)
	c1 := dial(t, s, "p1")
	defer c1.Close()
	c2 := dial(t, s, "p2")
	defer c2.Close()

	if _, inTxn := mustQueryTxn(t, c1, "BEGIN"); !inTxn {
		t.Fatal("c1 Ready must report InTxn after BEGIN")
	}
	if _, inTxn := mustQueryTxn(t, c2, "BEGIN"); !inTxn {
		t.Fatal("c2 must be able to BEGIN while c1's transaction is open")
	}

	mustQueryTxn(t, c1, "INSERT INTO t VALUES (10, 'c1')")
	// c2's snapshot predates c1's insert, and the insert is uncommitted.
	if vals, _ := mustQueryTxn(t, c2, "SELECT a FROM t ORDER BY a"); len(vals) != 2 {
		t.Fatalf("c2 sees %v, want the 2 preloaded rows", vals)
	}
	if _, inTxn := mustQueryTxn(t, c1, "COMMIT"); inTxn {
		t.Fatal("c1 Ready must report no transaction after COMMIT")
	}
	// Still invisible to c2: its snapshot was taken before c1 committed.
	if vals, _ := mustQueryTxn(t, c2, "SELECT a FROM t ORDER BY a"); len(vals) != 2 {
		t.Fatalf("c2 snapshot moved mid-transaction: %v", vals)
	}
	if _, inTxn := mustQueryTxn(t, c2, "ROLLBACK"); inTxn {
		t.Fatal("c2 Ready must report no transaction after ROLLBACK")
	}
	if vals, _ := mustQueryTxn(t, c2, "SELECT a FROM t ORDER BY a"); len(vals) != 3 {
		t.Fatalf("after both transactions ended c2 sees %v, want 3 rows", vals)
	}

	// A dropped connection rolls its transaction back.
	c3 := dial(t, s, "p3")
	mustQueryTxn(t, c3, "BEGIN")
	mustQueryTxn(t, c3, "INSERT INTO t VALUES (99, 'doomed')")
	c3.Close()
	for i := 0; ; i++ {
		res, err := s.DB().Exec("SELECT a FROM t WHERE a = 99", engine.ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) == 0 {
			break
		}
		if i > 1000 {
			t.Fatal("abandoned wire transaction never rolled back")
		}
	}
}

// N goroutine clients run a mixed BEGIN/INSERT/SELECT/UPDATE/COMMIT/ROLLBACK
// workload over the wire. Readers assert snapshot isolation via a conserved
// balance invariant; writers assert their committed rows (and only those)
// survive. Run under -race via `make test`.
func TestServerMixedWorkloadConcurrent(t *testing.T) {
	db := engine.NewDB(nil)
	if _, err := db.ExecScript(`
		CREATE TABLE acct (id INT PRIMARY KEY, bal INT);
		INSERT INTO acct VALUES (1, 50), (2, 50);`, engine.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	s := New(db, nil)

	const writers, readers, rounds = 4, 3, 20
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	committed := make([]int, writers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := dial(t, s, fmt.Sprintf("writer:%d", w))
			defer c.Close()
			for i := 0; i < rounds; i++ {
				if _, serr, _ := queryTxn(t, c, "BEGIN"); serr != "" {
					errs <- fmt.Errorf("writer %d: BEGIN: %s", w, serr)
					return
				}
				// Unique key per (writer, round); bal 0 keeps the invariant.
				stmts := []string{
					fmt.Sprintf("INSERT INTO acct VALUES (%d, 0)", 100+w*1000+i),
					"UPDATE acct SET bal = bal - 1 WHERE id = 1",
					"UPDATE acct SET bal = bal + 1 WHERE id = 2",
				}
				aborted := false
				for _, sql := range stmts {
					if _, serr, _ := queryTxn(t, c, sql); serr != "" {
						if !strings.Contains(serr, "could not serialize") {
							errs <- fmt.Errorf("writer %d: %s: %s", w, sql, serr)
							return
						}
						aborted = true
						break
					}
				}
				end := "COMMIT"
				if aborted || i%3 == 2 { // every third round rolls back on purpose
					end = "ROLLBACK"
				}
				if _, serr, inTxn := queryTxn(t, c, end); serr != "" || inTxn {
					errs <- fmt.Errorf("writer %d: %s: err=%q inTxn=%v", w, end, serr, inTxn)
					return
				}
				if end == "COMMIT" {
					committed[w]++
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := dial(t, s, fmt.Sprintf("reader:%d", r))
			defer c.Close()
			for i := 0; i < rounds; i++ {
				vals, serr, _ := queryTxn(t, c, "SELECT SUM(bal) FROM acct")
				if serr != "" {
					errs <- fmt.Errorf("reader %d: %s", r, serr)
					return
				}
				if len(vals) != 1 || vals[0] != "100" {
					errs <- fmt.Errorf("reader %d saw torn state: sum = %v", r, vals)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Exactly the committed inserts survive, per writer.
	for w := 0; w < writers; w++ {
		res, err := db.Exec(fmt.Sprintf(
			"SELECT COUNT(*) FROM acct WHERE id >= %d AND id < %d", 100+w*1000, 100+(w+1)*1000),
			engine.ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].String(); got != fmt.Sprint(committed[w]) {
			t.Fatalf("writer %d: %s rows survived, want %d", w, got, committed[w])
		}
	}
	res, err := db.Exec("SELECT SUM(bal) FROM acct", engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "100" {
		t.Fatalf("final sum = %s", res.Rows[0][0].String())
	}
}
