// Package server implements the LDV database server: it owns an engine.DB,
// accepts wire-protocol connections, executes statements, and streams
// results (with per-row Lineage when requested). The server can run
// standalone on a net.Listener or as a simulated process inside osim, where
// its data directory lives in the simulated filesystem so file-granularity
// packagers observe real DB data files.
package server

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ldv/internal/engine"
	"ldv/internal/obs"
	obslog "ldv/internal/obs/log"
	"ldv/internal/sqlparse"
	"ldv/internal/wire"
)

// Session and statement accounting for the Stats endpoint.
var (
	mSessions       = obs.NewCounter("server.sessions", "Client sessions accepted")
	gActiveSessions = obs.NewGauge("server.active_sessions", "Client sessions currently connected")
	mStatements     = obs.NewCounter("server.stmts", "Statements received over the wire")
	mErrors         = obs.NewCounter("server.errors", "Statements that failed on the server")
)

// Acceptor abstracts the listeners the server can serve on: both
// net.Listener and osim.Listener satisfy it.
type Acceptor interface {
	Accept() (net.Conn, error)
}

// Server executes statements against a database on behalf of wire clients.
// Each connection gets its own engine.Session, so sessions run concurrently
// and hold independent transactions.
type Server struct {
	db *engine.DB
	// logger is immutable after New — unlike fs it is never reassigned, so
	// every goroutine may read it without holding mu. A nil logger discards
	// everything (obslog methods are nil-safe).
	logger *obslog.Logger
	// slowQueryNS is the slow-query log threshold in nanoseconds (0 = off).
	slowQueryNS atomic.Int64

	mu  sync.Mutex
	fs  engine.FileSystem
	dur *durability // non-nil once EnableDurability succeeds

	// repl is the replication source serving Subscribe requests (a primary),
	// gate the read gate replica servers consult before running queries.
	repl ReplicationSource
	gate ReadGate

	// activity tracks live connections for the ldv_stat_activity system
	// view, keyed by session id.
	actMu    sync.Mutex
	activity map[int64]*sessionActivity

	// prepared tracks each connection's named prepared statements for the
	// ldv_stat_prepared system view, keyed by session id.
	prepMu   sync.Mutex
	prepared map[int64]*sessionStmts
}

// ReplicationSource serves replication subscriptions — the primary role.
// ServeSubscription takes over the connection after the server read a
// Subscribe message: it streams the bootstrap snapshot and then WAL
// segments until the peer disconnects. Implemented by repl.Primary; an
// interface here so the server package does not depend on repl.
type ReplicationSource interface {
	ServeSubscription(conn net.Conn, proc string, sub wire.Subscribe) error
}

// ReadGate delays queries on a replica until the local database has applied
// at least minSeq (0 = just bootstrapped and live). Implemented by
// repl.Replica.
type ReadGate interface {
	WaitApplied(minSeq uint64) error
}

// SetReplicationSource makes the server answer Subscribe messages from src
// (pass nil to refuse them). Safe to call while serving.
func (s *Server) SetReplicationSource(src ReplicationSource) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.repl = src
}

// SetReadGate installs the query gate of a replica server (nil = none).
func (s *Server) SetReadGate(g ReadGate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gate = g
}

func (s *Server) replicationSource() ReplicationSource {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repl
}

func (s *Server) readGate() ReadGate {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gate
}

// New returns a server over db. logger may be nil to disable logging; it
// must not be changed after New (sessions read it concurrently, unlocked).
func New(db *engine.DB, logger *obslog.Logger) *Server {
	s := &Server{db: db, logger: logger, activity: map[int64]*sessionActivity{}, prepared: map[int64]*sessionStmts{}}
	s.registerActivityView()
	s.registerPreparedView()
	return s
}

// SetSlowQueryThreshold enables the slow-query log: statements taking d or
// longer are logged at warn level with their SQL, latency, and trace id.
// Zero disables it. Safe to call while serving.
func (s *Server) SetSlowQueryThreshold(d time.Duration) {
	s.slowQueryNS.Store(int64(d))
}

// SetFS gives the server a filesystem for COPY statements. When the server
// runs as a simulated process this is its ProcFS, so COPY file accesses are
// traced as server I/O.
func (s *Server) SetFS(fs engine.FileSystem) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fs = fs
}

func (s *Server) fileSystem() engine.FileSystem {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fs
}

// DB exposes the underlying database (used by packagers that need direct
// access, e.g. to checkpoint the data directory).
func (s *Server) DB() *engine.DB { return s.db }

// Serve accepts connections until the acceptor fails (e.g. is closed),
// handling each session on its own goroutine.
func (s *Server) Serve(l Acceptor) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.HandleConn(conn)
	}
}

// HandleConn runs one client session to completion.
//
// Transport batching: reads go through a BufferedConn and responses
// accumulate in a bufio.Writer that is flushed only when the request stream
// drains — i.e. just before the session would block waiting for the client.
// For one statement at a time this degenerates to one write per response
// group; for a pipelined burst of Executes the whole burst's response groups
// leave in a single write. Frame boundaries are unchanged either way.
func (s *Server) HandleConn(conn net.Conn) {
	defer conn.Close()
	bc := wire.NewBufferedConn(conn)
	out := bufio.NewWriterSize(conn, 64<<10)

	first, err := wire.Read(bc)
	if err != nil {
		return
	}
	startup, ok := first.(wire.Startup)
	if !ok {
		_ = wire.Write(conn, wire.Error{Message: "protocol error: expected Startup"})
		return
	}
	// The sessions counter is the single source of truth for session ids:
	// Add returns the post-increment value, which is this session's id.
	sid := mSessions.Add(1)
	gActiveSessions.Add(1)
	defer gActiveSessions.Add(-1)
	slog := s.logger.With("sid", sid)
	slog.Info("session open", "proc", startup.Proc, "db", startup.Database)

	// traceAware sessions announced the "trace" Startup option: the server
	// records spans joining the trace context their queries carry.
	traceAware := false
	for _, o := range startup.Options {
		if o == "trace" {
			traceAware = true
		}
	}
	// defaultTrace is the session's standing trace context, set by
	// TraceContext messages; per-query headers override it.
	var defaultTrace obs.SpanContext

	// Session teardown rolls back any transaction the client abandoned.
	sess := s.db.NewSession()
	defer sess.Close()

	// Publish this session's state to the ASH sampler. From here on, every
	// blocking point below (client reads, read-gate waits, and — via the
	// session — lock and group-commit waits) reports a wait event.
	ws := obs.RegisterSession(sid, startup.Proc)
	defer obs.UnregisterSession(sid)
	sess.SetWaitState(ws)

	act := s.registerActivity(sid, startup.Proc)
	defer s.deregisterActivity(sid)

	stmts := s.registerStmts(sid)
	defer s.deregisterStmts(sid)

	if err := wire.Write(out, wire.Ready{InTxn: sess.InTxn()}); err != nil {
		return
	}
	for {
		// About to block on the client: ship everything queued first.
		if bc.Buffered() == 0 {
			if err := out.Flush(); err != nil {
				slog.Error("flush failed", "err", err)
				return
			}
		}
		msg, err := readClient(bc, ws)
		if err != nil {
			if err != io.EOF {
				slog.Error("read failed", "err", err)
			}
			return
		}
		switch m := msg.(type) {
		case wire.Terminate:
			return
		case wire.TraceContext:
			defaultTrace = m.Context
		case wire.Query:
			mStatements.Inc()
			sc := m.Trace
			if sc.IsZero() {
				sc = defaultTrace
			}
			if !traceAware {
				sc = obs.SpanContext{}
			}
			if err := s.handleQuery(out, sess, act, slog, startup.Proc, m, sc); err != nil {
				slog.Error("query connection failed", "err", err)
				return
			}
		case wire.Parse:
			if err := s.handleParse(out, sess, stmts, m); err != nil {
				slog.Error("parse connection failed", "err", err)
				return
			}
		case wire.Bind:
			// Fire-and-forget like TraceContext: errors surface on Execute.
			stmts.bind(m.Stmt, m.Args)
		case wire.Execute:
			mStatements.Inc()
			sc := m.Trace
			if sc.IsZero() {
				sc = defaultTrace
			}
			if !traceAware {
				sc = obs.SpanContext{}
			}
			if err := s.handleExecute(out, sess, act, slog, startup.Proc, stmts, m, sc); err != nil {
				slog.Error("execute connection failed", "err", err)
				return
			}
		case wire.CloseStmt:
			// Fire-and-forget; closing an unknown name is a no-op.
			stmts.close(m.Name)
		case wire.Stats:
			if err := s.handleStats(out, sess, m); err != nil {
				slog.Error("stats failed", "err", err)
				return
			}
		case wire.Subscribe:
			src := s.replicationSource()
			if src == nil {
				if err := wire.Write(out, wire.Error{Message: "this server is not a replication primary"}); err != nil {
					return
				}
				if err := wire.Write(out, wire.Ready{InTxn: sess.InTxn()}); err != nil {
					return
				}
				continue
			}
			// The connection becomes a replication subscription: the source
			// owns it until the replica disconnects, then the session ends.
			// Hand it the buffered conn (reads must drain our buffer) after
			// flushing our own pending responses.
			slog.Info("replication subscription", "replica", m.ReplicaID)
			if err := out.Flush(); err != nil {
				return
			}
			if err := src.ServeSubscription(bc, startup.Proc, m); err != nil {
				slog.Error("replication subscription ended", "replica", m.ReplicaID, "err", err)
			}
			return
		default:
			if err := wire.Write(out, wire.Error{Message: fmt.Sprintf("protocol error: unexpected %T", msg)}); err != nil {
				return
			}
			if err := wire.Write(out, wire.Ready{InTxn: sess.InTxn()}); err != nil {
				return
			}
		}
	}
}

// readClient blocks for the next client message under a client.read wait,
// so sessions idling between requests show as idle-waiting in the ASH
// rather than on-CPU.
func readClient(bc *wire.BufferedConn, ws *obs.SessionState) (wire.Message, error) {
	msg, err := func() (wire.Message, error) {
		end := obs.WaitBegin(ws, obs.WaitClientRead)
		defer end()
		return wire.Read(bc)
	}()
	// A message arrived: the new request's waits (read gate, locks, group
	// commit) start from zero. The reset must come after the read wait's
	// end() — the idle time spent receiving this request belongs to the
	// cumulative client.read totals, not to the statement it carries.
	ws.ResetStatementWaits()
	return msg, err
}

// gateWait blocks on a replica's read gate under a repl.apply wait, making
// read-your-writes stalls attributable in the ASH and wait-event stats.
func gateWait(g ReadGate, ws *obs.SessionState, minSeq uint64) error {
	end := obs.WaitBegin(ws, obs.WaitReplApply)
	defer end()
	return g.WaitApplied(minSeq)
}

// waitSummary renders a statement's wait profile for the slow-query log:
// "<dominant event>:<dominant time>/<total wait time>", or "none" when the
// statement never blocked.
func waitSummary(ws *obs.SessionState) string {
	ev, domNS, totalNS := ws.StatementWaits()
	if totalNS <= 0 || ev == obs.WaitNone {
		return "none"
	}
	return fmt.Sprintf("%s:%s/%s", ev.Name(), time.Duration(domNS), time.Duration(totalNS))
}

// handleStats serves a Stats request with the requested observability
// document: the metrics snapshot, or the flight recorder's completed traces.
func (s *Server) handleStats(conn io.Writer, sess *engine.Session, req wire.Stats) error {
	var data []byte
	var err error
	switch req.Kind {
	case wire.StatsKindMetrics:
		data, err = obs.TakeSnapshot().JSON()
	case wire.StatsKindTraces:
		data, err = obs.MarshalTraces(obs.Traces())
	default:
		err = fmt.Errorf("unknown stats kind %d", req.Kind)
	}
	if err != nil {
		if werr := wire.Write(conn, wire.Error{Message: err.Error()}); werr != nil {
			return werr
		}
		return wire.Write(conn, wire.Ready{InTxn: sess.InTxn()})
	}
	if err := wire.Write(conn, wire.StatsResult{JSON: data}); err != nil {
		return err
	}
	return wire.Write(conn, wire.Ready{InTxn: sess.InTxn()})
}

// handleQuery executes one Query and streams its response. The response
// body (rows, completion or error) is written by runQuery, which owns the
// per-request span; the final Ready goes out only after runQuery returns —
// i.e. after the span has ended — because the client seals the trace when it
// reads Ready, and the server's spans must be in the flight recorder by then.
// The writer is HandleConn's session output buffer, flushed when the request
// stream drains.
func (s *Server) handleQuery(conn io.Writer, sess *engine.Session, act *sessionActivity, slog *obslog.Logger, proc string, q wire.Query, sc obs.SpanContext) error {
	if err := s.runQuery(conn, sess, act, slog, proc, q, sc); err != nil {
		return err
	}
	return wire.Write(conn, wire.Ready{InTxn: sess.InTxn()})
}

// runQuery executes the statement under a server.query span joining the
// request's trace context (when one is present) and writes everything up to
// but not including the final Ready.
func (s *Server) runQuery(conn io.Writer, sess *engine.Session, act *sessionActivity, slog *obslog.Logger, proc string, q wire.Query, sc obs.SpanContext) error {
	var sp *obs.Span
	if !sc.IsZero() {
		sp = obs.StartSpanIn("server.query", sc)
		slog = slog.With("trace", sp.TraceID())
	}
	defer sp.End()
	// On a replica, hold the query until the apply loop has caught up to the
	// client's read-your-writes bound (and, bound or not, until the replica
	// has bootstrapped at all).
	if g := s.readGate(); g != nil {
		if err := gateWait(g, sess.WaitState(), q.MinApplied); err != nil {
			mErrors.Inc()
			slog.Error("read gate failed", "err", err, "min_applied", q.MinApplied)
			return wire.Write(conn, wire.Error{Message: err.Error()})
		}
	}
	t0 := time.Now()
	res, err := s.exec(sess, act, q.SQL, engine.ExecOptions{Proc: proc, WithLineage: q.WithLineage, Span: sp, AsOf: q.AsOf})
	elapsed := time.Since(t0)
	if thr := s.slowQueryNS.Load(); thr > 0 && elapsed >= time.Duration(thr) {
		// The fingerprint makes a slow-query entry joinable against
		// ldv_stat_statements (falling back to a fresh computation when the
		// statement failed before producing a Result).
		fp := ""
		if res != nil {
			fp = res.Fingerprint
		} else {
			fp = sqlparse.ComputeFingerprint(q.SQL).String()
		}
		slog.Warn("slow query", "elapsed", elapsed, "fingerprint", fp,
			"waits", waitSummary(sess.WaitState()), "sql", q.SQL)
	}
	if err != nil {
		mErrors.Inc()
		slog.Error("statement failed", "err", err, "sql", q.SQL)
		return wire.Write(conn, wire.Error{Message: err.Error()})
	}
	return streamResult(conn, res, 0)
}

// streamResult writes one statement's response group — RowDescription, rows
// (with lineage when computed), inline provenance tuples, CommandComplete —
// shared by the Query and Execute paths. tag is echoed in CommandComplete.Tag
// for pipelined Executes (0 for plain queries, keeping their frames
// byte-identical to the pre-v2 protocol).
func streamResult(conn io.Writer, res *engine.Result, tag uint64) error {
	if err := wire.Write(conn, wire.RowDescription{Columns: res.Columns}); err != nil {
		return err
	}
	for i, row := range res.Rows {
		if err := wire.Write(conn, wire.DataRow{Values: row}); err != nil {
			return err
		}
		if res.Lineage != nil {
			if err := wire.Write(conn, wire.LineageRow{Refs: res.Lineage[i]}); err != nil {
				return err
			}
		}
	}
	if len(res.TupleValues) > 0 {
		tv := wire.TupleValues{}
		for ref, vals := range res.TupleValues {
			tv.Refs = append(tv.Refs, ref)
			tv.Rows = append(tv.Rows, vals)
		}
		if err := wire.Write(conn, tv); err != nil {
			return err
		}
	}
	cc := wire.CommandComplete{
		RowsAffected: res.RowsAffected,
		StmtID:       res.StmtID,
		Start:        res.Start,
		End:          res.End,
		ReadRefs:     res.ReadRefs,
		WrittenRefs:  res.WrittenRefs,
		CommitSeq:    res.CommitSeq,
		Fingerprint:  res.Fingerprint,
		Tag:          tag,
	}
	return wire.Write(conn, cc)
}

// exec runs one statement on the connection's session, intercepting COPY
// (which needs file access). The activity entry covers execution only — a
// session burning in parse shows idle, which is fine at parse latencies.
func (s *Server) exec(sess *engine.Session, act *sessionActivity, sql string, opts engine.ExecOptions) (*engine.Result, error) {
	p, err := parseTraced(sql, opts.Span)
	if err != nil {
		return nil, err
	}
	act.begin(p.Fingerprint.String(), sql)
	defer func() { act.finish(sess.InTxn()) }()
	if c, ok := p.Stmt.(*sqlparse.Copy); ok {
		return s.execCopy(sess, c, opts)
	}
	return sess.ExecParsed(p, opts)
}

// parseTraced parses one statement under an engine.parse span.
func parseTraced(sql string, parent *obs.Span) (engine.Parsed, error) {
	sp := parent.Child("engine.parse")
	defer sp.End()
	return engine.ParseStatement(sql)
}

// execCopy performs COPY table FROM/TO 'path' using the server's
// filesystem. Records are CSV; NULL is \N.
func (s *Server) execCopy(sess *engine.Session, c *sqlparse.Copy, opts engine.ExecOptions) (*engine.Result, error) {
	fs := s.fileSystem()
	if fs == nil {
		return nil, fmt.Errorf("COPY: server has no filesystem configured")
	}
	if c.To {
		records, res, err := sess.CopyTo(c.Table, opts)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		w := csv.NewWriter(&buf)
		if err := w.WriteAll(records); err != nil {
			return nil, err
		}
		if err := fs.WriteFile(c.Path, buf.Bytes()); err != nil {
			return nil, fmt.Errorf("COPY TO %s: %w", c.Path, err)
		}
		return res, nil
	}
	data, err := fs.ReadFile(c.Path)
	if err != nil {
		return nil, fmt.Errorf("COPY FROM %s: %w", c.Path, err)
	}
	r := csv.NewReader(bytes.NewReader(data))
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("COPY FROM %s: %w", c.Path, err)
	}
	return sess.CopyFrom(c.Table, records, opts)
}
