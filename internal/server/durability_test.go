package server

import (
	"testing"
	"time"

	"ldv/internal/engine"
	"ldv/internal/osim"
)

func TestServerDurabilityRestart(t *testing.T) {
	fs := osim.NewFS()

	srv := New(engine.NewDB(nil), nil)
	if _, err := srv.EnableDurability(fs, "/var/db", 0); err != nil {
		t.Fatal(err)
	}
	c := dial(t, srv, "proc:1")
	for _, sql := range []string{
		"CREATE TABLE t (a INT PRIMARY KEY, b TEXT)",
		"INSERT INTO t VALUES (1, 'x'), (2, 'y')",
		"UPDATE t SET b = 'z' WHERE a = 2",
	} {
		if _, _, serr := query(t, c, sql, false); serr != "" {
			t.Fatalf("%s: %s", sql, serr)
		}
	}
	c.Close()
	// No Close/Checkpoint: the "process" dies here. Only the WAL survives.

	srv2 := New(engine.NewDB(nil), nil)
	stats, err := srv2.EnableDurability(fs, "/var/db", 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReplayedTxns == 0 {
		t.Fatalf("stats = %+v, want WAL replay", stats)
	}
	c2 := dial(t, srv2, "proc:2")
	defer c2.Close()
	rows, _, serr := query(t, c2, "SELECT a, b FROM t ORDER BY a", false)
	if serr != "" || rows != 2 {
		t.Fatalf("rows=%d err=%q after restart", rows, serr)
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}

	// A clean shutdown checkpointed: the third boot loads tables from files
	// and replays nothing.
	srv3 := New(engine.NewDB(nil), nil)
	stats3, err := srv3.EnableDurability(fs, "/var/db", 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats3.Tables != 1 || stats3.ReplayedTxns != 0 {
		t.Fatalf("stats after clean shutdown = %+v, want 1 table, 0 replayed", stats3)
	}
	if err := srv3.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServerBackgroundCheckpoint(t *testing.T) {
	fs := osim.NewFS()
	srv := New(engine.NewDB(nil), nil)
	if _, err := srv.EnableDurability(fs, "/var/db", 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// The freshly created log is just its header; a truncated log returns to
	// exactly this size.
	hdr, err := fs.ReadFile("/var/db/" + engine.WALFileName)
	if err != nil {
		t.Fatal(err)
	}

	c := dial(t, srv, "proc:1")
	defer c.Close()
	if _, _, serr := query(t, c, "CREATE TABLE t (a INT)", false); serr != "" {
		t.Fatal(serr)
	}
	if _, _, serr := query(t, c, "INSERT INTO t VALUES (1)", false); serr != "" {
		t.Fatal(serr)
	}

	// The background checkpointer must eventually write t.tbl and truncate
	// the WAL down to its header.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if fs.Exists("/var/db/t.tbl") {
			if data, err := fs.ReadFile("/var/db/" + engine.WALFileName); err == nil && len(data) == len(hdr) {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("background checkpoint never truncated the WAL")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestServerDurabilityDoubleEnable(t *testing.T) {
	fs := osim.NewFS()
	srv := New(engine.NewDB(nil), nil)
	if _, err := srv.EnableDurability(fs, "/var/db", 0); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.EnableDurability(fs, "/var/db", 0); err == nil {
		t.Fatal("second EnableDurability must fail")
	}
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}
