package server

import (
	"sort"
	"sync"
	"time"

	"ldv/internal/engine"
	"ldv/internal/sqlval"
)

// ldv_stat_activity: one row per live connection, served from a registry the
// connection goroutines maintain. A session querying the view sees itself as
// active — its own statement is mid-execution when the provider runs.

// sessionActivity is one connection's entry. The per-entry mutex keeps the
// provider's reads consistent without serializing connections against each
// other; methods are nil-safe so internal callers without an entry can pass
// nil.
type sessionActivity struct {
	id   int64
	proc string

	mu          sync.Mutex
	state       string // "idle", "active", "idle in transaction"
	fingerprint string // current statement's fingerprint ("" when idle)
	query       string // current statement's SQL ("" when idle)
	started     time.Time
}

// begin marks the session active on one statement.
func (a *sessionActivity) begin(fingerprint, query string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.state = "active"
	a.fingerprint = fingerprint
	a.query = query
	a.started = time.Now()
	a.mu.Unlock()
}

// finish returns the session to idle (or idle-in-transaction).
func (a *sessionActivity) finish(inTxn bool) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if inTxn {
		a.state = "idle in transaction"
	} else {
		a.state = "idle"
	}
	a.fingerprint = ""
	a.query = ""
	a.started = time.Time{}
	a.mu.Unlock()
}

func (s *Server) registerActivity(sid int64, proc string) *sessionActivity {
	a := &sessionActivity{id: sid, proc: proc, state: "idle"}
	s.actMu.Lock()
	s.activity[sid] = a
	s.actMu.Unlock()
	return a
}

func (s *Server) deregisterActivity(sid int64) {
	s.actMu.Lock()
	delete(s.activity, sid)
	s.actMu.Unlock()
}

// registerActivityView replaces the engine's placeholder ldv_stat_activity
// with this server's live registry.
func (s *Server) registerActivityView() {
	s.db.RegisterVirtualTable(&engine.VirtualTable{
		Name: "ldv_stat_activity",
		Schema: engine.Schema{Columns: []engine.Column{
			{Name: "session", Type: sqlval.KindInt},
			{Name: "proc", Type: sqlval.KindString},
			{Name: "state", Type: sqlval.KindString},
			{Name: "fingerprint", Type: sqlval.KindString},
			{Name: "query", Type: sqlval.KindString},
			{Name: "elapsed_ns", Type: sqlval.KindInt},
		}},
		Rows: s.activityRows,
	})
}

func (s *Server) activityRows() [][]sqlval.Value {
	s.actMu.Lock()
	acts := make([]*sessionActivity, 0, len(s.activity))
	for _, a := range s.activity {
		acts = append(acts, a)
	}
	s.actMu.Unlock()
	sort.Slice(acts, func(i, j int) bool { return acts[i].id < acts[j].id })

	now := time.Now()
	rows := make([][]sqlval.Value, 0, len(acts))
	for _, a := range acts {
		a.mu.Lock()
		var elapsed int64
		if !a.started.IsZero() {
			elapsed = int64(now.Sub(a.started))
		}
		rows = append(rows, []sqlval.Value{
			sqlval.NewInt(a.id),
			sqlval.NewString(a.proc),
			sqlval.NewString(a.state),
			sqlval.NewString(a.fingerprint),
			sqlval.NewString(a.query),
			sqlval.NewInt(elapsed),
		})
		a.mu.Unlock()
	}
	return rows
}
