package server

import (
	"fmt"
	"sync"
	"time"

	"ldv/internal/engine"
	"ldv/internal/obs"
)

// Checkpoints taken by the server (periodic background ones and explicit
// Checkpoint calls), for the Stats endpoint.
var mCheckpoints = obs.NewCounter("server.checkpoints", "Checkpoints taken by the server")

// durability is the server's background checkpointer state, created by
// EnableDurability and torn down by Close.
type durability struct {
	fs   engine.FileSystem
	dir  string
	stop chan struct{}
	wg   sync.WaitGroup
}

// EnableDurability makes the server's database durable under dir on fs: it
// recovers existing state (latest checkpoint plus WAL tail), attaches the
// write-ahead log so every subsequent commit is logged before it is
// acknowledged, and — when interval > 0 — starts a background goroutine
// that checkpoints the data directory every interval, truncating the WAL it
// supersedes. Call Close to stop the checkpointer and take a final
// checkpoint. Returns what recovery replayed.
func (s *Server) EnableDurability(fs engine.FileSystem, dir string, interval time.Duration) (engine.RecoveryStats, error) {
	s.mu.Lock()
	if s.dur != nil {
		s.mu.Unlock()
		return engine.RecoveryStats{}, fmt.Errorf("durability already enabled")
	}
	// Reserve the slot before the (lock-free) recovery so concurrent
	// EnableDurability calls cannot both proceed.
	d := &durability{fs: fs, dir: dir, stop: make(chan struct{})}
	s.dur = d
	s.mu.Unlock()

	stats, err := s.db.Recover(fs, dir)
	if err != nil {
		s.mu.Lock()
		s.dur = nil
		s.mu.Unlock()
		return stats, err
	}
	s.logger.Info("recovery complete", "dir", dir, "tables", int64(stats.Tables),
		"replayed_txns", int64(stats.ReplayedTxns), "wal_bytes", stats.WALBytes,
		"torn_bytes", stats.TornBytes)

	if interval > 0 {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-d.stop:
					return
				case <-t.C:
					if err := s.Checkpoint(); err != nil {
						s.logger.Error("background checkpoint failed", "err", err)
					}
				}
			}
		}()
	}
	return stats, nil
}

// Checkpoint writes the database's data directory now and truncates the WAL
// records the checkpoint supersedes. Durability must be enabled.
func (s *Server) Checkpoint() error {
	s.mu.Lock()
	d := s.dur
	s.mu.Unlock()
	if d == nil {
		return fmt.Errorf("durability not enabled")
	}
	if err := s.db.Checkpoint(d.fs, d.dir); err != nil {
		return err
	}
	mCheckpoints.Inc()
	return nil
}

// Close stops the background checkpointer (if running) and takes a final
// checkpoint so a clean shutdown leaves an empty WAL tail. Safe to call when
// durability was never enabled.
func (s *Server) Close() error {
	s.mu.Lock()
	d := s.dur
	s.dur = nil
	s.mu.Unlock()
	if d == nil {
		return nil
	}
	close(d.stop)
	d.wg.Wait()
	if err := s.db.Checkpoint(d.fs, d.dir); err != nil {
		return err
	}
	mCheckpoints.Inc()
	return nil
}
