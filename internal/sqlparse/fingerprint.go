package sqlparse

import "strings"

// Fingerprint identifies a class of statements that differ only in literal
// values and formatting: the normalized text replaces every number and
// string literal with '?', upper-cases keywords, lower-cases identifiers,
// and collapses whitespace; Hash is the FNV-1a 64-bit hash of that text.
// Statements with the same fingerprint share one row in ldv_stat_statements.
type Fingerprint struct {
	Hash uint64
	Text string
}

// IsZero reports whether the fingerprint is unset.
func (f Fingerprint) IsZero() bool { return f.Hash == 0 && f.Text == "" }

// String renders the hash as the 16-digit hex key shown by
// ldv_stat_statements ("" for the zero fingerprint).
func (f Fingerprint) String() string {
	if f.IsZero() {
		return ""
	}
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 0; i < 16; i++ {
		b[15-i] = hexdigits[(f.Hash>>(4*i))&0xf]
	}
	return string(b[:])
}

// fnv-1a 64-bit constants.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashText returns the FNV-1a 64-bit hash of a normalized statement text.
// Exposed so consumers holding only the text (e.g. log readers) can recover
// the join key against ldv_stat_statements.
func HashText(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// noSpaceBefore are operator tokens that attach to the preceding token.
var noSpaceBefore = map[string]bool{",": true, ")": true, ";": true, ".": true}

// noSpaceAfter are operator tokens the following token attaches to.
var noSpaceAfter = map[string]bool{"(": true, ".": true}

// FingerprintTokens normalizes an already-lexed statement. Literal values
// (numbers, strings, params) become '?'; the lexer has already upper-cased
// keywords and lower-cased identifiers; token spacing is canonicalized so
// formatting differences vanish. A trailing semicolon is dropped.
func FingerprintTokens(toks []Token) Fingerprint {
	for len(toks) > 0 {
		last := toks[len(toks)-1]
		if last.Type == TokOp && last.Text == ";" {
			toks = toks[:len(toks)-1]
			continue
		}
		break
	}
	var sb strings.Builder
	prev := ""
	for i, t := range toks {
		text := t.Text
		switch t.Type {
		case TokNumber, TokString, TokParam:
			text = "?"
		}
		if i > 0 && !noSpaceAfter[prev] && !(t.Type == TokOp && noSpaceBefore[text]) {
			sb.WriteByte(' ')
		}
		sb.WriteString(text)
		if t.Type == TokOp {
			prev = text
		} else {
			prev = ""
		}
	}
	text := sb.String()
	return Fingerprint{Hash: HashText(text), Text: text}
}

// ComputeFingerprint lexes src and fingerprints it. Unlexable input hashes
// its trimmed raw text so even malformed statements aggregate stably.
func ComputeFingerprint(src string) Fingerprint {
	toks, err := Tokenize(src)
	if err != nil {
		text := strings.Join(strings.Fields(src), " ")
		return Fingerprint{Hash: HashText(text), Text: text}
	}
	return FingerprintTokens(toks)
}

// ParseFingerprinted parses one statement and computes its fingerprint from
// a single tokenize pass — the entry point the engine uses so the
// per-statement cost of fingerprinting is one extra walk over the token
// slice, not a second lex.
func ParseFingerprinted(src string) (Statement, Fingerprint, error) {
	stmt, fp, _, err := ParsePrepared(src)
	return stmt, fp, err
}

// ParsePrepared is ParseFingerprinted plus the count of positional `?`
// placeholders the statement declares — the arity a Bind must supply. Param
// indexes are assigned in source order, so the count equals the highest
// index.
func ParsePrepared(src string) (Statement, Fingerprint, int, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, ComputeFingerprint(src), 0, err
	}
	fp := FingerprintTokens(toks)
	p := &Parser{toks: toks, src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, fp, 0, err
	}
	p.acceptOp(";")
	if !p.atEOF() {
		return nil, fp, 0, p.errorf("unexpected trailing input starting at %q", p.peek().Text)
	}
	return stmt, fp, p.nparams, nil
}
