// Package sqlparse implements the SQL front end of the LDV engine: a lexer,
// an AST, and a recursive-descent parser for the dialect used by the paper's
// workloads — SELECT (joins, aggregation, GROUP BY, ORDER BY, LIMIT, LIKE,
// BETWEEN, IN), INSERT, UPDATE, DELETE, CREATE/DROP TABLE, and the
// Perm-style SELECT PROVENANCE extension.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenType classifies lexical tokens.
type TokenType int

// Token types.
const (
	TokEOF TokenType = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp    // operators and punctuation: + - * / % = <> != < <= > >= ( ) , . ; ||
	TokParam // positional `?` placeholder (prepared statements)
)

// Token is a single lexical token with its source position.
type Token struct {
	Type TokenType
	Text string // keywords are upper-cased, identifiers lower-cased
	Pos  int    // byte offset in the input
}

// keywords recognized by the lexer. Everything else is an identifier.
var keywords = map[string]bool{
	"SELECT": true, "PROVENANCE": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true, "LIMIT": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "LIKE": true, "BETWEEN": true,
	"IN": true, "IS": true, "NULL": true, "TRUE": true, "FALSE": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "CREATE": true, "TABLE": true,
	"DROP": true, "PRIMARY": true, "KEY": true, "ASC": true, "DESC": true,
	"DATE": true, "INTEGER": true, "INT": true, "FLOAT": true, "REAL": true,
	"TEXT": true, "VARCHAR": true, "CHAR": true, "BOOLEAN": true, "BOOL": true,
	"DISTINCT": true, "JOIN": true, "ON": true, "INNER": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"DECIMAL": true, "IF": true, "EXISTS": true,
	"INDEX": true, "USING": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "TRANSACTION": true,
	"COPY": true, "TO": true,
	"EXPLAIN": true, "ANALYZE": true,
	"OF": true, "VACUUM": true, "RETAIN": true,
	"REENACT": true, "SUBSTITUTE": true, "WITH": true,
}

// Lexer tokenizes a SQL string.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Type: TokEOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		return l.lexIdent(start), nil
	case c >= '0' && c <= '9':
		return l.lexNumber(start)
	case c == '\'':
		return l.lexString(start)
	default:
		return l.lexOp(start)
	}
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			// line comment
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *Lexer) lexIdent(start int) Token {
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		return Token{Type: TokKeyword, Text: upper, Pos: start}
	}
	return Token{Type: TokIdent, Text: strings.ToLower(word), Pos: start}
}

func (l *Lexer) lexNumber(start int) (Token, error) {
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			if seenDot {
				break
			}
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	text := l.src[start:l.pos]
	if strings.HasSuffix(text, ".") {
		return Token{}, fmt.Errorf("malformed number %q at offset %d", text, start)
	}
	return Token{Type: TokNumber, Text: text, Pos: start}, nil
}

func (l *Lexer) lexString(start int) (Token, error) {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Type: TokString, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("unterminated string literal at offset %d", start)
}

var twoCharOps = map[string]bool{"<=": true, ">=": true, "<>": true, "!=": true, "||": true}

func (l *Lexer) lexOp(start int) (Token, error) {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharOps[two] {
			l.pos += 2
			return Token{Type: TokOp, Text: two, Pos: start}, nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '+', '-', '*', '/', '%', '=', '<', '>', '(', ')', ',', '.', ';':
		l.pos++
		return Token{Type: TokOp, Text: string(c), Pos: start}, nil
	case '?':
		l.pos++
		return Token{Type: TokParam, Text: "?", Pos: start}, nil
	default:
		return Token{}, fmt.Errorf("unexpected character %q at offset %d", c, start)
	}
}

// Tokenize lexes the whole input, excluding the trailing EOF token.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Type == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
