package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"ldv/internal/sqlval"
)

// Parser converts token streams into statements.
type Parser struct {
	toks    []Token
	pos     int
	src     string
	nparams int // `?` placeholders seen so far; assigns 1-based Param indexes
}

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (Statement, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.acceptOp(";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input starting at %q", p.peek().Text)
	}
	return stmt, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Statement, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	var stmts []Statement
	for !p.atEOF() {
		if p.acceptOp(";") {
			continue
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, stmt)
		if !p.acceptOp(";") && !p.atEOF() {
			return nil, p.errorf("expected ';' between statements, got %q", p.peek().Text)
		}
	}
	return stmts, nil
}

func (p *Parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *Parser) peek() Token {
	if p.atEOF() {
		return Token{Type: TokEOF}
	}
	return p.toks[p.pos]
}

func (p *Parser) next() Token {
	t := p.peek()
	if !p.atEOF() {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("parse error: "+format, args...)
}

// acceptKeyword consumes the next token if it is the given keyword.
func (p *Parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.Type == TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, got %q", kw, p.peek().Text)
	}
	return nil
}

func (p *Parser) acceptOp(op string) bool {
	t := p.peek()
	if t.Type == TokOp && t.Text == op {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errorf("expected %q, got %q", op, p.peek().Text)
	}
	return nil
}

// expectIdent consumes an identifier (keywords that commonly double as
// column names, like DATE, are also accepted).
func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Type == TokIdent {
		p.pos++
		return t.Text, nil
	}
	return "", p.errorf("expected identifier, got %q", t.Text)
}

func (p *Parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Type != TokKeyword {
		return nil, p.errorf("expected statement keyword, got %q", t.Text)
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "COPY":
		return p.parseCopy()
	case "EXPLAIN":
		return p.parseExplain()
	case "VACUUM":
		return p.parseVacuum()
	case "REENACT":
		return p.parseReenact()
	case "BEGIN":
		p.next()
		p.acceptKeyword("TRANSACTION")
		return &Begin{}, nil
	case "COMMIT":
		p.next()
		p.acceptKeyword("TRANSACTION")
		return &Commit{}, nil
	case "ROLLBACK":
		p.next()
		p.acceptKeyword("TRANSACTION")
		return &Rollback{}, nil
	default:
		return nil, p.errorf("unsupported statement %q", t.Text)
	}
}

func (p *Parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	sel.Provenance = p.acceptKeyword("PROVENANCE")
	sel.Distinct = p.acceptKeyword("DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}

	if p.acceptKeyword("FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, ref)
			if !p.acceptOp(",") {
				break
			}
		}
		for {
			if p.acceptKeyword("INNER") {
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
			} else if !p.acceptKeyword("JOIN") {
				break
			}
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.Joins = append(sel.Joins, JoinClause{Table: ref, On: on})
		}
		// AS OF directly after the FROM/JOIN section (the natural reading
		// position); the trailing position after LIMIT is also accepted.
		asof, err := p.tryAsOf()
		if err != nil {
			return nil, err
		}
		sel.AsOf = asof
	}

	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, g)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		if len(sel.GroupBy) == 0 {
			return nil, p.errorf("HAVING requires GROUP BY")
		}
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.Type != TokNumber {
			return nil, p.errorf("expected LIMIT count, got %q", t.Text)
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.Text)
		}
		sel.Limit = n
	}
	asof, err := p.tryAsOf()
	if err != nil {
		return nil, err
	}
	if asof != nil {
		if sel.AsOf != nil {
			return nil, p.errorf("duplicate AS OF clause")
		}
		sel.AsOf = asof
	}
	return sel, nil
}

// peekAsOf reports whether the next two tokens are the keywords AS OF — the
// lookahead that keeps `FROM t AS OF 5` from consuming OF as a table alias.
func (p *Parser) peekAsOf() bool {
	return p.peek().Type == TokKeyword && p.peek().Text == "AS" &&
		p.pos+1 < len(p.toks) && p.toks[p.pos+1].Type == TokKeyword &&
		p.toks[p.pos+1].Text == "OF"
}

// tryAsOf parses an optional AS OF <expr> clause, returning nil when the
// next tokens are not AS OF. The bound is an additive expression so ticks
// can be written as literals, parameters, or simple arithmetic.
func (p *Parser) tryAsOf() (Expr, error) {
	if !p.peekAsOf() {
		return nil, nil
	}
	p.pos += 2
	return p.parseAdditive()
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	// tbl.* lookahead
	if p.peek().Type == TokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Type == TokOp && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Type == TokOp && p.toks[p.pos+2].Text == "*" {
		tbl := p.next().Text
		p.next() // .
		p.next() // *
		return SelectItem{Star: true, Table: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().Type == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.peekAsOf() {
		return ref, nil // AS OF belongs to the SELECT, not an alias
	}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.peek().Type == TokIdent {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

func (p *Parser) parseInsert() (*Insert, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.acceptOp("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.peek().Type == TokKeyword && p.peek().Text == "SELECT" {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Query = q
		return ins, nil
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return ins, nil
}

func (p *Parser) parseUpdate() (*Update, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	upd := &Update{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, Assignment{Column: col, Expr: e})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Where = w
	}
	return upd, nil
}

func (p *Parser) parseDelete() (*Delete, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

// typeKeywords maps SQL type names to value kinds.
var typeKeywords = map[string]sqlval.Kind{
	"INTEGER": sqlval.KindInt, "INT": sqlval.KindInt,
	"FLOAT": sqlval.KindFloat, "REAL": sqlval.KindFloat, "DECIMAL": sqlval.KindFloat,
	"TEXT": sqlval.KindString, "VARCHAR": sqlval.KindString, "CHAR": sqlval.KindString,
	"BOOLEAN": sqlval.KindBool, "BOOL": sqlval.KindBool,
	"DATE": sqlval.KindDate,
}

// parseCreate dispatches CREATE TABLE vs. CREATE INDEX.
func (p *Parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if p.peek().Type == TokKeyword && p.peek().Text == "INDEX" {
		return p.parseCreateIndex()
	}
	return p.parseCreateTable()
}

// parseDrop dispatches DROP TABLE vs. DROP INDEX.
func (p *Parser) parseDrop() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if p.peek().Type == TokKeyword && p.peek().Text == "INDEX" {
		return p.parseDropIndex()
	}
	return p.parseDropTable()
}

// parseCreateIndex parses CREATE INDEX [IF NOT EXISTS] name ON table (cols)
// [USING HASH|ORDERED]; CREATE has already been consumed.
func (p *Parser) parseCreateIndex() (*CreateIndex, error) {
	if err := p.expectKeyword("INDEX"); err != nil {
		return nil, err
	}
	ci := &CreateIndex{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		ci.IfNotExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ci.Name = name
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ci.Table = table
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ci.Columns = append(ci.Columns, col)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("USING") {
		kind, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		switch kind {
		case "hash", "ordered":
			ci.Kind = kind
		default:
			return nil, p.errorf("unknown index kind %q (want HASH or ORDERED)", kind)
		}
	}
	return ci, nil
}

// parseDropIndex parses DROP INDEX [IF EXISTS] name; DROP has already been
// consumed.
func (p *Parser) parseDropIndex() (*DropIndex, error) {
	if err := p.expectKeyword("INDEX"); err != nil {
		return nil, err
	}
	di := &DropIndex{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		di.IfExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	di.Name = name
	return di, nil
}

func (p *Parser) parseCreateTable() (*CreateTable, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	ct := &CreateTable{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		ct.IfNotExists = true
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ct.Table = table
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		t := p.next()
		if t.Type != TokKeyword {
			return nil, p.errorf("expected column type, got %q", t.Text)
		}
		kind, ok := typeKeywords[t.Text]
		if !ok {
			return nil, p.errorf("unknown column type %q", t.Text)
		}
		// Optional length like VARCHAR(25) / DECIMAL(15,2): parsed and ignored.
		if p.acceptOp("(") {
			for !p.acceptOp(")") {
				if p.atEOF() {
					return nil, p.errorf("unterminated type length")
				}
				p.next()
			}
		}
		col := ColumnDef{Name: name, Type: kind}
		if p.acceptKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			col.PrimaryKey = true
		}
		ct.Columns = append(ct.Columns, col)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *Parser) parseDropTable() (*DropTable, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	dt := &DropTable{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		dt.IfExists = true
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	dt.Table = table
	return dt, nil
}

// parseExplain parses EXPLAIN [ANALYZE] <stmt>. Only statements with an
// execution tree may be explained: SELECT, INSERT, UPDATE, DELETE.
func (p *Parser) parseExplain() (*Explain, error) {
	if err := p.expectKeyword("EXPLAIN"); err != nil {
		return nil, err
	}
	ex := &Explain{Analyze: p.acceptKeyword("ANALYZE")}
	inner, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	switch inner.(type) {
	case *Select, *Insert, *Update, *Delete:
		ex.Stmt = inner
		return ex, nil
	default:
		return nil, p.errorf("EXPLAIN supports SELECT, INSERT, UPDATE and DELETE, not %T", inner)
	}
}

// parseVacuum parses VACUUM [RETAIN <expr>].
func (p *Parser) parseVacuum() (*Vacuum, error) {
	if err := p.expectKeyword("VACUUM"); err != nil {
		return nil, err
	}
	v := &Vacuum{}
	if p.acceptKeyword("RETAIN") {
		e, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		v.Retain = e
	}
	return v, nil
}

// parseReenact parses
// REENACT TRANSACTION <expr> [SUBSTITUTE n WITH 'sql' [, n WITH 'sql']...].
func (p *Parser) parseReenact() (*Reenact, error) {
	if err := p.expectKeyword("REENACT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TRANSACTION"); err != nil {
		return nil, err
	}
	txn, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	r := &Reenact{Txn: txn}
	if p.acceptKeyword("SUBSTITUTE") {
		for {
			t := p.next()
			if t.Type != TokNumber {
				return nil, p.errorf("expected statement ordinal after SUBSTITUTE, got %q", t.Text)
			}
			ord, err := strconv.Atoi(t.Text)
			if err != nil || ord < 1 {
				return nil, p.errorf("invalid statement ordinal %q", t.Text)
			}
			if err := p.expectKeyword("WITH"); err != nil {
				return nil, err
			}
			s := p.next()
			if s.Type != TokString {
				return nil, p.errorf("expected substituted SQL string, got %q", s.Text)
			}
			r.Subs = append(r.Subs, ReenactSub{Ordinal: ord, SQL: s.Text})
			if !p.acceptOp(",") {
				break
			}
		}
	}
	return r, nil
}

func (p *Parser) parseCopy() (*Copy, error) {
	if err := p.expectKeyword("COPY"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	c := &Copy{Table: table}
	switch {
	case p.acceptKeyword("FROM"):
	case p.acceptKeyword("TO"):
		c.To = true
	default:
		return nil, p.errorf("expected FROM or TO in COPY, got %q", p.peek().Text)
	}
	t := p.next()
	if t.Type != TokString {
		return nil, p.errorf("expected file path string in COPY, got %q", t.Text)
	}
	c.Path = t.Text
	return c, nil
}

// ---- Expression parsing (precedence climbing) ----

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Expr: e}, nil
	}
	return p.parseComparison()
}

var comparisonOps = map[string]string{"=": "=", "<>": "<>", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		negated := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Expr: left, Negated: negated}, nil
	}
	negated := false
	if p.peek().Type == TokKeyword && p.peek().Text == "NOT" &&
		p.pos+1 < len(p.toks) && p.toks[p.pos+1].Type == TokKeyword &&
		(p.toks[p.pos+1].Text == "LIKE" || p.toks[p.pos+1].Text == "BETWEEN" || p.toks[p.pos+1].Text == "IN") {
		p.next()
		negated = true
	}
	switch {
	case p.acceptKeyword("LIKE"):
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		var e Expr = &BinaryExpr{Op: "LIKE", Left: left, Right: right}
		if negated {
			e = &UnaryExpr{Op: "NOT", Expr: e}
		}
		return e, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Expr: left, Lo: lo, Hi: hi, Negated: negated}, nil
	case p.acceptKeyword("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		if t := p.peek(); t.Type == TokKeyword && t.Text == "SELECT" {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &InExpr{Expr: left, Sub: sub, Negated: negated}, nil
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InExpr{Expr: left, List: list, Negated: negated}, nil
	}
	if negated {
		return nil, p.errorf("expected LIKE, BETWEEN or IN after NOT")
	}
	t := p.peek()
	if t.Type == TokOp {
		if op, ok := comparisonOps[t.Text]; ok {
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Type != TokOp || (t.Text != "+" && t.Text != "-" && t.Text != "||") {
			return left, nil
		}
		p.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Type != TokOp || (t.Text != "*" && t.Text != "/" && t.Text != "%") {
			return left, nil
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", Expr: e}, nil
	}
	if p.acceptOp("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Type {
	case TokNumber:
		p.next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("invalid number %q", t.Text)
			}
			return &Literal{Value: sqlval.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid integer %q", t.Text)
		}
		return &Literal{Value: sqlval.NewInt(n)}, nil
	case TokString:
		p.next()
		return &Literal{Value: sqlval.NewString(t.Text)}, nil
	case TokParam:
		p.next()
		p.nparams++
		return &Param{Index: p.nparams}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Literal{Value: sqlval.Null}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: sqlval.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: sqlval.NewBool(false)}, nil
		case "DATE":
			p.next()
			lit := p.next()
			if lit.Type != TokString {
				return nil, p.errorf("expected string after DATE, got %q", lit.Text)
			}
			v, err := sqlval.ParseDate(lit.Text)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			return &Literal{Value: v}, nil
		case "EXISTS":
			p.next()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Query: sub}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.next()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			fe := &FuncExpr{Name: t.Text}
			if p.acceptOp("*") {
				if t.Text != "COUNT" {
					return nil, p.errorf("%s(*) is not valid", t.Text)
				}
				fe.Star = true
			} else {
				fe.Distinct = p.acceptKeyword("DISTINCT")
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fe.Arg = arg
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return fe, nil
		default:
			return nil, p.errorf("unexpected keyword %q in expression", t.Text)
		}
	case TokOp:
		if t.Text == "(" {
			p.next()
			if nt := p.peek(); nt.Type == TokKeyword && nt.Text == "SELECT" {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Query: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errorf("unexpected token %q in expression", t.Text)
	case TokIdent:
		p.next()
		if p.acceptOp(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.Text, Column: col}, nil
		}
		return &ColumnRef{Column: t.Text}, nil
	default:
		return nil, p.errorf("unexpected end of expression")
	}
}
