package sqlparse

import (
	"strings"

	"ldv/internal/sqlval"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmtNode()
	// String renders the statement back to SQL (normalized form).
	String() string
}

// Expr is any scalar expression.
type Expr interface {
	exprNode()
	String() string
}

// ---- Expressions ----

// Literal is a constant value.
type Literal struct{ Value sqlval.Value }

// ColumnRef references a column, optionally qualified by a table name or
// alias.
type ColumnRef struct {
	Table  string // "" if unqualified
	Column string
}

// BinaryExpr applies a binary operator. Op is one of
// + - * / % = <> < <= > >= AND OR LIKE ||.
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op   string // "NOT" or "-"
	Expr Expr
}

// BetweenExpr is expr [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	Expr    Expr
	Lo, Hi  Expr
	Negated bool
}

// InExpr is expr [NOT] IN (list...) or expr [NOT] IN (SELECT ...).
type InExpr struct {
	Expr    Expr
	List    []Expr  // nil when Sub is set
	Sub     *Select // IN-subquery form
	Negated bool
}

// IsNullExpr is expr IS [NOT] NULL.
type IsNullExpr struct {
	Expr    Expr
	Negated bool
}

// FuncExpr is an aggregate or scalar function call. Star marks COUNT(*).
type FuncExpr struct {
	Name     string // upper-cased: COUNT, SUM, AVG, MIN, MAX
	Arg      Expr   // nil when Star
	Star     bool
	Distinct bool
}

// SubqueryExpr is a scalar subquery: (SELECT ...) used as a value. The
// engine evaluates uncorrelated subqueries once per statement.
type SubqueryExpr struct {
	Query *Select
}

// ExistsExpr is EXISTS (SELECT ...).
type ExistsExpr struct {
	Query *Select
}

// Param is a positional `?` placeholder in a prepared statement. Index is
// 1-based in source order; the executor resolves it against the values bound
// for the execution, so one parsed (and plan-cached) tree serves every
// execution.
type Param struct {
	Index int
}

func (*Literal) exprNode()      {}
func (*ColumnRef) exprNode()    {}
func (*BinaryExpr) exprNode()   {}
func (*UnaryExpr) exprNode()    {}
func (*BetweenExpr) exprNode()  {}
func (*InExpr) exprNode()       {}
func (*IsNullExpr) exprNode()   {}
func (*FuncExpr) exprNode()     {}
func (*SubqueryExpr) exprNode() {}
func (*ExistsExpr) exprNode()   {}
func (*Param) exprNode()        {}

func (e *Literal) String() string { return e.Value.SQLLiteral() }

func (e *ColumnRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Column
	}
	return e.Column
}

func (e *BinaryExpr) String() string {
	return "(" + e.Left.String() + " " + e.Op + " " + e.Right.String() + ")"
}

func (e *UnaryExpr) String() string {
	if e.Op == "NOT" {
		return "(NOT " + e.Expr.String() + ")"
	}
	return "(-" + e.Expr.String() + ")"
}

func (e *BetweenExpr) String() string {
	not := ""
	if e.Negated {
		not = " NOT"
	}
	return "(" + e.Expr.String() + not + " BETWEEN " + e.Lo.String() + " AND " + e.Hi.String() + ")"
}

func (e *InExpr) String() string {
	not := ""
	if e.Negated {
		not = " NOT"
	}
	if e.Sub != nil {
		return "(" + e.Expr.String() + not + " IN (" + e.Sub.String() + "))"
	}
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.String()
	}
	return "(" + e.Expr.String() + not + " IN (" + strings.Join(parts, ", ") + "))"
}

func (e *SubqueryExpr) String() string { return "(" + e.Query.String() + ")" }

func (e *ExistsExpr) String() string { return "EXISTS (" + e.Query.String() + ")" }

// String renders a placeholder exactly as written — the normalized text is
// therefore identical for every binding, which keeps fingerprints stable.
func (e *Param) String() string { return "?" }

func (e *IsNullExpr) String() string {
	if e.Negated {
		return "(" + e.Expr.String() + " IS NOT NULL)"
	}
	return "(" + e.Expr.String() + " IS NULL)"
}

func (e *FuncExpr) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Name + "(" + d + e.Arg.String() + ")"
}

// AggregateFuncs lists the supported aggregate function names.
var AggregateFuncs = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

// ---- SELECT ----

// SelectItem is one entry of the select list.
type SelectItem struct {
	Expr  Expr   // nil for *
	Alias string // "" if none
	Star  bool   // SELECT * or tbl.*
	Table string // qualifier for tbl.*
}

// TableRef is one FROM-clause table with an optional alias.
type TableRef struct {
	Name  string
	Alias string // "" if none; effective name is Alias or Name
}

// EffectiveName returns the name by which columns of this table are
// qualified in the query.
func (t TableRef) EffectiveName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is an explicit INNER JOIN ... ON ... appended after the first
// table ref.
type JoinClause struct {
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Select is a SELECT statement. Provenance marks the Perm-style
// SELECT PROVENANCE variant, which adds lineage columns to the result.
type Select struct {
	Provenance bool
	Distinct   bool
	Items      []SelectItem
	From       []TableRef
	Joins      []JoinClause
	Where      Expr
	GroupBy    []Expr
	Having     Expr
	OrderBy    []OrderItem
	Limit      int // -1 when absent
	// AsOf, when non-nil, pins the query to the historical snapshot at the
	// given logical tick (time travel). Accepted after the FROM clause or
	// trailing the statement; always rendered trailing, so the normalized
	// form (and with it the fingerprint) is position-independent.
	AsOf Expr
}

func (*Select) stmtNode() {}

func (s *Select) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Provenance {
		sb.WriteString("PROVENANCE ")
	}
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case it.Star && it.Table != "":
			sb.WriteString(it.Table + ".*")
		case it.Star:
			sb.WriteString("*")
		default:
			sb.WriteString(it.Expr.String())
			if it.Alias != "" {
				sb.WriteString(" AS " + it.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i, t := range s.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(t.Name)
			if t.Alias != "" {
				sb.WriteString(" " + t.Alias)
			}
		}
	}
	for _, j := range s.Joins {
		sb.WriteString(" JOIN " + j.Table.Name)
		if j.Table.Alias != "" {
			sb.WriteString(" " + j.Table.Alias)
		}
		sb.WriteString(" ON " + j.On.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		sb.WriteString(" LIMIT ")
		sb.WriteString(itoa(s.Limit))
	}
	if s.AsOf != nil {
		sb.WriteString(" AS OF " + s.AsOf.String())
	}
	return sb.String()
}

// ---- DML ----

// Insert is INSERT INTO table [(cols)] VALUES rows | SELECT query.
type Insert struct {
	Table   string
	Columns []string // nil means table order
	Rows    [][]Expr // literal rows; nil when Query is set
	Query   *Select
}

func (*Insert) stmtNode() {}

func (s *Insert) String() string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO " + s.Table)
	if len(s.Columns) > 0 {
		sb.WriteString(" (" + strings.Join(s.Columns, ", ") + ")")
	}
	if s.Query != nil {
		sb.WriteString(" " + s.Query.String())
		return sb.String()
	}
	sb.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(")
		for j, e := range row {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.String())
		}
		sb.WriteString(")")
	}
	return sb.String()
}

// Assignment is one SET column = expr of an UPDATE.
type Assignment struct {
	Column string
	Expr   Expr
}

// Update is UPDATE table SET assignments [WHERE expr].
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

func (*Update) stmtNode() {}

func (s *Update) String() string {
	var sb strings.Builder
	sb.WriteString("UPDATE " + s.Table + " SET ")
	for i, a := range s.Set {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.Column + " = " + a.Expr.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	return sb.String()
}

// Delete is DELETE FROM table [WHERE expr].
type Delete struct {
	Table string
	Where Expr
}

func (*Delete) stmtNode() {}

func (s *Delete) String() string {
	out := "DELETE FROM " + s.Table
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

// ---- DDL ----

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       sqlval.Kind
	PrimaryKey bool
}

// CreateTable is CREATE TABLE [IF NOT EXISTS] name (cols).
type CreateTable struct {
	Table       string
	Columns     []ColumnDef
	IfNotExists bool
}

func (*CreateTable) stmtNode() {}

func (s *CreateTable) String() string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	if s.IfNotExists {
		sb.WriteString("IF NOT EXISTS ")
	}
	sb.WriteString(s.Table + " (")
	for i, c := range s.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name + " " + c.Type.String())
		if c.PrimaryKey {
			sb.WriteString(" PRIMARY KEY")
		}
	}
	sb.WriteString(")")
	return sb.String()
}

// Copy is the bulk-transfer statement COPY table FROM 'path' (load) or
// COPY table TO 'path' (dump). The server performs the file I/O.
type Copy struct {
	Table string
	Path  string
	To    bool // true for COPY ... TO
}

func (*Copy) stmtNode() {}

// String renders the statement.
func (s *Copy) String() string {
	dir := "FROM"
	if s.To {
		dir = "TO"
	}
	return "COPY " + s.Table + " " + dir + " '" + strings.ReplaceAll(s.Path, "'", "''") + "'"
}

// Begin starts a transaction (BEGIN [TRANSACTION]).
type Begin struct{}

// Commit commits the open transaction.
type Commit struct{}

// Rollback aborts the open transaction, undoing its DML.
type Rollback struct{}

func (*Begin) stmtNode()    {}
func (*Commit) stmtNode()   {}
func (*Rollback) stmtNode() {}

// String renders the statement.
func (*Begin) String() string { return "BEGIN" }

// String renders the statement.
func (*Commit) String() string { return "COMMIT" }

// String renders the statement.
func (*Rollback) String() string { return "ROLLBACK" }

// Explain is EXPLAIN [ANALYZE] <stmt>. Plain EXPLAIN renders the planned
// operator tree without executing; ANALYZE executes the inner statement and
// attaches actual per-operator row counts and timings.
type Explain struct {
	Analyze bool
	Stmt    Statement
}

func (*Explain) stmtNode() {}

// String renders the statement.
func (s *Explain) String() string {
	if s.Analyze {
		return "EXPLAIN ANALYZE " + s.Stmt.String()
	}
	return "EXPLAIN " + s.Stmt.String()
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Table    string
	IfExists bool
}

func (*DropTable) stmtNode() {}

func (s *DropTable) String() string {
	if s.IfExists {
		return "DROP TABLE IF EXISTS " + s.Table
	}
	return "DROP TABLE " + s.Table
}

// CreateIndex is CREATE INDEX [IF NOT EXISTS] name ON table (cols)
// [USING HASH|ORDERED].
type CreateIndex struct {
	Name        string
	Table       string
	Columns     []string
	Kind        string // "hash" or "ordered"
	IfNotExists bool
}

func (*CreateIndex) stmtNode() {}

func (s *CreateIndex) String() string {
	var sb strings.Builder
	sb.WriteString("CREATE INDEX ")
	if s.IfNotExists {
		sb.WriteString("IF NOT EXISTS ")
	}
	sb.WriteString(s.Name)
	sb.WriteString(" ON ")
	sb.WriteString(s.Table)
	sb.WriteString(" (")
	sb.WriteString(strings.Join(s.Columns, ", "))
	sb.WriteString(")")
	if s.Kind != "" {
		sb.WriteString(" USING ")
		sb.WriteString(strings.ToUpper(s.Kind))
	}
	return sb.String()
}

// DropIndex is DROP INDEX [IF EXISTS] name.
type DropIndex struct {
	Name     string
	IfExists bool
}

func (*DropIndex) stmtNode() {}

func (s *DropIndex) String() string {
	if s.IfExists {
		return "DROP INDEX IF EXISTS " + s.Name
	}
	return "DROP INDEX " + s.Name
}

// Vacuum is VACUUM [RETAIN n]: remove dead tuple versions older than the
// retention horizon. With RETAIN the horizon is "now minus n ticks" for this
// pass only; without it the database's configured retention applies (or, if
// none is configured, every committed dead version is reclaimable).
type Vacuum struct {
	Retain Expr // nil when absent
}

func (*Vacuum) stmtNode() {}

// String renders the statement.
func (s *Vacuum) String() string {
	if s.Retain != nil {
		return "VACUUM RETAIN " + s.Retain.String()
	}
	return "VACUUM"
}

// ReenactSub is one statement substitution of a what-if reenactment: the
// 1-based ordinal of the original statement to replace and the replacement
// SQL text.
type ReenactSub struct {
	Ordinal int
	SQL     string
}

// Reenact is REENACT TRANSACTION <txid> [SUBSTITUTE n WITH 'sql' [, ...]]:
// replay a committed transaction's recorded statements against its
// historical snapshot (GProM-style reenactment), optionally substituting
// statements for what-if analysis.
type Reenact struct {
	Txn  Expr
	Subs []ReenactSub
}

func (*Reenact) stmtNode() {}

// String renders the statement.
func (s *Reenact) String() string {
	var sb strings.Builder
	sb.WriteString("REENACT TRANSACTION " + s.Txn.String())
	for i, sub := range s.Subs {
		if i == 0 {
			sb.WriteString(" SUBSTITUTE ")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(itoa(sub.Ordinal))
		sb.WriteString(" WITH '" + strings.ReplaceAll(sub.SQL, "'", "''") + "'")
	}
	return sb.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
