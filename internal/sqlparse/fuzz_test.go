package sqlparse

import "testing"

// FuzzParse asserts the parser never panics and that everything it accepts
// renders to SQL it accepts again (round-trip stability).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT 1",
		"SELECT a, b FROM t WHERE a > 5 GROUP BY a HAVING count(*) > 1 ORDER BY b DESC LIMIT 3",
		"SELECT PROVENANCE * FROM t u JOIN v ON u.x = v.y",
		"INSERT INTO t (a) VALUES (1), (NULL), (DATE '2020-01-01')",
		"UPDATE t SET a = (SELECT MAX(b) FROM u) WHERE c IN (SELECT d FROM e)",
		"DELETE FROM t WHERE a NOT BETWEEN 1 AND 2",
		"CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(10))",
		"COPY t FROM '/x.csv'",
		"BEGIN; COMMIT; ROLLBACK;",
		"SELECT 'o''brien' || x FROM t -- comment",
		"SELECT ((((1))))",
		"\x00\xff SELECT",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		rendered := stmt.String()
		stmt2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", src, rendered, err)
		}
		if stmt2.String() != rendered {
			t.Fatalf("rendering not a fixed point: %q -> %q", rendered, stmt2.String())
		}
	})
}
