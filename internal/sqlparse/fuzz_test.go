package sqlparse

import "testing"

// FuzzParse asserts the parser never panics and that everything it accepts
// renders to SQL it accepts again (round-trip stability).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT 1",
		"SELECT a, b FROM t WHERE a > 5 GROUP BY a HAVING count(*) > 1 ORDER BY b DESC LIMIT 3",
		"SELECT PROVENANCE * FROM t u JOIN v ON u.x = v.y",
		"INSERT INTO t (a) VALUES (1), (NULL), (DATE '2020-01-01')",
		"UPDATE t SET a = (SELECT MAX(b) FROM u) WHERE c IN (SELECT d FROM e)",
		"DELETE FROM t WHERE a NOT BETWEEN 1 AND 2",
		"CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(10))",
		"COPY t FROM '/x.csv'",
		"BEGIN; COMMIT; ROLLBACK;",
		"SELECT 'o''brien' || x FROM t -- comment",
		"SELECT ((((1))))",
		"\x00\xff SELECT",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		rendered := stmt.String()
		stmt2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", src, rendered, err)
		}
		if stmt2.String() != rendered {
			t.Fatalf("rendering not a fixed point: %q -> %q", rendered, stmt2.String())
		}
	})
}

// FuzzAsOf exercises the time-travel grammar: the AS OF clause in both its
// accepted positions (after FROM, trailing), VACUUM, and REENACT. Same
// contract as FuzzParse — no panics, and accepted input round-trips through
// its normalized rendering.
func FuzzAsOf(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t AS OF 5",
		"SELECT a FROM t AS OF ?",
		"SELECT * FROM t WHERE a > 1 ORDER BY a LIMIT 3 AS OF 100",
		"SELECT * FROM t x AS OF 1 + 2",
		"SELECT * FROM t AS x AS OF 7",
		"SELECT * FROM t JOIN u ON t.a = u.b AS OF 9 WHERE t.a > 0",
		"SELECT * FROM t AS OF 1 AS OF 2",
		"EXPLAIN SELECT * FROM t AS OF 4",
		"VACUUM",
		"VACUUM RETAIN 100",
		"REENACT TRANSACTION 3",
		"REENACT TRANSACTION ? SUBSTITUTE 1 WITH 'UPDATE t SET a = 1', 2 WITH 'SELECT ''x'''",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		rendered := stmt.String()
		stmt2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", src, rendered, err)
		}
		if stmt2.String() != rendered {
			t.Fatalf("rendering not a fixed point: %q -> %q", rendered, stmt2.String())
		}
	})
}
