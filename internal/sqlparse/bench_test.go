package sqlparse

import "testing"

var benchStatements = []string{
	`SELECT l_quantity, l_partkey, l_extendedprice, l_shipdate, l_receiptdate FROM lineitem WHERE l_suppkey BETWEEN 1 AND 100`,
	`SELECT o_comment, l_comment FROM lineitem l, orders o, customer c WHERE l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey AND c.c_name LIKE '%0000000%'`,
	`SELECT o_orderkey, AVG(l_quantity) AS avgq FROM lineitem l, orders o WHERE l.l_orderkey = o.o_orderkey AND l_suppkey BETWEEN 1 AND 250 GROUP BY o_orderkey ORDER BY avgq DESC LIMIT 10`,
	`INSERT INTO orders VALUES (1, 2, 'O', 3.5, DATE '1998-08-02', '3-MEDIUM', 'Clerk#1', 'comment')`,
	`UPDATE orders SET o_comment = 'x', o_totalprice = o_totalprice * 1.1 WHERE o_orderkey IN (1, 2, 3)`,
}

func BenchmarkParseStatements(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sql := benchStatements[i%len(benchStatements)]
		if _, err := Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTokenize(b *testing.B) {
	sql := benchStatements[1]
	for i := 0; i < b.N; i++ {
		if _, err := Tokenize(sql); err != nil {
			b.Fatal(err)
		}
	}
}
