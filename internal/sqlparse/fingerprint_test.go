package sqlparse

import (
	"strings"
	"testing"
)

func TestFingerprintCollapsesLiterals(t *testing.T) {
	groups := [][]string{
		{
			"SELECT a FROM t WHERE b = 1",
			"select a from t where b = 2",
			"SELECT   a\nFROM t WHERE b =   999;",
			"SELECT a FROM t WHERE b = 'x'",
		},
		{
			"INSERT INTO t VALUES (1, 'x')",
			"insert into T values (42, 'y');",
		},
		{
			"SELECT a FROM t WHERE b BETWEEN 1 AND 2",
			"SELECT a FROM t WHERE b BETWEEN 10 AND 20",
		},
	}
	seen := map[uint64]string{}
	for _, group := range groups {
		want := ComputeFingerprint(group[0])
		if want.IsZero() {
			t.Fatalf("zero fingerprint for %q", group[0])
		}
		for _, sql := range group[1:] {
			got := ComputeFingerprint(sql)
			if got.Hash != want.Hash || got.Text != want.Text {
				t.Errorf("fingerprint(%q) = %q (%x), want same as %q = %q (%x)",
					sql, got.Text, got.Hash, group[0], want.Text, want.Hash)
			}
		}
		if prev, dup := seen[want.Hash]; dup {
			t.Errorf("groups %q and %q collide on %x", prev, group[0], want.Hash)
		}
		seen[want.Hash] = group[0]
	}
}

func TestFingerprintNormalizedText(t *testing.T) {
	fp := ComputeFingerprint("select  A, b\n from T where A = 10 and B like 'x%';")
	want := "SELECT a, b FROM t WHERE a = ? AND b LIKE ?"
	if fp.Text != want {
		t.Errorf("normalized text = %q, want %q", fp.Text, want)
	}
	if fp.Hash != HashText(fp.Text) {
		t.Error("Hash is not the FNV-1a hash of the normalized text")
	}
}

func TestFingerprintString(t *testing.T) {
	if s := (Fingerprint{}).String(); s != "" {
		t.Errorf("zero fingerprint String() = %q, want empty", s)
	}
	fp := Fingerprint{Hash: 0xdeadbeef, Text: "x"}
	if s := fp.String(); s != "00000000deadbeef" {
		t.Errorf("String() = %q, want 16 zero-padded hex digits", s)
	}
	if s := ComputeFingerprint("SELECT 1").String(); len(s) != 16 || strings.ToLower(s) != s {
		t.Errorf("String() = %q, want 16 lowercase hex digits", s)
	}
}

func TestParseFingerprintedMatchesCompute(t *testing.T) {
	sql := "SELECT a FROM t WHERE b = 7"
	stmt, fp, err := ParseFingerprinted(sql)
	if err != nil {
		t.Fatal(err)
	}
	if stmt == nil {
		t.Fatal("nil statement")
	}
	if want := ComputeFingerprint(sql); fp != want {
		t.Errorf("ParseFingerprinted fp = %+v, want %+v", fp, want)
	}
}

func TestParseExplain(t *testing.T) {
	stmt, err := Parse("EXPLAIN SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmt.(*Explain)
	if !ok || ex.Analyze {
		t.Fatalf("parse = %#v, want plain Explain", stmt)
	}
	if _, ok := ex.Stmt.(*Select); !ok {
		t.Fatalf("inner statement = %T, want *Select", ex.Stmt)
	}

	stmt, err = Parse("explain analyze UPDATE t SET a = 1")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok = stmt.(*Explain)
	if !ok || !ex.Analyze {
		t.Fatalf("parse = %#v, want Explain{Analyze}", stmt)
	}
	if got := ex.String(); got != "EXPLAIN ANALYZE UPDATE t SET a = 1" {
		t.Errorf("String() = %q", got)
	}
}
