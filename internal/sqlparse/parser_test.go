package sqlparse

import (
	"strings"
	"testing"

	"ldv/internal/sqlval"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParseSimpleSelect(t *testing.T) {
	s := mustParse(t, "SELECT a, b FROM t WHERE a > 5").(*Select)
	if len(s.Items) != 2 || len(s.From) != 1 || s.Where == nil {
		t.Fatalf("unexpected structure: %+v", s)
	}
	if s.From[0].Name != "t" {
		t.Errorf("table = %q", s.From[0].Name)
	}
	be, ok := s.Where.(*BinaryExpr)
	if !ok || be.Op != ">" {
		t.Fatalf("where = %v", s.Where)
	}
}

func TestParseSelectStar(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t").(*Select)
	if !s.Items[0].Star {
		t.Error("expected star item")
	}
	s = mustParse(t, "SELECT t.* FROM t").(*Select)
	if !s.Items[0].Star || s.Items[0].Table != "t" {
		t.Errorf("expected qualified star, got %+v", s.Items[0])
	}
}

func TestParseProvenanceKeyword(t *testing.T) {
	s := mustParse(t, "SELECT PROVENANCE a FROM t").(*Select)
	if !s.Provenance {
		t.Error("PROVENANCE flag not set")
	}
	s = mustParse(t, "SELECT a FROM t").(*Select)
	if s.Provenance {
		t.Error("PROVENANCE flag wrongly set")
	}
}

func TestParsePaperQ1(t *testing.T) {
	// Table II, Q1.
	src := `SELECT l_quantity, l_partkey, l_extendedprice, l_shipdate, l_receiptdate
	        FROM lineitem WHERE l_suppkey BETWEEN 1 AND 100`
	s := mustParse(t, src).(*Select)
	if len(s.Items) != 5 {
		t.Fatalf("items = %d", len(s.Items))
	}
	b, ok := s.Where.(*BetweenExpr)
	if !ok {
		t.Fatalf("where = %T", s.Where)
	}
	if b.Lo.(*Literal).Value.Int() != 1 || b.Hi.(*Literal).Value.Int() != 100 {
		t.Error("between bounds wrong")
	}
}

func TestParsePaperQ2(t *testing.T) {
	// Table II, Q2: comma join of three tables with LIKE.
	src := `SELECT o_comment, l_comment FROM lineitem l, orders o, customer c
	        WHERE l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey
	        AND c.c_name LIKE '%0000000%'`
	s := mustParse(t, src).(*Select)
	if len(s.From) != 3 {
		t.Fatalf("from = %d", len(s.From))
	}
	if s.From[0].Alias != "l" || s.From[1].Alias != "o" || s.From[2].Alias != "c" {
		t.Errorf("aliases: %+v", s.From)
	}
	if !strings.Contains(s.String(), "LIKE") {
		t.Error("LIKE missing from rendering")
	}
}

func TestParsePaperQ3(t *testing.T) {
	src := `SELECT count(*) FROM lineitem l, orders o, customer c
	        WHERE l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey
	        AND c.c_name LIKE '%00000%'`
	s := mustParse(t, src).(*Select)
	fe, ok := s.Items[0].Expr.(*FuncExpr)
	if !ok || fe.Name != "COUNT" || !fe.Star {
		t.Fatalf("item = %+v", s.Items[0].Expr)
	}
}

func TestParsePaperQ4(t *testing.T) {
	src := `SELECT o_orderkey, AVG(l_quantity) AS avgQ FROM lineitem l, orders o
	        WHERE l.l_orderkey = o.o_orderkey AND l_suppkey BETWEEN 1 AND 250
	        GROUP BY o_orderkey`
	s := mustParse(t, src).(*Select)
	if len(s.GroupBy) != 1 {
		t.Fatalf("group by = %d", len(s.GroupBy))
	}
	if s.Items[1].Alias != "avgq" {
		t.Errorf("alias = %q", s.Items[1].Alias)
	}
}

func TestParseExplicitJoin(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t JOIN u ON t.id = u.id JOIN v ON u.x = v.x").(*Select)
	if len(s.Joins) != 2 {
		t.Fatalf("joins = %d", len(s.Joins))
	}
	s = mustParse(t, "SELECT a FROM t INNER JOIN u ON t.id = u.id").(*Select)
	if len(s.Joins) != 1 {
		t.Fatalf("inner joins = %d", len(s.Joins))
	}
}

func TestParseOrderLimit(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t ORDER BY a DESC, b ASC LIMIT 10").(*Select)
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Fatalf("order by: %+v", s.OrderBy)
	}
	if s.Limit != 10 {
		t.Errorf("limit = %d", s.Limit)
	}
}

func TestParseInsertValues(t *testing.T) {
	s := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").(*Insert)
	if s.Table != "t" || len(s.Columns) != 2 || len(s.Rows) != 2 {
		t.Fatalf("insert: %+v", s)
	}
	if s.Rows[1][1].(*Literal).Value.Str() != "y" {
		t.Error("row value wrong")
	}
}

func TestParseInsertSelect(t *testing.T) {
	s := mustParse(t, "INSERT INTO t SELECT a, b FROM u WHERE a < 3").(*Insert)
	if s.Query == nil || len(s.Query.Items) != 2 {
		t.Fatalf("insert-select: %+v", s)
	}
}

func TestParseUpdate(t *testing.T) {
	s := mustParse(t, "UPDATE orders SET o_comment = 'new', o_totalprice = o_totalprice * 2 WHERE o_orderkey = 7").(*Update)
	if s.Table != "orders" || len(s.Set) != 2 || s.Where == nil {
		t.Fatalf("update: %+v", s)
	}
}

func TestParseDelete(t *testing.T) {
	s := mustParse(t, "DELETE FROM t WHERE a IS NOT NULL").(*Delete)
	if s.Table != "t" {
		t.Fatal("table wrong")
	}
	isn, ok := s.Where.(*IsNullExpr)
	if !ok || !isn.Negated {
		t.Fatalf("where = %v", s.Where)
	}
}

func TestParseCreateTable(t *testing.T) {
	s := mustParse(t, "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(25), price DECIMAL(15,2), d DATE, ok BOOLEAN)").(*CreateTable)
	if len(s.Columns) != 5 {
		t.Fatalf("cols = %d", len(s.Columns))
	}
	want := []sqlval.Kind{sqlval.KindInt, sqlval.KindString, sqlval.KindFloat, sqlval.KindDate, sqlval.KindBool}
	for i, k := range want {
		if s.Columns[i].Type != k {
			t.Errorf("col %d kind = %v, want %v", i, s.Columns[i].Type, k)
		}
	}
	if !s.Columns[0].PrimaryKey || s.Columns[1].PrimaryKey {
		t.Error("primary key flags wrong")
	}
}

func TestParseCreateTableIfNotExists(t *testing.T) {
	s := mustParse(t, "CREATE TABLE IF NOT EXISTS t (a INT)").(*CreateTable)
	if !s.IfNotExists {
		t.Error("IfNotExists not set")
	}
}

func TestParseDropTable(t *testing.T) {
	if s := mustParse(t, "DROP TABLE t").(*DropTable); s.Table != "t" || s.IfExists {
		t.Fatal("drop wrong")
	}
	if s := mustParse(t, "DROP TABLE IF EXISTS t").(*DropTable); !s.IfExists {
		t.Fatal("if exists wrong")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	s := mustParse(t, "SELECT 1 + 2 * 3").(*Select)
	be := s.Items[0].Expr.(*BinaryExpr)
	if be.Op != "+" {
		t.Fatalf("top op = %q", be.Op)
	}
	if be.Right.(*BinaryExpr).Op != "*" {
		t.Error("* must bind tighter than +")
	}
	s = mustParse(t, "SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3").(*Select)
	top := s.Where.(*BinaryExpr)
	if top.Op != "OR" {
		t.Fatalf("top = %q, AND must bind tighter than OR", top.Op)
	}
}

func TestParseInList(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a IN (1, 2, 3) AND b NOT IN ('x')").(*Select)
	and := s.Where.(*BinaryExpr)
	in1 := and.Left.(*InExpr)
	if len(in1.List) != 3 || in1.Negated {
		t.Fatalf("in1: %+v", in1)
	}
	in2 := and.Right.(*InExpr)
	if !in2.Negated {
		t.Fatal("NOT IN not negated")
	}
}

func TestParseNotLike(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a NOT LIKE '%x%'").(*Select)
	u, ok := s.Where.(*UnaryExpr)
	if !ok || u.Op != "NOT" {
		t.Fatalf("where = %v", s.Where)
	}
}

func TestParseNotBetween(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a NOT BETWEEN 1 AND 2").(*Select)
	b := s.Where.(*BetweenExpr)
	if !b.Negated {
		t.Fatal("NOT BETWEEN not negated")
	}
}

func TestParseDateLiteral(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE d >= DATE '1998-12-01'").(*Select)
	be := s.Where.(*BinaryExpr)
	lit := be.Right.(*Literal)
	if lit.Value.Kind() != sqlval.KindDate || lit.Value.String() != "1998-12-01" {
		t.Fatalf("date literal = %v", lit.Value)
	}
}

func TestParseStringEscapes(t *testing.T) {
	s := mustParse(t, "SELECT 'o''brien'").(*Select)
	if s.Items[0].Expr.(*Literal).Value.Str() != "o'brien" {
		t.Error("escaped quote wrong")
	}
}

func TestParseComments(t *testing.T) {
	s := mustParse(t, "SELECT a -- trailing comment\nFROM t").(*Select)
	if len(s.From) != 1 {
		t.Fatal("comment broke parsing")
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts = %d", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"INSERT INTO",
		"INSERT INTO t VALUES",
		"INSERT INTO t VALUES (1",
		"UPDATE t",
		"UPDATE t SET",
		"DELETE t",
		"CREATE TABLE t",
		"CREATE TABLE t (a BLOB)",
		"DROP t",
		"SELECT a FROM t LIMIT x",
		"SELECT 'unterminated",
		"SELECT 1.2.3",
		"SELECT a FROM t WHERE a NOT 5",
		"SELECT a FROM t; garbage",
		"SELECT a ? b",
		"SELECT SUM(*) FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	// A statement's String() rendering must re-parse to an identical rendering
	// (fixed-point property used by the audit log).
	sources := []string{
		"SELECT PROVENANCE a, b AS x FROM t u, v WHERE (a = 1 AND b LIKE '%z%') GROUP BY a ORDER BY b DESC LIMIT 5",
		"INSERT INTO t (a) VALUES (1), (2)",
		"UPDATE t SET a = (a + 1) WHERE a BETWEEN 1 AND 3",
		"DELETE FROM t WHERE a IN (1, 2)",
		"CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT)",
		"DROP TABLE IF EXISTS t",
		"SELECT count(*), SUM(a), AVG(b), MIN(c), MAX(d) FROM t",
		"SELECT a FROM t JOIN u ON (t.id = u.id)",
		"SELECT DISTINCT a FROM t",
		"SELECT COUNT(DISTINCT a) FROM t",
	}
	for _, src := range sources {
		s1 := mustParse(t, src)
		s2 := mustParse(t, s1.String())
		if s1.String() != s2.String() {
			t.Errorf("not a fixed point:\n first: %s\nsecond: %s", s1, s2)
		}
	}
}

func TestTokenizeErrors(t *testing.T) {
	if _, err := Tokenize("SELECT #"); err == nil {
		t.Error("expected lexer error for #")
	}
}

func TestParseHaving(t *testing.T) {
	s := mustParse(t, "SELECT k, SUM(v) FROM t GROUP BY k HAVING count(*) > 1").(*Select)
	if s.Having == nil {
		t.Fatal("HAVING not parsed")
	}
	if _, err := Parse("SELECT k FROM t HAVING count(*) > 1"); err == nil {
		t.Fatal("HAVING without GROUP BY must fail")
	}
	// Round trip.
	s2 := mustParse(t, s.String()).(*Select)
	if s2.String() != s.String() {
		t.Fatalf("having round trip: %s vs %s", s2, s)
	}
}

func TestParseAsOf(t *testing.T) {
	// Trailing position.
	s := mustParse(t, "SELECT a FROM t WHERE a > 1 LIMIT 3 AS OF 42").(*Select)
	if s.AsOf == nil {
		t.Fatal("AS OF not parsed (trailing)")
	}
	if got := s.String(); got != "SELECT a FROM t WHERE (a > 1) LIMIT 3 AS OF 42" {
		t.Fatalf("rendering = %q", got)
	}
	// After the FROM clause; normalizes to trailing.
	s = mustParse(t, "SELECT a FROM t AS OF 7 WHERE a > 1").(*Select)
	if s.AsOf == nil {
		t.Fatal("AS OF not parsed (after FROM)")
	}
	if got := s.String(); got != "SELECT a FROM t WHERE (a > 1) AS OF 7" {
		t.Fatalf("normalized rendering = %q", got)
	}
	// Parameterized bound.
	s = mustParse(t, "SELECT a FROM t AS OF ?").(*Select)
	if _, ok := s.AsOf.(*Param); !ok {
		t.Fatalf("AS OF ? = %T", s.AsOf)
	}
	// Alias named like the keyword still works: AS OF binds to the SELECT.
	s = mustParse(t, "SELECT a FROM t x AS OF 5").(*Select)
	if s.From[0].Alias != "x" || s.AsOf == nil {
		t.Fatalf("alias/AS OF split wrong: %+v asof=%v", s.From[0], s.AsOf)
	}
	// Duplicate clause rejected.
	if _, err := Parse("SELECT a FROM t AS OF 1 AS OF 2"); err == nil {
		t.Fatal("duplicate AS OF must fail")
	}
}

func TestParseVacuum(t *testing.T) {
	v := mustParse(t, "VACUUM").(*Vacuum)
	if v.Retain != nil {
		t.Fatalf("bare VACUUM has retain %v", v.Retain)
	}
	if v.String() != "VACUUM" {
		t.Fatalf("rendering = %q", v.String())
	}
	v = mustParse(t, "VACUUM RETAIN 100").(*Vacuum)
	if v.Retain == nil {
		t.Fatal("RETAIN bound not parsed")
	}
	if v.String() != "VACUUM RETAIN 100" {
		t.Fatalf("rendering = %q", v.String())
	}
}

func TestParseReenact(t *testing.T) {
	r := mustParse(t, "REENACT TRANSACTION 3").(*Reenact)
	if r.Txn == nil || len(r.Subs) != 0 {
		t.Fatalf("structure: %+v", r)
	}
	if r.String() != "REENACT TRANSACTION 3" {
		t.Fatalf("rendering = %q", r.String())
	}
	r = mustParse(t, "REENACT TRANSACTION 9 SUBSTITUTE 1 WITH 'UPDATE t SET a = 1', 2 WITH 'SELECT ''x'''").(*Reenact)
	if len(r.Subs) != 2 {
		t.Fatalf("subs = %+v", r.Subs)
	}
	if r.Subs[0].Ordinal != 1 || r.Subs[0].SQL != "UPDATE t SET a = 1" {
		t.Fatalf("sub[0] = %+v", r.Subs[0])
	}
	if r.Subs[1].SQL != "SELECT 'x'" {
		t.Fatalf("sub[1] = %+v", r.Subs[1])
	}
	// Round trip with embedded quotes.
	r2 := mustParse(t, r.String()).(*Reenact)
	if r2.String() != r.String() {
		t.Fatalf("round trip: %q vs %q", r2.String(), r.String())
	}
	// Bad ordinal rejected.
	if _, err := Parse("REENACT TRANSACTION 1 SUBSTITUTE 0 WITH 'SELECT 1'"); err == nil {
		t.Fatal("ordinal 0 must fail")
	}
}
