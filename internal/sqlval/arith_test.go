package sqlval

import (
	"testing"
	"testing/quick"
)

func TestArithInteger(t *testing.T) {
	cases := []struct {
		op   func(Value, Value) (Value, error)
		a, b int64
		want int64
	}{
		{Add, 2, 3, 5},
		{Sub, 2, 3, -1},
		{Mul, 4, 3, 12},
		{Div, 7, 2, 3},
		{Mod, 7, 2, 1},
	}
	for i, c := range cases {
		got, err := c.op(NewInt(c.a), NewInt(c.b))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Kind() != KindInt || got.Int() != c.want {
			t.Errorf("case %d: got %v, want %d", i, got, c.want)
		}
	}
}

func TestArithMixedPromotesToFloat(t *testing.T) {
	got, err := Add(NewInt(1), NewFloat(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind() != KindFloat || got.Float() != 1.5 {
		t.Errorf("1 + 0.5 = %v", got)
	}
	got, err = Div(NewFloat(1), NewInt(4))
	if err != nil {
		t.Fatal(err)
	}
	if got.Float() != 0.25 {
		t.Errorf("1.0/4 = %v", got)
	}
}

func TestArithNullPropagates(t *testing.T) {
	for _, op := range []func(Value, Value) (Value, error){Add, Sub, Mul, Div, Mod} {
		got, err := op(Null, NewInt(1))
		if err != nil || !got.IsNull() {
			t.Errorf("NULL op: got %v, err %v", got, err)
		}
		got, err = op(NewInt(1), Null)
		if err != nil || !got.IsNull() {
			t.Errorf("op NULL: got %v, err %v", got, err)
		}
	}
}

func TestArithErrors(t *testing.T) {
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("integer division by zero must error")
	}
	if _, err := Div(NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float division by zero must error")
	}
	if _, err := Mod(NewInt(1), NewInt(0)); err == nil {
		t.Error("mod by zero must error")
	}
	if _, err := Add(NewString("a"), NewInt(1)); err == nil {
		t.Error("string + int must error")
	}
	if _, err := Mod(NewFloat(1), NewFloat(2)); err == nil {
		t.Error("float %% must error")
	}
}

func TestNeg(t *testing.T) {
	if v, _ := Neg(NewInt(5)); v.Int() != -5 {
		t.Error("-5 failed")
	}
	if v, _ := Neg(NewFloat(2.5)); v.Float() != -2.5 {
		t.Error("-2.5 failed")
	}
	if v, _ := Neg(Null); !v.IsNull() {
		t.Error("-NULL must be NULL")
	}
	if _, err := Neg(NewString("x")); err == nil {
		t.Error("-text must error")
	}
}

func TestConcat(t *testing.T) {
	v, err := Concat(NewString("foo"), NewString("bar"))
	if err != nil || v.Str() != "foobar" {
		t.Errorf("concat = %v, %v", v, err)
	}
	v, err = Concat(NewString("n="), NewInt(3))
	if err != nil || v.Str() != "n=3" {
		t.Errorf("concat int = %v, %v", v, err)
	}
	if v, _ := Concat(Null, NewString("x")); !v.IsNull() {
		t.Error("NULL || x must be NULL")
	}
}

func TestQuickAddCommutes(t *testing.T) {
	f := func(a, b int32) bool {
		x, err1 := Add(NewInt(int64(a)), NewInt(int64(b)))
		y, err2 := Add(NewInt(int64(b)), NewInt(int64(a)))
		return err1 == nil && err2 == nil && x.Equal(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSubAddInverse(t *testing.T) {
	f := func(a, b int32) bool {
		sum, _ := Add(NewInt(int64(a)), NewInt(int64(b)))
		diff, _ := Sub(sum, NewInt(int64(b)))
		return diff.Equal(NewInt(int64(a)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
