// Package sqlval implements the SQL value domain used throughout the LDV
// engine: typed scalar values with SQL NULL semantics, three-valued
// comparison, arithmetic, LIKE pattern matching, hashing for join keys, and
// a compact binary encoding shared by the storage layer and the wire
// protocol.
package sqlval

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// The value kinds supported by the engine.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindDate
)

// String returns the SQL name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// epoch is the zero date for the DATE kind; dates are stored as day offsets
// from it, which keeps Value comparable with integer arithmetic.
var epoch = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// Value is a single SQL scalar. The zero Value is SQL NULL.
type Value struct {
	kind Kind
	i    int64 // KindInt, KindBool (0/1), KindDate (days since epoch)
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an INTEGER value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a FLOAT value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a TEXT value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a BOOLEAN value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewDate returns a DATE value for the given civil date.
func NewDate(year int, month time.Month, day int) Value {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Value{kind: KindDate, i: int64(t.Sub(epoch).Hours() / 24)}
}

// NewDateDays returns a DATE value from a raw day offset since 1970-01-01.
func NewDateDays(days int64) Value { return Value{kind: KindDate, i: days} }

// ParseDate parses a YYYY-MM-DD literal into a DATE value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null, fmt.Errorf("invalid date literal %q: %w", s, err)
	}
	return NewDate(t.Year(), t.Month(), t.Day()), nil
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It panics if the value is not an INTEGER.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("sqlval: Int() on %s value", v.kind))
	}
	return v.i
}

// Float returns the float payload. It panics if the value is not a FLOAT.
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("sqlval: Float() on %s value", v.kind))
	}
	return v.f
}

// Str returns the string payload. It panics if the value is not TEXT.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("sqlval: Str() on %s value", v.kind))
	}
	return v.s
}

// Bool returns the boolean payload. It panics if the value is not a BOOLEAN.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("sqlval: Bool() on %s value", v.kind))
	}
	return v.i != 0
}

// Days returns the day offset of a DATE value. It panics for other kinds.
func (v Value) Days() int64 {
	if v.kind != KindDate {
		panic(fmt.Sprintf("sqlval: Days() on %s value", v.kind))
	}
	return v.i
}

// Time converts a DATE value to a time.Time at UTC midnight.
func (v Value) Time() time.Time { return epoch.AddDate(0, 0, int(v.Days())) }

// IsNumeric reports whether the value participates in arithmetic.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// AsFloat coerces a numeric value to float64. ok is false for non-numeric
// values (including NULL).
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// String renders the value the way the engine prints result cells.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindDate:
		return v.Time().Format("2006-01-02")
	default:
		return fmt.Sprintf("Value(kind=%d)", v.kind)
	}
}

// SQLLiteral renders the value as a SQL literal suitable for re-parsing,
// e.g. for CSV-to-INSERT round trips during package restore.
func (v Value) SQLLiteral() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindDate:
		return "DATE '" + v.String() + "'"
	default:
		return v.String()
	}
}

// Equal reports strict equality of kind and payload. NULL equals NULL here;
// use Compare for SQL three-valued semantics.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		// INTEGER and FLOAT compare numerically across kinds.
		if v.IsNumeric() && o.IsNumeric() {
			a, _ := v.AsFloat()
			b, _ := o.AsFloat()
			return a == b
		}
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.s == o.s
	case KindFloat:
		return v.f == o.f
	default:
		return v.i == o.i
	}
}

// Compare orders two values. The second result is false when the comparison
// is UNKNOWN under SQL semantics (either side NULL) or the kinds are
// incomparable. Numeric kinds compare across INTEGER/FLOAT.
func (v Value) Compare(o Value) (cmp int, ok bool) {
	if v.kind == KindNull || o.kind == KindNull {
		return 0, false
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.kind != o.kind {
		return 0, false
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, o.s), true
	case KindBool, KindDate, KindInt:
		switch {
		case v.i < o.i:
			return -1, true
		case v.i > o.i:
			return 1, true
		default:
			return 0, true
		}
	case KindFloat:
		switch {
		case v.f < o.f:
			return -1, true
		case v.f > o.f:
			return 1, true
		default:
			return 0, true
		}
	default:
		return 0, false
	}
}

// SortLess orders values for ORDER BY: NULLs sort first, then by Compare,
// with incomparable kinds ordered by kind id so sorting is total.
func SortLess(a, b Value) bool {
	if a.kind == KindNull {
		return b.kind != KindNull
	}
	if b.kind == KindNull {
		return false
	}
	if c, ok := a.Compare(b); ok {
		return c < 0
	}
	return a.kind < b.kind
}

// Hash returns a hash of the value suitable for hash joins and grouping.
// Values that are Equal hash identically (numeric cross-kind included).
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	switch v.kind {
	case KindNull:
		h.Write([]byte{0})
	case KindString:
		h.Write([]byte{1})
		h.Write([]byte(v.s))
	case KindBool:
		h.Write([]byte{2, byte(v.i)})
	case KindDate:
		var buf [9]byte
		buf[0] = 3
		putUint64(buf[1:], uint64(v.i))
		h.Write(buf[:])
	default: // numeric: hash by float64 so 1 and 1.0 collide deliberately
		f, _ := v.AsFloat()
		var buf [9]byte
		buf[0] = 4
		putUint64(buf[1:], math.Float64bits(f))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// GroupKey returns a string key under which Equal values collide, used for
// GROUP BY and duplicate elimination.
func (v Value) GroupKey() string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindString:
		return "s" + v.s
	case KindBool:
		return "b" + strconv.FormatInt(v.i, 10)
	case KindDate:
		return "d" + strconv.FormatInt(v.i, 10)
	default:
		f, _ := v.AsFloat()
		return "n" + strconv.FormatFloat(f, 'g', -1, 64)
	}
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
