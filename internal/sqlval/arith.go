package sqlval

import "fmt"

// Arithmetic on values follows SQL semantics: any operation with a NULL
// operand yields NULL; INTEGER op INTEGER stays INTEGER (except division by
// zero, which errors); mixed numeric operations promote to FLOAT.

// Add returns v + o.
func Add(v, o Value) (Value, error) { return arith(v, o, "+") }

// Sub returns v - o.
func Sub(v, o Value) (Value, error) { return arith(v, o, "-") }

// Mul returns v * o.
func Mul(v, o Value) (Value, error) { return arith(v, o, "*") }

// Div returns v / o. Integer division truncates; division by zero errors.
func Div(v, o Value) (Value, error) { return arith(v, o, "/") }

// Mod returns v % o for integers.
func Mod(v, o Value) (Value, error) { return arith(v, o, "%") }

func arith(v, o Value, op string) (Value, error) {
	if v.IsNull() || o.IsNull() {
		return Null, nil
	}
	// String concatenation via "+" or "||" is handled by the caller; here we
	// only handle numerics.
	if !v.IsNumeric() || !o.IsNumeric() {
		return Null, fmt.Errorf("operator %s requires numeric operands, got %s and %s", op, v.Kind(), o.Kind())
	}
	if v.kind == KindInt && o.kind == KindInt {
		a, b := v.i, o.i
		switch op {
		case "+":
			return NewInt(a + b), nil
		case "-":
			return NewInt(a - b), nil
		case "*":
			return NewInt(a * b), nil
		case "/":
			if b == 0 {
				return Null, fmt.Errorf("division by zero")
			}
			return NewInt(a / b), nil
		case "%":
			if b == 0 {
				return Null, fmt.Errorf("division by zero")
			}
			return NewInt(a % b), nil
		}
	}
	a, _ := v.AsFloat()
	b, _ := o.AsFloat()
	switch op {
	case "+":
		return NewFloat(a + b), nil
	case "-":
		return NewFloat(a - b), nil
	case "*":
		return NewFloat(a * b), nil
	case "/":
		if b == 0 {
			return Null, fmt.Errorf("division by zero")
		}
		return NewFloat(a / b), nil
	case "%":
		return Null, fmt.Errorf("operator %% requires integer operands")
	}
	return Null, fmt.Errorf("unknown operator %s", op)
}

// Neg returns -v for numeric v.
func Neg(v Value) (Value, error) {
	switch v.kind {
	case KindNull:
		return Null, nil
	case KindInt:
		return NewInt(-v.i), nil
	case KindFloat:
		return NewFloat(-v.f), nil
	default:
		return Null, fmt.Errorf("unary minus requires a numeric operand, got %s", v.Kind())
	}
}

// Concat returns the string concatenation v || o; NULL if either is NULL.
func Concat(v, o Value) (Value, error) {
	if v.IsNull() || o.IsNull() {
		return Null, nil
	}
	return NewString(v.String() + o.String()), nil
}
