package sqlval

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLike(t *testing.T) {
	cases := []struct {
		s, p  string
		match bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "h_lo", false},
		{"hello", "", false},
		{"", "", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%%", true},
		{"abc", "a%c", true},
		{"abc", "a%b", false},
		{"Customer#000000001", "%00000001%", true},
		{"Customer#000000001", "%0000000%", true},
		{"Customer#000019", "%0000000%", false},
		{"aaa", "%a%a%", true},
		{"ab", "_%_", true},
		{"a", "_%_", false},
	}
	for _, c := range cases {
		got, ok := Like(NewString(c.s), NewString(c.p))
		if !ok {
			t.Errorf("Like(%q, %q) unexpectedly unknown", c.s, c.p)
			continue
		}
		if got != c.match {
			t.Errorf("Like(%q, %q) = %v, want %v", c.s, c.p, got, c.match)
		}
	}
}

func TestLikeUnknown(t *testing.T) {
	if _, ok := Like(Null, NewString("%")); ok {
		t.Error("NULL LIKE must be unknown")
	}
	if _, ok := Like(NewInt(1), NewString("%")); ok {
		t.Error("non-text LIKE must be unknown")
	}
	if _, ok := Like(NewString("a"), Null); ok {
		t.Error("LIKE NULL must be unknown")
	}
}

// Property: a pattern equal to the string itself (no metacharacters) matches
// exactly the same string.
func TestQuickLikeExact(t *testing.T) {
	f := func(raw string) bool {
		s := strings.NewReplacer("%", "p", "_", "u").Replace(raw)
		m, ok := Like(NewString(s), NewString(s))
		return ok && m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: pattern "%"+s+"%" matches any string containing s.
func TestQuickLikeContains(t *testing.T) {
	f := func(prefix, mid, suffix string) bool {
		clean := func(x string) string { return strings.NewReplacer("%", "p", "_", "u").Replace(x) }
		p, m, s := clean(prefix), clean(mid), clean(suffix)
		got, ok := Like(NewString(p+m+s), NewString("%"+m+"%"))
		return ok && got
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
