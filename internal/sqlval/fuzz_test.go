package sqlval

import "testing"

// FuzzDecode asserts the value codec never panics and consumed lengths stay
// in bounds.
func FuzzDecode(f *testing.F) {
	f.Add(AppendEncode(nil, NewInt(42)))
	f.Add(AppendEncode(nil, NewString("hello")))
	f.Add(EncodeRow(nil, []Value{NewFloat(1.5), Null, NewBool(true)}))
	f.Add([]byte{0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		if v, n, err := Decode(data); err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("bad consumed length %d of %d", n, len(data))
			}
			_ = v.String() // must not panic either
		}
		if row, n, err := DecodeRow(data); err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("bad row length %d of %d", n, len(data))
			}
			for _, v := range row {
				_ = v.String()
			}
		}
	})
}
