package sqlval

// Like evaluates the SQL LIKE predicate: '%' matches any sequence of
// characters (including empty), '_' matches exactly one character. The
// result follows three-valued logic: ok is false when either operand is
// NULL or non-text.
func Like(v, pattern Value) (match, ok bool) {
	if v.Kind() != KindString || pattern.Kind() != KindString {
		return false, false
	}
	return likeMatch(v.s, pattern.s), true
}

// likeMatch implements LIKE with an iterative backtracking matcher, the same
// strategy used for glob matching: remember the position of the last '%' and
// retry from there on mismatch. Runs in O(len(s)*len(p)) worst case without
// recursion.
func likeMatch(s, p string) bool {
	var si, pi int
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star, starSi = pi, si
			pi++
		case star >= 0:
			starSi++
			si = starSi
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}
