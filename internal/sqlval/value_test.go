package sqlval

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindInt:    "INTEGER",
		KindFloat:  "FLOAT",
		KindString: "TEXT",
		KindBool:   "BOOLEAN",
		KindDate:   "DATE",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
	if v.Kind() != KindNull {
		t.Fatalf("zero Value kind = %v", v.Kind())
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if NewInt(42).Int() != 42 {
		t.Error("NewInt round trip failed")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("NewFloat round trip failed")
	}
	if NewString("hi").Str() != "hi" {
		t.Error("NewString round trip failed")
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("NewBool round trip failed")
	}
	d := NewDate(2015, time.April, 13)
	if d.String() != "2015-04-13" {
		t.Errorf("date string = %q", d.String())
	}
	if NewDateDays(d.Days()).String() != "2015-04-13" {
		t.Error("NewDateDays round trip failed")
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { Null.Int() },
		func() { NewInt(1).Float() },
		func() { NewFloat(1).Str() },
		func() { NewString("x").Bool() },
		func() { NewBool(true).Days() },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestParseDate(t *testing.T) {
	v, err := ParseDate("1998-12-01")
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "1998-12-01" {
		t.Errorf("parsed date = %q", v)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("expected error for invalid date")
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	c, ok := NewInt(3).Compare(NewFloat(3.0))
	if !ok || c != 0 {
		t.Errorf("3 vs 3.0: cmp=%d ok=%v", c, ok)
	}
	c, ok = NewInt(3).Compare(NewFloat(3.5))
	if !ok || c != -1 {
		t.Errorf("3 vs 3.5: cmp=%d ok=%v", c, ok)
	}
	c, ok = NewFloat(4.5).Compare(NewInt(4))
	if !ok || c != 1 {
		t.Errorf("4.5 vs 4: cmp=%d ok=%v", c, ok)
	}
}

func TestCompareNullIsUnknown(t *testing.T) {
	if _, ok := Null.Compare(NewInt(1)); ok {
		t.Error("NULL comparison must be unknown")
	}
	if _, ok := NewInt(1).Compare(Null); ok {
		t.Error("comparison with NULL must be unknown")
	}
}

func TestCompareIncomparableKinds(t *testing.T) {
	if _, ok := NewString("a").Compare(NewInt(1)); ok {
		t.Error("TEXT vs INTEGER must be incomparable")
	}
	if _, ok := NewBool(true).Compare(NewDate(2020, 1, 1)); ok {
		t.Error("BOOLEAN vs DATE must be incomparable")
	}
}

func TestCompareStrings(t *testing.T) {
	c, ok := NewString("abc").Compare(NewString("abd"))
	if !ok || c != -1 {
		t.Errorf("abc vs abd: %d %v", c, ok)
	}
}

func TestCompareDates(t *testing.T) {
	a := NewDate(2020, 1, 1)
	b := NewDate(2020, 6, 1)
	if c, ok := a.Compare(b); !ok || c != -1 {
		t.Errorf("date compare: %d %v", c, ok)
	}
}

func TestEqual(t *testing.T) {
	if !Null.Equal(Null) {
		t.Error("NULL must Equal NULL (strict equality, not SQL)")
	}
	if !NewInt(1).Equal(NewFloat(1.0)) {
		t.Error("1 must Equal 1.0")
	}
	if NewString("1").Equal(NewInt(1)) {
		t.Error("'1' must not Equal 1")
	}
	if !NewBool(true).Equal(NewBool(true)) {
		t.Error("true must Equal true")
	}
}

func TestSortLessTotalOrder(t *testing.T) {
	vals := []Value{Null, NewInt(1), NewFloat(0.5), NewString("a"), NewBool(false), NewDate(2020, 1, 1)}
	// NULL sorts before everything.
	for _, v := range vals[1:] {
		if !SortLess(Null, v) {
			t.Errorf("NULL must sort before %v", v)
		}
		if SortLess(v, Null) {
			t.Errorf("%v must not sort before NULL", v)
		}
	}
	if SortLess(Null, Null) {
		t.Error("NULL < NULL must be false")
	}
}

func TestHashEqualValuesCollide(t *testing.T) {
	if NewInt(7).Hash() != NewFloat(7.0).Hash() {
		t.Error("7 and 7.0 must hash identically")
	}
	if NewString("x").Hash() == NewString("y").Hash() {
		t.Error("different strings should hash differently (fnv)")
	}
}

func TestGroupKeyDistinguishesKinds(t *testing.T) {
	// '1' (text) and 1 (int) must not collide.
	if NewString("1").GroupKey() == NewInt(1).GroupKey() {
		t.Error("text '1' and int 1 group keys collide")
	}
	// but 1 and 1.0 must collide (they are Equal).
	if NewInt(1).GroupKey() != NewFloat(1).GroupKey() {
		t.Error("1 and 1.0 group keys must collide")
	}
}

func TestSQLLiteral(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(5), "5"},
		{NewString("o'brien"), "'o''brien'"},
		{NewBool(true), "true"},
		{NewDate(1999, 3, 4), "DATE '1999-03-04'"},
	}
	for _, c := range cases {
		if got := c.v.SQLLiteral(); got != c.want {
			t.Errorf("SQLLiteral(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

// randomValue generates an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return Null
	case 1:
		return NewInt(r.Int63n(2000) - 1000)
	case 2:
		return NewFloat(math.Round(r.Float64()*1e6) / 100)
	case 3:
		buf := make([]byte, r.Intn(20))
		for i := range buf {
			buf[i] = byte('a' + r.Intn(26))
		}
		return NewString(string(buf))
	case 4:
		return NewBool(r.Intn(2) == 0)
	default:
		return NewDateDays(r.Int63n(20000))
	}
}

type quickValue struct{ V Value }

// Generate implements quick.Generator.
func (quickValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickValue{V: randomValue(r)})
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(q quickValue) bool {
		enc := AppendEncode(nil, q.V)
		dec, n, err := Decode(enc)
		return err == nil && n == len(enc) && dec.Equal(q.V) && dec.Kind() == q.V.Kind()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickRowCodecRoundTrip(t *testing.T) {
	f := func(qs []quickValue) bool {
		row := make([]Value, len(qs))
		for i, q := range qs {
			row[i] = q.V
		}
		enc := EncodeRow(nil, row)
		dec, n, err := DecodeRow(enc)
		if err != nil || n != len(enc) || len(dec) != len(row) {
			return false
		}
		for i := range row {
			if !dec[i].Equal(row[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickHashConsistentWithEqual(t *testing.T) {
	f := func(a, b quickValue) bool {
		if a.V.Equal(b.V) {
			return a.V.Hash() == b.V.Hash() && a.V.GroupKey() == b.V.GroupKey()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b quickValue) bool {
		c1, ok1 := a.V.Compare(b.V)
		c2, ok2 := b.V.Compare(a.V)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return c1 == -c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("empty buffer must error")
	}
	if _, _, err := Decode([]byte{200}); err == nil {
		t.Error("unknown tag must error")
	}
	if _, _, err := Decode([]byte{byte(KindFloat), 1, 2}); err == nil {
		t.Error("short float must error")
	}
	if _, _, err := Decode([]byte{byte(KindString), 200}); err == nil {
		t.Error("bad string length must error")
	}
	if _, _, err := DecodeRow([]byte{}); err == nil {
		t.Error("empty row buffer must error")
	}
	bad := EncodeRow(nil, []Value{NewInt(1)})
	if _, _, err := DecodeRow(bad[:len(bad)-1]); err == nil {
		t.Error("truncated row must error")
	}
}
