package sqlval

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The binary codec is shared by the storage layer (table data files) and the
// wire protocol (DataRow payloads). Layout per value: 1 tag byte followed by
// a kind-specific payload. Integers use varint encoding; strings are
// length-prefixed.

// AppendEncode appends the binary encoding of v to dst and returns the
// extended slice.
func AppendEncode(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindInt, KindBool, KindDate:
		dst = binary.AppendVarint(dst, v.i)
	case KindFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.f))
		dst = append(dst, buf[:]...)
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	}
	return dst
}

// Decode reads one value from b, returning the value and the number of bytes
// consumed.
func Decode(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Null, 0, fmt.Errorf("decode value: empty buffer")
	}
	kind := Kind(b[0])
	rest := b[1:]
	switch kind {
	case KindNull:
		return Null, 1, nil
	case KindInt, KindBool, KindDate:
		i, n := binary.Varint(rest)
		if n <= 0 {
			return Null, 0, fmt.Errorf("decode %s: bad varint", kind)
		}
		return Value{kind: kind, i: i}, 1 + n, nil
	case KindFloat:
		if len(rest) < 8 {
			return Null, 0, fmt.Errorf("decode FLOAT: short buffer")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(rest))
		return NewFloat(f), 9, nil
	case KindString:
		l, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < l {
			return Null, 0, fmt.Errorf("decode TEXT: bad length")
		}
		return NewString(string(rest[n : n+int(l)])), 1 + n + int(l), nil
	default:
		return Null, 0, fmt.Errorf("decode value: unknown kind tag %d", b[0])
	}
}

// EncodeRow encodes a slice of values: a uvarint count followed by each
// value's encoding.
func EncodeRow(dst []byte, row []Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(row)))
	for _, v := range row {
		dst = AppendEncode(dst, v)
	}
	return dst
}

// DecodeRow decodes a row produced by EncodeRow, returning the values and
// bytes consumed.
func DecodeRow(b []byte) ([]Value, int, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, fmt.Errorf("decode row: bad count")
	}
	off := n
	// Every value occupies at least one byte, so a count beyond the
	// remaining buffer is corrupt — reject it before allocating (a fuzzer
	// found the unchecked preallocation could be driven to OOM).
	if count > uint64(len(b)-off) {
		return nil, 0, fmt.Errorf("decode row: count %d exceeds buffer", count)
	}
	row := make([]Value, 0, count)
	for i := uint64(0); i < count; i++ {
		v, used, err := Decode(b[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("decode row value %d: %w", i, err)
		}
		row = append(row, v)
		off += used
	}
	return row, off, nil
}
