package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("NewTraceID returned zero ID")
	}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("String() = %q, want 32 hex digits", s)
	}
	back, err := ParseTraceID(s)
	if err != nil {
		t.Fatalf("ParseTraceID(%q): %v", s, err)
	}
	if back != id {
		t.Fatalf("round trip: got %s want %s", back, id)
	}
	if _, err := ParseTraceID("abc"); err == nil {
		t.Fatal("ParseTraceID accepted short input")
	}
	if _, err := ParseTraceID(strings.Repeat("g", 32)); err == nil {
		t.Fatal("ParseTraceID accepted non-hex input")
	}
}

func TestTraceIDUnique(t *testing.T) {
	const n = 4096
	seen := make(map[TraceID]bool, n)
	for i := 0; i < n; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %s after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestSpanTraceInheritance(t *testing.T) {
	r := NewRegistry(64)
	root := r.StartSpan("root")
	if root.TraceID().IsZero() {
		t.Fatal("root span has zero trace ID")
	}
	child := root.Child("child")
	grand := child.Child("grand")
	if child.TraceID() != root.TraceID() || grand.TraceID() != root.TraceID() {
		t.Fatal("children did not inherit the root's trace ID")
	}
	joined := r.StartSpanIn("joined", root.Context())
	if joined.TraceID() != root.TraceID() {
		t.Fatal("StartSpanIn did not join the given trace")
	}
	fresh := r.StartSpanIn("fresh", SpanContext{})
	if fresh.TraceID().IsZero() || fresh.TraceID() == root.TraceID() {
		t.Fatal("zero context should originate a fresh trace")
	}
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	if s.Child("x") != nil {
		t.Fatal("nil.Child should be nil")
	}
	if s.SetAttr("k", "v") != nil {
		t.Fatal("nil.SetAttr should be nil")
	}
	if s.End() != 0 || s.ID() != 0 || !s.TraceID().IsZero() || !s.Context().IsZero() {
		t.Fatal("nil span accessors should return zeros")
	}
}

func TestFlightRecorderSealsOnRootEnd(t *testing.T) {
	r := NewRegistry(64)
	root := r.StartSpan("client.query")
	child := root.Child("server.query")
	grand := child.Child("engine.exec").SetAttr("sql", "SELECT 1")
	grand.End()
	child.End()
	if got := r.Traces(); len(got) != 0 {
		t.Fatalf("trace sealed before root End: %d records", len(got))
	}
	root.End()
	traces := r.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Trace != root.TraceID() || tr.Root != "client.query" {
		t.Fatalf("sealed trace = %s root=%q", tr.Trace, tr.Root)
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("sealed trace has %d spans, want 3", len(tr.Spans))
	}
	// Spans are sorted by start time: root first.
	if tr.Spans[0].Name != "client.query" {
		t.Fatalf("first span = %q, want client.query", tr.Spans[0].Name)
	}
	if tr.Spans[2].Attr("sql") != "SELECT 1" {
		t.Fatalf("attr lost: %+v", tr.Spans[2])
	}
}

func TestFlightRecorderNewestFirstAndBounded(t *testing.T) {
	r := NewRegistry(64)
	const capacity = DefaultTraceCapacity
	var last TraceID
	for i := 0; i < capacity+10; i++ {
		sp := r.StartSpan("op")
		last = sp.TraceID()
		sp.End()
	}
	traces := r.Traces()
	if len(traces) != capacity {
		t.Fatalf("retained %d traces, want %d", len(traces), capacity)
	}
	if traces[0].Trace != last {
		t.Fatal("first record is not the newest trace")
	}
}

func TestMarshalParseTraces(t *testing.T) {
	r := NewRegistry(64)
	sp := r.StartSpan("q")
	sp.Child("c").End()
	sp.End()
	data, err := MarshalTraces(r.Traces())
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTraces(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Trace != sp.TraceID() || len(back[0].Spans) != 2 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if _, err := ParseTraces([]byte("{")); err == nil {
		t.Fatal("ParseTraces accepted malformed JSON")
	}
}

func TestWaterfall(t *testing.T) {
	r := NewRegistry(64)
	root := r.StartSpan("client.query")
	root.Child("server.query").End()
	root.End()
	tr := r.Traces()[0]
	var b strings.Builder
	tr.Waterfall(&b)
	out := b.String()
	if !strings.Contains(out, "trace "+tr.Trace.String()) {
		t.Fatalf("waterfall missing trace header:\n%s", out)
	}
	for _, name := range []string{"client.query", "server.query", "="} {
		if !strings.Contains(out, name) {
			t.Fatalf("waterfall missing %q:\n%s", name, out)
		}
	}
	// A child renders indented under its parent.
	if !strings.Contains(out, "  server.query") {
		t.Fatalf("child span not indented:\n%s", out)
	}
}

// TestFlightRecorderConcurrent races span writers against Traces/Snapshot
// readers; run under -race it checks the flight recorder's locking.
func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewRegistry(256)
	const writers = 8
	const perWriter = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				root := r.StartSpan("w.op")
				root.Child("w.child").End()
				root.End()
			}
		}()
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(2)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, tr := range r.Traces() {
					if tr.Trace.IsZero() {
						t.Error("zero trace ID in sealed record")
						return
					}
				}
			}
		}
	}()
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := len(r.Traces()); got != DefaultTraceCapacity {
		t.Fatalf("retained %d traces, want %d", got, DefaultTraceCapacity)
	}
}

// TestFlightRecorderSealsJoinedTrace is the distributed case: a server whose
// recorder only ever sees the joined (StartSpanIn) side of a trace — the
// client's root span ends in another process — must still seal its local
// view once the entry span ends and every child has drained.
func TestFlightRecorderSealsJoinedTrace(t *testing.T) {
	r := NewRegistry(64)
	remote := SpanContext{Trace: NewTraceID(), Span: 42}
	srv := r.StartSpanIn("server.query", remote)
	child := srv.Child("engine.exec")
	child.End()
	if got := r.Traces(); len(got) != 0 {
		t.Fatalf("trace sealed before entry span End: %d records", len(got))
	}
	srv.End()
	traces := r.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Trace != remote.Trace || tr.Root != "server.query" {
		t.Fatalf("sealed trace = %s root=%q", tr.Trace, tr.Root)
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("sealed trace has %d spans, want 2", len(tr.Spans))
	}
	if tr.Spans[0].Parent != remote.Span {
		t.Fatalf("entry span parent = %d, want remote %d", tr.Spans[0].Parent, remote.Span)
	}
}
