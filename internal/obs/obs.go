// Package obs is the LDV observability layer: a stdlib-only, lock-cheap
// metrics registry (atomic counters, gauges, and fixed-bucket latency
// histograms) plus lightweight hierarchical spans recorded into a bounded
// in-memory ring buffer. Every hot path of the system — engine statement
// execution, wire-protocol framing, server sessions, the audit monitor, and
// the packagers — reports here, and snapshots export as JSON (served over
// the wire protocol as a Stats request) or as a human-readable table.
//
// Spans carry 128-bit trace IDs (TraceID/SpanContext) that propagate across
// the wire protocol, so one client request forms a single causal tree —
// client, server, engine, WAL — reconstructed by the flight recorder: a
// bounded ring of completed traces (TraceRecord) queryable over the wire
// Stats extension and the ops endpoint, and renderable as an ASCII
// waterfall.
//
// The paper's evaluation (§VIII/§IX) is an exercise in cost attribution:
// audit-time overhead vs. native execution, package size, replay time. This
// package is the measurement substrate for that attribution — see
// OverheadReport for the audit-overhead breakdown that reproduces the
// paper's native-vs-audited comparison.
//
// Metric updates after handle creation are single atomic operations, so
// instrumented code may keep package-level handles (see GetCounter) and
// record from any goroutine without locks.
package obs

import (
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n and returns the new value, so a counter
// can double as an id allocator (e.g. server session ids).
func (c *Counter) Add(n int64) int64 { return c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an atomic instantaneous value (may go up and down).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

func (g *Gauge) reset() { g.v.Store(0) }

// Registry holds named metrics and the span ring buffer. Metric handles are
// created once under a mutex and updated thereafter with atomics only.
// The zero value is not usable; call NewRegistry or use Default.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	spans  *spanRing
	flight *flightRecorder
	stmts  *StatementStats

	// nextSpanID allocates span identities; logicalClock, when set, stamps
	// spans with the osim logical clock in addition to wall time.
	nextSpanID   atomic.Uint64
	logicalClock atomic.Value // func() uint64
}

// DefaultSpanCapacity bounds the span ring buffer of new registries.
const DefaultSpanCapacity = 4096

// NewRegistry returns an empty registry whose span ring holds up to
// spanCapacity finished spans (<= 0 selects DefaultSpanCapacity).
func NewRegistry(spanCapacity int) *Registry {
	if spanCapacity <= 0 {
		spanCapacity = DefaultSpanCapacity
	}
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		spans:    newSpanRing(spanCapacity),
		flight:   newFlightRecorder(DefaultTraceCapacity),
		stmts:    newStatementStats(),
	}
}

var defaultRegistry = NewRegistry(DefaultSpanCapacity)

// Default returns the process-wide registry all built-in instrumentation
// reports to.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// SetLogicalClock supplies the osim logical clock; subsequent spans carry
// logical begin/end ticks alongside wall time. Pass nil to clear.
func (r *Registry) SetLogicalClock(now func() uint64) {
	if now == nil {
		now = func() uint64 { return 0 }
	}
	r.logicalClock.Store(now)
}

func (r *Registry) logicalNow() uint64 {
	if f, ok := r.logicalClock.Load().(func() uint64); ok {
		return f()
	}
	return 0
}

// Reset zeroes every metric and clears the span ring. Existing handles stay
// valid — callers holding a *Counter keep recording into the same metric.
// The benchmark harness resets between the native and audited runs so the
// overhead report attributes costs to exactly one run.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
	r.spans.reset()
	r.flight.reset()
	r.stmts.reset()
}

// GetCounter returns a named counter in the default registry (handle
// pattern: `var mStmts = obs.GetCounter("engine.stmts")`).
func GetCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// GetGauge returns a named gauge in the default registry.
func GetGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// GetHistogram returns a named histogram in the default registry.
func GetHistogram(name string) *Histogram { return defaultRegistry.Histogram(name) }

// Reset zeroes the default registry and clears the ASH sample ring.
func Reset() {
	defaultRegistry.Reset()
	defaultASH.reset()
}
