package obs

import (
	"testing"
	"time"
)

func TestWaitBeginAccumulates(t *testing.T) {
	Reset()
	st := RegisterSession(9101, "waittest")
	defer UnregisterSession(9101)

	end := WaitBegin(st, WaitLockTable)
	time.Sleep(time.Millisecond)
	end()

	var got WaitEventStat
	for _, s := range WaitEventStats() {
		if s.Event == WaitLockTable {
			got = s
		}
	}
	if got.Count != 1 {
		t.Fatalf("lock.table count = %d, want 1", got.Count)
	}
	if got.TotalNS < int64(time.Millisecond) {
		t.Fatalf("lock.table total = %d ns, want >= 1ms", got.TotalNS)
	}
	if got.Name != "lock.table" || got.Description == "" {
		t.Fatalf("stat metadata = %+v", got)
	}

	ev, domNS, totalNS := st.StatementWaits()
	if ev != WaitLockTable || domNS <= 0 || totalNS != domNS {
		t.Fatalf("StatementWaits = %v %d %d", ev, domNS, totalNS)
	}

	// The wait has ended: the session must be published as not waiting.
	if raw := st.event.Load(); raw != int32(WaitNone) {
		t.Fatalf("event after end = %d", raw)
	}
}

// TestWaitBeginNilSession: engine paths without a registered session pass a
// nil state — the cumulative counters must still advance and nothing panics.
func TestWaitBeginNilSession(t *testing.T) {
	Reset()
	end := WaitBegin(nil, WaitWALGroupCommit)
	end()
	for _, s := range WaitEventStats() {
		if s.Event == WaitWALGroupCommit && s.Count != 1 {
			t.Fatalf("wal.group_commit count = %d, want 1", s.Count)
		}
	}

	// All SessionState methods tolerate nil too.
	var st *SessionState
	st.StartStatement("fp", "tr")
	st.FinishStatement()
	st.SetTxn(7)
	st.ResetStatementWaits()
	if ev, _, total := st.StatementWaits(); ev != WaitNone || total != 0 {
		t.Fatalf("nil StatementWaits = %v %d", ev, total)
	}
}

func TestStatementWaitsDominant(t *testing.T) {
	st := &SessionState{}
	st.stmtWaitNS[WaitLockTable].Store(300)
	st.stmtWaitNS[WaitWALGroupCommit].Store(900)
	ev, domNS, totalNS := st.StatementWaits()
	if ev != WaitWALGroupCommit || domNS != 900 || totalNS != 1200 {
		t.Fatalf("StatementWaits = %v %d %d, want wal.group_commit 900 1200", ev, domNS, totalNS)
	}

	st.ResetStatementWaits()
	if ev, _, total := st.StatementWaits(); ev != WaitNone || total != 0 {
		t.Fatalf("after reset = %v %d", ev, total)
	}
}

// TestWaitEventMetadata pins the taxonomy's external surface: names, metric
// names, and registered descriptions for every event.
func TestWaitEventMetadata(t *testing.T) {
	evs := WaitEvents()
	if len(evs) != int(numWaitEvents)-1 {
		t.Fatalf("WaitEvents() = %d events, want %d", len(evs), numWaitEvents-1)
	}
	seen := map[string]bool{}
	for _, e := range evs {
		if e == WaitNone {
			t.Fatal("WaitEvents includes WaitNone")
		}
		if e.Name() == "" || e.Description() == "" {
			t.Fatalf("event %d missing name or description", e)
		}
		if seen[e.Name()] {
			t.Fatalf("duplicate event name %q", e.Name())
		}
		seen[e.Name()] = true
		for _, m := range []string{e.CountMetric(), e.NSMetric()} {
			if d, ok := Description(m); !ok || d == "" {
				t.Errorf("%s: no description registered for %s", e.Name(), m)
			}
		}
	}
	if WaitLockTable.Name() != "lock.table" || WaitLockTable.NSMetric() != "wait.lock_table_ns" {
		t.Fatalf("lock.table surface changed: %q %q", WaitLockTable.Name(), WaitLockTable.NSMetric())
	}
}
