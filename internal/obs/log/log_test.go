package log

import (
	"bytes"
	"errors"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"ldv/internal/obs"
)

func TestLoggerFormat(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	l.Info("session open", "sid", int64(7), "addr", "127.0.0.1:5000")
	line := buf.String()
	if !regexp.MustCompile(`^t=\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z `).MatchString(line) {
		t.Fatalf("bad timestamp prefix: %q", line)
	}
	for _, want := range []string{`lvl=info`, `msg="session open"`, `sid=7`, `addr=127.0.0.1:5000`} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
	if !strings.HasSuffix(line, "\n") {
		t.Fatalf("line not newline-terminated: %q", line)
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e", "err", errors.New("boom boom"))
	out := buf.String()
	if strings.Contains(out, "lvl=debug") || strings.Contains(out, "lvl=info") {
		t.Fatalf("below-threshold lines written: %q", out)
	}
	if !strings.Contains(out, "lvl=warn") || !strings.Contains(out, "lvl=error") {
		t.Fatalf("missing warn/error lines: %q", out)
	}
	if !strings.Contains(out, `err="boom boom"`) {
		t.Fatalf("error value not quoted: %q", out)
	}
	l.SetLevel(LevelDebug)
	l.Debug("now visible")
	if !strings.Contains(buf.String(), `msg="now visible"`) {
		t.Fatal("SetLevel did not lower the threshold")
	}
}

func TestLoggerWithBindsFields(t *testing.T) {
	var buf bytes.Buffer
	base := New(&buf, LevelInfo)
	trace := obs.NewTraceID()
	l := base.With("sid", int64(3)).With("trace", trace)
	l.Info("query failed")
	line := buf.String()
	if !strings.Contains(line, "sid=3") || !strings.Contains(line, "trace="+trace.String()) {
		t.Fatalf("bound fields missing: %q", line)
	}
	// The parent is unaffected.
	buf.Reset()
	base.Info("plain")
	if strings.Contains(buf.String(), "sid=") {
		t.Fatalf("parent logger inherited child fields: %q", buf.String())
	}
}

func TestLoggerOddPairsAndDuration(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	l.Info("slow query", "elapsed", 1500*time.Millisecond, "dangling")
	line := buf.String()
	if !strings.Contains(line, "elapsed=1.5s") {
		t.Fatalf("duration not formatted: %q", line)
	}
	if !strings.Contains(line, "!BADKEY=dangling") {
		t.Fatalf("odd trailing value dropped: %q", line)
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	l.Info("ignored")
	l.Error("ignored")
	l.SetLevel(LevelDebug)
	if l.With("k", "v") != nil {
		t.Fatal("nil.With should return nil")
	}
	if l.Enabled(LevelError) {
		t.Fatal("nil logger should report disabled")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "bogus": LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Fatalf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

// TestLoggerConcurrent checks that derived loggers sharing one writer do not
// interleave within a line (run under -race).
func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := l.With("worker", int64(w))
			for i := 0; i < 100; i++ {
				d.Info("tick", "i", int64(i))
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, line := range lines {
		if !strings.Contains(line, "msg=tick") || !strings.Contains(line, "worker=") {
			t.Fatalf("mangled line: %q", line)
		}
	}
}
