// Package log is the LDV structured event logger: leveled, key=value
// formatted, trace-aware, and allocation-light (pooled buffers, no fmt on
// the common path). It replaces the server's ad-hoc stdlib logger so every
// operational event — session lifecycle, statement errors, slow queries —
// carries machine-parseable context (session id, trace id) instead of
// free-form text. A nil *Logger is valid and silently discards everything,
// so logging stays optional without nil checks at call sites.
package log

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ldv/internal/obs"
)

// Level orders event severities.
type Level int32

// Severity levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name as rendered in log lines.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLevel maps a level name ("debug", "info", "warn", "error") to its
// Level; unknown names default to LevelInfo.
func ParseLevel(s string) Level {
	switch s {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// Line counters per level, so the ops endpoint exposes logging volume.
// The family is described once by prefix.
var mLines = [4]*obs.Counter{
	obs.GetCounter("log.lines.debug"),
	obs.GetCounter("log.lines.info"),
	obs.GetCounter("log.lines.warn"),
	obs.GetCounter("log.lines.error"),
}

func init() {
	obs.DescribePrefix("log.lines.", "Log lines emitted by level")
}

// Logger writes key=value event lines. Derived loggers from With share the
// parent's writer, mutex, and level; only the bound-field prefix differs,
// so With is cheap enough to call per session.
type Logger struct {
	mu    *sync.Mutex
	out   io.Writer
	level *atomic.Int32
	bound []byte // preformatted " k=v" pairs appended to every line
}

// New returns a logger writing lines at or above level to w.
func New(w io.Writer, level Level) *Logger {
	l := &Logger{mu: &sync.Mutex{}, out: w, level: &atomic.Int32{}}
	l.level.Store(int32(level))
	return l
}

// SetLevel changes the minimum level (affects derived loggers too).
func (l *Logger) SetLevel(level Level) {
	if l != nil {
		l.level.Store(int32(level))
	}
}

// Enabled reports whether lines at level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= Level(l.level.Load())
}

// With returns a logger that appends the given key/value pairs to every
// line it writes. The fields are formatted once, here.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	d := &Logger{mu: l.mu, out: l.out, level: l.level}
	d.bound = appendPairs(append([]byte(nil), l.bound...), kv)
	return d
}

// Debug writes a debug-level event.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info writes an info-level event.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn writes a warn-level event.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error writes an error-level event.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

// bufPool recycles line buffers so steady-state logging allocates only what
// value formatting itself requires.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	if level >= LevelDebug && level <= LevelError {
		mLines[level].Inc()
	}
	bp := bufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, "t="...)
	b = time.Now().UTC().AppendFormat(b, "2006-01-02T15:04:05.000Z")
	b = append(b, " lvl="...)
	b = append(b, level.String()...)
	b = append(b, " msg="...)
	b = appendValue(b, msg)
	b = append(b, l.bound...)
	b = appendPairs(b, kv)
	b = append(b, '\n')
	l.mu.Lock()
	_, _ = l.out.Write(b)
	l.mu.Unlock()
	*bp = b
	bufPool.Put(bp)
}

// appendPairs renders " k=v" for each pair; a trailing odd value is
// reported under the !BADKEY key rather than dropped.
func appendPairs(b []byte, kv []any) []byte {
	for i := 0; i+1 < len(kv); i += 2 {
		b = append(b, ' ')
		if k, ok := kv[i].(string); ok {
			b = append(b, k...)
		} else {
			b = appendValue(b, kv[i])
		}
		b = append(b, '=')
		b = appendValue(b, kv[i+1])
	}
	if len(kv)%2 == 1 {
		b = append(b, " !BADKEY="...)
		b = appendValue(b, kv[len(kv)-1])
	}
	return b
}

// appendValue formats one value without fmt for the common types.
func appendValue(b []byte, v any) []byte {
	switch v := v.(type) {
	case string:
		return appendString(b, v)
	case int:
		return strconv.AppendInt(b, int64(v), 10)
	case int64:
		return strconv.AppendInt(b, v, 10)
	case uint64:
		return strconv.AppendUint(b, v, 10)
	case bool:
		return strconv.AppendBool(b, v)
	case time.Duration:
		return append(b, v.String()...)
	case obs.TraceID:
		return append(b, v.String()...)
	case error:
		if v == nil {
			return append(b, "<nil>"...)
		}
		return appendString(b, v.Error())
	case nil:
		return append(b, "<nil>"...)
	default:
		if s, ok := v.(interface{ String() string }); ok {
			return appendString(b, s.String())
		}
		return appendString(b, typeless(v))
	}
}

// typeless is the slow-path fallback for values outside the fast switch.
func typeless(v any) string {
	type stringer interface{ GoString() string }
	if s, ok := v.(stringer); ok {
		return s.GoString()
	}
	return "?" // unformattable without fmt; callers pass supported types
}

// appendString quotes only when the value contains whitespace, '=', or
// quote characters, keeping the common token case grep-friendly.
func appendString(b []byte, s string) []byte {
	if needsQuoting(s) {
		return strconv.AppendQuote(b, s)
	}
	return append(b, s...)
}

func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '=' || c == '"' || c >= 0x7f {
			return true
		}
	}
	return false
}
