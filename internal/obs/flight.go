package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// The flight recorder keeps the last completed traces — each a causal tree
// of spans sharing one TraceID — in a bounded ring, queryable over the wire
// protocol (Stats kind "traces") and over the ops endpoint (GET /traces).
// Spans accumulate per trace while any of them is open; once an *entry*
// span (one that originated the trace, or joined it from a wire context —
// i.e. whose parent is not a local span) has ended and no local spans of
// the trace remain open, the collected tree is sealed into a TraceRecord
// and the working state is dropped. Sealing on entry spans rather than
// only true roots is what makes the recorder work across processes: a TCP
// server never sees the client's root end, but its own server.query entry
// span closing (after every engine child) completes the server's local
// view of the trace. Each process therefore records the portion of the
// trace it executed; in-process deployments (net.Pipe, the simulated
// machine) share one registry and seal the full client-to-WAL tree when
// the client root ends last. Traces that never drain (a crashed client, a
// leaked span) are evicted oldest-first once too many are in flight, so an
// abandoned trace costs bounded memory, not a leak.

// TraceRecord is one completed request trace: the root span's identity plus
// every span that joined the trace, ordered by start time.
type TraceRecord struct {
	Trace TraceID `json:"trace"`
	// Root names the span that originated (and completed) the trace.
	Root       string `json:"root"`
	StartUnix  int64  `json:"start_unix_ns"`
	DurationNS int64  `json:"duration_ns"`
	// Spans holds the full tree, sorted by start time then span ID; parent
	// links (SpanRecord.Parent) reconstruct the hierarchy.
	Spans []SpanRecord `json:"spans"`
}

// Flight-recorder sizing: DefaultTraceCapacity completed traces are
// retained; at most maxOpenTraces may be accumulating concurrently, each
// holding at most maxSpansPerTrace spans. Overflow drops the oldest open
// trace (or the newest span), never blocks.
const (
	DefaultTraceCapacity = 256
	maxOpenTraces        = 1024
	maxSpansPerTrace     = 512
)

// openTrace is the working state of one trace still accumulating spans.
type openTrace struct {
	spans []SpanRecord
	// inFlight counts locally started, not-yet-ended spans; the trace can
	// only seal when it drains to zero.
	inFlight int
	// entryEnded is set when an entry span (root or wire-joined) finishes;
	// entryRec is the latest such span, which names the sealed record. The
	// outermost entry span ends last, so the final overwrite wins.
	entryEnded bool
	entryRec   SpanRecord
}

// flightRecorder is the bounded completed-trace ring plus the per-trace
// working state of spans still accumulating.
type flightRecorder struct {
	mu    sync.Mutex
	open  map[TraceID]*openTrace
	order []TraceID // open traces in first-seen order, for eviction

	ring  []TraceRecord
	next  int
	full  bool
	total int64 // lifetime completed-trace count, including evicted
}

func newFlightRecorder(capacity int) *flightRecorder {
	return &flightRecorder{
		open: map[TraceID]*openTrace{},
		ring: make([]TraceRecord, capacity),
	}
}

// lookup returns the working state for a trace, creating (and, at the open
// cap, evicting oldest-first) as needed. Callers hold f.mu.
func (f *flightRecorder) lookup(trace TraceID) *openTrace {
	ot, known := f.open[trace]
	if !known {
		if len(f.order) >= maxOpenTraces {
			oldest := f.order[0]
			f.order = f.order[1:]
			delete(f.open, oldest)
		}
		ot = &openTrace{}
		f.open[trace] = ot
		f.order = append(f.order, trace)
	}
	return ot
}

// begin notes that a span of the trace has started, keeping the in-flight
// count that gates sealing.
func (f *flightRecorder) begin(trace TraceID) {
	if trace.IsZero() {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lookup(trace).inFlight++
}

// observe folds one finished span into its trace. entry marks a span whose
// parent is not a local span (it originated the trace or joined it from a
// wire context); once an entry span has ended and no local spans remain in
// flight, the trace seals into the ring.
func (f *flightRecorder) observe(trace TraceID, rec SpanRecord, entry bool) {
	if trace.IsZero() {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ot := f.lookup(trace)
	// An eviction between begin and observe loses the count; clamp so a
	// recreated trace still drains.
	if ot.inFlight > 0 {
		ot.inFlight--
	}
	if len(ot.spans) < maxSpansPerTrace {
		ot.spans = append(ot.spans, rec)
	}
	if entry {
		ot.entryEnded = true
		ot.entryRec = rec
	}
	if !ot.entryEnded || ot.inFlight > 0 {
		return
	}
	delete(f.open, trace)
	for i, id := range f.order {
		if id == trace {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	spans := ot.spans
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].StartUnix != spans[j].StartUnix {
			return spans[i].StartUnix < spans[j].StartUnix
		}
		return spans[i].ID < spans[j].ID
	})
	f.ring[f.next] = TraceRecord{
		Trace:      trace,
		Root:       ot.entryRec.Name,
		StartUnix:  ot.entryRec.StartUnix,
		DurationNS: ot.entryRec.DurationNS,
		Spans:      spans,
	}
	f.next++
	f.total++
	if f.next == len(f.ring) {
		f.next = 0
		f.full = true
	}
}

// records returns retained completed traces newest-first plus the lifetime
// total (newest-first because "the last N requests" is what an operator
// asks the flight recorder for).
func (f *flightRecorder) records() ([]TraceRecord, int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []TraceRecord
	appendReversed := func(part []TraceRecord) {
		for i := len(part) - 1; i >= 0; i-- {
			out = append(out, part[i])
		}
	}
	if f.full {
		out = make([]TraceRecord, 0, len(f.ring))
		appendReversed(f.ring[:f.next])
		appendReversed(f.ring[f.next:])
	} else {
		appendReversed(f.ring[:f.next])
	}
	return out, f.total
}

func (f *flightRecorder) reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.open = map[TraceID]*openTrace{}
	f.order = nil
	f.next = 0
	f.full = false
	f.total = 0
	for i := range f.ring {
		f.ring[i] = TraceRecord{}
	}
}

// Traces returns the completed traces retained by the registry's flight
// recorder, newest-first.
func (r *Registry) Traces() []TraceRecord {
	recs, _ := r.flight.records()
	return recs
}

// Traces returns the default registry's completed traces, newest-first.
func Traces() []TraceRecord { return defaultRegistry.Traces() }

// tracesDoc is the JSON envelope served over the wire Stats extension and
// the ops endpoint's /traces handler.
type tracesDoc struct {
	Traces []TraceRecord `json:"traces"`
}

// MarshalTraces serializes completed traces for transport. An empty flight
// recorder encodes as an empty array, not null, so consumers can always
// iterate.
func MarshalTraces(traces []TraceRecord) ([]byte, error) {
	if traces == nil {
		traces = []TraceRecord{}
	}
	return json.Marshal(tracesDoc{Traces: traces})
}

// ParseTraces decodes the payload produced by MarshalTraces.
func ParseTraces(data []byte) ([]TraceRecord, error) {
	var doc tracesDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("obs: parse traces: %w", err)
	}
	return doc.Traces, nil
}

// waterfallWidth is the bar area of the ASCII waterfall, in characters.
const waterfallWidth = 40

// Waterfall renders the trace as an ASCII timeline: one row per span in
// tree order (children indented under their parent), each with a bar whose
// offset and length are proportional to the span's position inside the
// trace.
func (t *TraceRecord) Waterfall(w io.Writer) {
	if len(t.Spans) == 0 {
		fmt.Fprintf(w, "trace %s: no spans\n", t.Trace)
		return
	}
	t0 := t.Spans[0].StartUnix
	var end int64
	for _, sp := range t.Spans {
		if e := sp.StartUnix + sp.DurationNS; e > end {
			end = e
		}
		if sp.StartUnix < t0 {
			t0 = sp.StartUnix
		}
	}
	total := end - t0
	if total <= 0 {
		total = 1
	}
	fmt.Fprintf(w, "trace %s  root=%s  %s\n",
		t.Trace, t.Root, time.Duration(t.DurationNS))

	children := map[uint64][]SpanRecord{}
	ids := map[uint64]bool{}
	for _, sp := range t.Spans {
		ids[sp.ID] = true
	}
	var roots []SpanRecord
	for _, sp := range t.Spans {
		if sp.Parent != 0 && ids[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	var render func(sp SpanRecord, depth int)
	render = func(sp SpanRecord, depth int) {
		off := int(float64(sp.StartUnix-t0) / float64(total) * waterfallWidth)
		length := int(float64(sp.DurationNS) / float64(total) * waterfallWidth)
		if length < 1 {
			length = 1
		}
		if off+length > waterfallWidth {
			off = waterfallWidth - length
			if off < 0 {
				off = 0
				length = waterfallWidth
			}
		}
		bar := strings.Repeat(" ", off) + strings.Repeat("=", length) +
			strings.Repeat(" ", waterfallWidth-off-length)
		name := strings.Repeat("  ", depth) + sp.Name
		fmt.Fprintf(w, "  %-28s |%s| %s\n", name, bar, time.Duration(sp.DurationNS))
		for _, c := range children[sp.ID] {
			render(c, depth+1)
		}
	}
	for _, sp := range roots {
		render(sp, 0)
	}
}
