package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// TraceID is a 128-bit trace identity. A trace groups every span recorded on
// behalf of one logical request as it crosses process and protocol
// boundaries: the client originates the ID, the wire protocol carries it,
// and the server, engine, and WAL join it. The zero value means "no trace".
type TraceID [16]byte

// IsZero reports whether the ID is the absent-trace sentinel.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits (the form stamped into
// provenance edges, audit records, and log lines).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// ParseTraceID parses the 32-hex-digit form produced by String.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 2*len(t) {
		return TraceID{}, fmt.Errorf("obs: trace id %q: want %d hex digits", s, 2*len(t))
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("obs: trace id %q: %w", s, err)
	}
	return t, nil
}

// MarshalText implements encoding.TextMarshaler so TraceID fields serialize
// as hex strings in JSON documents.
func (t TraceID) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (t *TraceID) UnmarshalText(text []byte) error {
	id, err := ParseTraceID(string(text))
	if err != nil {
		return err
	}
	*t = id
	return nil
}

// SpanContext is the portable identity of a span: the trace it belongs to
// and its own span ID. It is what the wire protocol's trace-context header
// carries, letting a peer start spans that join the originating trace.
type SpanContext struct {
	Trace TraceID
	Span  uint64
}

// IsZero reports whether the context carries no trace.
func (sc SpanContext) IsZero() bool { return sc.Trace.IsZero() }

// traceIDState drives the lock-free trace ID generator: an atomic counter
// stepped by the splitmix64 golden gamma, seeded once from crypto/rand, with
// each ID drawn as two splitmix64 outputs. Cheap enough for the per-query
// hot path (two atomic adds, no locks, no allocation).
var traceIDState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err == nil {
		traceIDState.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		// Without entropy the generator still yields unique IDs within the
		// process (the counter), just predictable ones.
		traceIDState.Store(0x9e3779b97f4a7c15)
	}
}

// splitmix64 is the output finalizer of the splitmix64 generator; the
// counter it is applied to advances by the golden gamma per draw.
func splitmix64(x uint64) uint64 {
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewTraceID returns a fresh random 128-bit trace ID (never zero).
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		a := splitmix64(traceIDState.Add(0x9e3779b97f4a7c15))
		b := splitmix64(traceIDState.Add(0x9e3779b97f4a7c15))
		binary.BigEndian.PutUint64(t[:8], a)
		binary.BigEndian.PutUint64(t[8:], b)
	}
	return t
}
