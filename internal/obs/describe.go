package obs

import (
	"sort"
	"strings"
	"sync"
)

// Metric descriptions are registration-time metadata, kept separate from the
// measurement maps: Reset zeroes values but never forgets what a metric
// means. The ops /metrics endpoint renders them as Prometheus # HELP lines,
// and the repo-root metric lint fails any registered metric without one.
var (
	descMu       sync.RWMutex
	descs        = map[string]string{}
	descPrefixes []prefixDesc
)

type prefixDesc struct {
	prefix string
	help   string
}

// Describe registers a help string for the named metric. Last write wins,
// so re-registration (tests, Reset-heavy benchmarks) is harmless.
func Describe(name, help string) {
	descMu.Lock()
	defer descMu.Unlock()
	descs[name] = help
}

// DescribePrefix registers a help string for a dynamically-named metric
// family — e.g. span.<name> or wire.out.msgs.<Tag> — whose members cannot be
// enumerated at init time. Longest matching prefix wins at lookup.
func DescribePrefix(prefix, help string) {
	descMu.Lock()
	defer descMu.Unlock()
	for i := range descPrefixes {
		if descPrefixes[i].prefix == prefix {
			descPrefixes[i].help = help
			return
		}
	}
	descPrefixes = append(descPrefixes, prefixDesc{prefix, help})
	sort.Slice(descPrefixes, func(i, j int) bool {
		return len(descPrefixes[i].prefix) > len(descPrefixes[j].prefix)
	})
}

// Description returns the help string for a metric name: an exact
// registration if one exists, otherwise the longest registered family
// prefix. The second result reports whether anything matched.
func Description(name string) (string, bool) {
	descMu.RLock()
	defer descMu.RUnlock()
	if h, ok := descs[name]; ok {
		return h, true
	}
	for _, p := range descPrefixes {
		if strings.HasPrefix(name, p.prefix) {
			return p.help, true
		}
	}
	return "", false
}

// NewCounter returns the named counter in the default registry and records
// its description — the preferred registration form for package-level metric
// handles: `var mStmts = obs.NewCounter("engine.stmts", "…")`.
func NewCounter(name, help string) *Counter {
	Describe(name, help)
	return GetCounter(name)
}

// NewGauge returns the named gauge in the default registry and records its
// description.
func NewGauge(name, help string) *Gauge {
	Describe(name, help)
	return GetGauge(name)
}

// NewHistogram returns the named histogram in the default registry and
// records its description.
func NewHistogram(name, help string) *Histogram {
	Describe(name, help)
	return GetHistogram(name)
}
