package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Wait events classify the places a session can block instead of running on
// CPU: table-lock acquisition, the WAL group-commit flush, the replica read
// gate, and the idle wait for the next client message. Each instrumented
// wait point is wrapped in a WaitBegin/end pair that (a) accumulates into
// the cumulative per-event counters behind ldv_stat_wait_events and the
// wait.* metrics, and (b) publishes the session's *current* wait through its
// SessionState so the ASH sampler can observe it. The cumulative side is
// always on (two atomic adds per wait); only the sampler has a kill switch.

// WaitEvent identifies one instrumented wait point.
type WaitEvent uint8

// The taxonomy. WaitNone is the on-CPU state, not a wait point — it carries
// no metrics and never reaches the cumulative stats.
const (
	WaitNone WaitEvent = iota
	// WaitLockTable: blocked acquiring a contended per-table lock. The fast
	// path (TryLock succeeds) is not a wait — only actual blocking counts,
	// as in PostgreSQL's lock wait events.
	WaitLockTable
	// WaitWALGroupCommit: a committing transaction waiting for the WAL
	// batch holding its record to flush.
	WaitWALGroupCommit
	// WaitReplApply: a replica read held by the read gate until the apply
	// loop reaches the client's read-your-writes bound.
	WaitReplApply
	// WaitClientRead: the session is idle, waiting for the next client
	// message.
	WaitClientRead

	numWaitEvents
)

// waitEventInfo carries each event's external name (dotted, rendered in
// views, logs, and /ash), its metric stem (underscored, rendered in the
// wait.* metric family), and its help text (rendered as # HELP on /metrics).
var waitEventInfo = [numWaitEvents]struct{ name, stem, help string }{
	WaitNone:           {"", "", ""},
	WaitLockTable:      {"lock.table", "lock_table", "Time statements spent blocked on contended table locks"},
	WaitWALGroupCommit: {"wal.group_commit", "wal_group_commit", "Time commits spent waiting for their WAL group-commit flush"},
	WaitReplApply:      {"repl.apply", "repl_apply", "Time replica reads spent waiting for the apply loop to reach their bound"},
	WaitClientRead:     {"client.read", "client_read", "Time sessions spent idle waiting for the next client message"},
}

// Name returns the event's dotted external name (e.g. "lock.table").
func (e WaitEvent) Name() string { return waitEventInfo[e].name }

// Description returns the event's help text, rendered as # HELP on /metrics
// and as the description column of ldv_stat_wait_events.
func (e WaitEvent) Description() string { return waitEventInfo[e].help }

// CountMetric returns the name of the event's cumulative wait counter.
func (e WaitEvent) CountMetric() string { return "wait." + waitEventInfo[e].stem + "_count" }

// NSMetric returns the name of the event's cumulative wait-time counter.
func (e WaitEvent) NSMetric() string { return "wait." + waitEventInfo[e].stem + "_ns" }

// WaitEvents lists every real wait event (WaitNone excluded), in taxonomy
// order — the iteration surface for views, /ash, and the wait lint.
func WaitEvents() []WaitEvent {
	evs := make([]WaitEvent, 0, numWaitEvents-1)
	for e := WaitEvent(1); e < numWaitEvents; e++ {
		evs = append(evs, e)
	}
	return evs
}

// Cumulative per-event accounting, registered as ordinary described metrics
// so they render on /metrics with # HELP lines and reset with the registry.
var (
	waitCounts [numWaitEvents]*Counter
	waitTimes  [numWaitEvents]*Counter
)

func init() {
	for _, e := range WaitEvents() {
		waitCounts[e] = NewCounter(e.CountMetric(), "Completed waits on "+e.Name())
		waitTimes[e] = NewCounter(e.NSMetric(), e.Description())
	}
}

// WaitEventStat is one row of the cumulative wait-event view.
type WaitEventStat struct {
	Event       WaitEvent
	Name        string
	Description string
	Count       int64
	TotalNS     int64
}

// WaitEventStats snapshots the cumulative per-event totals, in taxonomy
// order — the provider behind ldv_stat_wait_events and the /ash top-waits
// table.
func WaitEventStats() []WaitEventStat {
	out := make([]WaitEventStat, 0, numWaitEvents-1)
	for _, e := range WaitEvents() {
		out = append(out, WaitEventStat{
			Event:       e,
			Name:        e.Name(),
			Description: e.Description(),
			Count:       waitCounts[e].Load(),
			TotalNS:     waitTimes[e].Load(),
		})
	}
	return out
}

// SessionState is one session's lock-free publication surface: the
// connection goroutine writes its current statement, transaction, and wait
// state with plain atomic stores, and the ASH sampler reads them with atomic
// loads — no locks on either side, so publishing costs nanoseconds and a
// stalled session can never block the sampler (or vice versa). Fields may be
// read torn across each other (a sample can pair the new wait event with the
// previous fingerprint for one tick); ASH is statistical and tolerates that.
// All methods are nil-safe so engine paths without a registered session
// (library embedding, tests) pass nil and publish nothing.
type SessionState struct {
	id   int64
	proc string

	// event is the current WaitEvent (WaitNone = on CPU or idle);
	// waitStart is the wall clock (UnixNano) when that wait began.
	event     atomic.Int32
	waitStart atomic.Int64

	// active marks a statement mid-execution; fp and trace identify it.
	active atomic.Bool
	txn    atomic.Int64
	fp     atomic.Pointer[string]
	trace  atomic.Pointer[string]

	// Per-statement wait accumulation, reset by ResetStatementWaits at each
	// request boundary and summed by StatementWaits — the source of the
	// slow-query log's waits= field.
	stmtWaits  [numWaitEvents]atomic.Int64
	stmtWaitNS [numWaitEvents]atomic.Int64
}

// SessionID returns the session's server-assigned id.
func (st *SessionState) SessionID() int64 { return st.id }

// ResetStatementWaits zeroes the per-statement wait accumulators. The server
// calls it when a request arrives — before any of the request's waits (the
// replica read gate fires before statement execution even begins, so the
// reset cannot live in StartStatement).
func (st *SessionState) ResetStatementWaits() {
	if st == nil {
		return
	}
	for i := range st.stmtWaits {
		st.stmtWaits[i].Store(0)
		st.stmtWaitNS[i].Store(0)
	}
}

// StartStatement publishes a statement as executing.
func (st *SessionState) StartStatement(fingerprint, traceID string) {
	if st == nil {
		return
	}
	st.fp.Store(&fingerprint)
	st.trace.Store(&traceID)
	st.active.Store(true)
}

// FinishStatement returns the session to its between-statements state. The
// per-statement wait accumulators keep their totals until the next request's
// ResetStatementWaits so the caller can still read StatementWaits.
func (st *SessionState) FinishStatement() {
	if st == nil {
		return
	}
	st.active.Store(false)
	st.fp.Store(nil)
	st.trace.Store(nil)
}

// SetTxn publishes the session's open transaction id (0 = none).
func (st *SessionState) SetTxn(id int64) {
	if st == nil {
		return
	}
	st.txn.Store(id)
}

// StatementWaits reports the most recent statement's dominant wait event
// (by accumulated time) and its total time across all events. A zero total
// means the statement never blocked.
func (st *SessionState) StatementWaits() (dominant WaitEvent, dominantNS, totalNS int64) {
	if st == nil {
		return WaitNone, 0, 0
	}
	for _, e := range WaitEvents() {
		ns := st.stmtWaitNS[e].Load()
		totalNS += ns
		if ns > dominantNS {
			dominant, dominantNS = e, ns
		}
	}
	return dominant, dominantNS, totalNS
}

// WaitBegin opens one wait section on a session and returns its end
// function. Callers must `defer end()` (or call it on every path) — the
// repo-root wait lint enforces the deferred form. The end function folds the
// wait's duration into the cumulative per-event counters and the session's
// per-statement accumulators, and returns the session to the on-CPU state.
// st may be nil (cumulative accounting only).
func WaitBegin(st *SessionState, ev WaitEvent) func() {
	t0 := time.Now()
	if st != nil {
		st.waitStart.Store(t0.UnixNano())
		st.event.Store(int32(ev))
	}
	return func() {
		d := int64(time.Since(t0))
		waitCounts[ev].Inc()
		waitTimes[ev].Add(d)
		if st != nil {
			st.event.Store(int32(WaitNone))
			st.stmtWaits[ev].Add(1)
			st.stmtWaitNS[ev].Add(d)
		}
	}
}

// The session set: every live connection registers here so the ASH sampler
// can enumerate sessions. Registration is per-connection (not per-statement),
// so a mutex-guarded map is fine — the hot path never touches it.
var (
	sessMu   sync.RWMutex
	sessions = map[int64]*SessionState{}
)

// RegisterSession adds a session to the sampled set and returns its state
// handle. The first registration starts the ASH sampler goroutine.
func RegisterSession(id int64, proc string) *SessionState {
	st := &SessionState{id: id, proc: proc}
	sessMu.Lock()
	sessions[id] = st
	sessMu.Unlock()
	defaultASH.start()
	return st
}

// UnregisterSession removes a closed session from the sampled set.
func UnregisterSession(id int64) {
	sessMu.Lock()
	delete(sessions, id)
	sessMu.Unlock()
}

// liveSessions snapshots the registered session handles.
func liveSessions() []*SessionState {
	sessMu.RLock()
	out := make([]*SessionState, 0, len(sessions))
	for _, st := range sessions {
		out = append(out, st)
	}
	sessMu.RUnlock()
	return out
}
