package obs

import (
	"sync"
	"testing"
)

// TestFlightRecorderEvictsAbandonedTraces covers the leak path the ring
// bound alone does not: spans that are started and never ended (a crashed
// client, a leaked span) accumulate open-trace working state. The recorder
// must evict abandoned traces oldest-first at maxOpenTraces, so an unbounded
// stream of leaks costs bounded memory — and well-behaved traces sealing
// concurrently with the leaks must still reach the ring.
func TestFlightRecorderEvictsAbandonedTraces(t *testing.T) {
	r := NewRegistry(64)

	// Leak far more traces than the open cap, interleaved with completed
	// ones, from several goroutines (run under -race by `make check`).
	const writers = 4
	const perWriter = 2 * maxOpenTraces / writers
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				_ = r.StartSpan("leaked") // never ended
				sp := r.StartSpan("completed")
				sp.Child("stage").End()
				sp.End()
			}
		}()
	}
	wg.Wait()

	r.flight.mu.Lock()
	open, order := len(r.flight.open), len(r.flight.order)
	r.flight.mu.Unlock()
	if open > maxOpenTraces || order > maxOpenTraces {
		t.Fatalf("open traces = %d (order %d), want <= %d", open, order, maxOpenTraces)
	}
	if open == 0 {
		t.Fatal("expected abandoned traces to remain open up to the cap")
	}

	// Completed traces sealed normally throughout: the ring is full of them
	// and no leaked-only trace was sealed.
	traces := r.Traces()
	if len(traces) != DefaultTraceCapacity {
		t.Fatalf("retained %d traces, want %d", len(traces), DefaultTraceCapacity)
	}
	for _, tr := range traces {
		if tr.Root != "completed" {
			t.Fatalf("sealed trace root = %q, want only completed traces", tr.Root)
		}
		if len(tr.Spans) != 2 {
			t.Fatalf("sealed trace has %d spans, want 2", len(tr.Spans))
		}
	}
}

// TestFlightRecorderDrainsEvictedTrace pins the begin/observe clamp: when a
// trace's working state is evicted between a child's begin and its End, the
// recreated state must still drain and seal when the entry span ends, rather
// than waiting forever on a lost in-flight count.
func TestFlightRecorderDrainsEvictedTrace(t *testing.T) {
	r := NewRegistry(8)
	root := r.StartSpan("victim")
	child := root.Child("stage")

	// Push the victim trace out of the open set while its spans are live.
	for i := 0; i < maxOpenTraces+1; i++ {
		_ = r.StartSpan("filler")
	}

	child.End()
	root.End()
	for _, tr := range r.Traces() {
		if tr.Root == "victim" {
			return
		}
	}
	t.Fatal("evicted trace did not seal after its entry span ended")
}

// TestFlightRecorderCapsSpansPerTrace: a trace accumulating more spans than
// maxSpansPerTrace keeps the first spans and drops the rest, bounding the
// sealed record's size.
func TestFlightRecorderCapsSpansPerTrace(t *testing.T) {
	r := NewRegistry(8)
	root := r.StartSpan("big")
	for i := 0; i < maxSpansPerTrace+50; i++ {
		root.Child("stage").End()
	}
	root.End()
	traces := r.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	if got := len(traces[0].Spans); got != maxSpansPerTrace {
		t.Fatalf("sealed spans = %d, want cap %d", got, maxSpansPerTrace)
	}
}
