package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// maxStatementEntries bounds the per-fingerprint map: a workload that keeps
// generating fresh statement shapes (fingerprinting already collapses
// literals, so this takes real schema churn) stops gaining rows rather than
// growing without bound. Existing fingerprints keep accumulating.
const maxStatementEntries = 4096

// StatementStats is the cumulative per-fingerprint statement store behind
// ldv_stat_statements and the ops /statements view. One entry per statement
// fingerprint accumulates calls, errors, row counts, and parse/plan/exec
// latency histograms; recording is lock-free after an entry exists (one
// RLock for the map lookup, then atomics only).
type StatementStats struct {
	enabled atomic.Bool
	mu      sync.RWMutex
	m       map[uint64]*stmtEntry
}

type stmtEntry struct {
	hash  uint64
	text  string
	calls atomic.Int64
	errs  atomic.Int64
	rows  atomic.Int64
	parse *Histogram
	plan  *Histogram
	exec  *Histogram
	trace atomic.Value // string: last trace ID, "" when untraced
}

func newStatementStats() *StatementStats {
	s := &StatementStats{m: map[uint64]*stmtEntry{}}
	s.enabled.Store(true)
	return s
}

// SetEnabled toggles collection. Disabled, Record is one atomic load — the
// knob the introspection benchmark flips to measure the subsystem's cost.
func (s *StatementStats) SetEnabled(on bool) { s.enabled.Store(on) }

// Enabled reports whether collection is on.
func (s *StatementStats) Enabled() bool { return s.enabled.Load() }

// Record folds one finished statement into its fingerprint's entry.
func (s *StatementStats) Record(hash uint64, text string, parseNS, planNS, execNS, rows int64, failed bool, traceID string) {
	if !s.enabled.Load() || hash == 0 {
		return
	}
	s.mu.RLock()
	e := s.m[hash]
	s.mu.RUnlock()
	if e == nil {
		s.mu.Lock()
		e = s.m[hash]
		if e == nil {
			if len(s.m) >= maxStatementEntries {
				s.mu.Unlock()
				return
			}
			e = &stmtEntry{hash: hash, text: text,
				parse: newHistogram(), plan: newHistogram(), exec: newHistogram()}
			s.m[hash] = e
		}
		s.mu.Unlock()
	}
	e.calls.Add(1)
	if failed {
		e.errs.Add(1)
	}
	e.rows.Add(rows)
	e.parse.Record(parseNS)
	e.plan.Record(planNS)
	e.exec.Record(execNS)
	if traceID != "" {
		e.trace.Store(traceID)
	}
}

// StatementStat is the exported point-in-time state of one fingerprint.
type StatementStat struct {
	Hash        uint64            `json:"hash"`
	Text        string            `json:"text"`
	Calls       int64             `json:"calls"`
	Errors      int64             `json:"errors"`
	Rows        int64             `json:"rows"`
	Parse       HistogramSnapshot `json:"parse_ns"`
	Plan        HistogramSnapshot `json:"plan_ns"`
	Exec        HistogramSnapshot `json:"exec_ns"`
	LastTraceID string            `json:"last_trace_id,omitempty"`
}

// Snapshot returns every fingerprint's cumulative stats, ordered by total
// execution time descending (the "what is this database spending its time
// on" ordering), ties broken by fingerprint text for determinism.
func (s *StatementStats) Snapshot() []StatementStat {
	s.mu.RLock()
	entries := make([]*stmtEntry, 0, len(s.m))
	for _, e := range s.m {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	out := make([]StatementStat, 0, len(entries))
	for _, e := range entries {
		st := StatementStat{
			Hash:   e.hash,
			Text:   e.text,
			Calls:  e.calls.Load(),
			Errors: e.errs.Load(),
			Rows:   e.rows.Load(),
			Parse:  e.parse.snapshot(),
			Plan:   e.plan.snapshot(),
			Exec:   e.exec.snapshot(),
		}
		if t, ok := e.trace.Load().(string); ok {
			st.LastTraceID = t
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Exec.Sum != out[j].Exec.Sum {
			return out[i].Exec.Sum > out[j].Exec.Sum
		}
		return out[i].Text < out[j].Text
	})
	return out
}

// Len returns the number of distinct fingerprints recorded.
func (s *StatementStats) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

func (s *StatementStats) reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = map[uint64]*stmtEntry{}
}

// Statements returns this registry's per-fingerprint statement store.
func (r *Registry) Statements() *StatementStats { return r.stmts }

// Statements returns the default registry's statement store.
func Statements() *StatementStats { return defaultRegistry.Statements() }
