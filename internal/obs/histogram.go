package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count: bucket i holds observations whose
// value v (in the recorded unit, nanoseconds for latencies) satisfies
// 2^(i-1) <= v < 2^i, with bucket 0 holding v <= 0..1. Power-of-two bounds
// make recording a single bits.Len64 plus one atomic add.
const histBuckets = 64

// Histogram is a fixed-bucket exponential histogram with atomic recording.
// It tracks count, sum, min, and max exactly and the distribution at
// power-of-two resolution — enough to read p50/p95/p99 latencies off a
// snapshot without per-observation allocation or locks.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(int64(^uint64(0) >> 1)) // MaxInt64 sentinel
	return h
}

// bucketIndex maps a value to its power-of-two bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// BucketBound returns the exclusive upper bound of bucket i (the largest
// bucket is unbounded and reports -1).
func BucketBound(i int) int64 {
	if i >= histBuckets-1 {
		return -1
	}
	return int64(1) << uint(i)
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Observe records a duration in nanoseconds — the convention for all
// latency histograms in this codebase (their names end in `_ns`).
func (h *Histogram) Observe(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(int64(^uint64(0) >> 1))
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// HistogramSnapshot is the exported point-in-time state of a histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	// Buckets holds only non-empty buckets as {index: count}; bounds are
	// reconstructed with BucketBound.
	Buckets map[int]int64 `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	if s.Count > 0 {
		s.Min = h.min.Load()
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			if s.Buckets == nil {
				s.Buckets = map[int]int64{}
			}
			s.Buckets[i] = n
		}
	}
	return s
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-th quantile (0 < q <= 1) using
// the bucket bounds; exact values degrade to power-of-two resolution.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += s.Buckets[i]
		if seen >= target {
			if b := BucketBound(i); b >= 0 {
				if b > s.Max {
					return s.Max
				}
				return b
			}
			return s.Max
		}
	}
	return s.Max
}
