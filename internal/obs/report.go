package obs

import (
	"fmt"
	"io"
	"time"
)

// Metric names the audit instrumentation records and the overhead report
// consumes. Keeping them as constants ties the report to the engine and
// auditor hot paths without an import cycle (obs stays stdlib-only).
const (
	// MetricLineageNS is engine time spent computing per-statement lineage
	// and copying provenance tuple values (the query-rewrite cost §IX-B
	// charges to provenance computation).
	MetricLineageNS = "engine.lineage_ns"
	// MetricTraceNS is auditor time spent building trace nodes/edges from
	// statements and syscalls.
	MetricTraceNS = "auditor.trace_ns"
	// MetricDedupNS is auditor time spent in the duplicate-suppression
	// hash table of §VII-D.
	MetricDedupNS = "auditor.dedup_ns"
	// MetricSpoolNS is auditor time spent appending newly relevant tuples
	// and interaction-log entries to storage.
	MetricSpoolNS = "auditor.spool_ns"
)

// OverheadReport reproduces the paper's audit-overhead breakdown (§IX-B):
// an audited run's wall time partitioned into the native execution time,
// the attributed audit costs (provenance/lineage computation, trace
// construction, dedup, logging), and an unattributed remainder. The parts
// sum to Audited exactly; Unattributed absorbs measurement noise and may
// be negative when the native baseline run was slower than the audited
// run's non-audit portion.
type OverheadReport struct {
	Native  time.Duration `json:"native_ns"`
	Audited time.Duration `json:"audited_ns"`

	Lineage time.Duration `json:"lineage_ns"`
	Trace   time.Duration `json:"trace_ns"`
	Dedup   time.Duration `json:"dedup_ns"`
	Logging time.Duration `json:"logging_ns"`

	Unattributed time.Duration `json:"unattributed_ns"`
}

// BuildOverheadReport combines the measured native and audited wall times
// with the audited run's snapshot into the breakdown.
func BuildOverheadReport(native, audited time.Duration, snap *Snapshot) *OverheadReport {
	r := &OverheadReport{
		Native:  native,
		Audited: audited,
		Lineage: snap.HistogramSumNS(MetricLineageNS),
		Trace:   snap.HistogramSumNS(MetricTraceNS),
		Dedup:   snap.HistogramSumNS(MetricDedupNS),
		Logging: snap.HistogramSumNS(MetricSpoolNS),
	}
	r.Unattributed = audited - native - r.Lineage - r.Trace - r.Dedup - r.Logging
	return r
}

// Overhead is the total audit cost (audited minus native wall time).
func (r *OverheadReport) Overhead() time.Duration { return r.Audited - r.Native }

// Total re-sums the breakdown; by construction it equals Audited.
func (r *OverheadReport) Total() time.Duration {
	return r.Native + r.Lineage + r.Trace + r.Dedup + r.Logging + r.Unattributed
}

func pct(part, whole time.Duration) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// Render writes the breakdown as a table.
func (r *OverheadReport) Render(w io.Writer) {
	fmt.Fprintln(w, "Audit-overhead breakdown (audited wall time partitioned):")
	row := func(name string, d time.Duration) {
		fmt.Fprintf(w, "  %-26s %14s  %6.1f%%\n", name, d.Round(time.Microsecond), pct(d, r.Audited))
	}
	row("native execution", r.Native)
	row("lineage computation", r.Lineage)
	row("trace construction", r.Trace)
	row("tuple dedup", r.Dedup)
	row("logging/spooling", r.Logging)
	row("unattributed", r.Unattributed)
	fmt.Fprintf(w, "  %-26s %14s\n", "= audited total", r.Total().Round(time.Microsecond))
	fmt.Fprintf(w, "  audit overhead: %s (%.1f%% over native)\n",
		r.Overhead().Round(time.Microsecond), pct(r.Overhead(), r.Native))
}
