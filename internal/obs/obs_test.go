package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry(0)
	c := r.Counter("c")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	// Same name returns the same handle.
	if r.Counter("c") != c {
		t.Fatal("Counter did not return the cached handle")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry(0)
	g := r.Gauge("g")
	g.Set(5)
	g.Add(-2)
	if got := g.Load(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry(0)
	h := r.Histogram("h")
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Record(int64(i*per + j + 1))
			}
		}()
	}
	wg.Wait()
	n := int64(workers * per)
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	if want := n * (n + 1) / 2; h.Sum() != want {
		t.Fatalf("sum = %d, want %d", h.Sum(), want)
	}
	s := h.snapshot()
	if s.Min != 1 || s.Max != n {
		t.Fatalf("min/max = %d/%d, want 1/%d", s.Min, s.Max, n)
	}
	var bucketTotal int64
	for _, c := range s.Buckets {
		bucketTotal += c
	}
	if bucketTotal != n {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, n)
	}
	if q := s.Quantile(0.5); q < n/4 || q > n {
		t.Fatalf("p50 = %d out of plausible range [%d,%d]", q, n/4, n)
	}
}

func TestHistogramBuckets(t *testing.T) {
	if bucketIndex(0) != 0 || bucketIndex(-5) != 0 {
		t.Fatal("non-positive values must land in bucket 0")
	}
	// 2^(i-1) <= v < 2^i → index i = bits.Len64(v).
	if bucketIndex(1) != 1 || bucketIndex(2) != 2 || bucketIndex(3) != 2 || bucketIndex(4) != 3 {
		t.Fatalf("bucket mapping wrong: %d %d %d %d",
			bucketIndex(1), bucketIndex(2), bucketIndex(3), bucketIndex(4))
	}
	if BucketBound(histBuckets-1) != -1 {
		t.Fatal("last bucket must be unbounded")
	}
}

func TestSpanNesting(t *testing.T) {
	r := NewRegistry(0)
	r.SetLogicalClock(func() uint64 { return 42 })
	root := r.StartSpan("root")
	child := root.Child("child").SetAttr("k", "v")
	grand := child.Child("grand")
	grand.End()
	child.End()
	root.End()

	snap := r.Snapshot()
	if len(snap.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(snap.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, sp := range snap.Spans {
		byName[sp.Name] = sp
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Fatal("child span does not reference root as parent")
	}
	if byName["grand"].Parent != byName["child"].ID {
		t.Fatal("grandchild span does not reference child as parent")
	}
	if byName["root"].Parent != 0 {
		t.Fatal("root span must have no parent")
	}
	if byName["child"].Attrs[0].Key != "k" || byName["child"].Attrs[0].Value != "v" {
		t.Fatal("span attr lost")
	}
	if byName["root"].StartTick != 42 || byName["root"].EndTick != 42 {
		t.Fatal("logical clock ticks not recorded")
	}
	// End also feeds the span.<name> histogram.
	if snap.Histogram("span.root").Count != 1 {
		t.Fatal("span end did not observe into span.root histogram")
	}
	// Double End is a no-op.
	root.End()
	if got := r.Snapshot().SpanTotal; got != 3 {
		t.Fatalf("double End recorded extra span: total %d", got)
	}
}

func TestSpanRingEviction(t *testing.T) {
	const capacity = 8
	r := NewRegistry(capacity)
	for i := 0; i < capacity+5; i++ {
		r.StartSpan("s").End()
	}
	snap := r.Snapshot()
	if len(snap.Spans) != capacity {
		t.Fatalf("retained %d spans, want %d", len(snap.Spans), capacity)
	}
	if snap.SpanTotal != capacity+5 {
		t.Fatalf("span total = %d, want %d", snap.SpanTotal, capacity+5)
	}
	// Oldest-first: the first retained span is #6 (IDs start at 1).
	if snap.Spans[0].ID != 6 {
		t.Fatalf("oldest retained span ID = %d, want 6", snap.Spans[0].ID)
	}
	for i := 1; i < len(snap.Spans); i++ {
		if snap.Spans[i].ID != snap.Spans[i-1].ID+1 {
			t.Fatal("retained spans not in chronological order")
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry(0)
	r.Counter("engine.stmts").Add(7)
	r.Gauge("server.active").Set(2)
	r.Histogram("engine.exec_ns.select").Observe(1500 * time.Nanosecond)
	r.StartSpan("replay.extract").End()

	data, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Counter("engine.stmts") != 7 {
		t.Fatalf("counter lost in round trip: %d", back.Counter("engine.stmts"))
	}
	if back.Gauge("server.active") != 2 {
		t.Fatal("gauge lost in round trip")
	}
	if back.Histogram("engine.exec_ns.select").Count != 1 {
		t.Fatal("histogram lost in round trip")
	}
	if len(back.Spans) != 1 || back.Spans[0].Name != "replay.extract" {
		t.Fatal("spans lost in round trip")
	}

	var buf strings.Builder
	back.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"engine.stmts", "server.active", "engine.exec_ns.select", "replay.extract"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestResetKeepsHandles(t *testing.T) {
	r := NewRegistry(0)
	c := r.Counter("c")
	h := r.Histogram("h")
	c.Add(3)
	h.Record(9)
	r.StartSpan("s").End()
	r.Reset()
	snap := r.Snapshot()
	if snap.Counter("c") != 0 || snap.Histogram("h").Count != 0 || snap.SpanTotal != 0 {
		t.Fatal("Reset did not zero metrics")
	}
	// Old handles keep recording into the (zeroed) metrics.
	c.Inc()
	h.Record(2)
	snap = r.Snapshot()
	if snap.Counter("c") != 1 || snap.Histogram("h").Count != 1 {
		t.Fatal("handles orphaned by Reset")
	}
	if snap.Histogram("h").Min != 2 {
		t.Fatalf("histogram min not reset: %d", snap.Histogram("h").Min)
	}
}

func TestOverheadReport(t *testing.T) {
	r := NewRegistry(0)
	r.Histogram(MetricLineageNS).Record(int64(10 * time.Millisecond))
	r.Histogram(MetricTraceNS).Record(int64(5 * time.Millisecond))
	r.Histogram(MetricDedupNS).Record(int64(2 * time.Millisecond))
	r.Histogram(MetricSpoolNS).Record(int64(3 * time.Millisecond))
	rep := BuildOverheadReport(100*time.Millisecond, 130*time.Millisecond, r.Snapshot())

	if rep.Overhead() != 30*time.Millisecond {
		t.Fatalf("overhead = %v", rep.Overhead())
	}
	if rep.Total() != rep.Audited {
		t.Fatalf("breakdown must partition audited time: total %v != audited %v", rep.Total(), rep.Audited)
	}
	if rep.Unattributed != 10*time.Millisecond {
		t.Fatalf("unattributed = %v, want 10ms", rep.Unattributed)
	}
	var buf strings.Builder
	rep.Render(&buf)
	for _, want := range []string{"native execution", "trace construction", "tuple dedup", "audit overhead"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, buf.String())
		}
	}
}
