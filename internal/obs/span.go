package obs

import (
	"sync"
	"time"
)

func init() {
	DescribePrefix("span.", "Span duration by span name")
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one in-flight timed operation. Spans nest explicitly — a child
// created with Child carries its parent's ID — so a snapshot reconstructs
// the hierarchy without goroutine-local context plumbing. Every span belongs
// to a trace: StartSpan originates a fresh 128-bit TraceID, Child inherits
// its parent's, and StartSpanIn joins a trace whose context arrived over the
// wire. End records the finished span into the registry's bounded ring
// buffer, into the `span.<name>` latency histogram, and into the flight
// recorder (which seals the trace once its entry span has ended and no
// local spans remain in flight — see the flight recorder's doc comment).
//
// All methods are safe on a nil *Span and do nothing, so instrumented code
// can thread an optional parent span without nil checks at every call site.
type Span struct {
	reg    *Registry
	trace  TraceID
	id     uint64
	parent uint64
	// entry marks a span whose parent is not a local span: it originated
	// the trace (StartSpan) or joined it from a wire context (StartSpanIn).
	// Its End makes the trace eligible to seal into a TraceRecord.
	entry    bool
	name     string
	start    time.Time
	startTck uint64
	attrs    []Attr
	ended    bool
}

// StartSpan begins a root span, originating a new trace.
func (r *Registry) StartSpan(name string) *Span {
	s := &Span{
		reg:      r,
		trace:    NewTraceID(),
		id:       r.nextSpanID.Add(1),
		entry:    true,
		name:     name,
		start:    time.Now(),
		startTck: r.logicalNow(),
	}
	r.flight.begin(s.trace)
	return s
}

// StartSpan begins a root span in the default registry.
func StartSpan(name string) *Span { return defaultRegistry.StartSpan(name) }

// StartSpanIn begins a span that joins an existing trace — the server side
// of wire-level context propagation. A zero context degrades to StartSpan
// (the span originates a trace of its own).
func (r *Registry) StartSpanIn(name string, sc SpanContext) *Span {
	if sc.IsZero() {
		return r.StartSpan(name)
	}
	s := &Span{
		reg:      r,
		trace:    sc.Trace,
		id:       r.nextSpanID.Add(1),
		parent:   sc.Span,
		entry:    true,
		name:     name,
		start:    time.Now(),
		startTck: r.logicalNow(),
	}
	r.flight.begin(s.trace)
	return s
}

// StartSpanIn begins a trace-joining span in the default registry.
func StartSpanIn(name string, sc SpanContext) *Span {
	return defaultRegistry.StartSpanIn(name, sc)
}

// Child begins a nested span in the same trace. Returns nil when s is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		reg:      s.reg,
		trace:    s.trace,
		id:       s.reg.nextSpanID.Add(1),
		parent:   s.id,
		name:     name,
		start:    time.Now(),
		startTck: s.reg.logicalNow(),
	}
	s.reg.flight.begin(c.trace)
	return c
}

// ID returns the span's identity (unique within its registry; 0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// TraceID returns the trace the span belongs to (zero for nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// Context returns the span's portable identity for wire propagation (zero
// for nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.trace, Span: s.id}
}

// SetAttr attaches a key/value annotation.
func (s *Span) SetAttr(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	return s
}

// End finishes the span, records it, and returns its wall duration. A
// second End (and End on a nil span) is a no-op returning zero, so
// `defer sp.End()` composes with early explicit ends and optional tracing.
func (s *Span) End() time.Duration {
	if s == nil || s.ended {
		return 0
	}
	s.ended = true
	d := time.Since(s.start)
	rec := SpanRecord{
		ID:         s.id,
		Parent:     s.parent,
		Trace:      s.trace,
		Name:       s.name,
		StartUnix:  s.start.UnixNano(),
		DurationNS: int64(d),
		StartTick:  s.startTck,
		EndTick:    s.reg.logicalNow(),
		Attrs:      s.attrs,
	}
	s.reg.spans.add(rec)
	s.reg.flight.observe(s.trace, rec, s.entry)
	s.reg.Histogram("span." + s.name).Observe(d)
	return d
}

// SpanRecord is one finished span as stored in the ring buffer.
type SpanRecord struct {
	ID     uint64  `json:"id"`
	Parent uint64  `json:"parent,omitempty"`
	Trace  TraceID `json:"trace"`
	Name   string  `json:"name"`
	// StartUnix/DurationNS place the span on the wall clock.
	StartUnix  int64 `json:"start_unix_ns"`
	DurationNS int64 `json:"duration_ns"`
	// StartTick/EndTick are osim logical-clock stamps (0 when no logical
	// clock is attached to the registry).
	StartTick uint64 `json:"start_tick,omitempty"`
	EndTick   uint64 `json:"end_tick,omitempty"`
	Attrs     []Attr `json:"attrs,omitempty"`
}

// Attr returns the value of the named annotation ("" when absent).
func (r SpanRecord) Attr(key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// spanRing is a bounded circular buffer of finished spans: the most recent
// cap spans survive, older ones are evicted.
type spanRing struct {
	mu    sync.Mutex
	buf   []SpanRecord
	next  int
	full  bool
	total int64 // lifetime count, including evicted spans
}

func newSpanRing(capacity int) *spanRing {
	return &spanRing{buf: make([]SpanRecord, capacity)}
}

func (r *spanRing) add(rec SpanRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = rec
	r.next++
	r.total++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// records returns retained spans oldest-first plus the lifetime total.
func (r *spanRing) records() ([]SpanRecord, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SpanRecord
	if r.full {
		out = make([]SpanRecord, 0, len(r.buf))
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append([]SpanRecord(nil), r.buf[:r.next]...)
	}
	return out, r.total
}

func (r *spanRing) reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next = 0
	r.full = false
	r.total = 0
}
