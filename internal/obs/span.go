package obs

import (
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one in-flight timed operation. Spans nest explicitly — a child
// created with Child carries its parent's ID — so a snapshot reconstructs
// the hierarchy without goroutine-local context plumbing. End records the
// finished span into the registry's bounded ring buffer and into the
// `span.<name>` latency histogram.
type Span struct {
	reg      *Registry
	id       uint64
	parent   uint64
	name     string
	start    time.Time
	startTck uint64
	attrs    []Attr
	ended    bool
}

// StartSpan begins a root span.
func (r *Registry) StartSpan(name string) *Span {
	return &Span{
		reg:      r,
		id:       r.nextSpanID.Add(1),
		name:     name,
		start:    time.Now(),
		startTck: r.logicalNow(),
	}
}

// StartSpan begins a root span in the default registry.
func StartSpan(name string) *Span { return defaultRegistry.StartSpan(name) }

// Child begins a nested span.
func (s *Span) Child(name string) *Span {
	c := s.reg.StartSpan(name)
	c.parent = s.id
	return c
}

// ID returns the span's identity (unique within its registry).
func (s *Span) ID() uint64 { return s.id }

// SetAttr attaches a key/value annotation.
func (s *Span) SetAttr(key, value string) *Span {
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	return s
}

// End finishes the span, records it, and returns its wall duration. A
// second End is a no-op (returns the original duration measured lazily as
// zero) so `defer sp.End()` composes with early explicit ends.
func (s *Span) End() time.Duration {
	if s.ended {
		return 0
	}
	s.ended = true
	d := time.Since(s.start)
	rec := SpanRecord{
		ID:         s.id,
		Parent:     s.parent,
		Name:       s.name,
		StartUnix:  s.start.UnixNano(),
		DurationNS: int64(d),
		StartTick:  s.startTck,
		EndTick:    s.reg.logicalNow(),
		Attrs:      s.attrs,
	}
	s.reg.spans.add(rec)
	s.reg.Histogram("span." + s.name).Observe(d)
	return d
}

// SpanRecord is one finished span as stored in the ring buffer.
type SpanRecord struct {
	ID         uint64 `json:"id"`
	Parent     uint64 `json:"parent,omitempty"`
	Name       string `json:"name"`
	StartUnix  int64  `json:"start_unix_ns"`
	DurationNS int64  `json:"duration_ns"`
	// StartTick/EndTick are osim logical-clock stamps (0 when no logical
	// clock is attached to the registry).
	StartTick uint64 `json:"start_tick,omitempty"`
	EndTick   uint64 `json:"end_tick,omitempty"`
	Attrs     []Attr `json:"attrs,omitempty"`
}

// spanRing is a bounded circular buffer of finished spans: the most recent
// cap spans survive, older ones are evicted.
type spanRing struct {
	mu    sync.Mutex
	buf   []SpanRecord
	next  int
	full  bool
	total int64 // lifetime count, including evicted spans
}

func newSpanRing(capacity int) *spanRing {
	return &spanRing{buf: make([]SpanRecord, capacity)}
}

func (r *spanRing) add(rec SpanRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = rec
	r.next++
	r.total++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// records returns retained spans oldest-first plus the lifetime total.
func (r *spanRing) records() ([]SpanRecord, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SpanRecord
	if r.full {
		out = make([]SpanRecord, 0, len(r.buf))
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append([]SpanRecord(nil), r.buf[:r.next]...)
	}
	return out, r.total
}

func (r *spanRing) reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next = 0
	r.full = false
	r.total = 0
}
