package obs

import (
	"testing"
	"time"
)

// sessionSamples filters a sampler's ring down to one session's samples, so
// assertions ignore sessions registered by other tests in the package.
func sessionSamples(a *ASHSampler, id int64) []ASHSample {
	var out []ASHSample
	for _, s := range a.Samples() {
		if s.Session == id {
			out = append(out, s)
		}
	}
	return out
}

func TestASHSampleStates(t *testing.T) {
	const sid = 9201
	a := newASHSampler(64)
	st := RegisterSession(sid, "ashtest")
	defer UnregisterSession(sid)

	// Explicit, strictly increasing tick times keep the chronological order
	// of Samples() aligned with the order of the sampleOnce calls.
	base := time.Now()
	// Idle: registered, nothing running.
	a.sampleOnce(base)
	// On CPU mid-statement.
	st.StartStatement("fp1", "trace1")
	st.SetTxn(42)
	a.sampleOnce(base.Add(time.Millisecond))
	// Blocked on a table lock (the tick lands mid-wait, so wait_ns > 0).
	end := WaitBegin(st, WaitLockTable)
	a.sampleOnce(base.Add(2 * time.Millisecond))
	end()
	st.FinishStatement()
	st.SetTxn(0)
	// Waiting for the next client message: idle, but attributed.
	endRead := WaitBegin(st, WaitClientRead)
	a.sampleOnce(base.Add(3 * time.Millisecond))
	endRead()

	got := sessionSamples(a, sid)
	if len(got) != 4 {
		t.Fatalf("samples = %d, want 4", len(got))
	}
	if got[0].State != "idle" || got[0].Event != "" {
		t.Fatalf("sample 0 = %+v, want plain idle", got[0])
	}
	if got[1].State != "cpu" || got[1].Fingerprint != "fp1" || got[1].TraceID != "trace1" || got[1].Txn != 42 {
		t.Fatalf("sample 1 = %+v, want cpu with statement identity", got[1])
	}
	if got[2].State != "waiting" || got[2].Event != "lock.table" {
		t.Fatalf("sample 2 = %+v, want waiting on lock.table", got[2])
	}
	if got[2].WaitNS <= 0 {
		t.Fatalf("sample 2 wait_ns = %d, want > 0 (time already in the wait)", got[2].WaitNS)
	}
	if got[3].State != "idle" || got[3].Event != "client.read" {
		t.Fatalf("sample 3 = %+v, want idle on client.read", got[3])
	}
	if got[0].Proc != "ashtest" {
		t.Fatalf("proc = %q", got[0].Proc)
	}
}

func TestASHRingWrap(t *testing.T) {
	const sid = 9202
	a := newASHSampler(4)
	RegisterSession(sid, "wraptest")
	defer UnregisterSession(sid)

	base := time.Now()
	for i := 0; i < 6; i++ {
		a.sampleOnce(base.Add(time.Duration(i) * time.Millisecond))
	}
	if a.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", a.Len())
	}
	got := sessionSamples(a, sid)
	// Other tests' sessions may claim ring slots; this session's surviving
	// samples must still be the newest and in order.
	for i := 1; i < len(got); i++ {
		if got[i].TimeNS < got[i-1].TimeNS {
			t.Fatalf("samples out of order: %d before %d", got[i].TimeNS, got[i-1].TimeNS)
		}
	}
	if len(got) > 0 && got[len(got)-1].TimeNS != base.Add(5*time.Millisecond).UnixNano() {
		t.Fatalf("newest sample = %d, want the last tick's", got[len(got)-1].TimeNS)
	}

	a.reset()
	if a.Len() != 0 || len(a.Samples()) != 0 {
		t.Fatalf("after reset: Len=%d Samples=%d", a.Len(), len(a.Samples()))
	}
}

func TestASHRateClampAndKillSwitch(t *testing.T) {
	a := newASHSampler(8)
	a.SetRate(0)
	if a.Rate() != 1 {
		t.Fatalf("rate after SetRate(0) = %d, want 1", a.Rate())
	}
	a.SetRate(999999)
	if a.Rate() != maxASHRate {
		t.Fatalf("rate after huge SetRate = %d, want %d", a.Rate(), maxASHRate)
	}
	a.SetRate(250)
	if a.Rate() != 250 {
		t.Fatalf("rate = %d", a.Rate())
	}

	if !a.Enabled() {
		t.Fatal("sampler must start enabled (always-on default)")
	}
	a.SetEnabled(false)
	if a.Enabled() {
		t.Fatal("kill switch did not stick")
	}
	a.SetEnabled(true)
	if !a.Enabled() {
		t.Fatal("re-enable did not stick")
	}
}

// TestASHNoSessions: a tick with no registered sessions records nothing (and
// allocates no ring slots).
func TestASHNoSessions(t *testing.T) {
	a := newASHSampler(8)
	sessMu.RLock()
	empty := len(sessions) == 0
	sessMu.RUnlock()
	if !empty {
		t.Skip("other tests hold registered sessions")
	}
	a.sampleOnce(time.Now())
	if a.Len() != 0 {
		t.Fatalf("Len = %d after sampling an empty session set", a.Len())
	}
}
