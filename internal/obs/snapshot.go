package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Snapshot is an exportable point-in-time view of a registry. It marshals
// to JSON (the payload of the wire-protocol Stats reply) and renders as a
// human-readable table.
type Snapshot struct {
	TakenUnix  int64                        `json:"taken_unix_ns"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Spans holds the retained ring-buffer contents oldest-first;
	// SpanTotal counts every span ever finished, including evicted ones.
	Spans     []SpanRecord `json:"spans,omitempty"`
	SpanTotal int64        `json:"span_total"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		TakenUnix:  time.Now().UnixNano(),
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()
	for n, c := range counters {
		s.Counters[n] = c.Load()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Load()
	}
	for n, h := range hists {
		s.Histograms[n] = h.snapshot()
	}
	s.Spans, s.SpanTotal = r.spans.records()
	return s
}

// TakeSnapshot captures the default registry.
func TakeSnapshot() *Snapshot { return defaultRegistry.Snapshot() }

// JSON serializes the snapshot.
func (s *Snapshot) JSON() ([]byte, error) { return json.Marshal(s) }

// ParseSnapshot deserializes a snapshot produced by JSON (e.g. the payload
// of a wire StatsResult message).
func ParseSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("obs: parse snapshot: %w", err)
	}
	return &s, nil
}

// Counter returns a counter's value (0 when absent) — test convenience.
func (s *Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge's value (0 when absent).
func (s *Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Histogram returns a histogram's snapshot (zero value when absent).
func (s *Snapshot) Histogram(name string) HistogramSnapshot { return s.Histograms[name] }

// HistogramSumNS returns a latency histogram's total as a duration.
func (s *Snapshot) HistogramSumNS(name string) time.Duration {
	return time.Duration(s.Histograms[name].Sum)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fmtNS renders nanoseconds compactly for the table output.
func fmtNS(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond / 10).String()
}

// WriteTable renders the snapshot as a human-readable report: counters and
// gauges sorted by name, histograms with count/mean/p50/p95/max, and a
// per-name span summary.
func (s *Snapshot) WriteTable(w io.Writer) {
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "-- counters --")
		for _, n := range sortedKeys(s.Counters) {
			fmt.Fprintf(w, "%-44s %12d\n", n, s.Counters[n])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(w, "-- gauges --")
		for _, n := range sortedKeys(s.Gauges) {
			fmt.Fprintf(w, "%-44s %12d\n", n, s.Gauges[n])
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(w, "-- histograms (ns unless noted) --")
		fmt.Fprintf(w, "%-44s %10s %12s %12s %12s %12s %14s\n",
			"name", "count", "mean", "p50", "p95", "max", "total")
		for _, n := range sortedKeys(s.Histograms) {
			h := s.Histograms[n]
			fmt.Fprintf(w, "%-44s %10d %12s %12s %12s %12s %14s\n",
				n, h.Count, fmtNS(int64(h.Mean())), fmtNS(h.Quantile(0.50)),
				fmtNS(h.Quantile(0.95)), fmtNS(h.Max), fmtNS(h.Sum))
		}
	}
	if s.SpanTotal > 0 {
		type agg struct {
			count int64
			total int64
		}
		byName := map[string]*agg{}
		for _, sp := range s.Spans {
			a := byName[sp.Name]
			if a == nil {
				a = &agg{}
				byName[sp.Name] = a
			}
			a.count++
			a.total += sp.DurationNS
		}
		fmt.Fprintf(w, "-- spans (%d retained of %d total) --\n", len(s.Spans), s.SpanTotal)
		for _, n := range sortedKeys(byName) {
			a := byName[n]
			fmt.Fprintf(w, "%-44s %10d %14s\n", n, a.count, fmtNS(a.total))
		}
	}
}
