package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The Active Session History (ASH): a background goroutine that, at a fixed
// rate, reads every registered session's published state (all atomic loads —
// see SessionState) and appends one sample per session to a bounded ring.
// Sampling is statistical by design: a wait shorter than one sample period
// may be missed, a long wait shows up in proportion to its duration, and
// summing samples per (event, time bucket) reconstructs where wall-clock
// time went without per-event tracing cost on the hot path.

// DefaultASHRate is the sampler frequency in Hz when none is configured.
const DefaultASHRate = 100

// DefaultASHCapacity bounds the sample ring: at the default rate with eight
// live sessions this holds roughly forty seconds of history.
const DefaultASHCapacity = 32768

// maxASHRate clamps SetRate so a typo cannot turn the sampler into a
// busy loop.
const maxASHRate = 10000

var mASHSamples = NewCounter("ash.samples", "Session state samples recorded by the ASH sampler")

// ASHSample is one session's state at one sampler tick.
type ASHSample struct {
	TimeNS      int64  `json:"time_ns"` // wall clock, UnixNano
	Session     int64  `json:"session"`
	Proc        string `json:"proc"`
	Txn         int64  `json:"txn"`
	State       string `json:"state"` // "cpu", "waiting", or "idle"
	Event       string `json:"event,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	TraceID     string `json:"trace_id,omitempty"`
	WaitNS      int64  `json:"wait_ns,omitempty"` // time in the current wait so far
}

// ASHSampler owns the sample ring and the sampling goroutine. It is created
// enabled at the default rate and starts lazily with the first registered
// session; SetEnabled(false) is the kill switch (the goroutine keeps
// ticking but records nothing, so re-enabling needs no restart).
type ASHSampler struct {
	enabled atomic.Bool
	rate    atomic.Int64 // Hz

	mu     sync.Mutex
	ring   []ASHSample
	next   int
	filled bool

	once sync.Once
}

var defaultASH = newASHSampler(DefaultASHCapacity)

// ASH returns the process-wide Active Session History sampler.
func ASH() *ASHSampler { return defaultASH }

func newASHSampler(capacity int) *ASHSampler {
	if capacity <= 0 {
		capacity = DefaultASHCapacity
	}
	a := &ASHSampler{ring: make([]ASHSample, capacity)}
	a.enabled.Store(true)
	a.rate.Store(DefaultASHRate)
	return a
}

// SetEnabled toggles sampling — the kill switch, mirroring
// stmtstats.SetEnabled. Disabled, a tick is one atomic load.
func (a *ASHSampler) SetEnabled(on bool) { a.enabled.Store(on) }

// Enabled reports whether the sampler is recording.
func (a *ASHSampler) Enabled() bool { return a.enabled.Load() }

// SetRate sets the sampling frequency in Hz (clamped to [1, 10000]). The
// new rate takes effect on the next tick.
func (a *ASHSampler) SetRate(hz int) {
	if hz < 1 {
		hz = 1
	}
	if hz > maxASHRate {
		hz = maxASHRate
	}
	a.rate.Store(int64(hz))
}

// Rate returns the sampling frequency in Hz.
func (a *ASHSampler) Rate() int { return int(a.rate.Load()) }

// start launches the sampler goroutine once per process. The goroutine
// never exits: it is one timer per sample period for the process lifetime,
// the always-on contract of the feature.
func (a *ASHSampler) start() {
	a.once.Do(func() { go a.loop() })
}

func (a *ASHSampler) loop() {
	for {
		time.Sleep(time.Second / time.Duration(a.rate.Load()))
		if !a.enabled.Load() {
			continue
		}
		a.sampleOnce(time.Now())
	}
}

// sampleOnce appends one sample per live session to the ring. Split from
// loop so tests can drive the sampler deterministically.
func (a *ASHSampler) sampleOnce(now time.Time) {
	states := liveSessions()
	if len(states) == 0 {
		return
	}
	nowNS := now.UnixNano()
	samples := make([]ASHSample, 0, len(states))
	for _, st := range states {
		s := ASHSample{TimeNS: nowNS, Session: st.id, Proc: st.proc, Txn: st.txn.Load()}
		raw := st.event.Load()
		ev := WaitNone
		if raw > 0 && raw < int32(numWaitEvents) {
			ev = WaitEvent(raw)
		}
		switch {
		case ev == WaitClientRead:
			s.State, s.Event = "idle", ev.Name()
		case ev != WaitNone:
			s.State, s.Event = "waiting", ev.Name()
		case st.active.Load():
			s.State = "cpu"
		default:
			s.State = "idle"
		}
		if ev != WaitNone {
			if begun := st.waitStart.Load(); begun > 0 && begun <= nowNS {
				s.WaitNS = nowNS - begun
			}
		}
		if fp := st.fp.Load(); fp != nil {
			s.Fingerprint = *fp
		}
		if tr := st.trace.Load(); tr != nil {
			s.TraceID = *tr
		}
		samples = append(samples, s)
	}
	a.mu.Lock()
	for _, s := range samples {
		a.ring[a.next] = s
		a.next++
		if a.next == len(a.ring) {
			a.next = 0
			a.filled = true
		}
	}
	a.mu.Unlock()
	mASHSamples.Add(int64(len(samples)))
}

// Samples returns the ring's contents in chronological order (oldest
// first) — the provider behind ldv_stat_ash and the /ash endpoint.
func (a *ASHSampler) Samples() []ASHSample {
	a.mu.Lock()
	var out []ASHSample
	if a.filled {
		out = make([]ASHSample, 0, len(a.ring))
		out = append(out, a.ring[a.next:]...)
		out = append(out, a.ring[:a.next]...)
	} else {
		out = append([]ASHSample(nil), a.ring[:a.next]...)
	}
	a.mu.Unlock()
	// Ring order is already chronological per-tick; a stable sort keeps the
	// contract explicit even if ticks ever interleave with a reset.
	sort.SliceStable(out, func(i, j int) bool { return out[i].TimeNS < out[j].TimeNS })
	return out
}

// Len returns the number of samples currently held.
func (a *ASHSampler) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.filled {
		return len(a.ring)
	}
	return a.next
}

func (a *ASHSampler) reset() {
	a.mu.Lock()
	a.next = 0
	a.filled = false
	a.mu.Unlock()
}

// ResetASH clears the ASH ring (the benchmark harness isolates runs with
// it, alongside Registry.Reset for the metrics).
func ResetASH() { defaultASH.reset() }
