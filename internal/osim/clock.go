// Package osim implements a deterministic simulated operating system: a
// virtual filesystem, processes with fork/exec/open/read/write/close/connect
// syscalls, a shared logical clock, and a Tracer interception hook — the
// ptrace analog used by LDV's monitoring layer.
//
// The paper's prototype observes real processes through the Linux ptrace
// facility (via PTU). LDV itself consumes only the resulting stream of
// timestamped syscall events; this package produces an equivalent stream
// from simulated processes, which keeps experiments deterministic and
// self-contained. Applications are ordinary Go functions registered as
// executable binaries in the virtual filesystem.
package osim

import "sync"

// Clock is the logical timeline shared by the kernel and (when the DB
// server runs inside the simulation) the database engine, so that OS and DB
// provenance events are totally ordered against each other — the property
// the temporal dependency inference in the paper's §VI-C requires.
//
// Clock implements engine.Clock.
type Clock struct {
	mu sync.Mutex
	t  uint64
}

// NewClock returns a clock starting at 0; the first Tick returns 1.
func NewClock() *Clock { return &Clock{} }

// Tick advances the clock and returns the new time.
func (c *Clock) Tick() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t++
	return c.t
}

// Now returns the current time without advancing.
func (c *Clock) Now() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// AdvanceTo moves the clock to at least t (engine.ClockAdvancer). Crash
// recovery uses it so ticks after a restart sort strictly after every
// timestamp the restored state carries.
func (c *Clock) AdvanceTo(t uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.t < t {
		c.t = t
	}
}
