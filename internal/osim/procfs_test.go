package osim

import (
	"testing"
)

func TestProcFSTracedIO(t *testing.T) {
	k := NewKernel()
	rec := &recorder{}
	k.Trace(rec)
	p := k.Start("server")
	pfs := NewProcFS(p)

	if err := pfs.WriteFile("/data/t.tbl", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, err := pfs.ReadFile("/data/t.tbl")
	if err != nil || string(data) != "payload" {
		t.Fatalf("read = %q, %v", data, err)
	}
	// Both the write and the read surfaced as traced open/close pairs.
	var writes, reads int
	for _, e := range rec.events {
		if e.Kind == EvClose && e.Path == "/data/t.tbl" {
			if e.Write {
				writes++
			} else {
				reads++
			}
		}
	}
	if writes != 1 || reads != 1 {
		t.Fatalf("traced writes=%d reads=%d", writes, reads)
	}
	// Untraced metadata surface.
	names, err := pfs.ReadDir("/data")
	if err != nil || len(names) != 1 {
		t.Fatalf("readdir: %v %v", names, err)
	}
	if err := pfs.MkdirAll("/data/sub"); err != nil {
		t.Fatal(err)
	}
	if err := pfs.Symlink("/data/t.tbl", "/data/link"); err != nil {
		t.Fatal(err)
	}
	if pfs.String() == "" {
		t.Fatal("String must identify the view")
	}
}

func TestProcFSWriteFailurePaths(t *testing.T) {
	k := NewKernel()
	p := k.Start("x")
	pfs := NewProcFS(p)
	k.FS().MkdirAll("/dir")
	if err := pfs.WriteFile("/dir", []byte("x")); err == nil {
		t.Fatal("writing over a directory must fail")
	}
	if _, err := pfs.ReadFile("/missing"); err == nil {
		t.Fatal("reading missing file must fail")
	}
	p.Exit()
	if err := pfs.WriteFile("/f", nil); err == nil {
		t.Fatal("dead-process write must fail")
	}
}
