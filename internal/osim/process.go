package osim

import (
	"fmt"
	"net"
	"sync"
)

// Process is one simulated process. Its methods are the syscall surface;
// every call advances the logical clock and is reported to attached tracers,
// exactly the view a ptrace-based monitor gets of a real process.
type Process struct {
	kernel *Kernel
	PID    int
	PPID   int
	Name   string // path of the executed binary

	mu   sync.Mutex
	open map[*File]bool
	dead bool
}

// Kernel returns the machine this process runs on.
func (p *Process) Kernel() *Kernel { return p.kernel }

// File is an open file description.
type File struct {
	proc   *Process
	path   string
	write  bool
	append bool
	offset int
	closed bool
}

// Path returns the file's path.
func (f *File) Path() string { return f.path }

// Open opens a file for reading. The open and eventual close are traced as
// an interaction interval between this process and the file.
func (p *Process) Open(path string) (*File, error) { return p.open3(path, false, false) }

// Create opens a file for writing, truncating any existing content.
func (p *Process) Create(path string) (*File, error) { return p.open3(path, true, false) }

// OpenAppend opens a file for appending.
func (p *Process) OpenAppend(path string) (*File, error) { return p.open3(path, true, true) }

func (p *Process) open3(path string, write, appendMode bool) (*File, error) {
	if err := p.checkAlive(); err != nil {
		return nil, err
	}
	fs := p.kernel.fs
	if !write {
		if !fs.Exists(path) {
			return nil, fmt.Errorf("open %s: no such file", path)
		}
	} else if !appendMode {
		if err := fs.WriteFile(path, nil); err != nil {
			return nil, err
		}
	} else if !fs.Exists(path) {
		if err := fs.WriteFile(path, nil); err != nil {
			return nil, err
		}
	}
	f := &File{proc: p, path: path, write: write, append: appendMode}
	p.mu.Lock()
	p.open[f] = true
	p.mu.Unlock()
	p.kernel.emit(Event{Kind: EvOpen, Time: p.kernel.clock.Tick(), PID: p.PID, Path: path, Write: write})
	return f, nil
}

// Read reads up to len(buf) bytes from the file's current offset.
func (f *File) Read(buf []byte) (int, error) {
	if f.closed {
		return 0, fmt.Errorf("read %s: file closed", f.path)
	}
	data, err := f.proc.kernel.fs.ReadFile(f.path)
	if err != nil {
		return 0, err
	}
	if f.offset >= len(data) {
		return 0, fmt.Errorf("EOF")
	}
	n := copy(buf, data[f.offset:])
	f.offset += n
	return n, nil
}

// ReadAll returns the file's entire remaining contents.
func (f *File) ReadAll() ([]byte, error) {
	if f.closed {
		return nil, fmt.Errorf("read %s: file closed", f.path)
	}
	data, err := f.proc.kernel.fs.ReadFile(f.path)
	if err != nil {
		return nil, err
	}
	out := data[min(f.offset, len(data)):]
	f.offset = len(data)
	return out, nil
}

// Write appends bytes to the file (all simulated writes are sequential).
func (f *File) Write(buf []byte) (int, error) {
	if f.closed {
		return 0, fmt.Errorf("write %s: file closed", f.path)
	}
	if !f.write {
		return 0, fmt.Errorf("write %s: file not open for writing", f.path)
	}
	if err := f.proc.kernel.fs.AppendFile(f.path, buf); err != nil {
		return 0, err
	}
	return len(buf), nil
}

// Close closes the file, emitting the close event that ends the
// process-file interaction interval.
func (f *File) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	p := f.proc
	p.mu.Lock()
	delete(p.open, f)
	p.mu.Unlock()
	p.kernel.emit(Event{Kind: EvClose, Time: p.kernel.clock.Tick(), PID: p.PID, Path: f.path, Write: f.write})
	return nil
}

// ReadFile is the open/read/close convenience used by most programs.
func (p *Process) ReadFile(path string) ([]byte, error) {
	f, err := p.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return f.ReadAll()
}

// WriteFile is the create/write/close convenience.
func (p *Process) WriteFile(path string, data []byte) error {
	f, err := p.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Spawn forks and execs a registered binary as a child process, running it
// to completion before returning (the sequential-composition pattern of the
// paper's example applications). The exec opens the binary and any library
// files it links against, so file-granularity packagers capture them.
func (p *Process) Spawn(binary string, libs ...string) error {
	child, prog, err := p.spawnCommon(binary, libs)
	if err != nil {
		return err
	}
	return child.run(prog)
}

// SpawnAsync starts a child process concurrently (used for server
// processes) and returns a handle to wait for it.
func (p *Process) SpawnAsync(binary string, libs ...string) (*ProcHandle, error) {
	child, prog, err := p.spawnCommon(binary, libs)
	if err != nil {
		return nil, err
	}
	h := &ProcHandle{Proc: child, done: make(chan struct{})}
	go func() {
		h.err = child.run(prog)
		close(h.done)
	}()
	return h, nil
}

func (p *Process) spawnCommon(binary string, libs []string) (*Process, Program, error) {
	if err := p.checkAlive(); err != nil {
		return nil, nil, err
	}
	k := p.kernel
	k.mu.Lock()
	prog, ok := k.programs[binary]
	if ok {
		k.nextPID++
	}
	pid := k.nextPID
	k.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("exec %s: no such binary", binary)
	}
	child := &Process{kernel: k, PID: pid, PPID: p.PID, Name: binary, open: map[*File]bool{}}
	k.emit(Event{Kind: EvSpawn, Time: k.clock.Tick(), PID: child.PID, PPID: p.PID, Path: binary})
	// The loader reads the binary and its libraries.
	for _, dep := range append([]string{binary}, libs...) {
		f, err := child.Open(dep)
		if err != nil {
			return nil, nil, fmt.Errorf("exec %s: %w", binary, err)
		}
		f.Close()
	}
	return child, prog, nil
}

func (p *Process) run(prog Program) error {
	err := prog(p)
	p.exit()
	return err
}

func (p *Process) exit() {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return
	}
	p.dead = true
	stillOpen := make([]*File, 0, len(p.open))
	for f := range p.open {
		stillOpen = append(stillOpen, f)
	}
	p.mu.Unlock()
	for _, f := range stillOpen {
		f.Close()
	}
	p.kernel.emit(Event{Kind: EvExit, Time: p.kernel.clock.Tick(), PID: p.PID})
}

// Exit terminates the process explicitly (normally run/Spawn does this).
func (p *Process) Exit() { p.exit() }

func (p *Process) checkAlive() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return fmt.Errorf("process %d has exited", p.PID)
	}
	return nil
}

// ProcHandle tracks an asynchronously spawned process.
type ProcHandle struct {
	Proc *Process
	done chan struct{}
	err  error
}

// Wait blocks until the process exits and returns its error.
func (h *ProcHandle) Wait() error {
	<-h.done
	return h.err
}

// Connect opens a simulated network connection to a registered service.
// The tracer observes the connect; payload bytes are not traced (DB
// interactions are audited inside the client library, as in the paper).
func (p *Process) Connect(addr string) (net.Conn, error) {
	if err := p.checkAlive(); err != nil {
		return nil, err
	}
	k := p.kernel
	k.mu.Lock()
	ch, ok := k.listeners[addr]
	k.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("connect %s: connection refused", addr)
	}
	client, server := net.Pipe()
	ch <- server
	k.emit(Event{Kind: EvConnect, Time: k.clock.Tick(), PID: p.PID, Path: addr})
	return client, nil
}
