package osim

import (
	"fmt"
	"net"
	"sync"
)

// EventKind classifies intercepted syscall events.
type EventKind int

// The syscall events a tracer can observe — the same set PTU derives from
// ptrace: process creation/exit, file opens/closes (with access mode), and
// connections to network services.
const (
	EvSpawn   EventKind = iota // child process created (fork+exec)
	EvExit                     // process exited
	EvOpen                     // file opened
	EvClose                    // file closed
	EvConnect                  // connected to a network address
)

func (k EventKind) String() string {
	switch k {
	case EvSpawn:
		return "spawn"
	case EvExit:
		return "exit"
	case EvOpen:
		return "open"
	case EvClose:
		return "close"
	case EvConnect:
		return "connect"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one intercepted syscall.
type Event struct {
	Kind  EventKind
	Time  uint64
	PID   int
	PPID  int    // parent pid, set on EvSpawn
	Path  string // file path (open/close), binary path (spawn), address (connect)
	Write bool   // open-for-write (open/close)
}

// Tracer receives intercepted syscall events — the ptrace attachment point.
// Callbacks run synchronously inside the syscall.
type Tracer interface {
	OnEvent(Event)
}

// Program is the body of a simulated executable. It runs with the identity
// of its Process and may only touch the world through the process's
// syscall-like methods (enforced by convention, as for real binaries).
type Program func(p *Process) error

// Kernel owns the simulated machine: filesystem, clock, process table,
// registered binaries, network services, and attached tracers.
type Kernel struct {
	fs    *FS
	clock *Clock

	mu        sync.Mutex
	nextPID   int
	programs  map[string]Program
	listeners map[string]chan net.Conn
	tracers   []Tracer
}

// NewKernel boots a simulated machine with an empty filesystem.
func NewKernel() *Kernel {
	return &Kernel{
		fs:        NewFS(),
		clock:     NewClock(),
		programs:  make(map[string]Program),
		listeners: make(map[string]chan net.Conn),
	}
}

// FS returns the machine's filesystem.
func (k *Kernel) FS() *FS { return k.fs }

// Clock returns the machine's logical clock.
func (k *Kernel) Clock() *Clock { return k.clock }

// Trace attaches a tracer; pass nil to do nothing. Detach removes it.
func (k *Kernel) Trace(t Tracer) {
	if t == nil {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.tracers = append(k.tracers, t)
}

// Detach removes a previously attached tracer.
func (k *Kernel) Detach(t Tracer) {
	k.mu.Lock()
	defer k.mu.Unlock()
	for i, x := range k.tracers {
		if x == t {
			k.tracers = append(k.tracers[:i], k.tracers[i+1:]...)
			return
		}
	}
}

func (k *Kernel) emit(ev Event) {
	k.mu.Lock()
	ts := append([]Tracer(nil), k.tracers...)
	k.mu.Unlock()
	for _, t := range ts {
		t.OnEvent(ev)
	}
}

// InstallBinary writes an executable file of the given size at path and
// registers prog as its behaviour. Library dependencies are separate files
// installed with InstallLibrary and named at spawn time.
func (k *Kernel) InstallBinary(path string, size int, prog Program) error {
	if err := k.fs.WriteFile(path, fakeELF(path, size)); err != nil {
		return err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.programs[path] = prog
	return nil
}

// RegisterProgram associates a program body with a binary path without
// writing the file — used when the binary's bytes already exist (e.g. they
// were extracted from a package).
func (k *Kernel) RegisterProgram(path string, prog Program) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.programs[path] = prog
}

// InstallLibrary writes a shared-library file of the given size.
func (k *Kernel) InstallLibrary(path string, size int) error {
	return k.fs.WriteFile(path, fakeELF(path, size))
}

// fakeELF builds deterministic placeholder binary content of roughly the
// requested size so package-size accounting is meaningful.
func fakeELF(name string, size int) []byte {
	if size < 16 {
		size = 16
	}
	buf := make([]byte, size)
	copy(buf, "\x7fELF(sim)")
	seed := uint64(14695981039346656037)
	for _, c := range name {
		seed = (seed ^ uint64(c)) * 1099511628211
	}
	for i := 9; i < size; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		buf[i] = byte(seed >> 33)
	}
	return buf
}

// Start creates and starts the init-like root process for a program that is
// not itself a registered binary (e.g. a test harness driving the machine).
// The returned process has no parent.
func (k *Kernel) Start(name string) *Process {
	k.mu.Lock()
	k.nextPID++
	pid := k.nextPID
	k.mu.Unlock()
	return &Process{kernel: k, PID: pid, Name: name, open: map[*File]bool{}}
}

// Listen registers a network service at addr and returns its listener.
// Connections made with Process.Connect are delivered to Accept.
func (k *Kernel) Listen(addr string) (*Listener, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, busy := k.listeners[addr]; busy {
		return nil, fmt.Errorf("listen %s: address in use", addr)
	}
	ch := make(chan net.Conn, 16)
	k.listeners[addr] = ch
	return &Listener{kernel: k, addr: addr, ch: ch}, nil
}

// Listener accepts simulated connections for one address.
type Listener struct {
	kernel *Kernel
	addr   string
	ch     chan net.Conn
	once   sync.Once
}

// Accept blocks until a client connects or the listener is closed.
func (l *Listener) Accept() (net.Conn, error) {
	c, ok := <-l.ch
	if !ok {
		return nil, fmt.Errorf("accept %s: listener closed", l.addr)
	}
	return c, nil
}

// Close unregisters the service and unblocks Accept.
func (l *Listener) Close() error {
	l.once.Do(func() {
		l.kernel.mu.Lock()
		delete(l.kernel.listeners, l.addr)
		l.kernel.mu.Unlock()
		close(l.ch)
	})
	return nil
}

// Addr returns the listen address.
func (l *Listener) Addr() string { return l.addr }
