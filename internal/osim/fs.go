package osim

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// FS is the simulated filesystem: a tree of directories, regular files, and
// symbolic links addressed by slash-separated absolute paths. It satisfies
// engine.FileSystem so the database server can keep its data directory
// inside the simulation, where file-granularity packagers can see it.
type FS struct {
	mu    sync.Mutex
	nodes map[string]*fsNode
}

type fsNode struct {
	dir     bool
	symlink string // non-empty for symlinks; target path
	data    []byte
}

// NewFS returns a filesystem containing only the root directory.
func NewFS() *FS {
	return &FS{nodes: map[string]*fsNode{"/": {dir: true}}}
}

// clean normalizes p to an absolute slash path.
func clean(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

// resolve follows symlinks (bounded to avoid cycles) and returns the final
// path. The final component may be nonexistent.
func (f *FS) resolve(p string) (string, error) {
	p = clean(p)
	for i := 0; i < 40; i++ {
		n, ok := f.nodes[p]
		if !ok || n.symlink == "" {
			return p, nil
		}
		target := n.symlink
		if !strings.HasPrefix(target, "/") {
			target = path.Join(path.Dir(p), target)
		}
		p = clean(target)
	}
	return "", fmt.Errorf("too many levels of symbolic links: %s", p)
}

// MkdirAll creates a directory and all missing parents.
func (f *FS) MkdirAll(p string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mkdirAllLocked(clean(p))
}

func (f *FS) mkdirAllLocked(p string) error {
	if n, ok := f.nodes[p]; ok {
		if n.dir {
			return nil
		}
		return fmt.Errorf("mkdir %s: not a directory", p)
	}
	if p != "/" {
		if err := f.mkdirAllLocked(path.Dir(p)); err != nil {
			return err
		}
	}
	f.nodes[p] = &fsNode{dir: true}
	return nil
}

// WriteFile creates or replaces a regular file, creating parent directories
// as needed (a convenience over the real syscall surface; the simulation
// does not model permission failures).
func (f *FS) WriteFile(p string, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	rp, err := f.resolve(p)
	if err != nil {
		return err
	}
	if n, ok := f.nodes[rp]; ok && n.dir {
		return fmt.Errorf("write %s: is a directory", p)
	}
	if err := f.mkdirAllLocked(path.Dir(rp)); err != nil {
		return err
	}
	f.nodes[rp] = &fsNode{data: append([]byte(nil), data...)}
	return nil
}

// AppendFile appends to a file, creating it if absent.
func (f *FS) AppendFile(p string, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	rp, err := f.resolve(p)
	if err != nil {
		return err
	}
	n, ok := f.nodes[rp]
	if !ok {
		if err := f.mkdirAllLocked(path.Dir(rp)); err != nil {
			return err
		}
		n = &fsNode{}
		f.nodes[rp] = n
	}
	if n.dir {
		return fmt.Errorf("append %s: is a directory", p)
	}
	n.data = append(n.data, data...)
	return nil
}

// ReadFile returns a copy of a file's contents.
func (f *FS) ReadFile(p string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rp, err := f.resolve(p)
	if err != nil {
		return nil, err
	}
	n, ok := f.nodes[rp]
	if !ok {
		return nil, fmt.Errorf("open %s: no such file", p)
	}
	if n.dir {
		return nil, fmt.Errorf("read %s: is a directory", p)
	}
	return append([]byte(nil), n.data...), nil
}

// Symlink creates a symbolic link at linkPath pointing to target.
func (f *FS) Symlink(target, linkPath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	lp := clean(linkPath)
	if _, exists := f.nodes[lp]; exists {
		return fmt.Errorf("symlink %s: file exists", linkPath)
	}
	if err := f.mkdirAllLocked(path.Dir(lp)); err != nil {
		return err
	}
	f.nodes[lp] = &fsNode{symlink: target}
	return nil
}

// Remove deletes a file or empty directory.
func (f *FS) Remove(p string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	cp := clean(p)
	n, ok := f.nodes[cp]
	if !ok {
		return fmt.Errorf("remove %s: no such file", p)
	}
	if n.dir {
		for other := range f.nodes {
			if other != cp && strings.HasPrefix(other, cp+"/") {
				return fmt.Errorf("remove %s: directory not empty", p)
			}
		}
	}
	delete(f.nodes, cp)
	return nil
}

// FileInfo describes one filesystem entry for Walk and Stat.
type FileInfo struct {
	Path    string
	Dir     bool
	Symlink string // target if symlink
	Size    int64
}

// Stat reports on the entry at p without following a final symlink.
func (f *FS) Stat(p string) (FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cp := clean(p)
	n, ok := f.nodes[cp]
	if !ok {
		return FileInfo{}, fmt.Errorf("stat %s: no such file", p)
	}
	return FileInfo{Path: cp, Dir: n.dir, Symlink: n.symlink, Size: int64(len(n.data))}, nil
}

// Exists reports whether a path exists (following symlinks).
func (f *FS) Exists(p string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	rp, err := f.resolve(p)
	if err != nil {
		return false
	}
	_, ok := f.nodes[rp]
	return ok
}

// ReadDir lists the base names of entries directly under dir, sorted.
func (f *FS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rd, err := f.resolve(dir)
	if err != nil {
		return nil, err
	}
	n, ok := f.nodes[rd]
	if !ok {
		return nil, fmt.Errorf("readdir %s: no such directory", dir)
	}
	if !n.dir {
		return nil, fmt.Errorf("readdir %s: not a directory", dir)
	}
	var names []string
	prefix := rd + "/"
	if rd == "/" {
		prefix = "/"
	}
	for p := range f.nodes {
		if p == rd || !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := p[len(prefix):]
		if !strings.Contains(rest, "/") {
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Walk visits every entry under root in sorted path order.
func (f *FS) Walk(root string, fn func(FileInfo) error) error {
	f.mu.Lock()
	cr := clean(root)
	var infos []FileInfo
	for p, n := range f.nodes {
		if p == cr || strings.HasPrefix(p, strings.TrimSuffix(cr, "/")+"/") {
			infos = append(infos, FileInfo{Path: p, Dir: n.dir, Symlink: n.symlink, Size: int64(len(n.data))})
		}
	}
	f.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Path < infos[j].Path })
	for _, in := range infos {
		if err := fn(in); err != nil {
			return err
		}
	}
	return nil
}

// TotalSize sums the sizes of all regular files under root.
func (f *FS) TotalSize(root string) int64 {
	var total int64
	_ = f.Walk(root, func(in FileInfo) error {
		if !in.Dir && in.Symlink == "" {
			total += in.Size
		}
		return nil
	})
	return total
}
