package osim

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestClockMonotonic(t *testing.T) {
	c := NewClock()
	prev := c.Now()
	for i := 0; i < 100; i++ {
		n := c.Tick()
		if n <= prev {
			t.Fatalf("tick %d not monotonic", n)
		}
		prev = n
	}
}

func TestFSWriteReadRoundTrip(t *testing.T) {
	fs := NewFS()
	if err := fs.WriteFile("/a/b/c.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/a/b/c.txt")
	if err != nil || string(data) != "hello" {
		t.Fatalf("read = %q, %v", data, err)
	}
	// Parents were auto-created as directories.
	info, err := fs.Stat("/a/b")
	if err != nil || !info.Dir {
		t.Fatalf("stat /a/b: %+v, %v", info, err)
	}
}

func TestFSErrors(t *testing.T) {
	fs := NewFS()
	if _, err := fs.ReadFile("/missing"); err == nil {
		t.Error("reading missing file must fail")
	}
	fs.MkdirAll("/dir")
	if _, err := fs.ReadFile("/dir"); err == nil {
		t.Error("reading a directory must fail")
	}
	if err := fs.WriteFile("/dir", []byte("x")); err == nil {
		t.Error("writing over a directory must fail")
	}
	fs.WriteFile("/f", []byte("x"))
	if err := fs.MkdirAll("/f"); err == nil {
		t.Error("mkdir over a file must fail")
	}
	if _, err := fs.ReadDir("/missing"); err == nil {
		t.Error("readdir of missing dir must fail")
	}
	if _, err := fs.ReadDir("/f"); err == nil {
		t.Error("readdir of a file must fail")
	}
	if err := fs.Remove("/missing"); err == nil {
		t.Error("removing missing file must fail")
	}
}

func TestFSSymlink(t *testing.T) {
	fs := NewFS()
	fs.WriteFile("/real/file.txt", []byte("data"))
	if err := fs.Symlink("/real/file.txt", "/link"); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/link")
	if err != nil || string(data) != "data" {
		t.Fatalf("via symlink: %q, %v", data, err)
	}
	// Relative symlink.
	if err := fs.Symlink("file.txt", "/real/rel"); err != nil {
		t.Fatal(err)
	}
	if data, _ := fs.ReadFile("/real/rel"); string(data) != "data" {
		t.Error("relative symlink failed")
	}
	// Cycle detection.
	fs.Symlink("/c2", "/c1")
	fs.Symlink("/c1", "/c2")
	if _, err := fs.ReadFile("/c1"); err == nil {
		t.Error("symlink cycle must fail")
	}
	// Duplicate symlink.
	if err := fs.Symlink("/x", "/link"); err == nil {
		t.Error("symlink over existing path must fail")
	}
}

func TestFSReadDirAndWalk(t *testing.T) {
	fs := NewFS()
	fs.WriteFile("/data/a.tbl", []byte("aaa"))
	fs.WriteFile("/data/b.tbl", []byte("bb"))
	fs.WriteFile("/data/sub/c.tbl", []byte("c"))
	names, err := fs.ReadDir("/data")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(names, ",") != "a.tbl,b.tbl,sub" {
		t.Fatalf("readdir = %v", names)
	}
	var visited []string
	fs.Walk("/data", func(in FileInfo) error {
		visited = append(visited, in.Path)
		return nil
	})
	if len(visited) != 4 { // /data, a, b, sub + c? sub and c = 5? count: /data,/data/a.tbl,/data/b.tbl,/data/sub,/data/sub/c.tbl = 5
		if len(visited) != 5 {
			t.Fatalf("walk visited %v", visited)
		}
	}
	if got := fs.TotalSize("/data"); got != 6 {
		t.Fatalf("total size = %d", got)
	}
}

func TestFSRemove(t *testing.T) {
	fs := NewFS()
	fs.WriteFile("/d/f", []byte("x"))
	if err := fs.Remove("/d"); err == nil {
		t.Error("removing non-empty dir must fail")
	}
	if err := fs.Remove("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); err != nil {
		t.Fatal(err)
	}
}

// recorder collects events for assertions.
type recorder struct {
	mu     sync.Mutex
	events []Event
}

func (r *recorder) OnEvent(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

func (r *recorder) kinds() []EventKind {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EventKind, len(r.events))
	for i, e := range r.events {
		out[i] = e.Kind
	}
	return out
}

func TestProcessFileSyscallsTraced(t *testing.T) {
	k := NewKernel()
	rec := &recorder{}
	k.Trace(rec)
	k.FS().WriteFile("/in.txt", []byte("input"))

	root := k.Start("harness")
	f, err := root.Open("/in.txt")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := f.ReadAll()
	f.Close()
	if string(data) != "input" {
		t.Fatalf("read = %q", data)
	}
	if err := root.WriteFile("/out.txt", []byte("output")); err != nil {
		t.Fatal(err)
	}
	kinds := rec.kinds()
	want := []EventKind{EvOpen, EvClose, EvOpen, EvClose}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	// Times must be strictly increasing.
	for i := 1; i < len(rec.events); i++ {
		if rec.events[i].Time <= rec.events[i-1].Time {
			t.Fatal("event times not increasing")
		}
	}
	// The write open must be flagged.
	if rec.events[2].Write != true || rec.events[0].Write != false {
		t.Error("write flags wrong")
	}
}

func TestSpawnRunsProgramAndTracesBinary(t *testing.T) {
	k := NewKernel()
	rec := &recorder{}
	k.Trace(rec)
	k.InstallLibrary("/lib/libc.so", 1000)
	ran := false
	k.InstallBinary("/bin/app", 5000, func(p *Process) error {
		ran = true
		return p.WriteFile("/tmp/out", []byte("done"))
	})
	root := k.Start("harness")
	if err := root.Spawn("/bin/app", "/lib/libc.so"); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("program did not run")
	}
	// Event stream must include: spawn, open+close of binary and lib, the
	// program's own open/close, and exit.
	var sawSpawn, sawBinOpen, sawLibOpen, sawExit bool
	for _, e := range rec.events {
		switch {
		case e.Kind == EvSpawn && e.Path == "/bin/app":
			sawSpawn = true
		case e.Kind == EvOpen && e.Path == "/bin/app":
			sawBinOpen = true
		case e.Kind == EvOpen && e.Path == "/lib/libc.so":
			sawLibOpen = true
		case e.Kind == EvExit:
			sawExit = true
		}
	}
	if !sawSpawn || !sawBinOpen || !sawLibOpen || !sawExit {
		t.Fatalf("missing events: spawn=%v bin=%v lib=%v exit=%v", sawSpawn, sawBinOpen, sawLibOpen, sawExit)
	}
}

func TestSpawnMissingBinary(t *testing.T) {
	k := NewKernel()
	root := k.Start("h")
	if err := root.Spawn("/bin/missing"); err == nil {
		t.Fatal("spawning missing binary must fail")
	}
}

func TestNestedSpawnParentChain(t *testing.T) {
	k := NewKernel()
	rec := &recorder{}
	k.Trace(rec)
	k.InstallBinary("/bin/child", 100, func(p *Process) error { return nil })
	k.InstallBinary("/bin/parent", 100, func(p *Process) error {
		return p.Spawn("/bin/child")
	})
	root := k.Start("h")
	if err := root.Spawn("/bin/parent"); err != nil {
		t.Fatal(err)
	}
	// Find the two spawn events and verify the parent chain.
	var spawns []Event
	for _, e := range rec.events {
		if e.Kind == EvSpawn {
			spawns = append(spawns, e)
		}
	}
	if len(spawns) != 2 {
		t.Fatalf("spawns = %d", len(spawns))
	}
	if spawns[1].PPID != spawns[0].PID {
		t.Fatal("child's parent must be the first spawned process")
	}
}

func TestExitClosesOpenFiles(t *testing.T) {
	k := NewKernel()
	rec := &recorder{}
	k.Trace(rec)
	k.InstallBinary("/bin/leaky", 100, func(p *Process) error {
		_, err := p.Create("/leak.txt")
		return err // never closed explicitly
	})
	root := k.Start("h")
	if err := root.Spawn("/bin/leaky"); err != nil {
		t.Fatal(err)
	}
	closeSeen := false
	for _, e := range rec.events {
		if e.Kind == EvClose && e.Path == "/leak.txt" {
			closeSeen = true
		}
	}
	if !closeSeen {
		t.Fatal("exit must close leaked files")
	}
}

func TestDeadProcessRejectsSyscalls(t *testing.T) {
	k := NewKernel()
	root := k.Start("h")
	root.Exit()
	if _, err := root.Open("/x"); err == nil {
		t.Error("dead process open must fail")
	}
	if err := root.Spawn("/bin/x"); err == nil {
		t.Error("dead process spawn must fail")
	}
	if _, err := root.Connect("db"); err == nil {
		t.Error("dead process connect must fail")
	}
}

func TestConnectAndListen(t *testing.T) {
	k := NewKernel()
	rec := &recorder{}
	k.Trace(rec)
	l, err := k.Listen("db:5432")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Listen("db:5432"); err == nil {
		t.Fatal("double listen must fail")
	}
	serverDone := make(chan string, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			serverDone <- err.Error()
			return
		}
		buf := make([]byte, 5)
		conn.Read(buf)
		conn.Write([]byte("world"))
		conn.Close()
		serverDone <- string(buf)
	}()

	root := k.Start("h")
	conn, err := root.Connect("db:5432")
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("hello"))
	reply := make([]byte, 5)
	conn.Read(reply)
	conn.Close()
	if got := <-serverDone; got != "hello" {
		t.Fatalf("server got %q", got)
	}
	if string(reply) != "world" {
		t.Fatalf("client got %q", reply)
	}
	sawConnect := false
	for _, e := range rec.kinds() {
		if e == EvConnect {
			sawConnect = true
		}
	}
	if !sawConnect {
		t.Fatal("connect event not traced")
	}
	l.Close()
	if _, err := root.Connect("db:5432"); err == nil {
		t.Fatal("connect after close must be refused")
	}
	if _, err := l.Accept(); err == nil {
		t.Fatal("accept after close must fail")
	}
}

func TestConnectRefusedWithoutListener(t *testing.T) {
	k := NewKernel()
	root := k.Start("h")
	if _, err := root.Connect("nowhere"); err == nil {
		t.Fatal("connect without listener must be refused")
	}
}

func TestFileReadWriteSemantics(t *testing.T) {
	k := NewKernel()
	root := k.Start("h")
	f, err := root.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("abc"))
	f.Write([]byte("def"))
	f.Close()
	if _, err := f.Write([]byte("x")); err == nil {
		t.Error("write after close must fail")
	}
	if _, err := f.Read(make([]byte, 1)); err == nil {
		t.Error("read after close must fail")
	}

	rf, _ := root.Open("/f")
	buf := make([]byte, 4)
	n, _ := rf.Read(buf)
	if n != 4 || string(buf) != "abcd" {
		t.Fatalf("read = %q", buf[:n])
	}
	rest, _ := rf.ReadAll()
	if string(rest) != "ef" {
		t.Fatalf("rest = %q", rest)
	}
	if _, err := rf.Read(buf); err == nil {
		t.Error("read past EOF must fail")
	}
	if _, err := rf.Write([]byte("x")); err == nil {
		t.Error("write to read-only file must fail")
	}
	rf.Close()

	// Create truncates.
	f2, _ := root.Create("/f")
	f2.Write([]byte("new"))
	f2.Close()
	data, _ := k.FS().ReadFile("/f")
	if string(data) != "new" {
		t.Fatalf("truncate failed: %q", data)
	}

	// Append keeps existing.
	f3, _ := root.OpenAppend("/f")
	f3.Write([]byte("+more"))
	f3.Close()
	data, _ = k.FS().ReadFile("/f")
	if string(data) != "new+more" {
		t.Fatalf("append failed: %q", data)
	}
	// OpenAppend creates missing files.
	f4, err := root.OpenAppend("/fresh")
	if err != nil {
		t.Fatal(err)
	}
	f4.Close()
}

func TestOpenMissingFileFails(t *testing.T) {
	k := NewKernel()
	root := k.Start("h")
	if _, err := root.Open("/missing"); err == nil {
		t.Fatal("open missing must fail")
	}
}

func TestDetachTracer(t *testing.T) {
	k := NewKernel()
	rec := &recorder{}
	k.Trace(rec)
	k.Trace(nil) // no-op
	root := k.Start("h")
	root.WriteFile("/a", nil)
	n := len(rec.kinds())
	k.Detach(rec)
	root.WriteFile("/b", nil)
	if len(rec.kinds()) != n {
		t.Fatal("detached tracer still receiving events")
	}
}

func TestFakeELFDeterministic(t *testing.T) {
	a := fakeELF("/bin/x", 100)
	b := fakeELF("/bin/x", 100)
	c := fakeELF("/bin/y", 100)
	if !bytes.Equal(a, b) {
		t.Error("fakeELF must be deterministic")
	}
	if bytes.Equal(a, c) {
		t.Error("different names should differ")
	}
	if len(fakeELF("/b", 1)) != 16 {
		t.Error("minimum size not enforced")
	}
}

func TestQuickFSPathNormalization(t *testing.T) {
	fs := NewFS()
	f := func(segs []uint8) bool {
		if len(segs) == 0 {
			segs = []uint8{0}
		}
		if len(segs) > 4 {
			segs = segs[:4]
		}
		parts := make([]string, len(segs))
		for i, s := range segs {
			parts[i] = fmt.Sprintf("d%d", s%8)
		}
		p := "/" + strings.Join(parts, "/")
		if err := fs.WriteFile(p, []byte("x")); err != nil {
			// May conflict with an earlier directory; that's legitimate.
			return true
		}
		// Reading with redundant slashes and dots must hit the same file.
		messy := "/" + strings.Join(parts, "//./")
		data, err := fs.ReadFile(messy)
		return err == nil && string(data) == "x"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
