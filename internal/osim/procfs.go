package osim

import "fmt"

// ProcFS adapts a Process to the engine.FileSystem interface so that a
// program (notably the DB server persisting its data directory) performs
// its file I/O through traced syscalls. A ptrace-style monitor therefore
// observes the server's data files exactly as PTU would on a real system —
// which is how whole-DB packagers come to include them.
type ProcFS struct {
	p *Process
}

// NewProcFS returns a filesystem view bound to p.
func NewProcFS(p *Process) *ProcFS { return &ProcFS{p: p} }

// WriteFile creates or replaces a file via traced open/write/close.
func (f *ProcFS) WriteFile(path string, data []byte) error {
	file, err := f.p.Create(path)
	if err != nil {
		return err
	}
	if _, err := file.Write(data); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// ReadFile reads a whole file via traced open/read/close.
func (f *ProcFS) ReadFile(path string) ([]byte, error) {
	file, err := f.p.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return file.ReadAll()
}

// ReadDir lists a directory (metadata access; not traced, like getdents
// under PTU's file-level monitoring).
func (f *ProcFS) ReadDir(path string) ([]string, error) {
	return f.p.kernel.fs.ReadDir(path)
}

// MkdirAll creates directories (not traced; PTU tracks files).
func (f *ProcFS) MkdirAll(path string) error { return f.p.kernel.fs.MkdirAll(path) }

// Symlink creates a symbolic link.
func (f *ProcFS) Symlink(target, linkPath string) error {
	return f.p.kernel.fs.Symlink(target, linkPath)
}

var _ interface {
	WriteFile(string, []byte) error
	ReadFile(string) ([]byte, error)
	ReadDir(string) ([]string, error)
	MkdirAll(string) error
} = (*ProcFS)(nil)

// String identifies the view for diagnostics.
func (f *ProcFS) String() string { return fmt.Sprintf("procfs(pid=%d)", f.p.PID) }
