package wire

import (
	"bytes"
	"reflect"
	"testing"

	"ldv/internal/obs"
)

func testSpanContext() obs.SpanContext {
	var tr obs.TraceID
	for i := range tr {
		tr[i] = byte(i + 1)
	}
	return obs.SpanContext{Trace: tr, Span: 0x1122334455667788}
}

func TestTraceContextRoundTrip(t *testing.T) {
	sc := testSpanContext()
	for _, m := range []Message{
		Query{SQL: "SELECT 1", Trace: sc},
		Query{SQL: "SELECT 1", WithLineage: true, Trace: sc},
		TraceContext{Context: sc},
		TraceContext{}, // zero context clears the session default
		Startup{Proc: "p1", Database: "tpch", Options: []string{"trace"}},
		Startup{Proc: "p1", Database: "tpch", Options: []string{"trace", "x=1"}},
		Stats{Kind: StatsKindTraces},
		Stats{Kind: StatsKindMetrics},
	} {
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("Write(%#v): %v", m, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read(%#v): %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip: got %#v, want %#v", got, m)
		}
	}
}

// TestTraceFieldsBackwardCompatible pins the old-peer story: frames without
// the trailing trace fields decode to zero values, and frames WITH them are
// byte-identical to old frames when the new fields are zero/empty.
func TestTraceFieldsBackwardCompatible(t *testing.T) {
	// An old peer's Query frame (no trailing trace context).
	old := encodePayload(Query{SQL: "SELECT 1"})
	m, err := decodePayload(TagQuery, old)
	if err != nil {
		t.Fatal(err)
	}
	if q := m.(Query); !q.Trace.IsZero() {
		t.Fatalf("legacy Query decoded with trace %v", q.Trace)
	}
	// A new peer sending a zero trace emits the legacy frame byte-for-byte.
	if got := encodePayload(Query{SQL: "SELECT 1", Trace: obs.SpanContext{}}); !bytes.Equal(got, old) {
		t.Fatalf("zero-trace Query frame differs from legacy: %x vs %x", got, old)
	}
	// Same for Startup without options and Stats kind metrics.
	oldStartup := encodePayload(Startup{Proc: "p", Database: "db"})
	if got := encodePayload(Startup{Proc: "p", Database: "db", Options: nil}); !bytes.Equal(got, oldStartup) {
		t.Fatal("optionless Startup frame differs from legacy")
	}
	if got := encodePayload(Stats{Kind: StatsKindMetrics}); len(got) != 0 {
		t.Fatalf("metrics Stats frame not empty: %x", got)
	}
}

func TestTraceContextDecodeErrors(t *testing.T) {
	// A trailing trace context must be exactly 24 bytes: a partial one is a
	// decode error, not a silently ignored suffix.
	b := encodePayload(Query{SQL: "SELECT 1"})
	b = append(b, 1, 2, 3)
	if _, err := decodePayload(TagQuery, b); err == nil {
		t.Fatal("partial trace context must fail")
	}
	// Oversized trailing data fails the no-trailing-bytes check.
	b = encodePayload(Query{SQL: "SELECT 1", Trace: testSpanContext()})
	b = append(b, 0xEE)
	if _, err := decodePayload(TagQuery, b); err == nil {
		t.Fatal("trailing junk after trace context must fail")
	}
	// TraceContext with a short payload fails.
	if _, err := decodePayload(TagTraceContext, []byte{1, 2}); err == nil {
		t.Fatal("short TraceContext must fail")
	}
}

// FuzzTraceContext round-trips arbitrary span contexts and query frames
// carrying them.
func FuzzTraceContext(f *testing.F) {
	sc := testSpanContext()
	f.Add(sc.Trace[:], sc.Span, "SELECT 1", true)
	f.Add(make([]byte, 16), uint64(0), "", false)
	f.Fuzz(func(t *testing.T, trace []byte, span uint64, sql string, lineage bool) {
		var sc obs.SpanContext
		copy(sc.Trace[:], trace)
		sc.Span = span
		q := Query{SQL: sql, WithLineage: lineage, Trace: sc}
		var buf bytes.Buffer
		if err := Write(&buf, q); err != nil {
			t.Fatalf("Write: %v", err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		g := got.(Query)
		// A zero-span-ID context with a non-zero trace still round-trips; a
		// zero trace ID encodes as absent and decodes to the zero context.
		want := q
		if sc.IsZero() {
			want.Trace = obs.SpanContext{}
		}
		if !reflect.DeepEqual(g, want) {
			t.Fatalf("round trip: got %#v, want %#v", g, want)
		}
	})
}
