package wire

import (
	"bufio"
	"net"
)

// BufferedConn wraps a net.Conn so reads go through a bufio.Reader while
// writes pass straight through. Read and Write never share state, so one
// goroutine may write while another reads — the pattern the client's
// pipeline flush uses.
//
// Frame decoding reads a 5-byte header and then the payload; unbuffered,
// that is two transport reads per frame, and on rendezvous transports like
// net.Pipe every read is a scheduler round trip. Buffering collapses all
// frames delivered by one peer write into a single transport read.
type BufferedConn struct {
	net.Conn
	r *bufio.Reader
}

// NewBufferedConn wraps nc with a read buffer.
func NewBufferedConn(nc net.Conn) *BufferedConn {
	return &BufferedConn{Conn: nc, r: bufio.NewReaderSize(nc, 64<<10)}
}

// Read reads from the buffer, filling it from the connection when empty.
func (c *BufferedConn) Read(p []byte) (int, error) { return c.r.Read(p) }

// Buffered returns how many bytes are already read but not yet consumed —
// zero means the next Read will block on the transport. Servers use this to
// flush pending responses exactly when the request stream drains, which is
// what batches a pipelined burst's responses into one write.
func (c *BufferedConn) Buffered() int { return c.r.Buffered() }
