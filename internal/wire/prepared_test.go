package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"ldv/internal/sqlval"
)

// TestPreparedEncodingsPinned pins the v2 frame payloads byte-for-byte so an
// encoder change cannot silently break deployed peers. v2 messages have no
// legacy form: every field is always present, in declaration order.
func TestPreparedEncodingsPinned(t *testing.T) {
	zeroTrace := make([]byte, spanContextSize)
	cases := []struct {
		m    Message
		want []byte
	}{
		{Parse{Name: "s1", SQL: "SELECT 1"},
			[]byte("\x02s1\x08SELECT 1")},
		{ParseComplete{Name: "s1", NumParams: 2, Fingerprint: "ab"},
			[]byte("\x02s1\x02\x02ab")},
		{CloseStmt{Name: "s1"},
			[]byte("\x02s1")},
		// Execute always carries the 24-byte trace context and the
		// MinApplied uvarint, zero or not.
		{Execute{Stmt: "s1", Tag: 7},
			append([]byte("\x02s1\x07\x00"), append(zeroTrace, 0)...)},
		{Execute{Stmt: "s1", Tag: 1, WithLineage: true, MinApplied: 3},
			append([]byte("\x02s1\x01\x01"), append(zeroTrace, 3)...)},
	}
	for _, c := range cases {
		if got := encodePayload(c.m); !bytes.Equal(got, c.want) {
			t.Errorf("encodePayload(%#v) = %x, want %x", c.m, got, c.want)
		}
	}
}

// TestCommandCompleteTagCompatible pins the CommandComplete trailing-field
// chain: a zero Tag emits the pre-v2 frame byte-for-byte, and a non-zero Tag
// force-encodes the fingerprint and commit sequence so the decoder can tell
// the three trailing fields apart by position.
func TestCommandCompleteTagCompatible(t *testing.T) {
	// Hand-built legacy frame: counts, refs, then CommitSeq + Fingerprint.
	legacy := binary.AppendVarint(nil, 1)     // RowsAffected
	legacy = binary.AppendVarint(legacy, 2)   // StmtID
	legacy = binary.AppendUvarint(legacy, 10) // Start
	legacy = binary.AppendUvarint(legacy, 20) // End
	legacy = binary.AppendUvarint(legacy, 0)  // ReadRefs
	legacy = binary.AppendUvarint(legacy, 0)  // WrittenRefs
	legacy = binary.AppendUvarint(legacy, 17) // CommitSeq
	legacy = appendString(legacy, "fp")       // Fingerprint

	m := CommandComplete{RowsAffected: 1, StmtID: 2, Start: 10, End: 20, CommitSeq: 17, Fingerprint: "fp"}
	if got := encodePayload(m); !bytes.Equal(got, legacy) {
		t.Fatalf("zero-Tag CommandComplete differs from legacy: %x vs %x", got, legacy)
	}
	// A legacy frame decodes with Tag zero.
	dec, err := decodePayload(TagCommandComplete, legacy)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.(CommandComplete); got.Tag != 0 || !reflect.DeepEqual(got, m) {
		t.Fatalf("legacy decode: got %#v, want %#v", got, m)
	}
	// Tag forces the two earlier trailing fields even when zero/empty.
	withTag := encodePayload(CommandComplete{RowsAffected: 1, StmtID: 2, Start: 10, End: 20, Tag: 9})
	want := binary.AppendVarint(nil, 1)
	want = binary.AppendVarint(want, 2)
	want = binary.AppendUvarint(want, 10)
	want = binary.AppendUvarint(want, 20)
	want = binary.AppendUvarint(want, 0) // ReadRefs
	want = binary.AppendUvarint(want, 0) // WrittenRefs
	want = binary.AppendUvarint(want, 0) // CommitSeq, forced
	want = appendString(want, "")        // Fingerprint, forced
	want = binary.AppendUvarint(want, 9) // Tag
	if !bytes.Equal(withTag, want) {
		t.Fatalf("tagged CommandComplete = %x, want %x", withTag, want)
	}
}

// FuzzPrepared round-trips the v2 message kinds through Write/Read.
func FuzzPrepared(f *testing.F) {
	f.Add("s1", "SELECT * FROM t WHERE a = ?", uint64(1), true, uint64(0), int64(42), "x")
	f.Add("", "", uint64(0), false, uint64(99), int64(-7), "")
	f.Fuzz(func(t *testing.T, name, sql string, tag uint64, lineage bool, minApplied uint64, argInt int64, argStr string) {
		msgs := []Message{
			Parse{Name: name, SQL: sql},
			ParseComplete{Name: name, NumParams: int(tag % 16), Fingerprint: sql},
			Execute{Stmt: name, Tag: tag, WithLineage: lineage, MinApplied: minApplied},
			CloseStmt{Name: name},
		}
		for _, m := range msgs {
			var buf bytes.Buffer
			if err := Write(&buf, m); err != nil {
				t.Fatalf("Write(%#v): %v", m, err)
			}
			got, err := Read(&buf)
			if err != nil {
				t.Fatalf("Read(%#v): %v", m, err)
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("round trip: got %#v, want %#v", got, m)
			}
		}
		// Bind compares by value equality (sqlval.Value is not DeepEqual-safe).
		b := Bind{Stmt: name, Args: []sqlval.Value{sqlval.NewInt(argInt), sqlval.NewString(argStr), sqlval.Null}}
		var buf bytes.Buffer
		if err := Write(&buf, b); err != nil {
			t.Fatalf("Write(%#v): %v", b, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read(%#v): %v", b, err)
		}
		g := got.(Bind)
		if g.Stmt != b.Stmt || len(g.Args) != len(b.Args) {
			t.Fatalf("Bind round trip: got %#v, want %#v", g, b)
		}
		for i := range g.Args {
			if !g.Args[i].Equal(b.Args[i]) {
				t.Fatalf("Bind arg %d mismatch", i)
			}
		}
	})
}
