package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// TestReplFieldsBackwardCompatible pins the trailing-field contract of the
// replication extensions: zero CommitSeq / MinApplied encode byte-identically
// to the pre-replication frames.
func TestReplFieldsBackwardCompatible(t *testing.T) {
	// CommandComplete without a commit sequence is the legacy frame.
	legacy := encodePayload(CommandComplete{RowsAffected: 2, StmtID: 5, Start: 1, End: 9})
	withZero := encodePayload(CommandComplete{RowsAffected: 2, StmtID: 5, Start: 1, End: 9, CommitSeq: 0})
	if !bytes.Equal(legacy, withZero) {
		t.Fatalf("zero-CommitSeq frame differs from legacy: %x vs %x", withZero, legacy)
	}
	m, err := decodePayload(TagCommandComplete, legacy)
	if err != nil {
		t.Fatal(err)
	}
	if cc := m.(CommandComplete); cc.CommitSeq != 0 {
		t.Fatalf("legacy CommandComplete decoded CommitSeq %d", cc.CommitSeq)
	}

	// Query without a bound is the legacy frame; with a bound the trace
	// context is forced present so the decoder can distinguish extensions.
	legacyQ := encodePayload(Query{SQL: "SELECT 1"})
	if got := encodePayload(Query{SQL: "SELECT 1", MinApplied: 0}); !bytes.Equal(got, legacyQ) {
		t.Fatalf("zero-MinApplied Query frame differs from legacy")
	}
	bound := encodePayload(Query{SQL: "SELECT 1", MinApplied: 7})
	if len(bound) != len(legacyQ)+spanContextSize+1 {
		t.Fatalf("bounded Query frame length %d, want %d", len(bound), len(legacyQ)+spanContextSize+1)
	}
	m, err = decodePayload(TagQuery, bound)
	if err != nil {
		t.Fatal(err)
	}
	q := m.(Query)
	if q.MinApplied != 7 || !q.Trace.IsZero() || q.SQL != "SELECT 1" {
		t.Fatalf("bounded Query decoded as %#v", q)
	}

	// Both extensions together survive a round trip.
	full := Query{SQL: "SELECT 2", Trace: testSpanContext(), MinApplied: 42}
	m, err = decodePayload(TagQuery, encodePayload(full))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, full) {
		t.Fatalf("round trip: got %#v, want %#v", m, full)
	}
}

// TestReplDecodeErrors exercises the failure paths of the replication
// message decoders: truncation must produce errors, never panics or
// silently short values.
func TestReplDecodeErrors(t *testing.T) {
	// A WALSegment whose record count promises more than the frame holds.
	seg := encodePayload(WALSegment{FirstSeq: 1, PrimaryTS: 2, Records: [][]byte{{9, 9, 9}}})
	if _, err := decodePayload(TagWALSegment, seg[:len(seg)-2]); err == nil {
		t.Fatal("truncated WALSegment record must fail")
	}
	if _, err := decodePayload(TagWALSegment, []byte{1, 2, 0xFF}); err == nil {
		t.Fatal("bogus WALSegment record count must fail")
	}
	// A SnapshotChunk cut before its fixed fields.
	if _, err := decodePayload(TagSnapshotChunk, []byte{1, 'x'}); err == nil {
		t.Fatal("truncated SnapshotChunk must fail")
	}
	// A ReplicaStatus missing its positions.
	st := encodePayload(ReplicaStatus{ID: "r", AppliedSeq: 300, AppliedTS: 4})
	if _, err := decodePayload(TagReplicaStatus, st[:len(st)-1]); err == nil {
		t.Fatal("truncated ReplicaStatus must fail")
	}
	// A Subscribe with a lying string length.
	if _, err := decodePayload(TagSubscribe, []byte{0xF0}); err == nil {
		t.Fatal("truncated Subscribe must fail")
	}
}

// FuzzReplMessages round-trips the four replication message kinds over
// arbitrary field values.
func FuzzReplMessages(f *testing.F) {
	f.Add("replica-1", uint64(5), uint64(9), []byte{1, 2, 3}, true)
	f.Add("", uint64(0), uint64(0), []byte(nil), false)
	f.Fuzz(func(t *testing.T, id string, seq, ts uint64, data []byte, done bool) {
		norm := data
		if len(norm) == 0 {
			norm = nil // empty payloads decode as nil
		}
		msgs := []struct{ in, want Message }{
			{Subscribe{ReplicaID: id}, Subscribe{ReplicaID: id}},
			{SnapshotChunk{Table: id, Done: done, CutSeq: seq, Data: data},
				SnapshotChunk{Table: id, Done: done, CutSeq: seq, Data: norm}},
			{WALSegment{FirstSeq: seq, PrimaryTS: ts, Records: [][]byte{data}},
				WALSegment{FirstSeq: seq, PrimaryTS: ts, Records: [][]byte{norm}}},
			{ReplicaStatus{ID: id, AppliedSeq: seq, AppliedTS: ts},
				ReplicaStatus{ID: id, AppliedSeq: seq, AppliedTS: ts}},
		}
		for _, m := range msgs {
			var buf bytes.Buffer
			if err := Write(&buf, m.in); err != nil {
				t.Fatalf("Write(%#v): %v", m.in, err)
			}
			got, err := Read(&buf)
			if err != nil {
				t.Fatalf("Read(%#v): %v", m.in, err)
			}
			if !reflect.DeepEqual(got, m.want) {
				t.Fatalf("round trip: got %#v, want %#v", got, m.want)
			}
		}
	})
}
