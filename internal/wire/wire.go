// Package wire implements the binary client/server protocol of the LDV
// database — the libpq analog. Messages are framed as a one-byte type tag
// plus a big-endian uint32 payload length. The protocol carries, besides
// ordinary result rows, per-row Lineage (tuple-version references) so that
// an instrumented client can audit DB provenance without extra round trips.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"ldv/internal/engine"
	"ldv/internal/obs"
	"ldv/internal/sqlval"
)

// Message type tags.
const (
	TagStartup         = 'S'
	TagQuery           = 'Q'
	TagRowDescription  = 'R'
	TagDataRow         = 'D'
	TagLineageRow      = 'L'
	TagCommandComplete = 'C'
	TagTupleValues     = 'V'
	TagError           = 'E'
	TagReady           = 'Z'
	TagTerminate       = 'X'
	TagStats           = 'T'
	TagStatsResult     = 't'
	TagTraceContext    = 'c'
	TagSubscribe       = 'U'
	TagSnapshotChunk   = 'K'
	TagWALSegment      = 'W'
	TagReplicaStatus   = 's'
	TagParse           = 'P'
	TagParseComplete   = 'p'
	TagBind            = 'B'
	TagExecute         = 'e'
	TagCloseStmt       = 'x'
)

// Tags lists every message tag the protocol defines, in declaration order.
// Metric registration and the tag-coverage test iterate this so a new tag
// cannot ship without a name and per-kind counters.
func Tags() []byte {
	return []byte{
		TagStartup, TagQuery, TagRowDescription, TagDataRow, TagLineageRow,
		TagCommandComplete, TagTupleValues, TagError, TagReady, TagTerminate,
		TagStats, TagStatsResult, TagTraceContext,
		TagSubscribe, TagSnapshotChunk, TagWALSegment, TagReplicaStatus,
		TagParse, TagParseComplete, TagBind, TagExecute, TagCloseStmt,
	}
}

// TagName returns the human-readable message kind for a tag byte (used for
// per-kind metric names); unknown tags map to "unknown".
func TagName(tag byte) string {
	switch tag {
	case TagStartup:
		return "Startup"
	case TagQuery:
		return "Query"
	case TagRowDescription:
		return "RowDescription"
	case TagDataRow:
		return "DataRow"
	case TagLineageRow:
		return "LineageRow"
	case TagCommandComplete:
		return "CommandComplete"
	case TagTupleValues:
		return "TupleValues"
	case TagError:
		return "Error"
	case TagReady:
		return "Ready"
	case TagTerminate:
		return "Terminate"
	case TagStats:
		return "Stats"
	case TagStatsResult:
		return "StatsResult"
	case TagTraceContext:
		return "TraceContext"
	case TagSubscribe:
		return "Subscribe"
	case TagSnapshotChunk:
		return "SnapshotChunk"
	case TagWALSegment:
		return "WALSegment"
	case TagReplicaStatus:
		return "ReplicaStatus"
	case TagParse:
		return "Parse"
	case TagParseComplete:
		return "ParseComplete"
	case TagBind:
		return "Bind"
	case TagExecute:
		return "Execute"
	case TagCloseStmt:
		return "CloseStmt"
	default:
		return "unknown"
	}
}

// MaxMessageSize bounds a single frame (64 MiB) to protect against
// corrupted length prefixes.
const MaxMessageSize = 64 << 20

// Message is any protocol message.
type Message interface{ tag() byte }

// Startup opens a session, announcing the client process identity (used as
// prov_p on the server) and target database name. Options carries optional
// capability strings ("trace" requests server-side span recording); encoded
// as a trailing field, so old peers simply never send any and old servers
// never see them.
type Startup struct {
	Proc     string
	Database string
	Options  []string
}

// Query asks the server to execute one SQL statement. WithLineage requests
// Lineage computation even without the PROVENANCE keyword — the switch the
// LDV audit interceptor flips. Trace is the optional trace-context header:
// when non-zero, server-side spans for this statement join the client's
// trace. It is encoded as a trailing fixed-size field, absent when zero, so
// old peers interoperate.
// MinApplied, when non-zero, is the read-your-writes bound for queries sent
// to a read replica: the server delays execution until its database has
// applied at least that WAL record sequence. Encoded after the trace
// context as a trailing uvarint (the trace context is then always present,
// zero or not, to keep the frame self-describing); absent means no bound.
// AsOf, when non-zero, pins the statement to the historical snapshot at
// that logical tick (time travel) unless the SQL carries its own AS OF
// clause. Third trailing field after MinApplied (which is then
// force-encoded, zero or not); absent means a head read, so pre-time-travel
// frames are byte-identical.
type Query struct {
	SQL         string
	WithLineage bool
	Trace       obs.SpanContext
	MinApplied  uint64
	AsOf        uint64
}

// RowDescription announces result columns.
type RowDescription struct{ Columns []string }

// DataRow carries one result row.
type DataRow struct{ Values []sqlval.Value }

// LineageRow carries the lineage of the immediately preceding DataRow.
type LineageRow struct{ Refs []engine.TupleRef }

// TupleValues carries the attribute values of provenance tuple versions
// referenced by the statement's Lineage or ReadRefs — the inline provenance
// tuples a Perm PROVENANCE query returns. Rows is parallel to Refs.
type TupleValues struct {
	Refs []engine.TupleRef
	Rows [][]sqlval.Value
}

// CommandComplete ends a successful statement, reporting DML counts,
// statement identity, its logical-time interval, and the tuple versions the
// statement read and wrote (reenactment provenance for updates).
// CommitSeq is the WAL record sequence the statement's commit occupies on
// the primary (0 when nothing was logged); clients feed it back as
// Query.MinApplied for read-your-writes on replicas. Trailing field,
// absent when zero, so legacy frames are byte-identical.
type CommandComplete struct {
	RowsAffected int
	StmtID       int64
	Start, End   uint64
	ReadRefs     []engine.TupleRef
	WrittenRefs  []engine.TupleRef
	CommitSeq    uint64
	// Fingerprint is the statement's normalized-text hash in hex — the join
	// key against the ldv_stat_statements system view. Trailing field after
	// CommitSeq (which is force-encoded, zero or not, when a fingerprint is
	// present, keeping the frame self-describing); absent when "".
	Fingerprint string
	// Tag echoes Execute.Tag so a pipelining client can match each response
	// group to the Execute that caused it. Trailing field after Fingerprint
	// (both earlier trailing fields are then force-encoded, keeping the frame
	// self-describing); absent when zero — plain Query responses are
	// byte-identical to the pre-v2 protocol.
	Tag uint64
}

// Stats request kinds: which observability document the server should
// return. The zero kind (metrics) is also what an empty payload means, so
// pre-kind clients keep working.
const (
	StatsKindMetrics byte = 0 // obs.Snapshot JSON
	StatsKindTraces  byte = 1 // flight-recorder traces JSON (obs.MarshalTraces)
)

// Stats asks the server for an observability document — a metadata request
// any wire client can issue (ldvsql's \stats, monitoring probes), analogous
// to PostgreSQL's pg_stat views but transported as a protocol message rather
// than a query. Kind selects the document (StatsKindMetrics or
// StatsKindTraces); it is a trailing field, absent meaning metrics.
type Stats struct{ Kind byte }

// StatsResult carries the requested document serialized as JSON (an
// obs.Snapshot or a flight-recorder trace list). The payload is opaque to
// the wire layer so the protocol does not depend on the metric schema.
type StatsResult struct{ JSON []byte }

// TraceContext sets the session's default trace context: until the next
// TraceContext message, statements without their own Query.Trace join this
// context. Fire-and-forget (no response), so a monitoring wrapper can scope
// a whole session under one trace with a single extra message. A zero
// context clears the default.
type TraceContext struct{ Context obs.SpanContext }

// Error reports a failed statement; the session stays usable.
type Error struct{ Message string }

// Ready signals the server awaits the next query. InTxn reports whether the
// session currently holds an open transaction, letting clients track
// transaction state (and errors clear it) without parsing SQL.
type Ready struct {
	InTxn bool
}

// Terminate closes the session.
type Terminate struct{}

// Subscribe converts the session into a replication subscription: the
// server responds with a snapshot (SnapshotChunk stream) followed by an
// endless WALSegment stream, and reads only ReplicaStatus (and Terminate)
// from then on. ReplicaID names the replica for status pages and metrics.
type Subscribe struct{ ReplicaID string }

// SnapshotChunk carries one table of the bootstrap snapshot in the
// checkpoint table-file format. The final chunk of a snapshot has Done set
// and no table payload; its CutSeq is the WAL record sequence the snapshot
// cuts the log at — the subscription's WALSegment stream continues from
// CutSeq+1 and every earlier record is already contained in the snapshot.
type SnapshotChunk struct {
	Table  string
	Done   bool
	CutSeq uint64
	Data   []byte
}

// WALSegment ships one flushed group-commit batch: Records holds the raw
// WAL record payloads of consecutive sequences starting at FirstSeq.
// PrimaryTS is the primary's logical clock at ship time, letting the
// replica compute its lag in ticks. An empty Records slice is a heartbeat
// (FirstSeq is then the next sequence the primary would ship).
type WALSegment struct {
	FirstSeq  uint64
	PrimaryTS uint64
	Records   [][]byte
}

// ReplicaStatus flows replica→primary on the subscription connection,
// acknowledging the applied-through position; the primary turns it into
// repl.lag_records / repl.lag_ticks gauges.
type ReplicaStatus struct {
	ID         string
	AppliedSeq uint64
	AppliedTS  uint64
}

// Parse asks the server to prepare the statement SQL under the
// client-chosen Name, parsing it once and registering it for later Bind /
// Execute. Positional `?` placeholders become parameters. Re-parsing an
// existing name replaces it. The server answers ParseComplete (or Error)
// followed by Ready. New in protocol v2; all fields are unconditional —
// only messages that predate an extension need trailing-field compatibility.
type Parse struct {
	Name string
	SQL  string
}

// ParseComplete acknowledges a Parse, echoing the statement name and
// reporting how many `?` parameters the statement wants plus its normalized
// fingerprint (the plan-cache and ldv_stat_prepared join key). New in
// protocol v2.
type ParseComplete struct {
	Name        string
	NumParams   int
	Fingerprint string
}

// Bind supplies parameter values for a prepared statement's next Execute.
// Fire-and-forget like TraceContext: the server stores the values without
// responding, so a pipelining client can stream Bind/Execute pairs without
// intervening round trips. Binding errors (unknown statement, arity
// mismatch) surface on the Execute. New in protocol v2.
type Bind struct {
	Stmt string
	Args []sqlval.Value
}

// Execute runs a prepared statement with its most recently bound
// parameters, producing exactly one response group — the same
// RowDescription/DataRow/.../CommandComplete/Ready sequence a Query yields,
// or Error/Ready. Tag is a client-chosen correlation id echoed in
// CommandComplete.Tag so pipelined responses can be matched in order.
// WithLineage, Trace and MinApplied mean what they do on Query. New in
// protocol v2.
type Execute struct {
	Stmt        string
	Tag         uint64
	WithLineage bool
	Trace       obs.SpanContext
	MinApplied  uint64
}

// CloseStmt discards a prepared statement. Fire-and-forget; closing an
// unknown name is a no-op. New in protocol v2.
type CloseStmt struct {
	Name string
}

func (Startup) tag() byte         { return TagStartup }
func (TraceContext) tag() byte    { return TagTraceContext }
func (Stats) tag() byte           { return TagStats }
func (StatsResult) tag() byte     { return TagStatsResult }
func (Query) tag() byte           { return TagQuery }
func (RowDescription) tag() byte  { return TagRowDescription }
func (DataRow) tag() byte         { return TagDataRow }
func (LineageRow) tag() byte      { return TagLineageRow }
func (TupleValues) tag() byte     { return TagTupleValues }
func (CommandComplete) tag() byte { return TagCommandComplete }
func (Error) tag() byte           { return TagError }
func (Ready) tag() byte           { return TagReady }
func (Terminate) tag() byte       { return TagTerminate }
func (Subscribe) tag() byte       { return TagSubscribe }
func (SnapshotChunk) tag() byte   { return TagSnapshotChunk }
func (WALSegment) tag() byte      { return TagWALSegment }
func (ReplicaStatus) tag() byte   { return TagReplicaStatus }
func (Parse) tag() byte           { return TagParse }
func (ParseComplete) tag() byte   { return TagParseComplete }
func (Bind) tag() byte            { return TagBind }
func (Execute) tag() byte         { return TagExecute }
func (CloseStmt) tag() byte       { return TagCloseStmt }

// Write sends one message.
func Write(w io.Writer, m Message) error {
	payload := encodePayload(m)
	header := [5]byte{m.tag()}
	binary.BigEndian.PutUint32(header[1:], uint32(len(payload)))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("wire write header: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("wire write payload: %w", err)
		}
	}
	recordOut(m.tag(), len(header)+len(payload))
	return nil
}

// Read receives one message.
func Read(r io.Reader) (Message, error) {
	var header [5]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(header[1:])
	if size > MaxMessageSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire read payload: %w", err)
	}
	m, err := decodePayload(header[0], payload)
	if err == nil {
		recordIn(header[0], len(header)+len(payload))
	}
	return m, err
}

func encodePayload(m Message) []byte {
	var b []byte
	switch v := m.(type) {
	case Startup:
		b = appendString(b, v.Proc)
		b = appendString(b, v.Database)
		// Options are a trailing field: omitted entirely when empty so the
		// frame is byte-identical to the pre-options protocol.
		if len(v.Options) > 0 {
			b = binary.AppendUvarint(b, uint64(len(v.Options)))
			for _, o := range v.Options {
				b = appendString(b, o)
			}
		}
	case Query:
		if v.WithLineage {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendString(b, v.SQL)
		// Trace context trails the frame: exactly 24 bytes when present,
		// absent when zero, so pre-tracing peers parse the frame unchanged.
		// A MinApplied bound trails the trace context, and an AS OF tick
		// trails MinApplied; each later field forces the earlier ones (zero
		// or not) so the decoder tells the extensions apart by position.
		switch {
		case v.AsOf > 0:
			b = appendSpanContext(b, v.Trace)
			b = binary.AppendUvarint(b, v.MinApplied)
			b = binary.AppendUvarint(b, v.AsOf)
		case v.MinApplied > 0:
			b = appendSpanContext(b, v.Trace)
			b = binary.AppendUvarint(b, v.MinApplied)
		case !v.Trace.IsZero():
			b = appendSpanContext(b, v.Trace)
		}
	case RowDescription:
		b = binary.AppendUvarint(b, uint64(len(v.Columns)))
		for _, c := range v.Columns {
			b = appendString(b, c)
		}
	case DataRow:
		b = sqlval.EncodeRow(b, v.Values)
	case LineageRow:
		b = appendRefs(b, v.Refs)
	case TupleValues:
		b = appendRefs(b, v.Refs)
		for _, row := range v.Rows {
			b = sqlval.EncodeRow(b, row)
		}
	case CommandComplete:
		b = binary.AppendVarint(b, int64(v.RowsAffected))
		b = binary.AppendVarint(b, v.StmtID)
		b = binary.AppendUvarint(b, v.Start)
		b = binary.AppendUvarint(b, v.End)
		b = appendRefs(b, v.ReadRefs)
		b = appendRefs(b, v.WrittenRefs)
		// Trailing commit sequence, absent when nothing was logged, so the
		// frame is byte-identical to the pre-replication protocol. A
		// fingerprint forces it (zero or not): the decoder tells the
		// trailing fields apart by position, not content. A pipeline tag in
		// turn forces the fingerprint (empty or not).
		if v.CommitSeq > 0 || v.Fingerprint != "" || v.Tag != 0 {
			b = binary.AppendUvarint(b, v.CommitSeq)
		}
		if v.Fingerprint != "" || v.Tag != 0 {
			b = appendString(b, v.Fingerprint)
		}
		if v.Tag != 0 {
			b = binary.AppendUvarint(b, v.Tag)
		}
	case Error:
		b = appendString(b, v.Message)
	case StatsResult:
		b = append(b, v.JSON...)
	case Ready:
		if v.InTxn {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case Stats:
		// Kind is a trailing field: the metrics kind encodes as the legacy
		// empty payload.
		if v.Kind != StatsKindMetrics {
			b = append(b, v.Kind)
		}
	case TraceContext:
		b = appendSpanContext(b, v.Context)
	case Subscribe:
		b = appendString(b, v.ReplicaID)
	case SnapshotChunk:
		b = appendString(b, v.Table)
		if v.Done {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.AppendUvarint(b, v.CutSeq)
		b = append(b, v.Data...) // raw to frame end; length implied
	case WALSegment:
		b = binary.AppendUvarint(b, v.FirstSeq)
		b = binary.AppendUvarint(b, v.PrimaryTS)
		b = binary.AppendUvarint(b, uint64(len(v.Records)))
		for _, rec := range v.Records {
			b = binary.AppendUvarint(b, uint64(len(rec)))
			b = append(b, rec...)
		}
	case ReplicaStatus:
		b = appendString(b, v.ID)
		b = binary.AppendUvarint(b, v.AppliedSeq)
		b = binary.AppendUvarint(b, v.AppliedTS)
	case Parse:
		b = appendString(b, v.Name)
		b = appendString(b, v.SQL)
	case ParseComplete:
		b = appendString(b, v.Name)
		b = binary.AppendUvarint(b, uint64(v.NumParams))
		b = appendString(b, v.Fingerprint)
	case Bind:
		b = appendString(b, v.Stmt)
		b = sqlval.EncodeRow(b, v.Args)
	case Execute:
		b = appendString(b, v.Stmt)
		b = binary.AppendUvarint(b, v.Tag)
		if v.WithLineage {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		// v2 message: the trace context and MinApplied bound are always
		// present (zero or not) — no legacy peers to stay byte-compatible
		// with.
		b = appendSpanContext(b, v.Trace)
		b = binary.AppendUvarint(b, v.MinApplied)
	case CloseStmt:
		b = appendString(b, v.Name)
	case Terminate:
	}
	return b
}

func decodePayload(tag byte, b []byte) (Message, error) {
	d := &decoder{buf: b}
	var m Message
	switch tag {
	case TagStartup:
		s := Startup{Proc: d.string(), Database: d.string()}
		// Trailing options (absent in pre-options frames).
		if d.err == nil && len(d.buf) > 0 {
			n := d.uvarint()
			if n > uint64(len(d.buf)) {
				return nil, fmt.Errorf("wire Startup: option count %d exceeds frame", n)
			}
			s.Options = make([]string, 0, n)
			for i := uint64(0); i < n && d.err == nil; i++ {
				s.Options = append(s.Options, d.string())
			}
		}
		m = s
	case TagQuery:
		withLineage := d.byte() == 1
		q := Query{WithLineage: withLineage, SQL: d.string()}
		// Trailing trace context (absent in pre-tracing frames), then the
		// optional MinApplied bound, then the optional AS OF tick.
		if d.err == nil && len(d.buf) > 0 {
			q.Trace = d.spanContext()
			if d.err == nil && len(d.buf) > 0 {
				q.MinApplied = d.uvarint()
			}
			if d.err == nil && len(d.buf) > 0 {
				q.AsOf = d.uvarint()
			}
		}
		m = q
	case TagRowDescription:
		n := d.uvarint()
		if n > uint64(len(d.buf)) {
			return nil, fmt.Errorf("wire RowDescription: column count %d exceeds frame", n)
		}
		cols := make([]string, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			cols = append(cols, d.string())
		}
		m = RowDescription{Columns: cols}
	case TagDataRow:
		vals, n, err := sqlval.DecodeRow(b)
		if err != nil {
			return nil, fmt.Errorf("wire DataRow: %w", err)
		}
		d.buf = b[n:]
		m = DataRow{Values: vals}
	case TagLineageRow:
		m = LineageRow{Refs: d.refs()}
	case TagTupleValues:
		refs := d.refs()
		rows := make([][]sqlval.Value, 0, len(refs))
		for i := 0; i < len(refs) && d.err == nil; i++ {
			vals, n, err := sqlval.DecodeRow(d.buf)
			if err != nil {
				return nil, fmt.Errorf("wire TupleValues row %d: %w", i, err)
			}
			d.buf = d.buf[n:]
			rows = append(rows, vals)
		}
		m = TupleValues{Refs: refs, Rows: rows}
	case TagCommandComplete:
		cc := CommandComplete{
			RowsAffected: int(d.varint()),
			StmtID:       d.varint(),
			Start:        d.uvarint(),
			End:          d.uvarint(),
			ReadRefs:     d.refs(),
			WrittenRefs:  d.refs(),
		}
		// Trailing commit sequence (absent in pre-replication frames), then
		// the statement fingerprint (absent in pre-introspection frames),
		// then the pipeline tag (absent outside v2 Execute responses).
		if d.err == nil && len(d.buf) > 0 {
			cc.CommitSeq = d.uvarint()
		}
		if d.err == nil && len(d.buf) > 0 {
			cc.Fingerprint = d.string()
		}
		if d.err == nil && len(d.buf) > 0 {
			cc.Tag = d.uvarint()
		}
		m = cc
	case TagError:
		m = Error{Message: d.string()}
	case TagStats:
		// Tolerate the pre-kind empty payload: absent kind means metrics.
		if len(d.buf) > 0 {
			m = Stats{Kind: d.byte()}
		} else {
			m = Stats{}
		}
	case TagTraceContext:
		m = TraceContext{Context: d.spanContext()}
	case TagStatsResult:
		m = StatsResult{JSON: append([]byte(nil), d.buf...)}
		d.buf = nil
	case TagReady:
		// Tolerate the pre-transaction empty payload (old peers, replay
		// corpora): absent flag means no open transaction.
		if len(d.buf) > 0 {
			m = Ready{InTxn: d.byte() == 1}
		} else {
			m = Ready{}
		}
	case TagSubscribe:
		m = Subscribe{ReplicaID: d.string()}
	case TagSnapshotChunk:
		c := SnapshotChunk{Table: d.string(), Done: d.byte() == 1, CutSeq: d.uvarint()}
		if d.err == nil {
			c.Data = append([]byte(nil), d.buf...)
			d.buf = nil
		}
		m = c
	case TagWALSegment:
		seg := WALSegment{FirstSeq: d.uvarint(), PrimaryTS: d.uvarint()}
		n := d.uvarint()
		if n > uint64(len(d.buf)) {
			return nil, fmt.Errorf("wire WALSegment: record count %d exceeds frame", n)
		}
		if n > 0 {
			seg.Records = make([][]byte, 0, n)
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			seg.Records = append(seg.Records, d.bytes())
		}
		m = seg
	case TagReplicaStatus:
		m = ReplicaStatus{ID: d.string(), AppliedSeq: d.uvarint(), AppliedTS: d.uvarint()}
	case TagParse:
		m = Parse{Name: d.string(), SQL: d.string()}
	case TagParseComplete:
		m = ParseComplete{Name: d.string(), NumParams: int(d.uvarint()), Fingerprint: d.string()}
	case TagBind:
		bd := Bind{Stmt: d.string()}
		if d.err == nil {
			args, n, err := sqlval.DecodeRow(d.buf)
			if err != nil {
				return nil, fmt.Errorf("wire Bind: %w", err)
			}
			d.buf = d.buf[n:]
			bd.Args = args
		}
		m = bd
	case TagExecute:
		m = Execute{
			Stmt:        d.string(),
			Tag:         d.uvarint(),
			WithLineage: d.byte() == 1,
			Trace:       d.spanContext(),
			MinApplied:  d.uvarint(),
		}
	case TagCloseStmt:
		m = CloseStmt{Name: d.string()}
	case TagTerminate:
		m = Terminate{}
	default:
		return nil, fmt.Errorf("wire: unknown message tag %q", tag)
	}
	if d.err != nil {
		return nil, fmt.Errorf("wire decode %q: %w", tag, d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("wire decode %q: %d trailing bytes", tag, len(d.buf))
	}
	return m, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendRefs(b []byte, refs []engine.TupleRef) []byte {
	b = binary.AppendUvarint(b, uint64(len(refs)))
	for _, r := range refs {
		b = appendString(b, r.Table)
		b = binary.AppendUvarint(b, uint64(r.Row))
		b = binary.AppendUvarint(b, r.Version)
	}
	return b
}

// decoder is a cursor with sticky error handling.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("truncated %s", what)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.buf) == 0 {
		d.fail("byte")
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// bytes reads a uvarint-length-prefixed byte slice (a copy).
func (d *decoder) bytes() []byte {
	l := d.uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.buf)) < l {
		d.fail("bytes")
		return nil
	}
	v := append([]byte(nil), d.buf[:l]...)
	d.buf = d.buf[l:]
	return v
}

func (d *decoder) string() string {
	l := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)) < l {
		d.fail("string")
		return ""
	}
	s := string(d.buf[:l])
	d.buf = d.buf[l:]
	return s
}

// spanContextSize is the fixed wire size of a trace-context header: 16-byte
// trace ID plus big-endian 8-byte span ID.
const spanContextSize = 16 + 8

// appendSpanContext encodes sc in its fixed 24-byte wire form.
func appendSpanContext(b []byte, sc obs.SpanContext) []byte {
	b = append(b, sc.Trace[:]...)
	return binary.BigEndian.AppendUint64(b, sc.Span)
}

func (d *decoder) spanContext() obs.SpanContext {
	if d.err != nil {
		return obs.SpanContext{}
	}
	if len(d.buf) < spanContextSize {
		d.fail("trace context")
		return obs.SpanContext{}
	}
	var sc obs.SpanContext
	copy(sc.Trace[:], d.buf[:16])
	sc.Span = binary.BigEndian.Uint64(d.buf[16:spanContextSize])
	d.buf = d.buf[spanContextSize:]
	return sc
}

func (d *decoder) refs() []engine.TupleRef {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	// Each ref needs at least 3 bytes; reject corrupt counts before
	// allocating.
	if n > uint64(len(d.buf)) {
		d.fail("ref count")
		return nil
	}
	refs := make([]engine.TupleRef, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		refs = append(refs, engine.TupleRef{
			Table:   d.string(),
			Row:     engine.RowID(d.uvarint()),
			Version: d.uvarint(),
		})
	}
	return refs
}
