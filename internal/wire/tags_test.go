package wire

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"strings"
	"testing"
)

// TestTagCoverage walks wire.go's AST for every exported Tag* constant and
// asserts each one is enumerated by Tags(), has a human-readable TagName,
// and has per-kind in/out counters registered. A tag added without updating
// Tags() fails here instead of silently losing metrics.
func TestTagCoverage(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "wire.go", nil, 0)
	if err != nil {
		t.Fatalf("parse wire.go: %v", err)
	}
	declared := map[string]byte{}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if !strings.HasPrefix(name.Name, "Tag") || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.CHAR {
					continue
				}
				s, err := strconv.Unquote(lit.Value)
				if err != nil || len(s) != 1 {
					t.Fatalf("constant %s: unparseable char literal %s", name.Name, lit.Value)
				}
				declared[name.Name] = s[0]
			}
		}
	}
	if len(declared) == 0 {
		t.Fatal("AST walk found no Tag* constants")
	}
	enumerated := map[byte]bool{}
	for _, tag := range Tags() {
		enumerated[tag] = true
	}
	if len(enumerated) != len(declared) {
		t.Errorf("Tags() lists %d tags, wire.go declares %d", len(enumerated), len(declared))
	}
	for name, tag := range declared {
		if !enumerated[tag] {
			t.Errorf("%s (%q) missing from Tags()", name, tag)
		}
		if kind := TagName(tag); kind == "unknown" {
			t.Errorf("%s (%q) has no TagName", name, tag)
		}
		if mOutByTag[tag] == nil || mInByTag[tag] == nil {
			t.Errorf("%s (%q) has no per-kind wire metrics", name, tag)
		}
	}
	// TagName values must be unique (they name metrics).
	names := map[string]byte{}
	for _, tag := range Tags() {
		n := TagName(tag)
		if prev, dup := names[n]; dup {
			t.Errorf("TagName collision: %q used by %q and %q", n, prev, tag)
		}
		names[n] = tag
	}

	// Every declared tag must be a decodePayload switch case (a registered
	// kind nobody can parse is a wire-protocol bug) and must be produced by
	// some message type's tag() method (otherwise it can never be encoded).
	decodable := map[string]bool{}
	produced := map[string]bool{}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		switch {
		case fd.Name.Name == "decodePayload":
			ast.Inspect(fd, func(n ast.Node) bool {
				cc, ok := n.(*ast.CaseClause)
				if !ok {
					return true
				}
				for _, e := range cc.List {
					if id, ok := e.(*ast.Ident); ok && strings.HasPrefix(id.Name, "Tag") {
						decodable[id.Name] = true
					}
				}
				return true
			})
		case fd.Name.Name == "tag" && fd.Recv != nil:
			ast.Inspect(fd, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, e := range ret.Results {
					if id, ok := e.(*ast.Ident); ok && strings.HasPrefix(id.Name, "Tag") {
						produced[id.Name] = true
					}
				}
				return true
			})
		}
	}
	for name := range declared {
		if !decodable[name] {
			t.Errorf("%s has no decodePayload case", name)
		}
		if !produced[name] {
			t.Errorf("%s is not returned by any message tag() method", name)
		}
	}
}
