package wire

import "ldv/internal/obs"

// Frame accounting: every Write/Read records total messages and bytes
// (header + payload) plus a per-kind message counter. Both endpoints of a
// simulated connection live in this process, so "out" means frames passed
// to Write and "in" means frames returned by Read, regardless of role.
var (
	mOutMsgs  = obs.GetCounter("wire.out.msgs")
	mOutBytes = obs.GetCounter("wire.out.bytes")
	mInMsgs   = obs.GetCounter("wire.in.msgs")
	mInBytes  = obs.GetCounter("wire.in.bytes")

	mOutByTag [256]*obs.Counter
	mInByTag  [256]*obs.Counter
)

func init() {
	for _, tag := range Tags() {
		mOutByTag[tag] = obs.GetCounter("wire.out.msgs." + TagName(tag))
		mInByTag[tag] = obs.GetCounter("wire.in.msgs." + TagName(tag))
	}
}

func recordOut(tag byte, frameBytes int) {
	mOutMsgs.Inc()
	mOutBytes.Add(int64(frameBytes))
	if c := mOutByTag[tag]; c != nil {
		c.Inc()
	}
}

func recordIn(tag byte, frameBytes int) {
	mInMsgs.Inc()
	mInBytes.Add(int64(frameBytes))
	if c := mInByTag[tag]; c != nil {
		c.Inc()
	}
}
