package wire

import "ldv/internal/obs"

// Frame accounting: every Write/Read records total messages and bytes
// (header + payload) plus a per-kind message counter. Both endpoints of a
// simulated connection live in this process, so "out" means frames passed
// to Write and "in" means frames returned by Read, regardless of role.
var (
	mOutMsgs  = obs.NewCounter("wire.out.msgs", "Frames written to the wire")
	mOutBytes = obs.NewCounter("wire.out.bytes", "Bytes written to the wire (header + payload)")
	mInMsgs   = obs.NewCounter("wire.in.msgs", "Frames read from the wire")
	mInBytes  = obs.NewCounter("wire.in.bytes", "Bytes read from the wire (header + payload)")

	mOutByTag [256]*obs.Counter
	mInByTag  [256]*obs.Counter
)

func init() {
	obs.DescribePrefix("wire.out.msgs.", "Frames written by message kind")
	obs.DescribePrefix("wire.in.msgs.", "Frames read by message kind")
	for _, tag := range Tags() {
		mOutByTag[tag] = obs.GetCounter("wire.out.msgs." + TagName(tag))
		mInByTag[tag] = obs.GetCounter("wire.in.msgs." + TagName(tag))
	}
}

func recordOut(tag byte, frameBytes int) {
	mOutMsgs.Inc()
	mOutBytes.Add(int64(frameBytes))
	if c := mOutByTag[tag]; c != nil {
		c.Inc()
	}
}

func recordIn(tag byte, frameBytes int) {
	mInMsgs.Inc()
	mInBytes.Add(int64(frameBytes))
	if c := mInByTag[tag]; c != nil {
		c.Inc()
	}
}
