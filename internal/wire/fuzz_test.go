package wire

import (
	"bytes"
	"testing"
)

// FuzzRead asserts the frame decoder never panics on arbitrary bytes.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	Write(&buf, Query{SQL: "SELECT 1", WithLineage: true})
	f.Add(buf.Bytes())
	buf.Reset()
	Write(&buf, CommandComplete{RowsAffected: 3, StmtID: 9})
	f.Add(buf.Bytes())
	buf.Reset()
	Write(&buf, Query{SQL: "SELECT 1", Trace: testSpanContext()})
	f.Add(buf.Bytes())
	buf.Reset()
	Write(&buf, TraceContext{Context: testSpanContext()})
	f.Add(buf.Bytes())
	buf.Reset()
	Write(&buf, Startup{Proc: "p", Database: "db", Options: []string{"trace"}})
	f.Add(buf.Bytes())
	buf.Reset()
	Write(&buf, Stats{Kind: StatsKindTraces})
	f.Add(buf.Bytes())
	buf.Reset()
	Write(&buf, Subscribe{ReplicaID: "r1"})
	f.Add(buf.Bytes())
	buf.Reset()
	Write(&buf, SnapshotChunk{Table: "t", Data: []byte{1, 2}, Done: true, CutSeq: 9})
	f.Add(buf.Bytes())
	buf.Reset()
	Write(&buf, WALSegment{FirstSeq: 3, PrimaryTS: 8, Records: [][]byte{{4, 5}}})
	f.Add(buf.Bytes())
	buf.Reset()
	Write(&buf, ReplicaStatus{ID: "r1", AppliedSeq: 2, AppliedTS: 7})
	f.Add(buf.Bytes())
	buf.Reset()
	Write(&buf, Query{SQL: "SELECT 1", MinApplied: 12})
	f.Add(buf.Bytes())
	buf.Reset()
	Write(&buf, CommandComplete{RowsAffected: 1, CommitSeq: 12})
	f.Add(buf.Bytes())
	buf.Reset()
	Write(&buf, Parse{Name: "s1", SQL: "SELECT ?"})
	f.Add(buf.Bytes())
	buf.Reset()
	Write(&buf, Bind{Stmt: "s1"})
	f.Add(buf.Bytes())
	buf.Reset()
	Write(&buf, Execute{Stmt: "s1", Tag: 4})
	f.Add(buf.Bytes())
	buf.Reset()
	Write(&buf, CommandComplete{RowsAffected: 1, Tag: 4})
	f.Add(buf.Bytes())
	f.Add([]byte{'D', 0, 0, 0, 4, 1, 2, 3, 4})
	f.Add([]byte{'?', 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{'c', 0, 0, 0, 3, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Read(bytes.NewReader(data)) // must not panic
	})
}
