package wire

import (
	"bytes"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"testing/quick"

	"ldv/internal/engine"
	"ldv/internal/obs"
	"ldv/internal/sqlval"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatalf("Write(%#v): %v", m, err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read(%#v): %v", m, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("trailing bytes after %#v", m)
	}
	return out
}

func TestRoundTripAllMessages(t *testing.T) {
	refs := []engine.TupleRef{
		{Table: "orders", Row: 42, Version: 7},
		{Table: "lineitem", Row: 1, Version: 1},
	}
	msgs := []Message{
		Startup{Proc: "p12", Database: "tpch"},
		Query{SQL: "SELECT 1", WithLineage: true},
		Query{SQL: "SELECT 2"},
		RowDescription{Columns: []string{"a", "b"}},
		RowDescription{Columns: []string{}},
		DataRow{Values: []sqlval.Value{sqlval.NewInt(1), sqlval.Null, sqlval.NewString("x")}},
		LineageRow{Refs: refs},
		LineageRow{},
		CommandComplete{RowsAffected: 3, StmtID: 9, Start: 10, End: 20, ReadRefs: refs, WrittenRefs: refs[:1]},
		CommandComplete{},
		Error{Message: "boom"},
		Ready{},
		Terminate{},
		Stats{},
		StatsResult{JSON: []byte(`{"counters":{"engine.stmts":7}}`)},
		Subscribe{ReplicaID: "replica-1"},
		Subscribe{},
		SnapshotChunk{Table: "orders", Data: []byte{1, 2, 3}},
		SnapshotChunk{Done: true, CutSeq: 99},
		WALSegment{FirstSeq: 7, PrimaryTS: 123, Records: [][]byte{{0xAA}, {0xBB, 0xCC}, {0xDD}}},
		WALSegment{FirstSeq: 8, PrimaryTS: 124},
		ReplicaStatus{ID: "replica-1", AppliedSeq: 41, AppliedTS: 120},
		CommandComplete{RowsAffected: 1, StmtID: 3, CommitSeq: 17},
		Query{SQL: "SELECT 3", MinApplied: 55},
		Parse{Name: "s1", SQL: "SELECT * FROM nation WHERE n_nationkey = ?"},
		Parse{},
		ParseComplete{Name: "s1", NumParams: 2, Fingerprint: "deadbeef"},
		ParseComplete{},
		Bind{Stmt: "s1", Args: []sqlval.Value{sqlval.NewInt(7), sqlval.Null, sqlval.NewString("x")}},
		Execute{Stmt: "s1", Tag: 3, WithLineage: true, MinApplied: 12},
		Execute{Stmt: "s1", Trace: testSpanContext()},
		Execute{},
		CloseStmt{Name: "s1"},
		CommandComplete{RowsAffected: 1, StmtID: 4, Tag: 9},
		CommandComplete{Fingerprint: "ab12", Tag: 2, CommitSeq: 5},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		switch want := m.(type) {
		case Bind:
			g := got.(Bind)
			if g.Stmt != want.Stmt || len(g.Args) != len(want.Args) {
				t.Fatalf("Bind mismatch: got %#v, want %#v", g, want)
			}
			for i := range g.Args {
				if !g.Args[i].Equal(want.Args[i]) {
					t.Fatalf("Bind arg %d mismatch", i)
				}
			}
		case DataRow:
			g := got.(DataRow)
			if len(g.Values) != len(want.Values) {
				t.Fatalf("DataRow arity mismatch")
			}
			for i := range g.Values {
				if !g.Values[i].Equal(want.Values[i]) {
					t.Fatalf("DataRow value %d mismatch", i)
				}
			}
		default:
			if !reflect.DeepEqual(got, m) {
				t.Errorf("round trip: got %#v, want %#v", got, m)
			}
		}
	}
}

func TestReadErrors(t *testing.T) {
	// Unknown tag.
	var buf bytes.Buffer
	buf.Write([]byte{'?', 0, 0, 0, 0})
	if _, err := Read(&buf); err == nil {
		t.Error("unknown tag must fail")
	}
	// Oversized frame.
	buf.Reset()
	buf.Write([]byte{'Q', 0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := Read(&buf); err == nil {
		t.Error("oversized frame must fail")
	}
	// Truncated payload.
	buf.Reset()
	buf.Write([]byte{'Q', 0, 0, 0, 10, 1, 2})
	if _, err := Read(&buf); err == nil {
		t.Error("truncated payload must fail")
	}
	// Truncated string inside payload.
	buf.Reset()
	buf.Write([]byte{'E', 0, 0, 0, 1, 50})
	if _, err := Read(&buf); err == nil {
		t.Error("bad string must fail")
	}
	// Trailing junk inside frame (one byte is the legal InTxn flag; a second
	// byte is junk).
	buf.Reset()
	buf.Write([]byte{'Z', 0, 0, 0, 2, 0, 0})
	if _, err := Read(&buf); err == nil {
		t.Error("trailing bytes must fail")
	}
	// EOF.
	buf.Reset()
	if _, err := Read(&buf); err == nil {
		t.Error("EOF must fail")
	}
}

type quickRefs struct{ Refs []engine.TupleRef }

func (quickRefs) Generate(r *rand.Rand, _ int) reflect.Value {
	n := r.Intn(5)
	refs := make([]engine.TupleRef, n)
	for i := range refs {
		refs[i] = engine.TupleRef{
			Table:   string(rune('a' + r.Intn(26))),
			Row:     engine.RowID(r.Uint64() % 100000),
			Version: r.Uint64() % 100000,
		}
	}
	return reflect.ValueOf(quickRefs{Refs: refs})
}

func TestQuickCommandCompleteRoundTrip(t *testing.T) {
	f := func(affected int32, stmt int64, start, end uint32, rr, wr quickRefs) bool {
		m := CommandComplete{
			RowsAffected: int(affected), StmtID: stmt,
			Start: uint64(start), End: uint64(end),
			ReadRefs: rr.Refs, WrittenRefs: wr.Refs,
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		g := got.(CommandComplete)
		if g.RowsAffected != m.RowsAffected || g.StmtID != m.StmtID || g.Start != m.Start || g.End != m.End {
			return false
		}
		return len(g.ReadRefs) == len(m.ReadRefs) && len(g.WrittenRefs) == len(m.WrittenRefs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPipeConversation(t *testing.T) {
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() {
		m, err := Read(server)
		if err != nil {
			done <- err
			return
		}
		if q, ok := m.(Query); !ok || q.SQL != "SELECT 1" {
			done <- err
			return
		}
		err = Write(server, Ready{})
		done <- err
	}()
	if err := Write(client, Query{SQL: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	if m, err := Read(client); err != nil {
		t.Fatal(err)
	} else if _, ok := m.(Ready); !ok {
		t.Fatalf("got %#v", m)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestWireMetrics(t *testing.T) {
	outMsgs := obs.GetCounter("wire.out.msgs.Stats")
	inMsgs := obs.GetCounter("wire.in.msgs.Stats")
	outBytes := obs.GetCounter("wire.out.bytes")
	m0, i0, b0 := outMsgs.Load(), inMsgs.Load(), outBytes.Load()

	var buf bytes.Buffer
	if err := Write(&buf, Stats{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err != nil {
		t.Fatal(err)
	}
	if outMsgs.Load() != m0+1 {
		t.Fatalf("wire.out.msgs.Stats did not increment: %d -> %d", m0, outMsgs.Load())
	}
	if inMsgs.Load() != i0+1 {
		t.Fatalf("wire.in.msgs.Stats did not increment: %d -> %d", i0, inMsgs.Load())
	}
	// A Stats frame is tag + length = 5 bytes on the wire.
	if got := outBytes.Load() - b0; got != 5 {
		t.Fatalf("wire.out.bytes delta = %d, want 5", got)
	}
}
