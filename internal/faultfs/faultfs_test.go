package faultfs

import (
	"errors"
	"fmt"
	"testing"
)

// memFS is a minimal Inner for the tests.
type memFS struct {
	files map[string][]byte
}

func newMemFS() *memFS { return &memFS{files: map[string][]byte{}} }

func (m *memFS) WriteFile(p string, data []byte) error {
	m.files[p] = append([]byte(nil), data...)
	return nil
}

func (m *memFS) AppendFile(p string, data []byte) error {
	m.files[p] = append(m.files[p], data...)
	return nil
}

func (m *memFS) ReadFile(p string) ([]byte, error) {
	d, ok := m.files[p]
	if !ok {
		return nil, fmt.Errorf("not found: %s", p)
	}
	return d, nil
}

func (m *memFS) ReadDir(string) ([]string, error) { return nil, nil }
func (m *memFS) MkdirAll(string) error            { return nil }
func (m *memFS) Remove(p string) error            { delete(m.files, p); return nil }

func TestNoCrashPassesThrough(t *testing.T) {
	inner := newMemFS()
	fs := New(inner, 0, 0)
	if err := fs.WriteFile("/a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendFile("/a", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile("/a"); string(got) != "xy" {
		t.Fatalf("contents = %q", got)
	}
	if fs.Ops() != 2 || fs.Crashed() {
		t.Fatalf("ops=%d crashed=%v", fs.Ops(), fs.Crashed())
	}
}

func TestCrashingWriteIsAtomic(t *testing.T) {
	inner := newMemFS()
	inner.files["/a"] = []byte("old")
	fs := New(inner, 1, 0.5)
	if err := fs.WriteFile("/a", []byte("new")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	// The write at the crash point takes no effect: old contents survive.
	if string(inner.files["/a"]) != "old" {
		t.Fatalf("contents = %q, want old", inner.files["/a"])
	}
	if !fs.Crashed() {
		t.Fatal("must report crashed")
	}
}

func TestCrashingAppendLandsPrefix(t *testing.T) {
	for _, tc := range []struct {
		frac float64
		want string
	}{{0, "base"}, {0.5, "base1234"}, {1, "base12345678"}} {
		inner := newMemFS()
		inner.files["/log"] = []byte("base")
		fs := New(inner, 1, tc.frac)
		err := fs.AppendFile("/log", []byte("12345678"))
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("frac %g: err = %v", tc.frac, err)
		}
		if got := string(inner.files["/log"]); got != tc.want {
			t.Fatalf("frac %g: contents = %q, want %q", tc.frac, got, tc.want)
		}
	}
}

func TestEverythingFailsAfterCrash(t *testing.T) {
	inner := newMemFS()
	inner.files["/a"] = []byte("x")
	fs := New(inner, 2, 0)
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing remove: %v", err)
	}
	// The crashing remove took no effect, and now the machine is dead.
	if _, ok := inner.files["/a"]; !ok {
		t.Fatal("crashing remove must not apply")
	}
	if err := fs.WriteFile("/b", nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
	if _, err := fs.ReadFile("/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: %v", err)
	}
	if _, err := fs.ReadDir("/"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash readdir: %v", err)
	}
	if fs.Ops() != 2 {
		t.Fatalf("ops = %d, want 2 (post-crash ops not counted)", fs.Ops())
	}
}
