// Package faultfs wraps a filesystem with crash-point injection for
// durability testing: the wrapper counts mutating operations and, at a
// configured point, "crashes" — the crashing operation takes partial or no
// effect and every operation after it fails, exactly as if the process had
// died mid-write. The crash-matrix test in internal/engine drives one
// database run per crash point and asserts that recovery from the
// underlying (surviving) filesystem restores precisely the acknowledged
// commits.
//
// Injection follows the engine.FileSystem atomicity contract: WriteFile at
// the crash point applies nothing (readers keep the old contents, like an
// unrenamed temp file), while AppendFile applies a prefix of its bytes —
// the torn tail a real append can leave, which the WAL's record checksums
// must detect.
//
// The package declares its own filesystem interface structurally identical
// to engine.FileSystem plus the append/remove extensions, so it imports
// nothing from the engine and the engine's tests can import it freely.
package faultfs

import (
	"errors"
	"fmt"
	"sync"
)

// Inner is the full filesystem surface the wrapper forwards to: the
// engine.FileSystem methods plus the append and remove extensions
// (satisfied by osim.FS and diskfs.FS).
type Inner interface {
	WriteFile(path string, data []byte) error
	ReadFile(path string) ([]byte, error)
	ReadDir(path string) ([]string, error)
	MkdirAll(path string) error
	AppendFile(path string, data []byte) error
	Remove(path string) error
}

// ErrCrashed is the error every operation returns once the crash point has
// been reached.
var ErrCrashed = errors.New("faultfs: simulated crash")

// FS counts mutating operations (WriteFile, AppendFile, MkdirAll, Remove)
// and crashes on the CrashAt-th one. Safe for concurrent use.
type FS struct {
	inner Inner

	mu      sync.Mutex
	ops     int
	crashAt int     // 1-based op index to crash on; 0 = never
	frac    float64 // fraction of bytes a crashing AppendFile still lands
	crashed bool
}

// New wraps inner to crash on the crashAt-th mutating operation (0 = run to
// completion). frac in [0,1] is the fraction of the payload a crashing
// append still writes — 0 models a crash before the write reached the
// medium, 1 a crash after the bytes landed but before the caller learned.
func New(inner Inner, crashAt int, frac float64) *FS {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return &FS{inner: inner, crashAt: crashAt, frac: frac}
}

// Ops returns the number of mutating operations observed so far; a dry run
// with crashAt 0 sizes the crash matrix.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the crash point has been reached.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step accounts one mutating operation. It returns crashing=true for
// exactly the operation at the crash point (which may take partial effect)
// and err=ErrCrashed for every operation after it.
func (f *FS) step() (crashing bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return false, ErrCrashed
	}
	f.ops++
	if f.crashAt != 0 && f.ops == f.crashAt {
		f.crashed = true
		return true, nil
	}
	return false, nil
}

// WriteFile forwards the write, or — at the crash point — drops it whole
// (WriteFile is atomic under the engine's filesystem contract).
func (f *FS) WriteFile(path string, data []byte) error {
	crashing, err := f.step()
	if err != nil {
		return err
	}
	if crashing {
		return fmt.Errorf("write %s: %w", path, ErrCrashed)
	}
	return f.inner.WriteFile(path, data)
}

// AppendFile forwards the append, or — at the crash point — lands only the
// configured prefix of the payload before failing: the torn tail.
func (f *FS) AppendFile(path string, data []byte) error {
	crashing, err := f.step()
	if err != nil {
		return err
	}
	if crashing {
		if n := int(f.frac * float64(len(data))); n > 0 {
			if werr := f.inner.AppendFile(path, data[:n]); werr != nil {
				return werr
			}
		}
		return fmt.Errorf("append %s: %w", path, ErrCrashed)
	}
	return f.inner.AppendFile(path, data)
}

// MkdirAll forwards the mkdir; at the crash point it takes no effect.
func (f *FS) MkdirAll(path string) error {
	crashing, err := f.step()
	if err != nil {
		return err
	}
	if crashing {
		return fmt.Errorf("mkdir %s: %w", path, ErrCrashed)
	}
	return f.inner.MkdirAll(path)
}

// Remove forwards the delete; at the crash point it takes no effect.
func (f *FS) Remove(path string) error {
	crashing, err := f.step()
	if err != nil {
		return err
	}
	if crashing {
		return fmt.Errorf("remove %s: %w", path, ErrCrashed)
	}
	return f.inner.Remove(path)
}

// ReadFile reads through until the crash, after which the machine is gone.
func (f *FS) ReadFile(path string) ([]byte, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return f.inner.ReadFile(path)
}

// ReadDir reads through until the crash.
func (f *FS) ReadDir(path string) ([]string, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return f.inner.ReadDir(path)
}
