// Package deps implements the paper's data-dependency machinery: direct
// dependencies of the Lineage model (Definition 7) and the blackbox process
// model (Definition 8), and the temporally-restricted cross-model dependency
// inference of Definition 11, which is sound and complete with respect to
// the dependency axioms of Definition 9 (Theorem 1).
package deps

import (
	"container/heap"
	"sort"

	"ldv/internal/prov"
)

// Pair states that Entity depends on DependsOn.
type Pair struct {
	Entity    string
	DependsOn string
}

// Set is a set of dependency pairs.
type Set map[Pair]bool

// Add inserts a pair.
func (s Set) Add(entity, dependsOn string) { s[Pair{Entity: entity, DependsOn: dependsOn}] = true }

// Has reports membership.
func (s Set) Has(entity, dependsOn string) bool {
	return s[Pair{Entity: entity, DependsOn: dependsOn}]
}

// Sorted returns the pairs in deterministic order.
func (s Set) Sorted() []Pair {
	out := make([]Pair, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Entity != out[j].Entity {
			return out[i].Entity < out[j].Entity
		}
		return out[i].DependsOn < out[j].DependsOn
	})
	return out
}

// LineageDeps returns the PLin direct dependencies D(G) recorded on the
// trace (Definition 7): a result tuple depends on every input tuple in its
// Lineage.
func LineageDeps(tr *prov.Trace) Set {
	out := Set{}
	for _, d := range tr.Deps() {
		out.Add(d.To, d.From)
	}
	return out
}

// BlackboxDeps computes the PBB direct dependencies D(G) of Definition 8:
// file f depends on file f' when the trace contains a path
// f' -> P1 -> ... -> Pn -> f in which the process chain is connected by
// executed edges, P1 read f', and Pn wrote f. The definition is
// deliberately conservative — no temporal reasoning here; that is the
// inference layer's job.
func BlackboxDeps(tr *prov.Trace) Set {
	out := Set{}
	for _, src := range tr.Nodes() {
		if src.Type != prov.TypeFile {
			continue
		}
		// BFS over process chains starting from processes that read src.
		visited := map[string]bool{}
		var queue []string
		for _, e := range tr.Out(src.ID) {
			if e.Label == prov.EdgeReadFrom && e.To.Type == prov.TypeProcess {
				if !visited[e.To.ID] {
					visited[e.To.ID] = true
					queue = append(queue, e.To.ID)
				}
			}
		}
		for len(queue) > 0 {
			pid := queue[0]
			queue = queue[1:]
			for _, e := range tr.Out(pid) {
				switch {
				case e.Label == prov.EdgeExecuted && e.To.Type == prov.TypeProcess:
					if !visited[e.To.ID] {
						visited[e.To.ID] = true
						queue = append(queue, e.To.ID)
					}
				case e.Label == prov.EdgeHasWritten && e.To.Type == prov.TypeFile:
					out.Add(e.To.ID, src.ID)
				}
			}
		}
	}
	return out
}

// DirectDeps unions the per-model direct dependencies of a combined trace.
func DirectDeps(tr *prov.Trace) Set {
	out := BlackboxDeps(tr)
	for p := range LineageDeps(tr) {
		out[p] = true
	}
	return out
}

// Inferencer evaluates the temporally-restricted dependency inference of
// Definition 11 over a combined execution trace.
type Inferencer struct {
	trace  *prov.Trace
	direct Set
	// entityModel maps an entity type to an opaque model tag; entities with
	// equal tags are "from the same provenance model" for condition 1.
	entityModel map[string]int
	// Naive disables the temporal conditions (2) and (3), leaving pure
	// path-plus-direct-dependency reachability. Used only by the ablation
	// study quantifying how much the temporal pruning buys.
	Naive bool
}

// NewInferencer builds an inferencer for a trace whose entities come from
// the given sequence of models (each model's entity types share a tag).
// direct is normally DirectDeps(trace) but may be customized (the paper's
// Figure 6c posits a trace where a same-model dependency is absent).
func NewInferencer(tr *prov.Trace, direct Set, models ...*prov.Model) *Inferencer {
	em := map[string]int{}
	for i, m := range models {
		for t := range m.Entities {
			em[t] = i
		}
	}
	return &Inferencer{trace: tr, direct: direct, entityModel: em}
}

// NewDefaultInferencer wires the standard PBB+PLin combination with direct
// dependencies taken from the trace itself.
func NewDefaultInferencer(tr *prov.Trace) *Inferencer {
	return NewInferencer(tr, DirectDeps(tr), prov.Blackbox(), prov.Lineage())
}

func (inf *Inferencer) sameModel(a, b *prov.Node) bool {
	return inf.entityModel[a.Type] == inf.entityModel[b.Type]
}

// state is one node of the search space: a trace node plus the last entity
// seen on the path (condition 1 needs it at the next entity).
type state struct {
	node       string
	lastEntity string
}

// item is a priority-queue entry ordered by arrival time; smaller arrival
// times are strictly more permissive, so a Dijkstra-style expansion finds
// the minimal feasible arrival per state.
type item struct {
	st      state
	arrival uint64
}

type queue []item

func (q queue) Len() int           { return len(q) }
func (q queue) Less(i, j int) bool { return q[i].arrival < q[j].arrival }
func (q queue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *queue) Push(x any)        { *q = append(*q, x.(item)) }
func (q *queue) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// Dependents returns every entity that depends on source according to
// Definition 11, together with the earliest feasible arrival time of the
// information flow (the T at which the dependency first holds).
func (inf *Inferencer) Dependents(source string) map[string]uint64 {
	src := inf.trace.Node(source)
	result := map[string]uint64{}
	if src == nil || !src.IsEntity(inf.trace.Model) {
		return result
	}
	best := map[state]uint64{}
	start := state{node: source, lastEntity: source}
	best[start] = 0
	q := &queue{{st: start, arrival: 0}}
	for q.Len() > 0 {
		cur := heap.Pop(q).(item)
		if cur.arrival > best[cur.st] {
			continue // stale entry
		}
		for _, e := range inf.trace.Out(cur.st.node) {
			// Condition 2: the information present at the source endpoint must
			// still be able to flow before the interaction ends.
			if !inf.Naive && cur.arrival > e.T.End {
				continue
			}
			arrival := maxU64(cur.arrival, e.T.Begin)
			if inf.Naive {
				arrival = 0
			}
			next := state{node: e.To.ID, lastEntity: cur.st.lastEntity}
			to := e.To
			if to.IsEntity(inf.trace.Model) {
				le := inf.trace.Node(cur.st.lastEntity)
				// Condition 1: adjacent entities from the same model on the
				// path must be directly data dependent.
				if inf.sameModel(le, to) && !inf.direct.Has(to.ID, le.ID) {
					continue
				}
				next.lastEntity = to.ID
				if to.ID != source {
					if prev, ok := result[to.ID]; !ok || arrival < prev {
						result[to.ID] = arrival
					}
				}
			}
			if prev, ok := best[next]; !ok || arrival < prev {
				best[next] = arrival
				heap.Push(q, item{st: next, arrival: arrival})
			}
		}
	}
	return result
}

// DependsOn answers the reachability query "does entity depend on
// dependsOn" (the d -> d' question from the paper's introduction).
func (inf *Inferencer) DependsOn(entity, dependsOn string) bool {
	_, ok := inf.Dependents(dependsOn)[entity]
	return ok
}

// Dependencies returns every entity the given entity depends on.
func (inf *Inferencer) Dependencies(entity string) []string {
	var out []string
	for _, n := range inf.trace.Nodes() {
		if !n.IsEntity(inf.trace.Model) || n.ID == entity {
			continue
		}
		if inf.DependsOn(entity, n.ID) {
			out = append(out, n.ID)
		}
	}
	sort.Strings(out)
	return out
}

// All computes the full inferred dependency set D*(G).
func (inf *Inferencer) All() Set {
	out := Set{}
	for _, n := range inf.trace.Nodes() {
		if !n.IsEntity(inf.trace.Model) {
			continue
		}
		for dep := range inf.Dependents(n.ID) {
			out.Add(dep, n.ID)
		}
	}
	return out
}

// ActivityDependsOn reports whether the state of the given activity ever
// comes to depend on the entity — the relevance condition LDV packaging
// uses (§VII-D): a tuple is relevant if some activity's state depends on it.
func (inf *Inferencer) ActivityDependsOn(activity, entity string) bool {
	src := inf.trace.Node(entity)
	act := inf.trace.Node(activity)
	if src == nil || act == nil || !src.IsEntity(inf.trace.Model) || act.IsEntity(inf.trace.Model) {
		return false
	}
	// Run the same propagation but look for the activity node in the
	// reached states.
	best := map[state]uint64{}
	start := state{node: entity, lastEntity: entity}
	best[start] = 0
	q := &queue{{st: start, arrival: 0}}
	for q.Len() > 0 {
		cur := heap.Pop(q).(item)
		if cur.arrival > best[cur.st] {
			continue
		}
		if cur.st.node == activity {
			return true
		}
		for _, e := range inf.trace.Out(cur.st.node) {
			if !inf.Naive && cur.arrival > e.T.End {
				continue
			}
			arrival := maxU64(cur.arrival, e.T.Begin)
			if inf.Naive {
				arrival = 0
			}
			next := state{node: e.To.ID, lastEntity: cur.st.lastEntity}
			to := e.To
			if to.IsEntity(inf.trace.Model) {
				le := inf.trace.Node(cur.st.lastEntity)
				if inf.sameModel(le, to) && !inf.direct.Has(to.ID, le.ID) {
					continue
				}
				next.lastEntity = to.ID
			}
			if prev, ok := best[next]; !ok || arrival < prev {
				best[next] = arrival
				heap.Push(q, item{st: next, arrival: arrival})
			}
		}
	}
	return false
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
