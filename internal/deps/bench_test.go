package deps

import (
	"fmt"
	"testing"

	"ldv/internal/prov"
)

// buildChainTrace builds a long alternating file/process chain with
// feasible temporal annotations, the worst case for inference depth.
func buildChainTrace(b *testing.B, n int) *prov.Trace {
	b.Helper()
	tr := prov.NewTrace(prov.CombinedDefault())
	prev := ""
	for i := 0; i < n; i++ {
		f := fmt.Sprintf("f%d", i)
		p := fmt.Sprintf("p%d", i)
		if _, err := tr.AddNode(f, prov.TypeFile, f); err != nil {
			b.Fatal(err)
		}
		if _, err := tr.AddNode(p, prov.TypeProcess, p); err != nil {
			b.Fatal(err)
		}
		t := uint64(2 * i)
		if _, err := tr.AddEdge(f, p, prov.EdgeReadFrom, prov.Interval{Begin: t + 1, End: t + 1}); err != nil {
			b.Fatal(err)
		}
		if prev != "" {
			if _, err := tr.AddEdge(prev, f, prov.EdgeHasWritten, prov.Interval{Begin: t, End: t}); err != nil {
				b.Fatal(err)
			}
		}
		prev = p
	}
	last := fmt.Sprintf("f%d", n)
	tr.AddNode(last, prov.TypeFile, last)
	tr.AddEdge(prev, last, prov.EdgeHasWritten, prov.Interval{Begin: uint64(2 * n), End: uint64(2 * n)})
	return tr
}

func BenchmarkBlackboxDeps(b *testing.B) {
	tr := buildChainTrace(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(BlackboxDeps(tr)) == 0 {
			b.Fatal("no deps")
		}
	}
}

func BenchmarkDependentsChain(b *testing.B) {
	tr := buildChainTrace(b, 200)
	inf := NewDefaultInferencer(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(inf.Dependents("f0")) == 0 {
			b.Fatal("no dependents")
		}
	}
}

func BenchmarkFullClosure(b *testing.B) {
	tr := buildChainTrace(b, 60)
	inf := NewDefaultInferencer(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(inf.All()) == 0 {
			b.Fatal("no closure")
		}
	}
}

func BenchmarkFullClosureNaive(b *testing.B) {
	tr := buildChainTrace(b, 60)
	inf := NewDefaultInferencer(tr)
	inf.Naive = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(inf.All()) == 0 {
			b.Fatal("no closure")
		}
	}
}
