package deps

import (
	"reflect"
	"testing"

	"ldv/internal/prov"
)

// buildChain constructs the A -P1- B -P2- C file/process chain of the
// paper's Figure 6, with the four edge intervals given in order:
// A->P1, P1->B, B->P2, P2->C.
func buildChain(t *testing.T, ivs [4]prov.Interval) *prov.Trace {
	t.Helper()
	tr := prov.NewTrace(prov.CombinedDefault())
	for _, n := range []struct{ id, typ string }{
		{"A", prov.TypeFile}, {"B", prov.TypeFile}, {"C", prov.TypeFile},
		{"P1", prov.TypeProcess}, {"P2", prov.TypeProcess},
	} {
		if _, err := tr.AddNode(n.id, n.typ, n.id); err != nil {
			t.Fatal(err)
		}
	}
	edges := []struct {
		from, to, label string
	}{
		{"A", "P1", prov.EdgeReadFrom},
		{"P1", "B", prov.EdgeHasWritten},
		{"B", "P2", prov.EdgeReadFrom},
		{"P2", "C", prov.EdgeHasWritten},
	}
	for i, e := range edges {
		if _, err := tr.AddEdge(e.from, e.to, e.label, ivs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func iv(b, e uint64) prov.Interval { return prov.Interval{Begin: b, End: e} }

func TestFig6aNoDependency(t *testing.T) {
	// Figure 6a: P2 stopped reading B (at 5) before P1 wrote it (6..7), so C
	// cannot depend on A.
	tr := buildChain(t, [4]prov.Interval{iv(2, 3), iv(6, 7), iv(1, 5), iv(6, 6)})
	inf := NewDefaultInferencer(tr)
	if inf.DependsOn("C", "A") {
		t.Fatal("Fig 6a: C must NOT depend on A")
	}
	// The naive (non-temporal) rule would wrongly infer the dependency —
	// exactly the spurious dependency temporal pruning removes.
	inf.Naive = true
	if !inf.DependsOn("C", "A") {
		t.Fatal("Fig 6a: naive inference must include the spurious dependency")
	}
}

func TestFig6bDependencyAtTime4(t *testing.T) {
	// Figure 6b: C depends on A; the flow becomes feasible at time 4.
	tr := buildChain(t, [4]prov.Interval{iv(1, 1), iv(4, 7), iv(2, 5), iv(1, 6)})
	inf := NewDefaultInferencer(tr)
	deps := inf.Dependents("A")
	at, ok := deps["C"]
	if !ok {
		t.Fatal("Fig 6b: C must depend on A")
	}
	if at != 4 {
		t.Fatalf("Fig 6b: dependency arises at %d, want 4", at)
	}
}

func TestFig6cMissingDirectDependency(t *testing.T) {
	// Figure 6c: same temporal annotations as 6b, but the direct data
	// dependency (B depends on A) is absent, so condition 1 blocks the path.
	tr := buildChain(t, [4]prov.Interval{iv(1, 1), iv(4, 7), iv(2, 5), iv(1, 6)})
	direct := Set{}
	direct.Add("C", "B") // C <- B holds, B <- A does not
	inf := NewInferencer(tr, direct, prov.Blackbox(), prov.Lineage())
	if inf.DependsOn("C", "A") {
		t.Fatal("Fig 6c: C must NOT depend on A without the B<-A dependency")
	}
	if !inf.DependsOn("C", "B") {
		t.Fatal("Fig 6c: C must still depend on B")
	}
}

// buildFig4 is the paper's Figure 4 / Examples 6 and 7: P1 reads A [1,5]
// and B [5,7], writes C [2,3] and D [8,8].
func buildFig4(t *testing.T) *prov.Trace {
	t.Helper()
	tr := prov.NewTrace(prov.CombinedDefault())
	for _, n := range []struct{ id, typ string }{
		{"A", prov.TypeFile}, {"B", prov.TypeFile}, {"C", prov.TypeFile},
		{"D", prov.TypeFile}, {"P1", prov.TypeProcess},
	} {
		tr.AddNode(n.id, n.typ, n.id)
	}
	tr.AddEdge("A", "P1", prov.EdgeReadFrom, iv(1, 5))
	tr.AddEdge("B", "P1", prov.EdgeReadFrom, iv(5, 7))
	tr.AddEdge("P1", "C", prov.EdgeHasWritten, iv(2, 3))
	tr.AddEdge("P1", "D", prov.EdgeHasWritten, iv(8, 8))
	return tr
}

func TestBlackboxDepsDefinition8(t *testing.T) {
	// Example 6: both C and D are (conservatively) data dependent on A and B.
	tr := buildFig4(t)
	d := BlackboxDeps(tr)
	for _, out := range []string{"C", "D"} {
		for _, in := range []string{"A", "B"} {
			if !d.Has(out, in) {
				t.Errorf("Definition 8: %s must depend on %s", out, in)
			}
		}
	}
	if d.Has("A", "C") || d.Has("C", "D") {
		t.Error("Definition 8 produced reversed or file-file spurious deps")
	}
	if len(d) != 4 {
		t.Errorf("deps = %v", d.Sorted())
	}
}

func TestExample7TemporalPruning(t *testing.T) {
	// Example 7: C was written before P1 read B, so the inferred set must
	// exclude (C, B) while keeping (C, A) and (D, *).
	tr := buildFig4(t)
	inf := NewDefaultInferencer(tr)
	if inf.DependsOn("C", "B") {
		t.Fatal("C must not depend on B (written before B was read)")
	}
	if !inf.DependsOn("C", "A") {
		t.Fatal("C must depend on A")
	}
	if !inf.DependsOn("D", "A") || !inf.DependsOn("D", "B") {
		t.Fatal("D must depend on both inputs")
	}
}

func TestExecutedProcessChain(t *testing.T) {
	// Definition 8's process chains: P1 executed P2; P1 read A, P2 wrote B.
	tr := prov.NewTrace(prov.CombinedDefault())
	tr.AddNode("A", prov.TypeFile, "")
	tr.AddNode("B", prov.TypeFile, "")
	tr.AddNode("P1", prov.TypeProcess, "")
	tr.AddNode("P2", prov.TypeProcess, "")
	tr.AddEdge("A", "P1", prov.EdgeReadFrom, iv(1, 2))
	tr.AddEdge("P1", "P2", prov.EdgeExecuted, prov.Point(3))
	tr.AddEdge("P2", "B", prov.EdgeHasWritten, iv(4, 5))
	d := BlackboxDeps(tr)
	if !d.Has("B", "A") {
		t.Fatal("dependency through executed chain missing")
	}
	inf := NewDefaultInferencer(tr)
	if !inf.DependsOn("B", "A") {
		t.Fatal("temporal inference must confirm the chain dependency")
	}
}

// buildFig2 mirrors the combined trace of the paper's Figure 2 (see the
// prov package tests for the node/edge inventory).
func buildFig2(t *testing.T) *prov.Trace {
	t.Helper()
	tr := prov.NewTrace(prov.CombinedDefault())
	nodes := []struct{ id, typ string }{
		{"P1", prov.TypeProcess}, {"P2", prov.TypeProcess},
		{"A", prov.TypeFile}, {"B", prov.TypeFile}, {"C", prov.TypeFile},
		{"Insert1", prov.TypeInsert}, {"Insert2", prov.TypeInsert}, {"Query", prov.TypeQuery},
		{"t1", prov.TypeTuple}, {"t2", prov.TypeTuple}, {"t3", prov.TypeTuple},
		{"t4", prov.TypeTuple}, {"t5", prov.TypeTuple},
	}
	for _, n := range nodes {
		tr.AddNode(n.id, n.typ, n.id)
	}
	edges := []struct {
		from, to, label string
		b, e            uint64
	}{
		{"A", "P1", prov.EdgeReadFrom, 1, 6},
		{"B", "P1", prov.EdgeReadFrom, 7, 8},
		{"P1", "Insert1", prov.EdgeRun, 5, 5},
		{"P1", "Insert2", prov.EdgeRun, 8, 8},
		{"Insert1", "t1", prov.EdgeHasReturned, 5, 5},
		{"Insert1", "t2", prov.EdgeHasReturned, 5, 5},
		{"Insert2", "t3", prov.EdgeHasReturned, 8, 8},
		{"t1", "Query", prov.EdgeHasRead, 9, 9},
		{"t3", "Query", prov.EdgeHasRead, 9, 9},
		{"P2", "Query", prov.EdgeRun, 9, 9},
		{"Query", "t4", prov.EdgeHasReturned, 9, 9},
		{"Query", "t5", prov.EdgeHasReturned, 9, 9},
		{"t4", "P2", prov.EdgeReadFrom, 9, 9},
		{"t5", "P2", prov.EdgeReadFrom, 9, 9},
		{"P2", "C", prov.EdgeHasWritten, 7, 12},
	}
	for _, e := range edges {
		if _, err := tr.AddEdge(e.from, e.to, e.label, iv(e.b, e.e)); err != nil {
			t.Fatal(err)
		}
	}
	for _, out := range []string{"t4", "t5"} {
		for _, in := range []string{"t1", "t3"} {
			tr.AddDep(in, out)
		}
	}
	return tr
}

func TestFig2CrossModelInference(t *testing.T) {
	tr := buildFig2(t)
	inf := NewDefaultInferencer(tr)

	// File C transitively depends on files A and B and tuples t1, t3, t4, t5.
	deps := inf.Dependencies("C")
	want := []string{"A", "B", "t1", "t3", "t4", "t5"}
	if !reflect.DeepEqual(deps, want) {
		t.Fatalf("Dependencies(C) = %v, want %v", deps, want)
	}

	// Nothing depends on t2 (it was inserted but never read) — the paper's
	// motivation for excluding it from packages.
	if got := inf.Dependents("t2"); len(got) != 0 {
		t.Fatalf("Dependents(t2) = %v, want none", got)
	}

	// t4 depends on its lineage and, cross-model, on the files P1 read
	// before running the inserts.
	if !inf.DependsOn("t4", "t1") || !inf.DependsOn("t4", "A") {
		t.Fatal("t4 dependencies missing")
	}
	if inf.DependsOn("t4", "t2") {
		t.Fatal("t4 must not depend on t2")
	}
	// t1 must not depend on B: B was read [7,8], after Insert1 ran at 5.
	if inf.DependsOn("t1", "B") {
		t.Fatal("t1 must not depend on B (temporal causality)")
	}
	// t3 (Insert2 at 8) does depend on B.
	if !inf.DependsOn("t3", "B") {
		t.Fatal("t3 must depend on B")
	}
}

func TestActivityDependsOn(t *testing.T) {
	tr := buildFig2(t)
	inf := NewDefaultInferencer(tr)
	if !inf.ActivityDependsOn("Query", "t1") {
		t.Fatal("Query's state must depend on t1")
	}
	if inf.ActivityDependsOn("Query", "t2") {
		t.Fatal("Query must not depend on t2")
	}
	if !inf.ActivityDependsOn("P2", "A") {
		t.Fatal("P2 must depend on A through the DB")
	}
	// Degenerate arguments.
	if inf.ActivityDependsOn("missing", "t1") || inf.ActivityDependsOn("Query", "missing") {
		t.Fatal("missing nodes must yield false")
	}
	if inf.ActivityDependsOn("t1", "t2") {
		t.Fatal("entity as activity must yield false")
	}
}

func TestAllMatchesPairwise(t *testing.T) {
	tr := buildFig2(t)
	inf := NewDefaultInferencer(tr)
	all := inf.All()
	// Cross-check All against DependsOn for every entity pair.
	entities := []string{"A", "B", "C", "t1", "t2", "t3", "t4", "t5"}
	for _, e := range entities {
		for _, d := range entities {
			if e == d {
				continue
			}
			if all.Has(e, d) != inf.DependsOn(e, d) {
				t.Errorf("All() and DependsOn disagree for (%s, %s)", e, d)
			}
		}
	}
}

func TestDependentsOfNonEntity(t *testing.T) {
	tr := buildFig2(t)
	inf := NewDefaultInferencer(tr)
	if len(inf.Dependents("P1")) != 0 {
		t.Fatal("Dependents of an activity must be empty")
	}
	if len(inf.Dependents("missing")) != 0 {
		t.Fatal("Dependents of a missing node must be empty")
	}
}

func TestSetSorted(t *testing.T) {
	s := Set{}
	s.Add("b", "x")
	s.Add("a", "y")
	s.Add("a", "x")
	got := s.Sorted()
	want := []Pair{{"a", "x"}, {"a", "y"}, {"b", "x"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Sorted = %v", got)
	}
}

func TestLineageDepsFromTrace(t *testing.T) {
	tr := buildFig2(t)
	ld := LineageDeps(tr)
	if !ld.Has("t4", "t1") || !ld.Has("t5", "t3") {
		t.Fatal("lineage deps missing")
	}
	if ld.Has("t4", "t2") {
		t.Fatal("t2 wrongly in lineage deps")
	}
	if len(ld) != 4 {
		t.Fatalf("lineage deps = %v", ld.Sorted())
	}
}

// Soundness spot check (Theorem 1): every inferred dependency must be
// witnessed by a path in the trace (axiom 2).
func TestInferredDependenciesHavePaths(t *testing.T) {
	tr := buildFig2(t)
	inf := NewDefaultInferencer(tr)
	reachable := func(from, to string) bool {
		seen := map[string]bool{from: true}
		queue := []string{from}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			if n == to {
				return true
			}
			for _, e := range tr.Out(n) {
				if !seen[e.To.ID] {
					seen[e.To.ID] = true
					queue = append(queue, e.To.ID)
				}
			}
		}
		return false
	}
	for p := range inf.All() {
		if !reachable(p.DependsOn, p.Entity) {
			t.Errorf("inferred dependency (%s <- %s) has no witnessing path", p.Entity, p.DependsOn)
		}
	}
}

// Completeness check: naive inference is a superset of temporal inference
// (temporal conditions only prune).
func TestNaiveIsSuperset(t *testing.T) {
	tr := buildFig2(t)
	inf := NewDefaultInferencer(tr)
	temporal := inf.All()
	inf.Naive = true
	naive := inf.All()
	for p := range temporal {
		if !naive[p] {
			t.Errorf("temporal dependency %v missing from naive set", p)
		}
	}
	if len(naive) < len(temporal) {
		t.Error("naive set smaller than temporal set")
	}
}
