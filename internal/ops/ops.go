// Package ops serves the operations HTTP endpoint of a standalone LDV
// server: GET / lists the routes, GET /metrics exposes the obs registry in
// Prometheus text format, GET /traces serves the request-trace flight
// recorder as JSON (with an optional ASCII waterfall form), GET /ash serves
// the Active Session History (top waits plus a time×state breakdown),
// GET /replication reports the node's replication role and positions (with
// POST /replication/promote for failover), and /debug/pprof/ mounts the
// standard net/http/pprof profiles. Everything except promote is read-only,
// and nothing carries authentication — bind it to a loopback or otherwise
// private address.
package ops

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"

	"ldv/internal/obs"
)

// Replication is the node's replication role as seen by the ops endpoint:
// repl.Primary and repl.Replica both satisfy it (the interface keeps this
// package free of a repl dependency).
type Replication interface {
	// ReplicationStatus reports role, positions, and lag as a JSON-ready map.
	ReplicationStatus() map[string]any
	// Promote makes a replica writable; on a primary it fails.
	Promote() error
}

// Option customizes the ops handler.
type Option func(*handlerConfig)

type handlerConfig struct {
	repl Replication
}

// WithReplication mounts /replication (status) and /replication/promote
// (failover) backed by r.
func WithReplication(r Replication) Option {
	return func(c *handlerConfig) { c.repl = r }
}

// Handler returns the ops endpoint for a registry (typically obs.Default()).
func Handler(reg *obs.Registry, opts ...Option) http.Handler {
	var cfg handlerConfig
	for _, o := range opts {
		o(&cfg)
	}
	mux := http.NewServeMux()
	// The index: a route listing, so an operator pointing a browser at the
	// ops port discovers the surface. The "/" pattern also catches every
	// unregistered path, which must 404 rather than serve the index.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "LDV ops endpoint")
		fmt.Fprintln(w)
		fmt.Fprintln(w, "GET  /metrics               Prometheus text exposition of the obs registry")
		fmt.Fprintln(w, "GET  /traces                flight-recorder traces (?limit=N, ?format=waterfall)")
		fmt.Fprintln(w, "GET  /statements            per-fingerprint statement statistics (JSON)")
		fmt.Fprintln(w, "GET  /ash                   active session history (?limit=N, ?buckets=N, ?format=json)")
		if cfg.repl != nil {
			fmt.Fprintln(w, "GET  /replication           replication role and positions (JSON)")
			fmt.Fprintln(w, "POST /replication/promote   promote this replica to writable")
		}
		fmt.Fprintln(w, "GET  /debug/pprof/          standard Go profiles")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, reg.Snapshot())
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		ServeTraces(w, r, reg)
	})
	mux.HandleFunc("/statements", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(reg.Statements().Snapshot())
	})
	mux.HandleFunc("/ash", func(w http.ResponseWriter, r *http.Request) {
		ServeASH(w, r)
	})
	if cfg.repl != nil {
		mux.HandleFunc("/replication", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(cfg.repl.ReplicationStatus())
		})
		mux.HandleFunc("/replication/promote", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "promote requires POST", http.StatusMethodNotAllowed)
				return
			}
			if err := cfg.repl.Promote(); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(cfg.repl.ReplicationStatus())
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeTraces handles one /traces request: the flight recorder's completed
// traces newest-first as JSON, truncated by ?limit=N, or as ASCII waterfalls
// with ?format=waterfall.
func ServeTraces(w http.ResponseWriter, r *http.Request, reg *obs.Registry) {
	traces := reg.Traces()
	if s := r.URL.Query().Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		if n < len(traces) {
			traces = traces[:n]
		}
	}
	if r.URL.Query().Get("format") == "waterfall" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for i := range traces {
			traces[i].Waterfall(w)
			fmt.Fprintln(w)
		}
		return
	}
	data, err := obs.MarshalTraces(traces)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

// writeMetrics renders a snapshot in the Prometheus text exposition format:
// counters and gauges one sample each, histograms as cumulative _bucket
// series (power-of-two le bounds) plus _sum and _count. Metrics with a
// registered description (obs.Describe / obs.DescribePrefix) get a # HELP
// line before their # TYPE line.
func writeMetrics(w http.ResponseWriter, s *obs.Snapshot) {
	for _, name := range sortedKeys(s.Counters) {
		m := promName(name)
		writeHelp(w, name, m)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m, m, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		m := promName(name)
		writeHelp(w, name, m)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", m, m, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		m := promName(name)
		writeHelp(w, name, m)
		fmt.Fprintf(w, "# TYPE %s histogram\n", m)
		idxs := make([]int, 0, len(h.Buckets))
		for i := range h.Buckets {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		var cum int64
		for _, i := range idxs {
			cum += h.Buckets[i]
			if b := obs.BucketBound(i); b >= 0 {
				fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", m, b, cum)
			}
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", m, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", m, h.Count)
	}
}

// writeHelp emits the # HELP line for a metric when the obs registry has a
// description for it. Prometheus help text must not contain raw newlines or
// backslashes; descriptions are plain one-liners, escaped defensively.
func writeHelp(w http.ResponseWriter, obsName, prom string) {
	d, ok := obs.Description(obsName)
	if !ok {
		return
	}
	d = strings.ReplaceAll(d, `\`, `\\`)
	d = strings.ReplaceAll(d, "\n", `\n`)
	fmt.Fprintf(w, "# HELP %s %s\n", prom, d)
}

// promName mangles a dotted obs metric name into a valid Prometheus metric
// name under the ldv_ namespace: "engine.exec_ns.select" →
// "ldv_engine_exec_ns_select".
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 4)
	b.WriteString("ldv_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
