package ops

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"ldv/internal/obs"
)

// /ash: the Active Session History. The default text form answers "where did
// wall-clock time go" at a glance — a top-waits table from the cumulative
// wait-event stats, then a time×state breakdown of the sample ring rendered
// as intensity characters. ?format=json returns the raw material (cumulative
// events plus samples) for programmatic consumers.

// defaultASHBuckets is the width of the text breakdown in time buckets.
const defaultASHBuckets = 60

// maxASHBuckets caps ?buckets= so one request cannot ask for an absurdly
// wide render.
const maxASHBuckets = 600

// ashDensity maps a bucket's sample share to an intensity character,
// lightest to heaviest.
const ashDensity = " .:-=+*#%@"

// ServeASH handles one /ash request. Query parameters: ?limit=N keeps only
// the most recent N samples (0 or absent = all), ?buckets=N sets the
// breakdown width, ?format=json switches to the JSON document. Malformed
// parameters answer 400.
func ServeASH(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 0
	if s := q.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	buckets := defaultASHBuckets
	if s := q.Get("buckets"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 || n > maxASHBuckets {
			http.Error(w, "bad buckets", http.StatusBadRequest)
			return
		}
		buckets = n
	}
	format := q.Get("format")
	if format != "" && format != "text" && format != "json" {
		http.Error(w, "bad format", http.StatusBadRequest)
		return
	}

	samples := obs.ASH().Samples()
	if limit > 0 && limit < len(samples) {
		samples = samples[len(samples)-limit:]
	}
	events := obs.WaitEventStats()

	if format == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Events  []obs.WaitEventStat `json:"events"`
			Samples []obs.ASHSample     `json:"samples"`
		}{events, samples})
		return
	}

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	writeTopWaits(w, events)
	fmt.Fprintln(w)
	writeASHBreakdown(w, samples, buckets)
}

// writeTopWaits renders the cumulative wait-event totals, heaviest first.
func writeTopWaits(w http.ResponseWriter, events []obs.WaitEventStat) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].TotalNS > events[j].TotalNS })
	fmt.Fprintf(w, "%-18s %10s %14s %14s  %s\n", "EVENT", "WAITS", "TOTAL", "MEAN", "DESCRIPTION")
	for _, e := range events {
		mean := time.Duration(0)
		if e.Count > 0 {
			mean = time.Duration(e.TotalNS / e.Count)
		}
		fmt.Fprintf(w, "%-18s %10d %14s %14s  %s\n",
			e.Name, e.Count, time.Duration(e.TotalNS), mean, e.Description)
	}
}

// writeASHBreakdown renders the sample ring as one row per session state
// (cpu, idle, and each observed wait event), with columns dividing the ring's
// time span into equal buckets. A cell's character encodes what share of the
// bucket's samples the row's state took, so a lock storm reads as a dark band
// on the lock.table row.
func writeASHBreakdown(w http.ResponseWriter, samples []obs.ASHSample, buckets int) {
	if len(samples) == 0 {
		fmt.Fprintln(w, "no ASH samples")
		return
	}
	minT, maxT := samples[0].TimeNS, samples[len(samples)-1].TimeNS
	span := maxT - minT
	if span <= 0 {
		span = 1
	}
	// rowKey: "cpu" and "idle" stand alone; waits key by event name (an idle
	// client.read wait keys as client.read, keeping idleness attributable).
	rowKey := func(s obs.ASHSample) string {
		if s.Event != "" {
			return s.Event
		}
		return s.State
	}
	counts := map[string][]int{}
	totals := make([]int, buckets)
	for _, s := range samples {
		b := int((s.TimeNS - minT) * int64(buckets) / (span + 1))
		if b >= buckets {
			b = buckets - 1
		}
		k := rowKey(s)
		if counts[k] == nil {
			counts[k] = make([]int, buckets)
		}
		counts[k][b]++
		totals[b]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	fmt.Fprintf(w, "ASH %d samples over %s (%d buckets, oldest left)\n",
		len(samples), time.Duration(span), buckets)
	for _, k := range keys {
		var row strings.Builder
		for b := 0; b < buckets; b++ {
			if totals[b] == 0 {
				row.WriteByte(' ')
				continue
			}
			// Scale the share into the density ramp; any presence at all
			// renders at least the lightest non-blank character.
			idx := counts[k][b] * (len(ashDensity) - 1) / totals[b]
			if idx == 0 && counts[k][b] > 0 {
				idx = 1
			}
			row.WriteByte(ashDensity[idx])
		}
		fmt.Fprintf(w, "%-18s |%s|\n", k, row.String())
	}
}
