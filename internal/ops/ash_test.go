package ops

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"ldv/internal/obs"
)

func TestIndexPage(t *testing.T) {
	h := Handler(testRegistry(t))
	code, body, ctype := get(t, h, "/")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("content type = %q", ctype)
	}
	for _, want := range []string{"/metrics", "/traces", "/statements", "/ash", "/debug/pprof/"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %s:\n%s", want, body)
		}
	}
	// Replication routes appear only when mounted.
	if strings.Contains(body, "/replication") {
		t.Error("index lists /replication without the option")
	}
	if _, body, _ := get(t, Handler(testRegistry(t), WithReplication(&fakeRepl{})), "/"); !strings.Contains(body, "/replication/promote") {
		t.Error("index missing /replication/promote with replication mounted")
	}
}

// TestUnknownRoute: the "/" pattern catches everything unregistered; those
// paths must 404, not serve the index.
func TestUnknownRoute(t *testing.T) {
	h := Handler(testRegistry(t))
	for _, path := range []string{"/nope", "/metrics/extra", "/ash/sub"} {
		if code, _, _ := get(t, h, path); code != http.StatusNotFound {
			t.Errorf("GET %s code = %d, want 404", path, code)
		}
	}
}

func TestASHEndpointBadParams(t *testing.T) {
	h := Handler(testRegistry(t))
	for _, path := range []string{
		"/ash?limit=oops", "/ash?limit=-1",
		"/ash?buckets=0", "/ash?buckets=oops", "/ash?buckets=100000",
		"/ash?format=bogus",
	} {
		if code, _, _ := get(t, h, path); code != http.StatusBadRequest {
			t.Errorf("GET %s code = %d, want 400", path, code)
		}
	}
}

func TestASHEndpointEmpty(t *testing.T) {
	obs.ResetASH()
	h := Handler(testRegistry(t))
	code, body, ctype := get(t, h, "/ash")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("content type = %q", ctype)
	}
	// The top-waits table renders the full taxonomy even with no samples.
	for _, want := range []string{"EVENT", "lock.table", "wal.group_commit", "no ASH samples"} {
		if !strings.Contains(body, want) {
			t.Errorf("empty /ash missing %q:\n%s", want, body)
		}
	}
}

func TestASHEndpoint(t *testing.T) {
	obs.ResetASH()
	obs.ASH().SetEnabled(true)
	obs.ASH().SetRate(2000)
	defer obs.ASH().SetRate(obs.DefaultASHRate)

	// A session parked in a lock wait long enough for the background sampler
	// (started by RegisterSession) to catch it repeatedly.
	st := obs.RegisterSession(9301, "opstest")
	defer obs.UnregisterSession(9301)
	st.StartStatement("fp-ops", "trace-ops")
	end := obs.WaitBegin(st, obs.WaitLockTable)
	deadline := time.Now().Add(2 * time.Second)
	for obs.ASH().Len() < 5 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	end()
	st.FinishStatement()
	if obs.ASH().Len() < 5 {
		t.Fatal("background sampler recorded no samples")
	}

	h := Handler(testRegistry(t))
	code, body, _ := get(t, h, "/ash")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	for _, want := range []string{"lock.table", "ASH", "buckets, oldest left"} {
		if !strings.Contains(body, want) {
			t.Errorf("/ash missing %q:\n%s", want, body)
		}
	}

	code, body, ctype := get(t, h, "/ash?format=json&limit=3&buckets=10")
	if code != http.StatusOK {
		t.Fatalf("json code = %d", code)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("json content type = %q", ctype)
	}
	var doc struct {
		Events  []obs.WaitEventStat `json:"events"`
		Samples []obs.ASHSample     `json:"samples"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("json decode: %v\n%s", err, body)
	}
	if len(doc.Events) != len(obs.WaitEvents()) {
		t.Errorf("events = %d, want %d", len(doc.Events), len(obs.WaitEvents()))
	}
	if len(doc.Samples) != 3 {
		t.Errorf("limited samples = %d, want 3", len(doc.Samples))
	}
	for _, s := range doc.Samples {
		if s.Session != 9301 || s.Proc != "opstest" {
			t.Errorf("sample = %+v", s)
		}
	}
}
