package ops

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"ldv/internal/obs"
)

// testRegistry builds a registry with one counter, one gauge, one histogram,
// and two completed traces.
func testRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry(64)
	obs.Describe("server.sessions_open", "Sessions currently open")
	obs.DescribePrefix("wire.msgs_out.", "Messages sent by kind")
	obs.DescribePrefix("engine.exec_ns.", "Statement latency by statement kind")
	reg.Counter("wire.msgs_out.Query").Add(7)
	reg.Gauge("server.sessions_open").Set(3)
	h := reg.Histogram("engine.exec_ns.select")
	h.Observe(100)
	h.Observe(2000)
	for i := 0; i < 2; i++ {
		root := reg.StartSpan("client.query")
		child := root.Child("server.query")
		child.End()
		root.End()
	}
	return reg
}

func get(t *testing.T, h http.Handler, path string) (int, string, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, string(body), rec.Result().Header.Get("Content-Type")
}

func TestMetricsEndpoint(t *testing.T) {
	h := Handler(testRegistry(t))
	code, body, ctype := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("content type = %q", ctype)
	}
	for _, want := range []string{
		"# HELP ldv_wire_msgs_out_Query Messages sent by kind",
		"# TYPE ldv_wire_msgs_out_Query counter",
		"ldv_wire_msgs_out_Query 7",
		"# HELP ldv_server_sessions_open Sessions currently open",
		"# TYPE ldv_server_sessions_open gauge",
		"ldv_server_sessions_open 3",
		"# HELP ldv_engine_exec_ns_select Statement latency by statement kind",
		"# TYPE ldv_engine_exec_ns_select histogram",
		"ldv_engine_exec_ns_select_count 2",
		"ldv_engine_exec_ns_select_sum 2100",
		`ldv_engine_exec_ns_select_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
	// A HELP line must precede its metric's TYPE line.
	if strings.Index(body, "# HELP ldv_server_sessions_open") > strings.Index(body, "# TYPE ldv_server_sessions_open") {
		t.Error("HELP line does not precede TYPE line")
	}
	// Bucket counts must be cumulative: each sample's value is >= the
	// previous bucket's on the same metric.
	var prev int64 = -1
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "ldv_engine_exec_ns_select_bucket{le=\"") ||
			strings.Contains(line, "+Inf") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = v
	}
	if prev < 0 {
		t.Fatal("no bucket lines found")
	}
}

func TestStatementsEndpoint(t *testing.T) {
	reg := testRegistry(t)
	reg.Statements().Record(0xabc, "SELECT a FROM t WHERE b = ?", 100, 50, 1000, 3, false, "deadbeef")
	reg.Statements().Record(0xabc, "SELECT a FROM t WHERE b = ?", 110, 40, 1100, 2, true, "")
	h := Handler(reg)
	code, body, ctype := get(t, h, "/statements")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("content type = %q", ctype)
	}
	for _, want := range []string{
		`"text":"SELECT a FROM t WHERE b = ?"`,
		`"calls":2`,
		`"errors":1`,
		`"rows":5`,
		`"last_trace_id":"deadbeef"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("statements output missing %q:\n%s", want, body)
		}
	}
}

func TestTracesEndpointJSON(t *testing.T) {
	h := Handler(testRegistry(t))
	code, body, ctype := get(t, h, "/traces")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if ctype != "application/json" {
		t.Errorf("content type = %q", ctype)
	}
	traces, err := obs.ParseTraces([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("traces = %d", len(traces))
	}
	if traces[0].Root != "client.query" || len(traces[0].Spans) != 2 {
		t.Errorf("unexpected trace: %+v", traces[0])
	}
}

func TestTracesEndpointLimit(t *testing.T) {
	h := Handler(testRegistry(t))
	_, body, _ := get(t, h, "/traces?limit=1")
	traces, err := obs.ParseTraces([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("limited traces = %d", len(traces))
	}
	if code, _, _ := get(t, h, "/traces?limit=oops"); code != http.StatusBadRequest {
		t.Errorf("bad limit code = %d", code)
	}
	if code, _, _ := get(t, h, "/traces?limit=-1"); code != http.StatusBadRequest {
		t.Errorf("negative limit code = %d", code)
	}
}

func TestTracesEndpointWaterfall(t *testing.T) {
	h := Handler(testRegistry(t))
	code, body, ctype := get(t, h, "/traces?format=waterfall")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("content type = %q", ctype)
	}
	if !strings.Contains(body, "client.query") || !strings.Contains(body, "server.query") {
		t.Errorf("waterfall missing spans:\n%s", body)
	}
}

func TestPprofIndex(t *testing.T) {
	h := Handler(testRegistry(t))
	if code, _, _ := get(t, h, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof index code = %d", code)
	}
}

// FuzzTracesHandler throws arbitrary query strings at the /traces handler —
// it must never panic and must answer every request with 200 or 400.
func FuzzTracesHandler(f *testing.F) {
	f.Add("limit=1")
	f.Add("limit=oops")
	f.Add("limit=-1")
	f.Add("format=waterfall")
	f.Add("limit=1&format=waterfall")
	f.Add("limit=99999999999999999999")
	f.Add("%zz")
	reg := obs.NewRegistry(64)
	sp := reg.StartSpan("client.query")
	sp.Child("server.query").End()
	sp.End()
	f.Fuzz(func(t *testing.T, query string) {
		req := httptest.NewRequest("GET", "/traces", nil)
		req.URL.RawQuery = query
		rec := httptest.NewRecorder()
		ServeTraces(rec, req, reg)
		if rec.Code != http.StatusOK && rec.Code != http.StatusBadRequest {
			t.Fatalf("query %q: code = %d", query, rec.Code)
		}
	})
}

// fakeRepl is a Replication stub: a replica that records promotion.
type fakeRepl struct{ promoted bool }

func (f *fakeRepl) ReplicationStatus() map[string]any {
	role := "replica"
	if f.promoted {
		role = "promoted"
	}
	return map[string]any{"role": role, "applied_seq": 42}
}

func (f *fakeRepl) Promote() error { f.promoted = true; return nil }

func TestReplicationEndpoint(t *testing.T) {
	fr := &fakeRepl{}
	h := Handler(testRegistry(t), WithReplication(fr))
	code, body, ctype := get(t, h, "/replication")
	if code != http.StatusOK {
		t.Fatalf("status code = %d", code)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("content type = %q", ctype)
	}
	if !strings.Contains(body, `"role":"replica"`) || !strings.Contains(body, `"applied_seq":42`) {
		t.Errorf("status body = %s", body)
	}
	// Promote requires POST.
	if code, _, _ := get(t, h, "/replication/promote"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET promote code = %d", code)
	}
	req := httptest.NewRequest("POST", "/replication/promote", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !fr.promoted {
		t.Fatalf("promote: code=%d promoted=%v", rec.Code, fr.promoted)
	}
	if _, body, _ := get(t, h, "/replication"); !strings.Contains(body, `"role":"promoted"`) {
		t.Errorf("post-promote body = %s", body)
	}
	// Without the option the endpoint is absent.
	if code, _, _ := get(t, Handler(testRegistry(t)), "/replication"); code != http.StatusNotFound {
		t.Errorf("unmounted /replication code = %d", code)
	}
}
