// Package scenarios provides the ready-made demo applications the ldv-audit
// and ldv-exec command-line tools operate on. Because simulated binaries
// are Go functions, a package can only be re-executed by a tool that knows
// the binaries' behaviour — the scenario registry is that knowledge, the
// simulation's stand-in for loading machine code from the packaged files.
package scenarios

import (
	"fmt"
	"strings"

	"ldv/internal/engine"
	"ldv/internal/ldv"
	"ldv/internal/osim"
	"ldv/internal/tpch"
)

// Scenario bundles a machine initializer with its application binaries.
type Scenario struct {
	Name string
	// Describe summarizes the scenario for -list output.
	Describe string
	// Setup prepares a machine (schema, data, input files).
	Setup func(m *ldv.Machine) error
	// Apps returns the application binaries in execution order.
	Apps func() []ldv.App
	// Outputs lists the files whose contents prove a successful (re)run.
	Outputs []string
}

// Programs returns the binary-to-behaviour map replay needs.
func (s *Scenario) Programs() map[string]osim.Program {
	out := map[string]osim.Program{}
	for _, a := range s.Apps() {
		out[a.Binary] = a.Prog
	}
	return out
}

// ByName resolves a scenario.
func ByName(name string) (*Scenario, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("unknown scenario %q (try -list)", name)
}

// All lists the available scenarios.
func All() []*Scenario {
	return []*Scenario{Alice(), TPCH()}
}

// Alice is the paper's running example (§I/§II): process P1 loads a tuple
// from a file, process P2 queries the DB and writes the result file.
func Alice() *Scenario {
	return &Scenario{
		Name:     "alice",
		Describe: "the paper's halo-finder example: loader inserts from a file, halofinder queries and writes results",
		Outputs:  []string{"/home/alice/output.txt"},
		Setup: func(m *ldv.Machine) error {
			if _, err := m.DB.ExecScript(`
				CREATE TABLE sky (id INTEGER PRIMARY KEY, region TEXT, brightness FLOAT);
				INSERT INTO sky VALUES (1, 'north', 5.5), (2, 'north', 11.25),
					(3, 'south', 14.0), (4, 'east', 7.75), (5, 'south', 12.5);`,
				engine.ExecOptions{}); err != nil {
				return err
			}
			if err := m.PersistData(); err != nil {
				return err
			}
			return m.Kernel.FS().WriteFile("/home/alice/input.csv", []byte("6,west,19.5\n"))
		},
		Apps: func() []ldv.App {
			loader := ldv.App{
				Binary: "/home/alice/bin/loader",
				Libs:   ldv.ClientLibs(),
				Size:   96 << 10,
				Prog: func(p *osim.Process) error {
					data, err := p.ReadFile("/home/alice/input.csv")
					if err != nil {
						return err
					}
					parts := strings.Split(strings.TrimSpace(string(data)), ",")
					if len(parts) != 3 {
						return fmt.Errorf("loader: malformed input")
					}
					conn, err := ldv.Dial(p)
					if err != nil {
						return err
					}
					defer conn.Close()
					_, err = conn.Exec(fmt.Sprintf(
						"INSERT INTO sky VALUES (%s, '%s', %s)", parts[0], parts[1], parts[2]))
					return err
				},
			}
			halofinder := ldv.App{
				Binary: "/home/alice/bin/halofinder",
				Libs:   ldv.ClientLibs(),
				Size:   160 << 10,
				Prog: func(p *osim.Process) error {
					conn, err := ldv.Dial(p)
					if err != nil {
						return err
					}
					defer conn.Close()
					res, err := conn.Query(
						"SELECT id, region, brightness FROM sky WHERE brightness > 10 ORDER BY brightness DESC")
					if err != nil {
						return err
					}
					var sb strings.Builder
					sb.WriteString("halo candidates:\n")
					for _, row := range res.Rows {
						fmt.Fprintf(&sb, "  id=%s region=%s brightness=%s\n", row[0], row[1], row[2])
					}
					return p.WriteFile("/home/alice/output.txt", []byte(sb.String()))
				},
			}
			return []ldv.App{loader, halofinder}
		},
	}
}

// TPCHConfig is the scale the tpch scenario runs at.
var TPCHConfig = tpch.Config{SF: 0.002, Seed: 42}

// TPCH is the §IX-A evaluation application at demo scale: insert into
// orders, run query Q1-1 repeatedly, update orders.
func TPCH() *Scenario {
	cfg := TPCHConfig
	return &Scenario{
		Name:     "tpch",
		Describe: fmt.Sprintf("the paper's evaluation workload (insert/select/update over TPC-H SF %g)", cfg.SF),
		Outputs:  []string{"/home/alice/q1.out"},
		Setup: func(m *ldv.Machine) error {
			if _, err := tpch.Load(m.DB, cfg); err != nil {
				return err
			}
			return m.PersistData()
		},
		Apps: func() []ldv.App {
			app := ldv.App{
				Binary: "/usr/bin/tpch-app",
				Libs:   ldv.ClientLibs(),
				Size:   180 << 10,
				Prog: func(p *osim.Process) error {
					q, err := tpch.QueryByID(cfg, "Q1-1")
					if err != nil {
						return err
					}
					w := tpch.NewWorkload(cfg, q)
					w.NumInserts, w.NumSelects, w.NumUpdates = 50, 5, 20
					conn, err := ldv.Dial(p)
					if err != nil {
						return err
					}
					defer conn.Close()
					if err := w.InsertStep(conn); err != nil {
						return err
					}
					var rows int
					for i := 0; i < w.NumSelects; i++ {
						res, err := conn.Query(q.SQL)
						if err != nil {
							return err
						}
						rows = len(res.Rows)
					}
					if err := w.UpdateStep(conn); err != nil {
						return err
					}
					return p.WriteFile("/home/alice/q1.out",
						[]byte(fmt.Sprintf("query %s returned %d rows\n", q.ID, rows)))
				},
			}
			return []ldv.App{app}
		},
	}
}
