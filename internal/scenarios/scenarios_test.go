package scenarios

import (
	"testing"

	"ldv/internal/ldv"
	"ldv/internal/pack"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"alice", "tpch"} {
		s, err := ByName(name)
		if err != nil || s.Name != name {
			t.Fatalf("ByName(%q): %v %v", name, s, err)
		}
		if s.Describe == "" || len(s.Outputs) == 0 {
			t.Errorf("%s: incomplete scenario", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown scenario must fail")
	}
	if len(All()) != 2 {
		t.Fatalf("All() = %d", len(All()))
	}
}

// runScenario performs the full audit -> package -> replay cycle for a
// scenario in one mode and verifies the outputs match.
func runScenario(t *testing.T, name, mode string) {
	t.Helper()
	sc, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ldv.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Setup(m); err != nil {
		t.Fatal(err)
	}
	apps := sc.Apps()
	var opts ldv.AuditOptions
	opts.CollectLineage = mode == "included"
	aud, err := ldv.AuditWithOptions(m, apps, opts)
	if err != nil {
		t.Fatal(err)
	}
	originals := map[string][]byte{}
	for _, o := range sc.Outputs {
		data, err := m.Kernel.FS().ReadFile(o)
		if err != nil {
			t.Fatalf("output %s missing after audit: %v", o, err)
		}
		originals[o] = data
	}
	var pkg *pack.Archive
	if mode == "included" {
		pkg, err = ldv.BuildServerIncluded(m, aud, apps)
	} else {
		pkg, err = ldv.BuildServerExcluded(m, aud, apps)
	}
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := ldv.Replay(pkg, sc.Programs())
	if err != nil {
		t.Fatal(err)
	}
	for o, want := range originals {
		got, err := replayed.Kernel.FS().ReadFile(o)
		if err != nil {
			t.Fatalf("replayed output %s missing: %v", o, err)
		}
		if string(got) != string(want) {
			t.Fatalf("%s/%s: replay diverged", name, mode)
		}
	}
}

func TestAliceIncluded(t *testing.T) { runScenario(t, "alice", "included") }
func TestAliceExcluded(t *testing.T) { runScenario(t, "alice", "excluded") }
func TestTPCHIncluded(t *testing.T)  { runScenario(t, "tpch", "included") }
func TestTPCHExcluded(t *testing.T)  { runScenario(t, "tpch", "excluded") }
