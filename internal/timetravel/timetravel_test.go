package timetravel

import (
	"fmt"
	"testing"
	"time"

	"ldv/internal/engine"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		err  bool
	}{
		{in: "1000", want: Policy{Ticks: 1000}},
		{in: "0", want: Policy{}},
		{in: "10m", want: Policy{Wall: 10 * time.Minute}},
		{in: "1h30m", want: Policy{Wall: 90 * time.Minute}},
		{in: "bogus", err: true},
		{in: "-5", err: true}, // negative is neither a tick count nor a duration
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParsePolicy(%q): expected error, got %+v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParsePolicy(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	if !(Policy{}).Zero() || (Policy{Ticks: 1}).Zero() || (Policy{Wall: time.Second}).Zero() {
		t.Error("Policy.Zero misclassifies")
	}
}

func TestHorizonAtTickBound(t *testing.T) {
	v := &Vacuumer{policy: Policy{Ticks: 100}}
	if _, ok := v.horizonAt(time.Time{}, 50); ok {
		t.Error("window wider than history must keep everything")
	}
	if _, ok := v.horizonAt(time.Time{}, 100); ok {
		t.Error("window equal to history must keep everything")
	}
	if h, ok := v.horizonAt(time.Time{}, 500); !ok || h != 400 {
		t.Errorf("horizonAt(tick=500) = %d,%v, want 400,true", h, ok)
	}
}

func TestHorizonAtWallBound(t *testing.T) {
	base := time.Unix(1_000_000, 0)
	v := &Vacuumer{policy: Policy{Wall: 10 * time.Second}}
	for i := 0; i <= 20; i++ {
		v.samples = append(v.samples, sample{at: base.Add(time.Duration(i) * time.Second), tick: uint64(100 * i)})
	}
	now := base.Add(20 * time.Second)
	// Cutoff now-10s matches the sample at t=10s exactly → tick 1000.
	if h, ok := v.horizonAt(now, 2000); !ok || h != 1000 {
		t.Errorf("wall horizon = %d,%v, want 1000,true", h, ok)
	}
	// Between samples the conversion rounds down to the older sample.
	if h, ok := v.horizonAt(now.Add(500*time.Millisecond), 2000); !ok || h != 1000 {
		t.Errorf("between-sample horizon = %d,%v, want 1000,true", h, ok)
	}
	// No sample old enough: keep everything.
	v2 := &Vacuumer{policy: Policy{Wall: time.Hour}}
	v2.samples = v.samples
	if _, ok := v2.horizonAt(now, 2000); ok {
		t.Error("wall window with no old-enough sample must keep everything")
	}
}

func TestHorizonAtBothBoundsWiderWins(t *testing.T) {
	base := time.Unix(1_000_000, 0)
	v := &Vacuumer{policy: Policy{Ticks: 100, Wall: 10 * time.Second}}
	v.samples = []sample{{at: base, tick: 300}}
	now := base.Add(time.Minute)
	// Tick bound alone would allow 2000-100=1900; the wall bound pins the
	// horizon to the sample's tick 300. The smaller horizon (wider window)
	// must win.
	if h, ok := v.horizonAt(now, 2000); !ok || h != 300 {
		t.Errorf("combined horizon = %d,%v, want 300,true", h, ok)
	}
}

func TestVacuumerRunOncePrunesChurn(t *testing.T) {
	db := engine.NewDB(nil)
	for _, sql := range []string{
		"CREATE TABLE t (k INT, v INT)",
		"INSERT INTO t VALUES (1, 0)",
	} {
		if _, err := db.Exec(sql, engine.ExecOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 20; i++ {
		if _, err := db.Exec(fmt.Sprintf("UPDATE t SET v = %d WHERE k = 1", i), engine.ExecOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	v := NewVacuumer(db, Policy{Ticks: 2}, time.Hour)
	if got := db.RetainTicks(); got != 2 {
		t.Fatalf("NewVacuumer did not install the tick window: RetainTicks = %d", got)
	}
	vr, err := v.RunOnce(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if vr.Pruned == 0 {
		t.Fatal("RunOnce pruned nothing over a churned table")
	}
	if vr.Horizon == 0 || db.VacuumHorizon() != vr.Horizon {
		t.Fatalf("horizon not installed: result %d, db %d", vr.Horizon, db.VacuumHorizon())
	}
	// The head row survives every pass.
	res, err := db.Exec("SELECT v FROM t WHERE k = 1", engine.ExecOptions{})
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Int() != 20 {
		t.Fatalf("head read after vacuum: %v rows=%v", err, res.Rows)
	}
}

func TestVacuumerStartStop(t *testing.T) {
	db := engine.NewDB(nil)
	v := NewVacuumer(db, Policy{Ticks: 1}, time.Millisecond)
	v.Start()
	time.Sleep(20 * time.Millisecond)
	v.Stop() // must not hang or panic; double-checked by -race runs
}
