// Package timetravel drives version retention for the engine. It turns a
// configured retention window — expressed in logical ticks or wall-clock
// time — into tick horizons on the engine's logical timeline and runs the
// background vacuumer that periodically reclaims versions dead for longer
// than the window. Wall time is bridged to the logical clock by sampling
// (wall time, tick) pairs at each vacuum interval: the horizon for "keep
// the last 10 minutes" is the tick recorded at the newest sample at least
// that old. The conversion is conservative — between samples the horizon
// lags, never overshoots — so a wall-time window never reclaims a version
// younger than requested.
package timetravel

import (
	"strconv"
	"sync"
	"time"

	"ldv/internal/engine"
)

// Policy is a retention window. Zero values disable the respective bound;
// with both set the wider window (the smaller horizon) wins, so nothing
// either bound would keep is reclaimed.
type Policy struct {
	Ticks uint64        // retain versions dead fewer than this many ticks
	Wall  time.Duration // retain versions dead less than this long
}

// ParsePolicy parses a -retain flag value: a bare non-negative integer is a
// tick count, anything else must parse as a Go duration ("10m", "1h30m").
func ParsePolicy(s string) (Policy, error) {
	if n, err := strconv.ParseUint(s, 10, 64); err == nil {
		return Policy{Ticks: n}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return Policy{}, err
	}
	return Policy{Wall: d}, nil
}

// Zero reports whether the policy retains everything (no vacuuming).
func (p Policy) Zero() bool { return p.Ticks == 0 && p.Wall == 0 }

// sample is one bridge point between the wall clock and the logical clock.
type sample struct {
	at   time.Time
	tick uint64
}

// Vacuumer runs periodic vacuum passes against one database under a
// retention policy. Start it once; Stop blocks until the loop exits.
type Vacuumer struct {
	db       *engine.DB
	policy   Policy
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}

	mu      sync.Mutex
	samples []sample // wall→tick bridge, oldest first, bounded
}

// maxSamples bounds the wall→tick bridge ring. At the default interval the
// window covers days of history — far beyond any sane wall retention.
const maxSamples = 4096

// NewVacuumer returns a stopped vacuumer. interval ≤ 0 defaults to 1s.
func NewVacuumer(db *engine.DB, policy Policy, interval time.Duration) *Vacuumer {
	if interval <= 0 {
		interval = time.Second
	}
	// Bare VACUUM statements apply the same tick window the vacuumer does.
	db.SetRetainTicks(policy.Ticks)
	return &Vacuumer{db: db, policy: policy, interval: interval,
		stop: make(chan struct{}), done: make(chan struct{})}
}

// Start launches the background loop. No-op policy still samples the
// wall→tick bridge so a later policy change has history to convert against.
func (v *Vacuumer) Start() {
	go func() {
		defer close(v.done)
		t := time.NewTicker(v.interval)
		defer t.Stop()
		for {
			select {
			case <-v.stop:
				return
			case now := <-t.C:
				v.RunOnce(now)
			}
		}
	}()
}

// Stop terminates the loop and waits for it to exit.
func (v *Vacuumer) Stop() {
	close(v.stop)
	<-v.done
}

// RunOnce records one wall→tick sample and, when the policy yields a
// horizon, runs one vacuum pass. Exposed for tests and for foreground use.
func (v *Vacuumer) RunOnce(now time.Time) (engine.VacuumResult, error) {
	tick := v.db.ClockNow()
	v.mu.Lock()
	v.samples = append(v.samples, sample{at: now, tick: tick})
	if len(v.samples) > maxSamples {
		v.samples = v.samples[len(v.samples)-maxSamples:]
	}
	v.mu.Unlock()

	h, ok := v.horizonAt(now, tick)
	if !ok {
		return engine.VacuumResult{Horizon: v.db.VacuumHorizon()}, nil
	}
	return v.db.VacuumTo(h)
}

// horizonAt converts the policy into a tick horizon given the current wall
// time and tick. Returns false when the policy keeps everything (or a
// wall-time window has no old-enough sample yet).
func (v *Vacuumer) horizonAt(now time.Time, tick uint64) (uint64, bool) {
	if v.policy.Zero() {
		return 0, false
	}
	h := tick // start wide; each bound can only lower it
	bounded := false
	if v.policy.Ticks > 0 {
		if v.policy.Ticks >= tick {
			return 0, false
		}
		h = tick - v.policy.Ticks
		bounded = true
	}
	if v.policy.Wall > 0 {
		cutoff := now.Add(-v.policy.Wall)
		wh, ok := v.tickAt(cutoff)
		if !ok {
			return 0, false // no bridge sample that old yet: keep everything
		}
		if !bounded || wh < h {
			h = wh
		}
	}
	return h, true
}

// tickAt returns the logical tick of the newest bridge sample at or before
// the wall cutoff.
func (v *Vacuumer) tickAt(cutoff time.Time) (uint64, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for i := len(v.samples) - 1; i >= 0; i-- {
		if !v.samples[i].at.After(cutoff) {
			return v.samples[i].tick, true
		}
	}
	return 0, false
}
