// Package diskfs adapts a real on-disk directory to the engine.FileSystem
// interface, letting the database engine persist its data directory to the
// host filesystem (used by the standalone ldvdb server).
package diskfs

import (
	"os"
	"path/filepath"
	"strings"
)

// FS roots all paths under Dir.
type FS struct {
	Dir string
}

// New returns a disk filesystem rooted at dir.
func New(dir string) *FS { return &FS{Dir: dir} }

// resolve maps a virtual absolute path into the root directory, preventing
// escapes via "..".
func (f *FS) resolve(p string) string {
	clean := filepath.Clean("/" + strings.TrimPrefix(p, "/"))
	return filepath.Join(f.Dir, filepath.FromSlash(clean))
}

// WriteFile implements engine.FileSystem.
func (f *FS) WriteFile(path string, data []byte) error {
	full := f.resolve(path)
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return err
	}
	return os.WriteFile(full, data, 0o644)
}

// ReadFile implements engine.FileSystem.
func (f *FS) ReadFile(path string) ([]byte, error) {
	return os.ReadFile(f.resolve(path))
}

// ReadDir implements engine.FileSystem.
func (f *FS) ReadDir(path string) ([]string, error) {
	entries, err := os.ReadDir(f.resolve(path))
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names, nil
}

// MkdirAll implements engine.FileSystem.
func (f *FS) MkdirAll(path string) error {
	return os.MkdirAll(f.resolve(path), 0o755)
}

// Symlink satisfies the package-extraction surface.
func (f *FS) Symlink(target, linkPath string) error {
	full := f.resolve(linkPath)
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return err
	}
	return os.Symlink(target, full)
}
