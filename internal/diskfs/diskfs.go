// Package diskfs adapts a real on-disk directory to the engine.FileSystem
// interface, letting the database engine persist its data directory to the
// host filesystem (used by the standalone ldvdb server).
package diskfs

import (
	"os"
	"path/filepath"
	"strings"
)

// FS roots all paths under Dir.
type FS struct {
	Dir string
}

// New returns a disk filesystem rooted at dir.
func New(dir string) *FS { return &FS{Dir: dir} }

// resolve maps a virtual absolute path into the root directory, preventing
// escapes via "..".
func (f *FS) resolve(p string) string {
	clean := filepath.Clean("/" + strings.TrimPrefix(p, "/"))
	return filepath.Join(f.Dir, filepath.FromSlash(clean))
}

// WriteFile implements engine.FileSystem. Per the interface's atomicity
// contract the replacement is crash-atomic: the data is written to a
// temporary file, synced, and renamed over the target, so a reader never
// observes a partial mix of old and new contents.
func (f *FS) WriteFile(path string, data []byte) error {
	full := f.resolve(path)
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(full), ".tmp-"+filepath.Base(full)+"-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), full); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// AppendFile implements engine.FileAppender: an fsynced append, the WAL's
// group-commit flush unit. A crash mid-call may leave a prefix of data at
// the tail — the torn-record case the WAL's checksums detect.
func (f *FS) AppendFile(path string, data []byte) error {
	full := f.resolve(path)
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return err
	}
	file, err := os.OpenFile(full, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := file.Write(data); err == nil {
		err = file.Sync()
	}
	if cerr := file.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// Remove implements engine.FileRemover.
func (f *FS) Remove(path string) error {
	return os.Remove(f.resolve(path))
}

// ReadFile implements engine.FileSystem.
func (f *FS) ReadFile(path string) ([]byte, error) {
	return os.ReadFile(f.resolve(path))
}

// ReadDir implements engine.FileSystem.
func (f *FS) ReadDir(path string) ([]string, error) {
	entries, err := os.ReadDir(f.resolve(path))
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names, nil
}

// MkdirAll implements engine.FileSystem.
func (f *FS) MkdirAll(path string) error {
	return os.MkdirAll(f.resolve(path), 0o755)
}

// Symlink satisfies the package-extraction surface.
func (f *FS) Symlink(target, linkPath string) error {
	full := f.resolve(linkPath)
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return err
	}
	return os.Symlink(target, full)
}
