package diskfs

import (
	"testing"

	"ldv/internal/engine"
)

func TestRoundTripThroughEngine(t *testing.T) {
	fs := New(t.TempDir())
	db := engine.NewDB(nil)
	if _, err := db.ExecScript(`
		CREATE TABLE t (a INT PRIMARY KEY, b TEXT);
		INSERT INTO t VALUES (1, 'one'), (2, 'two');`, engine.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(fs, "/data"); err != nil {
		t.Fatal(err)
	}
	db2 := engine.NewDB(nil)
	if err := db2.LoadDir(fs, "/data"); err != nil {
		t.Fatal(err)
	}
	res, err := db2.Exec("SELECT b FROM t WHERE a = 2", engine.ExecOptions{})
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Str() != "two" {
		t.Fatalf("round trip: %v %v", res, err)
	}
}

func TestPathEscapePrevented(t *testing.T) {
	dir := t.TempDir()
	fs := New(dir)
	if err := fs.WriteFile("/../../escape.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// The file must land inside the root, not outside it.
	if _, err := fs.ReadFile("/escape.txt"); err != nil {
		t.Fatalf("escape path not contained: %v", err)
	}
}

func TestReadDirAndMkdir(t *testing.T) {
	fs := New(t.TempDir())
	if err := fs.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	fs.WriteFile("/a/x.tbl", []byte("1"))
	fs.WriteFile("/a/y.tbl", []byte("2"))
	names, err := fs.ReadDir("/a")
	if err != nil || len(names) != 3 {
		t.Fatalf("readdir: %v %v", names, err)
	}
	if _, err := fs.ReadDir("/missing"); err == nil {
		t.Fatal("missing dir must error")
	}
	if _, err := fs.ReadFile("/missing"); err == nil {
		t.Fatal("missing file must error")
	}
}
