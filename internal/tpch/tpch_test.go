package tpch

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"ldv/internal/engine"
	"ldv/internal/sqlparse"
)

func loadTest(t *testing.T, cfg Config) (*engine.DB, Stats) {
	t.Helper()
	db := engine.NewDB(nil)
	stats, err := Load(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db, stats
}

func count(t *testing.T, db *engine.DB, table string) int64 {
	t.Helper()
	res, err := db.Exec("SELECT count(*) FROM "+table, engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows[0][0].Int()
}

func TestCountsMatchSpecRatios(t *testing.T) {
	cfg := Config{SF: 0.01, Seed: 1}
	c := cfg.Counts()
	if c.Region != 5 || c.Nation != 25 {
		t.Fatal("fixed tables wrong")
	}
	if c.Supplier != 100 || c.Customer != 1500 || c.Orders != 15000 {
		t.Fatalf("counts = %+v", c)
	}
	// Minimums kick in at tiny scales.
	tiny := Config{SF: 0.0001}.Counts()
	if tiny.Supplier < 10 || tiny.Orders < 150 {
		t.Fatalf("tiny counts = %+v", tiny)
	}
}

func TestLoadCardinalities(t *testing.T) {
	cfg := Config{SF: 0.001, Seed: 7}
	db, stats := loadTest(t, cfg)
	c := cfg.Counts()
	for table, want := range map[string]int{
		"region": c.Region, "nation": c.Nation, "supplier": c.Supplier,
		"customer": c.Customer, "part": c.Part, "partsupp": c.PartSupp,
		"orders": c.Orders,
	} {
		if got := count(t, db, table); got != int64(want) {
			t.Errorf("%s rows = %d, want %d", table, got, want)
		}
	}
	li := count(t, db, "lineitem")
	if int(li) != stats.Lineitem {
		t.Fatalf("lineitem stats mismatch: %d vs %d", li, stats.Lineitem)
	}
	// ~4 lineitems per order.
	ratio := float64(li) / float64(c.Orders)
	if ratio < 3 || ratio > 5 {
		t.Errorf("lineitem/order ratio = %.2f", ratio)
	}
}

func TestLoadDeterministic(t *testing.T) {
	cfg := Config{SF: 0.001, Seed: 7}
	db1, _ := loadTest(t, cfg)
	db2, _ := loadTest(t, cfg)
	for _, table := range []string{"customer", "orders", "lineitem"} {
		r1, _ := db1.Exec("SELECT * FROM "+table+" ORDER BY prov_rowid LIMIT 20", engine.ExecOptions{})
		r2, _ := db2.Exec("SELECT * FROM "+table+" ORDER BY prov_rowid LIMIT 20", engine.ExecOptions{})
		if fmt.Sprint(r1.Rows) != fmt.Sprint(r2.Rows) {
			t.Fatalf("table %s not deterministic", table)
		}
	}
}

func TestForeignKeysInRange(t *testing.T) {
	cfg := Config{SF: 0.001, Seed: 7}
	db, _ := loadTest(t, cfg)
	c := cfg.Counts()
	res, err := db.Exec(fmt.Sprintf(
		"SELECT count(*) FROM lineitem WHERE l_orderkey < 1 OR l_orderkey > %d OR l_suppkey < 1 OR l_suppkey > %d",
		c.Orders, c.Supplier), engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 0 {
		t.Fatal("lineitem foreign keys out of range")
	}
	res, _ = db.Exec(fmt.Sprintf("SELECT count(*) FROM orders WHERE o_custkey < 1 OR o_custkey > %d", c.Customer), engine.ExecOptions{})
	if res.Rows[0][0].Int() != 0 {
		t.Fatal("orders foreign keys out of range")
	}
}

func TestAllQueriesParseAndRun(t *testing.T) {
	cfg := Config{SF: 0.001, Seed: 7}
	db, _ := loadTest(t, cfg)
	qs := Queries(cfg)
	if len(qs) != 18 {
		t.Fatalf("queries = %d, want 18", len(qs))
	}
	for _, q := range qs {
		if _, err := sqlparse.Parse(q.SQL); err != nil {
			t.Errorf("%s does not parse: %v", q.ID, err)
			continue
		}
		if _, err := db.Exec(q.SQL, engine.ExecOptions{}); err != nil {
			t.Errorf("%s does not run: %v", q.ID, err)
		}
	}
}

func TestQ1SelectivityLadder(t *testing.T) {
	cfg := Config{SF: 0.01, Seed: 7}
	db, stats := loadTest(t, cfg)
	prev := 0
	for v := 1; v <= 5; v++ {
		q, err := QueryByID(cfg, fmt.Sprintf("Q1-%d", v))
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Exec(q.SQL, engine.ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := len(res.Rows)
		if got <= prev {
			t.Errorf("Q1-%d rows = %d, not increasing (prev %d)", v, got, prev)
		}
		prev = got
		// Measured selectivity within 2x of target (suppkeys are uniform).
		measured := float64(got) / float64(stats.Lineitem)
		if measured < q.Selectivity/2 || measured > q.Selectivity*2 {
			t.Errorf("Q1-%d selectivity %.4f, want ~%.4f", v, measured, q.Selectivity)
		}
	}
}

func TestQ2Q3SelectivityLadder(t *testing.T) {
	cfg := Config{SF: 0.01, Seed: 7}
	db, _ := loadTest(t, cfg)
	cust := cfg.Counts().Customer
	prevMatches := cust + 1
	for v := 1; v <= 4; v++ {
		q, err := QueryByID(cfg, fmt.Sprintf("Q2-%d", v))
		if err != nil {
			t.Fatal(err)
		}
		// Count matching customers directly.
		res, err := db.Exec(
			fmt.Sprintf("SELECT count(*) FROM customer WHERE c_name LIKE '%%%s%%'", q.Param),
			engine.ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		matches := int(res.Rows[0][0].Int())
		// Strictly decreasing until the ladder bottoms out at zero matches.
		if matches >= prevMatches && prevMatches > 0 {
			t.Errorf("Q2-%d matches = %d, not decreasing (prev %d)", v, matches, prevMatches)
		}
		prevMatches = matches
		want := q.Selectivity * float64(cust)
		if math.Abs(float64(matches)-want) > want*0.5+2 {
			t.Errorf("Q2-%d matched %d customers, want ~%.0f", v, matches, want)
		}
	}
	// Each Q3 shares its param ladder with Q2 and returns a single row.
	q3, _ := QueryByID(cfg, "Q3-2")
	res, err := db.Exec(q3.SQL, engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("Q3 rows = %d", len(res.Rows))
	}
}

func TestQ4GroupsPerOrder(t *testing.T) {
	cfg := Config{SF: 0.001, Seed: 7}
	db, _ := loadTest(t, cfg)
	q, _ := QueryByID(cfg, "Q4-5")
	res, err := db.Exec(q.SQL, engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// One row per distinct order with a qualifying lineitem.
	seen := map[int64]bool{}
	for _, row := range res.Rows {
		k := row[0].Int()
		if seen[k] {
			t.Fatal("duplicate group key")
		}
		seen[k] = true
	}
	if len(res.Rows) == 0 {
		t.Fatal("Q4 returned nothing")
	}
}

func TestQueryByIDUnknown(t *testing.T) {
	if _, err := QueryByID(DefaultConfig(), "Q9-1"); err == nil {
		t.Fatal("unknown id must fail")
	}
}

// engineExecer adapts a DB for workload runs in tests.
type engineExecer struct{ db *engine.DB }

func (e engineExecer) Query(sql string) (*engine.Result, error) {
	return e.db.Exec(sql, engine.ExecOptions{Proc: "test"})
}

func TestWorkloadSteps(t *testing.T) {
	cfg := Config{SF: 0.001, Seed: 7}
	db, _ := loadTest(t, cfg)
	q, _ := QueryByID(cfg, "Q1-1")
	w := NewWorkload(cfg, q)
	w.NumInserts, w.NumSelects, w.NumUpdates = 50, 3, 10

	before := count(t, db, "orders")
	ex := engineExecer{db}
	if err := w.Run(ex); err != nil {
		t.Fatal(err)
	}
	after := count(t, db, "orders")
	if after != before+50 {
		t.Fatalf("orders grew by %d, want 50", after-before)
	}
	// Updates touched existing rows.
	res, _ := db.Exec("SELECT count(*) FROM orders WHERE o_comment LIKE 'workload update%'", engine.ExecOptions{})
	if res.Rows[0][0].Int() != 10 {
		t.Fatalf("updated rows = %d", res.Rows[0][0].Int())
	}
	// Re-running the insert step must fail on pk conflicts? No — fresh keys
	// collide with the previous run's keys, which is the expected guard
	// against accidental double-execution.
	if err := w.InsertStep(ex); err == nil {
		t.Fatal("second insert step must conflict")
	}
}

func TestCustomerNamePadding(t *testing.T) {
	if CustomerName(42) != "Customer#000000042" {
		t.Fatalf("name = %q", CustomerName(42))
	}
	if !strings.Contains(CustomerName(1), "00000000") {
		t.Fatal("padding missing")
	}
}

func TestZeroParamsLadder(t *testing.T) {
	ps := zeroParams(150_000)
	if len(ps) != 4 {
		t.Fatalf("params = %d", len(ps))
	}
	// At SF 1 this must reproduce the paper's 4..7 zero ladder.
	if ps[0].zeros != 4 || ps[3].zeros != 7 {
		t.Fatalf("zeros = %+v", ps)
	}
	for i := 1; i < 4; i++ {
		if ps[i].sel >= ps[i-1].sel {
			t.Fatal("selectivities must decrease")
		}
	}
	if ps[0].sel < 0.5 || ps[0].sel > 0.8 {
		t.Fatalf("top selectivity = %.3f, want ~0.66", ps[0].sel)
	}
}
