package tpch

import (
	"fmt"
	"math"
	"strings"
)

// Query is one Table II variant: Qf-v with its PARAM substituted and its
// target selectivity.
type Query struct {
	// ID is the paper's label, e.g. "Q1-3".
	ID string
	// Family is 1–4, Variant is 1-based within the family.
	Family, Variant int
	// SQL is the executable text with PARAM substituted.
	SQL string
	// Param is the substituted parameter, as the paper's Table II prints it.
	Param string
	// Selectivity is the fraction of the probed table(s) the query touches
	// (the paper's Sel. column).
	Selectivity float64
}

// Queries builds the 18 Table II variants for a scale factor. Family 1 and
// 4 vary l_suppkey BETWEEN 1 AND PARAM with PARAM chosen as 1/2/5/10/25% of
// the supplier count (the paper's 10/20/50/100/250 at SF 1). Families 2 and
// 3 vary the number of zeros in c_name LIKE '%0…0%'; with TPC-H's 9-digit
// customer-name padding the number of matching customers is 10^(9-z), so
// the zero counts are recomputed from the customer cardinality to hit the
// paper's 66% / 6.6% / 0.66% / 0.06% ladder at any scale.
func Queries(cfg Config) []Query {
	cnt := cfg.Counts()
	var out []Query

	pcts := []float64{0.01, 0.02, 0.05, 0.10, 0.25}
	for v, pct := range pcts {
		param := int(math.Ceil(pct * float64(cnt.Supplier)))
		if param < 1 {
			param = 1
		}
		out = append(out, Query{
			ID: fmt.Sprintf("Q1-%d", v+1), Family: 1, Variant: v + 1,
			Param:       fmt.Sprintf("%d", param),
			Selectivity: float64(param) / float64(cnt.Supplier),
			SQL: fmt.Sprintf(`SELECT l_quantity, l_partkey, l_extendedprice, l_shipdate, l_receiptdate `+
				`FROM lineitem WHERE l_suppkey BETWEEN 1 AND %d`, param),
		})
	}

	zeros := zeroParams(cnt.Customer)
	for v, z := range zeros {
		param := strings.Repeat("0", z.zeros)
		out = append(out, Query{
			ID: fmt.Sprintf("Q2-%d", v+1), Family: 2, Variant: v + 1,
			Param: param, Selectivity: z.sel,
			SQL: fmt.Sprintf(`SELECT o_comment, l_comment FROM lineitem l, orders o, customer c `+
				`WHERE l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey AND c.c_name LIKE '%%%s%%'`, param),
		})
	}
	for v, z := range zeros {
		param := strings.Repeat("0", z.zeros)
		out = append(out, Query{
			ID: fmt.Sprintf("Q3-%d", v+1), Family: 3, Variant: v + 1,
			Param: param, Selectivity: z.sel,
			SQL: fmt.Sprintf(`SELECT count(*) FROM lineitem l, orders o, customer c `+
				`WHERE l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey AND c.c_name LIKE '%%%s%%'`, param),
		})
	}

	for v, pct := range pcts {
		param := int(math.Ceil(pct * float64(cnt.Supplier)))
		if param < 1 {
			param = 1
		}
		out = append(out, Query{
			ID: fmt.Sprintf("Q4-%d", v+1), Family: 4, Variant: v + 1,
			Param:       fmt.Sprintf("%d", param),
			Selectivity: float64(param) / float64(cnt.Supplier),
			SQL: fmt.Sprintf(`SELECT o_orderkey, AVG(l_quantity) AS avgq FROM lineitem l, orders o `+
				`WHERE l.l_orderkey = o.o_orderkey AND l_suppkey BETWEEN 1 AND %d GROUP BY o_orderkey`, param),
		})
	}
	return out
}

// QueryByID finds a variant, e.g. "Q1-1".
func QueryByID(cfg Config, id string) (Query, error) {
	for _, q := range Queries(cfg) {
		if q.ID == id {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("tpch: unknown query %q", id)
}

type zeroParam struct {
	zeros int
	sel   float64
}

// zeroParams picks four zero-run lengths whose '%0…0%' LIKE selectivities
// over 9-digit-padded names approximate 66%, 6.6%, 0.66%, 0.06% for the
// given customer count: a run of z zeros matches (roughly) the customers
// with custkey < 10^(9-z).
func zeroParams(customers int) []zeroParam {
	const width = 9
	// A run of z zeros (z <= width-1) matches the keys 1..10^(width-z)-1 —
	// those have at least z leading zeros. Longer runs match nothing, which
	// is where the paper's 0.06% rung lands at small scales.
	matches := func(z int) float64 {
		if z >= width {
			return 0
		}
		m := math.Pow(10, float64(width-z)) - 1
		if m > float64(customers) {
			m = float64(customers)
		}
		if m < 0 {
			m = 0
		}
		return m
	}
	// Start at the smallest z whose selectivity drops below 100% —
	// reproducing the paper's 66% top rung.
	out := make([]zeroParam, 0, 4)
	start := width - int(math.Floor(math.Log10(float64(customers))))
	for z := start; len(out) < 4; z++ {
		out = append(out, zeroParam{zeros: z, sel: matches(z) / float64(customers)})
	}
	return out
}
