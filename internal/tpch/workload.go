package tpch

import (
	"fmt"

	"ldv/internal/engine"
)

// Execer is the slice of the client connection the workload needs; both
// client.Conn and a direct engine wrapper satisfy it.
type Execer interface {
	Query(sql string) (*engine.Result, error)
}

// Workload is the §IX-A application: insert NumInserts tuples into orders,
// run NumSelects instances of one Table II query, and update NumUpdates
// orders rows.
type Workload struct {
	Cfg        Config
	Query      Query
	NumInserts int
	NumSelects int
	NumUpdates int
}

// NewWorkload returns the paper's configuration: 1000 inserts, 10 selects,
// 100 updates.
func NewWorkload(cfg Config, q Query) Workload {
	return Workload{Cfg: cfg, Query: q, NumInserts: 1000, NumSelects: 10, NumUpdates: 100}
}

// InsertStep inserts fresh orders rows (keys beyond the generated range, so
// re-execution against a restored subset cannot collide).
func (w Workload) InsertStep(c Execer) error {
	base := w.Cfg.Counts().Orders
	for i := 1; i <= w.NumInserts; i++ {
		key := base + 1_000_000 + i
		sql := fmt.Sprintf(`INSERT INTO orders VALUES (%d, %d, 'O', %d, DATE '1998-08-02', '3-MEDIUM', 'Clerk#%09d', 'workload insert %d')`,
			key, i%w.Cfg.Counts().Customer+1, 1000+i, i%1000+1, i)
		if _, err := c.Query(sql); err != nil {
			return fmt.Errorf("insert step %d: %w", i, err)
		}
	}
	return nil
}

// SelectStep runs the workload query NumSelects times.
func (w Workload) SelectStep(c Execer) error {
	for i := 0; i < w.NumSelects; i++ {
		if _, err := c.Query(w.Query.SQL); err != nil {
			return fmt.Errorf("select step %d (%s): %w", i, w.Query.ID, err)
		}
	}
	return nil
}

// SelectOnce runs a single instance of the workload query (used for
// per-query timing in Figure 8).
func (w Workload) SelectOnce(c Execer) error {
	_, err := c.Query(w.Query.SQL)
	return err
}

// UpdateStep updates NumUpdates existing orders rows, spread across the
// table deterministically.
func (w Workload) UpdateStep(c Execer) error {
	n := w.Cfg.Counts().Orders
	for i := 1; i <= w.NumUpdates; i++ {
		key := (i*37)%n + 1
		sql := fmt.Sprintf(`UPDATE orders SET o_comment = 'workload update %d' WHERE o_orderkey = %d`, i, key)
		if _, err := c.Query(sql); err != nil {
			return fmt.Errorf("update step %d: %w", i, err)
		}
	}
	return nil
}

// Run executes all three steps in the paper's order.
func (w Workload) Run(c Execer) error {
	if err := w.InsertStep(c); err != nil {
		return err
	}
	if err := w.SelectStep(c); err != nil {
		return err
	}
	return w.UpdateStep(c)
}
