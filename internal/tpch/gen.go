// Package tpch implements the evaluation substrate of §IX: a deterministic
// TPC-H data generator for all eight benchmark tables at a configurable
// scale factor, the Table II query variants Q1-1…Q4-5 with their selectivity
// parameters recomputed for the chosen scale, and the three-step application
// (insert / repeated select / update) the paper's experiments run.
package tpch

import (
	"fmt"
	"math"

	"ldv/internal/engine"
	"ldv/internal/sqlval"
)

// Config controls generation. SF is the TPC-H scale factor: SF 1 is the
// paper's 1 GB dataset; experiments in this repository default to laptop
// scales (0.002–0.02), which preserve every selectivity ratio.
type Config struct {
	SF   float64
	Seed uint64
}

// DefaultConfig is the scale used by tests and examples.
func DefaultConfig() Config { return Config{SF: 0.002, Seed: 42} }

// Counts are the table cardinalities for a scale factor.
type Counts struct {
	Region, Nation, Supplier, Customer, Part, PartSupp, Orders int
}

// Counts computes cardinalities per the TPC-H specification, clamped to
// small-scale minimums.
func (c Config) Counts() Counts {
	n := func(base int, minimum int) int {
		v := int(math.Round(float64(base) * c.SF))
		if v < minimum {
			return minimum
		}
		return v
	}
	return Counts{
		Region:   5,
		Nation:   25,
		Supplier: n(10_000, 10),
		Customer: n(150_000, 30),
		Part:     n(200_000, 40),
		PartSupp: n(800_000, 80),
		Orders:   n(1_500_000, 150),
	}
}

// rng is a splitmix64 stream; every (table, row, column) derives its own
// value deterministically so generation order never matters.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) rangeInt(lo, hi int) int { return lo + r.intn(hi-lo+1) }

func (r *rng) float(lo, hi float64) float64 {
	f := float64(r.next()%1_000_000) / 1_000_000
	return lo + f*(hi-lo)
}

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nations = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
	"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
	"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
	"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
}

var commentWords = []string{
	"furiously", "quickly", "carefully", "blithely", "slyly", "ironic",
	"express", "pending", "regular", "special", "final", "bold", "even",
	"silent", "daring", "requests", "deposits", "packages", "accounts",
	"instructions", "theodolites", "pinto", "beans", "foxes", "dependencies",
	"sleep", "wake", "nag", "haggle", "cajole", "doze", "integrate",
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var orderStatus = []string{"F", "O", "P"}
var returnFlags = []string{"A", "N", "R"}
var lineStatus = []string{"F", "O"}

func comment(r *rng, words int) string {
	out := ""
	for i := 0; i < words; i++ {
		if i > 0 {
			out += " "
		}
		out += commentWords[r.intn(len(commentWords))]
	}
	return out
}

// Schemas returns the CREATE TABLE statements for all eight tables.
func Schemas() []string {
	return []string{
		`CREATE TABLE region (r_regionkey INTEGER PRIMARY KEY, r_name TEXT, r_comment TEXT)`,
		`CREATE TABLE nation (n_nationkey INTEGER PRIMARY KEY, n_name TEXT, n_regionkey INTEGER, n_comment TEXT)`,
		`CREATE TABLE supplier (s_suppkey INTEGER PRIMARY KEY, s_name TEXT, s_nationkey INTEGER, s_acctbal FLOAT, s_comment TEXT)`,
		`CREATE TABLE customer (c_custkey INTEGER PRIMARY KEY, c_name TEXT, c_nationkey INTEGER, c_acctbal FLOAT, c_mktsegment TEXT, c_comment TEXT)`,
		`CREATE TABLE part (p_partkey INTEGER PRIMARY KEY, p_name TEXT, p_brand TEXT, p_type TEXT, p_size INTEGER, p_retailprice FLOAT, p_comment TEXT)`,
		`CREATE TABLE partsupp (ps_partkey INTEGER, ps_suppkey INTEGER, ps_availqty INTEGER, ps_supplycost FLOAT, ps_comment TEXT)`,
		`CREATE TABLE orders (o_orderkey INTEGER PRIMARY KEY, o_custkey INTEGER, o_orderstatus TEXT, o_totalprice FLOAT, o_orderdate DATE, o_orderpriority TEXT, o_clerk TEXT, o_comment TEXT)`,
		`CREATE TABLE lineitem (l_orderkey INTEGER, l_partkey INTEGER, l_suppkey INTEGER, l_linenumber INTEGER, l_quantity FLOAT, l_extendedprice FLOAT, l_discount FLOAT, l_tax FLOAT, l_returnflag TEXT, l_linestatus TEXT, l_shipdate DATE, l_commitdate DATE, l_receiptdate DATE, l_comment TEXT)`,
	}
}

// CustomerName renders c_name with TPC-H's 9-digit zero padding — the
// padding Q2/Q3's LIKE-on-zeros selectivity trick depends on.
func CustomerName(custkey int) string { return fmt.Sprintf("Customer#%09d", custkey) }

// Stats summarizes a load.
type Stats struct {
	Counts   Counts
	Lineitem int
}

// Load creates all tables and bulk-loads deterministic data into db.
// Loaded rows are "preloaded" (no creating process), exactly like a DBA-
// installed dataset the application later reads.
func Load(db *engine.DB, cfg Config) (Stats, error) {
	for _, ddl := range Schemas() {
		if _, err := db.Exec(ddl, engine.ExecOptions{}); err != nil {
			return Stats{}, fmt.Errorf("tpch schema: %w", err)
		}
	}
	cnt := cfg.Counts()
	stats := Stats{Counts: cnt}

	ins := func(table string, vals ...sqlval.Value) error {
		_, err := db.InsertRowDirect(table, vals)
		if err != nil {
			return fmt.Errorf("tpch load %s: %w", table, err)
		}
		return nil
	}
	iv := sqlval.NewInt
	fv := sqlval.NewFloat
	sv := sqlval.NewString

	for i, name := range regions {
		r := newRNG(cfg.Seed ^ uint64(1000+i))
		if err := ins("region", iv(int64(i)), sv(name), sv(comment(r, 6))); err != nil {
			return stats, err
		}
	}
	for i, name := range nations {
		r := newRNG(cfg.Seed ^ uint64(2000+i))
		if err := ins("nation", iv(int64(i)), sv(name), iv(int64(i%5)), sv(comment(r, 6))); err != nil {
			return stats, err
		}
	}
	for k := 1; k <= cnt.Supplier; k++ {
		r := newRNG(cfg.Seed ^ uint64(3_000_000+k))
		if err := ins("supplier",
			iv(int64(k)), sv(fmt.Sprintf("Supplier#%09d", k)), iv(int64(r.intn(25))),
			fv(r.float(-999, 9999)), sv(comment(r, 8))); err != nil {
			return stats, err
		}
	}
	for k := 1; k <= cnt.Customer; k++ {
		r := newRNG(cfg.Seed ^ uint64(4_000_000+k))
		if err := ins("customer",
			iv(int64(k)), sv(CustomerName(k)), iv(int64(r.intn(25))),
			fv(r.float(-999, 9999)), sv(segments[r.intn(len(segments))]),
			sv(comment(r, 9))); err != nil {
			return stats, err
		}
	}
	for k := 1; k <= cnt.Part; k++ {
		r := newRNG(cfg.Seed ^ uint64(5_000_000+k))
		if err := ins("part",
			iv(int64(k)), sv("part "+comment(r, 3)), sv(fmt.Sprintf("Brand#%d%d", 1+r.intn(5), 1+r.intn(5))),
			sv(comment(r, 2)), iv(int64(r.rangeInt(1, 50))), fv(900+float64(k%200)),
			sv(comment(r, 5))); err != nil {
			return stats, err
		}
	}
	for i := 0; i < cnt.PartSupp; i++ {
		r := newRNG(cfg.Seed ^ uint64(6_000_000+i))
		if err := ins("partsupp",
			iv(int64(i%cnt.Part+1)), iv(int64(i%cnt.Supplier+1)),
			iv(int64(r.rangeInt(1, 9999))), fv(r.float(1, 1000)),
			sv(comment(r, 10))); err != nil {
			return stats, err
		}
	}

	startDate := sqlval.NewDate(1992, 1, 1).Days()
	for k := 1; k <= cnt.Orders; k++ {
		r := newRNG(cfg.Seed ^ uint64(7_000_000+k))
		custkey := int64(r.rangeInt(1, cnt.Customer))
		if err := ins("orders",
			iv(int64(k)), iv(custkey), sv(orderStatus[r.intn(3)]),
			fv(r.float(900, 500000)), sqlval.NewDateDays(startDate+int64(r.intn(2400))),
			sv(priorities[r.intn(5)]), sv(fmt.Sprintf("Clerk#%09d", r.rangeInt(1, 1000))),
			sv(comment(r, 8))); err != nil {
			return stats, err
		}
		// 1–7 lineitems per order, ~4 on average.
		lines := r.rangeInt(1, 7)
		for ln := 1; ln <= lines; ln++ {
			lr := newRNG(cfg.Seed ^ uint64(8_000_000+k*8+ln))
			ship := startDate + int64(lr.intn(2400))
			if err := ins("lineitem",
				iv(int64(k)), iv(int64(lr.rangeInt(1, cnt.Part))), iv(int64(lr.rangeInt(1, cnt.Supplier))),
				iv(int64(ln)), fv(float64(lr.rangeInt(1, 50))), fv(lr.float(900, 100000)),
				fv(float64(lr.intn(11))/100), fv(float64(lr.intn(9))/100),
				sv(returnFlags[lr.intn(3)]), sv(lineStatus[lr.intn(2)]),
				sqlval.NewDateDays(ship), sqlval.NewDateDays(ship+int64(lr.rangeInt(1, 60))),
				sqlval.NewDateDays(ship+int64(lr.rangeInt(1, 90))),
				sv(comment(lr, 6))); err != nil {
				return stats, err
			}
			stats.Lineitem++
		}
	}
	return stats, nil
}
