package bench

import (
	"fmt"
	"io"
	"time"

	"ldv/internal/engine"
	"ldv/internal/obs"
)

// TimeTravel measures the two costs of the time-travel subsystem. First the
// read path: the same point query executed at head and AS OF a historical
// tick, over a table whose rows carry a deep version history, scored by the
// fastest round. AS OF reads take the normal index path — dead versions stay
// indexed until vacuumed and visibility is applied per candidate — so the
// overhead should be the snapshot construction plus the extra versions each
// probe filters, not a plan change. Second the reclaim path: a churn phase
// overwrites rows to pile up dead versions, then VACUUM TO a near-head tick,
// reporting versions pruned, pruning rate, and the per-table dead counter
// before and after.
func TimeTravel(cfg Config, w io.Writer) error {
	const (
		tableRows   = 2000
		churnRounds = 5
		opsPerRound = 50
		rounds      = 5
	)

	obs.Reset()
	db := engine.NewDB(nil)
	mustExec := func(sql string) *engine.Result {
		res, err := db.Exec(sql, engine.ExecOptions{})
		if err != nil {
			panic(fmt.Sprintf("timetravel bench: %s: %v", sql, err))
		}
		return res
	}
	if _, err := db.Exec("CREATE TABLE tt (k INT, v INT)", engine.ExecOptions{}); err != nil {
		return err
	}
	if _, err := db.Exec("CREATE INDEX ix_tt_k ON tt (k) USING ordered", engine.ExecOptions{}); err != nil {
		return err
	}
	for i := 0; i < tableRows; i++ {
		mustExec(fmt.Sprintf("INSERT INTO tt VALUES (%d, 0)", i))
	}
	pastTick := db.ClockNow() // every row has exactly its initial version here
	for r := 1; r <= churnRounds; r++ {
		mustExec(fmt.Sprintf("UPDATE tt SET v = %d", r))
	}

	measure := func(q func(int) string) (time.Duration, error) {
		best := time.Duration(0)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for i := 0; i < opsPerRound; i++ {
				if _, err := db.Exec(q(i), engine.ExecOptions{}); err != nil {
					return 0, err
				}
			}
			d := time.Since(start)
			if best == 0 || d < best {
				best = d
			}
		}
		return best / opsPerRound, nil
	}

	head := func(i int) string {
		return fmt.Sprintf("SELECT v FROM tt WHERE k = %d", i%tableRows)
	}
	asOf := func(i int) string {
		return fmt.Sprintf("SELECT v FROM tt WHERE k = %d AS OF %d", i%tableRows, pastTick)
	}
	headPoint, err := measure(head)
	if err != nil {
		return err
	}
	asOfPoint, err := measure(asOf)
	if err != nil {
		return err
	}

	overhead := float64(0)
	if headPoint > 0 {
		overhead = float64(asOfPoint)/float64(headPoint) - 1
	}
	fmt.Fprintf(w, "Time travel: AS OF read overhead (%d rows, %d versions each)\n", tableRows, churnRounds+1)
	fmt.Fprintf(w, "%-28s %-12s\n", "Read", "Latency")
	fmt.Fprintf(w, "%-28s %-9s ms\n", "head point query", ms(headPoint))
	fmt.Fprintf(w, "%-28s %-9s ms  (%+.1f%% vs head)\n", "AS OF point query", ms(asOfPoint), overhead*100)

	// Reclaim: the churn above left churnRounds dead versions per row. Vacuum
	// up to just before the last round so one historical version survives.
	deadBefore := deadVersions(db, "tt")
	start := time.Now()
	vr, err := db.VacuumTo(db.ClockNow())
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	deadAfter := deadVersions(db, "tt")
	rate := float64(0)
	if elapsed > 0 {
		rate = float64(vr.Pruned) / elapsed.Seconds()
	}
	fmt.Fprintf(w, "Vacuum reclaim under churn (%d updates over %d rows)\n", churnRounds*tableRows, tableRows)
	fmt.Fprintf(w, "dead versions before/after: %d / %d\n", deadBefore, deadAfter)
	fmt.Fprintf(w, "pruned %d versions in %s ms (%.0f versions/s), horizon now %d\n",
		vr.Pruned, ms(elapsed), rate, vr.Horizon)

	snap := obs.TakeSnapshot()
	fmt.Fprintf(w, "asof.queries: %d  vacuum.versions_pruned: %d\n",
		snap.Counters["asof.queries"], snap.Counters["vacuum.versions_pruned"])
	return nil
}

// deadVersions reads a table's dead-version counter from ldv_stat_tables.
func deadVersions(db *engine.DB, table string) int64 {
	res, err := db.Exec(
		fmt.Sprintf("SELECT dead_versions FROM ldv_stat_tables WHERE name = '%s'", table),
		engine.ExecOptions{})
	if err != nil || len(res.Rows) == 0 {
		return -1
	}
	return res.Rows[0][0].Int()
}
