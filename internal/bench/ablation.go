package bench

import (
	"fmt"
	"io"

	"ldv/internal/deps"
	"ldv/internal/ldv"
	"ldv/internal/osim"
	"ldv/internal/prov"
	"ldv/internal/tpch"
)

// AblationTemporalPruning quantifies design choice 1 of DESIGN.md: how many
// spurious dependencies Definition 11's temporal conditions prune compared
// to naive path-plus-direct-dependency reachability, on a real audited
// trace. The workload is a multi-stage pipeline whose stages run one after
// another and exchange data through files and the DB — the pattern where
// the blackbox everything-depends-on-everything rule over-approximates and
// only the temporal annotations (paper Example 7 / Figure 6a) can prune.
func AblationTemporalPruning(cfg Config, w io.Writer) error {
	m, err := NewMachine(cfg)
	if err != nil {
		return err
	}
	fs := m.Kernel.FS()
	// Stage inputs.
	for stage := 0; stage < 4; stage++ {
		if err := fs.WriteFile(fmt.Sprintf("/in/stage%d.csv", stage), []byte(fmt.Sprintf("%d", 10+stage))); err != nil {
			return err
		}
	}
	// Each stage: read prior stage's output (if any), read its own input,
	// write its output, run one DB query, and only THEN read the next
	// stage's input "for scheduling" — the Figure-6a write-before-read
	// pattern that creates prunable blackbox dependencies.
	mkStage := func(stage int) ldv.App {
		return ldv.App{
			Binary: fmt.Sprintf("/bin/stage%d", stage),
			Libs:   ldv.ClientLibs(),
			Prog: func(p *osim.Process) error {
				if stage > 0 {
					if _, err := p.ReadFile(fmt.Sprintf("/out/stage%d.out", stage-1)); err != nil {
						return err
					}
				}
				data, err := p.ReadFile(fmt.Sprintf("/in/stage%d.csv", stage))
				if err != nil {
					return err
				}
				if err := p.WriteFile(fmt.Sprintf("/out/stage%d.out", stage), append([]byte("stage: "), data...)); err != nil {
					return err
				}
				conn, err := ldv.Dial(p)
				if err != nil {
					return err
				}
				defer conn.Close()
				if _, err := conn.Query(fmt.Sprintf("SELECT count(*) FROM orders WHERE o_orderkey <= %d", 10+stage)); err != nil {
					return err
				}
				if stage < 3 {
					if _, err := p.ReadFile(fmt.Sprintf("/in/stage%d.csv", stage+1)); err != nil {
						return err
					}
				}
				return nil
			},
		}
	}
	apps := []ldv.App{mkStage(0), mkStage(1), mkStage(2), mkStage(3)}
	aud, err := ldv.Audit(m, apps)
	if err != nil {
		return err
	}
	tr := aud.Trace()

	inf := deps.NewDefaultInferencer(tr)
	temporal := len(inf.All())
	inf.Naive = true
	naive := len(inf.All())

	entities := 0
	for _, n := range tr.Nodes() {
		if n.Type == prov.TypeFile || n.Type == prov.TypeTuple {
			entities++
		}
	}
	fmt.Fprintln(w, "Ablation 1: temporal pruning (Definition 11 conditions 2-3)")
	fmt.Fprintf(w, "trace: %d nodes, %d edges, %d entities\n", tr.NodeCount(), tr.EdgeCount(), entities)
	fmt.Fprintf(w, "inferred dependencies, naive reachability: %d\n", naive)
	fmt.Fprintf(w, "inferred dependencies, temporal inference: %d\n", temporal)
	if naive > 0 {
		fmt.Fprintf(w, "spurious dependencies pruned:              %d (%.1f%%)\n",
			naive-temporal, 100*float64(naive-temporal)/float64(naive))
	}
	return nil
}

// AblationDedup quantifies design choice 3: the duplicate-suppression hash
// table of §VII-D. Repeated selects re-fetch the same provenance tuples;
// without dedup every copy lands in the package.
func AblationDedup(cfg Config, w io.Writer) error {
	q, err := tpch.QueryByID(cfg.TPCH(), "Q1-1")
	if err != nil {
		return err
	}
	run := func(disable bool) (tuples int, sizeMB string, err error) {
		m, err := NewMachine(cfg)
		if err != nil {
			return 0, "", err
		}
		var st StepTimes
		app := workloadApp(cfg.workload(q), &st, false)
		aud, err := ldv.AuditWithOptions(m, []ldv.App{app},
			ldv.AuditOptions{CollectLineage: true, DisableDedup: disable})
		if err != nil {
			return 0, "", err
		}
		pkg, err := ldv.BuildServerIncluded(m, aud, []ldv.App{app})
		if err != nil {
			return 0, "", err
		}
		return aud.RelevantTupleCount(), mb(pkg.SizeUnder(ldv.ProvDataDir)), nil
	}
	withDedup, sizeDedup, err := run(false)
	if err != nil {
		return err
	}
	without, sizeNo, err := run(true)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation 2: duplicate-suppression hash table (§VII-D)")
	fmt.Fprintf(w, "relevant tuples with dedup:    %d (provenance CSVs %s MB)\n", withDedup, sizeDedup)
	fmt.Fprintf(w, "relevant tuples without dedup: %d (provenance CSVs %s MB)\n", without, sizeNo)
	if withDedup > 0 {
		fmt.Fprintf(w, "duplication factor:            %.1fx\n", float64(without)/float64(withDedup))
	}
	return nil
}

// AblationTableGranularity quantifies design choice 2: tuple-granularity
// slicing versus copying every touched table whole.
func AblationTableGranularity(cfg Config, w io.Writer) error {
	q, err := tpch.QueryByID(cfg.TPCH(), "Q1-1")
	if err != nil {
		return err
	}
	m, err := NewMachine(cfg)
	if err != nil {
		return err
	}
	var st StepTimes
	app := workloadApp(cfg.workload(q), &st, false)
	aud, err := ldv.Audit(m, []ldv.App{app})
	if err != nil {
		return err
	}
	pkg, err := ldv.BuildServerIncluded(m, aud, []ldv.App{app})
	if err != nil {
		return err
	}
	sliceSize := pkg.SizeUnder(ldv.ProvDataDir)

	// Whole-table alternative: every table with at least one relevant tuple
	// ships completely (approximated by the on-disk table file size).
	var wholeSize int64
	fs := m.Kernel.FS()
	for table := range aud.RelevantTuples() {
		info, err := fs.Stat(m.DataDir + "/" + table + ".tbl")
		if err != nil {
			continue
		}
		wholeSize += info.Size
	}
	fmt.Fprintln(w, "Ablation 3: tuple-granularity slicing vs whole-table copy")
	fmt.Fprintf(w, "relevant-tuple CSVs:     %s MB\n", mb(sliceSize))
	fmt.Fprintf(w, "whole touched tables:    %s MB\n", mb(wholeSize))
	if sliceSize > 0 {
		fmt.Fprintf(w, "whole-table blowup:      %.1fx\n", float64(wholeSize)/float64(sliceSize))
	}
	return nil
}
