package bench

import (
	"fmt"
	"io"
	"time"

	"ldv/internal/client"
	"ldv/internal/engine"
	"ldv/internal/obs"
	"ldv/internal/server"
	"ldv/internal/tpch"
)

// IntrospectionOverhead measures what always-on statement statistics cost:
// the same TPC-H point and aggregate SELECTs run through client.Conn against
// an in-process server once with the per-fingerprint statement store
// collecting (the default) and once with it disabled, both dialed NoTrace so
// span costs don't pollute the comparison. Rounds alternate between the
// modes and each is scored by its fastest round, as in TracingOverhead. The
// budget for the feature is <2% on this workload — fingerprinting rides the
// lexer the parser already runs, and recording is atomics on a pre-existing
// entry. The report closes with the introspection surface itself: the top
// ldv_stat_statements rows queried back through SQL.
func IntrospectionOverhead(cfg Config, w io.Writer) error {
	const (
		opsPerRound = 400
		rounds      = 5
	)

	obs.Reset()
	db := engine.NewDB(nil)
	if _, err := tpch.Load(db, cfg.TPCH()); err != nil {
		return err
	}
	srv := server.New(db, nil)
	dialer := pipeDialer{srv}

	reads := []string{
		"SELECT COUNT(*) FROM supplier",
		"SELECT SUM(s_acctbal) FROM supplier",
		"SELECT n_name FROM nation WHERE n_nationkey = 7",
		"SELECT c_name FROM customer WHERE c_custkey = 13",
	}
	runRound := func(collect bool, ops int) (time.Duration, error) {
		obs.Statements().SetEnabled(collect)
		conn, err := client.Dial(dialer, "pipe", client.Options{Proc: "stat-bench", NoTrace: true})
		if err != nil {
			return 0, err
		}
		defer conn.Close()
		start := time.Now()
		for i := 0; i < ops; i++ {
			if _, err := conn.Query(reads[i%len(reads)]); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	// Warm both paths: parser and catalog caches, pipe plumbing, and the
	// statement store's per-fingerprint entries.
	for _, collect := range []bool{false, true} {
		if _, err := runRound(collect, opsPerRound/4); err != nil {
			return err
		}
	}

	best := map[bool]time.Duration{}
	for r := 0; r < rounds; r++ {
		for _, collect := range []bool{false, true} {
			elapsed, err := runRound(collect, opsPerRound)
			if err != nil {
				return err
			}
			if cur, ok := best[collect]; !ok || elapsed < cur {
				best[collect] = elapsed
			}
		}
	}
	obs.Statements().SetEnabled(true)

	baseline, collected := best[false], best[true]
	overhead := float64(collected-baseline) / float64(baseline) * 100

	fmt.Fprintf(w, "Statement-stats overhead (read-only): SF %g, %d SELECTs/round, best of %d alternating rounds\n",
		cfg.SF, opsPerRound, rounds)
	fmt.Fprintf(w, "%-28s %12s %14s\n", "Mode", "Round ms", "Per query us")
	perQuery := func(d time.Duration) float64 {
		return float64(d.Microseconds()) / float64(opsPerRound)
	}
	fmt.Fprintf(w, "%-28s %12s %14.1f\n", "Stats disabled baseline", ms(baseline), perQuery(baseline))
	fmt.Fprintf(w, "%-28s %12s %14.1f\n", "Stats collected", ms(collected), perQuery(collected))
	fmt.Fprintf(w, "Overhead: %.2f%% (budget: <2%%)\n\n", overhead)

	// The surface itself, eating its own dog food: the hottest statements
	// read back over the same wire protocol with a plain SELECT.
	conn, err := client.Dial(dialer, "pipe", client.Options{Proc: "stat-bench", NoTrace: true})
	if err != nil {
		return err
	}
	defer conn.Close()
	res, err := conn.Query(
		"SELECT calls, p95_exec_ns, query FROM ldv_stat_statements ORDER BY calls DESC LIMIT 5")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "SELECT calls, p95_exec_ns, query FROM ldv_stat_statements ORDER BY calls DESC LIMIT 5:\n")
	for _, row := range res.Rows {
		fmt.Fprintf(w, "%8d %12d  %s\n", row[0].Int(), row[1].Int(), row[2].Str())
	}
	return nil
}
