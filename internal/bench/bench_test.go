package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ldv/internal/tpch"
)

// testConfig is small enough for unit tests while exercising every code
// path.
func testConfig() Config {
	return Config{SF: 0.001, Seed: 11, Inserts: 20, Selects: 3, Updates: 5}
}

func TestStepTimesAggregates(t *testing.T) {
	st := StepTimes{SelectEach: []time.Duration{10 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}}
	if st.FirstSelect() != 10*time.Millisecond {
		t.Error("first select wrong")
	}
	if st.OtherSelects() != 3*time.Millisecond {
		t.Error("other selects wrong")
	}
	if st.SelectMean() != (16*time.Millisecond)/3 {
		t.Error("mean wrong")
	}
	empty := StepTimes{}
	if empty.FirstSelect() != 0 || empty.OtherSelects() != 0 || empty.SelectMean() != 0 {
		t.Error("empty aggregates must be zero")
	}
}

func TestRunAuditAllSystems(t *testing.T) {
	cfg := testConfig()
	q, err := tpch.QueryByID(cfg.TPCH(), "Q1-1")
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []System{SysPlain, SysPTU, SysSI, SysSE, SysVM} {
		out, err := RunAudit(cfg, q, sys)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if len(out.Steps.SelectEach) != cfg.Selects {
			t.Errorf("%s: selects recorded = %d", sys, len(out.Steps.SelectEach))
		}
		switch sys {
		case SysPlain:
			if out.Package != nil {
				t.Errorf("%s: unexpected package", sys)
			}
		case SysVM:
			if out.Image == nil {
				t.Errorf("%s: missing image", sys)
			}
		default:
			if out.Package == nil || out.Package.TotalSize() == 0 {
				t.Errorf("%s: missing package", sys)
			}
		}
	}
}

func TestPackageSizeOrdering(t *testing.T) {
	// The core Figure 9 shape at low selectivity: PTU > server-included,
	// and VM image > everything.
	cfg := testConfig()
	q, _ := tpch.QueryByID(cfg.TPCH(), "Q1-1")
	ptuOut, err := RunAudit(cfg, q, SysPTU)
	if err != nil {
		t.Fatal(err)
	}
	siOut, err := RunAudit(cfg, q, SysSI)
	if err != nil {
		t.Fatal(err)
	}
	vmOut, err := RunAudit(cfg, q, SysVM)
	if err != nil {
		t.Fatal(err)
	}
	if ptuOut.Package.TotalSize() <= siOut.Package.TotalSize() {
		t.Errorf("PTU %d <= SI %d", ptuOut.Package.TotalSize(), siOut.Package.TotalSize())
	}
	if vmOut.Image.TotalSize() <= ptuOut.Package.TotalSize() {
		t.Errorf("VM %d <= PTU %d", vmOut.Image.TotalSize(), ptuOut.Package.TotalSize())
	}
	if siOut.RelevantTuples == 0 {
		t.Error("SI audit found no relevant tuples")
	}
}

func TestRunReplayAllSystems(t *testing.T) {
	cfg := testConfig()
	q, _ := tpch.QueryByID(cfg.TPCH(), "Q2-2")
	for _, sys := range ReplaySystems() {
		out, err := RunAudit(cfg, q, sys)
		if err != nil {
			t.Fatalf("%s audit: %v", sys, err)
		}
		st, err := RunReplay(cfg, q, sys, out)
		if err != nil {
			t.Fatalf("%s replay: %v", sys, err)
		}
		if len(st.SelectEach) != cfg.Selects {
			t.Errorf("%s: replay selects = %d", sys, len(st.SelectEach))
		}
		if sys != SysSE && st.Init == 0 {
			t.Errorf("%s: init time not recorded", sys)
		}
	}
}

func TestTable2Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(testConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"Q1-1", "Q2-4", "Q3-1", "Q4-5"} {
		if !strings.Contains(out, id) {
			t.Errorf("Table 2 missing %s", id)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 20 { // header x2 + 18 rows
		t.Errorf("Table 2 line count wrong:\n%s", out)
	}
}

func TestTable3Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3(testConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "PTU") || !strings.Contains(out, "(full)") || !strings.Contains(out, "(empty)") {
		t.Errorf("Table 3 output:\n%s", out)
	}
}

func TestFig7aOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7a(testConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, sys := range append([]System{SysPlain}, AuditSystems()...) {
		if !strings.Contains(out, string(sys)) {
			t.Errorf("Fig 7a missing %s:\n%s", sys, out)
		}
	}
}

func TestFig7bOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7b(testConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Initialization") {
		t.Errorf("Fig 7b output:\n%s", buf.String())
	}
}

func TestFig9Output(t *testing.T) {
	cfg := testConfig()
	cfg.Selects = 2
	var buf bytes.Buffer
	if err := Fig9(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 20 {
		t.Errorf("Fig 9 lines = %d:\n%s", len(lines), buf.String())
	}
}

func TestVMIComparisonOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := VMIComparison(testConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "VMI / average LDV") {
		t.Errorf("VMI output:\n%s", buf.String())
	}
}

func TestAblations(t *testing.T) {
	cfg := testConfig()
	var buf bytes.Buffer
	if err := AblationTemporalPruning(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if err := AblationDedup(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if err := AblationTableGranularity(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"temporal pruning", "duplicate-suppression", "whole-table blowup"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q:\n%s", want, out)
		}
	}
}

func TestDedupAblationShowsDuplication(t *testing.T) {
	cfg := testConfig()
	cfg.Selects = 4
	q, _ := tpch.QueryByID(cfg.TPCH(), "Q1-1")

	m1, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var st1 StepTimes
	app1 := workloadApp(cfg.workload(q), &st1, false)
	aud1, err := runAuditDirect(m1, app1, false)
	if err != nil {
		t.Fatal(err)
	}

	m2, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var st2 StepTimes
	app2 := workloadApp(cfg.workload(q), &st2, false)
	aud2, err := runAuditDirect(m2, app2, true)
	if err != nil {
		t.Fatal(err)
	}
	if aud2.RelevantTupleCount() <= aud1.RelevantTupleCount() {
		t.Fatalf("dedup-off %d <= dedup-on %d", aud2.RelevantTupleCount(), aud1.RelevantTupleCount())
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	for _, name := range ExperimentNames() {
		if exps[name] == nil {
			t.Errorf("experiment %s not registered", name)
		}
	}
	if len(exps) != len(ExperimentNames()) {
		t.Error("registry and name list out of sync")
	}
}

func TestFig8Formatting(t *testing.T) {
	// Exercise the fig8 table driver with a stub measurer (the real
	// Fig8a/Fig8b wrappers differ only in what they measure).
	var buf bytes.Buffer
	calls := 0
	err := fig8(testConfig(), &buf, []System{SysPlain, SysSE}, func(sys System, q tpch.Query) (time.Duration, error) {
		calls++
		return time.Duration(calls) * time.Millisecond, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 18*2 {
		t.Fatalf("measure calls = %d", calls)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 19 { // header + 18 queries
		t.Fatalf("fig8 lines = %d", len(lines))
	}
}

func TestFig8aSingleQuery(t *testing.T) {
	// One real Fig8a-style measurement end to end (select step only).
	cfg := testConfig()
	cfg.Inserts, cfg.Updates = 0, 0
	q, _ := tpch.QueryByID(cfg.TPCH(), "Q3-2")
	out, err := RunAudit(cfg, q, SysSI)
	if err != nil {
		t.Fatal(err)
	}
	if out.Steps.SelectMean() <= 0 {
		t.Fatal("no select timing recorded")
	}
	if out.Steps.Inserts != 0 || out.Steps.Updates != 0 {
		t.Fatal("select-only run must not time inserts/updates")
	}
}
