package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"ldv/internal/engine"
	"ldv/internal/ldv"
	"ldv/internal/obs"
	"ldv/internal/tpch"
)

// ms renders a duration in milliseconds with sub-ms resolution.
func ms(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000) }

func mb(bytes int64) string { return fmt.Sprintf("%.2f", float64(bytes)/(1<<20)) }

// Table2 prints the paper's Table II: the 18 query variants, their PARAM
// values for the configured scale, the target selectivity, and the measured
// selectivity/row counts against the generated data.
func Table2(cfg Config, w io.Writer) error {
	db := engine.NewDB(nil)
	stats, err := tpch.Load(db, cfg.TPCH())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table II: query variants at SF %g (paper: SF 1)\n", cfg.SF)
	fmt.Fprintf(w, "%-6s %-10s %-12s %-12s %-10s\n", "Query", "PARAM", "Target Sel.", "Meas. Sel.", "Rows")
	for _, q := range tpch.Queries(cfg.TPCH()) {
		res, err := db.Exec(q.SQL, engine.ExecOptions{})
		if err != nil {
			return fmt.Errorf("%s: %w", q.ID, err)
		}
		denom := float64(stats.Lineitem)
		measured := float64(len(res.Rows)) / denom
		if q.Family == 3 {
			// Q3 returns one count row; its effective selectivity is the
			// counted fraction.
			measured = float64(res.Rows[0][0].Int()) / denom
		}
		fmt.Fprintf(w, "%-6s %-10s %-12.4f %-12.4f %-10d\n",
			q.ID, q.Param, q.Selectivity, measured, len(res.Rows))
	}
	return nil
}

// Table3 prints the paper's Table III package-contents matrix by building
// all three package kinds for the Q1-1 workload and inspecting their actual
// contents.
func Table3(cfg Config, w io.Writer) error {
	q, err := tpch.QueryByID(cfg.TPCH(), "Q1-1")
	if err != nil {
		return err
	}
	type row struct {
		name                                     string
		binaries, server, data, dataState, dbpro string
	}
	var rows []row
	for _, sys := range []System{SysPTU, SysSI, SysSE} {
		out, err := RunAudit(cfg, q, sys)
		if err != nil {
			return fmt.Errorf("%s: %w", sys, err)
		}
		pkg := out.Package
		hasServer := pkg.Has(ldv.ServerBinaryPath)
		dataFiles := len(pkg.PathsUnder(ldv.DefaultDataDir))
		provFiles := len(pkg.PathsUnder(ldv.ProvDataDir)) + boolInt(pkg.Has(ldv.DBLogPath))
		r := row{
			name:     string(sys),
			binaries: yesNo(pkg.Has(AppBinaryPath)),
			server:   yesNo(hasServer),
			data:     yesNo(dataFiles > 0),
			dbpro:    yesNo(provFiles > 0),
		}
		switch {
		case dataFiles > 0:
			r.dataState = "(full)"
		case hasServer:
			r.dataState = "(empty)"
		default:
			r.dataState = ""
		}
		rows = append(rows, r)
	}
	fmt.Fprintln(w, "Table III: package contents")
	fmt.Fprintf(w, "%-26s %-10s %-10s %-14s %-14s\n",
		"Package type", "Software", "DB server", "Data files", "DB provenance")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %-10s %-10s %-14s %-14s\n",
			r.name, r.binaries, r.server, r.data+" "+r.dataState, r.dbpro)
	}
	return nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// medianAudit runs an audit three times and returns the run with the
// median total select time, damping GC noise in per-step timings.
func medianAudit(cfg Config, q tpch.Query, sys System) (*AuditOutcome, error) {
	var outs []*AuditOutcome
	for i := 0; i < 3; i++ {
		out, err := RunAudit(cfg, q, sys)
		if err != nil {
			return nil, err
		}
		outs = append(outs, out)
	}
	byTotal := func(i, j int) bool { return outs[i].Steps.SelectMean() < outs[j].Steps.SelectMean() }
	sortSlice(outs, byTotal)
	return outs[1], nil
}

func sortSlice(outs []*AuditOutcome, less func(i, j int) bool) {
	for i := 1; i < len(outs); i++ {
		for j := i; j > 0 && less(j, j-1); j-- {
			outs[j], outs[j-1] = outs[j-1], outs[j]
		}
	}
}

// Fig7a prints audit-time per workload step for each system (paper Figure
// 7a, query Q1-1), with the unmonitored run as reference.
func Fig7a(cfg Config, w io.Writer) error {
	q, err := tpch.QueryByID(cfg.TPCH(), "Q1-1")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 7a: audit time per step (ms), query Q1-1, SF %g\n", cfg.SF)
	fmt.Fprintf(w, "%-26s %-12s %-14s %-14s %-12s\n", "System", "Inserts", "First Select", "Other Selects", "Updates")
	systems := append([]System{SysPlain}, AuditSystems()...)
	for _, sys := range systems {
		out, err := medianAudit(cfg, q, sys)
		if err != nil {
			return fmt.Errorf("%s: %w", sys, err)
		}
		st := out.Steps
		fmt.Fprintf(w, "%-26s %-12s %-14s %-14s %-12s\n",
			sys, ms(st.Inserts), ms(st.FirstSelect()), ms(st.OtherSelects()), ms(st.Updates))
	}
	return nil
}

// Fig7b prints replay-time per step (paper Figure 7b): initialization plus
// the workload steps, for each replayable system and the plain reference.
func Fig7b(cfg Config, w io.Writer) error {
	q, err := tpch.QueryByID(cfg.TPCH(), "Q1-1")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 7b: replay time per step (ms), query Q1-1, SF %g\n", cfg.SF)
	fmt.Fprintf(w, "%-26s %-14s %-12s %-14s %-14s %-12s\n",
		"System", "Initialization", "Inserts", "First Select", "Other Selects", "Updates")
	// Plain reference (no package; a fresh run).
	plain, err := RunAudit(cfg, q, SysPlain)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-26s %-14s %-12s %-14s %-14s %-12s\n", SysPlain, "-",
		ms(plain.Steps.Inserts), ms(plain.Steps.FirstSelect()), ms(plain.Steps.OtherSelects()), ms(plain.Steps.Updates))
	for _, sys := range ReplaySystems() {
		auditSys := sys
		if sys == SysVM {
			auditSys = SysVM
		}
		out, err := RunAudit(cfg, q, auditSys)
		if err != nil {
			return fmt.Errorf("%s audit: %w", sys, err)
		}
		st, err := RunReplay(cfg, q, sys, out)
		if err != nil {
			return fmt.Errorf("%s replay: %w", sys, err)
		}
		fmt.Fprintf(w, "%-26s %-14s %-12s %-14s %-14s %-12s\n",
			sys, ms(st.Init), ms(st.Inserts), ms(st.FirstSelect()), ms(st.OtherSelects()), ms(st.Updates))
	}
	return nil
}

// Fig8a prints per-query audit execution time for all 18 variants (paper
// Figure 8a). Only the select step runs (the insert/update steps belong to
// Figure 7).
func Fig8a(cfg Config, w io.Writer) error {
	fmt.Fprintf(w, "Figure 8a: audit time per query (ms, mean of %d runs), SF %g\n", cfg.Selects, cfg.SF)
	return fig8(cfg, w, append([]System{SysPlain}, AuditSystems()...), func(sys System, q tpch.Query) (time.Duration, error) {
		qcfg := cfg
		qcfg.Inserts, qcfg.Updates = 0, 0
		out, err := RunAudit(qcfg, q, sys)
		if err != nil {
			return 0, err
		}
		return out.Steps.SelectMean(), nil
	})
}

// Fig8b prints per-query replay execution time for all 18 variants and all
// four replay systems (paper Figure 8b).
func Fig8b(cfg Config, w io.Writer) error {
	fmt.Fprintf(w, "Figure 8b: replay time per query (ms, mean of %d runs), SF %g\n", cfg.Selects, cfg.SF)
	return fig8(cfg, w, ReplaySystems(), func(sys System, q tpch.Query) (time.Duration, error) {
		qcfg := cfg
		qcfg.Inserts, qcfg.Updates = 0, 0
		out, err := RunAudit(qcfg, q, sys)
		if err != nil {
			return 0, err
		}
		st, err := RunReplay(qcfg, q, sys, out)
		if err != nil {
			return 0, err
		}
		return st.SelectMean(), nil
	})
}

func fig8(cfg Config, w io.Writer, systems []System, measure func(System, tpch.Query) (time.Duration, error)) error {
	queries := tpch.Queries(cfg.TPCH())
	header := fmt.Sprintf("%-6s", "Query")
	for _, sys := range systems {
		header += fmt.Sprintf(" %-26s", sys)
	}
	fmt.Fprintln(w, header)
	for _, q := range queries {
		line := fmt.Sprintf("%-6s", q.ID)
		for _, sys := range systems {
			d, err := measure(sys, q)
			if err != nil {
				return fmt.Errorf("%s %s: %w", q.ID, sys, err)
			}
			line += fmt.Sprintf(" %-26s", ms(d))
		}
		fmt.Fprintln(w, line)
	}
	return nil
}

// Fig9 prints package sizes for all 18 queries and the three packaging
// systems (paper Figure 9).
func Fig9(cfg Config, w io.Writer) error {
	fmt.Fprintf(w, "Figure 9: package size (MB) per query, SF %g\n", cfg.SF)
	fmt.Fprintf(w, "%-6s %-18s %-18s %-18s %-16s\n", "Query", "PTU package", "Server-included", "Server-excluded", "Relevant tuples")
	for _, q := range tpch.Queries(cfg.TPCH()) {
		var sizes []string
		relevant := 0
		for _, sys := range AuditSystems() {
			out, err := RunAudit(cfg, q, sys)
			if err != nil {
				return fmt.Errorf("%s %s: %w", q.ID, sys, err)
			}
			sizes = append(sizes, mb(out.Package.TotalSize()))
			if sys == SysSI {
				relevant = out.RelevantTuples
			}
		}
		fmt.Fprintf(w, "%-6s %-18s %-18s %-18s %-16d\n", q.ID, sizes[0], sizes[1], sizes[2], relevant)
	}
	return nil
}

// VMIComparison prints the §IX-F comparison: image sizes against LDV
// package sizes and the replay-slowdown summary.
func VMIComparison(cfg Config, w io.Writer) error {
	q, err := tpch.QueryByID(cfg.TPCH(), "Q1-1")
	if err != nil {
		return err
	}
	vm, err := RunAudit(cfg, q, SysVM)
	if err != nil {
		return err
	}
	si, err := RunAudit(cfg, q, SysSI)
	if err != nil {
		return err
	}
	se, err := RunAudit(cfg, q, SysSE)
	if err != nil {
		return err
	}
	imgSize := vm.Image.TotalSize()
	avgLDV := (si.Package.TotalSize() + se.Package.TotalSize()) / 2
	fmt.Fprintf(w, "Section IX-F: VM image comparison (SF %g)\n", cfg.SF)
	fmt.Fprintf(w, "VM image size:            %s MB (%d files)\n", mb(imgSize), vm.Image.FileCount())
	fmt.Fprintf(w, "Server-included package:  %s MB\n", mb(si.Package.TotalSize()))
	fmt.Fprintf(w, "Server-excluded package:  %s MB\n", mb(se.Package.TotalSize()))
	fmt.Fprintf(w, "Average LDV package:      %s MB\n", mb(avgLDV))
	fmt.Fprintf(w, "VMI / average LDV:        %.1fx (paper: 80x)\n", float64(imgSize)/float64(avgLDV))

	vmReplay, err := RunReplay(cfg, q, SysVM, vm)
	if err != nil {
		return err
	}
	seReplay, err := RunReplay(cfg, q, SysSE, se)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "VM replay select mean:    %s ms\n", ms(vmReplay.SelectMean()))
	fmt.Fprintf(w, "SE replay select mean:    %s ms\n", ms(seReplay.SelectMean()))
	return nil
}

// Experiments maps experiment ids (as accepted by ldv-bench -exp) to their
// runners.
func Experiments() map[string]func(Config, io.Writer) error {
	return map[string]func(Config, io.Writer) error{
		"table2":        Table2,
		"table3":        Table3,
		"fig7a":         Fig7a,
		"fig7b":         Fig7b,
		"fig8a":         Fig8a,
		"fig8b":         Fig8b,
		"fig9":          Fig9,
		"vmi":           VMIComparison,
		"overhead":      Overhead,
		"tracing":       TracingOverhead,
		"introspection": IntrospectionOverhead,
		"ash":           ASHOverhead,
		"concurrency":   Concurrency,
		"prepared":      Prepared,
		"durability":    Durability,
		"planner":       PlannerBench,
		"replication":   Replication,
		"timetravel":    TimeTravel,
		"ablation": func(cfg Config, w io.Writer) error {
			if err := AblationTemporalPruning(cfg, w); err != nil {
				return err
			}
			if err := AblationDedup(cfg, w); err != nil {
				return err
			}
			return AblationTableGranularity(cfg, w)
		},
	}
}

// ExperimentNames lists the ids in presentation order.
func ExperimentNames() []string {
	return []string{"table2", "table3", "fig7a", "fig7b", "fig8a", "fig8b", "fig9", "vmi", "overhead", "tracing", "introspection", "ash", "concurrency", "prepared", "planner", "durability", "replication", "timetravel", "ablation"}
}

// RunAll executes every experiment in order.
func RunAll(cfg Config, w io.Writer) error {
	exps := Experiments()
	for _, name := range ExperimentNames() {
		fmt.Fprintf(w, "==== %s ====\n", name)
		if err := exps[name](cfg, w); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(w, strings.Repeat("-", 72))
	}
	fmt.Fprintln(w, "==== phase timings (obs spans) ====")
	PhaseReport(obs.TakeSnapshot(), w)
	return nil
}
