package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"ldv/internal/client"
	"ldv/internal/engine"
	"ldv/internal/obs"
	"ldv/internal/server"
	"ldv/internal/tpch"
)

// Prepared measures the protocol-v2 win on a plan-heavy point read: the same
// closed-loop clients issue identical indexed point reads three ways — text
// Query frames (parse + plan every time), prepared Execute frames (parse
// once, plan cached), and pipelined batches of Executes (one write and one
// read per batch instead of per statement). The query is an ORM-style
// statement: a fat predicate list that is expensive to parse, attribute,
// and run index selection over, but cheap to execute (an index probe plus a
// one-row residual filter) — so the text mode's per-statement parse/plan
// work and per-op round trips are the whole difference.
//
// The plan-cache hit rate is read from the plan.cache_hits/misses counters
// around each run; steady-state prepared executions should hit nearly
// always (the only misses are the first execution of a shape and
// DDL-invalidated re-plans, and this workload has no DDL).
func Prepared(cfg Config, w io.Writer) error {
	const (
		opsPerClient = 400
		batch        = 16
		keySpace     = 50 // supplier has 50 rows at the bench SF; every probe hits
		repeats      = 3  // per cell; the fastest run is reported (scheduler noise)
	)
	clientCounts := []int{1, 4, 8}

	db := engine.NewDB(nil)
	if _, err := tpch.Load(db, cfg.TPCH()); err != nil {
		return err
	}
	// Index the probe key so the planner has a real access-path choice to
	// make: the point predicate becomes an index probe. The DDL happens
	// before the timed runs — the plan cache is never invalidated
	// mid-experiment.
	setup := db.NewSession()
	if _, err := setup.Exec("CREATE INDEX ix_supp_key ON supplier (s_suppkey)", engine.ExecOptions{}); err != nil {
		return err
	}
	setup.Close()
	srv := server.New(db, nil)
	dialer := pipeDialer{srv}

	const (
		paramSQL = "SELECT s_suppkey, s_name, s_acctbal, s_comment FROM supplier" +
			" WHERE s_suppkey = ? AND s_acctbal >= ? AND s_name <> ?" +
			" AND s_nationkey >= ? AND s_nationkey <= ? AND s_comment <> ?"
		textSQL = "SELECT s_suppkey, s_name, s_acctbal, s_comment FROM supplier" +
			" WHERE s_suppkey = %d AND s_acctbal >= -9999.0 AND s_name <> 'NONE'" +
			" AND s_nationkey >= 0 AND s_nationkey <= 24 AND s_comment <> ''"
	)

	dial := func(id int) (*client.Conn, error) {
		return client.Dial(dialer, "pipe", client.Options{Proc: fmt.Sprintf("bench:%d", id), NoTrace: true})
	}
	textClient := func(id, ops int) error {
		conn, err := dial(id)
		if err != nil {
			return err
		}
		defer conn.Close()
		for i := 0; i < ops; i++ {
			sql := fmt.Sprintf(textSQL, 1+i%keySpace)
			if _, err := conn.Query(sql); err != nil {
				return fmt.Errorf("client %d: %w", id, err)
			}
		}
		return nil
	}
	preparedClient := func(id, ops int) error {
		conn, err := dial(id)
		if err != nil {
			return err
		}
		defer conn.Close()
		st, err := conn.Prepare(paramSQL)
		if err != nil {
			return err
		}
		for i := 0; i < ops; i++ {
			if _, err := st.Exec(1+i%keySpace, -9999.0, "NONE", 0, 24, ""); err != nil {
				return fmt.Errorf("client %d: %w", id, err)
			}
		}
		return nil
	}
	pipelinedClient := func(id, ops int) error {
		conn, err := dial(id)
		if err != nil {
			return err
		}
		defer conn.Close()
		st, err := conn.Prepare(paramSQL)
		if err != nil {
			return err
		}
		for done := 0; done < ops; done += batch {
			n := batch
			if ops-done < n {
				n = ops - done
			}
			p := conn.Pipeline()
			for j := 0; j < n; j++ {
				if err := p.Queue(st, 1+(done+j)%keySpace, -9999.0, "NONE", 0, 24, ""); err != nil {
					return err
				}
			}
			if _, err := p.Flush(); err != nil {
				return fmt.Errorf("client %d: %w", id, err)
			}
		}
		return nil
	}

	run := func(fn func(int, int) error, clients int) (time.Duration, error) {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				if err := fn(c, opsPerClient); err != nil {
					errs <- err
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}

	// Warm up every path (parser, catalog, plan cache) outside the timing.
	for _, fn := range []func(int, int) error{textClient, preparedClient, pipelinedClient} {
		if err := fn(0, batch); err != nil {
			return err
		}
	}

	hits := obs.GetCounter("plan.cache_hits")
	misses := obs.GetCounter("plan.cache_misses")

	fmt.Fprintf(w, "Prepared-statement protocol at SF %g: closed-loop point reads, %d ops/client, pipeline batch %d, best of %d runs\n",
		cfg.SF, opsPerClient, batch, repeats)
	fmt.Fprintf(w, "%-10s %-8s %-8s %-12s %-12s %-8s %-9s\n",
		"Mode", "Clients", "Ops", "Elapsed ms", "Ops/sec", "vs text", "Hit rate")

	modes := []struct {
		name string
		fn   func(int, int) error
	}{
		{"text", textClient},
		{"prepared", preparedClient},
		{"pipelined", pipelinedClient},
	}
	for _, n := range clientCounts {
		var textTput float64
		for _, m := range modes {
			h0, m0 := hits.Load(), misses.Load()
			var elapsed time.Duration
			for r := 0; r < repeats; r++ {
				d, err := run(m.fn, n)
				if err != nil {
					return fmt.Errorf("%s/%d: %w", m.name, n, err)
				}
				if r == 0 || d < elapsed {
					elapsed = d
				}
			}
			dh, dm := hits.Load()-h0, misses.Load()-m0
			tput := float64(n*opsPerClient) / elapsed.Seconds()
			if m.name == "text" {
				textTput = tput
			}
			hitRate := "-"
			if dh+dm > 0 {
				hitRate = fmt.Sprintf("%.1f%%", 100*float64(dh)/float64(dh+dm))
			}
			fmt.Fprintf(w, "%-10s %-8d %-8d %-12s %-12.1f %-8.2f %-9s\n",
				m.name, n, n*opsPerClient, ms(elapsed), tput, tput/textTput, hitRate)
		}
	}
	return nil
}
