package bench

import (
	"strings"
	"testing"
	"time"

	"ldv/internal/obs"
	"ldv/internal/tpch"
)

func smallConfig() Config {
	return Config{SF: 0.002, Seed: 1, Inserts: 20, Selects: 2, Updates: 5}
}

// TestAuditProducesMetrics is the end-to-end observability check: one traced
// TPC-H run must leave non-zero engine, wire, auditor, and span metrics in
// the default registry.
func TestAuditProducesMetrics(t *testing.T) {
	cfg := smallConfig()
	q, err := tpch.QueryByID(cfg.TPCH(), "Q1-1")
	if err != nil {
		t.Fatal(err)
	}
	obs.Reset()
	if _, err := RunAudit(cfg, q, SysSI); err != nil {
		t.Fatal(err)
	}
	snap := obs.TakeSnapshot()

	for _, name := range []string{
		"engine.stmts", "engine.rows_returned", "engine.rows_scanned",
		"wire.in.bytes", "wire.out.bytes", "wire.in.msgs.Query",
		"auditor.syscalls.open", "auditor.syscalls.spawn",
		"auditor.tuples.fetched", "auditor.tuples.stored",
		"auditor.log_entries",
		"server.sessions", "server.stmts",
		"pack.files_added", "pack.compress.in_bytes",
	} {
		if snap.Counter(name) == 0 {
			t.Errorf("counter %s is zero after a traced run", name)
		}
	}
	for _, name := range []string{
		"engine.parse_ns", "engine.exec_ns.select", obs.MetricLineageNS,
		obs.MetricTraceNS, obs.MetricDedupNS, obs.MetricSpoolNS,
		"span.bench.audit", "span.bench.package", "span.audit.run",
	} {
		if snap.Histogram(name).Count == 0 {
			t.Errorf("histogram %s is empty after a traced run", name)
		}
	}
	if snap.SpanTotal == 0 {
		t.Error("no spans recorded")
	}
}

// TestOverheadExperiment runs the §IX-B reproduction end to end and checks
// the report's accounting invariant: the breakdown partitions the audited
// wall time exactly (well within the 10% acceptance bound).
func TestOverheadExperiment(t *testing.T) {
	cfg := smallConfig()
	var buf strings.Builder
	if err := Overhead(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"native execution", "trace construction", "tuple dedup",
		"= audited total", "audit overhead", "bench.audit",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("overhead output missing %q:\n%s", want, out)
		}
	}
	// Re-derive the invariant from the live registry: after Overhead the
	// snapshot still holds the audited run.
	snap := obs.TakeSnapshot()
	audited := snap.HistogramSumNS("span.bench.audit")
	rep := obs.BuildOverheadReport(audited/2, audited, snap)
	if rep.Total() != rep.Audited {
		t.Fatalf("breakdown does not partition audited time: %v != %v", rep.Total(), rep.Audited)
	}
	if rep.Audited <= 0 || rep.Audited > time.Hour {
		t.Fatalf("implausible audited wall time %v", rep.Audited)
	}
}

// TestReplayProducesSpans checks that a packaged run's re-execution records
// the replay-side spans and timings.
func TestReplayProducesSpans(t *testing.T) {
	cfg := smallConfig()
	q, err := tpch.QueryByID(cfg.TPCH(), "Q1-1")
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunAudit(cfg, q, SysSE)
	if err != nil {
		t.Fatal(err)
	}
	obs.Reset()
	if _, err := RunReplay(cfg, q, SysSE, out); err != nil {
		t.Fatal(err)
	}
	snap := obs.TakeSnapshot()
	// (RunReplay spawns apps itself rather than via ReplaySetup.Run, so the
	// replay.run span belongs to the ldv-exec path, not the harness path.)
	for _, name := range []string{"span.bench.replay", "span.replay.prepare"} {
		if snap.Histogram(name).Count == 0 {
			t.Errorf("histogram %s is empty after replay", name)
		}
	}
	var buf strings.Builder
	PhaseReport(snap, &buf)
	if !strings.Contains(buf.String(), "bench.replay") {
		t.Fatalf("phase report missing bench.replay:\n%s", buf.String())
	}
}

// TestTracingOverheadExperiment smoke-tests the tracing-overhead experiment:
// it must run to completion, report both modes and the overhead line, and
// leave completed request traces in the flight recorder. The <5% budget is
// asserted by the recorded results, not here — wall-clock ratios under a
// loaded test runner are too noisy to gate CI on.
func TestTracingOverheadExperiment(t *testing.T) {
	var buf strings.Builder
	if err := TracingOverhead(smallConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"NoTrace baseline", "Traced", "Overhead:", "flight recorder:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tracing output missing %q:\n%s", want, out)
		}
	}
	if len(obs.Traces()) == 0 {
		t.Fatal("traced rounds left no traces in the flight recorder")
	}
}
