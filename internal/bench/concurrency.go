package bench

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"ldv/internal/client"
	"ldv/internal/engine"
	"ldv/internal/server"
	"ldv/internal/tpch"
)

// pipeDialer connects clients to an in-process server over net.Pipe, one
// server goroutine per connection — the same path a TCP deployment takes,
// minus the kernel socket.
type pipeDialer struct{ srv *server.Server }

func (d pipeDialer) Connect(string) (net.Conn, error) {
	c, s := net.Pipe()
	go d.srv.HandleConn(s)
	return c, nil
}

// Concurrency measures throughput scaling with concurrent client sessions
// over the TPC-H dataset.
//
// Each client is a closed loop: think, send one operation, wait for the
// reply. The think time models application work between statements, so the
// server's ability to interleave sessions — not raw single-core query speed
// — determines scaling: a serial server bounds throughput at 1/(think+exec)
// regardless of client count, while per-session transactions with MVCC
// reads let N clients overlap their think times.
//
// The mix is read-dominated: TPC-H point and aggregate SELECTs on the
// dimension tables, plus 1 short transfer transaction per 10 operations;
// each client updates its own supplier row, so writers conflict on tables
// and locks but not on tuples.
func Concurrency(cfg Config, w io.Writer) error {
	const (
		opsPerClient = 60
		think        = 2 * time.Millisecond
		writeEvery   = 10 // 1 write transaction per writeEvery ops
	)
	clientCounts := []int{1, 2, 4, 8}

	db := engine.NewDB(nil)
	if _, err := tpch.Load(db, cfg.TPCH()); err != nil {
		return err
	}
	srv := server.New(db, nil)
	dialer := pipeDialer{srv}

	reads := []string{
		"SELECT COUNT(*) FROM supplier",
		"SELECT SUM(s_acctbal) FROM supplier",
		"SELECT n_name FROM nation WHERE n_nationkey = 7",
		"SELECT c_name FROM customer WHERE c_custkey = 13",
	}
	runClient := func(id, ops int) error {
		conn, err := client.Dial(dialer, "pipe", client.Options{Proc: fmt.Sprintf("bench:%d", id)})
		if err != nil {
			return err
		}
		defer conn.Close()
		for i := 0; i < ops; i++ {
			time.Sleep(think)
			if i%writeEvery == writeEvery-1 {
				// Short transaction on the client's own supplier row.
				for _, sql := range []string{
					"BEGIN",
					fmt.Sprintf("UPDATE supplier SET s_acctbal = s_acctbal + 1 WHERE s_suppkey = %d", id+1),
					"COMMIT",
				} {
					if _, err := conn.Exec(sql); err != nil {
						return fmt.Errorf("client %d: %s: %w", id, sql, err)
					}
				}
			} else {
				if _, err := conn.Query(reads[i%len(reads)]); err != nil {
					return fmt.Errorf("client %d: %w", id, err)
				}
			}
		}
		return nil
	}

	// Warm up parsers, catalogs, and the pipe path outside the timed runs.
	if err := runClient(0, writeEvery); err != nil {
		return err
	}

	fmt.Fprintf(w, "Concurrency at SF %g: closed-loop clients, %d ops/client, %s think time, 1 write txn per %d ops\n",
		cfg.SF, opsPerClient, think, writeEvery)
	fmt.Fprintf(w, "%-8s %-8s %-12s %-12s %-8s\n", "Clients", "Ops", "Elapsed ms", "Ops/sec", "Speedup")

	var base float64
	for _, n := range clientCounts {
		var wg sync.WaitGroup
		errs := make(chan error, n)
		start := time.Now()
		for c := 0; c < n; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				if err := runClient(c, opsPerClient); err != nil {
					errs <- err
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return err
		}
		elapsed := time.Since(start)
		tput := float64(n*opsPerClient) / elapsed.Seconds()
		if base == 0 {
			base = tput
		}
		fmt.Fprintf(w, "%-8d %-8d %-12s %-12.1f %-8.2f\n",
			n, n*opsPerClient, ms(elapsed), tput, tput/base)
	}
	return nil
}
