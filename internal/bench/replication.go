package bench

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ldv/internal/client"
	"ldv/internal/engine"
	"ldv/internal/obs"
	"ldv/internal/osim"
	"ldv/internal/repl"
	"ldv/internal/server"
	"ldv/internal/tpch"
)

// multiDialer routes client addresses to in-process servers over net.Pipe,
// so one benchmark process can host a primary and several replicas.
type multiDialer map[string]*server.Server

func (d multiDialer) Connect(addr string) (net.Conn, error) {
	srv, ok := d[addr]
	if !ok {
		return nil, fmt.Errorf("unknown address %q", addr)
	}
	c, s := net.Pipe()
	go srv.HandleConn(s)
	return c, nil
}

// Replication measures read scaling from streaming WAL replication: closed-
// loop read clients against one primary, then the same client fleet with
// SELECTs routed across two read replicas, while a background writer commits
// on the primary throughout. It also samples the steady-state replication
// lag gauges during the routed run.
func Replication(cfg Config, w io.Writer) error {
	const (
		nClients     = 8
		opsPerClient = 50
		think        = 2 * time.Millisecond
		writeEvery   = 25 * time.Millisecond // background writer cadence
		nReplicas    = 2
	)

	// Primary: TPC-H loaded, then WAL attached (the snapshot carries the
	// loaded data; only post-attach commits are shipped as records).
	pdb := engine.NewDB(nil)
	if _, err := tpch.Load(pdb, cfg.TPCH()); err != nil {
		return err
	}
	if err := pdb.EnableWAL(osim.NewFS(), "/wal"); err != nil {
		return err
	}
	psrv := server.New(pdb, nil)
	primary, err := repl.NewPrimary(pdb)
	if err != nil {
		return err
	}
	primary.SetHeartbeat(50 * time.Millisecond)
	psrv.SetReplicationSource(primary)

	dialer := multiDialer{"primary": psrv}
	var replicas []*repl.Replica
	for i := 0; i < nReplicas; i++ {
		rdb := engine.NewDB(nil)
		r := repl.New(rdb, fmt.Sprintf("bench-replica-%d", i), func() (net.Conn, error) {
			c, s := net.Pipe()
			go psrv.HandleConn(s)
			return c, nil
		})
		rsrv := server.New(rdb, nil)
		rsrv.SetReadGate(r)
		r.Start()
		defer r.Stop()
		if err := r.WaitApplied(0); err != nil {
			return fmt.Errorf("replica %d bootstrap: %w", i, err)
		}
		dialer[fmt.Sprintf("replica-%d", i)] = rsrv
		replicas = append(replicas, r)
	}

	// Background writer: one supplier-balance transaction per tick, running
	// for the whole benchmark so replicas always have records to apply.
	stopWriter := make(chan struct{})
	var writerErr error
	var writes atomic.Int64
	var writerWg sync.WaitGroup
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		conn, err := client.Dial(dialer, "primary", client.Options{Proc: "bench:writer", NoTrace: true})
		if err != nil {
			writerErr = err
			return
		}
		defer conn.Close()
		tick := time.NewTicker(writeEvery)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stopWriter:
				return
			case <-tick.C:
			}
			sql := fmt.Sprintf("UPDATE supplier SET s_acctbal = s_acctbal + 1 WHERE s_suppkey = %d", i%10+1)
			if _, err := conn.Exec(sql); err != nil {
				writerErr = err
				return
			}
			writes.Add(1)
		}
	}()

	reads := []string{
		"SELECT COUNT(*) FROM supplier",
		"SELECT SUM(s_acctbal) FROM supplier",
		"SELECT n_name FROM nation WHERE n_nationkey = 7",
		"SELECT c_name FROM customer WHERE c_custkey = 13",
	}
	runReaders := func(replicaFor func(id int) string) (float64, error) {
		var wg sync.WaitGroup
		errs := make(chan error, nClients)
		start := time.Now()
		for c := 0; c < nClients; c++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				opts := client.Options{Proc: fmt.Sprintf("bench:r%d", id), NoTrace: true, ReadReplica: replicaFor(id)}
				conn, err := client.Dial(dialer, "primary", opts)
				if err != nil {
					errs <- err
					return
				}
				defer conn.Close()
				for i := 0; i < opsPerClient; i++ {
					time.Sleep(think)
					if _, err := conn.Query(reads[i%len(reads)]); err != nil {
						errs <- fmt.Errorf("client %d: %w", id, err)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return 0, err
		}
		return float64(nClients*opsPerClient) / time.Since(start).Seconds(), nil
	}

	// Median of three runs per config damps scheduler noise; the first
	// (discarded) warm-up run primes parsers, caches, and the pipe path.
	median3 := func(replicaFor func(id int) string) (float64, error) {
		var runs []float64
		for i := 0; i < 3; i++ {
			tput, err := runReaders(replicaFor)
			if err != nil {
				return 0, err
			}
			runs = append(runs, tput)
		}
		if runs[0] > runs[1] {
			runs[0], runs[1] = runs[1], runs[0]
		}
		if runs[1] > runs[2] {
			runs[1], runs[2] = runs[2], runs[1]
		}
		if runs[0] > runs[1] {
			runs[0], runs[1] = runs[1], runs[0]
		}
		return runs[1], nil
	}
	if _, err := runReaders(func(int) string { return "" }); err != nil {
		return err
	}
	if _, err := runReaders(func(id int) string { return fmt.Sprintf("replica-%d", id%nReplicas) }); err != nil {
		return err
	}
	baseline, err := median3(func(int) string { return "" })
	if err != nil {
		return err
	}

	// Routed run: each client pins its SELECTs to one of the replicas, with
	// a lag sampler watching the primary-side gauges.
	lagRecords := obs.GetGauge("repl.lag_records")
	lagTicks := obs.GetGauge("repl.lag_ticks")
	var maxLagRecords, maxLagTicks, lagSum, lagSamples int64
	stopSampler := make(chan struct{})
	var samplerWg sync.WaitGroup
	samplerWg.Add(1)
	go func() {
		defer samplerWg.Done()
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-tick.C:
				lr, lt := lagRecords.Load(), lagTicks.Load()
				if lr > maxLagRecords {
					maxLagRecords = lr
				}
				if lt > maxLagTicks {
					maxLagTicks = lt
				}
				lagSum += lr
				lagSamples++
			}
		}
	}()
	routed, err := median3(func(id int) string { return fmt.Sprintf("replica-%d", id%nReplicas) })
	close(stopSampler)
	samplerWg.Wait()
	if err != nil {
		return err
	}

	close(stopWriter)
	writerWg.Wait()
	if writerErr != nil {
		return fmt.Errorf("background writer: %w", writerErr)
	}
	// Convergence sanity: both replicas reach the writer's final position.
	head := pdb.WAL().Seq()
	for i, r := range replicas {
		if err := r.WaitApplied(head); err != nil {
			return fmt.Errorf("replica %d did not converge: %w", i, err)
		}
	}

	fmt.Fprintf(w, "Replication read scaling at SF %g: %d closed-loop clients, %d reads each, %s think, writer every %s\n",
		cfg.SF, nClients, opsPerClient, think, writeEvery)
	fmt.Fprintf(w, "%-28s %-10s %-10s\n", "Config", "Reads/sec", "Speedup")
	fmt.Fprintf(w, "%-28s %-10.1f %-10.2f\n", "primary only", baseline, 1.0)
	fmt.Fprintf(w, "%-28s %-10.1f %-10.2f\n", fmt.Sprintf("primary + %d replicas", nReplicas), routed, routed/baseline)
	var meanLag float64
	if lagSamples > 0 {
		meanLag = float64(lagSum) / float64(lagSamples)
	}
	fmt.Fprintf(w, "Background writes committed: %d (all replicated; head seq %d)\n", writes.Load(), head)
	fmt.Fprintf(w, "Steady-state lag during routed run: mean %.1f records, max %d records, max %d clock ticks\n",
		meanLag, maxLagRecords, maxLagTicks)
	fmt.Fprintln(w, "Note: all nodes share this host's cores, so the routed configuration shows")
	fmt.Fprintln(w, "read *offload* (primary cycles freed, bounded staleness), not added capacity;")
	fmt.Fprintln(w, "the speedup column only exceeds 1.0 when spare cores exist to absorb the replicas.")
	return nil
}
