package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"ldv/internal/obs"
	"ldv/internal/tpch"
)

// Overhead reproduces the paper's audit-overhead experiment (§IX-B): the
// same Q1-1 workload runs once unmonitored (plain PostgreSQL) and once under
// full server-included auditing, and the audited run's extra wall time is
// attributed to lineage computation, trace construction, tuple dedup, and
// logging using the auditor's own timing metrics. Metrics are reset between
// the two runs so the snapshot holds only the audited run's costs.
func Overhead(cfg Config, w io.Writer) error {
	q, err := tpch.QueryByID(cfg.TPCH(), "Q1-1")
	if err != nil {
		return err
	}
	// Generate the TPC-H data template up front: it is cached per (SF,
	// seed), and charging generation to whichever run happens first would
	// skew the native/audited comparison.
	if _, err := dataTemplate(cfg); err != nil {
		return err
	}

	// Wall times come from the bench.audit span, which brackets exactly the
	// monitored workload run — machine boot and packaging are excluded from
	// both sides of the comparison.
	obs.Reset()
	if _, err := RunAudit(cfg, q, SysPlain); err != nil {
		return fmt.Errorf("native run: %w", err)
	}
	native := obs.TakeSnapshot().HistogramSumNS("span.bench.audit")

	obs.Reset()
	out, err := RunAudit(cfg, q, SysSI)
	if err != nil {
		return fmt.Errorf("audited run: %w", err)
	}
	snap := obs.TakeSnapshot()
	audited := snap.HistogramSumNS("span.bench.audit")

	fmt.Fprintf(w, "Audit overhead (paper §IX-B): query %s, SF %g, workload %d inserts / %d selects / %d updates\n",
		q.ID, cfg.SF, cfg.Inserts, cfg.Selects, cfg.Updates)
	rep := obs.BuildOverheadReport(native, audited, snap)
	rep.Render(w)

	fmt.Fprintf(w, "audited run: %d statements, %d syscalls intercepted, %d trace nodes\n",
		snap.Counter("engine.stmts"), sumByPrefix(snap, "auditor.syscalls."), out.TraceNodes)
	fmt.Fprintf(w, "tuples: %d fetched, %d stored, %d deduped (relevant packaged: %d)\n",
		snap.Counter("auditor.tuples.fetched"), snap.Counter("auditor.tuples.stored"),
		snap.Counter("auditor.tuples.deduped"), out.RelevantTuples)
	fmt.Fprintf(w, "wire: %d bytes in, %d bytes out; package: %d files, %s MB\n",
		snap.Counter("wire.in.bytes"), snap.Counter("wire.out.bytes"),
		out.Package.Len(), mb(out.Package.TotalSize()))
	fmt.Fprintln(w, "-- phase timings (audited run) --")
	PhaseReport(snap, w)
	return nil
}

// sumByPrefix totals every counter whose name starts with prefix.
func sumByPrefix(snap *obs.Snapshot, prefix string) int64 {
	var total int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, prefix) {
			total += v
		}
	}
	return total
}

// phaseNames are the span histograms PhaseReport summarises, in
// presentation order: the harness phases first, then the ldv-internal ones.
var phaseNames = []string{
	"bench.audit", "bench.package", "bench.replay",
	"audit.run", "replay.prepare", "replay.run",
}

// PhaseReport prints per-phase wall-clock totals (audit, package, replay)
// from the span histograms of an observability snapshot. Phases that never
// ran are omitted.
func PhaseReport(snap *obs.Snapshot, w io.Writer) {
	fmt.Fprintf(w, "%-18s %8s %14s %14s\n", "Phase", "Runs", "Total (ms)", "Mean (ms)")
	// Fixed phases first, then any other span histogram alphabetically.
	names := append(append([]string(nil), phaseNames...), sortedExtra(snap, phaseNames)...)
	for _, name := range names {
		h := snap.Histogram("span." + name)
		if h.Count == 0 {
			continue
		}
		total := time.Duration(h.Sum)
		fmt.Fprintf(w, "%-18s %8d %14s %14s\n", name, h.Count, ms(total), ms(total/time.Duration(h.Count)))
	}
}

func contains(names []string, s string) bool {
	for _, n := range names {
		if n == s {
			return true
		}
	}
	return false
}

func sortedExtra(snap *obs.Snapshot, known []string) []string {
	var extra []string
	for name := range snap.Histograms {
		if strings.HasPrefix(name, "span.") && !contains(known, strings.TrimPrefix(name, "span.")) {
			extra = append(extra, strings.TrimPrefix(name, "span."))
		}
	}
	sort.Strings(extra)
	return extra
}
