package bench

import "ldv/internal/ldv"

// runAuditDirect audits one app with explicit dedup control (test helper).
func runAuditDirect(m *ldv.Machine, app ldv.App, disableDedup bool) (*ldv.Auditor, error) {
	return ldv.AuditWithOptions(m, []ldv.App{app},
		ldv.AuditOptions{CollectLineage: true, DisableDedup: disableDedup})
}
