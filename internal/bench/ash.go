package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"ldv/internal/client"
	"ldv/internal/engine"
	"ldv/internal/obs"
	"ldv/internal/server"
	"ldv/internal/tpch"
)

// ASHOverhead measures what always-on wait-event accounting plus the ASH
// sampler cost a loaded server: a closed loop of concurrent clients hammers
// TPC-H point and aggregate SELECTs through in-process connections, once
// with the sampler recording at the default rate and once with it disabled.
// The cumulative wait counters have no kill switch (two atomic adds per
// actual wait), so the disabled side still pays them — the comparison
// isolates exactly what the kill switch controls, which is what an operator
// can choose. Rounds alternate and each mode is scored by its fastest round,
// as in IntrospectionOverhead; the budget for the feature is <2%. The report
// closes with the surface eating its own dog food: the wait-event totals and
// the sample count queried back over SQL.
func ASHOverhead(cfg Config, w io.Writer) error {
	const (
		clients     = 8
		opsPerConn  = 100
		rounds      = 9
		opsPerRound = clients * opsPerConn
	)

	obs.Reset()
	db := engine.NewDB(nil)
	if _, err := tpch.Load(db, cfg.TPCH()); err != nil {
		return err
	}
	srv := server.New(db, nil)
	dialer := pipeDialer{srv}

	reads := []string{
		"SELECT COUNT(*) FROM supplier",
		"SELECT SUM(s_acctbal) FROM supplier",
		"SELECT n_name FROM nation WHERE n_nationkey = 7",
		"SELECT c_name FROM customer WHERE c_custkey = 13",
	}
	runRound := func(sample bool) (time.Duration, error) {
		obs.ASH().SetEnabled(sample)
		// A round is ~100ms; a GC pause landing inside one round but not its
		// counterpart would dwarf the effect being measured. Collect up front
		// so each round starts from the same heap state.
		runtime.GC()
		conns := make([]*client.Conn, clients)
		for i := range conns {
			conn, err := client.Dial(dialer, "pipe", client.Options{Proc: "ash-bench", NoTrace: true})
			if err != nil {
				return 0, err
			}
			defer conn.Close()
			conns[i] = conn
		}
		var wg sync.WaitGroup
		errs := make([]error, clients)
		start := time.Now()
		for i, conn := range conns {
			wg.Add(1)
			go func(i int, conn *client.Conn) {
				defer wg.Done()
				for n := 0; n < opsPerConn; n++ {
					if _, err := conn.Query(reads[n%len(reads)]); err != nil {
						errs[i] = err
						return
					}
				}
			}(i, conn)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return elapsed, nil
	}

	// Warm both paths: parser and catalog caches, pipe plumbing, and (on the
	// sampled side) the sampler goroutine itself.
	for _, sample := range []bool{false, true} {
		if _, err := runRound(sample); err != nil {
			return err
		}
	}

	best := map[bool]time.Duration{}
	for r := 0; r < rounds; r++ {
		for _, sample := range []bool{false, true} {
			elapsed, err := runRound(sample)
			if err != nil {
				return err
			}
			if cur, ok := best[sample]; !ok || elapsed < cur {
				best[sample] = elapsed
			}
		}
	}
	obs.ASH().SetEnabled(true)

	baseline, sampled := best[false], best[true]
	overhead := float64(sampled-baseline) / float64(baseline) * 100

	fmt.Fprintf(w, "ASH overhead: SF %g, %d clients x %d SELECTs/round, sampler at %d Hz, best of %d alternating rounds\n",
		cfg.SF, clients, opsPerConn, obs.ASH().Rate(), rounds)
	fmt.Fprintf(w, "%-28s %12s %14s\n", "Mode", "Round ms", "Per query us")
	perQuery := func(d time.Duration) float64 {
		return float64(d.Microseconds()) / float64(opsPerRound)
	}
	fmt.Fprintf(w, "%-28s %12s %14.1f\n", "Sampler disabled baseline", ms(baseline), perQuery(baseline))
	fmt.Fprintf(w, "%-28s %12s %14.1f\n", "Sampler recording", ms(sampled), perQuery(sampled))
	fmt.Fprintf(w, "Overhead: %.2f%% (budget: <2%%)\n\n", overhead)

	// The surface itself, over the same wire protocol it profiles.
	conn, err := client.Dial(dialer, "pipe", client.Options{Proc: "ash-bench", NoTrace: true})
	if err != nil {
		return err
	}
	defer conn.Close()
	res, err := conn.Query(
		"SELECT event, waits, wait_ns FROM ldv_stat_wait_events ORDER BY wait_ns DESC")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "SELECT event, waits, wait_ns FROM ldv_stat_wait_events ORDER BY wait_ns DESC:\n")
	for _, row := range res.Rows {
		fmt.Fprintf(w, "%-18s %10d %14d\n", row[0].Str(), row[1].Int(), row[2].Int())
	}
	res, err = conn.Query("SELECT COUNT(*) FROM ldv_stat_ash")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ASH samples held: %d\n", res.Rows[0][0].Int())
	return nil
}
