// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§IX): per-step audit and replay times
// (Figure 7), per-query audit and replay times (Figure 8), package sizes
// (Figure 9), the query/selectivity inventory (Table II), the package
// contents matrix (Table III), and the VM-image comparison (§IX-F), plus
// ablation studies for the design choices called out in DESIGN.md.
package bench

import (
	"fmt"
	"sync"
	"time"

	"ldv/internal/baseline/ptu"
	"ldv/internal/baseline/vmi"
	"ldv/internal/client"
	"ldv/internal/engine"
	"ldv/internal/ldv"
	"ldv/internal/obs"
	"ldv/internal/osim"
	"ldv/internal/pack"
	"ldv/internal/tpch"
)

// Config scales the experiments. The paper runs TPC-H SF 1 with 1000
// inserts / 10 selects / 100 updates; the defaults here are laptop-scale
// with the same proportions available via flags.
type Config struct {
	SF      float64
	Seed    uint64
	Inserts int
	Selects int
	Updates int
}

// DefaultConfig is the scale used by `ldv-bench` and the testing.B benches.
func DefaultConfig() Config {
	return Config{SF: 0.005, Seed: 42, Inserts: 200, Selects: 10, Updates: 50}
}

// TPCH returns the generator configuration.
func (c Config) TPCH() tpch.Config { return tpch.Config{SF: c.SF, Seed: c.Seed} }

func (c Config) workload(q tpch.Query) tpch.Workload {
	w := tpch.NewWorkload(c.TPCH(), q)
	w.NumInserts, w.NumSelects, w.NumUpdates = c.Inserts, c.Selects, c.Updates
	return w
}

// System identifies one sharing approach under comparison.
type System string

// The compared systems, labelled as in the paper's figures.
const (
	SysPlain System = "PostgreSQL"
	SysPTU   System = "PostgreSQL + PTU"
	SysSI    System = "Server-included package"
	SysSE    System = "Server-excluded package"
	SysVM    System = "VM"
)

// AuditSystems are the systems of Figures 7a/8a.
func AuditSystems() []System { return []System{SysPTU, SysSI, SysSE} }

// ReplaySystems are the systems of Figures 7b/8b.
func ReplaySystems() []System { return []System{SysPTU, SysSI, SysSE, SysVM} }

// StepTimes holds per-step wall-clock durations of one workload execution.
type StepTimes struct {
	Init       time.Duration // replay initialization (zero during audit)
	Inserts    time.Duration
	SelectEach []time.Duration
	Updates    time.Duration
}

// FirstSelect is the cold-cache first query instance.
func (s *StepTimes) FirstSelect() time.Duration {
	if len(s.SelectEach) == 0 {
		return 0
	}
	return s.SelectEach[0]
}

// OtherSelects is the mean of the warm query instances.
func (s *StepTimes) OtherSelects() time.Duration {
	if len(s.SelectEach) < 2 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.SelectEach[1:] {
		sum += d
	}
	return sum / time.Duration(len(s.SelectEach)-1)
}

// SelectMean is the mean over all query instances (Figure 8's metric).
func (s *StepTimes) SelectMean() time.Duration {
	if len(s.SelectEach) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.SelectEach {
		sum += d
	}
	return sum / time.Duration(len(s.SelectEach))
}

// ---- TPC-H data templates ----

// Loading TPC-H is by far the most expensive setup step, so generated data
// is encoded once per (SF, seed) and stamped into each fresh machine's data
// directory, which doubles as the pre-existing on-disk database §IX-A's
// runs start from.
var (
	templateMu sync.Mutex
	templates  = map[Config]map[string][]byte{}
)

func dataTemplate(cfg Config) (map[string][]byte, error) {
	templateMu.Lock()
	defer templateMu.Unlock()
	key := Config{SF: cfg.SF, Seed: cfg.Seed}
	if t, ok := templates[key]; ok {
		return t, nil
	}
	db := engine.NewDB(nil)
	if _, err := tpch.Load(db, cfg.TPCH()); err != nil {
		return nil, err
	}
	fs := osim.NewFS()
	if err := db.Checkpoint(fs, "/t"); err != nil {
		return nil, err
	}
	files := map[string][]byte{}
	names, err := fs.ReadDir("/t")
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		data, err := fs.ReadFile("/t/" + n)
		if err != nil {
			return nil, err
		}
		files[n] = data
	}
	templates[key] = files
	return files, nil
}

// NewMachine boots a machine whose database is the TPC-H dataset, present
// both in memory and as on-disk data files.
func NewMachine(cfg Config) (*ldv.Machine, error) {
	files, err := dataTemplate(cfg)
	if err != nil {
		return nil, err
	}
	m, err := ldv.NewMachine()
	if err != nil {
		return nil, err
	}
	fs := m.Kernel.FS()
	for name, data := range files {
		if err := fs.WriteFile(m.DataDir+"/"+name, data); err != nil {
			return nil, err
		}
	}
	if err := m.DB.LoadDir(fs, m.DataDir); err != nil {
		return nil, err
	}
	return m, nil
}

// ---- the workload application ----

// AppBinaryPath is where the benchmark application is installed.
const AppBinaryPath = "/usr/bin/tpch-app"

// workloadApp builds the §IX-A application as an installable binary whose
// step durations land in st. When vm is set, DB traffic passes through the
// VM baseline's emulated device layer.
func workloadApp(w tpch.Workload, st *StepTimes, vm bool) ldv.App {
	return ldv.App{
		Binary: AppBinaryPath,
		Libs:   ldv.ClientLibs(),
		Size:   180 << 10,
		Prog: func(p *osim.Process) error {
			var conn *client.Conn
			var err error
			if vm {
				conn, err = vmi.Dial(p, ldv.DefaultAddr, ldv.DefaultDatabase)
			} else {
				conn, err = ldv.Dial(p)
			}
			if err != nil {
				return err
			}
			defer conn.Close()

			if w.NumInserts > 0 {
				t0 := time.Now()
				if err := w.InsertStep(conn); err != nil {
					return err
				}
				st.Inserts = time.Since(t0)
			}
			for i := 0; i < w.NumSelects; i++ {
				t0 := time.Now()
				if err := w.SelectOnce(conn); err != nil {
					return err
				}
				st.SelectEach = append(st.SelectEach, time.Since(t0))
			}
			if w.NumUpdates > 0 {
				t0 := time.Now()
				if err := w.UpdateStep(conn); err != nil {
					return err
				}
				st.Updates = time.Since(t0)
			}
			return nil
		},
	}
}

// WorkloadApp builds the §IX-A workload application for query q, writing
// step durations into st (exported for the root benchmark suite).
func WorkloadApp(cfg Config, q tpch.Query, st *StepTimes) ldv.App {
	return workloadApp(cfg.workload(q), st, false)
}

// AuditOutcome bundles everything a monitored run produced.
type AuditOutcome struct {
	System  System
	Steps   StepTimes
	Package *pack.Archive // nil for SysPlain and SysVM
	Image   *vmi.Image    // SysVM only
	Apps    []ldv.App
	// Stats from the LDV auditor (SI/SE only).
	RelevantTuples   int
	ProvenanceTuples int
	TraceNodes       int
}

// phaseSpan wraps one harness phase in an obs span so per-phase timings
// land in the observability snapshot as span.<name> histograms.
func phaseSpan(name string, sys System, q tpch.Query, f func() error) error {
	sp := obs.StartSpan(name).SetAttr("system", string(sys)).SetAttr("query", q.ID)
	defer sp.End()
	return f()
}

// RunAudit executes the workload for query q under one system's monitoring
// and builds its package/image. The monitored run and the packaging step are
// recorded as bench.audit / bench.package spans.
func RunAudit(cfg Config, q tpch.Query, sys System) (*AuditOutcome, error) {
	m, err := NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	w := cfg.workload(q)
	out := &AuditOutcome{System: sys}
	app := workloadApp(w, &out.Steps, sys == SysVM)
	out.Apps = []ldv.App{app}

	switch sys {
	case SysPlain:
		if err := phaseSpan("bench.audit", sys, q, func() error {
			return ldv.Run(m, out.Apps)
		}); err != nil {
			return nil, err
		}
	case SysPTU:
		var tr *ptu.Tracer
		if err := phaseSpan("bench.audit", sys, q, func() (err error) {
			tr, err = ptu.Audit(m, out.Apps)
			return err
		}); err != nil {
			return nil, err
		}
		if err := phaseSpan("bench.package", sys, q, func() (err error) {
			out.Package, err = ptu.BuildPackage(m, tr, out.Apps)
			return err
		}); err != nil {
			return nil, err
		}
	case SysSI:
		var aud *ldv.Auditor
		if err := phaseSpan("bench.audit", sys, q, func() (err error) {
			aud, err = ldv.Audit(m, out.Apps)
			return err
		}); err != nil {
			return nil, err
		}
		if err := phaseSpan("bench.package", sys, q, func() (err error) {
			out.Package, err = ldv.BuildServerIncluded(m, aud, out.Apps)
			return err
		}); err != nil {
			return nil, err
		}
		out.RelevantTuples = aud.RelevantTupleCount()
		out.ProvenanceTuples = aud.ProvenanceTupleCount()
		out.TraceNodes = aud.Trace().NodeCount()
	case SysSE:
		var aud *ldv.Auditor
		if err := phaseSpan("bench.audit", sys, q, func() (err error) {
			aud, err = ldv.AuditWithOptions(m, out.Apps, ldv.AuditOptions{CollectLineage: false})
			return err
		}); err != nil {
			return nil, err
		}
		if err := phaseSpan("bench.package", sys, q, func() (err error) {
			out.Package, err = ldv.BuildServerExcluded(m, aud, out.Apps)
			return err
		}); err != nil {
			return nil, err
		}
	case SysVM:
		if err := phaseSpan("bench.audit", sys, q, func() error {
			out.Image = vmi.BuildImage(m)
			return vmi.Run(m, out.Image, out.Apps)
		}); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("bench: unknown system %q", sys)
	}
	return out, nil
}

// RunReplay re-executes a previously packaged run under the given system,
// timing initialization and the workload steps. The whole re-execution is
// recorded as a bench.replay span.
func RunReplay(cfg Config, q tpch.Query, sys System, audit *AuditOutcome) (*StepTimes, error) {
	sp := obs.StartSpan("bench.replay").SetAttr("system", string(sys)).SetAttr("query", q.ID)
	defer sp.End()
	w := cfg.workload(q)
	st := &StepTimes{}
	app := workloadApp(w, st, sys == SysVM)
	progs := map[string]osim.Program{app.Binary: app.Prog}

	switch sys {
	case SysPTU:
		t0 := time.Now()
		k := osim.NewKernel()
		if err := audit.Package.ExtractTo(k.FS(), "/"); err != nil {
			return nil, err
		}
		db := engine.NewDB(k.Clock())
		m := ldv.NewMachineForReplay(k, db, ldv.DefaultAddr, ldv.DefaultDataDir, ldv.DefaultDatabase)
		m.RegisterApps([]ldv.App{app})
		ldv.SetRuntime(k, &ldv.Runtime{Mode: ldv.ModePlain, Addr: m.Addr, Database: m.Database})
		defer ldv.ClearRuntime(k)
		root := k.Start("ptu-exec")
		defer root.Exit()
		if err := m.StartServer(root); err != nil {
			return nil, err
		}
		st.Init = time.Since(t0)
		if err := root.Spawn(app.Binary, app.Libs...); err != nil {
			return nil, err
		}
		if err := m.StopServer(); err != nil {
			return nil, err
		}
	case SysSI:
		t0 := time.Now()
		setup, err := ldv.PrepareReplay(audit.Package, progs)
		if err != nil {
			return nil, err
		}
		defer ldv.ClearRuntime(setup.Machine.Kernel)
		root := setup.Machine.Kernel.Start("ldv-exec")
		defer root.Exit()
		if err := setup.Machine.StartServer(root); err != nil {
			return nil, err
		}
		st.Init = time.Since(t0)
		if err := root.Spawn(app.Binary, app.Libs...); err != nil {
			return nil, err
		}
		if err := setup.Machine.StopServer(); err != nil {
			return nil, err
		}
	case SysSE:
		t0 := time.Now()
		setup, err := ldv.PrepareReplay(audit.Package, progs)
		if err != nil {
			return nil, err
		}
		defer ldv.ClearRuntime(setup.Machine.Kernel)
		st.Init = time.Since(t0)
		root := setup.Machine.Kernel.Start("ldv-exec")
		defer root.Exit()
		if err := root.Spawn(app.Binary, app.Libs...); err != nil {
			return nil, err
		}
	case SysVM:
		t0 := time.Now()
		vmi.Boot(audit.Image)
		m, err := NewMachine(cfg)
		if err != nil {
			return nil, err
		}
		if err := m.InstallApps([]ldv.App{app}); err != nil {
			return nil, err
		}
		ldv.SetRuntime(m.Kernel, &ldv.Runtime{Mode: ldv.ModePlain, Addr: m.Addr, Database: m.Database})
		defer ldv.ClearRuntime(m.Kernel)
		root := m.Kernel.Start("vm")
		defer root.Exit()
		if err := m.StartServer(root); err != nil {
			return nil, err
		}
		st.Init = time.Since(t0)
		if err := root.Spawn(app.Binary, app.Libs...); err != nil {
			return nil, err
		}
		if err := m.StopServer(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("bench: cannot replay system %q", sys)
	}
	return st, nil
}
