package bench

import (
	"fmt"
	"io"
	"time"

	"ldv/internal/client"
	"ldv/internal/engine"
	"ldv/internal/obs"
	"ldv/internal/server"
	"ldv/internal/tpch"
)

// TracingOverhead measures what end-to-end request tracing costs on a
// read-only workload: the same TPC-H point and aggregate SELECTs run through
// client.Conn against an in-process server once with tracing on (root span
// per query, trace-context header on the wire, server/engine spans, flight
// recorder) and once dialed with NoTrace, which suppresses every span on
// both ends. Rounds alternate between the modes so clock drift and cache
// warmth hit both sides equally, and each mode is scored by its fastest
// round — the standard microbenchmark defense against scheduler noise.
// The budget for the feature is <5% on this workload.
func TracingOverhead(cfg Config, w io.Writer) error {
	const (
		opsPerRound = 400
		rounds      = 5
	)

	obs.Reset()
	db := engine.NewDB(nil)
	if _, err := tpch.Load(db, cfg.TPCH()); err != nil {
		return err
	}
	srv := server.New(db, nil)
	dialer := pipeDialer{srv}

	reads := []string{
		"SELECT COUNT(*) FROM supplier",
		"SELECT SUM(s_acctbal) FROM supplier",
		"SELECT n_name FROM nation WHERE n_nationkey = 7",
		"SELECT c_name FROM customer WHERE c_custkey = 13",
	}
	runRound := func(noTrace bool, ops int) (time.Duration, error) {
		conn, err := client.Dial(dialer, "pipe", client.Options{Proc: "trace-bench", NoTrace: noTrace})
		if err != nil {
			return 0, err
		}
		defer conn.Close()
		start := time.Now()
		for i := 0; i < ops; i++ {
			if _, err := conn.Query(reads[i%len(reads)]); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	// Warm both paths: parser and catalog caches, pipe plumbing, and the
	// trace machinery's lazy metric registrations.
	for _, noTrace := range []bool{true, false} {
		if _, err := runRound(noTrace, opsPerRound/4); err != nil {
			return err
		}
	}

	best := map[bool]time.Duration{}
	for r := 0; r < rounds; r++ {
		for _, noTrace := range []bool{true, false} {
			elapsed, err := runRound(noTrace, opsPerRound)
			if err != nil {
				return err
			}
			if cur, ok := best[noTrace]; !ok || elapsed < cur {
				best[noTrace] = elapsed
			}
		}
	}

	baseline, traced := best[true], best[false]
	overhead := float64(traced-baseline) / float64(baseline) * 100
	snap := obs.TakeSnapshot()
	traces := obs.Traces()
	var spans int
	for _, tr := range traces {
		spans += len(tr.Spans)
	}

	fmt.Fprintf(w, "Tracing overhead (read-only): SF %g, %d SELECTs/round, best of %d alternating rounds\n",
		cfg.SF, opsPerRound, rounds)
	fmt.Fprintf(w, "%-28s %12s %14s\n", "Mode", "Round ms", "Per query us")
	perQuery := func(d time.Duration) float64 {
		return float64(d.Microseconds()) / float64(opsPerRound)
	}
	fmt.Fprintf(w, "%-28s %12s %14.1f\n", "NoTrace baseline", ms(baseline), perQuery(baseline))
	fmt.Fprintf(w, "%-28s %12s %14.1f\n", "Traced", ms(traced), perQuery(traced))
	fmt.Fprintf(w, "Overhead: %.2f%% (budget: <5%%)\n", overhead)
	fmt.Fprintf(w, "flight recorder: %d traces retained, %d spans; %d client.query spans recorded in total\n",
		len(traces), spans, snap.Histogram("span.client.query").Count)
	return nil
}
