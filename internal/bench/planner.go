package bench

import (
	"fmt"
	"io"
	"time"

	"ldv/internal/engine"
	"ldv/internal/obs"
	"ldv/internal/tpch"
)

// PlannerBench measures what the query planner's secondary indexes buy on
// selective queries: the same point and range lookups against lineitem, run
// full-scan (no indexes) and index-backed, each scored by its fastest round
// so scheduler noise doesn't pollute the ratio. The point-query speedup is
// the headline number — on TPC-H at SF 0.02 an equality probe on an
// indexed column should beat the full scan by well over an order of
// magnitude, since the scan examines every lineitem version while the index
// touches one bucket. The report closes with the planner's own accounting:
// plan.index_scans / plan.full_scans and both EXPLAIN trees.
func PlannerBench(cfg Config, w io.Writer) error {
	const (
		opsPerRound = 50
		rounds      = 5
	)

	obs.Reset()
	db := engine.NewDB(nil)
	stats, err := tpch.Load(db, cfg.TPCH())
	if err != nil {
		return err
	}

	// Probe keys that exist: order keys are dense from 1.
	point := func(i int) string {
		return fmt.Sprintf("SELECT l_quantity FROM lineitem WHERE l_orderkey = %d", 1+i%100)
	}
	rng := func(i int) string {
		lo := 1 + i%100
		return fmt.Sprintf("SELECT count(*) FROM lineitem WHERE l_orderkey >= %d AND l_orderkey < %d", lo, lo+10)
	}

	measure := func(q func(int) string) (time.Duration, error) {
		best := time.Duration(0)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for i := 0; i < opsPerRound; i++ {
				if _, err := db.Exec(q(i), engine.ExecOptions{}); err != nil {
					return 0, err
				}
			}
			d := time.Since(start)
			if best == 0 || d < best {
				best = d
			}
		}
		return best / opsPerRound, nil
	}

	fullPoint, err := measure(point)
	if err != nil {
		return err
	}
	fullRange, err := measure(rng)
	if err != nil {
		return err
	}

	if _, err := db.Exec("CREATE INDEX ix_l_orderkey ON lineitem (l_orderkey) USING ordered", engine.ExecOptions{}); err != nil {
		return err
	}
	idxPoint, err := measure(point)
	if err != nil {
		return err
	}
	idxRange, err := measure(rng)
	if err != nil {
		return err
	}

	speedup := func(full, idx time.Duration) float64 {
		if idx <= 0 {
			return 0
		}
		return float64(full) / float64(idx)
	}
	fmt.Fprintf(w, "Planner: secondary-index speedup at SF %g (%d lineitem rows)\n", cfg.SF, stats.Lineitem)
	fmt.Fprintf(w, "%-28s %-12s %-12s %-8s\n", "Query", "Full scan", "Index scan", "Speedup")
	fmt.Fprintf(w, "%-28s %-9s ms %-9s ms %.1fx\n", "point (l_orderkey = k)", ms(fullPoint), ms(idxPoint), speedup(fullPoint, idxPoint))
	fmt.Fprintf(w, "%-28s %-9s ms %-9s ms %.1fx\n", "range (10 order keys)", ms(fullRange), ms(idxRange), speedup(fullRange, idxRange))

	snap := obs.TakeSnapshot()
	fmt.Fprintf(w, "plan.index_scans: %d\n", snap.Counters["plan.index_scans"])
	fmt.Fprintf(w, "plan.full_scans:  %d\n", snap.Counters["plan.full_scans"])

	for _, q := range []string{point(0), rng(0)} {
		res, err := db.Exec("EXPLAIN "+q, engine.ExecOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "EXPLAIN %s\n", q)
		for _, r := range res.Rows {
			fmt.Fprintf(w, "  %-12s %-40s est=%s\n", r[0].String(), r[1].String(), r[2].String())
		}
	}
	return nil
}
