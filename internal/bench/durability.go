package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"ldv/internal/engine"
	"ldv/internal/obs"
	"ldv/internal/osim"
)

// syncDelayFS models a storage device with non-zero sync latency: each
// append (the WAL's flush unit) costs an extra fixed delay, the way a real
// fsync does. Without it the in-memory filesystem flushes instantaneously
// and group commit never gets a chance to batch — every commit finds the
// log idle and flushes alone.
type syncDelayFS struct {
	*osim.FS
	delay time.Duration
}

func (s syncDelayFS) AppendFile(p string, data []byte) error {
	time.Sleep(s.delay)
	return s.FS.AppendFile(p, data)
}

// Durability measures what the write-ahead log costs and what recovery from
// it takes.
//
// Part 1 (WAL overhead): the same insert workload runs without a WAL, with
// a WAL on a single session, and with a WAL shared by concurrent sessions,
// over a filesystem with a simulated 100µs sync latency. The
// single-session run pays one log flush per commit; the concurrent runs
// show group commit amortizing flushes across committers (flushes/txn well
// below 1).
//
// Part 2 (recovery): logs of increasing length are replayed into a fresh
// database, showing recovery time scaling with WAL size — the cost of an
// infrequent-checkpoint configuration.
func Durability(cfg Config, w io.Writer) error {
	const (
		inserts  = 2000
		syncCost = 100 * time.Microsecond
	)
	fmt.Fprintf(w, "Durability: WAL overhead (%d single-row insert txns, %v sync latency)\n", inserts, syncCost)
	fmt.Fprintf(w, "%-24s %-10s %-12s %-10s %-14s\n", "Configuration", "Total ms", "us/txn", "Flushes", "Flushes/txn")

	type setup struct {
		name     string
		wal      bool
		sessions int
	}
	for _, s := range []setup{
		{"no WAL", false, 1},
		{"WAL, 1 session", true, 1},
		{"WAL, 4 sessions", true, 4},
		{"WAL, 8 sessions", true, 8},
	} {
		db := engine.NewDB(nil)
		if s.wal {
			if err := db.EnableWAL(syncDelayFS{osim.NewFS(), syncCost}, "/w"); err != nil {
				return err
			}
		}
		if _, err := db.Exec("CREATE TABLE t (k INT PRIMARY KEY, v TEXT)", engine.ExecOptions{}); err != nil {
			return err
		}
		flushes0 := obs.GetCounter("wal.flushes").Load()
		per := inserts / s.sessions
		t0 := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, s.sessions)
		for sid := 0; sid < s.sessions; sid++ {
			wg.Add(1)
			go func(sid int) {
				defer wg.Done()
				sess := db.NewSession()
				defer sess.Close()
				for i := 0; i < per; i++ {
					k := sid*per + i
					_, err := sess.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'v%d')", k, k), engine.ExecOptions{})
					if err != nil {
						errs <- err
						return
					}
				}
			}(sid)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return err
		}
		elapsed := time.Since(t0)
		flushes := obs.GetCounter("wal.flushes").Load() - flushes0
		total := per * s.sessions
		fmt.Fprintf(w, "%-24s %-10s %-12.1f %-10d %-14.3f\n",
			s.name, ms(elapsed), float64(elapsed.Microseconds())/float64(total),
			flushes, float64(flushes)/float64(total))
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Durability: recovery time vs WAL length (no checkpoint)")
	fmt.Fprintf(w, "%-12s %-12s %-14s %-12s\n", "Txns", "WAL KB", "Recovery ms", "us/txn")
	for _, txns := range []int{100, 500, 1000, 2000, 4000} {
		fs := osim.NewFS()
		db := engine.NewDB(nil)
		if err := db.EnableWAL(fs, "/w"); err != nil {
			return err
		}
		if _, err := db.Exec("CREATE TABLE t (k INT PRIMARY KEY, v TEXT)", engine.ExecOptions{}); err != nil {
			return err
		}
		for i := 0; i < txns; i++ {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'value-%d')", i, i), engine.ExecOptions{}); err != nil {
				return err
			}
		}
		walBytes := db.WAL().Size()

		db2 := engine.NewDB(nil)
		t0 := time.Now()
		st, err := db2.Recover(fs, "/w")
		if err != nil {
			return err
		}
		elapsed := time.Since(t0)
		if st.ReplayedTxns != txns+1 { // + the CREATE TABLE record
			return fmt.Errorf("recovery replayed %d txns, want %d", st.ReplayedTxns, txns+1)
		}
		fmt.Fprintf(w, "%-12d %-12.1f %-14s %-12.1f\n",
			txns, float64(walBytes)/1024, ms(elapsed),
			float64(elapsed.Microseconds())/float64(txns))
	}
	return nil
}
