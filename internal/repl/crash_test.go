package repl

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"ldv/internal/engine"
)

var errCrash = errors.New("injected replica crash")

// TestReplicaCrashMatrix kills the replica at every apply operation — each
// snapshot chunk and each streamed record — in the style of the faultfs
// crash matrix, then lets the reconnect loop restart it and asserts
// convergence: every write acknowledged on the primary is visible on the
// replica after catch-up.
//
// Iteration i crashes the replica exactly once, at its i-th apply operation;
// the matrix ends once an iteration finishes without reaching operation i.
func TestReplicaCrashMatrix(t *testing.T) {
	const writes = 12
	for i := 0; ; i++ {
		srv, pdb := newPrimary(t)
		// Half the workload lands in the snapshot, half streams live, so the
		// matrix crosses both bootstrap and record-apply operations. An index
		// created before the snapshot rides the bootstrap path; the live half
		// streams index-maintained writes and index DDL as WAL records.
		var last uint64
		step := func(sql string) {
			t.Helper()
			res, err := pdb.Exec(sql, engine.ExecOptions{})
			if err != nil {
				t.Fatal(err)
			}
			last = res.CommitSeq
		}
		step("CREATE INDEX ix_v ON kv (v)")
		for w := 0; w < writes/2; w++ {
			step(fmt.Sprintf("INSERT INTO kv VALUES (%d, 'pre%d')", w, w))
		}

		r, rdb := newReplica(t, srv, fmt.Sprintf("crash-%d", i))
		var ops atomic.Int64
		var crashed atomic.Bool
		r.SetApplyHook(func(op string) error {
			if ops.Add(1)-1 == int64(i) && crashed.CompareAndSwap(false, true) {
				return errCrash
			}
			return nil
		})
		r.Start()
		// Let bootstrap finish (riding out the crash and reconnect when the
		// crash point lands inside it) so the second half of the workload
		// streams as live records rather than folding into the snapshot.
		if err := r.WaitApplied(last); err != nil {
			t.Fatalf("crash at op %d: bootstrap did not complete: %v", i, err)
		}

		for w := writes / 2; w < writes; w++ {
			step(fmt.Sprintf("INSERT INTO kv VALUES (%d, 'live%d')", w, w))
		}
		step("UPDATE kv SET v = 'moved' WHERE v = 'pre1'")
		step("CREATE INDEX ix_k2 ON kv (k) USING ordered")
		step("DROP INDEX ix_k2")
		// A vacuum pass streams a walVacuum horizon record; the trailing
		// insert advances the commit sequence past it so WaitApplied covers
		// the record too. VACUUM itself reports no CommitSeq, so it does not
		// go through step.
		if _, err := pdb.Exec("VACUUM", engine.ExecOptions{}); err != nil {
			t.Fatal(err)
		}
		step(fmt.Sprintf("INSERT INTO kv VALUES (%d, 'post')", writes))
		if err := r.WaitApplied(last); err != nil {
			t.Fatalf("crash at op %d: replica did not converge: %v", i, err)
		}
		if n := len(rows(t, rdb, "SELECT k FROM kv")); n != writes+1 {
			t.Fatalf("crash at op %d: %d rows on replica, want %d", i, n, writes+1)
		}
		// The replica applied the same retention horizon and reclaimed the
		// same dead versions (the superseded 'pre1' row) as the primary.
		if ph, rh := pdb.VacuumHorizon(), rdb.VacuumHorizon(); ph == 0 || ph != rh {
			t.Fatalf("crash at op %d: vacuum horizon primary=%d replica=%d", i, ph, rh)
		}
		assertSameRows(t, pdb, rdb, "SELECT name, dead_versions FROM ldv_stat_tables ORDER BY name")
		assertSameRows(t, pdb, rdb, "SELECT k, v FROM kv ORDER BY k")
		// The replicated index answers queries and matches the primary.
		assertSameRows(t, pdb, rdb, "SELECT k FROM kv WHERE v = 'moved' ORDER BY k")
		ixs := rows(t, rdb, "SELECT name FROM ldv_stat_indexes ORDER BY name")
		if len(ixs) != 1 || ixs[0] != "ix_v|" {
			t.Fatalf("crash at op %d: replica indexes = %v, want [ix_v]", i, ixs)
		}
		r.Stop()

		if !crashed.Load() {
			// The whole run finished in fewer than i operations: every
			// reachable crash point has been exercised.
			t.Logf("crash matrix complete after %d crash points", i)
			return
		}
	}
}
