package repl

import (
	"fmt"
	"log/slog"
	"net"
	"sort"
	"sync"
	"time"

	"ldv/internal/engine"
	"ldv/internal/wire"
)

// DefaultHeartbeat is the idle interval between keep-alive segments sent
// to subscribers when no commits are flowing.
const DefaultHeartbeat = 500 * time.Millisecond

// Primary ships flushed WAL batches to subscribed replicas. It hooks the
// WAL's post-flush shipper, so every record it forwards is already durable
// on the primary, in flush order, with contiguous sequence numbers.
type Primary struct {
	db        *engine.DB
	heartbeat time.Duration

	mu   sync.Mutex
	subs map[*subscriber]struct{}
}

// segment is one flushed group-commit batch, split into records.
type segment struct {
	firstSeq uint64
	ts       uint64
	records  [][]byte
}

// subscriber is the per-replica shipping queue. The WAL flush goroutine
// enqueues; the subscription's writer loop drains.
type subscriber struct {
	id string

	mu      sync.Mutex
	pending []segment
	notify  chan struct{} // buffered(1): wakes the writer loop
	done    chan struct{} // closed once when the subscription ends
	once    sync.Once

	appliedSeq uint64
	appliedTS  uint64
}

func (s *subscriber) enqueue(seg segment) {
	s.mu.Lock()
	s.pending = append(s.pending, seg)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

func (s *subscriber) take() []segment {
	s.mu.Lock()
	defer s.mu.Unlock()
	segs := s.pending
	s.pending = nil
	return segs
}

func (s *subscriber) close() { s.once.Do(func() { close(s.done) }) }

// NewPrimary wires a Primary to db's WAL. Call it after durability is
// enabled; it fails if the database has no WAL to ship from. Reattaching
// the WAL afterwards (e.g. a second EnableDurability) detaches the shipper,
// so create the Primary last.
func NewPrimary(db *engine.DB) (*Primary, error) {
	w := db.WAL()
	if w == nil {
		return nil, fmt.Errorf("replication: primary requires a WAL-enabled database")
	}
	p := &Primary{
		db:        db,
		heartbeat: DefaultHeartbeat,
		subs:      make(map[*subscriber]struct{}),
	}
	w.SetShipper(p.ship)
	p.registerView()
	return p, nil
}

// SetHeartbeat overrides the idle keep-alive interval (tests use a short one).
func (p *Primary) SetHeartbeat(d time.Duration) { p.heartbeat = d }

// ship runs on the WAL flush goroutine after each successful batch flush.
// It must only hand the batch to subscriber queues — no WAL calls, no I/O.
func (p *Primary) ship(firstSeq uint64, batch []byte) {
	seg := segment{
		firstSeq: firstSeq,
		ts:       p.db.ClockNow(),
		records:  engine.SplitWALBatch(batch),
	}
	p.mu.Lock()
	for s := range p.subs {
		s.enqueue(seg)
	}
	p.mu.Unlock()
}

func (p *Primary) addSub(s *subscriber) {
	p.mu.Lock()
	p.subs[s] = struct{}{}
	p.mu.Unlock()
	gSubscribers.Add(1)
}

func (p *Primary) removeSub(s *subscriber) {
	p.mu.Lock()
	delete(p.subs, s)
	p.mu.Unlock()
	gSubscribers.Add(-1)
}

// ServeSubscription handles one replica connection after the server reads a
// Subscribe frame. It registers the shipping queue BEFORE cutting the
// snapshot, so any batch flushed after the cut is already queued; records at
// or before the cut are trimmed by sequence on the way out, which makes the
// snapshot + stream hand-off gap-free and duplicate-free. The call owns the
// connection until the subscription ends.
func (p *Primary) ServeSubscription(conn net.Conn, proc string, sub wire.Subscribe) error {
	id := sub.ReplicaID
	if id == "" {
		id = proc
	}
	s := &subscriber{
		id:     id,
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	p.addSub(s)
	defer p.removeSub(s)
	defer s.close()

	snap, err := p.db.ReplicationSnapshot()
	if err != nil {
		_ = wire.Write(conn, wire.Error{Message: err.Error()})
		return err
	}
	for _, img := range snap.Tables {
		if err := wire.Write(conn, wire.SnapshotChunk{Table: img.Name, Data: img.Data}); err != nil {
			return err
		}
		mSnapshotBytes.Add(int64(len(img.Data)))
	}
	if err := wire.Write(conn, wire.SnapshotChunk{Done: true, CutSeq: snap.CutSeq}); err != nil {
		return err
	}

	// Reader side: consume acknowledgments and detect disconnect. The wire
	// allows concurrent read/write on one conn, so this runs alongside the
	// shipping loop below and ends it via s.done.
	go func() {
		defer s.close()
		for {
			msg, err := wire.Read(conn)
			if err != nil {
				return
			}
			switch m := msg.(type) {
			case wire.ReplicaStatus:
				s.mu.Lock()
				s.appliedSeq, s.appliedTS = m.AppliedSeq, m.AppliedTS
				s.mu.Unlock()
				p.updateLag(m)
			case wire.Terminate:
				return
			default:
				slog.Warn("replication: unexpected message from replica", "replica", id, "type", fmt.Sprintf("%T", msg))
			}
		}
	}()

	nextSeq := snap.CutSeq + 1
	ticker := time.NewTicker(p.heartbeat)
	defer ticker.Stop()
	for {
		segs := s.take()
		if len(segs) == 0 {
			select {
			case <-s.notify:
			case <-s.done:
				return nil
			case <-ticker.C:
				hb := wire.WALSegment{FirstSeq: nextSeq, PrimaryTS: p.db.ClockNow()}
				if err := wire.Write(conn, hb); err != nil {
					return err
				}
			}
			continue
		}
		for _, seg := range segs {
			recs, first := seg.records, seg.firstSeq
			end := first + uint64(len(recs))
			if end <= nextSeq {
				continue // entirely at or before the snapshot cut
			}
			if first < nextSeq {
				recs = recs[nextSeq-first:]
				first = nextSeq
			}
			if first > nextSeq {
				// Cannot happen while the shipper hook runs under the WAL
				// lock in flush order; bail rather than ship a gap.
				return fmt.Errorf("replication: stream gap: batch starts at %d, expected %d", first, nextSeq)
			}
			msg := wire.WALSegment{FirstSeq: first, PrimaryTS: seg.ts, Records: recs}
			if err := wire.Write(conn, msg); err != nil {
				return err
			}
			nextSeq = end
			mSegmentsOut.Inc()
			mRecordsOut.Add(int64(len(recs)))
			for _, r := range recs {
				mBytesOut.Add(int64(len(r)))
			}
		}
	}
}

// updateLag refreshes the primary-side lag gauges from one acknowledgment.
// Read the WAL head before taking any Primary lock: the shipper hook runs
// under the WAL mutex and takes p.mu, so the reverse order would deadlock.
func (p *Primary) updateLag(m wire.ReplicaStatus) {
	head := p.db.WAL().Seq()
	if lag := int64(head) - int64(m.AppliedSeq); lag >= 0 {
		gLagRecords.Set(lag)
	}
	if lag := int64(p.db.ClockNow()) - int64(m.AppliedTS); lag >= 0 {
		gLagTicks.Set(lag)
	}
}

// ReplicationStatus reports the primary's shipping state for the ops
// endpoint: WAL head sequence plus per-subscriber applied positions.
func (p *Primary) ReplicationStatus() map[string]any {
	head := p.db.WAL().Seq() // before p.mu: see updateLag
	p.mu.Lock()
	subs := make([]map[string]any, 0, len(p.subs))
	for s := range p.subs {
		s.mu.Lock()
		subs = append(subs, map[string]any{
			"id":          s.id,
			"applied_seq": s.appliedSeq,
			"applied_ts":  s.appliedTS,
			"lag_records": int64(head) - int64(s.appliedSeq),
		})
		s.mu.Unlock()
	}
	p.mu.Unlock()
	sort.Slice(subs, func(i, j int) bool { return subs[i]["id"].(string) < subs[j]["id"].(string) })
	return map[string]any{
		"role":        "primary",
		"head_seq":    head,
		"subscribers": subs,
	}
}

// Promote on a primary is a no-op failure: it is already writable.
func (p *Primary) Promote() error {
	return fmt.Errorf("replication: already a primary")
}
