// Package repl implements streaming WAL replication: a primary-side
// log-shipping service (Primary) and a replica-side bootstrap-and-apply
// loop (Replica), connected over the ordinary wire protocol.
//
// A replica bootstraps DBLog-style: the primary cuts a consistent snapshot
// under the commit barrier and records the WAL record sequence as the cut,
// so the snapshot and the subsequent record stream partition the commit
// history exactly — a record is either contained in the snapshot (sequence
// ≤ cut) or shipped (sequence > cut), never both, never neither. After the
// snapshot the primary forwards every flushed group-commit batch; the
// replica applies records through the engine's redo machinery wrapped in
// apply transactions, so concurrent replica reads are snapshot-consistent:
// they observe a prefix of the primary's committed transactions and never
// a torn batch.
//
// The applied-through sequence doubles as the read-your-writes coordinate:
// clients remember the CommitSeq of their last write and send it as
// Query.MinApplied to a replica, whose read gate holds the query until the
// apply loop passes that point. Promote turns a replica writable for
// failover; a promoted replica can itself become a Primary for cascading
// topologies.
package repl

import "ldv/internal/obs"

// Replication metrics. The lag gauges are maintained by the primary from
// ReplicaStatus acknowledgments (worst lag across subscribers); applied_seq
// and the counters below it are replica-side.
var (
	gSubscribers    = obs.NewGauge("repl.subscribers", "Replication subscriptions currently connected to this primary")
	mSegmentsOut    = obs.NewCounter("repl.segments_shipped", "WAL segments shipped to replicas")
	mRecordsOut     = obs.NewCounter("repl.records_shipped", "WAL records shipped to replicas")
	mBytesOut       = obs.NewCounter("repl.bytes_shipped", "WAL bytes shipped to replicas")
	mSnapshotBytes  = obs.NewCounter("repl.snapshot_bytes_shipped", "Bootstrap snapshot bytes shipped to replicas")
	gLagRecords     = obs.NewGauge("repl.lag_records", "Worst replica lag in WAL records, from acknowledgments")
	gLagTicks       = obs.NewGauge("repl.lag_ticks", "Worst replica lag in logical clock ticks, from acknowledgments")
	gAppliedSeq     = obs.NewGauge("repl.applied_seq", "Last WAL record sequence this replica applied")
	mRecordsApplied = obs.NewCounter("repl.records_applied", "WAL records applied by this replica")
	mBootstraps     = obs.NewCounter("repl.bootstraps", "Snapshot bootstraps this replica performed")
	mReconnects     = obs.NewCounter("repl.reconnects", "Reconnection attempts by this replica")
	mPromotions     = obs.NewCounter("repl.promotions", "Replica promotions to writable")
)
