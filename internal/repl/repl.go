// Package repl implements streaming WAL replication: a primary-side
// log-shipping service (Primary) and a replica-side bootstrap-and-apply
// loop (Replica), connected over the ordinary wire protocol.
//
// A replica bootstraps DBLog-style: the primary cuts a consistent snapshot
// under the commit barrier and records the WAL record sequence as the cut,
// so the snapshot and the subsequent record stream partition the commit
// history exactly — a record is either contained in the snapshot (sequence
// ≤ cut) or shipped (sequence > cut), never both, never neither. After the
// snapshot the primary forwards every flushed group-commit batch; the
// replica applies records through the engine's redo machinery wrapped in
// apply transactions, so concurrent replica reads are snapshot-consistent:
// they observe a prefix of the primary's committed transactions and never
// a torn batch.
//
// The applied-through sequence doubles as the read-your-writes coordinate:
// clients remember the CommitSeq of their last write and send it as
// Query.MinApplied to a replica, whose read gate holds the query until the
// apply loop passes that point. Promote turns a replica writable for
// failover; a promoted replica can itself become a Primary for cascading
// topologies.
package repl

import "ldv/internal/obs"

// Replication metrics. The lag gauges are maintained by the primary from
// ReplicaStatus acknowledgments (worst lag across subscribers); applied_seq
// and the counters below it are replica-side.
var (
	gSubscribers    = obs.GetGauge("repl.subscribers")
	mSegmentsOut    = obs.GetCounter("repl.segments_shipped")
	mRecordsOut     = obs.GetCounter("repl.records_shipped")
	mBytesOut       = obs.GetCounter("repl.bytes_shipped")
	mSnapshotBytes  = obs.GetCounter("repl.snapshot_bytes_shipped")
	gLagRecords     = obs.GetGauge("repl.lag_records")
	gLagTicks       = obs.GetGauge("repl.lag_ticks")
	gAppliedSeq     = obs.GetGauge("repl.applied_seq")
	mRecordsApplied = obs.GetCounter("repl.records_applied")
	mBootstraps     = obs.GetCounter("repl.bootstraps")
	mReconnects     = obs.GetCounter("repl.reconnects")
	mPromotions     = obs.GetCounter("repl.promotions")
)
