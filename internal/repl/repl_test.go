package repl

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"ldv/internal/engine"
	"ldv/internal/osim"
	"ldv/internal/server"
)

// newPrimary builds a WAL-backed database with a kv table, a server, and a
// Primary wired in as its replication source.
func newPrimary(t *testing.T) (*server.Server, *engine.DB) {
	t.Helper()
	srv, db, _ := newPrimaryFull(t)
	return srv, db
}

func newPrimaryFull(t *testing.T) (*server.Server, *engine.DB, *Primary) {
	t.Helper()
	db := engine.NewDB(nil)
	if err := db.EnableWAL(osim.NewFS(), "/wal"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE kv (k INT PRIMARY KEY, v TEXT)`, engine.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, nil)
	p, err := NewPrimary(db)
	if err != nil {
		t.Fatal(err)
	}
	p.SetHeartbeat(20 * time.Millisecond)
	srv.SetReplicationSource(p)
	return srv, db, p
}

func pipeDial(srv *server.Server) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		c, s := net.Pipe()
		go srv.HandleConn(s)
		return c, nil
	}
}

func newReplica(t *testing.T, srv *server.Server, id string) (*Replica, *engine.DB) {
	t.Helper()
	rdb := engine.NewDB(nil)
	r := New(rdb, id, pipeDial(srv))
	r.WaitTimeout = 10 * time.Second
	t.Cleanup(r.Stop)
	return r, rdb
}

// rows fingerprints a table's content for cross-database comparison.
func rows(t *testing.T, db *engine.DB, sql string) []string {
	t.Helper()
	res, err := db.Exec(sql, engine.ExecOptions{})
	if err != nil {
		t.Fatalf("rows(%q): %v", sql, err)
	}
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		line := ""
		for _, v := range r {
			line += v.String() + "|"
		}
		out = append(out, line)
	}
	return out
}

func assertSameRows(t *testing.T, pdb, rdb *engine.DB, sql string) {
	t.Helper()
	want, got := rows(t, pdb, sql), rows(t, rdb, sql)
	if len(want) != len(got) {
		t.Fatalf("row count mismatch: primary %d, replica %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("row %d mismatch: primary %q, replica %q", i, want[i], got[i])
		}
	}
}

func TestReplicaBootstrapAndStream(t *testing.T) {
	srv, pdb := newPrimary(t)
	// Pre-subscription data arrives via the snapshot.
	for i := 0; i < 20; i++ {
		if _, err := pdb.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, 'snap%d')", i, i), engine.ExecOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	r, rdb := newReplica(t, srv, "r1")
	r.Start()
	if err := r.WaitApplied(0); err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, pdb, rdb, "SELECT k, v FROM kv ORDER BY k")

	// Post-subscription data arrives via the record stream; the last write's
	// CommitSeq bounds the read.
	var last uint64
	for i := 20; i < 40; i++ {
		res, err := pdb.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, 'live%d')", i, i), engine.ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.CommitSeq == 0 {
			t.Fatal("write produced no CommitSeq")
		}
		last = res.CommitSeq
	}
	if err := r.WaitApplied(last); err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, pdb, rdb, "SELECT k, v FROM kv ORDER BY k")

	// Updates and deletes replicate too (end marks + new versions).
	res, err := pdb.Exec("UPDATE kv SET v = 'updated' WHERE k < 5", engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := pdb.Exec("DELETE FROM kv WHERE k >= 35", engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	last = res2.CommitSeq
	if res.CommitSeq == 0 || last == 0 {
		t.Fatal("DML produced no CommitSeq")
	}
	if err := r.WaitApplied(last); err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, pdb, rdb, "SELECT k, v FROM kv ORDER BY k")

	// DDL replicates: new tables appear on the replica.
	res, err = pdb.Exec("CREATE TABLE extra (id INT PRIMARY KEY)", engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err = pdb.Exec("INSERT INTO extra VALUES (7)", engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WaitApplied(res2.CommitSeq); err != nil {
		t.Fatal(err)
	}
	_ = res
	assertSameRows(t, pdb, rdb, "SELECT id FROM extra")
}

func TestReplicaRejectsWrites(t *testing.T) {
	srv, _ := newPrimary(t)
	r, rdb := newReplica(t, srv, "r1")
	r.Start()
	if err := r.WaitApplied(0); err != nil {
		t.Fatal(err)
	}
	if _, err := rdb.Exec("INSERT INTO kv VALUES (999, 'nope')", engine.ExecOptions{}); !errors.Is(err, engine.ErrReadOnly) {
		t.Fatalf("replica INSERT: got %v, want ErrReadOnly", err)
	}
	if _, err := rdb.Exec("CREATE TABLE nope (x INT PRIMARY KEY)", engine.ExecOptions{}); !errors.Is(err, engine.ErrReadOnly) {
		t.Fatalf("replica DDL: got %v, want ErrReadOnly", err)
	}
}

// TestReplicaPrefixConsistentReads hammers the replica with reads while a
// writer commits multi-row transactions on the primary. Every transaction
// inserts exactly K rows, so any observed row count not divisible by K means
// a reader saw a torn transaction.
func TestReplicaPrefixConsistentReads(t *testing.T) {
	const K, txns = 5, 40
	srv, pdb := newPrimary(t)
	r, rdb := newReplica(t, srv, "r1")
	r.Start()
	if err := r.WaitApplied(0); err != nil {
		t.Fatal(err)
	}

	done := make(chan uint64, 1)
	go func() {
		var last uint64
		for i := 0; i < txns; i++ {
			sql := "INSERT INTO kv VALUES "
			for j := 0; j < K; j++ {
				if j > 0 {
					sql += ", "
				}
				sql += fmt.Sprintf("(%d, 'x')", i*K+j)
			}
			res, err := pdb.Exec(sql, engine.ExecOptions{})
			if err != nil {
				done <- 0
				return
			}
			last = res.CommitSeq
		}
		done <- last
	}()

	var last uint64
	for {
		select {
		case last = <-done:
		default:
			n := len(rows(t, rdb, "SELECT k FROM kv"))
			if n%K != 0 {
				t.Fatalf("torn read: %d rows visible, not a multiple of %d", n, K)
			}
			continue
		}
		break
	}
	if last == 0 {
		t.Fatal("writer failed")
	}
	if err := r.WaitApplied(last); err != nil {
		t.Fatal(err)
	}
	if n := len(rows(t, rdb, "SELECT k FROM kv")); n != K*txns {
		t.Fatalf("converged to %d rows, want %d", n, K*txns)
	}
	assertSameRows(t, pdb, rdb, "SELECT k, v FROM kv ORDER BY k")
}

func TestWaitAppliedTimeout(t *testing.T) {
	srv, _ := newPrimary(t)
	r, _ := newReplica(t, srv, "r1")
	r.Start()
	if err := r.WaitApplied(0); err != nil {
		t.Fatal(err)
	}
	r.WaitTimeout = 50 * time.Millisecond
	if err := r.WaitApplied(1 << 40); err == nil {
		t.Fatal("WaitApplied on an unreachable sequence must time out")
	}
}

func TestPromotion(t *testing.T) {
	srv, pdb := newPrimary(t)
	res, err := pdb.Exec("INSERT INTO kv VALUES (1, 'one')", engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, rdb := newReplica(t, srv, "r1")
	r.Start()
	if err := r.WaitApplied(res.CommitSeq); err != nil {
		t.Fatal(err)
	}
	if _, err := rdb.Exec("INSERT INTO kv VALUES (2, 'two')", engine.ExecOptions{}); !errors.Is(err, engine.ErrReadOnly) {
		t.Fatal("replica accepted a write before promotion")
	}
	if err := r.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(); err != nil {
		t.Fatal("second Promote must be a no-op")
	}
	// Writable now, with the replicated data intact.
	if _, err := rdb.Exec("INSERT INTO kv VALUES (2, 'two')", engine.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if n := len(rows(t, rdb, "SELECT k FROM kv")); n != 2 {
		t.Fatalf("promoted replica has %d rows, want 2", n)
	}
	// The read gate opens unconditionally after promotion.
	if err := r.WaitApplied(1 << 40); err != nil {
		t.Fatalf("WaitApplied after promotion: %v", err)
	}
	st := r.ReplicationStatus()
	if st["role"] != "promoted" {
		t.Fatalf("role = %v", st["role"])
	}
}

// TestReplicaReconnectCatchUp drops the stream mid-flight via the apply hook
// and checks the reconnect loop re-bootstraps and converges.
func TestReplicaReconnectCatchUp(t *testing.T) {
	srv, pdb := newPrimary(t)
	r, rdb := newReplica(t, srv, "r1")
	var dropped atomic.Bool
	boom := errors.New("injected drop")
	r.SetApplyHook(func(op string) error {
		if dropped.CompareAndSwap(false, true) {
			return boom
		}
		return nil
	})
	r.Start()
	var last uint64
	for i := 0; i < 30; i++ {
		res, err := pdb.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, 'v%d')", i, i), engine.ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		last = res.CommitSeq
	}
	if err := r.WaitApplied(last); err != nil {
		t.Fatal(err)
	}
	if !dropped.Load() {
		t.Fatal("hook never fired — test exercised nothing")
	}
	assertSameRows(t, pdb, rdb, "SELECT k, v FROM kv ORDER BY k")
}

// TestPrimaryStatus checks the ops-facing status maps on both roles.
func TestPrimaryStatus(t *testing.T) {
	srv, pdb, p := newPrimaryFull(t)
	r, _ := newReplica(t, srv, "status-replica")
	r.Start()
	res, err := pdb.Exec("INSERT INTO kv VALUES (1, 'x')", engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WaitApplied(res.CommitSeq); err != nil {
		t.Fatal(err)
	}
	st := p.ReplicationStatus()
	if st["role"] != "primary" {
		t.Fatalf("role = %v", st["role"])
	}
	subs := st["subscribers"].([]map[string]any)
	if len(subs) != 1 || subs[0]["id"] != "status-replica" {
		t.Fatalf("subscribers = %v", subs)
	}
	if err := p.Promote(); err == nil {
		t.Fatal("promoting a primary must fail")
	}
	rst := r.ReplicationStatus()
	if rst["role"] != "replica" || rst["ready"] != true {
		t.Fatalf("replica status = %v", rst)
	}
}
