package repl

import (
	"sort"

	"ldv/internal/engine"
	"ldv/internal/sqlval"
)

// ldv_stat_replication providers: NewPrimary and New replace the engine's
// empty placeholder view with a live one, so `SELECT * FROM
// ldv_stat_replication` works on both ends of a subscription. The schema
// matches the placeholder in engine/virtual.go.

func replicationViewSchema() engine.Schema {
	return engine.Schema{Columns: []engine.Column{
		{Name: "role", Type: sqlval.KindString},
		{Name: "peer", Type: sqlval.KindString},
		{Name: "state", Type: sqlval.KindString},
		{Name: "applied_seq", Type: sqlval.KindInt},
		{Name: "head_seq", Type: sqlval.KindInt},
		{Name: "lag_records", Type: sqlval.KindInt},
	}}
}

// registerView installs the primary's ldv_stat_replication provider: one
// row per subscriber, or a single idle row when none are connected.
func (p *Primary) registerView() {
	p.db.RegisterVirtualTable(&engine.VirtualTable{
		Name:   "ldv_stat_replication",
		Schema: replicationViewSchema(),
		Rows: func() [][]sqlval.Value {
			head := p.db.WAL().Seq() // before p.mu: see updateLag
			type subState struct {
				id         string
				appliedSeq uint64
			}
			p.mu.Lock()
			subs := make([]subState, 0, len(p.subs))
			for s := range p.subs {
				s.mu.Lock()
				subs = append(subs, subState{id: s.id, appliedSeq: s.appliedSeq})
				s.mu.Unlock()
			}
			p.mu.Unlock()
			sort.Slice(subs, func(i, j int) bool { return subs[i].id < subs[j].id })
			if len(subs) == 0 {
				return [][]sqlval.Value{{
					sqlval.NewString("primary"), sqlval.NewString(""),
					sqlval.NewString("idle"), sqlval.NewInt(0),
					sqlval.NewInt(int64(head)), sqlval.NewInt(0),
				}}
			}
			rows := make([][]sqlval.Value, 0, len(subs))
			for _, s := range subs {
				rows = append(rows, []sqlval.Value{
					sqlval.NewString("primary"),
					sqlval.NewString(s.id),
					sqlval.NewString("streaming"),
					sqlval.NewInt(int64(s.appliedSeq)),
					sqlval.NewInt(int64(head)),
					sqlval.NewInt(int64(head) - int64(s.appliedSeq)),
				})
			}
			return rows
		},
	})
}

// registerView installs the replica's ldv_stat_replication provider: its
// own apply position against the primary's announced head.
func (r *Replica) registerView() {
	r.db.RegisterVirtualTable(&engine.VirtualTable{
		Name:   "ldv_stat_replication",
		Schema: replicationViewSchema(),
		Rows: func() [][]sqlval.Value {
			r.mu.Lock()
			role, state := "replica", "streaming"
			switch {
			case r.promoted:
				role, state = "promoted", "promoted"
			case r.stopped:
				state = "stopped"
			case !r.ready:
				state = "bootstrapping"
			}
			applied, head := r.appliedSeq, r.headSeq
			id := r.id
			r.mu.Unlock()
			return [][]sqlval.Value{{
				sqlval.NewString(role),
				sqlval.NewString(id),
				sqlval.NewString(state),
				sqlval.NewInt(int64(applied)),
				sqlval.NewInt(int64(head)),
				sqlval.NewInt(int64(head) - int64(applied)),
			}}
		},
	})
}
