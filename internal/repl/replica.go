package repl

import (
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"ldv/internal/engine"
	"ldv/internal/wire"
)

// DefaultWaitTimeout bounds how long a gated read waits for the apply loop
// to reach its read-your-writes position before failing the query.
const DefaultWaitTimeout = 10 * time.Second

// Replica maintains a read-only copy of a primary database: it bootstraps
// from a snapshot stream, then tails WAL segments, applying each record in
// an apply transaction so local reads stay snapshot-consistent. Reconnects
// always re-bootstrap — sequence numbers are process-local to the primary,
// so a fresh snapshot is the only safe resume point.
type Replica struct {
	db   *engine.DB
	id   string
	dial func() (net.Conn, error)

	// WaitTimeout bounds WaitApplied; exported so tests can shrink it.
	WaitTimeout time.Duration

	mu        sync.Mutex
	cond      *sync.Cond
	conn      net.Conn
	ready     bool // bootstrap finished; appliedSeq is meaningful
	promoted  bool
	stopped   bool
	stopCh    chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup
	applyHook func(op string) error
	lastErr   error

	appliedSeq uint64 // last WAL record applied (or snapshot cut)
	appliedTS  uint64 // engine clock position of the last applied record
	headSeq    uint64 // highest sequence the primary has announced
}

// New creates a replica of the primary reachable through dial, putting db
// into read-only mode immediately so no local write can diverge from the
// stream. Call Start (or Run) to begin replication.
func New(db *engine.DB, id string, dial func() (net.Conn, error)) *Replica {
	r := &Replica{
		db:          db,
		id:          id,
		dial:        dial,
		WaitTimeout: DefaultWaitTimeout,
		stopCh:      make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)
	db.SetReadOnly(true)
	r.registerView()
	return r
}

// SetApplyHook installs a test hook invoked before each apply operation
// ("snapshot:<table>" per chunk, "apply:<seq>" per record). Returning an
// error aborts the current Run — crash tests use this to kill the replica
// at every operation.
func (r *Replica) SetApplyHook(fn func(op string) error) {
	r.mu.Lock()
	r.applyHook = fn
	r.mu.Unlock()
}

func (r *Replica) hook(op string) error {
	r.mu.Lock()
	fn := r.applyHook
	r.mu.Unlock()
	if fn != nil {
		return fn(op)
	}
	return nil
}

// Start runs the replication loop in the background, reconnecting with
// exponential backoff until Stop or Promote.
func (r *Replica) Start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		backoff := 50 * time.Millisecond
		for {
			err := r.Run()
			if r.isStopped() {
				return
			}
			if err != nil {
				slog.Warn("replication: run ended, reconnecting", "replica", r.id, "err", err)
				r.mu.Lock()
				r.lastErr = err
				r.mu.Unlock()
			}
			mReconnects.Inc()
			select {
			case <-r.stopCh:
				return
			case <-time.After(backoff):
			}
			if backoff < 2*time.Second {
				backoff *= 2
			}
		}
	}()
}

// Run performs one full subscription: dial, handshake, bootstrap, and tail
// segments until the connection drops, an apply fails, or Stop is called.
func (r *Replica) Run() error {
	conn, err := r.dial()
	if err != nil {
		return err
	}
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		conn.Close()
		return nil
	}
	r.conn = conn
	r.mu.Unlock()
	defer func() {
		conn.Close()
		r.mu.Lock()
		r.conn = nil
		r.mu.Unlock()
	}()

	if err := wire.Write(conn, wire.Startup{Proc: "replica:" + r.id}); err != nil {
		return err
	}
	msg, err := wire.Read(conn)
	if err != nil {
		return err
	}
	switch m := msg.(type) {
	case wire.Ready:
	case wire.Error:
		return fmt.Errorf("replication handshake: %s", m.Message)
	default:
		return fmt.Errorf("replication handshake: unexpected %T", msg)
	}
	if err := wire.Write(conn, wire.Subscribe{ReplicaID: r.id}); err != nil {
		return err
	}

	// Bootstrap: wipe local state and load the snapshot stream. Reads are
	// gated on r.ready, so a re-bootstrap is invisible to gated clients
	// beyond added latency.
	r.mu.Lock()
	r.ready = false
	r.mu.Unlock()
	r.db.ClearForReplication()
	mBootstraps.Inc()
	var cut uint64
bootstrap:
	for {
		msg, err := wire.Read(conn)
		if err != nil {
			return err
		}
		switch m := msg.(type) {
		case wire.SnapshotChunk:
			if m.Done {
				cut = m.CutSeq
				break bootstrap
			}
			if err := r.hook("snapshot:" + m.Table); err != nil {
				return err
			}
			if _, err := r.db.LoadTableImage(m.Data); err != nil {
				return fmt.Errorf("replication bootstrap: %w", err)
			}
		case wire.Error:
			return fmt.Errorf("replication bootstrap: primary refused: %s", m.Message)
		default:
			return fmt.Errorf("replication bootstrap: unexpected %T", msg)
		}
	}
	r.db.FinishLoad()

	r.mu.Lock()
	r.appliedSeq = cut
	r.appliedTS = r.db.ClockNow()
	if cut > r.headSeq {
		r.headSeq = cut
	}
	r.ready = true
	r.cond.Broadcast()
	r.mu.Unlock()
	gAppliedSeq.Set(int64(cut))
	slog.Info("replication: bootstrap complete", "replica", r.id, "cut_seq", cut)

	applier := r.db.NewApplier()
	for {
		msg, err := wire.Read(conn)
		if err != nil {
			if r.isStopped() {
				return nil
			}
			return err
		}
		switch m := msg.(type) {
		case wire.WALSegment:
			if err := r.applySegment(applier, m); err != nil {
				return err
			}
			r.mu.Lock()
			st := wire.ReplicaStatus{ID: r.id, AppliedSeq: r.appliedSeq, AppliedTS: r.appliedTS}
			r.mu.Unlock()
			if err := wire.Write(conn, st); err != nil {
				return err
			}
		case wire.Error:
			return fmt.Errorf("replication stream: %s", m.Message)
		default:
			return fmt.Errorf("replication stream: unexpected %T", msg)
		}
	}
}

// applySegment applies one shipped segment, skipping records already applied
// (resend overlap) and rejecting gaps. Each record commits atomically into
// visibility via the engine's apply transaction, so a reader concurrent with
// this loop sees an exact prefix of the primary's commit order.
func (r *Replica) applySegment(a *engine.Applier, seg wire.WALSegment) error {
	r.mu.Lock()
	next := r.appliedSeq + 1
	r.mu.Unlock()
	if seg.FirstSeq > next {
		return fmt.Errorf("replication: stream gap: segment starts at %d, expected %d", seg.FirstSeq, next)
	}
	for i, rec := range seg.Records {
		seq := seg.FirstSeq + uint64(i)
		if seq < next {
			continue
		}
		if err := r.hook(fmt.Sprintf("apply:%d", seq)); err != nil {
			return err
		}
		ts, err := a.ApplyRecord(rec)
		if err != nil {
			return fmt.Errorf("replication: apply record %d: %w", seq, err)
		}
		mRecordsApplied.Inc()
		r.mu.Lock()
		r.appliedSeq = seq
		if ts > r.appliedTS {
			r.appliedTS = ts
		}
		r.cond.Broadcast()
		r.mu.Unlock()
		gAppliedSeq.Set(int64(seq))
		next = seq + 1
	}
	head := seg.FirstSeq + uint64(len(seg.Records))
	if head > 0 {
		head-- // last sequence covered; heartbeats carry FirstSeq = next
	}
	r.mu.Lock()
	if head > r.headSeq {
		r.headSeq = head
	}
	r.mu.Unlock()
	return nil
}

// WaitApplied blocks until the apply position reaches minSeq (and the
// replica is bootstrapped), implementing the server's read gate. It returns
// immediately after promotion — the local database is then the source of
// truth. A replica that cannot catch up within WaitTimeout fails the read
// rather than serving stale data under a read-your-writes bound.
func (r *Replica) WaitApplied(minSeq uint64) error {
	// The timer takes r.mu before broadcasting so the wakeup cannot fall
	// into the window between the deadline check and cond.Wait.
	timer := time.AfterFunc(r.WaitTimeout, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer timer.Stop()
	deadline := time.Now().Add(r.WaitTimeout)

	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.promoted {
			return nil
		}
		if r.ready && r.appliedSeq >= minSeq {
			return nil
		}
		if r.stopped {
			return fmt.Errorf("replication: replica stopped")
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replication: read gate timeout: waiting for seq %d, applied %d", minSeq, r.appliedSeq)
		}
		r.cond.Wait()
	}
}

// Promote stops replication and makes the local database writable. Safe to
// call more than once. The caller is responsible for repointing clients and,
// if the promoted node should serve replicas of its own, enabling durability
// and creating a Primary.
func (r *Replica) Promote() error {
	r.mu.Lock()
	if r.promoted {
		r.mu.Unlock()
		return nil
	}
	r.promoted = true
	r.mu.Unlock()
	r.Stop()
	r.db.SetReadOnly(false)
	r.mu.Lock()
	r.cond.Broadcast()
	r.mu.Unlock()
	mPromotions.Inc()
	slog.Info("replication: promoted to primary", "replica", r.id)
	return nil
}

// Stop ends replication and waits for the background loop to exit.
func (r *Replica) Stop() {
	r.mu.Lock()
	r.stopped = true
	conn := r.conn
	r.cond.Broadcast()
	r.mu.Unlock()
	r.stopOnce.Do(func() { close(r.stopCh) })
	if conn != nil {
		conn.Close()
	}
	r.wg.Wait()
}

func (r *Replica) isStopped() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stopped
}

// AppliedSeq reports the last applied WAL record sequence.
func (r *Replica) AppliedSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.appliedSeq
}

// Ready reports whether bootstrap has completed and the stream is live.
func (r *Replica) Ready() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ready
}

// ReplicationStatus reports the replica's apply state for the ops endpoint.
func (r *Replica) ReplicationStatus() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	role := "replica"
	if r.promoted {
		role = "promoted"
	}
	st := map[string]any{
		"role":        role,
		"ready":       r.ready,
		"applied_seq": r.appliedSeq,
		"applied_ts":  r.appliedTS,
		"head_seq":    r.headSeq,
		"lag_records": int64(r.headSeq) - int64(r.appliedSeq),
	}
	if r.lastErr != nil {
		st["last_error"] = r.lastErr.Error()
	}
	return st
}
