package plan

import "ldv/internal/obs"

// Planner decision counters: how often statements are served by secondary
// indexes versus full scans, and how often greedy join ordering changed
// the syntactic order. Incremented at plan time (every execution plans).
var (
	mIndexScans = obs.NewCounter("plan.index_scans",
		"Access paths planned as secondary-index scans.")
	mFullScans = obs.NewCounter("plan.full_scans",
		"Base-table access paths planned as full version-chain scans (no usable index).")
	mReorderApplied = obs.NewCounter("plan.reorder_applied",
		"SELECT plans whose greedy join order differs from the syntactic FROM order.")
)
