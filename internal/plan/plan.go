// Package plan lowers parsed SQL statements into explicit, immutable plan
// trees. The planner chooses between full scans and secondary-index scans,
// pushes predicates toward the leaves, and greedily reorders joins, all
// driven by per-table statistics supplied through the Catalog interface
// (row counts and per-column distinct estimates maintained as atomics at
// the engine's mutation sites). The engine executes a statement by walking
// the tree, and EXPLAIN renders the same tree, so what is printed is what
// runs. Lineage capture also rides the tree: each node declares how it
// contributes provenance edges via its LineageMode.
package plan

import (
	"strconv"
	"strings"

	"ldv/internal/sqlparse"
)

// LineageMode declares how an operator contributes provenance edges when a
// statement runs with lineage capture enabled.
type LineageMode int

const (
	// LineageNone contributes nothing (e.g. a table-less VALUES source).
	LineageNone LineageMode = iota
	// LineageSource seeds each output tuple's lineage with the scanned
	// version and stamps prov_usedby — base-table access paths.
	LineageSource
	// LineageMerge merges the lineage of the input tuples it combines
	// (joins).
	LineageMerge
	// LineageUnion unions lineage across all inputs collapsed into one
	// output tuple (aggregation, duplicate elimination).
	LineageUnion
	// LineagePass forwards input lineage unchanged (filter, sort, limit,
	// projection).
	LineagePass
	// LineageWrite records read refs (reenactment inputs) and written refs
	// for the versions a DML operator consumes and produces.
	LineageWrite
)

// Explainable is the explain surface of a plan node: the operator name and
// detail shown by EXPLAIN plus the planner's output-cardinality estimate.
type Explainable interface {
	Op() string
	Detail() string
	EstRows() float64
}

// LineageOp is the provenance surface of a plan node.
type LineageOp interface {
	Lineage() LineageMode
}

// Node is one operator of an immutable plan tree. Children are ordered;
// EXPLAIN renders the tree in post order (children before parents), which
// matches the executor's completion order.
type Node interface {
	Explainable
	LineageOp
	Children() []Node
}

// Tree is a fully lowered statement.
type Tree struct {
	Root Node
	// Reordered is set when the greedy join order differs from the
	// syntactic FROM order; the executor then restores the syntactic
	// column order before projection.
	Reordered bool
	// AsOf is the rendered AS OF bound of a time-travel query ("" for
	// head reads). The scan operators need no change — secondary indexes
	// retain dead versions and the executor applies snapshot visibility
	// per candidate row — so the bound is plan-wide metadata, rendered by
	// EXPLAIN as its own row.
	AsOf string
}

// Nodes returns the tree's operators in post order (children first), the
// order EXPLAIN prints and the executor completes them.
func (t *Tree) Nodes() []Node {
	if t == nil || t.Root == nil {
		return nil
	}
	var out []Node
	var walk func(Node)
	walk = func(n Node) {
		for _, c := range n.Children() {
			walk(c)
		}
		out = append(out, n)
	}
	walk(t.Root)
	return out
}

// ScanNode reads every version of a base or virtual table; visibility is
// applied by the executor.
type ScanNode struct {
	Table string
	As    string // effective (aliased) name
	Est   float64
}

func (n *ScanNode) Op() string           { return "scan" }
func (n *ScanNode) Detail() string       { return n.As }
func (n *ScanNode) EstRows() float64     { return n.Est }
func (n *ScanNode) Children() []Node     { return nil }
func (n *ScanNode) Lineage() LineageMode { return LineageSource }

// IndexScanNode reads only the versions matching an index predicate: an
// equality key (Eq, hash or ordered index) or a range (Lo/Hi, ordered
// index only). Index entries point at version chains, so the executor
// still applies snapshot visibility to every candidate.
type IndexScanNode struct {
	Table  string
	As     string
	Index  string
	Column string
	Kind   string        // "hash" or "ordered"
	Eq     sqlparse.Expr // equality key; nil for a range scan
	Lo, Hi sqlparse.Expr // range bounds; nil = unbounded
	LoIncl bool
	HiIncl bool
	Est    float64
}

func (n *IndexScanNode) Op() string { return "index_scan" }

func (n *IndexScanNode) Detail() string {
	var sb strings.Builder
	sb.WriteString(n.As)
	sb.WriteString(" via ")
	sb.WriteString(n.Index)
	sb.WriteString(" (")
	sb.WriteString(n.predText())
	sb.WriteString(")")
	return sb.String()
}

func (n *IndexScanNode) predText() string {
	if n.Eq != nil {
		return n.Column + " = " + n.Eq.String()
	}
	var parts []string
	if n.Lo != nil {
		op := ">"
		if n.LoIncl {
			op = ">="
		}
		parts = append(parts, n.Column+" "+op+" "+n.Lo.String())
	}
	if n.Hi != nil {
		op := "<"
		if n.HiIncl {
			op = "<="
		}
		parts = append(parts, n.Column+" "+op+" "+n.Hi.String())
	}
	return strings.Join(parts, " AND ")
}

func (n *IndexScanNode) EstRows() float64     { return n.Est }
func (n *IndexScanNode) Children() []Node     { return nil }
func (n *IndexScanNode) Lineage() LineageMode { return LineageSource }

// ValuesNode is the single-empty-tuple source of a table-less SELECT.
type ValuesNode struct{}

func (n *ValuesNode) Op() string           { return "values" }
func (n *ValuesNode) Detail() string       { return "" }
func (n *ValuesNode) EstRows() float64     { return 1 }
func (n *ValuesNode) Children() []Node     { return nil }
func (n *ValuesNode) Lineage() LineageMode { return LineageNone }

// FilterNode applies AND-connected conjuncts. Resolved marks filters whose
// column references the planner proved to bind in the input; the final
// leftover filter is unresolved and the executor validates it at runtime
// (surfacing "no such column" / "aggregates in WHERE" errors).
type FilterNode struct {
	Input     Node
	Conjuncts []sqlparse.Expr
	Resolved  bool
	Est       float64
}

func (n *FilterNode) Op() string           { return "filter" }
func (n *FilterNode) Detail() string       { return exprListText(n.Conjuncts) }
func (n *FilterNode) EstRows() float64     { return n.Est }
func (n *FilterNode) Children() []Node     { return []Node{n.Input} }
func (n *FilterNode) Lineage() LineageMode { return LineagePass }

// HashJoinNode equi-joins two subtrees (cross join when no keys). LeftKeys
// resolve in the left subtree's output, RightKeys in the right's.
type HashJoinNode struct {
	Left, Right Node
	LeftKeys    []sqlparse.Expr
	RightKeys   []sqlparse.Expr
	With        string // effective name of the joined-in leaf, for detail
	Est         float64
}

func (n *HashJoinNode) Op() string           { return "hash_join" }
func (n *HashJoinNode) Detail() string       { return n.With }
func (n *HashJoinNode) EstRows() float64     { return n.Est }
func (n *HashJoinNode) Children() []Node     { return []Node{n.Left, n.Right} }
func (n *HashJoinNode) Lineage() LineageMode { return LineageMerge }

// AggregateNode applies GROUP BY / aggregate semantics, including HAVING.
type AggregateNode struct {
	Input   Node
	GroupBy []sqlparse.Expr
	Est     float64
}

func (n *AggregateNode) Op() string           { return "aggregate" }
func (n *AggregateNode) Detail() string       { return exprListText(n.GroupBy) }
func (n *AggregateNode) EstRows() float64     { return n.Est }
func (n *AggregateNode) Children() []Node     { return []Node{n.Input} }
func (n *AggregateNode) Lineage() LineageMode { return LineageUnion }

// DistinctNode eliminates duplicate projected rows.
type DistinctNode struct {
	Input Node
	Est   float64
}

func (n *DistinctNode) Op() string           { return "distinct" }
func (n *DistinctNode) Detail() string       { return "" }
func (n *DistinctNode) EstRows() float64     { return n.Est }
func (n *DistinctNode) Children() []Node     { return []Node{n.Input} }
func (n *DistinctNode) Lineage() LineageMode { return LineageUnion }

// SortNode orders the projected rows.
type SortNode struct {
	Input Node
	Keys  []sqlparse.Expr
	Est   float64
}

func (n *SortNode) Op() string           { return "sort" }
func (n *SortNode) Detail() string       { return exprListText(n.Keys) }
func (n *SortNode) EstRows() float64     { return n.Est }
func (n *SortNode) Children() []Node     { return []Node{n.Input} }
func (n *SortNode) Lineage() LineageMode { return LineagePass }

// LimitNode truncates the result.
type LimitNode struct {
	Input Node
	N     int
	Est   float64
}

func (n *LimitNode) Op() string           { return "limit" }
func (n *LimitNode) Detail() string       { return strconv.Itoa(n.N) }
func (n *LimitNode) EstRows() float64     { return n.Est }
func (n *LimitNode) Children() []Node     { return []Node{n.Input} }
func (n *LimitNode) Lineage() LineageMode { return LineagePass }

// ProjectNode evaluates the select list. It is the root of every SELECT
// plan; DISTINCT/sort/limit nodes sit below it because the executor runs
// them over the projected rows (records complete children-before-parent).
type ProjectNode struct {
	Input Node
	Est   float64
}

func (n *ProjectNode) Op() string           { return "project" }
func (n *ProjectNode) Detail() string       { return "" }
func (n *ProjectNode) EstRows() float64     { return n.Est }
func (n *ProjectNode) Children() []Node     { return []Node{n.Input} }
func (n *ProjectNode) Lineage() LineageMode { return LineagePass }

// InsertNode appends new versions; Query is the source subtree for
// INSERT ... SELECT (nil for VALUES).
type InsertNode struct {
	Table string
	Query Node
	Est   float64
}

func (n *InsertNode) Op() string       { return "insert" }
func (n *InsertNode) Detail() string   { return n.Table }
func (n *InsertNode) EstRows() float64 { return n.Est }
func (n *InsertNode) Children() []Node {
	if n.Query != nil {
		return []Node{n.Query}
	}
	return nil
}
func (n *InsertNode) Lineage() LineageMode { return LineageWrite }

// UpdateNode end-marks matched versions and appends successors. Access is
// the access-path subtree locating the matched rows (scan or index scan,
// optionally under a residual filter).
type UpdateNode struct {
	Table  string
	Access Node
	Est    float64
}

func (n *UpdateNode) Op() string           { return "update" }
func (n *UpdateNode) Detail() string       { return n.Table }
func (n *UpdateNode) EstRows() float64     { return n.Est }
func (n *UpdateNode) Children() []Node     { return []Node{n.Access} }
func (n *UpdateNode) Lineage() LineageMode { return LineageWrite }

// DeleteNode end-marks matched versions.
type DeleteNode struct {
	Table  string
	Access Node
	Est    float64
}

func (n *DeleteNode) Op() string           { return "delete" }
func (n *DeleteNode) Detail() string       { return n.Table }
func (n *DeleteNode) EstRows() float64     { return n.Est }
func (n *DeleteNode) Children() []Node     { return []Node{n.Access} }
func (n *DeleteNode) Lineage() LineageMode { return LineageWrite }

// exprListText renders expressions as a comma-separated detail string.
func exprListText(exprs []sqlparse.Expr) string {
	if len(exprs) == 0 {
		return ""
	}
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}
