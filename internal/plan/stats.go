package plan

// IndexMeta describes one secondary index for planning: which column it
// covers, its kind, and the statistics the engine maintains as atomics at
// mutation sites.
type IndexMeta struct {
	Name     string
	Column   string
	Kind     string // "hash" (equality only) or "ordered" (equality + range)
	Entries  int64  // indexed versions
	Distinct int64  // distinct keys currently present
}

// TableStats is the planner's view of one table.
type TableStats struct {
	// Rows is the live row count (snapshot-visible cardinality estimate).
	Rows int64
	// Columns lists every column name the executor can resolve against the
	// table, including the hidden provenance attributes.
	Columns []string
	// Indexes lists the table's secondary indexes sorted by name, so index
	// selection is deterministic.
	Indexes []IndexMeta
}

// Catalog supplies per-table statistics. Lookups must be cheap and must
// not take table locks (the engine serves them from atomics and immutable
// schema); the second result is false for unknown tables — virtual system
// views, for which the planner falls back to a plain scan with no
// pushdown into the leaf.
type Catalog interface {
	TableStats(name string) (TableStats, bool)
}
