package plan

import (
	"sort"

	"ldv/internal/sqlparse"
)

// Planning never fails: semantic errors (unknown columns, aggregates in
// WHERE, ...) are left in unresolved filter nodes for the executor to
// surface at runtime, so the planner can run over arbitrary ASTs (it is
// fuzzed for exactly that). Determinism matters: EXPLAIN output feeds a
// regression test, so every choice below iterates slices, never maps.

// defaultRows is the cardinality guess for tables without statistics
// (virtual system views).
const defaultRows = 1000

// filterSelectivity is the per-conjunct row reduction guess.
const filterSelectivity = 1.0 / 3

// PlanStatement lowers any plannable statement, returning nil for
// statement kinds that have no execution tree (DDL, COPY, transaction
// control).
func PlanStatement(cat Catalog, stmt sqlparse.Statement) *Tree {
	switch s := stmt.(type) {
	case *sqlparse.Select:
		return PlanSelect(cat, s)
	case *sqlparse.Insert:
		return PlanInsert(cat, s)
	case *sqlparse.Update:
		return PlanUpdate(cat, s)
	case *sqlparse.Delete:
		return PlanDelete(cat, s)
	default:
		return nil
	}
}

// PlanInsert lowers an INSERT; INSERT ... SELECT embeds the query's plan.
func PlanInsert(cat Catalog, s *sqlparse.Insert) *Tree {
	n := &InsertNode{Table: s.Table}
	reordered := false
	if s.Query != nil {
		qt := PlanSelect(cat, s.Query)
		n.Query = qt.Root
		n.Est = qt.Root.EstRows()
		reordered = qt.Reordered
	} else {
		n.Est = float64(len(s.Rows))
	}
	return &Tree{Root: n, Reordered: reordered}
}

// PlanUpdate lowers an UPDATE: an access path over the target table (index
// scan when the WHERE clause matches an index) under the update operator.
func PlanUpdate(cat Catalog, s *sqlparse.Update) *Tree {
	access, est := PlanAccess(cat, s.Table, s.Where)
	return &Tree{Root: &UpdateNode{Table: s.Table, Access: access, Est: est}}
}

// PlanDelete lowers a DELETE the same way as an UPDATE.
func PlanDelete(cat Catalog, s *sqlparse.Delete) *Tree {
	access, est := PlanAccess(cat, s.Table, s.Where)
	return &Tree{Root: &DeleteNode{Table: s.Table, Access: access, Est: est}}
}

// PlanAccess builds the row-locating subtree for UPDATE/DELETE (the DML
// matcher executes it directly). Every conjunct not pushed into the leaf
// lands in one unresolved filter, which the matcher evaluates strictly,
// propagating errors.
func PlanAccess(cat Catalog, table string, where sqlparse.Expr) (Node, float64) {
	p := newPlanner(cat, []sqlparse.TableRef{{Name: table}})
	splitConjuncts(where, &p.conjuncts)
	p.attribute()
	var pushed []int
	for i, c := range p.conj {
		if c.ok && !c.hasAgg && !c.hasSub && len(c.refs) <= 1 {
			pushed = append(pushed, i)
		}
	}
	access := p.planLeaf(0, pushed)
	var residual []sqlparse.Expr
	for i := range p.conj {
		if !p.conj[i].used {
			residual = append(residual, p.conjuncts[i])
		}
	}
	est := access.EstRows()
	if len(residual) > 0 {
		est = filteredEst(est, len(residual))
		access = &FilterNode{Input: access, Conjuncts: residual, Est: est}
	}
	return access, est
}

// PlanSelect lowers a SELECT: per-leaf index selection and predicate
// pushdown, greedy join ordering, then the projection chain in executor
// order (aggregate, distinct, sort, limit below the project root).
func PlanSelect(cat Catalog, s *sqlparse.Select) *Tree {
	tree := &Tree{}
	var root Node
	if len(s.From) == 0 {
		root = &ValuesNode{}
	} else {
		refs := append([]sqlparse.TableRef(nil), s.From...)
		for _, j := range s.Joins {
			refs = append(refs, j.Table)
		}
		p := newPlanner(cat, refs)
		splitConjuncts(s.Where, &p.conjuncts)
		for _, j := range s.Joins {
			splitConjuncts(j.On, &p.conjuncts)
		}
		p.attribute()
		root = p.joinTree(tree)
		// Everything unplaced must resolve (or error) at runtime.
		var leftover []sqlparse.Expr
		for i := range p.conj {
			if !p.conj[i].used {
				leftover = append(leftover, p.conjuncts[i])
			}
		}
		if len(leftover) > 0 {
			root = &FilterNode{Input: root, Conjuncts: leftover,
				Est: filteredEst(root.EstRows(), len(leftover))}
		}
	}
	root = planProjection(s, root)
	tree.Root = root
	if s.AsOf != nil {
		tree.AsOf = s.AsOf.String()
	}
	return tree
}

// planProjection wraps the relational subtree with the SELECT's output
// stages. The project node is the root; distinct/sort/limit sit below it
// mirroring the executor, which runs them over already-projected rows.
func planProjection(s *sqlparse.Select, in Node) Node {
	est := in.EstRows()
	if hasAggregation(s) {
		if len(s.GroupBy) == 0 {
			est = 1
		} else {
			est = maxf(1, est*filterSelectivity)
		}
		in = &AggregateNode{Input: in, GroupBy: s.GroupBy, Est: est}
	}
	if s.Distinct {
		est = maxf(1, est/2)
		in = &DistinctNode{Input: in, Est: est}
	}
	if len(s.OrderBy) > 0 {
		keys := make([]sqlparse.Expr, len(s.OrderBy))
		for i, o := range s.OrderBy {
			keys[i] = o.Expr
		}
		in = &SortNode{Input: in, Keys: keys, Est: est}
	}
	if s.Limit >= 0 {
		if float64(s.Limit) < est {
			est = float64(s.Limit)
		}
		in = &LimitNode{Input: in, N: s.Limit, Est: est}
	}
	return &ProjectNode{Input: in, Est: est}
}

// hasAggregation reports whether the SELECT needs the aggregate stage.
func hasAggregation(s *sqlparse.Select) bool {
	if len(s.GroupBy) > 0 || s.Having != nil {
		return true
	}
	for _, it := range s.Items {
		if it.Expr != nil && containsAggregate(it.Expr) {
			return true
		}
	}
	for _, o := range s.OrderBy {
		if containsAggregate(o.Expr) {
			return true
		}
	}
	return false
}

// refInfo is one FROM-clause entry plus its catalog view.
type refInfo struct {
	name  string // effective (aliased) name
	table string // underlying table name
	known bool
	stats TableStats
	cols  map[string]bool
}

// conjInfo is one AND-connected conjunct plus its attribution: which refs
// its columns bind to and whether the binding is provable at plan time.
type conjInfo struct {
	refs   []int // ascending ref indices the conjunct's columns bind to
	ok     bool  // every column reference attributed unambiguously
	hasAgg bool
	hasSub bool
	used   bool
}

type planner struct {
	cat        Catalog
	refs       []refInfo
	anyUnknown bool
	conjuncts  []sqlparse.Expr
	conj       []conjInfo
}

func newPlanner(cat Catalog, refs []sqlparse.TableRef) *planner {
	p := &planner{cat: cat}
	for _, r := range refs {
		ri := refInfo{name: r.EffectiveName(), table: r.Name}
		if cat != nil {
			if st, ok := cat.TableStats(r.Name); ok {
				ri.known = true
				ri.stats = st
				ri.cols = make(map[string]bool, len(st.Columns))
				for _, c := range st.Columns {
					ri.cols[c] = true
				}
			}
		}
		if !ri.known {
			p.anyUnknown = true
		}
		p.refs = append(p.refs, ri)
	}
	return p
}

// attribute resolves every conjunct's column references against the refs.
func (p *planner) attribute() {
	p.conj = make([]conjInfo, len(p.conjuncts))
	for i, c := range p.conjuncts {
		refs, ok := p.attrExpr(c)
		p.conj[i] = conjInfo{
			refs:   refs,
			ok:     ok,
			hasAgg: containsAggregate(c),
			hasSub: containsSubquery(c),
		}
	}
}

// attrExpr attributes an expression's column references, returning the
// ascending set of ref indices and whether attribution is provable. A
// qualified reference binds to the matching effective name (for tables
// with known schemas the column must exist); unqualified references bind
// only when exactly one known table has the column and no unknown-schema
// table could shadow it — mirroring the executor's ambiguity rules.
func (p *planner) attrExpr(e sqlparse.Expr) (refs []int, ok bool) {
	var crs []*sqlparse.ColumnRef
	columnRefs(e, &crs)
	seen := map[int]bool{}
	ok = true
	for _, cr := range crs {
		i, bound := p.attrRef(cr)
		if !bound {
			ok = false
			continue
		}
		if !seen[i] {
			seen[i] = true
			refs = append(refs, i)
		}
	}
	sort.Ints(refs)
	return refs, ok
}

func (p *planner) attrRef(cr *sqlparse.ColumnRef) (int, bool) {
	if cr.Table != "" {
		for i, r := range p.refs {
			if r.name == cr.Table {
				if r.known && !r.cols[cr.Column] {
					return 0, false
				}
				return i, true
			}
		}
		return 0, false
	}
	if p.anyUnknown {
		return 0, false // an unknown-schema table could own the column
	}
	found, n := -1, 0
	for i, r := range p.refs {
		if r.cols[cr.Column] {
			found = i
			n++
		}
	}
	if n != 1 {
		return 0, false // missing or ambiguous: runtime surfaces the error
	}
	return found, true
}

// leafPlan is one planned FROM entry awaiting join ordering.
type leafPlan struct {
	ref  int
	node Node
	est  float64
}

// joinTree plans every leaf (index selection + pushdown), then joins them
// greedily: start from the smallest estimated leaf and repeatedly attach
// the smallest connected leaf (any leaf if none connects). Single-table
// conjuncts are pushed into their leaf, join-level conjuncts become hash
// join keys or post-join filters as soon as their tables are joined.
func (p *planner) joinTree(tree *Tree) Node {
	leaves := make([]leafPlan, len(p.refs))
	for i := range p.refs {
		var pushed []int
		for ci, c := range p.conj {
			if c.ok && !c.hasAgg && !c.hasSub && len(c.refs) == 1 && c.refs[0] == i {
				pushed = append(pushed, ci)
			}
		}
		n := p.planLeaf(i, pushed)
		leaves[i] = leafPlan{ref: i, node: n, est: n.EstRows()}
	}
	if len(leaves) == 1 {
		return p.withConstFilters(leaves[0].node)
	}

	remaining := append([]leafPlan(nil), leaves...)
	pick := func(connectedTo map[int]bool) int {
		best := -1
		for i, l := range remaining {
			if connectedTo != nil && !p.connects(connectedTo, l.ref) {
				continue
			}
			if best < 0 || l.est < remaining[best].est {
				best = i
			}
		}
		return best
	}

	var order []int
	first := pick(nil)
	cur := p.withConstFilters(remaining[first].node)
	curEst := cur.EstRows()
	inTree := map[int]bool{remaining[first].ref: true}
	order = append(order, remaining[first].ref)
	remaining = append(remaining[:first], remaining[first+1:]...)

	for len(remaining) > 0 {
		next := pick(inTree)
		cross := next < 0
		if cross {
			next = pick(nil)
		}
		leaf := remaining[next]
		remaining = append(remaining[:next], remaining[next+1:]...)
		order = append(order, leaf.ref)

		var leftKeys, rightKeys []sqlparse.Expr
		for ci := range p.conj {
			l, r, ok := p.equiKey(ci, inTree, leaf.ref)
			if !ok {
				continue
			}
			leftKeys = append(leftKeys, l)
			rightKeys = append(rightKeys, r)
			p.conj[ci].used = true
		}
		inTree[leaf.ref] = true
		if cross || len(leftKeys) == 0 {
			curEst = curEst * leaf.est
		} else {
			curEst = maxf(curEst, leaf.est)
		}
		cur = &HashJoinNode{Left: cur, Right: leaf.node,
			LeftKeys: leftKeys, RightKeys: rightKeys,
			With: p.refs[leaf.ref].name, Est: curEst}

		// Conjuncts whose tables are now all joined apply here.
		var post []sqlparse.Expr
		for ci, c := range p.conj {
			if c.used || !c.ok || c.hasAgg || c.hasSub || len(c.refs) == 0 {
				continue
			}
			if p.covered(c.refs, inTree) {
				post = append(post, p.conjuncts[ci])
				p.conj[ci].used = true
			}
		}
		if len(post) > 0 {
			curEst = filteredEst(curEst, len(post))
			cur = &FilterNode{Input: cur, Conjuncts: post, Resolved: true, Est: curEst}
		}
	}

	for i, r := range order {
		if r != i {
			tree.Reordered = true
			mReorderApplied.Inc()
			break
		}
	}
	return cur
}

func (p *planner) covered(refs []int, in map[int]bool) bool {
	for _, r := range refs {
		if !in[r] {
			return false
		}
	}
	return true
}

// connects reports whether some unused equality conjunct joins the current
// tree to leaf.
func (p *planner) connects(inTree map[int]bool, leaf int) bool {
	for ci := range p.conj {
		if _, _, ok := p.equiKey(ci, inTree, leaf); ok {
			return true
		}
	}
	return false
}

// equiKey checks whether conjunct ci has the shape exprL = exprR with one
// side binding entirely in the current tree and the other entirely in the
// candidate leaf, returning tree-aligned and leaf-aligned keys.
func (p *planner) equiKey(ci int, inTree map[int]bool, leaf int) (l, r sqlparse.Expr, ok bool) {
	c := p.conj[ci]
	if c.used || !c.ok || c.hasAgg || c.hasSub {
		return nil, nil, false
	}
	be, isBin := p.conjuncts[ci].(*sqlparse.BinaryExpr)
	if !isBin || be.Op != "=" {
		return nil, nil, false
	}
	lr, lok := p.attrExpr(be.Left)
	rr, rok := p.attrExpr(be.Right)
	if !lok || !rok || len(lr) == 0 || len(rr) == 0 {
		return nil, nil, false
	}
	onlyLeaf := func(refs []int) bool { return len(refs) == 1 && refs[0] == leaf }
	switch {
	case p.covered(lr, inTree) && onlyLeaf(rr):
		return be.Left, be.Right, true
	case p.covered(rr, inTree) && onlyLeaf(lr):
		return be.Right, be.Left, true
	}
	return nil, nil, false
}

// withConstFilters attaches column-free conjuncts (e.g. 1 = 1, or
// subquery comparisons already rewritten to literals) to the first leaf.
func (p *planner) withConstFilters(n Node) Node {
	var consts []sqlparse.Expr
	for ci, c := range p.conj {
		if !c.used && c.ok && !c.hasAgg && !c.hasSub && len(c.refs) == 0 {
			consts = append(consts, p.conjuncts[ci])
			p.conj[ci].used = true
		}
	}
	if len(consts) == 0 {
		return n
	}
	if f, isF := n.(*FilterNode); isF && f.Resolved {
		nf := *f
		nf.Conjuncts = append(append([]sqlparse.Expr(nil), f.Conjuncts...), consts...)
		return &nf
	}
	return &FilterNode{Input: n, Conjuncts: consts, Resolved: true, Est: n.EstRows()}
}

// planLeaf builds the access path for one ref given the pushable conjunct
// indices: the cheapest usable index predicate (equality on hash or
// ordered indexes, ranges on ordered ones, estimated from row counts and
// distinct-key statistics), with every pushed conjunct re-applied as a
// residual filter. Keeping the index predicate's conjunct in the filter is
// deliberate: the index lookup coerces its literal to the column type and
// may return a superset of the SQL-equal rows (e.g. a fractional literal
// probed against an integer column), so the filter re-check is what
// guarantees scan-equivalent semantics.
func (p *planner) planLeaf(ref int, pushed []int) Node {
	ri := &p.refs[ref]
	rows := float64(defaultRows)
	if ri.known {
		rows = float64(ri.stats.Rows)
	}

	var access Node
	if ri.known {
		if isn := p.chooseIndex(ri, rows, pushed); isn != nil {
			access = isn
			mIndexScans.Inc()
		}
	}
	if access == nil {
		access = &ScanNode{Table: ri.table, As: ri.name, Est: rows}
		mFullScans.Inc()
	}
	if len(pushed) > 0 && ri.known {
		exprs := make([]sqlparse.Expr, len(pushed))
		for i, ci := range pushed {
			exprs[i] = p.conjuncts[ci]
			p.conj[ci].used = true
		}
		access = &FilterNode{Input: access, Conjuncts: exprs, Resolved: true,
			Est: filteredEst(access.EstRows(), len(exprs))}
	}
	return access
}

// indexCandidate is one usable (index, predicate) pairing under
// consideration.
type indexCandidate struct {
	node *IndexScanNode
	est  float64
	rank int // 0 = hash equality, 1 = ordered equality, 2 = range
}

// chooseIndex picks the best index predicate for a leaf. Ties break on
// (est, rank, index name) so plans are deterministic.
func (p *planner) chooseIndex(ri *refInfo, rows float64, pushed []int) *IndexScanNode {
	var best *indexCandidate
	better := func(c *indexCandidate) bool {
		if best == nil {
			return true
		}
		if c.est != best.est {
			return c.est < best.est
		}
		if c.rank != best.rank {
			return c.rank < best.rank
		}
		return c.node.Index < best.node.Index
	}
	for _, idx := range ri.stats.Indexes {
		// Equality: col = literal (either side) on the indexed column.
		for _, ci := range pushed {
			key := p.eqLiteral(ci, ri, idx.Column)
			if key == nil {
				continue
			}
			est := maxf(1, rows/float64(max64(1, idx.Distinct)))
			rank := 1
			if idx.Kind == "hash" {
				rank = 0
			}
			c := &indexCandidate{
				node: &IndexScanNode{Table: ri.table, As: ri.name, Index: idx.Name,
					Column: idx.Column, Kind: idx.Kind, Eq: key, Est: est},
				est: est, rank: rank,
			}
			if better(c) {
				best = c
			}
		}
		if idx.Kind != "ordered" {
			continue
		}
		// Range: the first lower and first upper bound on the column (a
		// non-negated BETWEEN supplies both).
		isn := &IndexScanNode{Table: ri.table, As: ri.name, Index: idx.Name,
			Column: idx.Column, Kind: idx.Kind}
		for _, ci := range pushed {
			lo, hi, loIncl, hiIncl, ok := p.rangeBounds(ci, ri, idx.Column)
			if !ok {
				continue
			}
			if lo != nil && isn.Lo == nil {
				isn.Lo, isn.LoIncl = lo, loIncl
			}
			if hi != nil && isn.Hi == nil {
				isn.Hi, isn.HiIncl = hi, hiIncl
			}
		}
		if isn.Lo == nil && isn.Hi == nil {
			continue
		}
		est := maxf(1, rows*filterSelectivity)
		if isn.Lo != nil && isn.Hi != nil {
			est = maxf(1, rows*filterSelectivity*filterSelectivity)
		}
		isn.Est = est
		c := &indexCandidate{node: isn, est: est, rank: 2}
		if better(c) {
			best = c
		}
	}
	if best == nil {
		return nil
	}
	return best.node
}

// eqLiteral returns the literal key if conjunct ci is `col = literal` (or
// flipped) over the given column of this leaf.
func (p *planner) eqLiteral(ci int, ri *refInfo, column string) sqlparse.Expr {
	be, ok := p.conjuncts[ci].(*sqlparse.BinaryExpr)
	if !ok || be.Op != "=" {
		return nil
	}
	if p.isLeafColumn(be.Left, ri, column) {
		if lit := literalExpr(be.Right); lit != nil {
			return lit
		}
	}
	if p.isLeafColumn(be.Right, ri, column) {
		if lit := literalExpr(be.Left); lit != nil {
			return lit
		}
	}
	return nil
}

// rangeBounds extracts an index-usable bound from conjunct ci: a
// comparison between the indexed column and a literal, or a non-negated
// BETWEEN with literal bounds.
func (p *planner) rangeBounds(ci int, ri *refInfo, column string) (lo, hi sqlparse.Expr, loIncl, hiIncl, ok bool) {
	switch e := p.conjuncts[ci].(type) {
	case *sqlparse.BinaryExpr:
		var colLeft bool
		switch {
		case p.isLeafColumn(e.Left, ri, column) && literalExpr(e.Right) != nil:
			colLeft = true
		case p.isLeafColumn(e.Right, ri, column) && literalExpr(e.Left) != nil:
			colLeft = false
		default:
			return nil, nil, false, false, false
		}
		lit := literalExpr(e.Right)
		if !colLeft {
			lit = literalExpr(e.Left)
		}
		op := e.Op
		if !colLeft {
			// literal OP col: flip the comparison around the column.
			switch op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			}
		}
		switch op {
		case ">":
			return lit, nil, false, false, true
		case ">=":
			return lit, nil, true, false, true
		case "<":
			return nil, lit, false, false, true
		case "<=":
			return nil, lit, false, true, true
		}
		return nil, nil, false, false, false
	case *sqlparse.BetweenExpr:
		if e.Negated || !p.isLeafColumn(e.Expr, ri, column) {
			return nil, nil, false, false, false
		}
		l, h := literalExpr(e.Lo), literalExpr(e.Hi)
		if l == nil || h == nil {
			return nil, nil, false, false, false
		}
		return l, h, true, true, true
	}
	return nil, nil, false, false, false
}

// isLeafColumn reports whether e is a column reference to this leaf's
// given column.
func (p *planner) isLeafColumn(e sqlparse.Expr, ri *refInfo, column string) bool {
	cr, ok := e.(*sqlparse.ColumnRef)
	if !ok || cr.Column != column {
		return false
	}
	return cr.Table == "" || cr.Table == ri.name
}

// literalExpr returns e if it is a non-NULL literal or a `?` parameter
// placeholder (NULL never matches an index predicate under SQL comparison
// semantics, so the planner leaves it to the filter path). A parameter's
// value is unknown at plan time; the executor resolves it per execution, and
// a NULL binding degrades safely — an equality probe on NULL matches
// nothing, a NULL range bound means unbounded with the residual filter
// re-checking every candidate.
func literalExpr(e sqlparse.Expr) sqlparse.Expr {
	switch x := e.(type) {
	case *sqlparse.Literal:
		if !x.Value.IsNull() {
			return x
		}
	case *sqlparse.Param:
		return x
	}
	return nil
}

// splitConjuncts flattens a WHERE tree into AND-connected conjuncts.
func splitConjuncts(e sqlparse.Expr, out *[]sqlparse.Expr) {
	if e == nil {
		return
	}
	if be, ok := e.(*sqlparse.BinaryExpr); ok && be.Op == "AND" {
		splitConjuncts(be.Left, out)
		splitConjuncts(be.Right, out)
		return
	}
	*out = append(*out, e)
}

// columnRefs collects column references without descending into
// subqueries (their columns bind in the inner scope).
func columnRefs(ex sqlparse.Expr, out *[]*sqlparse.ColumnRef) {
	switch e := ex.(type) {
	case *sqlparse.ColumnRef:
		*out = append(*out, e)
	case *sqlparse.BinaryExpr:
		columnRefs(e.Left, out)
		columnRefs(e.Right, out)
	case *sqlparse.UnaryExpr:
		columnRefs(e.Expr, out)
	case *sqlparse.BetweenExpr:
		columnRefs(e.Expr, out)
		columnRefs(e.Lo, out)
		columnRefs(e.Hi, out)
	case *sqlparse.InExpr:
		columnRefs(e.Expr, out)
		for _, i := range e.List {
			columnRefs(i, out)
		}
	case *sqlparse.IsNullExpr:
		columnRefs(e.Expr, out)
	case *sqlparse.FuncExpr:
		if e.Arg != nil {
			columnRefs(e.Arg, out)
		}
	}
}

// containsAggregate reports whether the expression contains an aggregate
// call (such conjuncts can never be filters).
func containsAggregate(ex sqlparse.Expr) bool {
	switch e := ex.(type) {
	case *sqlparse.FuncExpr:
		return true
	case *sqlparse.BinaryExpr:
		return containsAggregate(e.Left) || containsAggregate(e.Right)
	case *sqlparse.UnaryExpr:
		return containsAggregate(e.Expr)
	case *sqlparse.BetweenExpr:
		return containsAggregate(e.Expr) || containsAggregate(e.Lo) || containsAggregate(e.Hi)
	case *sqlparse.InExpr:
		if containsAggregate(e.Expr) {
			return true
		}
		for _, i := range e.List {
			if containsAggregate(i) {
				return true
			}
		}
	case *sqlparse.IsNullExpr:
		return containsAggregate(e.Expr)
	}
	return false
}

// containsSubquery reports whether the expression still contains an
// unresolved subquery (only possible on the plain-EXPLAIN path; execution
// rewrites subqueries to literals before planning).
func containsSubquery(ex sqlparse.Expr) bool {
	switch e := ex.(type) {
	case *sqlparse.SubqueryExpr, *sqlparse.ExistsExpr:
		return true
	case *sqlparse.BinaryExpr:
		return containsSubquery(e.Left) || containsSubquery(e.Right)
	case *sqlparse.UnaryExpr:
		return containsSubquery(e.Expr)
	case *sqlparse.BetweenExpr:
		return containsSubquery(e.Expr) || containsSubquery(e.Lo) || containsSubquery(e.Hi)
	case *sqlparse.InExpr:
		if e.Sub != nil || containsSubquery(e.Expr) {
			return true
		}
		for _, i := range e.List {
			if containsSubquery(i) {
				return true
			}
		}
	case *sqlparse.IsNullExpr:
		return containsSubquery(e.Expr)
	case *sqlparse.FuncExpr:
		return e.Arg != nil && containsSubquery(e.Arg)
	}
	return false
}

func filteredEst(est float64, nconj int) float64 {
	for i := 0; i < nconj; i++ {
		est *= filterSelectivity
	}
	return maxf(1, est)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
