package plan

import (
	"fmt"
	"strings"
	"testing"

	"ldv/internal/sqlparse"
)

// fixedCatalog is a deterministic stand-in for the engine's statistics.
type fixedCatalog map[string]TableStats

func (c fixedCatalog) TableStats(name string) (TableStats, bool) {
	st, ok := c[name]
	return st, ok
}

func testCatalog() fixedCatalog {
	return fixedCatalog{
		"orders": {
			Rows:    10000,
			Columns: []string{"id", "cust", "total", "region"},
			Indexes: []IndexMeta{
				{Name: "ix_cust", Column: "cust", Kind: "hash", Entries: 10000, Distinct: 500},
				{Name: "ix_total", Column: "total", Kind: "ordered", Entries: 10000, Distinct: 9000},
			},
		},
		"customers": {
			Rows:    500,
			Columns: []string{"id", "name", "region"},
			Indexes: []IndexMeta{
				{Name: "ix_name", Column: "name", Kind: "hash", Entries: 500, Distinct: 500},
			},
		},
		"tiny": {
			Rows:    3,
			Columns: []string{"a", "b"},
		},
	}
}

// outline renders a plan tree as one comparable string.
func outline(t *Tree) string {
	if t == nil {
		return "<nil>"
	}
	var parts []string
	for _, n := range t.Nodes() {
		parts = append(parts, fmt.Sprintf("%s[%s]est=%d", n.Op(), n.Detail(), int64(n.EstRows())))
	}
	return strings.Join(parts, ";")
}

// TestPlanDeterminism: the same statement against the same statistics must
// produce byte-identical plans, run after run — EXPLAIN output is a
// regression surface, not a dice roll.
func TestPlanDeterminism(t *testing.T) {
	queries := []string{
		"SELECT id FROM orders WHERE cust = 7",
		"SELECT id FROM orders WHERE total > 100 AND total < 200",
		"SELECT id FROM orders WHERE cust = 7 AND region = 'eu' AND total > 50",
		"SELECT o.id, c.name FROM orders o, customers c WHERE o.cust = c.id",
		"SELECT o.id FROM orders o, customers c, tiny t WHERE o.cust = c.id AND c.region = t.a",
		"SELECT region, count(*) FROM orders GROUP BY region HAVING count(*) > 3 ORDER BY region LIMIT 5",
		"SELECT DISTINCT region FROM orders WHERE total >= 10",
		"UPDATE orders SET total = 0 WHERE cust = 7",
		"DELETE FROM orders WHERE total < 5",
		"SELECT 1",
	}
	for _, q := range queries {
		stmt, err := sqlparse.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		base := outline(PlanStatement(testCatalog(), stmt))
		for i := 0; i < 20; i++ {
			// Re-parse too: plan identity must not depend on AST pointer
			// values or parse order.
			stmt2, _ := sqlparse.Parse(q)
			if got := outline(PlanStatement(testCatalog(), stmt2)); got != base {
				t.Fatalf("%q: plan diverged on run %d:\n  %s\n  %s", q, i, base, got)
			}
		}
	}
}

// TestPlanIndexSelection pins the planner's core choices so cost-model
// changes show up as explicit test diffs.
func TestPlanIndexSelection(t *testing.T) {
	cases := []struct {
		sql     string
		want    string // substring that must appear in the outline
		absent  string // substring that must not
		comment string
	}{
		{"SELECT id FROM orders WHERE cust = 7", "index_scan[orders via ix_cust", "", "equality on a hash-indexed column"},
		{"SELECT id FROM orders WHERE total > 100", "index_scan[orders via ix_total", "", "range on an ordered index"},
		{"SELECT id FROM orders WHERE region = 'eu'", "scan[orders]", "index_scan", "no index on region"},
		{"SELECT id FROM orders WHERE cust > 3", "scan[orders]", "index_scan", "hash index cannot serve a range"},
		{"SELECT id FROM orders WHERE cust = id", "scan[orders]", "index_scan", "non-literal probe is not indexable"},
		{"SELECT o.id FROM orders o, customers c WHERE o.cust = c.id", "hash_join", "", "equi-join plans a hash join"},
	}
	for _, c := range cases {
		stmt, err := sqlparse.Parse(c.sql)
		if err != nil {
			t.Fatalf("parse %q: %v", c.sql, err)
		}
		got := outline(PlanStatement(testCatalog(), stmt))
		if !strings.Contains(got, c.want) {
			t.Errorf("%s (%q):\n  outline %s\n  missing %q", c.comment, c.sql, got, c.want)
		}
		if c.absent != "" && strings.Contains(got, c.absent) {
			t.Errorf("%s (%q):\n  outline %s\n  must not contain %q", c.comment, c.sql, got, c.absent)
		}
	}
}

// TestPlanJoinOrder: the greedy reorderer starts from the smallest base
// table, so the big probe side lands opposite small builds.
func TestPlanJoinOrder(t *testing.T) {
	stmt, err := sqlparse.Parse(
		"SELECT o.id FROM orders o, tiny t, customers c WHERE o.cust = c.id AND c.region = t.a")
	if err != nil {
		t.Fatal(err)
	}
	tree := PlanStatement(testCatalog(), stmt)
	got := outline(tree)
	// tiny (3 rows, alias t) must be scanned before orders (10000 rows,
	// alias o) in the post-order walk once reordering applies.
	ti, oi := strings.Index(got, "scan[t]"), strings.Index(got, "scan[o]")
	if ti < 0 || oi < 0 || ti > oi {
		t.Errorf("join order outline = %s, want tiny joined before orders", got)
	}
	if !tree.Reordered {
		t.Errorf("tree.Reordered = false, want true for %s", got)
	}
}

// FuzzPlan lowers arbitrary parsed statements: whatever parses must plan
// without panicking, and every node must render.
func FuzzPlan(f *testing.F) {
	seeds := []string{
		"SELECT id FROM orders WHERE cust = 7",
		"SELECT * FROM orders o, customers c WHERE o.cust = c.id AND c.name = 'x'",
		"SELECT region, count(*) FROM orders GROUP BY region ORDER BY 1 DESC LIMIT 3",
		"UPDATE orders SET total = total + 1 WHERE total < 10 AND cust = 2",
		"DELETE FROM nowhere WHERE x = 1",
		"SELECT DISTINCT a FROM tiny WHERE b > 'q' AND b <= 'z'",
		"INSERT INTO tiny VALUES (1, 2)",
		"SELECT id FROM orders WHERE cust = 7 OR total > 9",
		"SELECT 1 + 2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Skip()
		}
		cat := testCatalog()
		tree := PlanStatement(cat, stmt)
		if tree == nil {
			return
		}
		for _, n := range tree.Nodes() {
			_ = n.Op()
			_ = n.Detail()
			_ = n.EstRows()
			_ = n.Lineage()
		}
		// Planning twice yields the same tree.
		if a, b := outline(tree), outline(PlanStatement(cat, stmt)); a != b {
			t.Fatalf("nondeterministic plan for %q:\n  %s\n  %s", sql, a, b)
		}
	})
}
