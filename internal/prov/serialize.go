package prov

import (
	"encoding/json"
	"fmt"
	"sort"
)

// traceJSON is the native serialization of a trace, included verbatim in
// LDV packages.
type traceJSON struct {
	Model string     `json:"model"`
	Nodes []nodeJSON `json:"nodes"`
	Edges []edgeJSON `json:"edges"`
	Deps  []depJSON  `json:"deps,omitempty"`
}

type nodeJSON struct {
	ID    string            `json:"id"`
	Type  string            `json:"type"`
	Label string            `json:"label,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

type edgeJSON struct {
	From    string `json:"from"`
	To      string `json:"to"`
	Label   string `json:"label"`
	Begin   uint64 `json:"begin"`
	End     uint64 `json:"end"`
	TraceID string `json:"trace,omitempty"`
}

type depJSON struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// Marshal serializes the trace to its package representation.
func (tr *Trace) Marshal() ([]byte, error) {
	doc := traceJSON{Model: tr.Model.Name}
	for _, n := range tr.Nodes() {
		attrs := n.Attrs
		if len(attrs) == 0 {
			attrs = nil
		}
		doc.Nodes = append(doc.Nodes, nodeJSON{ID: n.ID, Type: n.Type, Label: n.Label, Attrs: attrs})
	}
	for _, e := range tr.EdgesByTime() {
		doc.Edges = append(doc.Edges, edgeJSON{
			From: e.From.ID, To: e.To.ID, Label: e.Label,
			Begin: e.T.Begin, End: e.T.End, TraceID: e.TraceID,
		})
	}
	for _, d := range tr.Deps() {
		doc.Deps = append(doc.Deps, depJSON{From: d.From, To: d.To})
	}
	return json.Marshal(doc)
}

// Unmarshal reconstructs a trace serialized with Marshal. The model must
// match the serialized model name.
func Unmarshal(data []byte, m *Model) (*Trace, error) {
	var doc traceJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("trace unmarshal: %w", err)
	}
	if doc.Model != m.Name {
		return nil, fmt.Errorf("trace unmarshal: model %q does not match %q", doc.Model, m.Name)
	}
	tr := NewTrace(m)
	for _, n := range doc.Nodes {
		node, err := tr.AddNode(n.ID, n.Type, n.Label)
		if err != nil {
			return nil, err
		}
		for k, v := range n.Attrs {
			node.Attrs[k] = v
		}
	}
	for _, e := range doc.Edges {
		if _, err := tr.AddEdgeTraced(e.From, e.To, e.Label, Interval{Begin: e.Begin, End: e.End}, e.TraceID); err != nil {
			return nil, err
		}
	}
	for _, d := range doc.Deps {
		if err := tr.AddDep(d.From, d.To); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// ExportPROV renders the trace in a PROV-JSON-flavoured document, mapping
// the model's edge labels onto PROV relations: readFrom/hasRead become
// prov:used, hasWritten/hasReturned become prov:wasGeneratedBy, executed
// and run become prov:wasStartedBy, and recorded data dependencies become
// prov:wasDerivedFrom. This demonstrates the paper's claim that the generic
// model is representable in PROV.
func (tr *Trace) ExportPROV() ([]byte, error) {
	type rel struct {
		Activity string `json:"prov:activity,omitempty"`
		Entity   string `json:"prov:entity,omitempty"`
		Starter  string `json:"prov:trigger,omitempty"`
		Started  string `json:"prov:activity2,omitempty"`
		Gen      string `json:"prov:generatedEntity,omitempty"`
		Used     string `json:"prov:usedEntity,omitempty"`
		Begin    uint64 `json:"ldv:begin"`
		End      uint64 `json:"ldv:end"`
	}
	doc := map[string]any{}
	entities := map[string]any{}
	activities := map[string]any{}
	for _, n := range tr.Nodes() {
		meta := map[string]string{"ldv:type": n.Type}
		if n.Label != "" {
			meta["prov:label"] = n.Label
		}
		if n.IsEntity(tr.Model) {
			entities[n.ID] = meta
		} else {
			activities[n.ID] = meta
		}
	}
	used := map[string]rel{}
	generated := map[string]rel{}
	started := map[string]rel{}
	for i, e := range tr.EdgesByTime() {
		key := fmt.Sprintf("_:r%d", i)
		switch e.Label {
		case EdgeReadFrom, EdgeHasRead:
			used[key] = rel{Activity: e.To.ID, Entity: e.From.ID, Begin: e.T.Begin, End: e.T.End}
		case EdgeHasWritten, EdgeHasReturned:
			generated[key] = rel{Activity: e.From.ID, Entity: e.To.ID, Begin: e.T.Begin, End: e.T.End}
		case EdgeExecuted, EdgeRun:
			started[key] = rel{Starter: e.From.ID, Started: e.To.ID, Begin: e.T.Begin, End: e.T.End}
		default:
			return nil, fmt.Errorf("export PROV: unmapped edge label %q", e.Label)
		}
	}
	derived := map[string]any{}
	deps := tr.Deps()
	sort.Slice(deps, func(i, j int) bool { return deps[i].From < deps[j].From })
	for i, d := range deps {
		derived[fmt.Sprintf("_:d%d", i)] = map[string]string{
			"prov:generatedEntity": d.To,
			"prov:usedEntity":      d.From,
		}
	}
	doc["prefix"] = map[string]string{"ldv": "https://example.org/ldv#"}
	doc["entity"] = entities
	doc["activity"] = activities
	if len(used) > 0 {
		doc["used"] = used
	}
	if len(generated) > 0 {
		doc["wasGeneratedBy"] = generated
	}
	if len(started) > 0 {
		doc["wasStartedBy"] = started
	}
	if len(derived) > 0 {
		doc["wasDerivedFrom"] = derived
	}
	return json.MarshalIndent(doc, "", " ")
}
