// Package prov implements the paper's generic provenance framework
// (Definitions 1–6): provenance models (typed activities, entities, and
// edge types), execution traces (typed graphs whose edges carry logical-time
// intervals), the concrete PBB (blackbox process) and PLin (lineage) models,
// their combination, and a PROV-style JSON serialization.
package prov

import "fmt"

// Model is a provenance model P = (A, E, L): activity types, entity types,
// and admissible edge types (Definition 1).
type Model struct {
	// Name identifies the model (e.g. "PBB", "PLin", "PBB+PLin").
	Name string
	// Activities and Entities are the admissible node type labels.
	Activities map[string]bool
	Entities   map[string]bool
	// EdgeTypes lists the admissible (label, from-type, to-type) triples.
	EdgeTypes []EdgeType
}

// EdgeType is one element of L: an edge label with its endpoint types.
// Edges are directed along information flow: the paper draws a readFrom
// edge from the file to the reading process.
type EdgeType struct {
	Label string
	From  string
	To    string
}

// IsActivity reports whether typ is an activity type of the model.
func (m *Model) IsActivity(typ string) bool { return m.Activities[typ] }

// IsEntity reports whether typ is an entity type of the model.
func (m *Model) IsEntity(typ string) bool { return m.Entities[typ] }

// ValidNode reports whether typ is admissible at all.
func (m *Model) ValidNode(typ string) bool { return m.IsActivity(typ) || m.IsEntity(typ) }

// ValidEdge reports whether an edge with the given label may connect nodes
// of the given types.
func (m *Model) ValidEdge(label, fromType, toType string) bool {
	for _, et := range m.EdgeTypes {
		if et.Label == label && et.From == fromType && et.To == toType {
			return true
		}
	}
	return false
}

// Node type labels used by the concrete models.
const (
	TypeProcess = "process"
	TypeFile    = "file"
	TypeQuery   = "query"
	TypeInsert  = "insert"
	TypeUpdate  = "update"
	TypeDelete  = "delete"
	TypeTuple   = "tuple"
)

// Edge labels used by the concrete models.
const (
	// PBB (Definition 3).
	EdgeReadFrom   = "readFrom"   // file -> process; also tuple -> process in the combined model
	EdgeHasWritten = "hasWritten" // process -> file
	EdgeExecuted   = "executed"   // process -> process
	// PLin (Definition 4).
	EdgeHasRead     = "hasRead"     // tuple -> statement
	EdgeHasReturned = "hasReturned" // statement -> tuple
	// Combined (Definition 5).
	EdgeRun = "run" // process -> statement
)

// statementTypes are the PLin activity types.
var statementTypes = []string{TypeQuery, TypeInsert, TypeUpdate, TypeDelete}

// Blackbox returns the PBB model of Definition 3: processes and files with
// readFrom, hasWritten, and executed edges.
func Blackbox() *Model {
	return &Model{
		Name:       "PBB",
		Activities: map[string]bool{TypeProcess: true},
		Entities:   map[string]bool{TypeFile: true},
		EdgeTypes: []EdgeType{
			{EdgeReadFrom, TypeFile, TypeProcess},
			{EdgeHasWritten, TypeProcess, TypeFile},
			{EdgeExecuted, TypeProcess, TypeProcess},
		},
	}
}

// Lineage returns the PLin model of Definition 4: SQL statements and tuples
// with hasRead and hasReturned edges.
func Lineage() *Model {
	m := &Model{
		Name:       "PLin",
		Activities: map[string]bool{},
		Entities:   map[string]bool{TypeTuple: true},
	}
	for _, st := range statementTypes {
		m.Activities[st] = true
		m.EdgeTypes = append(m.EdgeTypes,
			EdgeType{EdgeHasRead, TypeTuple, st},
			EdgeType{EdgeHasReturned, st, TypeTuple},
		)
	}
	return m
}

// Combined merges an OS and a DB model per Definition 5, adding the
// cross-model edges run(A_OS, A_DB) and readFrom(E_DB, A_OS).
func Combined(os, db *Model) (*Model, error) {
	m := &Model{
		Name:       os.Name + "+" + db.Name,
		Activities: map[string]bool{},
		Entities:   map[string]bool{},
	}
	for t := range os.Activities {
		m.Activities[t] = true
	}
	for t := range db.Activities {
		if m.Activities[t] {
			return nil, fmt.Errorf("combined model: activity type %q in both models", t)
		}
		m.Activities[t] = true
	}
	for t := range os.Entities {
		m.Entities[t] = true
	}
	for t := range db.Entities {
		if m.Entities[t] {
			return nil, fmt.Errorf("combined model: entity type %q in both models", t)
		}
		m.Entities[t] = true
	}
	m.EdgeTypes = append(m.EdgeTypes, os.EdgeTypes...)
	m.EdgeTypes = append(m.EdgeTypes, db.EdgeTypes...)
	for aos := range os.Activities {
		for adb := range db.Activities {
			m.EdgeTypes = append(m.EdgeTypes, EdgeType{EdgeRun, aos, adb})
		}
		for edb := range db.Entities {
			m.EdgeTypes = append(m.EdgeTypes, EdgeType{EdgeReadFrom, edb, aos})
		}
	}
	return m, nil
}

// CombinedDefault returns the PBB+PLin model used by the LDV prototype.
func CombinedDefault() *Model {
	m, err := Combined(Blackbox(), Lineage())
	if err != nil {
		// The concrete models are disjoint by construction.
		panic(err)
	}
	return m
}
