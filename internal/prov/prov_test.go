package prov

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestModelDefinitions(t *testing.T) {
	bb := Blackbox()
	if !bb.IsActivity(TypeProcess) || !bb.IsEntity(TypeFile) {
		t.Fatal("PBB types wrong")
	}
	if !bb.ValidEdge(EdgeReadFrom, TypeFile, TypeProcess) {
		t.Error("readFrom(file, process) must be valid in PBB")
	}
	if bb.ValidEdge(EdgeReadFrom, TypeProcess, TypeFile) {
		t.Error("readFrom(process, file) must be invalid")
	}

	lin := Lineage()
	for _, st := range []string{TypeQuery, TypeInsert, TypeUpdate, TypeDelete} {
		if !lin.IsActivity(st) {
			t.Errorf("%s must be a PLin activity", st)
		}
		if !lin.ValidEdge(EdgeHasRead, TypeTuple, st) || !lin.ValidEdge(EdgeHasReturned, st, TypeTuple) {
			t.Errorf("PLin edges for %s wrong", st)
		}
	}

	comb := CombinedDefault()
	if !comb.ValidEdge(EdgeRun, TypeProcess, TypeQuery) {
		t.Error("run(process, query) must be valid in combined model")
	}
	if !comb.ValidEdge(EdgeReadFrom, TypeTuple, TypeProcess) {
		t.Error("readFrom(tuple, process) must be valid in combined model")
	}
	if !comb.ValidEdge(EdgeReadFrom, TypeFile, TypeProcess) {
		t.Error("PBB readFrom must survive combination")
	}
}

func TestCombinedRejectsOverlap(t *testing.T) {
	a := Blackbox()
	b := Blackbox()
	if _, err := Combined(a, b); err == nil {
		t.Fatal("overlapping type sets must be rejected")
	}
	lin := Lineage()
	lin.Entities[TypeFile] = true
	if _, err := Combined(Blackbox(), lin); err == nil {
		t.Fatal("overlapping entity types must be rejected")
	}
}

func TestIntervals(t *testing.T) {
	iv := Interval{Begin: 1, End: 6}
	if iv.String() != "[1, 6]" {
		t.Errorf("interval string = %q", iv.String())
	}
	if !iv.Valid() || (Interval{Begin: 3, End: 2}).Valid() {
		t.Error("validity wrong")
	}
	if Point(4) != (Interval{Begin: 4, End: 4}) {
		t.Error("point wrong")
	}
}

// buildFig2 constructs the paper's Figure 2 combined execution trace:
// process P1 reads files A [1,6] and B [7,8], runs Insert1 at [5,5]
// producing t1 and t2, and Insert2 at [8,8] producing t3. Process P2 runs
// Query at [9,9] which reads t1 and t3 and returns t4 and t5; P2 writes
// file C during [7,12].
func buildFig2(t *testing.T) *Trace {
	t.Helper()
	tr := NewTrace(CombinedDefault())
	add := func(id, typ string) {
		if _, err := tr.AddNode(id, typ, id); err != nil {
			t.Fatal(err)
		}
	}
	edge := func(from, to, label string, b, e uint64) {
		if _, err := tr.AddEdge(from, to, label, Interval{Begin: b, End: e}); err != nil {
			t.Fatal(err)
		}
	}
	add("P1", TypeProcess)
	add("P2", TypeProcess)
	add("A", TypeFile)
	add("B", TypeFile)
	add("C", TypeFile)
	add("Insert1", TypeInsert)
	add("Insert2", TypeInsert)
	add("Query", TypeQuery)
	for _, tp := range []string{"t1", "t2", "t3", "t4", "t5"} {
		add(tp, TypeTuple)
	}
	edge("A", "P1", EdgeReadFrom, 1, 6)
	edge("B", "P1", EdgeReadFrom, 7, 8)
	edge("P1", "Insert1", EdgeRun, 5, 5)
	edge("P1", "Insert2", EdgeRun, 8, 8)
	edge("Insert1", "t1", EdgeHasReturned, 5, 5)
	edge("Insert1", "t2", EdgeHasReturned, 5, 5)
	edge("Insert2", "t3", EdgeHasReturned, 8, 8)
	edge("t1", "Query", EdgeHasRead, 9, 9)
	edge("t3", "Query", EdgeHasRead, 9, 9)
	edge("P2", "Query", EdgeRun, 9, 9)
	edge("Query", "t4", EdgeHasReturned, 9, 9)
	edge("Query", "t5", EdgeHasReturned, 9, 9)
	edge("t4", "P2", EdgeReadFrom, 9, 9)
	edge("t5", "P2", EdgeReadFrom, 9, 9)
	edge("P2", "C", EdgeHasWritten, 7, 12)
	// PLin direct dependencies (Definition 7): t4 and t5 depend on t1, t3.
	for _, out := range []string{"t4", "t5"} {
		for _, in := range []string{"t1", "t3"} {
			if err := tr.AddDep(in, out); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tr
}

func TestFig2TraceConstruction(t *testing.T) {
	tr := buildFig2(t)
	if tr.NodeCount() != 13 {
		t.Errorf("nodes = %d", tr.NodeCount())
	}
	if tr.EdgeCount() != 15 {
		t.Errorf("edges = %d", tr.EdgeCount())
	}
	if len(tr.Out("P1")) != 2 || len(tr.In("P1")) != 2 {
		t.Errorf("P1 degree: out=%d in=%d", len(tr.Out("P1")), len(tr.In("P1")))
	}
	if !tr.HasDep("t1", "t4") || tr.HasDep("t2", "t4") {
		t.Error("deps wrong")
	}
}

func TestTraceValidation(t *testing.T) {
	tr := NewTrace(Blackbox())
	if _, err := tr.AddNode("x", TypeTuple, ""); err == nil {
		t.Error("tuple node in PBB must be rejected")
	}
	tr.AddNode("P", TypeProcess, "")
	tr.AddNode("F", TypeFile, "")
	if _, err := tr.AddNode("P", TypeFile, ""); err == nil {
		t.Error("retyping a node must be rejected")
	}
	if n, err := tr.AddNode("P", TypeProcess, ""); err != nil || n != tr.Node("P") {
		t.Error("idempotent AddNode broken")
	}
	if _, err := tr.AddEdge("P", "F", EdgeReadFrom, Point(1)); err == nil {
		t.Error("readFrom(process, file) must be rejected")
	}
	if _, err := tr.AddEdge("F", "P", EdgeReadFrom, Interval{Begin: 5, End: 2}); err == nil {
		t.Error("invalid interval must be rejected")
	}
	if _, err := tr.AddEdge("missing", "P", EdgeReadFrom, Point(1)); err == nil {
		t.Error("missing source must be rejected")
	}
	if _, err := tr.AddEdge("F", "missing", EdgeReadFrom, Point(1)); err == nil {
		t.Error("missing target must be rejected")
	}
	if err := tr.AddDep("F", "P"); err == nil {
		t.Error("dep to an activity must be rejected")
	}
	if err := tr.AddDep("F", "missing"); err == nil {
		t.Error("dep to missing node must be rejected")
	}
}

func TestStateDefinition(t *testing.T) {
	// Definition 10: state of P1 at time 6 contains A (read began at 1) but
	// not B (read began at 7).
	tr := buildFig2(t)
	state := tr.State("P1", 6)
	ids := make([]string, len(state))
	for i, n := range state {
		ids[i] = n.ID
	}
	if strings.Join(ids, ",") != "A" {
		t.Fatalf("state(P1, 6) = %v", ids)
	}
	state = tr.State("P1", 8)
	if len(state) != 2 {
		t.Fatalf("state(P1, 8) = %v", state)
	}
	if len(tr.State("A", 100)) != 0 {
		t.Fatal("A has no incoming interactions")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	tr := buildFig2(t)
	tr.Node("Query").Attrs["sql"] = "SELECT ..."
	data, err := tr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Unmarshal(data, CombinedDefault())
	if err != nil {
		t.Fatal(err)
	}
	if tr2.NodeCount() != tr.NodeCount() || tr2.EdgeCount() != tr.EdgeCount() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			tr2.NodeCount(), tr2.EdgeCount(), tr.NodeCount(), tr.EdgeCount())
	}
	if tr2.Node("Query").Attrs["sql"] != "SELECT ..." {
		t.Error("attrs lost")
	}
	if len(tr2.Deps()) != len(tr.Deps()) {
		t.Error("deps lost")
	}
	// Wrong model is rejected.
	if _, err := Unmarshal(data, Blackbox()); err == nil {
		t.Error("model mismatch must be rejected")
	}
	if _, err := Unmarshal([]byte("{bad"), CombinedDefault()); err == nil {
		t.Error("bad JSON must be rejected")
	}
}

func TestExportPROV(t *testing.T) {
	tr := buildFig2(t)
	data, err := tr.ExportPROV()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("PROV export is not valid JSON: %v", err)
	}
	ent := doc["entity"].(map[string]any)
	act := doc["activity"].(map[string]any)
	if len(ent) != 8 { // 3 files + 5 tuples
		t.Errorf("entities = %d", len(ent))
	}
	if len(act) != 5 { // 2 processes + 3 statements
		t.Errorf("activities = %d", len(act))
	}
	for _, rel := range []string{"used", "wasGeneratedBy", "wasStartedBy", "wasDerivedFrom"} {
		if _, ok := doc[rel]; !ok {
			t.Errorf("relation %s missing from PROV export", rel)
		}
	}
}

func TestExportDOT(t *testing.T) {
	tr := buildFig2(t)
	dot := tr.ExportDOT()
	if !strings.HasPrefix(dot, "digraph trace {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatal("malformed DOT document")
	}
	for _, want := range []string{"shape=box", "shape=ellipse", "style=dashed", "readFrom [1, 6]"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// IDs with special characters must be escaped into valid DOT identifiers.
	tr2 := NewTrace(Blackbox())
	tr2.AddNode("file:/a-b/c.txt", TypeFile, `label with "quotes"`)
	dot2 := tr2.ExportDOT()
	if strings.Contains(dot2, "n_file:/") {
		t.Error("unescaped DOT identifier")
	}
	if !strings.Contains(dot2, `\"quotes\"`) {
		t.Error("unescaped DOT label")
	}
}

func TestEdgeTraceIDRoundTrip(t *testing.T) {
	tr := NewTrace(CombinedDefault())
	tr.AddNode("P", TypeProcess, "")
	tr.AddNode("Q", TypeQuery, "")
	const tid = "0102030405060708090a0b0c0d0e0f10"
	e, err := tr.AddEdgeTraced("P", "Q", EdgeRun, Point(1), tid)
	if err != nil {
		t.Fatal(err)
	}
	if e.TraceID != tid {
		t.Fatalf("TraceID = %q", e.TraceID)
	}
	data, err := tr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"trace":"`+tid+`"`) {
		t.Fatalf("serialized trace missing trace id: %s", data)
	}
	tr2, err := Unmarshal(data, CombinedDefault())
	if err != nil {
		t.Fatal(err)
	}
	if got := tr2.Edges()[0].TraceID; got != tid {
		t.Fatalf("round-tripped TraceID = %q", got)
	}
	// Untraced edges stay untraced and omit the field on the wire.
	tr.AddNode("Q2", TypeQuery, "")
	if _, err := tr.AddEdge("P", "Q2", EdgeRun, Point(2)); err != nil {
		t.Fatal(err)
	}
	data, err = tr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(data), `"trace":`) != 1 {
		t.Fatalf("untraced edge must omit trace field: %s", data)
	}
}
