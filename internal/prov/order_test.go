package prov

import (
	"bytes"
	"testing"
)

type edgeSpec struct {
	from, to, label string
	begin, end      uint64
}

// buildFromSpecs constructs a trace with the given edge arrival order.
func buildFromSpecs(t *testing.T, specs []edgeSpec) *Trace {
	t.Helper()
	tr := NewTrace(CombinedDefault())
	for _, id := range []string{"P1", "P2"} {
		if _, err := tr.AddNode(id, TypeProcess, id); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"Q1", "Q2"} {
		if _, err := tr.AddNode(id, TypeQuery, id); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"t1", "t2"} {
		if _, err := tr.AddNode(id, TypeTuple, id); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range specs {
		if _, err := tr.AddEdge(s.from, s.to, s.label, Interval{Begin: s.begin, End: s.end}); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// Concurrent sessions record into one trace in nondeterministic arrival
// order; serialized artifacts must not depend on it. The same edge set
// inserted in different orders must marshal and render identically, in
// logical-clock order.
func TestEdgeOrderDeterminism(t *testing.T) {
	specs := []edgeSpec{
		{"P1", "Q1", EdgeRun, 3, 3},
		{"P2", "Q2", EdgeRun, 3, 3}, // same tick as Q1: tie broken by node id
		{"Q1", "t1", EdgeHasReturned, 4, 4},
		{"Q2", "t2", EdgeHasReturned, 5, 5},
		{"t1", "Q2", EdgeHasRead, 5, 5},
	}
	orders := [][]edgeSpec{
		specs,
		{specs[4], specs[3], specs[2], specs[1], specs[0]},
		{specs[2], specs[0], specs[4], specs[1], specs[3]},
	}

	var wantJSON []byte
	var wantDOT string
	for i, order := range orders {
		tr := buildFromSpecs(t, order)

		edges := tr.EdgesByTime()
		for j := 1; j < len(edges); j++ {
			if edges[j-1].T.Begin > edges[j].T.Begin {
				t.Fatalf("order %d: EdgesByTime not sorted by Begin at %d", i, j)
			}
		}

		data, err := tr.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		dot := tr.ExportDOT()
		if i == 0 {
			wantJSON, wantDOT = data, dot
			continue
		}
		if !bytes.Equal(data, wantJSON) {
			t.Errorf("order %d: Marshal differs from arrival order 0", i)
		}
		if dot != wantDOT {
			t.Errorf("order %d: ExportDOT differs from arrival order 0", i)
		}
	}

	// The tie at tick 3 resolves by From.ID: P1's edge sorts before P2's.
	edges := buildFromSpecs(t, orders[1]).EdgesByTime()
	if edges[0].From.ID != "P1" || edges[1].From.ID != "P2" {
		t.Errorf("tie-break wrong: got %s then %s", edges[0].From.ID, edges[1].From.ID)
	}
}
