package prov

import (
	"fmt"
	"sort"
)

// Interval is a closed logical-time interval annotating an edge
// (Definition 2's T function).
type Interval struct {
	Begin, End uint64
}

// Point returns the degenerate interval [t, t].
func Point(t uint64) Interval { return Interval{Begin: t, End: t} }

// String renders the interval as [b, e].
func (iv Interval) String() string { return fmt.Sprintf("[%d, %d]", iv.Begin, iv.End) }

// Valid reports whether Begin <= End.
func (iv Interval) Valid() bool { return iv.Begin <= iv.End }

// Node is one activity or entity instance in an execution trace.
type Node struct {
	ID    string
	Type  string
	Label string            // human-readable description
	Attrs map[string]string // optional metadata (e.g. SQL text, file path)
}

// IsEntity reports whether the node is an entity under model m.
func (n *Node) IsEntity(m *Model) bool { return m.IsEntity(n.Type) }

// Edge is one typed, time-annotated interaction. TraceID, when set, names
// the obs request trace (hex form) whose execution recorded the edge —
// linking the provenance graph back to the flight recorder so a package
// answers "which request wrote this tuple version".
type Edge struct {
	From, To *Node
	Label    string
	T        Interval
	TraceID  string
}

// Dep records a direct same-model data dependency between two entities:
// To depends on From (information flowed From -> To). For PLin these are
// derived from Lineage (Definition 7); recording them explicitly preserves
// the per-result association that plain hasRead/hasReturned edges lose.
type Dep struct {
	From, To string // node IDs
}

// Trace is an execution trace for a provenance model (Definition 2): a
// typed graph with interval-annotated edges, plus recorded direct data
// dependencies.
type Trace struct {
	Model *Model

	nodes map[string]*Node
	edges []*Edge
	out   map[string][]*Edge
	in    map[string][]*Edge
	deps  map[Dep]bool
}

// NewTrace returns an empty trace for model m.
func NewTrace(m *Model) *Trace {
	return &Trace{
		Model: m,
		nodes: map[string]*Node{},
		out:   map[string][]*Edge{},
		in:    map[string][]*Edge{},
		deps:  map[Dep]bool{},
	}
}

// AddNode creates (or returns the existing) node with the given id and
// type. Adding the same id with a different type is an error.
func (tr *Trace) AddNode(id, typ, label string) (*Node, error) {
	if !tr.Model.ValidNode(typ) {
		return nil, fmt.Errorf("trace: node type %q is not part of model %s", typ, tr.Model.Name)
	}
	if n, ok := tr.nodes[id]; ok {
		if n.Type != typ {
			return nil, fmt.Errorf("trace: node %q exists with type %q, not %q", id, n.Type, typ)
		}
		return n, nil
	}
	n := &Node{ID: id, Type: typ, Label: label, Attrs: map[string]string{}}
	tr.nodes[id] = n
	return n, nil
}

// Node returns the node with the given id, or nil.
func (tr *Trace) Node(id string) *Node { return tr.nodes[id] }

// Nodes returns all nodes sorted by id.
func (tr *Trace) Nodes() []*Node {
	out := make([]*Node, 0, len(tr.nodes))
	for _, n := range tr.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AddEdge connects two existing nodes with a typed, time-annotated edge,
// validating the edge type against the model.
func (tr *Trace) AddEdge(fromID, toID, label string, t Interval) (*Edge, error) {
	from, ok := tr.nodes[fromID]
	if !ok {
		return nil, fmt.Errorf("trace: edge source %q does not exist", fromID)
	}
	to, ok := tr.nodes[toID]
	if !ok {
		return nil, fmt.Errorf("trace: edge target %q does not exist", toID)
	}
	if !t.Valid() {
		return nil, fmt.Errorf("trace: invalid interval %v on edge %s->%s", t, fromID, toID)
	}
	if !tr.Model.ValidEdge(label, from.Type, to.Type) {
		return nil, fmt.Errorf("trace: edge %s(%s, %s) violates model %s",
			label, from.Type, to.Type, tr.Model.Name)
	}
	e := &Edge{From: from, To: to, Label: label, T: t}
	tr.edges = append(tr.edges, e)
	tr.out[fromID] = append(tr.out[fromID], e)
	tr.in[toID] = append(tr.in[toID], e)
	return e, nil
}

// AddEdgeTraced is AddEdge with a request-trace annotation: traceID (the
// hex obs.TraceID, "" for none) is stamped on the edge.
func (tr *Trace) AddEdgeTraced(fromID, toID, label string, t Interval, traceID string) (*Edge, error) {
	e, err := tr.AddEdge(fromID, toID, label, t)
	if err != nil {
		return nil, err
	}
	e.TraceID = traceID
	return e, nil
}

// Edges returns all edges in insertion order.
func (tr *Trace) Edges() []*Edge { return tr.edges }

// EdgesByTime returns the edges ordered by the shared logical clock
// (interval begin, then end), with node ids and label as tie-breakers.
// Insertion order is arrival order, which is nondeterministic when several
// sessions record into one trace concurrently; serialized and rendered
// traces order by time instead so equal executions produce equal artifacts.
func (tr *Trace) EdgesByTime() []*Edge {
	out := append([]*Edge(nil), tr.edges...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.T.Begin != b.T.Begin {
			return a.T.Begin < b.T.Begin
		}
		if a.T.End != b.T.End {
			return a.T.End < b.T.End
		}
		if a.From.ID != b.From.ID {
			return a.From.ID < b.From.ID
		}
		if a.To.ID != b.To.ID {
			return a.To.ID < b.To.ID
		}
		return a.Label < b.Label
	})
	return out
}

// Out returns the edges leaving node id.
func (tr *Trace) Out(id string) []*Edge { return tr.out[id] }

// In returns the edges entering node id.
func (tr *Trace) In(id string) []*Edge { return tr.in[id] }

// AddDep records that entity toID directly depends on entity fromID within
// one provenance model. Both nodes must exist and be entities.
func (tr *Trace) AddDep(fromID, toID string) error {
	from, ok := tr.nodes[fromID]
	if !ok {
		return fmt.Errorf("trace: dep source %q does not exist", fromID)
	}
	to, ok := tr.nodes[toID]
	if !ok {
		return fmt.Errorf("trace: dep target %q does not exist", toID)
	}
	if !from.IsEntity(tr.Model) || !to.IsEntity(tr.Model) {
		return fmt.Errorf("trace: dependency %s -> %s must connect entities", fromID, toID)
	}
	tr.deps[Dep{From: fromID, To: toID}] = true
	return nil
}

// HasDep reports whether entity toID was recorded as directly depending on
// entity fromID.
func (tr *Trace) HasDep(fromID, toID string) bool {
	return tr.deps[Dep{From: fromID, To: toID}]
}

// Deps returns all recorded direct dependencies, sorted.
func (tr *Trace) Deps() []Dep {
	out := make([]Dep, 0, len(tr.deps))
	for d := range tr.deps {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// NodeCount and EdgeCount report trace size.
func (tr *Trace) NodeCount() int { return len(tr.nodes) }

// EdgeCount reports the number of edges.
func (tr *Trace) EdgeCount() int { return len(tr.edges) }

// State implements Definition 10: the state of node v at time T is the set
// of nodes v' with an edge (v', v) whose interaction began at or before T.
func (tr *Trace) State(id string, t uint64) []*Node {
	var out []*Node
	seen := map[string]bool{}
	for _, e := range tr.in[id] {
		if e.T.Begin <= t && !seen[e.From.ID] {
			seen[e.From.ID] = true
			out = append(out, e.From)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
