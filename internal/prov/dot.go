package prov

import (
	"fmt"
	"sort"
	"strings"
)

// ExportDOT renders the trace in Graphviz DOT form, drawn in the paper's
// figure style: processes and SQL statements as boxes (activities), files
// and tuples as ellipses (entities), interaction edges labelled with their
// time intervals, and data dependencies as dashed edges.
func (tr *Trace) ExportDOT() string {
	var sb strings.Builder
	sb.WriteString("digraph trace {\n")
	sb.WriteString("  rankdir=LR;\n")
	sb.WriteString("  node [fontsize=10];\n")
	for _, n := range tr.Nodes() {
		shape := "box"
		if n.IsEntity(tr.Model) {
			shape = "ellipse"
		}
		label := n.Label
		if label == "" {
			label = n.ID
		}
		if len(label) > 40 {
			label = label[:37] + "..."
		}
		fmt.Fprintf(&sb, "  %s [shape=%s, label=%s];\n", dotID(n.ID), shape, dotString(label))
	}
	for _, e := range tr.EdgesByTime() {
		fmt.Fprintf(&sb, "  %s -> %s [label=%s];\n",
			dotID(e.From.ID), dotID(e.To.ID), dotString(fmt.Sprintf("%s %s", e.Label, e.T)))
	}
	deps := tr.Deps()
	sort.Slice(deps, func(i, j int) bool {
		if deps[i].From != deps[j].From {
			return deps[i].From < deps[j].From
		}
		return deps[i].To < deps[j].To
	})
	for _, d := range deps {
		fmt.Fprintf(&sb, "  %s -> %s [style=dashed, color=gray, label=\"dep\"];\n",
			dotID(d.From), dotID(d.To))
	}
	sb.WriteString("}\n")
	return sb.String()
}

// dotID produces a safe DOT identifier for an arbitrary node id.
func dotID(id string) string {
	var sb strings.Builder
	sb.WriteString("n_")
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			fmt.Fprintf(&sb, "_%02x", r)
		}
	}
	return sb.String()
}

func dotString(s string) string {
	return `"` + strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s) + `"`
}
