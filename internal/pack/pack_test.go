package pack

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"ldv/internal/osim"
)

func TestArchiveBasics(t *testing.T) {
	a := New()
	a.Add("/bin/app", []byte("elf"))
	a.Add("etc/conf", []byte("k=v")) // relative paths are normalized
	a.AddSymlink("/lib/link.so", "/lib/real.so")
	if !a.Has("/etc/conf") {
		t.Fatal("normalized path missing")
	}
	if a.Len() != 3 {
		t.Fatalf("len = %d", a.Len())
	}
	data, err := a.Read("/bin/app")
	if err != nil || string(data) != "elf" {
		t.Fatalf("read: %q %v", data, err)
	}
	if _, err := a.Read("/lib/link.so"); err == nil {
		t.Error("reading a symlink must fail")
	}
	if _, err := a.Read("/missing"); err == nil {
		t.Error("reading missing member must fail")
	}
	if a.TotalSize() != 6 {
		t.Fatalf("total size = %d", a.TotalSize())
	}
	want := []string{"/bin/app", "/etc/conf", "/lib/link.so"}
	if !reflect.DeepEqual(a.Paths(), want) {
		t.Fatalf("paths = %v", a.Paths())
	}
}

func TestPathsUnderAndSizeUnder(t *testing.T) {
	a := New()
	a.Add("/db/data/t1.tbl", make([]byte, 100))
	a.Add("/db/data/t2.tbl", make([]byte, 50))
	a.Add("/bin/x", make([]byte, 10))
	if got := a.PathsUnder("/db/data"); len(got) != 2 {
		t.Fatalf("paths under = %v", got)
	}
	if a.SizeUnder("/db") != 150 {
		t.Fatalf("size under = %d", a.SizeUnder("/db"))
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	a := New()
	a.Add("/a", []byte("alpha"))
	a.Add("/b/c", nil)
	a.AddSymlink("/d", "relative/target")
	data := a.Marshal()
	b, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Paths(), b.Paths()) {
		t.Fatalf("paths differ: %v vs %v", a.Paths(), b.Paths())
	}
	got, _ := b.Read("/a")
	if string(got) != "alpha" {
		t.Fatal("content differs")
	}
	if b.Entry("/d").Symlink != "relative/target" {
		t.Fatal("symlink differs")
	}
	// Determinism.
	if !bytes.Equal(a.Marshal(), a.Marshal()) {
		t.Fatal("marshal is not deterministic")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NOTPKG0\n"),
		[]byte(archiveMagic),            // missing count
		append([]byte(archiveMagic), 5), // count but no members
		append(New().Marshal(), 0xFF),   // trailing garbage
	}
	for i, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestExtractToSimFS(t *testing.T) {
	a := New()
	a.Add("/app/bin/tool", []byte("bin"))
	a.AddSymlink("/app/lib/l.so", "/app/lib/real.so")
	a.Add("/app/lib/real.so", []byte("lib"))
	fs := osim.NewFS()
	if err := a.ExtractTo(fs, "/pkgroot"); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/pkgroot/app/bin/tool")
	if err != nil || string(data) != "bin" {
		t.Fatalf("extract: %q %v", data, err)
	}
	// Absolute symlink targets are rebased into the package root.
	data, err = fs.ReadFile("/pkgroot/app/lib/l.so")
	if err != nil || string(data) != "lib" {
		t.Fatalf("symlink extract: %q %v", data, err)
	}
}

func TestSaveLoadRealDisk(t *testing.T) {
	a := New()
	a.Add("/x", []byte("payload"))
	p := filepath.Join(t.TempDir(), "pkg.ldv")
	if err := a.Save(p); err != nil {
		t.Fatal(err)
	}
	b, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := b.Read("/x")
	if string(got) != "payload" {
		t.Fatal("disk round trip failed")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("loading missing file must fail")
	}
}

type quickArchive struct{ A *Archive }

func (quickArchive) Generate(r *rand.Rand, _ int) reflect.Value {
	a := New()
	n := r.Intn(10)
	for i := 0; i < n; i++ {
		p := "/f" + string(rune('a'+r.Intn(26)))
		if r.Intn(5) == 0 {
			a.AddSymlink(p, "/target")
			continue
		}
		data := make([]byte, r.Intn(64))
		r.Read(data)
		a.Add(p, data)
	}
	return reflect.ValueOf(quickArchive{A: a})
}

func TestQuickMarshalRoundTrip(t *testing.T) {
	f := func(q quickArchive) bool {
		b, err := Unmarshal(q.A.Marshal())
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(q.A.Paths(), b.Paths()) {
			return false
		}
		for _, p := range q.A.Paths() {
			ea, eb := q.A.Entry(p), b.Entry(p)
			if ea.Symlink != eb.Symlink || !bytes.Equal(ea.Data, eb.Data) {
				return false
			}
		}
		return b.TotalSize() == q.A.TotalSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
