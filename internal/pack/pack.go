// Package pack implements the LDV package container: a virtual file tree
// with symlink support, deterministic single-file serialization (a minimal
// tar-like format), size accounting, and extraction into any filesystem
// implementing the engine.FileSystem surface. LDV, PTU, and VMI packages are
// all Archives with different contents.
package pack

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"strings"

	"ldv/internal/obs"
)

// Packaging accounting: member adds, serialized archive bytes, and
// extraction volume — the inputs to the paper's package-size figures.
var (
	mFilesAdded     = obs.NewCounter("pack.files_added", "Members added to package archives")
	mBytesAdded     = obs.NewCounter("pack.bytes_added", "Bytes of member content added to package archives")
	mBytesMarshaled = obs.NewCounter("pack.bytes_marshaled", "Bytes of serialized package archives")
	mFilesExtracted = obs.NewCounter("pack.files_extracted", "Members extracted from package archives")
	mBytesExtracted = obs.NewCounter("pack.bytes_extracted", "Bytes extracted from package archives")
)

// Archive is a self-contained package: a mapping from slash paths to file
// contents or symlink targets. The zero value is not usable; call New.
type Archive struct {
	files map[string]*Entry
}

// Entry is one archive member.
type Entry struct {
	Data    []byte
	Symlink string // non-empty for symlinks; Data is then ignored
}

// New returns an empty archive.
func New() *Archive { return &Archive{files: map[string]*Entry{}} }

func normalize(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return p
}

// Add stores a regular file, replacing any existing entry.
func (a *Archive) Add(path string, data []byte) {
	a.files[normalize(path)] = &Entry{Data: append([]byte(nil), data...)}
	mFilesAdded.Inc()
	mBytesAdded.Add(int64(len(data)))
}

// AddSymlink stores a symbolic link.
func (a *Archive) AddSymlink(path, target string) {
	a.files[normalize(path)] = &Entry{Symlink: target}
}

// Has reports whether the archive contains path.
func (a *Archive) Has(path string) bool {
	_, ok := a.files[normalize(path)]
	return ok
}

// Read returns the contents of a regular file member.
func (a *Archive) Read(path string) ([]byte, error) {
	e, ok := a.files[normalize(path)]
	if !ok {
		return nil, fmt.Errorf("package: no member %q", path)
	}
	if e.Symlink != "" {
		return nil, fmt.Errorf("package: member %q is a symlink to %q", path, e.Symlink)
	}
	return e.Data, nil
}

// Entry returns the raw entry for path, or nil.
func (a *Archive) Entry(path string) *Entry { return a.files[normalize(path)] }

// Paths lists all member paths sorted.
func (a *Archive) Paths() []string {
	out := make([]string, 0, len(a.files))
	for p := range a.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// PathsUnder lists member paths with the given prefix directory.
func (a *Archive) PathsUnder(dir string) []string {
	dir = strings.TrimSuffix(normalize(dir), "/")
	var out []string
	for p := range a.files {
		if strings.HasPrefix(p, dir+"/") {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Len reports the number of members.
func (a *Archive) Len() int { return len(a.files) }

// TotalSize sums all regular-file payload sizes — the package size measure
// used in the paper's Figure 9.
func (a *Archive) TotalSize() int64 {
	var total int64
	for _, e := range a.files {
		if e.Symlink == "" {
			total += int64(len(e.Data))
		}
	}
	return total
}

// SizeUnder sums payload sizes below a directory prefix.
func (a *Archive) SizeUnder(dir string) int64 {
	dir = strings.TrimSuffix(normalize(dir), "/")
	var total int64
	for p, e := range a.files {
		if e.Symlink == "" && strings.HasPrefix(p, dir+"/") {
			total += int64(len(e.Data))
		}
	}
	return total
}

const archiveMagic = "LDVPKG1\n"

// Marshal serializes the archive deterministically.
func (a *Archive) Marshal() []byte {
	buf := []byte(archiveMagic)
	paths := a.Paths()
	buf = binary.AppendUvarint(buf, uint64(len(paths)))
	for _, p := range paths {
		e := a.files[p]
		buf = appendString(buf, p)
		if e.Symlink != "" {
			buf = append(buf, 1)
			buf = appendString(buf, e.Symlink)
		} else {
			buf = append(buf, 0)
			buf = binary.AppendUvarint(buf, uint64(len(e.Data)))
			buf = append(buf, e.Data...)
		}
	}
	mBytesMarshaled.Add(int64(len(buf)))
	return buf
}

// Unmarshal parses an archive produced by Marshal.
func Unmarshal(data []byte) (*Archive, error) {
	if len(data) < len(archiveMagic) || string(data[:len(archiveMagic)]) != archiveMagic {
		return nil, fmt.Errorf("package: bad magic")
	}
	b := data[len(archiveMagic):]
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("package: bad member count")
	}
	b = b[n:]
	a := New()
	for i := uint64(0); i < count; i++ {
		var p string
		var err error
		p, b, err = readString(b)
		if err != nil {
			return nil, fmt.Errorf("package member %d: %w", i, err)
		}
		if len(b) == 0 {
			return nil, fmt.Errorf("package member %d: truncated", i)
		}
		isLink := b[0] == 1
		b = b[1:]
		if isLink {
			var target string
			target, b, err = readString(b)
			if err != nil {
				return nil, fmt.Errorf("package member %d: %w", i, err)
			}
			a.AddSymlink(p, target)
			continue
		}
		size, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < size {
			return nil, fmt.Errorf("package member %d: bad size", i)
		}
		a.Add(p, b[n:n+int(size)])
		b = b[n+int(size):]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("package: %d trailing bytes", len(b))
	}
	return a, nil
}

// FileSystem is the extraction target surface (a subset of
// engine.FileSystem plus symlinks, satisfied by osim.FS).
type FileSystem interface {
	WriteFile(path string, data []byte) error
	MkdirAll(path string) error
	Symlink(target, linkPath string) error
}

// ExtractTo materializes every member under root in fs, re-creating the
// chroot-like directory layout of §VII-D.
func (a *Archive) ExtractTo(fs FileSystem, root string) error {
	root = strings.TrimSuffix(normalize(root), "/")
	for _, p := range a.Paths() {
		e := a.files[p]
		dst := root + p
		if e.Symlink != "" {
			target := e.Symlink
			if strings.HasPrefix(target, "/") {
				target = root + target
			}
			if err := fs.Symlink(target, dst); err != nil {
				return fmt.Errorf("extract %s: %w", p, err)
			}
			continue
		}
		if err := fs.WriteFile(dst, e.Data); err != nil {
			return fmt.Errorf("extract %s: %w", p, err)
		}
		mFilesExtracted.Inc()
		mBytesExtracted.Add(int64(len(e.Data)))
	}
	return nil
}

// Save writes the serialized archive to the real filesystem.
func (a *Archive) Save(osPath string) error {
	return os.WriteFile(osPath, a.Marshal(), 0o644)
}

// Load reads a serialized archive from the real filesystem.
func Load(osPath string) (*Archive, error) {
	data, err := os.ReadFile(osPath)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(b []byte) (string, []byte, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < l {
		return "", nil, fmt.Errorf("bad string")
	}
	return string(b[n : n+int(l)]), b[n+int(l):], nil
}
