package engine

import (
	"fmt"
	"testing"

	"ldv/internal/faultfs"
)

// The crash matrix: run a fixed workload against a fault-injecting
// filesystem that crashes on the Nth mutating operation, for every N the
// workload performs and for several torn-append fractions, then recover from
// the surviving files and check the durability contract:
//
//	acked ⊆ recovered ⊆ attempted
//
// — every commit the client was told succeeded is present, nothing the
// client never issued is present, and a commit that was in flight at the
// crash (attempted but never acknowledged) is either fully present or fully
// absent, never partial.

// crashOp identifies one workload operation for the contract check.
type crashOp int

const (
	opCreateT crashOp = iota
	opIns1
	opCreateIx // CREATE INDEX early so most writes run index-maintained
	opIns2
	opIns3
	opTxnA // BEGIN; INSERT 10; INSERT 11; COMMIT — the atomicity pair
	opUpd2 // index-located UPDATE (WHERE on the indexed column)
	opDel3
	opVacuum // VACUUM after the churn above left dead versions to reclaim
	opCkpt
	opIns4
	opCreateU
	opInsU
	opTxnB    // BEGIN; INSERT 12; INSERT 13; COMMIT
	opDropIx2 // create+drop a second index, exercising drop durability
	opCount
)

// crashWorkload drives the fixed workload against fs, recording which
// operations were acknowledged (returned nil). It stops early once an
// operation fails — after a crash the engine's WAL failure is sticky, and a
// real client would be dead anyway. boot reports whether the initial
// recovery itself succeeded.
func crashWorkload(fs FileSystem) (acked [opCount]bool, boot bool) {
	db := NewDB(nil)
	if _, err := db.Recover(fs, "/data"); err != nil {
		return acked, false
	}
	boot = true
	step := func(op crashOp, run func() error) bool {
		if err := run(); err != nil {
			return false
		}
		acked[op] = true
		return true
	}
	exec := func(sql string) func() error {
		return func() error { _, err := db.Exec(sql, ExecOptions{}); return err }
	}
	txn := func(stmts ...string) func() error {
		return func() error {
			s := db.NewSession()
			defer s.Close()
			for _, sql := range append(append([]string{"BEGIN"}, stmts...), "COMMIT") {
				if _, err := s.Exec(sql, ExecOptions{}); err != nil {
					return err
				}
			}
			return nil
		}
	}
	steps := []struct {
		op  crashOp
		run func() error
	}{
		{opCreateT, exec("CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")},
		{opIns1, exec("INSERT INTO t VALUES (1, 'one')")},
		{opCreateIx, exec("CREATE INDEX ix_v ON t (v)")},
		{opIns2, exec("INSERT INTO t VALUES (2, 'two')")},
		{opIns3, exec("INSERT INTO t VALUES (3, 'three')")},
		{opTxnA, txn("INSERT INTO t VALUES (10, 'a')", "INSERT INTO t VALUES (11, 'a')")},
		{opUpd2, exec("UPDATE t SET v = 'dos' WHERE v = 'two'")},
		{opDel3, exec("DELETE FROM t WHERE k = 3")},
		{opVacuum, exec("VACUUM")}, // writes a walVacuum record, then prunes
		{opCkpt, func() error { return db.Checkpoint(fs, "/data") }},
		{opIns4, exec("INSERT INTO t VALUES (4, 'four')")},
		{opCreateU, exec("CREATE TABLE u (x INT)")},
		{opInsU, exec("INSERT INTO u VALUES (42)")},
		{opTxnB, txn("INSERT INTO t VALUES (12, 'b')", "INSERT INTO t VALUES (13, 'b')")},
		{opDropIx2, func() error {
			if _, err := db.Exec("CREATE INDEX ix_tmp ON t (k) USING ordered", ExecOptions{}); err != nil {
				return err
			}
			_, err := db.Exec("DROP INDEX ix_tmp", ExecOptions{})
			return err
		}},
	}
	for _, s := range steps {
		if !step(s.op, s.run) {
			return acked, boot
		}
	}
	return acked, boot
}

// hasTable reports whether the recovered catalog holds the table.
func hasTable(db *DB, table string) bool {
	for _, name := range db.TableNames() {
		if name == table {
			return true
		}
	}
	return false
}

// tableState reads the recovered table t into key → value, or nil when the
// table is absent.
func tableState(t *testing.T, db *DB, table string) map[int64]string {
	t.Helper()
	if !hasTable(db, table) {
		return nil
	}
	res, err := db.Exec("SELECT k, v FROM "+table, ExecOptions{})
	if err != nil {
		t.Fatalf("read recovered %s: %v", table, err)
	}
	out := map[int64]string{}
	for _, r := range res.Rows {
		out[r[0].Int()] = r[1].String()
	}
	return out
}

// checkContract asserts the durability contract for one crash run. ackedUpTo
// maps each op to whether it was acknowledged; ops after the first failure
// were never attempted... except exactly one, the op in flight at the crash.
func checkContract(t *testing.T, db *DB, acked [opCount]bool, label string) {
	t.Helper()
	rows := tableState(t, db, "t")

	// attempted = acked ops plus the first unacked one (in flight at the
	// crash); everything after was never issued.
	attempted := [opCount]bool{}
	inFlight := -1
	for op := crashOp(0); op < opCount; op++ {
		attempted[op] = true
		if !acked[op] {
			inFlight = int(op)
			break
		}
	}

	requireRow := func(k int64, v string, op crashOp, what string) {
		t.Helper()
		got, ok := rows[k]
		if acked[op] && (!ok || got != v) {
			t.Fatalf("%s: acked %s lost (k=%d got %q ok=%v)", label, what, k, got, ok)
		}
		if !attempted[op] && ok {
			t.Fatalf("%s: unattempted %s present (k=%d)", label, what, k)
		}
	}

	if acked[opCreateT] && rows == nil {
		t.Fatalf("%s: acked CREATE TABLE t lost", label)
	}
	if !attempted[opCreateT] && rows != nil {
		t.Fatalf("%s: table t exists before CREATE was attempted", label)
	}
	if rows == nil {
		return // nothing further can be checked
	}
	requireRow(1, "one", opIns1, "insert")
	requireRow(4, "four", opIns4, "insert")

	// Index contract: an acked CREATE INDEX survives recovery, an
	// unattempted one is absent, and whatever the crash left behind, a query
	// routed through the planner must agree with the raw table contents.
	res, err := db.Exec("SELECT name FROM ldv_stat_indexes WHERE name = 'ix_v'", ExecOptions{})
	if err != nil {
		t.Fatalf("%s: read ldv_stat_indexes: %v", label, err)
	}
	hasIx := len(res.Rows) == 1
	if acked[opCreateIx] && !hasIx {
		t.Fatalf("%s: acked CREATE INDEX lost", label)
	}
	if !attempted[opCreateIx] && hasIx {
		t.Fatalf("%s: index exists before CREATE INDEX was attempted", label)
	}
	for _, probe := range []string{"one", "dos"} {
		res, err := db.Exec(fmt.Sprintf("SELECT k FROM t WHERE v = '%s'", probe), ExecOptions{})
		if err != nil {
			t.Fatalf("%s: indexed probe %q: %v", label, probe, err)
		}
		got := map[int64]bool{}
		for _, r := range res.Rows {
			got[r[0].Int()] = true
		}
		want := map[int64]bool{}
		for k, v := range rows {
			if v == probe {
				want[k] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%s: probe %q via planner = %v, table holds %v", label, probe, got, want)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("%s: probe %q via planner = %v, table holds %v", label, probe, got, want)
			}
		}
	}

	// The explicit transactions are the atomicity probes: both rows or
	// neither, regardless of ack state.
	for _, pair := range []struct {
		a, b int64
		op   crashOp
	}{{10, 11, opTxnA}, {12, 13, opTxnB}} {
		_, hasA := rows[pair.a]
		_, hasB := rows[pair.b]
		if hasA != hasB {
			t.Fatalf("%s: txn torn: k=%d present=%v, k=%d present=%v", label, pair.a, hasA, pair.b, hasB)
		}
		if acked[pair.op] && !hasA {
			t.Fatalf("%s: acked txn lost (k=%d,%d)", label, pair.a, pair.b)
		}
		if !attempted[pair.op] && hasA {
			t.Fatalf("%s: unattempted txn present (k=%d,%d)", label, pair.a, pair.b)
		}
	}

	// UPDATE: acked → new value; unattempted → old value; in flight → either.
	if v, ok := rows[2]; ok {
		switch {
		case acked[opUpd2] && v != "dos":
			t.Fatalf("%s: acked update lost: k=2 = %q", label, v)
		case !attempted[opUpd2] && v != "two":
			t.Fatalf("%s: unattempted update applied: k=2 = %q", label, v)
		}
	} else if acked[opIns2] {
		t.Fatalf("%s: acked insert k=2 lost", label)
	}

	// DELETE: acked → gone; unattempted → still there (if its insert acked).
	if _, ok := rows[3]; ok && acked[opDel3] {
		t.Fatalf("%s: acked delete undone: k=3 present", label)
	} else if !ok && acked[opIns3] && !attempted[opDel3] {
		t.Fatalf("%s: k=3 missing though delete was never attempted", label)
	}

	// Vacuum: an acked pass's retention horizon survives recovery (the
	// walVacuum record replays), and the recovered engine keeps fencing AS OF
	// reads below it. An unattempted vacuum must leave the horizon at zero.
	h := db.VacuumHorizon()
	if acked[opVacuum] && h == 0 {
		t.Fatalf("%s: acked VACUUM horizon lost after recovery", label)
	}
	if !attempted[opVacuum] && h != 0 {
		t.Fatalf("%s: horizon %d set before VACUUM was attempted", label, h)
	}
	if h > 1 {
		if _, err := db.Exec(fmt.Sprintf("SELECT k FROM t AS OF %d", h-1), ExecOptions{}); err == nil {
			t.Fatalf("%s: AS OF %d below recovered horizon %d not rejected", label, h-1, h)
		}
	}

	// DDL on the second table.
	hasU := hasTable(db, "u")
	if acked[opCreateU] && !hasU {
		t.Fatalf("%s: acked CREATE TABLE u lost", label)
	}
	if !attempted[opCreateU] && hasU {
		t.Fatalf("%s: table u exists before CREATE was attempted", label)
	}
	if hasU {
		res, err := db.Exec("SELECT x FROM u", ExecOptions{})
		if err != nil {
			t.Fatalf("%s: read recovered u: %v", label, err)
		}
		if acked[opInsU] && len(res.Rows) != 1 {
			t.Fatalf("%s: acked insert into u lost", label)
		}
		if !attempted[opInsU] && len(res.Rows) != 0 {
			t.Fatalf("%s: unattempted insert into u present", label)
		}
	}

	_ = inFlight
}

func TestCrashMatrix(t *testing.T) {
	// Dry run: count the mutating filesystem operations the workload
	// performs when nothing crashes.
	dry := faultfs.New(newMapFS(), 0, 0)
	acked, boot := crashWorkload(dry)
	if !boot {
		t.Fatal("dry run failed to boot")
	}
	for op := crashOp(0); op < opCount; op++ {
		if !acked[op] {
			t.Fatalf("dry run: op %d not acknowledged", op)
		}
	}
	total := dry.Ops()
	if total < int(opCount) {
		t.Fatalf("dry run performed %d fs ops, expected at least %d", total, opCount)
	}

	for _, frac := range []float64{0, 0.5} {
		for crashAt := 1; crashAt <= total; crashAt++ {
			name := fmt.Sprintf("crash=%d,frac=%g", crashAt, frac)
			t.Run(name, func(t *testing.T) {
				inner := newMapFS()
				ffs := faultfs.New(inner, crashAt, frac)
				acked, _ := crashWorkload(ffs)
				if !ffs.Crashed() {
					t.Fatalf("crash point %d never reached", crashAt)
				}

				// Reboot on the surviving files. Recovery must always
				// succeed, whatever the crash point left behind.
				db := NewDB(nil)
				if _, err := db.Recover(inner, "/data"); err != nil {
					t.Fatalf("recovery after %s failed: %v", name, err)
				}
				checkContract(t, db, acked, name)
			})
		}
	}
}
