package engine

import (
	"fmt"
	"sort"

	"ldv/internal/sqlparse"
	"ldv/internal/sqlval"
)

// Time-travel support: the commit-timestamp registry historical (AS OF)
// snapshots classify transactions with, and the per-transaction statement
// history REENACT TRANSACTION replays. Both are bounded in memory — vacuum
// prunes them below the retention horizon, and hard caps evict the oldest
// half under sustained churn so an un-vacuumed database degrades (oldest
// history first) instead of growing without bound.

// committedTsCap bounds the commit-timestamp registry; when exceeded, the
// oldest half (by commit tick) is dropped. AS OF reads older than the
// dropped range then resolve with write-stamp-only precision, matching the
// post-restart behavior.
const committedTsCap = 65536

// txnHistCap bounds the reenactment history; the oldest half (by snapshot
// tick) is dropped when exceeded.
const txnHistCap = 4096

// StmtRecord is one statement of a committed transaction's history, as
// REENACT replays it: the normalized SQL, its bound parameters, its
// start/end ticks on the logical timeline, and the row count it reported.
type StmtRecord struct {
	SQL    string
	Kind   string // "select", "insert", "update", "delete"
	Start  uint64
	End    uint64
	Rows   int
	Params []sqlval.Value
}

// TxnRecord is the reenactment history of one committed transaction.
type TxnRecord struct {
	TxnID     int64
	SnapTS    uint64 // the snapshot tick its statements read at
	CommitTS  uint64 // the tick it became visible at
	CommitSeq uint64 // its WAL record sequence (0 when nothing was logged)
	Stmts     []StmtRecord
}

// redoEntry converts a history statement into its walStmt redo form (see
// the field mapping on redoEntry).
func (h StmtRecord) redoEntry(snapTS uint64) redoEntry {
	return redoEntry{
		kind:    walStmt,
		table:   h.Kind,
		id:      RowID(snapTS),
		version: h.Start,
		end:     h.End,
		proc:    h.SQL,
		stmt:    int64(h.Rows),
		vals:    h.Params,
	}
}

// stmtKindName labels a statement for the history record.
func stmtKindName(stmt sqlparse.Statement) string {
	switch stmt.(type) {
	case *sqlparse.Select:
		return "select"
	case *sqlparse.Insert:
		return "insert"
	case *sqlparse.Update:
		return "update"
	case *sqlparse.Delete:
		return "delete"
	default:
		return "other"
	}
}

// commitTxnHist publishes a committed transaction's statement history.
func (db *DB) commitTxnHist(x *Txn, cts, seq uint64) {
	if len(x.hist) == 0 {
		return
	}
	rec := &TxnRecord{
		TxnID:     x.id,
		SnapTS:    x.snap.ts,
		CommitTS:  cts,
		CommitSeq: seq,
		Stmts:     append([]StmtRecord(nil), x.hist...),
	}
	db.txnMu.Lock()
	db.txnHist[x.id] = rec
	if len(db.txnHist) > txnHistCap {
		db.pruneTxnHistLocked()
	}
	db.txnMu.Unlock()
}

// recordRecoveredStmt rebuilds transaction history from a walStmt entry, on
// the recovery and replication apply paths. It also advances nextTxn past
// the recovered id so a restarted primary never reissues a transaction id
// that the history still refers to.
func (db *DB) recordRecoveredStmt(txnID int64, e redoEntry, seq uint64) {
	db.txnMu.Lock()
	rec := db.txnHist[txnID]
	if rec == nil {
		rec = &TxnRecord{TxnID: txnID, SnapTS: uint64(e.id), CommitSeq: seq}
		db.txnHist[txnID] = rec
	}
	rec.Stmts = append(rec.Stmts, StmtRecord{
		SQL:    e.proc,
		Kind:   e.table,
		Start:  e.version,
		End:    e.end,
		Rows:   int(e.stmt),
		Params: e.vals,
	})
	if e.end > rec.CommitTS {
		rec.CommitTS = e.end
	}
	if txnID > db.nextTxn {
		db.nextTxn = txnID
	}
	if len(db.txnHist) > txnHistCap {
		db.pruneTxnHistLocked()
	}
	db.txnMu.Unlock()
}

// TxnHistory returns a copy of a committed transaction's reenactment
// history, if retained.
func (db *DB) TxnHistory(id int64) (TxnRecord, bool) {
	db.txnMu.RLock()
	rec, ok := db.txnHist[id]
	db.txnMu.RUnlock()
	if !ok {
		return TxnRecord{}, false
	}
	out := *rec
	out.Stmts = append([]StmtRecord(nil), rec.Stmts...)
	return out, true
}

// txnHistSnapshot returns copies of every retained history record, ordered
// by transaction id (the ldv_stat_versions provider; no engine locks beyond
// txnMu are taken).
func (db *DB) txnHistSnapshot() []TxnRecord {
	db.txnMu.RLock()
	out := make([]TxnRecord, 0, len(db.txnHist))
	for _, rec := range db.txnHist {
		c := *rec
		c.Stmts = append([]StmtRecord(nil), rec.Stmts...)
		out = append(out, c)
	}
	db.txnMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].TxnID < out[j].TxnID })
	return out
}

// pruneCommittedTsLocked drops the oldest half of the commit-timestamp
// registry (by commit tick). Caller holds txnMu.
func (db *DB) pruneCommittedTsLocked() {
	ts := make([]uint64, 0, len(db.committedTs))
	for _, cts := range db.committedTs {
		ts = append(ts, cts)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	median := ts[len(ts)/2]
	for id, cts := range db.committedTs {
		if cts < median {
			delete(db.committedTs, id)
		}
	}
}

// pruneTxnHistLocked drops the oldest half of the reenactment history (by
// snapshot tick). Caller holds txnMu.
func (db *DB) pruneTxnHistLocked() {
	ts := make([]uint64, 0, len(db.txnHist))
	for _, rec := range db.txnHist {
		ts = append(ts, rec.SnapTS)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	median := ts[len(ts)/2]
	for id, rec := range db.txnHist {
		if rec.SnapTS < median {
			delete(db.txnHist, id)
		}
	}
}

// evalConstExpr evaluates an expression that may reference only literals,
// bound parameters, and arithmetic — the AS OF bound and the REENACT
// transaction id.
func evalConstExpr(e sqlparse.Expr, params []sqlval.Value) (sqlval.Value, error) {
	return evalExpr(e, &env{params: params}, nil, nil)
}

// resolveAsOf turns a statement's AS OF clause (or, absent one, the
// execution option) into a validated historical tick: a non-negative
// integer at or above the vacuum horizon.
func (db *DB) resolveAsOf(e sqlparse.Expr, opts ExecOptions) (uint64, error) {
	t := opts.AsOf
	if e != nil {
		v, err := evalConstExpr(e, opts.Params)
		if err != nil {
			return 0, fmt.Errorf("AS OF: %w", err)
		}
		if v.Kind() != sqlval.KindInt || v.Int() < 0 {
			return 0, fmt.Errorf("AS OF expects a non-negative integer tick, got %s", v.String())
		}
		t = uint64(v.Int())
	}
	if h := db.vacuumHorizon.Load(); t < h {
		mAsOfRejected.Inc()
		return 0, fmt.Errorf("AS OF %d is below the vacuum horizon %d: those versions have been reclaimed", t, h)
	}
	mAsOfQueries.Inc()
	return t, nil
}

// VacuumHorizon returns the current retention floor: the oldest tick AS OF
// can still read at.
func (db *DB) VacuumHorizon() uint64 { return db.vacuumHorizon.Load() }

// SetRetainTicks configures the retention window bare VACUUM and the
// background vacuumer apply: versions dead for more than n ticks become
// reclaimable (0 keeps everything up to the active-snapshot bound).
func (db *DB) SetRetainTicks(n uint64) { db.retainTicks.Store(n) }

// RetainTicks returns the configured retention window.
func (db *DB) RetainTicks() uint64 { return db.retainTicks.Load() }
