package engine

import (
	"testing"

	"ldv/internal/sqlval"
)

// FuzzWALDecode asserts the record payload decoder never panics on arbitrary
// bytes — a torn write can hand it anything that happens to checksum
// correctly (e.g. corruption introduced before the CRC was computed).
func FuzzWALDecode(f *testing.F) {
	f.Add(encodeWALTxn(1, []redoEntry{
		{kind: walCreate, table: "t", schema: Schema{Columns: []Column{
			{Name: "k", Type: sqlval.KindInt, PrimaryKey: true},
			{Name: "v", Type: sqlval.KindString},
		}}},
		{kind: walInsert, table: "t", id: 1, version: 2, proc: "p", stmt: 1,
			vals: []sqlval.Value{sqlval.NewInt(1), sqlval.NewString("x")}},
		{kind: walEnd, table: "t", id: 1, version: 2, end: 9},
		{kind: walDrop, table: "t"},
	}))
	f.Add(encodeWALTxn(-42, nil))
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, payload []byte) {
		_, _, _ = decodeWALTxn(payload) // must not panic
	})
}

// FuzzWALScan asserts the log scanner never panics and never claims a valid
// prefix longer than the input — the property recovery's torn-tail
// truncation relies on.
func FuzzWALScan(f *testing.F) {
	log := []byte(walMagic)
	fs := newMapFS()
	db := NewDB(nil)
	if _, err := db.Recover(fs, "/d"); err == nil {
		if _, err := db.Exec("CREATE TABLE t (k INT)", ExecOptions{}); err == nil {
			_, _ = db.Exec("INSERT INTO t VALUES (1)", ExecOptions{})
		}
		if data, err := fs.ReadFile("/d/" + WALFileName); err == nil {
			log = data
		}
	}
	f.Add(log)
	f.Add([]byte(walMagic))
	f.Add([]byte("not a wal"))
	f.Add(append([]byte(walMagic), 0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4))
	f.Fuzz(func(t *testing.T, data []byte) {
		valid, err := scanWAL(data, func(p []byte) error {
			_, _, _ = decodeWALTxn(p)
			return nil
		})
		if err == nil && valid > int64(len(data)) {
			t.Fatalf("valid prefix %d exceeds input length %d", valid, len(data))
		}
	})
}
