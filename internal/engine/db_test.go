package engine

import (
	"fmt"
	"strings"
	"testing"

	"ldv/internal/sqlval"
)

func newTestDB(t *testing.T, ddl ...string) *DB {
	t.Helper()
	db := NewDB(nil)
	for _, stmt := range ddl {
		if _, err := db.Exec(stmt, ExecOptions{}); err != nil {
			t.Fatalf("setup %q: %v", stmt, err)
		}
	}
	return db
}

func mustExec(t *testing.T, db *DB, sql string, opts ExecOptions) *Result {
	t.Helper()
	res, err := db.Exec(sql, opts)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func rowsToStrings(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func TestCreateDropTable(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT PRIMARY KEY, b TEXT)")
	if names := db.TableNames(); len(names) != 1 || names[0] != "t" {
		t.Fatalf("tables = %v", names)
	}
	if _, err := db.Exec("CREATE TABLE t (a INT)", ExecOptions{}); err == nil {
		t.Error("duplicate CREATE must fail")
	}
	mustExec(t, db, "CREATE TABLE IF NOT EXISTS t (a INT)", ExecOptions{})
	mustExec(t, db, "DROP TABLE t", ExecOptions{})
	if len(db.TableNames()) != 0 {
		t.Error("table not dropped")
	}
	if _, err := db.Exec("DROP TABLE t", ExecOptions{}); err == nil {
		t.Error("dropping missing table must fail")
	}
	mustExec(t, db, "DROP TABLE IF EXISTS t", ExecOptions{})
}

func TestCreateTableValidation(t *testing.T) {
	db := NewDB(nil)
	if _, err := db.Exec("CREATE TABLE t (a INT, a TEXT)", ExecOptions{}); err == nil {
		t.Error("duplicate column must fail")
	}
	if _, err := db.Exec("CREATE TABLE t (prov_rowid INT)", ExecOptions{}); err == nil {
		t.Error("reserved column name must fail")
	}
	if _, err := db.Exec("CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)", ExecOptions{}); err == nil {
		t.Error("two primary keys must fail")
	}
}

func TestInsertAndSelect(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT PRIMARY KEY, b TEXT)")
	res := mustExec(t, db, "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')", ExecOptions{})
	if res.RowsAffected != 3 || len(res.WrittenRefs) != 3 {
		t.Fatalf("insert: affected=%d written=%d", res.RowsAffected, len(res.WrittenRefs))
	}
	res = mustExec(t, db, "SELECT a, b FROM t WHERE a >= 2 ORDER BY a", ExecOptions{})
	got := rowsToStrings(res)
	if len(got) != 2 || got[0] != "2|y" || got[1] != "3|z" {
		t.Fatalf("select = %v", got)
	}
}

func TestInsertColumnList(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT, b TEXT, c FLOAT)")
	mustExec(t, db, "INSERT INTO t (c, a) VALUES (1.5, 7)", ExecOptions{})
	res := mustExec(t, db, "SELECT a, b, c FROM t", ExecOptions{})
	if rowsToStrings(res)[0] != "7|NULL|1.5" {
		t.Fatalf("row = %v", rowsToStrings(res))
	}
}

func TestInsertTypeChecking(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT, b TEXT)")
	if _, err := db.Exec("INSERT INTO t VALUES ('nope', 'x')", ExecOptions{}); err == nil {
		t.Error("type mismatch must fail")
	}
	if _, err := db.Exec("INSERT INTO t VALUES (1)", ExecOptions{}); err == nil {
		t.Error("arity mismatch must fail")
	}
	// int→float widening is allowed.
	db2 := newTestDB(t, "CREATE TABLE u (f FLOAT)")
	mustExec(t, db2, "INSERT INTO u VALUES (3)", ExecOptions{})
	res := mustExec(t, db2, "SELECT f FROM u", ExecOptions{})
	if res.Rows[0][0].Kind() != sqlval.KindFloat {
		t.Error("int must widen to float")
	}
}

func TestPrimaryKeyEnforced(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT PRIMARY KEY)")
	mustExec(t, db, "INSERT INTO t VALUES (1)", ExecOptions{})
	if _, err := db.Exec("INSERT INTO t VALUES (1)", ExecOptions{}); err == nil {
		t.Error("duplicate pk must fail")
	}
	// Update to a conflicting pk must fail too.
	mustExec(t, db, "INSERT INTO t VALUES (2)", ExecOptions{})
	if _, err := db.Exec("UPDATE t SET a = 1 WHERE a = 2", ExecOptions{}); err == nil {
		t.Error("pk-conflicting update must fail")
	}
	// Updating pk to a fresh value is fine.
	mustExec(t, db, "UPDATE t SET a = 5 WHERE a = 2", ExecOptions{})
	res := mustExec(t, db, "SELECT a FROM t ORDER BY a", ExecOptions{})
	if got := rowsToStrings(res); got[0] != "1" || got[1] != "5" {
		t.Fatalf("rows = %v", got)
	}
}

func TestSelectStarHidesProvColumns(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)", ExecOptions{})
	res := mustExec(t, db, "SELECT * FROM t", ExecOptions{})
	if len(res.Columns) != 1 || res.Columns[0] != "a" {
		t.Fatalf("star expanded to %v", res.Columns)
	}
}

func TestProvColumnsQueryable(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (10)", ExecOptions{Proc: "p1"})
	res := mustExec(t, db, "SELECT a, prov_rowid, prov_v, prov_p FROM t", ExecOptions{})
	row := res.Rows[0]
	if row[1].Int() <= 0 {
		t.Error("prov_rowid must be positive")
	}
	if row[2].Int() <= 0 {
		t.Error("prov_v must be positive")
	}
	if row[3].Str() != "p1" {
		t.Errorf("prov_p = %q", row[3].Str())
	}
}

func TestUpdateCreatesNewVersion(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT, b INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 100)", ExecOptions{})
	before := mustExec(t, db, "SELECT prov_v FROM t", ExecOptions{}).Rows[0][0].Int()
	res := mustExec(t, db, "UPDATE t SET b = b + 1 WHERE a = 1", ExecOptions{Proc: "p2", WithLineage: true})
	if res.RowsAffected != 1 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	after := mustExec(t, db, "SELECT prov_v, b, prov_p FROM t", ExecOptions{}).Rows[0]
	if after[0].Int() <= before {
		t.Error("version must advance on update")
	}
	if after[1].Int() != 101 {
		t.Errorf("b = %d", after[1].Int())
	}
	if after[2].Str() != "p2" {
		t.Errorf("prov_p = %q", after[2].Str())
	}
	// Reenactment: ReadRefs reference the *pre-update* version.
	if len(res.ReadRefs) != 1 || res.ReadRefs[0].Version != uint64(before) {
		t.Fatalf("ReadRefs = %v, want version %d", res.ReadRefs, before)
	}
	if len(res.WrittenRefs) != 1 || res.WrittenRefs[0].Version != uint64(after[0].Int()) {
		t.Fatalf("WrittenRefs = %v", res.WrittenRefs)
	}
	if res.ReadRefs[0].Row != res.WrittenRefs[0].Row {
		t.Error("update must keep the row id")
	}
}

func TestDeleteRecordsReads(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)", ExecOptions{})
	res := mustExec(t, db, "DELETE FROM t WHERE a <> 2", ExecOptions{WithLineage: true})
	if res.RowsAffected != 2 || len(res.ReadRefs) != 2 {
		t.Fatalf("delete: affected=%d reads=%d", res.RowsAffected, len(res.ReadRefs))
	}
	left := mustExec(t, db, "SELECT a FROM t", ExecOptions{})
	if len(left.Rows) != 1 || left.Rows[0][0].Int() != 2 {
		t.Fatalf("remaining = %v", rowsToStrings(left))
	}
}

func TestDeleteAll(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT PRIMARY KEY)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3), (4)", ExecOptions{})
	mustExec(t, db, "DELETE FROM t", ExecOptions{})
	if mustExec(t, db, "SELECT count(*) FROM t", ExecOptions{}).Rows[0][0].Int() != 0 {
		t.Error("delete all failed")
	}
	// Reinserting old pks must work (index consistency after swap-delete).
	mustExec(t, db, "INSERT INTO t VALUES (2), (3)", ExecOptions{})
}

func TestCommaJoin(t *testing.T) {
	db := newTestDB(t,
		"CREATE TABLE o (okey INT PRIMARY KEY, cust INT)",
		"CREATE TABLE c (ckey INT PRIMARY KEY, name TEXT)")
	mustExec(t, db, "INSERT INTO o VALUES (1, 10), (2, 20), (3, 10)", ExecOptions{})
	mustExec(t, db, "INSERT INTO c VALUES (10, 'alice'), (20, 'bob')", ExecOptions{})
	res := mustExec(t, db, "SELECT o.okey, c.name FROM o, c WHERE o.cust = c.ckey ORDER BY o.okey", ExecOptions{})
	got := rowsToStrings(res)
	want := []string{"1|alice", "2|bob", "3|alice"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("join rows = %v", got)
		}
	}
}

func TestExplicitJoin(t *testing.T) {
	db := newTestDB(t,
		"CREATE TABLE a (x INT)",
		"CREATE TABLE b (y INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1), (2)", ExecOptions{})
	mustExec(t, db, "INSERT INTO b VALUES (2), (3)", ExecOptions{})
	res := mustExec(t, db, "SELECT x, y FROM a JOIN b ON a.x = b.y", ExecOptions{})
	if len(res.Rows) != 1 || rowsToStrings(res)[0] != "2|2" {
		t.Fatalf("join = %v", rowsToStrings(res))
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := newTestDB(t,
		"CREATE TABLE l (lo INT, comment TEXT)",
		"CREATE TABLE o (okey INT, cust INT)",
		"CREATE TABLE c (ckey INT, name TEXT)")
	mustExec(t, db, "INSERT INTO l VALUES (1, 'l1'), (2, 'l2')", ExecOptions{})
	mustExec(t, db, "INSERT INTO o VALUES (1, 5), (2, 6)", ExecOptions{})
	mustExec(t, db, "INSERT INTO c VALUES (5, 'match'), (6, 'other')", ExecOptions{})
	res := mustExec(t, db, `SELECT l.comment FROM l, o, c
		WHERE l.lo = o.okey AND o.cust = c.ckey AND c.name LIKE '%match%'`, ExecOptions{})
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "l1" {
		t.Fatalf("rows = %v", rowsToStrings(res))
	}
}

func TestCrossJoinNoPredicate(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE a (x INT)", "CREATE TABLE b (y INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1), (2)", ExecOptions{})
	mustExec(t, db, "INSERT INTO b VALUES (10), (20)", ExecOptions{})
	res := mustExec(t, db, "SELECT x, y FROM a, b", ExecOptions{})
	if len(res.Rows) != 4 {
		t.Fatalf("cross join rows = %d", len(res.Rows))
	}
}

func TestNullNeverJoins(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE a (x INT)", "CREATE TABLE b (y INT)")
	mustExec(t, db, "INSERT INTO a VALUES (NULL), (1)", ExecOptions{})
	mustExec(t, db, "INSERT INTO b VALUES (NULL), (1)", ExecOptions{})
	res := mustExec(t, db, "SELECT x FROM a, b WHERE a.x = b.y", ExecOptions{})
	if len(res.Rows) != 1 {
		t.Fatalf("null join rows = %d", len(res.Rows))
	}
}

func TestAggregates(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE s (id INT, price FLOAT)")
	mustExec(t, db, "INSERT INTO s VALUES (1, 5), (2, 11), (3, 14)", ExecOptions{})
	res := mustExec(t, db, "SELECT SUM(price) AS ttl FROM s WHERE price > 10", ExecOptions{})
	// The paper's Example 4: ttl = 25.
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 25 {
		t.Fatalf("ttl = %v", rowsToStrings(res))
	}
	res = mustExec(t, db, "SELECT count(*), MIN(price), MAX(price), AVG(price) FROM s", ExecOptions{})
	row := res.Rows[0]
	if row[0].Int() != 3 || row[1].Float() != 5 || row[2].Float() != 14 || row[3].Float() != 10 {
		t.Fatalf("aggs = %v", rowsToStrings(res))
	}
}

func TestGroupBy(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (k INT, v INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 10), (1, 20), (2, 5)", ExecOptions{})
	res := mustExec(t, db, "SELECT k, SUM(v) AS s, count(*) FROM t GROUP BY k ORDER BY k", ExecOptions{})
	got := rowsToStrings(res)
	if len(got) != 2 || got[0] != "1|30|2" || got[1] != "2|5|1" {
		t.Fatalf("group by = %v", got)
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	res := mustExec(t, db, "SELECT count(*), SUM(a) FROM t", ExecOptions{})
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 0 || !res.Rows[0][1].IsNull() {
		t.Fatalf("empty agg = %v", rowsToStrings(res))
	}
	// With GROUP BY, empty input yields no groups.
	res = mustExec(t, db, "SELECT a, count(*) FROM t GROUP BY a", ExecOptions{})
	if len(res.Rows) != 0 {
		t.Fatalf("grouped empty = %v", rowsToStrings(res))
	}
}

func TestCountDistinct(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (1), (2), (NULL)", ExecOptions{})
	res := mustExec(t, db, "SELECT COUNT(DISTINCT a), COUNT(a), count(*) FROM t", ExecOptions{})
	row := res.Rows[0]
	if row[0].Int() != 2 || row[1].Int() != 3 || row[2].Int() != 4 {
		t.Fatalf("counts = %v", rowsToStrings(res))
	}
}

func TestSelectDistinct(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (1), (2)", ExecOptions{})
	res := mustExec(t, db, "SELECT DISTINCT a FROM t ORDER BY a", ExecOptions{})
	if len(res.Rows) != 2 {
		t.Fatalf("distinct = %v", rowsToStrings(res))
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (3), (1), (2)", ExecOptions{})
	res := mustExec(t, db, "SELECT a FROM t ORDER BY a DESC LIMIT 2", ExecOptions{})
	got := rowsToStrings(res)
	if len(got) != 2 || got[0] != "3" || got[1] != "2" {
		t.Fatalf("order desc limit = %v", got)
	}
}

func TestOrderByAlias(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)", ExecOptions{})
	res := mustExec(t, db, "SELECT a * -1 AS neg FROM t ORDER BY neg", ExecOptions{})
	got := rowsToStrings(res)
	if got[0] != "-3" || got[2] != "-1" {
		t.Fatalf("order by alias = %v", got)
	}
}

func TestTableLessSelect(t *testing.T) {
	db := NewDB(nil)
	res := mustExec(t, db, "SELECT 1 + 2 AS x, 'hi'", ExecOptions{})
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 3 || res.Rows[0][1].Str() != "hi" {
		t.Fatalf("tableless = %v", rowsToStrings(res))
	}
}

func TestInsertSelect(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE src (a INT)", "CREATE TABLE dst (a INT)")
	mustExec(t, db, "INSERT INTO src VALUES (1), (2), (3)", ExecOptions{})
	res := mustExec(t, db, "INSERT INTO dst SELECT a FROM src WHERE a > 1", ExecOptions{WithLineage: true})
	if res.RowsAffected != 2 {
		t.Fatalf("affected = %d", res.RowsAffected)
	}
	if len(res.ReadRefs) != 2 {
		t.Fatalf("insert-select must record read lineage, got %v", res.ReadRefs)
	}
	for _, r := range res.ReadRefs {
		if r.Table != "src" {
			t.Errorf("read ref table = %s", r.Table)
		}
	}
}

func TestErrorCases(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	bad := []string{
		"SELECT b FROM t",
		"SELECT a FROM missing",
		"INSERT INTO missing VALUES (1)",
		"INSERT INTO t (nope) VALUES (1)",
		"UPDATE missing SET a = 1",
		"UPDATE t SET nope = 1",
		"DELETE FROM missing",
		"SELECT a FROM t, t",
		"SELECT SUM(a) FROM t WHERE SUM(a) > 1",
		"SELECT missing.* FROM t",
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql, ExecOptions{}); err == nil {
			t.Errorf("Exec(%q) unexpectedly succeeded", sql)
		}
	}
}

func TestRuntimeTypeErrorInWhere(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)", ExecOptions{})
	if _, err := db.Exec("SELECT a FROM t WHERE NOT a", ExecOptions{}); err == nil {
		// NOT over a non-boolean is a runtime error once a row is evaluated...
		// except that filter treats evaluation errors as non-matches; pin the
		// actual behaviour: the row is simply filtered out.
		res := mustExec(t, db, "SELECT a FROM t WHERE NOT a", ExecOptions{})
		if len(res.Rows) != 0 {
			t.Fatal("type-erroring predicate must not match rows")
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE a (x INT)", "CREATE TABLE b (x INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1)", ExecOptions{})
	mustExec(t, db, "INSERT INTO b VALUES (1)", ExecOptions{})
	if _, err := db.Exec("SELECT x FROM a, b", ExecOptions{}); err == nil {
		t.Error("ambiguous column must fail")
	}
	mustExec(t, db, "SELECT a.x FROM a, b", ExecOptions{})
}

func TestStatementTimestamps(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	r1 := mustExec(t, db, "INSERT INTO t VALUES (1)", ExecOptions{})
	r2 := mustExec(t, db, "SELECT a FROM t", ExecOptions{})
	if r1.Start >= r1.End {
		t.Error("statement interval must be non-empty")
	}
	if r2.Start <= r1.End {
		t.Error("later statement must start after earlier one ends")
	}
	if r2.StmtID <= r1.StmtID {
		t.Error("statement ids must increase")
	}
}

func TestScanAllAndLookupVersion(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2)", ExecOptions{})
	refs, rows, err := db.ScanAll("t")
	if err != nil || len(refs) != 2 || len(rows) != 2 {
		t.Fatalf("scan: %v %v %v", refs, rows, err)
	}
	vals, ok := db.LookupVersion(refs[0])
	if !ok || !vals[0].Equal(rows[0][0]) {
		t.Fatal("lookup version failed")
	}
	if _, ok := db.LookupVersion(TupleRef{Table: "t", Row: 999, Version: 1}); ok {
		t.Error("missing version lookup must fail")
	}
	if _, _, err := db.ScanAll("missing"); err == nil {
		t.Error("scan of missing table must fail")
	}
}

func TestInsertRowDirectIsPreloaded(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	ref, err := db.InsertRowDirect("t", []sqlval.Value{sqlval.NewInt(7)})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Row == 0 {
		t.Error("direct insert must assign a row id")
	}
	res := mustExec(t, db, "SELECT prov_p FROM t", ExecOptions{})
	if res.Rows[0][0].Str() != "" {
		t.Error("preloaded rows must have empty prov_p")
	}
}

func TestBetweenAndInPredicates(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (5), (10), (15)", ExecOptions{})
	res := mustExec(t, db, "SELECT a FROM t WHERE a BETWEEN 5 AND 10 ORDER BY a", ExecOptions{})
	if got := rowsToStrings(res); len(got) != 2 || got[0] != "5" || got[1] != "10" {
		t.Fatalf("between = %v", got)
	}
	res = mustExec(t, db, "SELECT a FROM t WHERE a NOT BETWEEN 5 AND 10 ORDER BY a", ExecOptions{})
	if len(res.Rows) != 2 {
		t.Fatalf("not between = %v", rowsToStrings(res))
	}
	res = mustExec(t, db, "SELECT a FROM t WHERE a IN (1, 15)", ExecOptions{})
	if len(res.Rows) != 2 {
		t.Fatalf("in = %v", rowsToStrings(res))
	}
}

func TestNullSemanticsInWhere(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (NULL)", ExecOptions{})
	// NULL = NULL is UNKNOWN, so only the non-null row can match a = a... and
	// NULL never satisfies comparisons.
	res := mustExec(t, db, "SELECT a FROM t WHERE a = 1", ExecOptions{})
	if len(res.Rows) != 1 {
		t.Fatal("null row must not match a = 1")
	}
	res = mustExec(t, db, "SELECT a FROM t WHERE a <> 1", ExecOptions{})
	if len(res.Rows) != 0 {
		t.Fatal("null row must not match a <> 1")
	}
	res = mustExec(t, db, "SELECT a FROM t WHERE a IS NULL", ExecOptions{})
	if len(res.Rows) != 1 {
		t.Fatal("IS NULL must find the null row")
	}
	res = mustExec(t, db, "SELECT a FROM t WHERE a IS NOT NULL", ExecOptions{})
	if len(res.Rows) != 1 {
		t.Fatal("IS NOT NULL must find the non-null row")
	}
}

func TestUpdateUsesProvColumnsInWhere(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)", ExecOptions{Proc: "creator"})
	res := mustExec(t, db, "SELECT a FROM t WHERE prov_p = 'creator'", ExecOptions{})
	if len(res.Rows) != 1 {
		t.Fatal("prov_p predicate failed")
	}
}

func TestExecScript(t *testing.T) {
	db := NewDB(nil)
	results, err := db.ExecScript(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1);
		SELECT a FROM t;`, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || len(results[2].Rows) != 1 {
		t.Fatalf("script results = %d", len(results))
	}
	// Error mid-script returns completed prefix.
	results, err = db.ExecScript("INSERT INTO t VALUES (2); INSERT INTO missing VALUES (1);", ExecOptions{})
	if err == nil {
		t.Fatal("expected script error")
	}
	if len(results) != 1 {
		t.Fatalf("partial results = %d", len(results))
	}
}

func TestLargeScanWithJoin(t *testing.T) {
	db := newTestDB(t,
		"CREATE TABLE big (id INT PRIMARY KEY, fk INT)",
		"CREATE TABLE dim (id INT PRIMARY KEY, name TEXT)")
	for i := 0; i < 50; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO dim VALUES (%d, 'd%d')", i, i), ExecOptions{})
	}
	for i := 0; i < 2000; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO big VALUES (%d, %d)", i, i%50), ExecOptions{})
	}
	res := mustExec(t, db, "SELECT count(*) FROM big b, dim d WHERE b.fk = d.id", ExecOptions{})
	if res.Rows[0][0].Int() != 2000 {
		t.Fatalf("join count = %d", res.Rows[0][0].Int())
	}
}

func TestGroupByHaving(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (k INT, v INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 10), (1, 20), (2, 5), (3, 7), (3, 8)", ExecOptions{})
	res := mustExec(t, db, "SELECT k, SUM(v) AS s FROM t GROUP BY k HAVING count(*) > 1 ORDER BY k", ExecOptions{})
	got := rowsToStrings(res)
	if len(got) != 2 || got[0] != "1|30" || got[1] != "3|15" {
		t.Fatalf("having = %v", got)
	}
	// HAVING over an aggregate that is not in the select list.
	res = mustExec(t, db, "SELECT k FROM t GROUP BY k HAVING SUM(v) > 20", ExecOptions{})
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("having sum = %v", rowsToStrings(res))
	}
	// HAVING lineage: excluded groups contribute nothing.
	res = mustExec(t, db, "SELECT PROVENANCE k FROM t GROUP BY k HAVING count(*) > 1 ORDER BY k", ExecOptions{})
	if len(res.Lineage) != 2 || len(res.Lineage[0]) != 2 {
		t.Fatalf("having lineage = %v", res.Lineage)
	}
	// HAVING without GROUP BY is rejected at parse time.
	if _, err := db.Exec("SELECT k FROM t HAVING count(*) > 1", ExecOptions{}); err == nil {
		t.Fatal("HAVING without GROUP BY must fail")
	}
}
