package engine

import (
	"strings"
	"testing"

	"ldv/internal/sqlval"
)

func preparedTestDB(t *testing.T) *DB {
	t.Helper()
	db := newTestDB(t, "CREATE TABLE t (a INT PRIMARY KEY, b INT)")
	for i := 1; i <= 20; i++ {
		mustExec(t, db, "INSERT INTO t VALUES ("+itoa(i)+", "+itoa(i%5)+")", ExecOptions{})
	}
	return db
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestPreparedParams(t *testing.T) {
	db := preparedTestDB(t)
	ps, err := db.Prepare("SELECT a FROM t WHERE b = ? ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if ps.NumParams != 1 {
		t.Fatalf("NumParams = %d, want 1", ps.NumParams)
	}
	s := db.NewSession()
	defer s.Close()
	res, err := s.ExecPrepared(ps, []sqlval.Value{sqlval.NewInt(2)}, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || res.Rows[0][0].Int() != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Re-execution with a different value reuses the same statement.
	res, err = s.ExecPrepared(ps, []sqlval.Value{sqlval.NewInt(0)}, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 || res.Rows[0][0].Int() != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if ps.Calls() != 2 {
		t.Fatalf("Calls = %d, want 2", ps.Calls())
	}
	// Arity is checked before execution.
	if _, err := s.ExecPrepared(ps, nil, ExecOptions{}); err == nil || !strings.Contains(err.Error(), "wants 1 parameters") {
		t.Fatalf("arity error = %v", err)
	}
	// A NULL parameter matches nothing through an equality predicate.
	res, err = s.ExecPrepared(ps, []sqlval.Value{sqlval.Null}, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("NULL param matched %d rows", len(res.Rows))
	}
}

func TestPreparedDML(t *testing.T) {
	db := preparedTestDB(t)
	ins, err := db.Prepare("INSERT INTO t VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	defer s.Close()
	if _, err := s.ExecPrepared(ins, []sqlval.Value{sqlval.NewInt(100), sqlval.NewInt(9)}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	upd, err := db.Prepare("UPDATE t SET b = ? WHERE a = ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ExecPrepared(upd, []sqlval.Value{sqlval.NewInt(42), sqlval.NewInt(100)}, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("RowsAffected = %d", res.RowsAffected)
	}
	got := mustExec(t, db, "SELECT b FROM t WHERE a = 100", ExecOptions{})
	if len(got.Rows) != 1 || got.Rows[0][0].Int() != 42 {
		t.Fatalf("rows = %v", got.Rows)
	}
}

// TestPlanCacheInvalidation pins the tentpole guarantee: a cacheable
// prepared SELECT reuses its plan tree across executions, and CREATE INDEX
// bumps the DDL epoch so the next execution re-plans — observably switching
// to the index scan the new index enables.
func TestPlanCacheInvalidation(t *testing.T) {
	db := preparedTestDB(t)
	ps, err := db.Prepare("SELECT a FROM t WHERE b = ?")
	if err != nil {
		t.Fatal(err)
	}
	if !ps.cacheable {
		t.Fatal("simple SELECT must be plan-cacheable")
	}
	s := db.NewSession()
	defer s.Close()
	arg := []sqlval.Value{sqlval.NewInt(2)}

	inval0 := mPlanCacheInvalidations.Load()
	if _, err := s.ExecPrepared(ps, arg, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecPrepared(ps, arg, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if ps.CacheHits() != 1 {
		t.Fatalf("CacheHits = %d, want 1 (miss then hit)", ps.CacheHits())
	}
	// Before the index exists, the (fingerprint-shared) plan is a table scan.
	if ops := analyzeOps(t, db, "SELECT a FROM t WHERE b = 2"); hasOp(ops, "index_scan") {
		t.Fatalf("unexpected index_scan before CREATE INDEX: %v", ops)
	}

	mustExec(t, db, "CREATE INDEX ix_b ON t (b)", ExecOptions{})

	scans0 := mustExec(t, db, "SELECT scans FROM ldv_stat_indexes WHERE name = 'ix_b'", ExecOptions{}).Rows[0][0].Int()
	if _, err := s.ExecPrepared(ps, arg, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := mPlanCacheInvalidations.Load() - inval0; got < 1 {
		t.Fatalf("plan.cache_invalidations delta = %d, want >= 1", got)
	}
	// The re-planned prepared execution actually probed the new index.
	scans1 := mustExec(t, db, "SELECT scans FROM ldv_stat_indexes WHERE name = 'ix_b'", ExecOptions{}).Rows[0][0].Int()
	if scans1 <= scans0 {
		t.Fatalf("prepared execution did not use ix_b: scans %d -> %d", scans0, scans1)
	}
	// And EXPLAIN ANALYZE confirms the statement shape now plans an
	// index scan with the parameter lowered into the probe.
	if ops := analyzeOps(t, db, "SELECT a FROM t WHERE b = 2"); !hasOp(ops, "index_scan") {
		t.Fatalf("no index_scan after CREATE INDEX: %v", ops)
	}
	// Subsequent executions hit the rebuilt cache entry again.
	hits := ps.CacheHits()
	if _, err := s.ExecPrepared(ps, arg, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if ps.CacheHits() != hits+1 {
		t.Fatalf("CacheHits = %d, want %d", ps.CacheHits(), hits+1)
	}
}

// TestPlanCacheSharedAcrossSessions: the cache is keyed by fingerprint, so
// two sessions preparing the same statement text share one plan tree.
func TestPlanCacheSharedAcrossSessions(t *testing.T) {
	db := preparedTestDB(t)
	ps1, err := db.Prepare("SELECT a FROM t WHERE b = ?")
	if err != nil {
		t.Fatal(err)
	}
	ps2, err := db.Prepare("SELECT a FROM t WHERE b = ?")
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := db.NewSession(), db.NewSession()
	defer s1.Close()
	defer s2.Close()
	if _, err := s1.ExecPrepared(ps1, []sqlval.Value{sqlval.NewInt(1)}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.ExecPrepared(ps2, []sqlval.Value{sqlval.NewInt(3)}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if ps2.CacheHits() != 1 {
		t.Fatalf("second statement did not hit the shared cache: hits = %d", ps2.CacheHits())
	}
}
