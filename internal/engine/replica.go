package engine

import (
	"errors"
	"fmt"
	"sort"
)

// Replication support: the primary side cuts a consistent snapshot against
// the WAL's record-sequence stream, and the replica side applies shipped
// records continuously through the same redo machinery Recover uses — but
// on a *live* database serving concurrent snapshot reads, which changes two
// things relative to boot-time replay:
//
//   - Every record is applied inside a registered transaction. Its rows are
//     stamped with the apply transaction's id and its end marks with the
//     same id, so a concurrent snapshot classifies the half-applied record
//     as uncommitted and skips it entirely. Deregistering the transaction
//     is the atomic visibility flip: a read sees a record's effects all or
//     nothing, and records become visible strictly in ship order — every
//     snapshot is a prefix of the primary's commit history.
//   - Primary-key indexes are maintained incrementally (recovery rebuilds
//     them at the end instead). Within one record an UPDATE's end mark
//     precedes its insert — the order exec_dml logs them — so the key is
//     free by the time the successor version claims it.
//
// The snapshot cut leans on the same commitMu argument as Checkpoint:
// committers hold it shared across WAL-append + active-set removal, so with
// it held exclusively no transaction is between those two steps. Every
// record with sequence ≤ cut belongs to a transaction the snapshot sees,
// and every transaction the snapshot misses will flush at a sequence > cut:
// snapshot and stream partition the history exactly at the cut.

// ErrReadOnly is returned for write statements while the database is in
// read-only mode (a replica before promotion). Match with errors.Is.
var ErrReadOnly = errors.New("database is read-only (replica)")

// TableImage is one table's snapshot encoding (the checkpoint .tbl file
// format) as shipped to a bootstrapping replica.
type TableImage struct {
	Name string
	Data []byte
}

// ReplSnapshot is a consistent snapshot of the whole database paired with
// the WAL record sequence it cuts the log at: records with sequence ≤
// CutSeq are contained in the images, records after it are not.
type ReplSnapshot struct {
	Tables []TableImage
	CutSeq uint64
}

// ReplicationSnapshot captures a snapshot for replica bootstrap. It holds
// the commit barrier only while copying the catalog and recording the cut;
// table encoding happens afterwards under per-table read locks, like
// Checkpoint. Requires an attached WAL (the cut is a WAL position).
func (db *DB) ReplicationSnapshot() (*ReplSnapshot, error) {
	db.commitMu.Lock()
	if db.wal == nil {
		db.commitMu.Unlock()
		return nil, fmt.Errorf("replication snapshot: no WAL attached")
	}
	db.mu.RLock()
	tables := make(map[string]*Table, len(db.tables))
	for name, t := range db.tables {
		tables[name] = t
	}
	db.mu.RUnlock()
	snap := db.takeSnapshot(0)
	cut := db.wal.Seq()
	db.commitMu.Unlock()

	names := make([]string, 0, len(tables))
	for n := range tables {
		names = append(names, n)
	}
	sort.Strings(names)
	rs := &ReplSnapshot{CutSeq: cut, Tables: make([]TableImage, 0, len(names))}
	horizon := db.vacuumHorizon.Load()
	for _, name := range names {
		t := tables[name]
		t.mu.RLock()
		data := encodeTable(t, snap, horizon)
		t.mu.RUnlock()
		rs.Tables = append(rs.Tables, TableImage{Name: name, Data: data})
	}
	return rs, nil
}

// ClearForReplication drops every table, returning the database to empty
// before a (re-)bootstrap loads a fresh snapshot. Reads racing a bootstrap
// see an empty or partial catalog; the replication layer gates client reads
// until the bootstrap completes.
func (db *DB) ClearForReplication() {
	db.mu.Lock()
	db.tables = make(map[string]*Table)
	db.mu.Unlock()
}

// LoadTableImage installs one snapshot table image (replacing any same-named
// table) and advances the row-id generator past its rows.
func (db *DB) LoadTableImage(data []byte) (string, error) {
	t, maxRow, horizon, err := decodeTable(data)
	if err != nil {
		return "", fmt.Errorf("load table image: %w", err)
	}
	db.mu.Lock()
	db.tables[t.Name] = t
	db.mu.Unlock()
	if horizon > db.vacuumHorizon.Load() {
		db.vacuumHorizon.Store(horizon)
	}
	for {
		cur := db.nextRow.Load()
		if uint64(maxRow) <= cur || db.nextRow.CompareAndSwap(cur, uint64(maxRow)) {
			break
		}
	}
	return t.Name, nil
}

// FinishLoad aligns the statement-id generator and the logical clock with
// everything the loaded images reference — the bootstrap counterpart of
// recovery's final step. Call once after the last LoadTableImage.
func (db *DB) FinishLoad() {
	db.finishRecovery()
}

// Applier applies shipped WAL records to a live replica database. It keeps
// the persistent replay index that makes re-application idempotent; use one
// Applier per bootstrap (a fresh snapshot invalidates the index). Not safe
// for concurrent use — records are a serial stream.
type Applier struct {
	db *DB
	ix *replayIndex
}

// NewApplier returns an applier over the database's current contents.
func (db *DB) NewApplier() *Applier {
	return &Applier{db: db, ix: newReplayIndex(db)}
}

// ApplyRecord applies one committed transaction's record (the payload bytes
// of a WAL record, as produced by SplitWALBatch) and returns the highest
// logical timestamp it carried. The record's effects become visible to
// concurrent snapshot reads atomically, after the replica clock has been
// advanced past them.
func (a *Applier) ApplyRecord(payload []byte) (uint64, error) {
	origID, entries, err := decodeWALTxn(payload)
	if err != nil {
		return 0, fmt.Errorf("replication apply: %w", err)
	}
	x := a.db.beginTxn()
	var maxTS uint64
	var horizon uint64
	for _, e := range entries {
		switch e.kind {
		case walVacuum:
			// Prune after the record's data entries have been applied and the
			// clock advanced, below.
			if e.version > horizon {
				horizon = e.version
			}
			if e.version > maxTS {
				maxTS = e.version
			}
		case walStmt:
			// History is keyed by the primary's transaction id — the id
			// REENACT on this replica is asked about.
			a.db.recordRecoveredStmt(origID, e, 0)
			if e.end > maxTS {
				maxTS = e.end
			}
		default:
			if err := a.db.applyLive(a.ix, x.id, e, &maxTS); err != nil {
				a.db.endTxn(x.id)
				return 0, err
			}
		}
	}
	// Advance the clock before the visibility flip so any snapshot that can
	// see this record (taken after endTxn) also post-dates its timestamps.
	if adv, ok := a.db.clock.(ClockAdvancer); ok {
		adv.AdvanceTo(maxTS)
	}
	a.db.endTxnCommitted(x.id)
	if horizon > 0 {
		// Apply the primary's retention horizon verbatim so both sides
		// converge on the same version set. (A replica read transaction whose
		// snapshot predates the horizon may stop seeing already-dead versions
		// — the primary made the same call when it chose the horizon.)
		a.db.applyVacuumHorizon(horizon)
	}
	return maxTS, nil
}

// applyLive applies one redo entry on a live replica under the apply
// transaction applyTxn. Unlike applyRedo it takes table write locks, stamps
// transaction ids for MVCC invisibility of in-flight records, and maintains
// the primary-key index in place.
func (db *DB) applyLive(ix *replayIndex, applyTxn int64, e redoEntry, maxTS *uint64) error {
	switch e.kind {
	case walCreate, walDrop, walCreateIndex, walDropIndex:
		// Applied DDL changes the catalog under live readers: invalidate any
		// plans cached against the old shape.
		db.bumpDDLEpoch()
	}
	switch e.kind {
	case walCreate:
		db.mu.Lock()
		if _, exists := db.tables[e.table]; !exists {
			db.tables[e.table] = newTable(e.table, e.schema)
		}
		db.mu.Unlock()
		return nil
	case walDrop:
		db.mu.Lock()
		delete(db.tables, e.table)
		db.mu.Unlock()
		delete(ix.tables, e.table)
		return nil
	case walInsert:
		t, err := db.lookupTable(e.table)
		if err != nil {
			return fmt.Errorf("replication apply: insert into %q: %w", e.table, err)
		}
		t.mu.Lock()
		defer t.mu.Unlock()
		m := ix.forTable(t)
		key := TupleRef{Row: e.id, Version: e.version}
		if _, exists := m[key]; exists {
			return nil // already applied (re-shipped segment)
		}
		r := &storedRow{id: e.id, vals: e.vals, version: e.version, proc: e.proc, stmt: e.stmt, txnID: applyTxn}
		if err := t.insertRow(r); err != nil {
			return fmt.Errorf("replication apply: table %s: %w", t.Name, err)
		}
		m[key] = r
		if e.version > *maxTS {
			*maxTS = e.version
		}
		for {
			cur := db.nextRow.Load()
			if uint64(e.id) <= cur || db.nextRow.CompareAndSwap(cur, uint64(e.id)) {
				break
			}
		}
		for {
			cur := db.nextStmt.Load()
			if e.stmt <= cur || db.nextStmt.CompareAndSwap(cur, e.stmt) {
				break
			}
		}
		return nil
	case walCreateIndex:
		t, err := db.lookupTable(e.table)
		if err != nil {
			return fmt.Errorf("replication apply: create index on %q: %w", e.table, err)
		}
		t.mu.Lock()
		defer t.mu.Unlock()
		if t.findIndex(e.idxName) != nil {
			return nil // already applied (bootstrap snapshot carried the def)
		}
		pos := t.Schema.ColumnIndex(e.idxCol)
		if pos < 0 {
			return fmt.Errorf("replication apply: index %q: table %q has no column %q", e.idxName, e.table, e.idxCol)
		}
		ix2 := newTableIndex(e.idxName, e.idxCol, pos, e.idxKind)
		ix2.rebuild(t.rows)
		t.addIndex(ix2)
		return nil
	case walDropIndex:
		t, err := db.lookupTable(e.table)
		if err != nil {
			return nil // table dropped by a later record; nothing to undo
		}
		t.mu.Lock()
		defer t.mu.Unlock()
		t.removeIndex(e.idxName)
		return nil
	case walEnd:
		t, err := db.lookupTable(e.table)
		if err != nil {
			return fmt.Errorf("replication apply: end mark on %q: %w", e.table, err)
		}
		t.mu.Lock()
		defer t.mu.Unlock()
		if r, ok := ix.forTable(t)[TupleRef{Row: e.id, Version: e.version}]; ok && r.end == 0 {
			r.end = e.end
			r.endTxn = applyTxn
			t.liveRows.Add(-1)
			t.deadVersions.Add(1)
			if pk := t.Schema.PrimaryKeyIndex(); pk >= 0 {
				if key := r.vals[pk].GroupKey(); t.pkIndex[key] == r {
					delete(t.pkIndex, key)
				}
			}
		}
		// A missing version is fine: it may predate the bootstrap snapshot,
		// which only carries versions still visible at the cut.
		if e.end > *maxTS {
			*maxTS = e.end
		}
		return nil
	}
	return fmt.Errorf("replication apply: unknown redo kind %d", e.kind)
}
