package engine

import (
	"strings"
	"testing"

	"ldv/internal/sqlparse"
)

func subqueryDB(t *testing.T) *DB {
	t.Helper()
	db := newTestDB(t,
		"CREATE TABLE emp (id INT PRIMARY KEY, dept INT, salary INT)",
		"CREATE TABLE dept (id INT PRIMARY KEY, name TEXT, budget INT)")
	mustExec(t, db, `INSERT INTO dept VALUES (1, 'eng', 100), (2, 'ops', 50), (3, 'empty', 10)`, ExecOptions{})
	mustExec(t, db, `INSERT INTO emp VALUES (1, 1, 80), (2, 1, 90), (3, 2, 40), (4, 2, 60)`, ExecOptions{})
	return db
}

func TestScalarSubqueryInWhere(t *testing.T) {
	db := subqueryDB(t)
	res := mustExec(t, db, "SELECT id FROM emp WHERE salary > (SELECT AVG(salary) FROM emp) ORDER BY id", ExecOptions{})
	got := rowsToStrings(res)
	// avg = 67.5; employees 1 (80) and 2 (90) qualify.
	if len(got) != 2 || got[0] != "1" || got[1] != "2" {
		t.Fatalf("scalar sub = %v", got)
	}
}

func TestScalarSubqueryInProjection(t *testing.T) {
	db := subqueryDB(t)
	res := mustExec(t, db, "SELECT id, salary - (SELECT MIN(salary) FROM emp) AS above FROM emp WHERE id = 2", ExecOptions{})
	if rowsToStrings(res)[0] != "2|50" {
		t.Fatalf("projection sub = %v", rowsToStrings(res))
	}
}

func TestInSubquery(t *testing.T) {
	db := subqueryDB(t)
	res := mustExec(t, db, "SELECT id FROM emp WHERE dept IN (SELECT id FROM dept WHERE budget > 60) ORDER BY id", ExecOptions{})
	if len(res.Rows) != 2 { // dept 1 only
		t.Fatalf("in sub = %v", rowsToStrings(res))
	}
	res = mustExec(t, db, "SELECT id FROM emp WHERE dept NOT IN (SELECT id FROM dept WHERE budget > 60) ORDER BY id", ExecOptions{})
	if len(res.Rows) != 2 { // dept 2
		t.Fatalf("not in sub = %v", rowsToStrings(res))
	}
}

func TestEmptyScalarSubqueryIsNull(t *testing.T) {
	db := subqueryDB(t)
	res := mustExec(t, db, "SELECT (SELECT id FROM emp WHERE id = 99)", ExecOptions{})
	if !res.Rows[0][0].IsNull() {
		t.Fatal("empty scalar subquery must be NULL")
	}
}

func TestScalarSubqueryErrors(t *testing.T) {
	db := subqueryDB(t)
	if _, err := db.Exec("SELECT (SELECT id FROM emp)", ExecOptions{}); err == nil {
		t.Fatal("multi-row scalar subquery must fail")
	}
	if _, err := db.Exec("SELECT (SELECT id, dept FROM emp WHERE id = 1)", ExecOptions{}); err == nil {
		t.Fatal("multi-column scalar subquery must fail")
	}
	if _, err := db.Exec("SELECT id FROM emp WHERE dept IN (SELECT id, name FROM dept)", ExecOptions{}); err == nil {
		t.Fatal("multi-column IN subquery must fail")
	}
	// Correlated subqueries are unsupported and must say so via the inner
	// resolution error.
	_, err := db.Exec("SELECT id FROM emp e WHERE salary > (SELECT budget FROM dept WHERE dept.id = e.dept)", ExecOptions{})
	if err == nil || !strings.Contains(err.Error(), "subquery") {
		t.Fatalf("correlated subquery error = %v", err)
	}
}

func TestNestedSubqueries(t *testing.T) {
	db := subqueryDB(t)
	res := mustExec(t, db, `SELECT id FROM emp WHERE dept IN
		(SELECT id FROM dept WHERE budget > (SELECT MIN(budget) FROM dept) AND budget < 80) ORDER BY id`, ExecOptions{})
	// dept with 10 < budget < 80: ops (50) -> employees 3, 4.
	got := rowsToStrings(res)
	if len(got) != 2 || got[0] != "3" {
		t.Fatalf("nested sub = %v", got)
	}
}

func TestSubqueryInDML(t *testing.T) {
	db := subqueryDB(t)
	mustExec(t, db, "UPDATE emp SET salary = salary + 1 WHERE dept = (SELECT id FROM dept WHERE name = 'eng')", ExecOptions{})
	res := mustExec(t, db, "SELECT salary FROM emp WHERE id = 1", ExecOptions{})
	if res.Rows[0][0].Int() != 81 {
		t.Fatalf("update sub = %v", rowsToStrings(res))
	}
	mustExec(t, db, "DELETE FROM emp WHERE salary < (SELECT AVG(salary) FROM emp)", ExecOptions{})
	res = mustExec(t, db, "SELECT count(*) FROM emp", ExecOptions{})
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("delete sub left %v", rowsToStrings(res))
	}
	mustExec(t, db, "INSERT INTO emp VALUES ((SELECT MAX(id) FROM emp) + 1, 1, 70)", ExecOptions{})
	res = mustExec(t, db, "SELECT MAX(id) FROM emp", ExecOptions{})
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("insert sub max id = %v", rowsToStrings(res))
	}
}

func TestSubqueryLineageMergesIntoOuter(t *testing.T) {
	db := subqueryDB(t)
	res := mustExec(t, db, "SELECT PROVENANCE id FROM emp WHERE dept IN (SELECT id FROM dept WHERE budget > 60)", ExecOptions{})
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Every outer row's lineage must include dept tuples (the subquery's
	// provenance) alongside its own emp tuple.
	tables := lineageTables(res)
	if tables["emp"] == 0 || tables["dept"] == 0 {
		t.Fatalf("subquery lineage tables = %v", tables)
	}
	// TupleValues must cover the dept tuples too.
	foundDept := false
	for ref := range res.TupleValues {
		if ref.Table == "dept" {
			foundDept = true
		}
	}
	if !foundDept {
		t.Fatal("dept tuple values missing")
	}
}

func TestSubqueryLineageInUpdate(t *testing.T) {
	db := subqueryDB(t)
	res := mustExec(t, db, "UPDATE emp SET salary = 0 WHERE dept = (SELECT id FROM dept WHERE name = 'ops')", ExecOptions{WithLineage: true})
	deptSeen := false
	for _, ref := range res.ReadRefs {
		if ref.Table == "dept" {
			deptSeen = true
		}
	}
	if !deptSeen {
		t.Fatalf("update ReadRefs missing dept provenance: %v", res.ReadRefs)
	}
}

func TestSubqueryStringRoundTrip(t *testing.T) {
	db := subqueryDB(t)
	// Rendering a statement with subqueries must re-parse to the same SQL
	// and produce the same result.
	sql := "SELECT id FROM emp WHERE salary > (SELECT AVG(salary) FROM emp) AND dept IN (SELECT id FROM dept)"
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	rendered := stmt.String()
	stmt2, err := sqlparse.Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse %q: %v", rendered, err)
	}
	if stmt2.String() != rendered {
		t.Fatalf("not a fixed point: %q vs %q", stmt2.String(), rendered)
	}
	r1 := mustExec(t, db, sql, ExecOptions{})
	r2 := mustExec(t, db, rendered, ExecOptions{})
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatal("round-tripped subquery SQL diverged")
	}
}

func TestExistsSubquery(t *testing.T) {
	db := subqueryDB(t)
	res := mustExec(t, db, "SELECT count(*) FROM emp WHERE EXISTS (SELECT id FROM dept WHERE budget > 60)", ExecOptions{})
	if res.Rows[0][0].Int() != 4 {
		t.Fatalf("exists true = %v", rowsToStrings(res))
	}
	res = mustExec(t, db, "SELECT count(*) FROM emp WHERE EXISTS (SELECT id FROM dept WHERE budget > 999)", ExecOptions{})
	if res.Rows[0][0].Int() != 0 {
		t.Fatalf("exists false = %v", rowsToStrings(res))
	}
	res = mustExec(t, db, "SELECT count(*) FROM emp WHERE NOT EXISTS (SELECT id FROM dept WHERE budget > 999)", ExecOptions{})
	if res.Rows[0][0].Int() != 4 {
		t.Fatalf("not exists = %v", rowsToStrings(res))
	}
}
