package engine

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ldv/internal/sqlparse"
	"ldv/internal/sqlval"
)

// Clock supplies the logical timestamps recorded on tuple versions and
// statement executions. When the engine runs inside the simulated OS the
// kernel clock is plugged in here so DB and OS events share one timeline —
// the property the temporal dependency inference of the paper relies on.
type Clock interface {
	// Tick advances the clock and returns the new time.
	Tick() uint64
}

// counterClock is the default standalone clock.
type counterClock struct {
	mu sync.Mutex
	t  uint64
}

func (c *counterClock) Tick() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t++
	return c.t
}

// NewCounterClock returns a fresh logical clock starting at 1.
func NewCounterClock() Clock { return &counterClock{} }

// ExecOptions control one statement execution.
type ExecOptions struct {
	// Proc identifies the client process on whose behalf the statement runs
	// (recorded as prov_p on produced tuple versions).
	Proc string
	// WithLineage requests Lineage computation for queries and reenactment
	// provenance for updates, regardless of the PROVENANCE keyword.
	WithLineage bool
}

// Result is the outcome of one statement execution.
type Result struct {
	// Columns and Rows hold query output (empty for DML).
	Columns []string
	Rows    [][]sqlval.Value
	// Lineage[i] lists the input tuple versions result row i depends on.
	// Non-nil only when lineage was requested (PROVENANCE keyword or
	// ExecOptions.WithLineage).
	Lineage [][]TupleRef
	// RowsAffected counts rows written by DML.
	RowsAffected int
	// StmtID is the engine-assigned unique id of this execution.
	StmtID int64
	// Start and End bound the execution on the logical timeline.
	Start, End uint64
	// ReadRefs lists tuple versions read by a DML statement (the pre-update
	// versions for UPDATE/DELETE, the query lineage for INSERT ... SELECT).
	ReadRefs []TupleRef
	// WrittenRefs lists tuple versions produced by a DML statement.
	WrittenRefs []TupleRef
	// TupleValues carries the attribute values of every tuple version
	// referenced by Lineage or ReadRefs. Perm-style provenance queries
	// return the full provenance tuples inline; LDV's packager persists
	// them to CSV. Only populated when lineage was requested.
	TupleValues map[TupleRef][]sqlval.Value
}

// DB is an in-memory relational database with provenance support. The zero
// value is not usable; call NewDB.
type DB struct {
	mu       sync.Mutex
	tables   map[string]*Table
	clock    Clock
	nextRow  RowID
	nextStmt int64
	txn      *txn
}

// NewDB returns an empty database using the given clock (nil for a private
// counter clock).
func NewDB(clock Clock) *DB {
	if clock == nil {
		clock = NewCounterClock()
	}
	return &DB{tables: make(map[string]*Table), clock: clock}
}

// TableNames returns the sorted names of all tables.
func (db *DB) TableNames() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table returns the named table's metadata, or an error.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("table %q does not exist", name)
	}
	return t, nil
}

// Exec parses and executes a single SQL statement.
func (db *DB) Exec(sql string, opts ExecOptions) (*Result, error) {
	stmt, err := timedParse(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecStatement(stmt, opts)
}

// ExecScript parses and executes a semicolon-separated script, stopping at
// the first error.
func (db *DB) ExecScript(sql string, opts ExecOptions) ([]*Result, error) {
	t0 := time.Now()
	stmts, err := sqlparse.ParseScript(sql)
	hParse.Observe(time.Since(t0))
	if err != nil {
		return nil, err
	}
	results := make([]*Result, 0, len(stmts))
	for _, s := range stmts {
		r, err := db.ExecStatement(s, opts)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

// ExecStatement executes a parsed statement.
func (db *DB) ExecStatement(stmt sqlparse.Statement, opts ExecOptions) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t0 := time.Now()
	db.nextStmt++
	res := &Result{StmtID: db.nextStmt, Start: db.clock.Tick()}
	if handled, err := db.execTxnStatement(stmt); handled {
		res.End = db.clock.Tick()
		observeStatement(stmt, res, err, time.Since(t0))
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	var err error
	switch s := stmt.(type) {
	case *sqlparse.Select:
		err = db.execSelect(s, opts, res)
	case *sqlparse.Insert:
		err = db.execInsert(s, opts, res)
	case *sqlparse.Update:
		err = db.execUpdate(s, opts, res)
	case *sqlparse.Delete:
		err = db.execDelete(s, opts, res)
	case *sqlparse.CreateTable:
		if db.inTxn() {
			err = fmt.Errorf("DDL is not allowed inside a transaction")
		} else {
			err = db.execCreateTable(s)
		}
	case *sqlparse.DropTable:
		if db.inTxn() {
			err = fmt.Errorf("DDL is not allowed inside a transaction")
		} else {
			err = db.execDropTable(s)
		}
	case *sqlparse.Copy:
		err = fmt.Errorf("COPY runs on the server, which owns the file access; execute it through a connection")
	default:
		err = fmt.Errorf("unsupported statement type %T", stmt)
	}
	res.End = db.clock.Tick()
	observeStatement(stmt, res, err, time.Since(t0))
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (db *DB) execCreateTable(s *sqlparse.CreateTable) error {
	if _, exists := db.tables[s.Table]; exists {
		if s.IfNotExists {
			return nil
		}
		return fmt.Errorf("table %q already exists", s.Table)
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("table %q needs at least one column", s.Table)
	}
	schema := Schema{}
	seen := map[string]bool{}
	pkCount := 0
	for _, c := range s.Columns {
		if seen[c.Name] {
			return fmt.Errorf("duplicate column %q in table %q", c.Name, s.Table)
		}
		if IsProvColumn(c.Name) {
			return fmt.Errorf("column name %q is reserved for provenance", c.Name)
		}
		seen[c.Name] = true
		if c.PrimaryKey {
			pkCount++
		}
		schema.Columns = append(schema.Columns, Column{Name: c.Name, Type: c.Type, PrimaryKey: c.PrimaryKey})
	}
	if pkCount > 1 {
		return fmt.Errorf("table %q: at most one PRIMARY KEY column is supported", s.Table)
	}
	db.tables[s.Table] = newTable(s.Table, schema)
	return nil
}

func (db *DB) execDropTable(s *sqlparse.DropTable) error {
	if _, exists := db.tables[s.Table]; !exists {
		if s.IfExists {
			return nil
		}
		return fmt.Errorf("table %q does not exist", s.Table)
	}
	delete(db.tables, s.Table)
	return nil
}

// InsertRowDirect loads a row bypassing SQL (bulk load path used by the
// TPC-H generator and package restore). The row is recorded as preloaded:
// proc="" and stmt=0 so it never counts as application-created.
func (db *DB) InsertRowDirect(table string, vals []sqlval.Value) (TupleRef, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[table]
	if !ok {
		return TupleRef{}, fmt.Errorf("table %q does not exist", table)
	}
	db.nextRow++
	r := &storedRow{id: db.nextRow, vals: vals, version: db.clock.Tick()}
	if err := t.insertRow(r); err != nil {
		db.nextRow--
		return TupleRef{}, err
	}
	return r.ref(table), nil
}

// RestoreRow loads a row with explicit provenance metadata (used when a
// package re-creates the relevant DB slice with original row ids and
// versions preserved).
func (db *DB) RestoreRow(table string, id RowID, version uint64, proc string, vals []sqlval.Value) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[table]
	if !ok {
		return fmt.Errorf("table %q does not exist", table)
	}
	r := &storedRow{id: id, vals: vals, version: version, proc: proc}
	if err := t.insertRow(r); err != nil {
		return err
	}
	if id > db.nextRow {
		db.nextRow = id
	}
	return nil
}

// ScanAll returns every live tuple version of a table along with its values
// (used by whole-DB packaging baselines and tests).
func (db *DB) ScanAll(table string) ([]TupleRef, [][]sqlval.Value, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[table]
	if !ok {
		return nil, nil, fmt.Errorf("table %q does not exist", table)
	}
	refs := make([]TupleRef, len(t.rows))
	rows := make([][]sqlval.Value, len(t.rows))
	for i, r := range t.rows {
		refs[i] = r.ref(table)
		rows[i] = append([]sqlval.Value(nil), r.vals...)
	}
	return refs, rows, nil
}

// LookupVersion fetches the values of a live tuple version, if present.
func (db *DB) LookupVersion(ref TupleRef) ([]sqlval.Value, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[ref.Table]
	if !ok {
		return nil, false
	}
	for _, r := range t.rows {
		if r.id == ref.Row && r.version == ref.Version {
			return append([]sqlval.Value(nil), r.vals...), true
		}
	}
	return nil, false
}
