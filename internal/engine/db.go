package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ldv/internal/obs"
	"ldv/internal/sqlparse"
	"ldv/internal/sqlval"
)

// Clock supplies the logical timestamps recorded on tuple versions and
// statement executions. When the engine runs inside the simulated OS the
// kernel clock is plugged in here so DB and OS events share one timeline —
// the property the temporal dependency inference of the paper relies on.
// Implementations must be safe for concurrent use: sessions tick it in
// parallel.
type Clock interface {
	// Tick advances the clock and returns the new time.
	Tick() uint64
}

// counterClock is the default standalone clock.
type counterClock struct {
	t atomic.Uint64
}

func (c *counterClock) Tick() uint64 { return c.t.Add(1) }

// Now reads the clock without advancing it (see ClockReader).
func (c *counterClock) Now() uint64 { return c.t.Load() }

// NewCounterClock returns a fresh logical clock starting at 1.
func NewCounterClock() Clock { return &counterClock{} }

// ClockReader is implemented by clocks that can be read without ticking.
// Replication heartbeats use it to report the primary's current time so a
// replica can express its lag in ticks.
type ClockReader interface {
	Now() uint64
}

// ExecOptions control one statement execution.
type ExecOptions struct {
	// Proc identifies the client process on whose behalf the statement runs
	// (recorded as prov_p on produced tuple versions).
	Proc string
	// WithLineage requests Lineage computation for queries and reenactment
	// provenance for updates, regardless of the PROVENANCE keyword.
	WithLineage bool
	// Span, when non-nil, is the parent span of this execution (typically
	// the server's per-request span): the engine's plan/exec/WAL child spans
	// attach to it and the Result is stamped with its trace ID. Nil disables
	// engine span recording.
	Span *obs.Span
	// Params are the values bound to the statement's positional `?`
	// placeholders, 1-based in source order. Execution fails if the
	// statement references a parameter index beyond len(Params).
	Params []sqlval.Value
	// AsOf, when non-zero, pins SELECTs to the historical snapshot at the
	// given logical tick — the session-level form of the statement's AS OF
	// clause (an explicit clause in the statement wins). Carried over the
	// wire as the Query message's trailing as-of field.
	AsOf uint64

	// prep links the execution back to its prepared statement (plan-cache
	// key and per-statement counters). Set only by Session.ExecPrepared.
	prep *PreparedStmt
}

// Result is the outcome of one statement execution.
type Result struct {
	// Columns and Rows hold query output (empty for DML).
	Columns []string
	Rows    [][]sqlval.Value
	// Lineage[i] lists the input tuple versions result row i depends on.
	// Non-nil only when lineage was requested (PROVENANCE keyword or
	// ExecOptions.WithLineage).
	Lineage [][]TupleRef
	// RowsAffected counts rows written by DML.
	RowsAffected int
	// StmtID is the engine-assigned unique id of this execution.
	StmtID int64
	// Start and End bound the execution on the logical timeline.
	Start, End uint64
	// ReadRefs lists tuple versions read by a DML statement (the pre-update
	// versions for UPDATE/DELETE, the query lineage for INSERT ... SELECT).
	ReadRefs []TupleRef
	// WrittenRefs lists tuple versions produced by a DML statement.
	WrittenRefs []TupleRef
	// TupleValues carries the attribute values of every tuple version
	// referenced by Lineage or ReadRefs. Perm-style provenance queries
	// return the full provenance tuples inline; LDV's packager persists
	// them to CSV. Only populated when lineage was requested.
	TupleValues map[TupleRef][]sqlval.Value
	// TraceID is the hex trace identity of the request that executed the
	// statement ("" when tracing is off). The client sets it from its root
	// span; the auditor stamps it into provenance edges and the session log
	// so a package answers "which trace wrote this tuple version".
	TraceID string
	// CommitSeq is the WAL record sequence this statement's commit occupies
	// (0 when nothing was logged: reads, WAL-less databases, statements
	// inside a still-open transaction). A client that later reads from a
	// replica can demand the replica has applied at least this sequence —
	// the read-your-writes bound.
	CommitSeq uint64
	// Fingerprint is the hex hash of the statement's normalized text — the
	// join key against ldv_stat_statements ("" when unknown).
	Fingerprint string

	// planNS is the plan-phase (lock acquisition) duration, used to split
	// exec time out of the statement total for per-fingerprint stats.
	planNS int64
}

// DB is an in-memory relational database with provenance support and MVCC
// snapshot isolation across concurrent sessions. The zero value is not
// usable; call NewDB.
type DB struct {
	// mu is the catalog lock: it guards only the tables map and is held for
	// short critical sections (name resolution in read mode, DDL in write
	// mode). Data access is synchronized by the per-table RWMutexes,
	// acquired strictly after mu.
	mu     sync.RWMutex
	tables map[string]*Table

	// commitMu serializes the commit step (WAL append + active-set
	// removal) against Checkpoint's cut capture: committers hold it shared
	// for the whole append-then-deregister sequence, Checkpoint holds it
	// exclusively while it snapshots and records the log offset it may
	// later truncate to. Acquired before mu; never held across table locks.
	commitMu sync.RWMutex
	wal      *WAL

	// idxMu serializes index DDL: index names are a global namespace
	// resolved by scanning every table, so concurrent CREATE/DROP INDEX
	// must not interleave between the name check and the install.
	idxMu sync.Mutex

	clock    Clock
	nextRow  atomic.Uint64
	nextStmt atomic.Int64

	// txnMu guards the transaction registries: the active set (id → snapshot
	// tick, 0 while the snapshot is still being captured — vacuum treats that
	// as "unknown, defer"), the commit-timestamp map historical snapshots
	// classify committed transactions with, and the reenactment history.
	txnMu       sync.RWMutex
	activeTxns  map[int64]uint64
	nextTxn     int64
	committedTs map[int64]uint64
	txnHist     map[int64]*TxnRecord

	// vacuumMu serializes vacuum passes; vacuumHorizon is the current
	// retention floor (no version end-marked at or before it survives, and
	// AS OF reads below it are rejected). retainTicks is the configured
	// retention window applied by bare VACUUM and the background vacuumer
	// (0 = keep everything up to the active-snapshot bound).
	vacuumMu      sync.Mutex
	vacuumHorizon atomic.Uint64
	retainTicks   atomic.Uint64

	// Vacuum pass statistics surfaced by ldv_stat_vacuum.
	vacuumPasses   atomic.Int64
	vacuumPruned   atomic.Int64
	vacuumDeferred atomic.Int64
	vacuumLastNS   atomic.Int64

	// readOnly, when set, rejects every statement that would write (DML,
	// DDL, COPY FROM) with ErrReadOnly. Replicas run in this mode until
	// promoted; the replication apply path bypasses sessions and is not
	// affected.
	readOnly atomic.Bool

	// vtMu guards the system-view registry (see virtual.go).
	vtMu    sync.RWMutex
	virtual map[string]*VirtualTable

	// Plan cache for prepared SELECTs, keyed by statement fingerprint.
	// ddlEpoch counts catalog changes (table and index DDL, on the primary
	// and on the replication/recovery apply paths); an entry built under an
	// older epoch is discarded on lookup (see prepared.go).
	pcMu      sync.Mutex
	planCache map[uint64]planCacheEntry
	ddlEpoch  atomic.Uint64

	// defSess serves the DB-level Exec* compatibility API: callers that
	// never open their own Session share this one (and therefore serialize
	// with each other, as they did when the DB had a single global mutex).
	defSessOnce sync.Once
	defSess     *Session
}

// NewDB returns an empty database using the given clock (nil for a private
// counter clock).
func NewDB(clock Clock) *DB {
	if clock == nil {
		clock = NewCounterClock()
	}
	db := &DB{
		tables:      make(map[string]*Table),
		clock:       clock,
		activeTxns:  make(map[int64]uint64),
		committedTs: make(map[int64]uint64),
		txnHist:     make(map[int64]*TxnRecord),
		virtual:     make(map[string]*VirtualTable),
		planCache:   make(map[uint64]planCacheEntry),
	}
	db.registerBuiltinVirtualTables()
	return db
}

// SetReadOnly toggles read-only mode: while set, write statements fail with
// ErrReadOnly. A replica database is read-only from construction until
// promotion.
func (db *DB) SetReadOnly(ro bool) { db.readOnly.Store(ro) }

// ReadOnly reports whether the database currently rejects writes.
func (db *DB) ReadOnly() bool { return db.readOnly.Load() }

// ClockNow peeks at the logical clock without advancing it, returning 0
// when the clock cannot be read passively.
func (db *DB) ClockNow() uint64 {
	if r, ok := db.clock.(ClockReader); ok {
		return r.Now()
	}
	return 0
}

// newStmtID assigns a database-wide unique statement id.
func (db *DB) newStmtID() int64 { return db.nextStmt.Add(1) }

// newRowID assigns a database-wide unique row id.
func (db *DB) newRowID() RowID { return RowID(db.nextRow.Add(1)) }

// defaultSession lazily creates the shared compatibility session.
func (db *DB) defaultSession() *Session {
	db.defSessOnce.Do(func() { db.defSess = db.NewSession() })
	return db.defSess
}

// TableNames returns the sorted names of all tables.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TableMeta is an immutable view of a table's metadata: a snapshot of the
// schema plus the live row count at the time of the call. Unlike a *Table it
// can be read without holding any engine lock.
type TableMeta struct {
	Name   string
	Schema Schema
	Rows   int
}

// Table returns the named table's metadata, or an error.
func (db *DB) Table(name string) (TableMeta, error) {
	db.mu.RLock()
	t, ok := db.tables[name]
	db.mu.RUnlock()
	if !ok {
		return TableMeta{}, fmt.Errorf("table %q does not exist", name)
	}
	schema := Schema{Columns: append([]Column(nil), t.Schema.Columns...)}
	return TableMeta{Name: t.Name, Schema: schema, Rows: t.RowCount()}, nil
}

// Exec parses and executes a single SQL statement on the shared default
// session (single-session compatibility API; servers open one Session per
// connection instead).
func (db *DB) Exec(sql string, opts ExecOptions) (*Result, error) {
	return db.defaultSession().Exec(sql, opts)
}

// ExecScript parses and executes a semicolon-separated script on the shared
// default session, stopping at the first error.
func (db *DB) ExecScript(sql string, opts ExecOptions) ([]*Result, error) {
	return db.defaultSession().ExecScript(sql, opts)
}

// ExecStatement executes a parsed statement on the shared default session.
func (db *DB) ExecStatement(stmt sqlparse.Statement, opts ExecOptions) (*Result, error) {
	return db.defaultSession().ExecStatement(stmt, opts)
}

func (db *DB) execCreateTable(s *sqlparse.CreateTable) (uint64, error) {
	if strings.HasPrefix(s.Table, "ldv_stat_") || db.virtualTable(s.Table) != nil {
		return 0, fmt.Errorf("table name %q is reserved for system views", s.Table)
	}
	if len(s.Columns) == 0 {
		return 0, fmt.Errorf("table %q needs at least one column", s.Table)
	}
	schema := Schema{}
	seen := map[string]bool{}
	pkCount := 0
	for _, c := range s.Columns {
		if seen[c.Name] {
			return 0, fmt.Errorf("duplicate column %q in table %q", c.Name, s.Table)
		}
		if IsProvColumn(c.Name) {
			return 0, fmt.Errorf("column name %q is reserved for provenance", c.Name)
		}
		seen[c.Name] = true
		if c.PrimaryKey {
			pkCount++
		}
		schema.Columns = append(schema.Columns, Column{Name: c.Name, Type: c.Type, PrimaryKey: c.PrimaryKey})
	}
	if pkCount > 1 {
		return 0, fmt.Errorf("table %q: at most one PRIMARY KEY column is supported", s.Table)
	}
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	db.mu.Lock()
	if _, exists := db.tables[s.Table]; exists {
		db.mu.Unlock()
		if s.IfNotExists {
			return 0, nil
		}
		return 0, fmt.Errorf("table %q already exists", s.Table)
	}
	db.tables[s.Table] = newTable(s.Table, schema)
	db.mu.Unlock()
	seq, err := db.logDDL(redoEntry{kind: walCreate, table: s.Table, schema: schema})
	if err != nil {
		db.mu.Lock()
		delete(db.tables, s.Table)
		db.mu.Unlock()
		return 0, err
	}
	return seq, nil
}

func (db *DB) execDropTable(s *sqlparse.DropTable) (uint64, error) {
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	db.mu.Lock()
	t, exists := db.tables[s.Table]
	if !exists {
		db.mu.Unlock()
		if s.IfExists {
			return 0, nil
		}
		return 0, fmt.Errorf("table %q does not exist", s.Table)
	}
	delete(db.tables, s.Table)
	db.mu.Unlock()
	seq, err := db.logDDL(redoEntry{kind: walDrop, table: s.Table})
	if err != nil {
		db.mu.Lock()
		db.tables[s.Table] = t
		db.mu.Unlock()
		return 0, err
	}
	return seq, nil
}

// logDDL makes a catalog change durable as a single-entry WAL record (DDL
// runs outside transactions; txn id 0 labels it). Caller holds
// commitMu.RLock so Checkpoint's cut never splits a DDL's apply-and-log.
// Returns the record's WAL sequence (0 without a WAL).
func (db *DB) logDDL(e redoEntry) (uint64, error) {
	// Every DDL exec path funnels through here, so this is also the plan
	// cache's invalidation point: bump the epoch so cached plans built
	// against the old catalog are discarded on their next lookup. (A bump
	// for a DDL that subsequently fails to log costs one spurious re-plan.)
	db.bumpDDLEpoch()
	if db.wal == nil {
		return 0, nil
	}
	return db.wal.Commit(encodeWALTxn(0, []redoEntry{e}))
}

// commitTxn is the commit point of a transaction: its redo record is
// flushed to the WAL (when one is attached) *before* it leaves the active
// set, so success here — the acknowledgment the caller relays — implies
// durability. On a flush failure the transaction rolls back instead: the
// client sees an error and the in-memory state matches the log. The
// returned sequence is the WAL position of the commit record (0 when
// nothing needed logging).
func (db *DB) commitTxn(x *Txn, parent *obs.Span, ws *obs.SessionState) (uint64, error) {
	db.commitMu.RLock()
	if db.wal == nil || len(x.redo) == 0 {
		cts := db.endTxnCommitted(x.id)
		db.commitMu.RUnlock()
		db.commitTxnHist(x, cts, 0)
		return 0, nil
	}
	// Fold the statement history into the redo record (walStmt entries after
	// the data entries) so reenactment survives restarts and reaches replicas.
	for _, h := range x.hist {
		x.redo = append(x.redo, h.redoEntry(x.snap.ts))
	}
	seq, err := db.walCommit(x, parent, ws)
	if err == nil {
		cts := db.endTxnCommitted(x.id)
		db.commitMu.RUnlock()
		db.commitTxnHist(x, cts, seq)
		return seq, nil
	}
	db.commitMu.RUnlock()
	if rerr := x.rollback(); rerr != nil {
		return 0, fmt.Errorf("commit: %w (rollback: %v)", err, rerr)
	}
	return 0, fmt.Errorf("commit: %w", err)
}

// walCommit flushes the transaction's redo record, under a wal.commit span
// so a trace attributes group-commit latency to the request that paid it,
// and under a wal.group_commit wait so the flush wait is visible to the ASH
// sampler and the cumulative wait-event stats.
func (db *DB) walCommit(x *Txn, parent *obs.Span, ws *obs.SessionState) (uint64, error) {
	sp := parent.Child("wal.commit")
	defer sp.End()
	end := obs.WaitBegin(ws, obs.WaitWALGroupCommit)
	defer end()
	return db.wal.Commit(encodeWALTxn(x.id, x.redo))
}

// lookupTable resolves a table name under the catalog lock.
func (db *DB) lookupTable(name string) (*Table, error) {
	db.mu.RLock()
	t, ok := db.tables[name]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("table %q does not exist", name)
	}
	return t, nil
}

// InsertRowDirect loads a row bypassing SQL (bulk load path used by the
// TPC-H generator and package restore). The row is recorded as preloaded:
// proc="" and stmt=0 so it never counts as application-created.
func (db *DB) InsertRowDirect(table string, vals []sqlval.Value) (TupleRef, error) {
	t, err := db.lookupTable(table)
	if err != nil {
		return TupleRef{}, err
	}
	r := &storedRow{id: db.newRowID(), vals: vals, version: db.clock.Tick()}
	t.mu.Lock()
	err = t.insertRow(r)
	t.mu.Unlock()
	if err != nil {
		return TupleRef{}, err
	}
	return r.ref(table), nil
}

// RestoreRow loads a row with explicit provenance metadata (used when a
// package re-creates the relevant DB slice with original row ids and
// versions preserved).
func (db *DB) RestoreRow(table string, id RowID, version uint64, proc string, vals []sqlval.Value) error {
	t, err := db.lookupTable(table)
	if err != nil {
		return err
	}
	r := &storedRow{id: id, vals: vals, version: version, proc: proc}
	t.mu.Lock()
	err = t.insertRow(r)
	t.mu.Unlock()
	if err != nil {
		return err
	}
	for {
		cur := db.nextRow.Load()
		if uint64(id) <= cur || db.nextRow.CompareAndSwap(cur, uint64(id)) {
			return nil
		}
	}
}

// ScanAll returns every tuple version of a table visible to a fresh snapshot
// along with its values (used by whole-DB packaging baselines and tests).
func (db *DB) ScanAll(table string) ([]TupleRef, [][]sqlval.Value, error) {
	t, err := db.lookupTable(table)
	if err != nil {
		return nil, nil, err
	}
	snap := db.takeSnapshot(0)
	t.mu.RLock()
	defer t.mu.RUnlock()
	var refs []TupleRef
	var rows [][]sqlval.Value
	for _, r := range t.rows {
		if !snap.visible(r) {
			continue
		}
		refs = append(refs, r.ref(table))
		rows = append(rows, append([]sqlval.Value(nil), r.vals...))
	}
	return refs, rows, nil
}

// LookupVersion fetches the values of a committed tuple version, if present.
// Superseded (end-marked) versions remain addressable: they are exactly the
// provenance tuples reenactment refers back to.
func (db *DB) LookupVersion(ref TupleRef) ([]sqlval.Value, bool) {
	t, err := db.lookupTable(ref.Table)
	if err != nil {
		return nil, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rows {
		if r.id == ref.Row && r.version == ref.Version && !db.txnActive(r.txnID) {
			return append([]sqlval.Value(nil), r.vals...), true
		}
	}
	return nil, false
}
