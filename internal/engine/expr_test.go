package engine

import (
	"testing"

	"ldv/internal/sqlval"
)

// Expression semantics exercised through full statements.

func TestArithmeticInProjection(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT, b FLOAT)")
	mustExec(t, db, "INSERT INTO t VALUES (7, 2.5)", ExecOptions{})
	res := mustExec(t, db, "SELECT a + 1, a - 1, a * 2, a / 2, a % 3, -a, a + b FROM t", ExecOptions{})
	got := rowsToStrings(res)[0]
	if got != "8|6|14|3|1|-7|9.5" {
		t.Fatalf("arithmetic = %q", got)
	}
}

func TestStringConcat(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a TEXT, n INT)")
	mustExec(t, db, "INSERT INTO t VALUES ('x', 3)", ExecOptions{})
	res := mustExec(t, db, "SELECT a || '-' || 'y', a + 'z', 'n=' + n FROM t", ExecOptions{})
	got := rowsToStrings(res)[0]
	if got != "x-y|xz|n=3" {
		t.Fatalf("concat = %q", got)
	}
}

func TestDateComparisons(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (d DATE)")
	mustExec(t, db, "INSERT INTO t VALUES (DATE '1995-01-01'), (DATE '1998-06-15'), (NULL)", ExecOptions{})
	res := mustExec(t, db, "SELECT d FROM t WHERE d >= DATE '1996-01-01'", ExecOptions{})
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "1998-06-15" {
		t.Fatalf("date filter = %v", rowsToStrings(res))
	}
	res = mustExec(t, db, "SELECT d FROM t WHERE d BETWEEN DATE '1994-01-01' AND DATE '1996-01-01'", ExecOptions{})
	if len(res.Rows) != 1 {
		t.Fatalf("date between = %v", rowsToStrings(res))
	}
	res = mustExec(t, db, "SELECT MIN(d), MAX(d) FROM t", ExecOptions{})
	if res.Rows[0][0].String() != "1995-01-01" || res.Rows[0][1].String() != "1998-06-15" {
		t.Fatalf("date min/max = %v", rowsToStrings(res))
	}
}

func TestBooleanColumnsAndLiterals(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (ok BOOLEAN, n INT)")
	mustExec(t, db, "INSERT INTO t VALUES (TRUE, 1), (FALSE, 2), (NULL, 3)", ExecOptions{})
	res := mustExec(t, db, "SELECT n FROM t WHERE ok", ExecOptions{})
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("bool filter = %v", rowsToStrings(res))
	}
	res = mustExec(t, db, "SELECT n FROM t WHERE NOT ok", ExecOptions{})
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
		t.Fatalf("not bool = %v", rowsToStrings(res))
	}
	res = mustExec(t, db, "SELECT n FROM t WHERE ok OR n = 3", ExecOptions{})
	if len(res.Rows) != 2 {
		t.Fatalf("or with null = %v", rowsToStrings(res))
	}
}

func TestThreeValuedLogicTable(t *testing.T) {
	// AND/OR truth tables including UNKNOWN, probed via WHERE: a row
	// survives only when the predicate is TRUE. NULL = 1 is UNKNOWN.
	db := newTestDB(t, "CREATE TABLE t (x INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)", ExecOptions{})
	cases := []struct {
		where string
		keep  bool
	}{
		{"TRUE AND TRUE", true},
		{"TRUE AND FALSE", false},
		{"TRUE AND x IS NULL", false}, // TRUE AND FALSE
		{"TRUE AND NULL = 1", false},  // TRUE AND UNKNOWN -> UNKNOWN
		{"FALSE AND NULL = 1", false}, // FALSE short-circuits
		{"TRUE OR NULL = 1", true},    // TRUE short-circuits
		{"FALSE OR NULL = 1", false},  // FALSE OR UNKNOWN -> UNKNOWN
		{"FALSE OR TRUE", true},
		{"NOT (NULL = 1)", false}, // NOT UNKNOWN -> UNKNOWN
		{"NOT FALSE", true},
	}
	for _, c := range cases {
		res := mustExec(t, db, "SELECT x FROM t WHERE "+c.where, ExecOptions{})
		if (len(res.Rows) == 1) != c.keep {
			t.Errorf("WHERE %s: kept=%v, want %v", c.where, len(res.Rows) == 1, c.keep)
		}
	}
}

func TestOrderByNullsFirst(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (2), (NULL), (1)", ExecOptions{})
	res := mustExec(t, db, "SELECT a FROM t ORDER BY a", ExecOptions{})
	got := rowsToStrings(res)
	if got[0] != "NULL" || got[1] != "1" || got[2] != "2" {
		t.Fatalf("nulls-first order = %v", got)
	}
	res = mustExec(t, db, "SELECT a FROM t ORDER BY a DESC", ExecOptions{})
	got = rowsToStrings(res)
	if got[2] != "NULL" {
		t.Fatalf("desc order = %v", got)
	}
}

func TestLimitZero(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2)", ExecOptions{})
	res := mustExec(t, db, "SELECT a FROM t LIMIT 0", ExecOptions{})
	if len(res.Rows) != 0 {
		t.Fatalf("limit 0 = %v", rowsToStrings(res))
	}
}

func TestDivisionByZeroSurfacesInProjection(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (0)", ExecOptions{})
	if _, err := db.Exec("SELECT 1 / a FROM t", ExecOptions{}); err == nil {
		t.Fatal("division by zero in projection must error")
	}
}

func TestLikeOnNonTextIsError(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)", ExecOptions{})
	// In the projection, the error surfaces; in WHERE it filters the row.
	if _, err := db.Exec("SELECT a LIKE '%x%' FROM t", ExecOptions{}); err == nil {
		t.Fatal("LIKE on integer must error in projection")
	}
	// NULL LIKE is UNKNOWN, not an error.
	db2 := newTestDB(t, "CREATE TABLE u (s TEXT)")
	mustExec(t, db2, "INSERT INTO u VALUES (NULL)", ExecOptions{})
	res := mustExec(t, db2, "SELECT s FROM u WHERE s LIKE '%x%'", ExecOptions{})
	if len(res.Rows) != 0 {
		t.Fatal("NULL LIKE must not match")
	}
}

func TestAggregateOfExpression(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT, b INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 10), (2, 20)", ExecOptions{})
	res := mustExec(t, db, "SELECT SUM(a * b), AVG(b - a) FROM t", ExecOptions{})
	row := res.Rows[0]
	if row[0].Int() != 50 || row[1].Float() != 13.5 {
		t.Fatalf("agg expr = %v", rowsToStrings(res))
	}
	// Expression over an aggregate.
	res = mustExec(t, db, "SELECT SUM(b) / count(*) FROM t", ExecOptions{})
	if res.Rows[0][0].Int() != 15 {
		t.Fatalf("expr over agg = %v", rowsToStrings(res))
	}
}

func TestMinMaxOverStrings(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (s TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES ('banana'), ('apple'), ('cherry')", ExecOptions{})
	res := mustExec(t, db, "SELECT MIN(s), MAX(s) FROM t", ExecOptions{})
	if res.Rows[0][0].Str() != "apple" || res.Rows[0][1].Str() != "cherry" {
		t.Fatalf("string min/max = %v", rowsToStrings(res))
	}
}

func TestProvColumnsQualifiedInJoins(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE a (x INT)", "CREATE TABLE b (y INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1)", ExecOptions{Proc: "pa"})
	mustExec(t, db, "INSERT INTO b VALUES (1)", ExecOptions{Proc: "pb"})
	res := mustExec(t, db, "SELECT a.prov_p, b.prov_p FROM a, b WHERE a.x = b.y", ExecOptions{})
	if res.Rows[0][0].Str() != "pa" || res.Rows[0][1].Str() != "pb" {
		t.Fatalf("qualified prov = %v", rowsToStrings(res))
	}
	// Unqualified prov column in a join is ambiguous.
	if _, err := db.Exec("SELECT prov_p FROM a, b WHERE a.x = b.y", ExecOptions{}); err == nil {
		t.Fatal("ambiguous prov column must fail")
	}
}

func TestInsertExpressionValues(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT, b TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (2 + 3 * 4, 'a' || 'b')", ExecOptions{})
	res := mustExec(t, db, "SELECT a, b FROM t", ExecOptions{})
	if rowsToStrings(res)[0] != "14|ab" {
		t.Fatalf("insert exprs = %v", rowsToStrings(res))
	}
	// Column references in VALUES are invalid.
	if _, err := db.Exec("INSERT INTO t VALUES (a, 'x')", ExecOptions{}); err == nil {
		t.Fatal("column ref in VALUES must fail")
	}
}

func TestUpdateSetFromOtherColumns(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT, b INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 10), (2, 20)", ExecOptions{})
	mustExec(t, db, "UPDATE t SET a = b * 2, b = a WHERE a = 2", ExecOptions{})
	res := mustExec(t, db, "SELECT a, b FROM t WHERE b = 2", ExecOptions{})
	// Both SET expressions see the pre-update row: a = 20*2, b = old a = 2.
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 40 {
		t.Fatalf("update snapshot semantics = %v", rowsToStrings(res))
	}
}

func TestCompareIncomparableInWhereFiltersRow(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)", ExecOptions{})
	res := mustExec(t, db, "SELECT a FROM t WHERE a = 'text'", ExecOptions{})
	if len(res.Rows) != 0 {
		t.Fatal("incomparable comparison must be UNKNOWN")
	}
}

func TestValuesWidenOnInsertSelect(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE src (a INT)", "CREATE TABLE dst (a FLOAT)")
	mustExec(t, db, "INSERT INTO src VALUES (3)", ExecOptions{})
	mustExec(t, db, "INSERT INTO dst SELECT a FROM src", ExecOptions{})
	res := mustExec(t, db, "SELECT a FROM dst", ExecOptions{})
	if res.Rows[0][0].Kind() != sqlval.KindFloat {
		t.Fatal("insert-select must widen int to float")
	}
}
