package engine

import (
	"sort"

	"ldv/internal/obs"
	"ldv/internal/sqlparse"
	"ldv/internal/sqlval"
)

// Virtual tables are read-only system views served from live engine state
// rather than stored tuples. A SELECT whose FROM names an unknown table
// falls back to this registry, so the views are reachable over the plain
// wire protocol with no new message kinds: `SELECT * FROM
// ldv_stat_statements` behaves like any other query — filters, joins,
// aggregates and ORDER BY all apply.
//
// Providers materialize a fresh snapshot per scan and MUST NOT take table
// or catalog locks: the scanning statement may already hold part of its
// footprint, and a provider blocking on a table lock could deadlock against
// a writer acquiring its footprint in sorted order. The per-table stats the
// views report are therefore plain atomics maintained at the mutation sites
// (see Table's counter fields).

// VirtualTable is one registered system view.
type VirtualTable struct {
	Name   string
	Schema Schema
	// Rows materializes the view's current contents. Called once per scan,
	// with no engine locks held.
	Rows func() [][]sqlval.Value
}

// RegisterVirtualTable installs (or replaces) a system view. The server and
// replication layers use it to swap the placeholder activity and
// replication views for live providers.
func (db *DB) RegisterVirtualTable(vt *VirtualTable) {
	db.vtMu.Lock()
	db.virtual[vt.Name] = vt
	db.vtMu.Unlock()
}

// virtualTable resolves a system-view name, returning nil when it is not
// registered.
func (db *DB) virtualTable(name string) *VirtualTable {
	db.vtMu.RLock()
	vt := db.virtual[name]
	db.vtMu.RUnlock()
	return vt
}

// scanVirtual materializes a system view as a relation with the same layout
// contract as scanTable: the view's columns followed by the four hidden
// provenance attributes (synthetic here — row ids number the snapshot rows,
// versions and usedby are zero).
func (ec *stmtCtx) scanVirtual(vt *VirtualTable, ref sqlparse.TableRef) relation {
	name := ref.EffectiveName()
	rel := relation{env: env{params: ec.params}}
	for _, c := range vt.Schema.Columns {
		rel.env.bindings = append(rel.env.bindings, binding{table: name, name: c.Name})
	}
	for _, pc := range []string{ColProvRowID, ColProvV, ColProvP, ColProvUsedBy} {
		rel.env.bindings = append(rel.env.bindings, binding{table: name, name: pc})
	}
	ncols := len(vt.Schema.Columns)
	rows := vt.Rows()
	rel.tuples = make([]tuple, 0, len(rows))
	for i, vals := range rows {
		tv := make([]sqlval.Value, ncols+4)
		copy(tv, vals)
		tv[ncols] = sqlval.NewInt(int64(i + 1))
		tv[ncols+1] = sqlval.NewInt(0)
		tv[ncols+2] = sqlval.NewString("")
		tv[ncols+3] = sqlval.NewInt(0)
		rel.tuples = append(rel.tuples, tuple{vals: tv})
	}
	return rel
}

// cols builds a schema from (name, kind) pairs.
func viewSchema(cols ...Column) Schema { return Schema{Columns: cols} }

func intCol(name string) Column   { return Column{Name: name, Type: sqlval.KindInt} }
func textCol(name string) Column  { return Column{Name: name, Type: sqlval.KindString} }
func floatCol(name string) Column { return Column{Name: name, Type: sqlval.KindFloat} }

// registerBuiltinVirtualTables installs the ldv_stat_* views every database
// serves. ldv_stat_activity and ldv_stat_replication start as empty shells;
// the server and replication layers replace them with live providers.
func (db *DB) registerBuiltinVirtualTables() {
	db.RegisterVirtualTable(&VirtualTable{
		Name: "ldv_stat_statements",
		Schema: viewSchema(
			textCol("fingerprint"), textCol("query"),
			intCol("calls"), intCol("errors"), intCol("rows"),
			intCol("parse_ns"), intCol("plan_ns"), intCol("exec_ns"),
			floatCol("mean_exec_ns"),
			intCol("p50_exec_ns"), intCol("p95_exec_ns"), intCol("p99_exec_ns"),
			textCol("last_trace"),
		),
		Rows: func() [][]sqlval.Value {
			stats := obs.Statements().Snapshot()
			rows := make([][]sqlval.Value, 0, len(stats))
			for _, s := range stats {
				fp := sqlparse.Fingerprint{Hash: s.Hash, Text: s.Text}
				rows = append(rows, []sqlval.Value{
					sqlval.NewString(fp.String()),
					sqlval.NewString(s.Text),
					sqlval.NewInt(s.Calls),
					sqlval.NewInt(s.Errors),
					sqlval.NewInt(s.Rows),
					sqlval.NewInt(s.Parse.Sum),
					sqlval.NewInt(s.Plan.Sum),
					sqlval.NewInt(s.Exec.Sum),
					sqlval.NewFloat(s.Exec.Mean()),
					sqlval.NewInt(s.Exec.Quantile(0.50)),
					sqlval.NewInt(s.Exec.Quantile(0.95)),
					sqlval.NewInt(s.Exec.Quantile(0.99)),
					sqlval.NewString(s.LastTraceID),
				})
			}
			return rows
		},
	})

	db.RegisterVirtualTable(&VirtualTable{
		Name: "ldv_stat_tables",
		Schema: viewSchema(
			textCol("name"), intCol("live_rows"), intCol("versions"),
			intCol("dead_versions"),
			intCol("lock_waits"), intCol("lock_wait_ns"),
		),
		Rows: func() [][]sqlval.Value {
			db.mu.RLock()
			tables := make([]*Table, 0, len(db.tables))
			for _, t := range db.tables {
				tables = append(tables, t)
			}
			db.mu.RUnlock()
			sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
			rows := make([][]sqlval.Value, 0, len(tables))
			for _, t := range tables {
				rows = append(rows, []sqlval.Value{
					sqlval.NewString(t.Name),
					sqlval.NewInt(t.liveRows.Load()),
					sqlval.NewInt(t.versions.Load()),
					sqlval.NewInt(t.deadVersions.Load()),
					sqlval.NewInt(t.lockWaits.Load()),
					sqlval.NewInt(t.lockWaitNS.Load()),
				})
			}
			return rows
		},
	})

	// Time travel: per-table version demographics plus the reenactment
	// history, and the cumulative vacuum counters.
	db.RegisterVirtualTable(&VirtualTable{
		Name: "ldv_stat_versions",
		Schema: viewSchema(
			intCol("txn"), intCol("snapshot_tick"), intCol("commit_tick"),
			intCol("commit_seq"), intCol("statements"), intCol("rows"),
		),
		Rows: func() [][]sqlval.Value {
			recs := db.txnHistSnapshot()
			rows := make([][]sqlval.Value, 0, len(recs))
			for _, r := range recs {
				total := 0
				for _, h := range r.Stmts {
					total += h.Rows
				}
				rows = append(rows, []sqlval.Value{
					sqlval.NewInt(r.TxnID),
					sqlval.NewInt(int64(r.SnapTS)),
					sqlval.NewInt(int64(r.CommitTS)),
					sqlval.NewInt(int64(r.CommitSeq)),
					sqlval.NewInt(int64(len(r.Stmts))),
					sqlval.NewInt(int64(total)),
				})
			}
			return rows
		},
	})
	db.RegisterVirtualTable(&VirtualTable{
		Name: "ldv_stat_vacuum",
		Schema: viewSchema(
			intCol("horizon_tick"), intCol("retain_ticks"), intCol("passes"),
			intCol("pruned"), intCol("deferred"), intCol("last_pass_ns"),
		),
		Rows: func() [][]sqlval.Value {
			vs := db.VacuumStatsSnapshot()
			return [][]sqlval.Value{{
				sqlval.NewInt(int64(vs.Horizon)),
				sqlval.NewInt(int64(vs.RetainTicks)),
				sqlval.NewInt(vs.Passes),
				sqlval.NewInt(vs.Pruned),
				sqlval.NewInt(vs.Deferred),
				sqlval.NewInt(vs.LastPassNS),
			}}
		},
	})

	db.RegisterVirtualTable(&VirtualTable{
		Name: "ldv_stat_indexes",
		Schema: viewSchema(
			textCol("name"), textCol("table_name"), textCol("column_name"),
			textCol("kind"), intCol("entries"), intCol("scans"),
		),
		Rows: func() [][]sqlval.Value {
			db.mu.RLock()
			tables := make([]*Table, 0, len(db.tables))
			for _, t := range db.tables {
				tables = append(tables, t)
			}
			db.mu.RUnlock()
			sort.Slice(tables, func(i, j int) bool { return tables[i].Name < tables[j].Name })
			var rows [][]sqlval.Value
			for _, t := range tables {
				for _, ix := range t.indexList() {
					rows = append(rows, []sqlval.Value{
						sqlval.NewString(ix.name),
						sqlval.NewString(t.Name),
						sqlval.NewString(ix.column),
						sqlval.NewString(ix.kind),
						sqlval.NewInt(ix.entries.Load()),
						sqlval.NewInt(ix.scans.Load()),
					})
				}
			}
			return rows
		},
	})

	db.RegisterVirtualTable(&VirtualTable{
		Name:   "ldv_stat_wal",
		Schema: viewSchema(intCol("seq"), intCol("size_bytes")),
		Rows: func() [][]sqlval.Value {
			w := db.WAL()
			if w == nil {
				return nil
			}
			return [][]sqlval.Value{{
				sqlval.NewInt(int64(w.Seq())),
				sqlval.NewInt(w.Size()),
			}}
		},
	})

	db.RegisterVirtualTable(&VirtualTable{
		Name: "ldv_stat_wait_events",
		Schema: viewSchema(
			textCol("event"), textCol("description"),
			intCol("waits"), intCol("wait_ns"), floatCol("mean_wait_ns"),
		),
		Rows: func() [][]sqlval.Value {
			stats := obs.WaitEventStats()
			rows := make([][]sqlval.Value, 0, len(stats))
			for _, s := range stats {
				mean := 0.0
				if s.Count > 0 {
					mean = float64(s.TotalNS) / float64(s.Count)
				}
				rows = append(rows, []sqlval.Value{
					sqlval.NewString(s.Name),
					sqlval.NewString(s.Description),
					sqlval.NewInt(s.Count),
					sqlval.NewInt(s.TotalNS),
					sqlval.NewFloat(mean),
				})
			}
			return rows
		},
	})

	db.RegisterVirtualTable(&VirtualTable{
		Name: "ldv_stat_ash",
		Schema: viewSchema(
			intCol("sample_ns"), intCol("session"), textCol("proc"),
			intCol("txn"), textCol("state"), textCol("event"),
			textCol("fingerprint"), textCol("trace_id"), intCol("wait_ns"),
		),
		Rows: func() [][]sqlval.Value {
			samples := obs.ASH().Samples()
			rows := make([][]sqlval.Value, 0, len(samples))
			for _, s := range samples {
				rows = append(rows, []sqlval.Value{
					sqlval.NewInt(s.TimeNS),
					sqlval.NewInt(s.Session),
					sqlval.NewString(s.Proc),
					sqlval.NewInt(s.Txn),
					sqlval.NewString(s.State),
					sqlval.NewString(s.Event),
					sqlval.NewString(s.Fingerprint),
					sqlval.NewString(s.TraceID),
					sqlval.NewInt(s.WaitNS),
				})
			}
			return rows
		},
	})

	// Placeholders: populated by the layers that own the state. The schema
	// is fixed here so queries against an unserved view still resolve.
	db.RegisterVirtualTable(&VirtualTable{
		Name: "ldv_stat_activity",
		Schema: viewSchema(
			intCol("session"), textCol("proc"), textCol("state"),
			textCol("fingerprint"), textCol("query"), intCol("elapsed_ns"),
		),
		Rows: func() [][]sqlval.Value { return nil },
	})
	db.RegisterVirtualTable(&VirtualTable{
		Name: "ldv_stat_replication",
		Schema: viewSchema(
			textCol("role"), textCol("peer"), textCol("state"),
			intCol("applied_seq"), intCol("head_seq"), intCol("lag_records"),
		),
		Rows: func() [][]sqlval.Value { return nil },
	})
	db.RegisterVirtualTable(&VirtualTable{
		Name: "ldv_stat_prepared",
		Schema: viewSchema(
			intCol("session"), textCol("name"), textCol("fingerprint"),
			intCol("num_params"), intCol("calls"), intCol("cache_hits"),
		),
		Rows: func() [][]sqlval.Value { return nil },
	})
}
