package engine

import (
	"fmt"
	"strings"
	"testing"
)

// asOfRows runs sql and joins the result rows for compact comparison.
func asOfRows(t *testing.T, db *DB, sql string) string {
	t.Helper()
	return strings.Join(rowsToStrings(mustExec(t, db, sql, ExecOptions{})), ";")
}

func TestAsOfVisibility(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (k INT, v TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 'one')", ExecOptions{})
	past := db.ClockNow()
	mustExec(t, db, "UPDATE t SET v = 'uno' WHERE k = 1", ExecOptions{})
	mustExec(t, db, "INSERT INTO t VALUES (2, 'two')", ExecOptions{})
	mustExec(t, db, "DELETE FROM t WHERE k = 1", ExecOptions{})

	if got := asOfRows(t, db, "SELECT k, v FROM t ORDER BY k"); got != "2|two" {
		t.Fatalf("head read = %q, want 2|two", got)
	}
	// At the past tick: the original value, no second row, no delete.
	q := fmt.Sprintf("SELECT k, v FROM t AS OF %d ORDER BY k", past)
	if got := asOfRows(t, db, q); got != "1|one" {
		t.Fatalf("AS OF %d = %q, want 1|one", past, got)
	}
	// The bound is an expression; the trailing position also parses.
	q = fmt.Sprintf("SELECT v FROM t WHERE k = 1 AS OF %d + 0", past)
	if got := asOfRows(t, db, q); got != "one" {
		t.Fatalf("AS OF expr = %q, want one", got)
	}
	// The frame-level bound (wire AsOf field) takes the same path.
	res := mustExec(t, db, "SELECT v FROM t WHERE k = 1", ExecOptions{AsOf: past})
	if got := strings.Join(rowsToStrings(res), ";"); got != "one" {
		t.Fatalf("ExecOptions.AsOf = %q, want one", got)
	}
}

func TestAsOfIndexScanAgreesWithFullScan(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (k INT, v INT)")
	for i := 0; i < 20; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, 0)", i), ExecOptions{})
	}
	past := db.ClockNow()
	mustExec(t, db, "UPDATE t SET v = 1", ExecOptions{})
	mustExec(t, db, "DELETE FROM t WHERE k >= 10", ExecOptions{})

	full := asOfRows(t, db, fmt.Sprintf("SELECT k, v FROM t AS OF %d ORDER BY k", past))
	mustExec(t, db, "CREATE INDEX ix_k ON t (k) USING ordered", ExecOptions{})
	// The index was built after the churn, yet it indexes dead versions too,
	// so an index-backed AS OF probe must agree with the full scan.
	for i := 0; i < 20; i++ {
		q := fmt.Sprintf("SELECT v FROM t WHERE k = %d AS OF %d", i, past)
		if got := asOfRows(t, db, q); got != "0" {
			t.Fatalf("indexed AS OF probe k=%d = %q, want 0", i, got)
		}
	}
	indexed := asOfRows(t, db, fmt.Sprintf("SELECT k, v FROM t AS OF %d ORDER BY k", past))
	if full != indexed {
		t.Fatalf("AS OF full scan %q != post-index scan %q", full, indexed)
	}
}

func TestAsOfDoesNotSeeConcurrentUncommitted(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (k INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)", ExecOptions{})

	s := db.NewSession()
	defer s.Close()
	if _, err := s.Exec("BEGIN", ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO t VALUES (2)", ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	now := db.ClockNow()
	q := fmt.Sprintf("SELECT k FROM t AS OF %d ORDER BY k", now)
	if got := asOfRows(t, db, q); got != "1" {
		t.Fatalf("AS OF with open txn = %q, want 1", got)
	}
	if _, err := s.Exec("COMMIT", ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	// The insert committed after tick `now`, so the historical cut still
	// excludes it; the head read sees it.
	if got := asOfRows(t, db, q); got != "1" {
		t.Fatalf("AS OF pre-commit tick = %q, want 1", got)
	}
	if got := asOfRows(t, db, "SELECT k FROM t ORDER BY k"); got != "1;2" {
		t.Fatalf("head read = %q, want 1;2", got)
	}
}

func TestAsOfSurvivesCheckpointRestart(t *testing.T) {
	fs := newMapFS()
	db := NewDB(nil)
	if _, err := db.Recover(fs, "/d"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (k INT, v TEXT)", ExecOptions{})
	mustExec(t, db, "INSERT INTO t VALUES (1, 'one')", ExecOptions{})
	past := db.ClockNow()
	mustExec(t, db, "UPDATE t SET v = 'uno' WHERE k = 1", ExecOptions{})
	if err := db.Checkpoint(fs, "/d"); err != nil {
		t.Fatal(err)
	}

	// Restart from the checkpoint alone: dead versions ride the .tbl format.
	db2 := NewDB(nil)
	if _, err := db2.Recover(fs, "/d"); err != nil {
		t.Fatal(err)
	}
	q := fmt.Sprintf("SELECT v FROM t WHERE k = 1 AS OF %d", past)
	if got := asOfRows(t, db2, q); got != "one" {
		t.Fatalf("AS OF after restart = %q, want one", got)
	}
	if got := asOfRows(t, db2, "SELECT v FROM t WHERE k = 1"); got != "uno" {
		t.Fatalf("head after restart = %q, want uno", got)
	}
}

func TestVacuumReclaimsAndFencesAsOf(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (k INT, v INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 0)", ExecOptions{})
	past := db.ClockNow()
	for i := 1; i <= 5; i++ {
		mustExec(t, db, fmt.Sprintf("UPDATE t SET v = %d WHERE k = 1", i), ExecOptions{})
	}
	if got := asOfRows(t, db, "SELECT dead_versions FROM ldv_stat_tables WHERE name = 't'"); got != "5" {
		t.Fatalf("dead_versions before vacuum = %q, want 5", got)
	}

	res := mustExec(t, db, "VACUUM", ExecOptions{})
	if res.RowsAffected != 5 {
		t.Fatalf("VACUUM pruned %d versions, want 5", res.RowsAffected)
	}
	if got := asOfRows(t, db, "SELECT dead_versions FROM ldv_stat_tables WHERE name = 't'"); got != "0" {
		t.Fatalf("dead_versions after vacuum = %q, want 0", got)
	}
	if h := db.VacuumHorizon(); h == 0 {
		t.Fatal("vacuum horizon still zero after a pass")
	}
	if _, err := db.Exec(fmt.Sprintf("SELECT v FROM t AS OF %d", past), ExecOptions{}); err == nil {
		t.Fatalf("AS OF %d below horizon %d not rejected", past, db.VacuumHorizon())
	}
	// Head reads are untouched and the stat view reflects the pass.
	if got := asOfRows(t, db, "SELECT v FROM t WHERE k = 1"); got != "5" {
		t.Fatalf("head read after vacuum = %q, want 5", got)
	}
	stats := db.VacuumStatsSnapshot()
	if stats.Passes < 1 || stats.Pruned != 5 {
		t.Fatalf("vacuum stats = %+v, want >=1 pass and 5 pruned", stats)
	}
	if got := asOfRows(t, db, "SELECT horizon_tick, pruned FROM ldv_stat_vacuum"); got == "" {
		t.Fatal("ldv_stat_vacuum returned no rows")
	}
}

func TestVacuumRetainKeepsWindowReadable(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (k INT, v INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 0)", ExecOptions{})
	mustExec(t, db, "UPDATE t SET v = 1 WHERE k = 1", ExecOptions{})
	inside := db.ClockNow()
	mustExec(t, db, "UPDATE t SET v = 2 WHERE k = 1", ExecOptions{})

	// Retain a window comfortably covering the last update: the tick at
	// `inside` stays readable and its dead predecessor survives.
	win := db.ClockNow() - inside + 2
	mustExec(t, db, fmt.Sprintf("VACUUM RETAIN %d", win), ExecOptions{})
	q := fmt.Sprintf("SELECT v FROM t WHERE k = 1 AS OF %d", inside)
	if got := asOfRows(t, db, q); got != "1" {
		t.Fatalf("AS OF inside retained window = %q, want 1", got)
	}
}

func TestVacuumClampedByOpenTransaction(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (k INT, v INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 0)", ExecOptions{})

	s := db.NewSession()
	defer s.Close()
	if _, err := s.Exec("BEGIN", ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	// Pin a snapshot, then churn and vacuum from outside.
	if _, err := s.Exec("SELECT v FROM t", ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "UPDATE t SET v = 1 WHERE k = 1", ExecOptions{})
	vr, err := db.VacuumTo(db.ClockNow())
	if err != nil {
		t.Fatal(err)
	}
	if vr.Pruned != 0 {
		t.Fatalf("vacuum pruned %d versions a live snapshot could read", vr.Pruned)
	}
	// The open transaction still reads its snapshot.
	res, err := s.Exec("SELECT v FROM t", ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(rowsToStrings(res), ";"); got != "0" {
		t.Fatalf("pinned snapshot read = %q, want 0", got)
	}
	if _, err := s.Exec("COMMIT", ExecOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestVacuumAndReenactRejectedInsideTransaction(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (k INT)")
	s := db.NewSession()
	defer s.Close()
	if _, err := s.Exec("BEGIN", ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("VACUUM", ExecOptions{}); err == nil {
		t.Fatal("VACUUM inside a transaction not rejected")
	}
	if _, err := s.Exec("REENACT TRANSACTION 1", ExecOptions{}); err == nil {
		t.Fatal("REENACT inside a transaction not rejected")
	}
}

// lastTxnID returns the highest recorded transaction id — the transaction
// committed most recently.
func lastTxnID(t *testing.T, db *DB) int64 {
	t.Helper()
	recs := db.txnHistSnapshot()
	if len(recs) == 0 {
		t.Fatal("no recorded transaction history")
	}
	return recs[len(recs)-1].TxnID
}

func TestReenactTransaction(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (k INT, v INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 10)", ExecOptions{})

	s := db.NewSession()
	defer s.Close()
	for _, sql := range []string{
		"BEGIN",
		"INSERT INTO t VALUES (2, 20)",
		"UPDATE t SET v = 21 WHERE k = 2",
		"SELECT v FROM t ORDER BY k",
		"COMMIT",
	} {
		if _, err := s.Exec(sql, ExecOptions{}); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	txid := lastTxnID(t, db)

	// Mutate head state so the replay provably reads history, not the
	// present.
	mustExec(t, db, "UPDATE t SET v = 999", ExecOptions{})

	res := mustExec(t, db, fmt.Sprintf("REENACT TRANSACTION %d", txid), ExecOptions{})
	if len(res.Rows) != 3 {
		t.Fatalf("reenacted %d statements, want 3", len(res.Rows))
	}
	for _, r := range res.Rows {
		if !r[5].Bool() {
			t.Fatalf("statement %s replay mismatch: rows=%s recorded=%s",
				r[0].String(), r[3].String(), r[4].String())
		}
	}
	// The replayed SELECT sees the transaction's own prior writes (the
	// updated k=2 row) layered over its snapshot — not today's 999s.
	if got := res.Rows[2][6].String(); got != "(10); (21)" {
		t.Fatalf("replayed SELECT result = %q, want (10); (21)", got)
	}
	// The UPDATE dry run re-derives its affected row and lineage.
	if got := res.Rows[1][3].Int(); got != 1 {
		t.Fatalf("UPDATE dry run touched %d rows, want 1", got)
	}
	if res.Rows[1][7].String() == "" {
		t.Fatal("UPDATE dry run recorded no lineage")
	}

	// Replays are repeatable and read-only.
	again := mustExec(t, db, fmt.Sprintf("REENACT TRANSACTION %d", txid), ExecOptions{})
	if a, b := res.Rows[2][6].String(), again.Rows[2][6].String(); a != b {
		t.Fatalf("replay not deterministic: %q then %q", a, b)
	}
}

func TestReenactWhatIfSubstitute(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (k INT, v INT)")
	s := db.NewSession()
	defer s.Close()
	for _, sql := range []string{
		"BEGIN",
		"INSERT INTO t VALUES (1, 10)",
		"SELECT v FROM t WHERE k = 1",
		"COMMIT",
	} {
		if _, err := s.Exec(sql, ExecOptions{}); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	txid := lastTxnID(t, db)

	sub := fmt.Sprintf(
		"REENACT TRANSACTION %d SUBSTITUTE 2 WITH 'SELECT k, v FROM t WHERE k = 1'", txid)
	res := mustExec(t, db, sub, ExecOptions{})
	if len(res.Rows) != 2 {
		t.Fatalf("reenacted %d statements, want 2", len(res.Rows))
	}
	if got := res.Rows[1][6].String(); got != "(1, 10)" {
		t.Fatalf("substituted SELECT result = %q, want (1, 10)", got)
	}

	// Out-of-range ordinals and unknown transactions fail loudly.
	bad := fmt.Sprintf("REENACT TRANSACTION %d SUBSTITUTE 9 WITH 'SELECT 1'", txid)
	if _, err := db.Exec(bad, ExecOptions{}); err == nil {
		t.Fatal("out-of-range SUBSTITUTE ordinal not rejected")
	}
	if _, err := db.Exec("REENACT TRANSACTION 999999", ExecOptions{}); err == nil {
		t.Fatal("REENACT of unknown transaction not rejected")
	}
}

func TestReenactRejectedBelowVacuumHorizon(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (k INT, v INT)")
	s := db.NewSession()
	defer s.Close()
	for _, sql := range []string{"BEGIN", "INSERT INTO t VALUES (1, 10)", "COMMIT"} {
		if _, err := s.Exec(sql, ExecOptions{}); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	txid := lastTxnID(t, db)
	mustExec(t, db, "UPDATE t SET v = 11", ExecOptions{})
	mustExec(t, db, "VACUUM", ExecOptions{})
	if _, err := db.Exec(fmt.Sprintf("REENACT TRANSACTION %d", txid), ExecOptions{}); err == nil {
		t.Fatal("REENACT below the vacuum horizon not rejected")
	}
}
