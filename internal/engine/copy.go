package engine

import (
	"fmt"
	"strconv"

	"ldv/internal/sqlval"
)

// Bulk transfer (COPY) — the "standard bulk copy and DB dump utilities" the
// paper's applications are assumed to use (§II). The engine converts
// between tables and text records; the server performs the file I/O so
// the access is attributed to the server process (and therefore lands in
// file-granularity packages).

// copyNull is the record representation of SQL NULL (PostgreSQL's \N).
const copyNull = `\N`

// CopyFrom bulk-loads text records into a table, coercing each field by
// the column's declared type. Rows are stamped like INSERTs (the calling
// process and statement own them).
func (db *DB) CopyFrom(table string, records [][]string, opts ExecOptions) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[table]
	if !ok {
		return nil, fmt.Errorf("table %q does not exist", table)
	}
	db.nextStmt++
	res := &Result{StmtID: db.nextStmt, Start: db.clock.Tick()}
	for ln, rec := range records {
		if len(rec) != len(t.Schema.Columns) {
			return nil, fmt.Errorf("COPY %s: record %d has %d fields, want %d",
				table, ln+1, len(rec), len(t.Schema.Columns))
		}
		vals := make([]sqlval.Value, len(rec))
		for i, field := range rec {
			v, err := parseCopyField(t.Schema.Columns[i], field)
			if err != nil {
				return nil, fmt.Errorf("COPY %s record %d: %w", table, ln+1, err)
			}
			vals[i] = v
		}
		db.nextRow++
		r := &storedRow{
			id:      db.nextRow,
			vals:    vals,
			version: db.clock.Tick(),
			proc:    opts.Proc,
			stmt:    res.StmtID,
		}
		if err := t.insertRow(r); err != nil {
			db.nextRow--
			return nil, fmt.Errorf("COPY %s record %d: %w", table, ln+1, err)
		}
		db.logUndo(db.undoInsert(table, r.id))
		res.WrittenRefs = append(res.WrittenRefs, r.ref(table))
		res.RowsAffected++
	}
	res.End = db.clock.Tick()
	return res, nil
}

// CopyTo dumps a table as text records in row order.
func (db *DB) CopyTo(table string, opts ExecOptions) ([][]string, *Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[table]
	if !ok {
		return nil, nil, fmt.Errorf("table %q does not exist", table)
	}
	db.nextStmt++
	res := &Result{StmtID: db.nextStmt, Start: db.clock.Tick()}
	records := make([][]string, 0, len(t.rows))
	for _, r := range t.rows {
		rec := make([]string, len(r.vals))
		for i, v := range r.vals {
			if v.IsNull() {
				rec[i] = copyNull
			} else {
				rec[i] = v.String()
			}
		}
		records = append(records, rec)
		if opts.WithLineage {
			ref := r.ref(table)
			res.ReadRefs = append(res.ReadRefs, ref)
			if res.TupleValues == nil {
				res.TupleValues = map[TupleRef][]sqlval.Value{}
			}
			res.TupleValues[ref] = append([]sqlval.Value(nil), r.vals...)
			r.usedBy = res.StmtID
		}
		res.RowsAffected++
	}
	res.End = db.clock.Tick()
	return records, res, nil
}

// parseCopyField coerces one text field to the column's type.
func parseCopyField(c Column, field string) (sqlval.Value, error) {
	if field == copyNull {
		return sqlval.Null, nil
	}
	switch c.Type {
	case sqlval.KindInt:
		n, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return sqlval.Null, fmt.Errorf("column %s: bad integer %q", c.Name, field)
		}
		return sqlval.NewInt(n), nil
	case sqlval.KindFloat:
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return sqlval.Null, fmt.Errorf("column %s: bad float %q", c.Name, field)
		}
		return sqlval.NewFloat(f), nil
	case sqlval.KindBool:
		switch field {
		case "true", "t", "1":
			return sqlval.NewBool(true), nil
		case "false", "f", "0":
			return sqlval.NewBool(false), nil
		}
		return sqlval.Null, fmt.Errorf("column %s: bad boolean %q", c.Name, field)
	case sqlval.KindDate:
		v, err := sqlval.ParseDate(field)
		if err != nil {
			return sqlval.Null, fmt.Errorf("column %s: %w", c.Name, err)
		}
		return v, nil
	default:
		return sqlval.NewString(field), nil
	}
}
