package engine

import (
	"fmt"
	"strconv"

	"ldv/internal/sqlval"
)

// Bulk transfer (COPY) — the "standard bulk copy and DB dump utilities" the
// paper's applications are assumed to use (§II). The engine converts
// between tables and text records; the server performs the file I/O so
// the access is attributed to the server process (and therefore lands in
// file-granularity packages).

// copyNull is the record representation of SQL NULL (PostgreSQL's \N).
const copyNull = `\N`

// CopyFrom bulk-loads text records into a table, coercing each field by
// the column's declared type. Rows are stamped like INSERTs (the calling
// process and statement own them); like DML, the load runs inside the
// session's open transaction or an implicit one, so a failed load leaves
// nothing behind and a concurrent snapshot never sees a torn load.
func (s *Session) CopyFrom(table string, records [][]string, opts ExecOptions) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db := s.db
	if db.ReadOnly() {
		return nil, fmt.Errorf("%w: COPY FROM rejected", ErrReadOnly)
	}
	t, err := db.lookupTable(table)
	if err != nil {
		return nil, err
	}
	txn := s.txn
	implicit := txn == nil
	if implicit {
		txn = db.beginTxn()
	}
	res := &Result{StmtID: db.newStmtID(), Start: db.clock.Tick()}
	mark := len(txn.undo)
	rmark := len(txn.redo)
	t.mu.Lock()
	err = func() error {
		for ln, rec := range records {
			if len(rec) != len(t.Schema.Columns) {
				return fmt.Errorf("COPY %s: record %d has %d fields, want %d",
					table, ln+1, len(rec), len(t.Schema.Columns))
			}
			vals := make([]sqlval.Value, len(rec))
			for i, field := range rec {
				v, err := parseCopyField(t.Schema.Columns[i], field)
				if err != nil {
					return fmt.Errorf("COPY %s record %d: %w", table, ln+1, err)
				}
				vals[i] = v
			}
			r := &storedRow{
				id:      db.newRowID(),
				vals:    vals,
				version: db.clock.Tick(),
				proc:    opts.Proc,
				stmt:    res.StmtID,
				txnID:   txn.id,
			}
			if err := t.insertRow(r); err != nil {
				return fmt.Errorf("COPY %s record %d: %w", table, ln+1, err)
			}
			txn.logUndo(t, undoInsert(t, r))
			txn.logRedo(redoInsertEntry(table, r))
			res.WrittenRefs = append(res.WrittenRefs, r.ref(table))
			res.RowsAffected++
		}
		return nil
	}()
	if err != nil {
		if uerr := txn.undoFrom(mark); uerr != nil {
			err = fmt.Errorf("%w (statement %v)", uerr, err)
		}
		txn.redo = txn.redo[:rmark]
	}
	t.mu.Unlock()
	if implicit {
		if err != nil {
			db.endTxn(txn.id)
			return nil, err
		}
		seq, cerr := db.commitTxn(txn, opts.Span, s.ws)
		if cerr != nil {
			return nil, cerr
		}
		res.CommitSeq = seq
	} else if err != nil {
		return nil, err
	}
	res.End = db.clock.Tick()
	return res, nil
}

// CopyTo dumps the snapshot-visible rows of a table as text records in row
// order (the session's transaction snapshot, or a fresh cut).
func (s *Session) CopyTo(table string, opts ExecOptions) ([][]string, *Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db := s.db
	t, err := db.lookupTable(table)
	if err != nil {
		return nil, nil, err
	}
	var snap snapshot
	if s.txn != nil {
		snap = s.txn.snap
	} else {
		snap = db.takeSnapshot(0)
	}
	res := &Result{StmtID: db.newStmtID(), Start: db.clock.Tick()}
	t.mu.RLock()
	records := make([][]string, 0, len(t.rows))
	for _, r := range t.rows {
		if !snap.visible(r) {
			continue
		}
		rec := make([]string, len(r.vals))
		for i, v := range r.vals {
			if v.IsNull() {
				rec[i] = copyNull
			} else {
				rec[i] = v.String()
			}
		}
		records = append(records, rec)
		if opts.WithLineage {
			ref := r.ref(table)
			res.ReadRefs = append(res.ReadRefs, ref)
			if res.TupleValues == nil {
				res.TupleValues = map[TupleRef][]sqlval.Value{}
			}
			res.TupleValues[ref] = append([]sqlval.Value(nil), r.vals...)
			r.usedBy.Store(res.StmtID)
		}
		res.RowsAffected++
	}
	t.mu.RUnlock()
	res.End = db.clock.Tick()
	return records, res, nil
}

// CopyFrom is the single-session compatibility wrapper.
func (db *DB) CopyFrom(table string, records [][]string, opts ExecOptions) (*Result, error) {
	return db.defaultSession().CopyFrom(table, records, opts)
}

// CopyTo is the single-session compatibility wrapper.
func (db *DB) CopyTo(table string, opts ExecOptions) ([][]string, *Result, error) {
	return db.defaultSession().CopyTo(table, opts)
}

// parseCopyField coerces one text field to the column's type.
func parseCopyField(c Column, field string) (sqlval.Value, error) {
	if field == copyNull {
		return sqlval.Null, nil
	}
	switch c.Type {
	case sqlval.KindInt:
		n, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return sqlval.Null, fmt.Errorf("column %s: bad integer %q", c.Name, field)
		}
		return sqlval.NewInt(n), nil
	case sqlval.KindFloat:
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return sqlval.Null, fmt.Errorf("column %s: bad float %q", c.Name, field)
		}
		return sqlval.NewFloat(f), nil
	case sqlval.KindBool:
		switch field {
		case "true", "t", "1":
			return sqlval.NewBool(true), nil
		case "false", "f", "0":
			return sqlval.NewBool(false), nil
		}
		return sqlval.Null, fmt.Errorf("column %s: bad boolean %q", c.Name, field)
	case sqlval.KindDate:
		v, err := sqlval.ParseDate(field)
		if err != nil {
			return sqlval.Null, fmt.Errorf("column %s: %w", c.Name, err)
		}
		return v, nil
	default:
		return sqlval.NewString(field), nil
	}
}
