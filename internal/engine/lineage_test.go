package engine

import (
	"testing"
)

// These tests pin down the Lineage semantics of §VI-A (Definition 7) that
// the LDV packaging decisions depend on.

func lineageTables(res *Result) map[string]int {
	counts := map[string]int{}
	for _, lin := range res.Lineage {
		for _, ref := range lin {
			counts[ref.Table]++
		}
	}
	return counts
}

func TestSelectLineageSimpleFilter(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE sales (id INT, price FLOAT)")
	mustExec(t, db, "INSERT INTO sales VALUES (1, 5), (2, 11), (3, 14)", ExecOptions{})
	// Example 4/5 of the paper: the SUM query's single result row depends on
	// exactly the tuples that passed the filter (t2 and t3).
	res := mustExec(t, db, "SELECT PROVENANCE SUM(price) AS ttl FROM sales WHERE price > 10", ExecOptions{})
	if res.Lineage == nil {
		t.Fatal("PROVENANCE query must return lineage")
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 25 {
		t.Fatalf("ttl = %v", rowsToStrings(res))
	}
	if len(res.Lineage[0]) != 2 {
		t.Fatalf("lineage size = %d, want 2", len(res.Lineage[0]))
	}
	// Verify the lineage refs point at the right tuples.
	for _, ref := range res.Lineage[0] {
		vals, ok := db.LookupVersion(ref)
		if !ok {
			t.Fatalf("lineage ref %v not found", ref)
		}
		if p := vals[1].Float(); p != 11 && p != 14 {
			t.Errorf("lineage includes tuple with price %v", p)
		}
	}
}

func TestPlainSelectHasNoLineage(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)", ExecOptions{})
	res := mustExec(t, db, "SELECT a FROM t", ExecOptions{})
	if res.Lineage != nil {
		t.Fatal("plain select must not compute lineage")
	}
}

func TestLineagePerRow(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2)", ExecOptions{})
	res := mustExec(t, db, "SELECT PROVENANCE a FROM t ORDER BY a", ExecOptions{})
	if len(res.Lineage) != 2 {
		t.Fatalf("lineage rows = %d", len(res.Lineage))
	}
	for i, lin := range res.Lineage {
		if len(lin) != 1 {
			t.Errorf("row %d lineage = %v, want singleton", i, lin)
		}
	}
	// Lineage must follow ORDER BY reordering: row i's lineage tuple has a=i+1.
	for i, lin := range res.Lineage {
		vals, _ := db.LookupVersion(lin[0])
		if vals[0].Int() != int64(i+1) {
			t.Errorf("row %d lineage points at a=%d", i, vals[0].Int())
		}
	}
}

func TestJoinLineageUnionsBothSides(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE a (x INT)", "CREATE TABLE b (y INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1)", ExecOptions{})
	mustExec(t, db, "INSERT INTO b VALUES (1)", ExecOptions{})
	res := mustExec(t, db, "SELECT PROVENANCE x, y FROM a, b WHERE a.x = b.y", ExecOptions{})
	if len(res.Lineage) != 1 {
		t.Fatal("one join row expected")
	}
	counts := lineageTables(res)
	if counts["a"] != 1 || counts["b"] != 1 {
		t.Fatalf("join lineage = %v", counts)
	}
}

func TestAggregateLineageUnionsGroupMembers(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (k INT, v INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 10), (1, 20), (2, 5)", ExecOptions{})
	res := mustExec(t, db, "SELECT PROVENANCE k, SUM(v) FROM t GROUP BY k ORDER BY k", ExecOptions{})
	if len(res.Lineage[0]) != 2 {
		t.Errorf("group k=1 lineage = %d, want 2", len(res.Lineage[0]))
	}
	if len(res.Lineage[1]) != 1 {
		t.Errorf("group k=2 lineage = %d, want 1", len(res.Lineage[1]))
	}
}

func TestGlobalCountLineageIncludesAllScanned(t *testing.T) {
	// Mirrors paper query Q3: count(*) over a join returns one row whose
	// lineage is every joined input tuple.
	db := newTestDB(t, "CREATE TABLE l (k INT)", "CREATE TABLE o (k INT)")
	mustExec(t, db, "INSERT INTO l VALUES (1), (1), (2)", ExecOptions{})
	mustExec(t, db, "INSERT INTO o VALUES (1), (2)", ExecOptions{})
	res := mustExec(t, db, "SELECT PROVENANCE count(*) FROM l, o WHERE l.k = o.k", ExecOptions{})
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("count = %d", res.Rows[0][0].Int())
	}
	counts := lineageTables(res)
	if counts["l"] != 3 || counts["o"] != 2 {
		t.Fatalf("lineage counts = %v", counts)
	}
}

func TestDistinctMergesLineage(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (1)", ExecOptions{})
	res := mustExec(t, db, "SELECT PROVENANCE DISTINCT a FROM t", ExecOptions{})
	if len(res.Rows) != 1 {
		t.Fatal("distinct must collapse")
	}
	if len(res.Lineage[0]) != 2 {
		t.Fatalf("distinct lineage = %d, want both duplicates", len(res.Lineage[0]))
	}
}

func TestFilteredOutTuplesNotInLineage(t *testing.T) {
	// The paper's Figure 1: tuple t2 is never read by any SQL statement and
	// must not appear in any lineage.
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)", ExecOptions{})
	res := mustExec(t, db, "SELECT PROVENANCE a FROM t WHERE a <> 2", ExecOptions{})
	for _, lin := range res.Lineage {
		for _, ref := range lin {
			vals, _ := db.LookupVersion(ref)
			if vals[0].Int() == 2 {
				t.Fatal("filtered tuple leaked into lineage")
			}
		}
	}
}

func TestLineageSurvivesVersioning(t *testing.T) {
	// After an update, a provenance query must reference the *new* version.
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)", ExecOptions{})
	upd := mustExec(t, db, "UPDATE t SET a = 2", ExecOptions{WithLineage: true})
	res := mustExec(t, db, "SELECT PROVENANCE a FROM t", ExecOptions{})
	ref := res.Lineage[0][0]
	if ref.Version != upd.WrittenRefs[0].Version {
		t.Fatalf("lineage version = %d, want post-update %d", ref.Version, upd.WrittenRefs[0].Version)
	}
}

func TestScanStampsUsedBy(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)", ExecOptions{})
	q := mustExec(t, db, "SELECT PROVENANCE a FROM t", ExecOptions{})
	res := mustExec(t, db, "SELECT prov_usedby FROM t", ExecOptions{})
	if res.Rows[0][0].Int() != q.StmtID {
		t.Fatalf("prov_usedby = %d, want %d", res.Rows[0][0].Int(), q.StmtID)
	}
}

func TestWithLineageOptionEquivalentToKeyword(t *testing.T) {
	db := newTestDB(t, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)", ExecOptions{})
	res := mustExec(t, db, "SELECT a FROM t", ExecOptions{WithLineage: true})
	if res.Lineage == nil || len(res.Lineage[0]) != 1 {
		t.Fatal("ExecOptions.WithLineage must enable lineage")
	}
}
