package engine

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path"
	"sync"
	"time"

	"ldv/internal/sqlval"
)

// Write-ahead logging. Every committed transaction appends one
// length-prefixed, CRC-checksummed record to <dir>/wal.log *before* the
// commit is acknowledged, so a crash between checkpoints loses nothing that
// a client was told succeeded. Records hold logical redo entries — the tuple
// versions a transaction produced and the end marks it placed — which
// Recover replays idempotently over the latest checkpoint.
//
// Commit durability uses group commit: the first committer of a quiet
// period becomes the flusher and writes every record that accumulated while
// the previous flush was in flight as one append (the fsync-equivalent unit
// on the FileSystem interface), so N concurrent sessions share O(1) flushes
// instead of paying one each.
//
// A failed flush is sticky: the log's on-disk state is unknown (a torn
// record may sit at the tail, and anything appended after it would be
// unreachable to recovery), so the WAL refuses all further appends until a
// restart re-opens it and truncates the tail. Commits in the failed batch
// roll back and report the error — exactly the "not acknowledged" outcome
// the crash matrix asserts on.

// WALFileName is the log's file name inside the data directory.
const WALFileName = "wal.log"

const walMagic = "LDVWAL1\n"

// walRecHeader is the per-record framing: a 4-byte little-endian payload
// length followed by a 4-byte CRC32 (IEEE) of the payload.
const walRecHeader = 8

// walMaxRecord bounds a record's declared payload size during decoding, so
// a corrupt length prefix cannot force a huge allocation.
const walMaxRecord = 1 << 28

// Redo entry kinds.
const (
	walInsert      byte = 1 // a produced tuple version
	walEnd         byte = 2 // an end mark (UPDATE's supersede or DELETE)
	walCreate      byte = 3 // CREATE TABLE
	walDrop        byte = 4 // DROP TABLE
	walCreateIndex byte = 5 // CREATE INDEX
	walDropIndex   byte = 6 // DROP INDEX
	walVacuum      byte = 7 // a vacuum pass's retention horizon
	walStmt        byte = 8 // one statement of a transaction's reenactment history
)

// redoEntry is one logical redo action. Insert entries capture the stored
// row's immutable fields at log time; end entries capture the end timestamp
// that was placed. walVacuum carries the pass's horizon in version. walStmt
// reuses the insert fields for a history statement: proc is the SQL text,
// table the statement kind, id the transaction's snapshot tick, version/end
// the statement's start/end ticks, stmt its row count, vals its bound
// parameters.
type redoEntry struct {
	kind    byte
	table   string
	id      RowID          // walInsert, walEnd, walStmt
	version uint64         // walInsert, walEnd, walStmt; walVacuum: the horizon
	end     uint64         // walEnd, walStmt: the end timestamp placed
	proc    string         // walInsert, walStmt
	stmt    int64          // walInsert, walStmt
	vals    []sqlval.Value // walInsert, walStmt
	schema  Schema         // walCreate
	idxName string         // walCreateIndex, walDropIndex
	idxCol  string         // walCreateIndex
	idxKind string         // walCreateIndex
}

// WAL is an append-only redo log over a FileSystem. It is safe for
// concurrent use; see the package comment above for the batching scheme.
type WAL struct {
	fs       FileSystem
	appender FileAppender // nil when fs cannot append; mirror is used instead
	path     string

	mu          sync.Mutex
	notFlushing *sync.Cond
	cur         *walBatch
	flushing    bool
	size        int64  // flushed bytes, including the magic header
	mirror      []byte // full log contents; maintained only without appender
	failed      error  // sticky flush failure

	// enqSeq numbers records as they enter a batch: the Nth record accepted
	// by this WAL instance has sequence N (1-based). Sequences are the
	// positions replication speaks in — a replica's applied-through point and
	// a snapshot's cut are both record sequences. They are process-local:
	// they restart from the scanned record count when the log is re-opened,
	// which is safe because a replica that reconnects re-bootstraps from a
	// fresh snapshot rather than resuming a position across primary restarts.
	enqSeq  uint64
	shipper func(firstSeq uint64, batch []byte)
}

// walBatch accumulates the records of one group-commit flush.
type walBatch struct {
	buf      []byte
	nrec     int
	firstSeq uint64 // sequence of the batch's first record
	done     chan struct{}
	err      error
}

// openWAL opens (or creates) the log file at dir/WALFileName, assuming its
// contents are exactly `data` (the valid prefix the caller just scanned).
func openWAL(fs FileSystem, dir string, data []byte) *WAL {
	w := &WAL{fs: fs, path: path.Join(dir, WALFileName), size: int64(len(data))}
	w.notFlushing = sync.NewCond(&w.mu)
	if len(data) > len(walMagic) {
		// Seed the record sequence past the records already in the log so
		// sequences keep rising within this process even across EnableWAL
		// re-opens of a non-empty log.
		w.enqSeq = uint64(len(SplitWALBatch(data[len(walMagic):])))
	}
	if a, ok := fs.(FileAppender); ok {
		w.appender = a
	} else {
		w.mirror = append([]byte(nil), data...)
	}
	return w
}

// Size returns the flushed length of the log in bytes (magic included).
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Seq returns the sequence number of the last record accepted for flushing.
// Captured under DB.commitMu held exclusively (when no commit can be between
// enqueue and acknowledgment), it is also the last *durable* sequence — the
// property ReplicationSnapshot's cut relies on.
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.enqSeq
}

// SetShipper installs a hook invoked after every successful flush with the
// batch's raw framed bytes and the sequence of its first record. Calls are
// serialized and arrive in sequence order. The hook runs with the WAL's
// internal lock held: it must be quick (hand the bytes to a queue) and must
// never call back into the WAL.
func (w *WAL) SetShipper(fn func(firstSeq uint64, batch []byte)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.shipper = fn
}

// Commit appends one framed record for the payload and returns once the
// batch containing it has been flushed — the durability point. The returned
// sequence number is the record's position in the log's logical record
// stream (replication's coordinate system); it is 0 only on error.
func (w *WAL) Commit(payload []byte) (uint64, error) {
	rec := make([]byte, 0, walRecHeader+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	rec = append(rec, payload...)

	w.mu.Lock()
	if w.failed != nil {
		w.mu.Unlock()
		return 0, w.failed
	}
	w.enqSeq++
	seq := w.enqSeq
	if w.cur == nil {
		w.cur = &walBatch{done: make(chan struct{}), firstSeq: seq}
	}
	b := w.cur
	b.buf = append(b.buf, rec...)
	b.nrec++
	if !w.flushing {
		w.flushing = true
		w.mu.Unlock()
		w.flushLoop()
	} else {
		w.mu.Unlock()
	}
	<-b.done
	if b.err != nil {
		return 0, b.err
	}
	return seq, nil
}

// flushLoop drains pending batches. It is entered by the committer that
// found no flush in progress and exits when no batch is pending, waking
// anyone waiting for a quiet log (truncate).
func (w *WAL) flushLoop() {
	w.mu.Lock()
	for w.cur != nil && w.failed == nil {
		b := w.cur
		w.cur = nil
		w.mu.Unlock()

		t0 := time.Now()
		err := w.write(b.buf)
		hWALFlush.Observe(time.Since(t0))
		mWALFlushes.Inc()

		w.mu.Lock()
		if err == nil {
			w.size += int64(len(b.buf))
			mWALAppends.Add(int64(b.nrec))
			mWALBytes.Add(int64(len(b.buf)))
			if w.shipper != nil {
				w.shipper(b.firstSeq, b.buf)
			}
		} else {
			w.failed = fmt.Errorf("wal flush: %w", err)
		}
		b.err = err
		close(b.done)
	}
	if b := w.cur; b != nil { // failed while batches kept arriving
		w.cur = nil
		b.err = w.failed
		close(b.done)
	}
	w.flushing = false
	w.notFlushing.Broadcast()
	w.mu.Unlock()
}

// write persists one batch: a single append when the filesystem supports
// it, otherwise an atomic whole-file rewrite of the mirrored contents.
func (w *WAL) write(buf []byte) error {
	if w.appender != nil {
		return w.appender.AppendFile(w.path, buf)
	}
	next := make([]byte, 0, len(w.mirror)+len(buf))
	next = append(next, w.mirror...)
	next = append(next, buf...)
	if err := w.fs.WriteFile(w.path, next); err != nil {
		return err
	}
	w.mirror = next
	return nil
}

// truncateTo drops every byte before cut (an absolute offset captured while
// commits were excluded), keeping the magic header and the tail. Called by
// Checkpoint after the table files superseding those records are durable.
func (w *WAL) truncateTo(cut int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.flushing {
		w.notFlushing.Wait()
	}
	if w.failed != nil {
		return w.failed
	}
	if cut <= int64(len(walMagic)) {
		return nil // nothing before the cut but the header
	}
	var data []byte
	if w.appender == nil {
		data = w.mirror
	} else {
		d, err := w.fs.ReadFile(w.path)
		if err != nil {
			return fmt.Errorf("wal truncate: %w", err)
		}
		data = d
	}
	if cut > int64(len(data)) {
		cut = int64(len(data))
	}
	next := make([]byte, 0, len(walMagic)+len(data)-int(cut))
	next = append(next, walMagic...)
	next = append(next, data[cut:]...)
	if err := w.fs.WriteFile(w.path, next); err != nil {
		return fmt.Errorf("wal truncate: %w", err)
	}
	w.size = int64(len(next))
	if w.appender == nil {
		w.mirror = next
	}
	mWALTruncations.Inc()
	return nil
}

// ---- record encoding ----

// encodeWALTxn serializes a committed transaction's redo entries into one
// record payload: varint txn id, entry count, then the entries.
func encodeWALTxn(txnID int64, redo []redoEntry) []byte {
	var buf []byte
	buf = binary.AppendVarint(buf, txnID)
	buf = binary.AppendUvarint(buf, uint64(len(redo)))
	for _, e := range redo {
		buf = append(buf, e.kind)
		buf = appendString(buf, e.table)
		switch e.kind {
		case walInsert:
			buf = binary.AppendUvarint(buf, uint64(e.id))
			buf = binary.AppendUvarint(buf, e.version)
			buf = appendString(buf, e.proc)
			buf = binary.AppendVarint(buf, e.stmt)
			buf = sqlval.EncodeRow(buf, e.vals)
		case walEnd:
			buf = binary.AppendUvarint(buf, uint64(e.id))
			buf = binary.AppendUvarint(buf, e.version)
			buf = binary.AppendUvarint(buf, e.end)
		case walCreate:
			buf = binary.AppendUvarint(buf, uint64(len(e.schema.Columns)))
			for _, c := range e.schema.Columns {
				buf = appendString(buf, c.Name)
				buf = append(buf, byte(c.Type))
				if c.PrimaryKey {
					buf = append(buf, 1)
				} else {
					buf = append(buf, 0)
				}
			}
		case walDrop:
		case walCreateIndex:
			buf = appendString(buf, e.idxName)
			buf = appendString(buf, e.idxCol)
			buf = appendString(buf, e.idxKind)
		case walDropIndex:
			buf = appendString(buf, e.idxName)
		case walVacuum:
			buf = binary.AppendUvarint(buf, e.version)
		case walStmt:
			buf = binary.AppendUvarint(buf, uint64(e.id))
			buf = binary.AppendUvarint(buf, e.version)
			buf = binary.AppendUvarint(buf, e.end)
			buf = appendString(buf, e.proc)
			buf = binary.AppendVarint(buf, e.stmt)
			buf = sqlval.EncodeRow(buf, e.vals)
		}
	}
	return buf
}

// decodeWALTxn parses one record payload. It is the inverse of
// encodeWALTxn and must never panic on corrupt input (fuzzed).
func decodeWALTxn(payload []byte) (int64, []redoEntry, error) {
	txnID, n := binary.Varint(payload)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wal record: bad txn id")
	}
	b := payload[n:]
	count, n := binary.Uvarint(b)
	if n <= 0 || count > uint64(len(b)) {
		return 0, nil, fmt.Errorf("wal record: bad entry count")
	}
	b = b[n:]
	entries := make([]redoEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(b) == 0 {
			return 0, nil, fmt.Errorf("wal record: truncated entry")
		}
		e := redoEntry{kind: b[0]}
		b = b[1:]
		var err error
		e.table, b, err = readString(b)
		if err != nil {
			return 0, nil, err
		}
		switch e.kind {
		case walInsert:
			id, n := binary.Uvarint(b)
			if n <= 0 {
				return 0, nil, fmt.Errorf("wal record: bad row id")
			}
			b = b[n:]
			e.id = RowID(id)
			e.version, n = binary.Uvarint(b)
			if n <= 0 {
				return 0, nil, fmt.Errorf("wal record: bad version")
			}
			b = b[n:]
			e.proc, b, err = readString(b)
			if err != nil {
				return 0, nil, err
			}
			e.stmt, n = binary.Varint(b)
			if n <= 0 {
				return 0, nil, fmt.Errorf("wal record: bad stmt id")
			}
			b = b[n:]
			vals, used, err := sqlval.DecodeRow(b)
			if err != nil {
				return 0, nil, err
			}
			e.vals = vals
			b = b[used:]
		case walEnd:
			id, n := binary.Uvarint(b)
			if n <= 0 {
				return 0, nil, fmt.Errorf("wal record: bad row id")
			}
			b = b[n:]
			e.id = RowID(id)
			e.version, n = binary.Uvarint(b)
			if n <= 0 {
				return 0, nil, fmt.Errorf("wal record: bad version")
			}
			b = b[n:]
			e.end, n = binary.Uvarint(b)
			if n <= 0 {
				return 0, nil, fmt.Errorf("wal record: bad end timestamp")
			}
			b = b[n:]
		case walCreate:
			ncols, n := binary.Uvarint(b)
			if n <= 0 || ncols > uint64(len(b))+1 {
				return 0, nil, fmt.Errorf("wal record: bad column count")
			}
			b = b[n:]
			for c := uint64(0); c < ncols; c++ {
				var cname string
				cname, b, err = readString(b)
				if err != nil {
					return 0, nil, err
				}
				if len(b) < 2 {
					return 0, nil, fmt.Errorf("wal record: truncated column def")
				}
				e.schema.Columns = append(e.schema.Columns, Column{
					Name: cname, Type: sqlval.Kind(b[0]), PrimaryKey: b[1] == 1,
				})
				b = b[2:]
			}
		case walDrop:
		case walCreateIndex:
			e.idxName, b, err = readString(b)
			if err != nil {
				return 0, nil, err
			}
			e.idxCol, b, err = readString(b)
			if err != nil {
				return 0, nil, err
			}
			e.idxKind, b, err = readString(b)
			if err != nil {
				return 0, nil, err
			}
		case walDropIndex:
			e.idxName, b, err = readString(b)
			if err != nil {
				return 0, nil, err
			}
		case walVacuum:
			e.version, n = binary.Uvarint(b)
			if n <= 0 {
				return 0, nil, fmt.Errorf("wal record: bad vacuum horizon")
			}
			b = b[n:]
		case walStmt:
			id, n := binary.Uvarint(b)
			if n <= 0 {
				return 0, nil, fmt.Errorf("wal record: bad snapshot tick")
			}
			b = b[n:]
			e.id = RowID(id)
			e.version, n = binary.Uvarint(b)
			if n <= 0 {
				return 0, nil, fmt.Errorf("wal record: bad stmt start")
			}
			b = b[n:]
			e.end, n = binary.Uvarint(b)
			if n <= 0 {
				return 0, nil, fmt.Errorf("wal record: bad stmt end")
			}
			b = b[n:]
			e.proc, b, err = readString(b)
			if err != nil {
				return 0, nil, err
			}
			e.stmt, n = binary.Varint(b)
			if n <= 0 {
				return 0, nil, fmt.Errorf("wal record: bad stmt rows")
			}
			b = b[n:]
			vals, used, err := sqlval.DecodeRow(b)
			if err != nil {
				return 0, nil, err
			}
			e.vals = vals
			b = b[used:]
		default:
			return 0, nil, fmt.Errorf("wal record: unknown entry kind %d", e.kind)
		}
		entries = append(entries, e)
	}
	if len(b) != 0 {
		return 0, nil, fmt.Errorf("wal record: %d trailing bytes", len(b))
	}
	return txnID, entries, nil
}

// SplitWALBatch splits a flushed group-commit batch (the bytes a shipper
// hook receives: concatenated framed records, no file magic) into the
// individual record payloads, one per committed transaction. Malformed
// framing terminates the walk — on shipper-produced input that never
// happens, but the decoder stays total for defense in depth.
func SplitWALBatch(batch []byte) [][]byte {
	var recs [][]byte
	for len(batch) >= walRecHeader {
		l := binary.LittleEndian.Uint32(batch)
		if l > walMaxRecord || int(l) > len(batch)-walRecHeader {
			break
		}
		recs = append(recs, batch[walRecHeader:walRecHeader+int(l)])
		batch = batch[walRecHeader+int(l):]
	}
	return recs
}

// scanWAL walks the framed records of a log image, calling fn for each
// record that frames and checksums correctly, and returns the byte length
// of the valid prefix. Decoding stops at the first torn or corrupt record:
// everything from there on is the un-acknowledged tail a crash may leave.
func scanWAL(data []byte, fn func(payload []byte) error) (int64, error) {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return 0, fmt.Errorf("bad wal magic")
	}
	off := int64(len(walMagic))
	b := data[len(walMagic):]
	for len(b) >= walRecHeader {
		l := binary.LittleEndian.Uint32(b)
		sum := binary.LittleEndian.Uint32(b[4:])
		if l > walMaxRecord || int(l) > len(b)-walRecHeader {
			break // torn tail: length prefix promises more than exists
		}
		payload := b[walRecHeader : walRecHeader+int(l)]
		if crc32.ChecksumIEEE(payload) != sum {
			break // torn tail: partially written payload
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, err
			}
		}
		off += walRecHeader + int64(l)
		b = b[walRecHeader+int(l):]
	}
	return off, nil
}
