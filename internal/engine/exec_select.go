package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"ldv/internal/plan"
	"ldv/internal/sqlparse"
	"ldv/internal/sqlval"
)

// relation is an intermediate executor result: a tuple layout plus the
// materialized tuples.
type relation struct {
	env    env
	tuples []tuple
}

// execSelect plans and runs a SELECT, filling res.
func (ec *stmtCtx) execSelect(s *sqlparse.Select, opts ExecOptions, res *Result) error {
	withLineage := opts.WithLineage || s.Provenance
	// Resolve uncorrelated subqueries up front; their lineage joins every
	// result row's lineage below. Subqueries run in the outer statement's
	// context: same snapshot, same already-locked table footprint.
	var subState *subqueryState
	if selectHasSubqueries(s) {
		subState = &subqueryState{ec: ec, opts: ExecOptions{Proc: opts.Proc, WithLineage: withLineage}, stmtID: res.StmtID}
		ns, _, err := ec.resolveSelectSubqueries(s, subState)
		if err != nil {
			return err
		}
		s = ns
	}
	// collect records the scanned storedRow per tuple ref; values are
	// copied out only for refs that survive into the final Lineage (rows
	// cannot change mid-statement, so the references stay valid).
	var collect map[TupleRef]*storedRow
	if withLineage {
		collect = map[TupleRef]*storedRow{}
	}
	rel, err := ec.runSelect(s, withLineage, res.StmtID, collect)
	if err != nil {
		return err
	}
	var cols []string
	var rows [][]sqlval.Value
	var lineage [][]TupleRef
	if err := ec.ops.execEst("project", "", ec.sel.estProject, func() (int, error) {
		var perr error
		cols, rows, lineage, perr = project(s, rel, withLineage, ec.ops, ec.sel)
		return len(rows), perr
	}); err != nil {
		return err
	}
	res.Columns = cols
	res.Rows = rows
	if withLineage {
		t0 := time.Now()
		defer func() { hLineage.Observe(time.Since(t0)) }()
		if subState != nil && len(subState.refs) > 0 {
			for i := range lineage {
				lineage[i] = mergeLineage(lineage[i], subState.refs)
			}
		}
		res.Lineage = lineage
		// Keep values only for tuple versions that actually appear in some
		// result row's Lineage (the provenance tuples Perm would return).
		used := map[TupleRef]bool{}
		for _, lin := range lineage {
			for _, ref := range lin {
				used[ref] = true
			}
		}
		res.TupleValues = map[TupleRef][]sqlval.Value{}
		for ref := range used {
			if r, ok := collect[ref]; ok {
				res.TupleValues[ref] = append([]sqlval.Value(nil), r.vals...)
			}
		}
		if subState != nil {
			for ref, vals := range subState.values {
				res.TupleValues[ref] = vals
			}
		}
	}
	return nil
}

// selPlan carries a SELECT's plan tree through execution: the relational
// access subtree the executor walks, plus the planner estimates for the
// projection-side stages (−1 when the plan has no such stage), which
// EXPLAIN ANALYZE reports next to the actual row counts.
type selPlan struct {
	tree                                               *plan.Tree
	access                                             plan.Node
	estAgg, estDistinct, estSort, estLimit, estProject float64
}

// newSelPlan unwraps the projection chain the planner stacked on top of the
// relational subtree (project / limit / sort / distinct / aggregate, in
// that nesting order) and records each stage's estimate.
func newSelPlan(tree *plan.Tree) *selPlan {
	sp := &selPlan{tree: tree, estAgg: -1, estDistinct: -1, estSort: -1, estLimit: -1, estProject: -1}
	n := tree.Root
	if p, ok := n.(*plan.ProjectNode); ok {
		sp.estProject = p.Est
		n = p.Input
	}
	if l, ok := n.(*plan.LimitNode); ok {
		sp.estLimit = l.Est
		n = l.Input
	}
	if s, ok := n.(*plan.SortNode); ok {
		sp.estSort = s.Est
		n = s.Input
	}
	if d, ok := n.(*plan.DistinctNode); ok {
		sp.estDistinct = d.Est
		n = d.Input
	}
	if a, ok := n.(*plan.AggregateNode); ok {
		sp.estAgg = a.Est
		n = a.Input
	}
	sp.access = n
	return sp
}

// runSelect plans and executes the FROM/WHERE/GROUP BY portion, returning
// the pre-projection relation (post-aggregation for aggregate queries, with
// aggregate values stashed per tuple via aggRelation). The plan is kept on
// ec.sel so the projection stages can report their estimates.
func (ec *stmtCtx) runSelect(s *sqlparse.Select, withLineage bool, stmtID int64, collect map[TupleRef]*storedRow) (*aggRelation, error) {
	if len(s.From) == 0 {
		// Table-less SELECT (e.g. SELECT 1+1): a single empty tuple.
		ec.sel = newSelPlan(plan.PlanSelect(stmtCatalog{ec}, s))
		return &aggRelation{rel: relation{env: env{params: ec.params}, tuples: []tuple{{}}}}, nil
	}

	refs := append([]sqlparse.TableRef(nil), s.From...)
	for _, j := range s.Joins {
		refs = append(refs, j.Table)
	}
	seen := map[string]bool{}
	for _, r := range refs {
		name := r.EffectiveName()
		if seen[name] {
			return nil, fmt.Errorf("duplicate table name or alias %q", name)
		}
		seen[name] = true
	}

	sp := newSelPlan(ec.selectPlan(s))
	ec.sel = sp
	cur, err := ec.execAccess(sp.access, withLineage, stmtID, collect)
	if err != nil {
		return nil, err
	}
	if sp.tree.Reordered {
		// The greedy join order built the tuple layout in cost order;
		// restore the syntactic FROM order so SELECT * stays stable.
		cur = reorderRelation(cur, refs)
	}

	var ar *aggRelation
	if err := ec.ops.execEst("aggregate", exprListText(s.GroupBy), sp.estAgg, func() (int, error) {
		var aerr error
		ar, aerr = aggregate(s, cur)
		if aerr != nil {
			return 0, aerr
		}
		return len(ar.rel.tuples), nil
	}); err != nil {
		return nil, err
	}
	if !ar.aggregate {
		// Plain query: the aggregate stage was a pass-through, not an operator.
		ec.ops.dropLast()
	}
	return ar, nil
}

// execAccess executes a relational plan subtree (scans, index scans,
// filters, hash joins), materializing its relation.
func (ec *stmtCtx) execAccess(n plan.Node, withLineage bool, stmtID int64, collect map[TupleRef]*storedRow) (relation, error) {
	switch node := n.(type) {
	case *plan.ScanNode:
		var rel relation
		err := ec.ops.execEst("scan", node.Detail(), node.Est, func() (int, error) {
			var serr error
			rel, serr = ec.scanTable(planTableRef(node.Table, node.As), withLineage, stmtID, collect)
			return len(rel.tuples), serr
		})
		return rel, err
	case *plan.IndexScanNode:
		var rel relation
		err := ec.ops.execEst("index_scan", node.Detail(), node.Est, func() (int, error) {
			var serr error
			rel, serr = ec.scanIndex(node, withLineage, stmtID, collect)
			return len(rel.tuples), serr
		})
		return rel, err
	case *plan.FilterNode:
		rel, err := ec.execAccess(node.Input, withLineage, stmtID, collect)
		if err != nil {
			return relation{}, err
		}
		if !node.Resolved {
			// The planner could not prove these conjuncts bind; validate
			// them now so semantic errors surface even on empty inputs.
			for _, c := range node.Conjuncts {
				var aggs []*sqlparse.FuncExpr
				collectAggregates(c, &aggs)
				if len(aggs) > 0 {
					return relation{}, fmt.Errorf("aggregates are not allowed in WHERE")
				}
				var crs []*sqlparse.ColumnRef
				columnRefs(c, &crs)
				for _, r := range crs {
					if _, err := rel.env.resolve(r); err != nil {
						return relation{}, err
					}
				}
			}
		}
		out := rel
		_ = ec.ops.execEst("filter", node.Detail(), node.Est, func() (int, error) {
			out = filter(rel, node.Conjuncts)
			return len(out.tuples), nil
		})
		return out, nil
	case *plan.HashJoinNode:
		left, err := ec.execAccess(node.Left, withLineage, stmtID, collect)
		if err != nil {
			return relation{}, err
		}
		right, err := ec.execAccess(node.Right, withLineage, stmtID, collect)
		if err != nil {
			return relation{}, err
		}
		var out relation
		err = ec.ops.execEst("hash_join", node.Detail(), node.Est, func() (int, error) {
			var jerr error
			out, jerr = hashJoin(left, right, node.LeftKeys, node.RightKeys)
			return len(out.tuples), jerr
		})
		return out, err
	}
	return relation{}, fmt.Errorf("unsupported plan node %T", n)
}

// planTableRef reconstructs the parser-level table reference a plan leaf
// was built from.
func planTableRef(table, as string) sqlparse.TableRef {
	ref := sqlparse.TableRef{Name: table}
	if as != table {
		ref.Alias = as
	}
	return ref
}

// reorderRelation permutes a joined relation's per-leaf binding blocks back
// to the syntactic FROM order. Each leaf contributed one contiguous block
// of bindings qualified by its effective name, so the permutation moves
// whole blocks.
func reorderRelation(rel relation, refs []sqlparse.TableRef) relation {
	type block struct{ start, end int }
	blocks := map[string]block{}
	for i := 0; i < len(rel.env.bindings); {
		j := i
		name := rel.env.bindings[i].table
		for j < len(rel.env.bindings) && rel.env.bindings[j].table == name {
			j++
		}
		blocks[name] = block{start: i, end: j}
		i = j
	}
	perm := make([]int, 0, len(rel.env.bindings))
	bindings := make([]binding, 0, len(rel.env.bindings))
	for _, r := range refs {
		b, ok := blocks[r.EffectiveName()]
		if !ok {
			return rel
		}
		for i := b.start; i < b.end; i++ {
			perm = append(perm, i)
			bindings = append(bindings, rel.env.bindings[i])
		}
	}
	if len(perm) != len(rel.env.bindings) {
		return rel
	}
	out := relation{env: env{bindings: bindings, params: rel.env.params}, tuples: make([]tuple, len(rel.tuples))}
	for ti, t := range rel.tuples {
		vals := make([]sqlval.Value, len(perm))
		for i, p := range perm {
			vals[i] = t.vals[p]
		}
		out.tuples[ti] = tuple{vals: vals, lineage: t.lineage}
	}
	return out
}

func filter(rel relation, conjuncts []sqlparse.Expr) relation {
	out := rel.tuples[:0:0]
	for _, t := range rel.tuples {
		keep := true
		for _, c := range conjuncts {
			v, err := evalExpr(c, &rel.env, t.vals, nil)
			if err != nil || !isTrue(v) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, t)
		}
	}
	rel.tuples = out
	return rel
}

// scanTable materializes the snapshot-visible versions of a table as a
// relation. The tuple layout is the table's columns followed by the four
// hidden provenance attributes, all qualified by the effective (aliased)
// table name. In lineage mode each tuple starts with itself as lineage and
// the scan stamps prov_usedby — the versioning write the paper charges to
// audit overhead (§IX-B). The stamp is atomic because the scan holds only
// the table's read lock.
func (ec *stmtCtx) scanTable(ref sqlparse.TableRef, withLineage bool, stmtID int64, collect map[TupleRef]*storedRow) (relation, error) {
	t, err := ec.table(ref.Name)
	if err != nil {
		// Unknown names fall back to the system-view registry: virtual
		// tables never appear in the lock footprint (lockTables skips
		// unresolved names) and take no locks of their own.
		if vt := ec.db.virtualTable(ref.Name); vt != nil {
			return ec.scanVirtual(vt, ref), nil
		}
		return relation{}, err
	}
	name := ref.EffectiveName()
	rel := relation{env: env{params: ec.params}}
	for _, c := range t.Schema.Columns {
		rel.env.bindings = append(rel.env.bindings, binding{table: name, name: c.Name})
	}
	for _, pc := range []string{ColProvRowID, ColProvV, ColProvP, ColProvUsedBy} {
		rel.env.bindings = append(rel.env.bindings, binding{table: name, name: pc})
	}
	ncols := len(t.Schema.Columns)
	mRowsScanned.Add(int64(len(t.rows)))
	rel.tuples = make([]tuple, 0, len(t.rows))
	for _, r := range t.rows {
		if !ec.snap.visible(r) {
			continue
		}
		vals := make([]sqlval.Value, ncols+4)
		copy(vals, r.vals)
		if withLineage {
			r.usedBy.Store(stmtID)
			if collect != nil {
				collect[r.ref(t.Name)] = r
			}
		}
		vals[ncols] = sqlval.NewInt(int64(r.id))
		vals[ncols+1] = sqlval.NewInt(int64(r.version))
		vals[ncols+2] = sqlval.NewString(r.proc)
		vals[ncols+3] = sqlval.NewInt(r.usedBy.Load())
		tp := tuple{vals: vals}
		if withLineage {
			tp.lineage = []TupleRef{r.ref(t.Name)}
		}
		rel.tuples = append(rel.tuples, tp)
	}
	return rel, nil
}

// scanIndex materializes the snapshot-visible versions reached through a
// secondary-index predicate. The tuple layout matches scanTable exactly;
// only the candidate set differs — the index narrows it to the buckets
// matching the predicate, and the residual filter above re-checks every
// pushed conjunct, so the result is a full scan restricted to the matching
// keys.
func (ec *stmtCtx) scanIndex(node *plan.IndexScanNode, withLineage bool, stmtID int64, collect map[TupleRef]*storedRow) (relation, error) {
	t, err := ec.table(node.Table)
	if err != nil {
		return relation{}, err
	}
	ix := t.findIndex(node.Index)
	if ix == nil {
		// The index vanished between planning and execution — impossible
		// while the statement holds the table lock, but degrade safely.
		return ec.scanTable(planTableRef(node.Table, node.As), withLineage, stmtID, collect)
	}
	name := node.As
	rel := relation{env: env{params: ec.params}}
	for _, c := range t.Schema.Columns {
		rel.env.bindings = append(rel.env.bindings, binding{table: name, name: c.Name})
	}
	for _, pc := range []string{ColProvRowID, ColProvV, ColProvP, ColProvUsedBy} {
		rel.env.bindings = append(rel.env.bindings, binding{table: name, name: pc})
	}
	ncols := len(t.Schema.Columns)
	cand := indexCandidates(ix, node, ec.params)
	ix.scans.Add(1)
	mRowsScanned.Add(int64(len(cand)))
	rel.tuples = make([]tuple, 0, len(cand))
	for _, r := range cand {
		if !ec.snap.visible(r) {
			continue
		}
		vals := make([]sqlval.Value, ncols+4)
		copy(vals, r.vals)
		if withLineage {
			r.usedBy.Store(stmtID)
			if collect != nil {
				collect[r.ref(t.Name)] = r
			}
		}
		vals[ncols] = sqlval.NewInt(int64(r.id))
		vals[ncols+1] = sqlval.NewInt(int64(r.version))
		vals[ncols+2] = sqlval.NewString(r.proc)
		vals[ncols+3] = sqlval.NewInt(r.usedBy.Load())
		tp := tuple{vals: vals}
		if withLineage {
			tp.lineage = []TupleRef{r.ref(t.Name)}
		}
		rel.tuples = append(rel.tuples, tp)
	}
	return rel, nil
}

// hashJoin joins two relations on the given key expression lists. With no
// keys it degrades to a cross join.
func hashJoin(left, right relation, leftKeys, rightKeys []sqlparse.Expr) (relation, error) {
	out := relation{}
	out.env.bindings = append(append([]binding(nil), left.env.bindings...), right.env.bindings...)
	out.env.params = left.env.params

	combine := func(l, r tuple) tuple {
		vals := make([]sqlval.Value, 0, len(l.vals)+len(r.vals))
		vals = append(vals, l.vals...)
		vals = append(vals, r.vals...)
		return tuple{vals: vals, lineage: mergeLineage(l.lineage, r.lineage)}
	}

	if len(leftKeys) == 0 {
		for _, l := range left.tuples {
			for _, r := range right.tuples {
				out.tuples = append(out.tuples, combine(l, r))
			}
		}
		return out, nil
	}

	keyOf := func(t tuple, en *env, keys []sqlparse.Expr) (string, bool, error) {
		var sb strings.Builder
		for _, k := range keys {
			v, err := evalExpr(k, en, t.vals, nil)
			if err != nil {
				return "", false, err
			}
			if v.IsNull() {
				return "", false, nil // NULL never joins
			}
			sb.WriteString(v.GroupKey())
			sb.WriteByte(0)
		}
		return sb.String(), true, nil
	}

	// Build on the smaller side.
	buildRight := len(right.tuples) <= len(left.tuples)
	build, probe := right, left
	buildKeys, probeKeys := rightKeys, leftKeys
	if !buildRight {
		build, probe = left, right
		buildKeys, probeKeys = leftKeys, rightKeys
	}
	table := make(map[string][]int, len(build.tuples))
	for i, t := range build.tuples {
		k, ok, err := keyOf(t, &build.env, buildKeys)
		if err != nil {
			return relation{}, err
		}
		if ok {
			table[k] = append(table[k], i)
		}
	}
	for _, p := range probe.tuples {
		k, ok, err := keyOf(p, &probe.env, probeKeys)
		if err != nil {
			return relation{}, err
		}
		if !ok {
			continue
		}
		for _, bi := range table[k] {
			b := build.tuples[bi]
			if buildRight {
				out.tuples = append(out.tuples, combine(p, b))
			} else {
				out.tuples = append(out.tuples, combine(b, p))
			}
		}
	}
	return out, nil
}

// aggRelation carries the relation plus, for aggregate queries, the
// per-tuple aggregate values (keyed by the FuncExpr node).
type aggRelation struct {
	rel       relation
	aggs      []map[sqlparse.Expr]sqlval.Value // parallel to rel.tuples; nil for plain queries
	aggregate bool
}

// aggregate applies GROUP BY / aggregate semantics if the query needs them.
func aggregate(s *sqlparse.Select, rel relation) (*aggRelation, error) {
	var aggCalls []*sqlparse.FuncExpr
	for _, it := range s.Items {
		if it.Expr != nil {
			collectAggregates(it.Expr, &aggCalls)
		}
	}
	for _, o := range s.OrderBy {
		collectAggregates(o.Expr, &aggCalls)
	}
	if s.Having != nil {
		collectAggregates(s.Having, &aggCalls)
	}
	if len(aggCalls) == 0 && len(s.GroupBy) == 0 {
		return &aggRelation{rel: rel}, nil
	}
	for _, c := range aggCalls {
		if !sqlparse.AggregateFuncs[c.Name] {
			return nil, fmt.Errorf("unknown function %s", c.Name)
		}
	}

	type group struct {
		rep     tuple // representative tuple (first member)
		lineage []TupleRef
		linSeen map[TupleRef]bool
		accs    []*aggAcc
	}
	newAccs := func() []*aggAcc {
		accs := make([]*aggAcc, len(aggCalls))
		for i, c := range aggCalls {
			accs[i] = newAggAcc(c)
		}
		return accs
	}

	groups := map[string]*group{}
	var order []string
	for _, t := range rel.tuples {
		var sb strings.Builder
		for _, g := range s.GroupBy {
			v, err := evalExpr(g, &rel.env, t.vals, nil)
			if err != nil {
				return nil, err
			}
			sb.WriteString(v.GroupKey())
			sb.WriteByte(0)
		}
		key := sb.String()
		grp, ok := groups[key]
		if !ok {
			grp = &group{rep: t, accs: newAccs(), linSeen: map[TupleRef]bool{}}
			groups[key] = grp
			order = append(order, key)
		}
		// Accumulate lineage with a per-group set: repeated mergeLineage
		// calls would be quadratic in the group size (fatal for global
		// aggregates like Q3's count(*), whose single group spans the whole
		// join result).
		for _, ref := range t.lineage {
			if !grp.linSeen[ref] {
				grp.linSeen[ref] = true
				grp.lineage = append(grp.lineage, ref)
			}
		}
		for i, c := range aggCalls {
			var arg sqlval.Value
			if c.Arg != nil {
				v, err := evalExpr(c.Arg, &rel.env, t.vals, nil)
				if err != nil {
					return nil, err
				}
				arg = v
			}
			grp.accs[i].add(arg)
		}
	}
	// A global aggregate over an empty input still yields one (empty) group.
	if len(groups) == 0 && len(s.GroupBy) == 0 {
		groups[""] = &group{rep: tuple{vals: make([]sqlval.Value, len(rel.env.bindings))}, accs: newAccs()}
		order = append(order, "")
	}

	out := &aggRelation{aggregate: true}
	out.rel.env = rel.env
	for _, key := range order {
		grp := groups[key]
		t := grp.rep
		t.lineage = grp.lineage
		m := make(map[sqlparse.Expr]sqlval.Value, len(aggCalls))
		for i, c := range aggCalls {
			m[c] = grp.accs[i].result()
		}
		// HAVING filters whole groups, evaluated with the aggregate context.
		if s.Having != nil {
			v, err := evalExpr(s.Having, &rel.env, t.vals, m)
			if err != nil {
				return nil, err
			}
			if !isTrue(v) {
				continue
			}
		}
		out.rel.tuples = append(out.rel.tuples, t)
		out.aggs = append(out.aggs, m)
	}
	return out, nil
}

// aggAcc accumulates one aggregate call.
type aggAcc struct {
	fn       string
	star     bool
	distinct bool
	count    int64
	sum      float64
	sumInt   int64
	intOnly  bool
	min, max sqlval.Value
	seen     map[string]bool
}

func newAggAcc(c *sqlparse.FuncExpr) *aggAcc {
	a := &aggAcc{fn: c.Name, star: c.Star, distinct: c.Distinct, intOnly: true}
	if c.Distinct {
		a.seen = map[string]bool{}
	}
	return a
}

func (a *aggAcc) add(v sqlval.Value) {
	if a.star {
		a.count++
		return
	}
	if v.IsNull() {
		return
	}
	if a.distinct {
		k := v.GroupKey()
		if a.seen[k] {
			return
		}
		a.seen[k] = true
	}
	a.count++
	switch a.fn {
	case "SUM", "AVG":
		if f, ok := v.AsFloat(); ok {
			a.sum += f
			if v.Kind() == sqlval.KindInt {
				a.sumInt += v.Int()
			} else {
				a.intOnly = false
			}
		}
	case "MIN":
		if a.min.IsNull() {
			a.min = v
		} else if c, ok := v.Compare(a.min); ok && c < 0 {
			a.min = v
		}
	case "MAX":
		if a.max.IsNull() {
			a.max = v
		} else if c, ok := v.Compare(a.max); ok && c > 0 {
			a.max = v
		}
	}
}

func (a *aggAcc) result() sqlval.Value {
	switch a.fn {
	case "COUNT":
		return sqlval.NewInt(a.count)
	case "SUM":
		if a.count == 0 {
			return sqlval.Null
		}
		if a.intOnly {
			return sqlval.NewInt(a.sumInt)
		}
		return sqlval.NewFloat(a.sum)
	case "AVG":
		if a.count == 0 {
			return sqlval.Null
		}
		return sqlval.NewFloat(a.sum / float64(a.count))
	case "MIN":
		return a.min
	case "MAX":
		return a.max
	default:
		return sqlval.Null
	}
}

// project evaluates the select list (star expansion excludes the hidden
// provenance attributes), then applies DISTINCT, ORDER BY, and LIMIT —
// each recorded as its own operator (with the planner's estimate from sp)
// when EXPLAIN ANALYZE is collecting.
func project(s *sqlparse.Select, ar *aggRelation, withLineage bool, oc *opCollector, sp *selPlan) (cols []string, rows [][]sqlval.Value, lineage [][]TupleRef, err error) {
	rel := ar.rel

	// Resolve output columns.
	type outCol struct {
		name string
		expr sqlparse.Expr // nil for direct slot copy
		slot int
	}
	var outs []outCol
	for _, it := range s.Items {
		switch {
		case it.Star:
			for i, b := range rel.env.bindings {
				if IsProvColumn(b.name) {
					continue
				}
				if it.Table != "" && b.table != it.Table {
					continue
				}
				outs = append(outs, outCol{name: b.name, slot: i, expr: nil})
			}
			if it.Table != "" {
				found := false
				for _, b := range rel.env.bindings {
					if b.table == it.Table {
						found = true
						break
					}
				}
				if !found {
					return nil, nil, nil, fmt.Errorf("table %q does not exist in FROM clause", it.Table)
				}
			}
		default:
			name := it.Alias
			if name == "" {
				if cr, ok := it.Expr.(*sqlparse.ColumnRef); ok {
					name = cr.Column
				} else if fe, ok := it.Expr.(*sqlparse.FuncExpr); ok {
					name = strings.ToLower(fe.Name)
				} else {
					name = "column"
				}
			}
			outs = append(outs, outCol{name: name, expr: it.Expr, slot: -1})
		}
	}
	cols = make([]string, len(outs))
	for i, o := range outs {
		cols[i] = o.name
	}

	// Validate every column reference in the select list against the layout
	// so that errors surface even on empty inputs.
	for _, o := range outs {
		if o.expr == nil {
			continue
		}
		var refs []*sqlparse.ColumnRef
		columnRefs(o.expr, &refs)
		for _, r := range refs {
			if _, err := rel.env.resolve(r); err != nil {
				return nil, nil, nil, err
			}
		}
	}

	// Evaluate output rows plus ORDER BY keys.
	type outRow struct {
		vals    []sqlval.Value
		keys    []sqlval.Value
		lineage []TupleRef
	}
	aliasIndex := func(name string) int {
		for i, o := range outs {
			if o.name == name {
				return i
			}
		}
		return -1
	}
	var outRows []outRow
	for ti, t := range rel.tuples {
		var agg map[sqlparse.Expr]sqlval.Value
		if ar.aggs != nil {
			agg = ar.aggs[ti]
		}
		r := outRow{vals: make([]sqlval.Value, len(outs)), lineage: t.lineage}
		for i, o := range outs {
			if o.expr == nil {
				r.vals[i] = t.vals[o.slot]
				continue
			}
			v, err := evalExpr(o.expr, &rel.env, t.vals, agg)
			if err != nil {
				return nil, nil, nil, err
			}
			r.vals[i] = v
		}
		for _, ob := range s.OrderBy {
			// A bare identifier matching an output alias orders by that output.
			if cr, ok := ob.Expr.(*sqlparse.ColumnRef); ok && cr.Table == "" {
				if i := aliasIndex(cr.Column); i >= 0 {
					if _, rerr := rel.env.resolve(cr); rerr != nil {
						r.keys = append(r.keys, r.vals[i])
						continue
					}
				}
			}
			v, err := evalExpr(ob.Expr, &rel.env, t.vals, agg)
			if err != nil {
				return nil, nil, nil, err
			}
			r.keys = append(r.keys, v)
		}
		outRows = append(outRows, r)
	}

	if s.Distinct {
		_ = oc.execEst("distinct", "", sp.estDistinct, func() (int, error) {
			seen := map[string]int{}
			dedup := outRows[:0:0]
			var linSeen []map[TupleRef]bool // parallel to dedup, lazily built
			for _, r := range outRows {
				var sb strings.Builder
				for _, v := range r.vals {
					sb.WriteString(v.GroupKey())
					sb.WriteByte(0)
				}
				k := sb.String()
				if i, dup := seen[k]; dup {
					// Union lineage through a per-row set; pairwise merging would
					// be quadratic in the duplicate count.
					if linSeen[i] == nil {
						linSeen[i] = map[TupleRef]bool{}
						for _, ref := range dedup[i].lineage {
							linSeen[i][ref] = true
						}
					}
					for _, ref := range r.lineage {
						if !linSeen[i][ref] {
							linSeen[i][ref] = true
							dedup[i].lineage = append(dedup[i].lineage, ref)
						}
					}
					continue
				}
				seen[k] = len(dedup)
				dedup = append(dedup, r)
				linSeen = append(linSeen, nil)
			}
			outRows = dedup
			return len(outRows), nil
		})
	}

	if len(s.OrderBy) > 0 {
		keys := make([]sqlparse.Expr, len(s.OrderBy))
		for i, o := range s.OrderBy {
			keys[i] = o.Expr
		}
		_ = oc.execEst("sort", exprListText(keys), sp.estSort, func() (int, error) {
			sort.SliceStable(outRows, func(i, j int) bool {
				for k, ob := range s.OrderBy {
					a, b := outRows[i].keys[k], outRows[j].keys[k]
					if a.Equal(b) {
						continue
					}
					less := sqlval.SortLess(a, b)
					if ob.Desc {
						return !less
					}
					return less
				}
				return false
			})
			return len(outRows), nil
		})
	}
	if s.Limit >= 0 && len(outRows) > s.Limit {
		_ = oc.execEst("limit", strconv.Itoa(s.Limit), sp.estLimit, func() (int, error) {
			outRows = outRows[:s.Limit]
			return len(outRows), nil
		})
	}

	rows = make([][]sqlval.Value, len(outRows))
	lineage = make([][]TupleRef, len(outRows))
	for i, r := range outRows {
		rows[i] = r.vals
		lineage[i] = r.lineage
	}
	if !withLineage {
		lineage = nil
	}
	return cols, rows, lineage, nil
}
