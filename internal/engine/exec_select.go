package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"ldv/internal/sqlparse"
	"ldv/internal/sqlval"
)

// relation is an intermediate executor result: a tuple layout plus the
// materialized tuples.
type relation struct {
	env    env
	tuples []tuple
}

// execSelect plans and runs a SELECT, filling res.
func (ec *stmtCtx) execSelect(s *sqlparse.Select, opts ExecOptions, res *Result) error {
	withLineage := opts.WithLineage || s.Provenance
	// Resolve uncorrelated subqueries up front; their lineage joins every
	// result row's lineage below. Subqueries run in the outer statement's
	// context: same snapshot, same already-locked table footprint.
	var subState *subqueryState
	if selectHasSubqueries(s) {
		subState = &subqueryState{ec: ec, opts: ExecOptions{Proc: opts.Proc, WithLineage: withLineage}, stmtID: res.StmtID}
		ns, _, err := ec.resolveSelectSubqueries(s, subState)
		if err != nil {
			return err
		}
		s = ns
	}
	// collect records the scanned storedRow per tuple ref; values are
	// copied out only for refs that survive into the final Lineage (rows
	// cannot change mid-statement, so the references stay valid).
	var collect map[TupleRef]*storedRow
	if withLineage {
		collect = map[TupleRef]*storedRow{}
	}
	rel, err := ec.runSelect(s, withLineage, res.StmtID, collect)
	if err != nil {
		return err
	}
	var cols []string
	var rows [][]sqlval.Value
	var lineage [][]TupleRef
	if err := ec.ops.exec("project", "", func() (int, error) {
		var perr error
		cols, rows, lineage, perr = project(s, rel, withLineage, ec.ops)
		return len(rows), perr
	}); err != nil {
		return err
	}
	res.Columns = cols
	res.Rows = rows
	if withLineage {
		t0 := time.Now()
		defer func() { hLineage.Observe(time.Since(t0)) }()
		if subState != nil && len(subState.refs) > 0 {
			for i := range lineage {
				lineage[i] = mergeLineage(lineage[i], subState.refs)
			}
		}
		res.Lineage = lineage
		// Keep values only for tuple versions that actually appear in some
		// result row's Lineage (the provenance tuples Perm would return).
		used := map[TupleRef]bool{}
		for _, lin := range lineage {
			for _, ref := range lin {
				used[ref] = true
			}
		}
		res.TupleValues = map[TupleRef][]sqlval.Value{}
		for ref := range used {
			if r, ok := collect[ref]; ok {
				res.TupleValues[ref] = append([]sqlval.Value(nil), r.vals...)
			}
		}
		if subState != nil {
			for ref, vals := range subState.values {
				res.TupleValues[ref] = vals
			}
		}
	}
	return nil
}

// runSelect executes the FROM/WHERE/GROUP BY portion, returning the
// pre-projection relation (post-aggregation for aggregate queries, with
// aggregate values stashed in the aggCtx of each tuple via aggRelation).
func (ec *stmtCtx) runSelect(s *sqlparse.Select, withLineage bool, stmtID int64, collect map[TupleRef]*storedRow) (*aggRelation, error) {
	if len(s.From) == 0 {
		// Table-less SELECT (e.g. SELECT 1+1): a single empty tuple.
		return &aggRelation{rel: relation{tuples: []tuple{{}}}}, nil
	}

	// Gather table refs and conjuncts.
	refs := append([]sqlparse.TableRef(nil), s.From...)
	var conjuncts []sqlparse.Expr
	splitConjuncts(s.Where, &conjuncts)
	for _, j := range s.Joins {
		refs = append(refs, j.Table)
		splitConjuncts(j.On, &conjuncts)
	}
	seen := map[string]bool{}
	for _, r := range refs {
		name := r.EffectiveName()
		if seen[name] {
			return nil, fmt.Errorf("duplicate table name or alias %q", name)
		}
		seen[name] = true
	}

	used := make([]bool, len(conjuncts))
	var cur relation
	if err := ec.ops.exec("scan", refs[0].EffectiveName(), func() (int, error) {
		var serr error
		cur, serr = ec.scanTable(refs[0], withLineage, stmtID, collect)
		return len(cur.tuples), serr
	}); err != nil {
		return nil, err
	}
	cur = ec.applyFilters(cur, conjuncts, used)

	for _, ref := range refs[1:] {
		var right relation
		if err := ec.ops.exec("scan", ref.EffectiveName(), func() (int, error) {
			var serr error
			right, serr = ec.scanTable(ref, withLineage, stmtID, collect)
			return len(right.tuples), serr
		}); err != nil {
			return nil, err
		}
		right = ec.applyFilters(right, conjuncts, used)
		// Find equi-join keys between cur and right.
		var leftKeys, rightKeys []sqlparse.Expr
		for i, c := range conjuncts {
			if used[i] {
				continue
			}
			l, r, ok := equiJoinSides(c, &cur.env, &right.env)
			if !ok {
				continue
			}
			leftKeys = append(leftKeys, l)
			rightKeys = append(rightKeys, r)
			used[i] = true
		}
		if err := ec.ops.exec("hash_join", ref.EffectiveName(), func() (int, error) {
			var jerr error
			cur, jerr = hashJoin(cur, right, leftKeys, rightKeys)
			return len(cur.tuples), jerr
		}); err != nil {
			return nil, err
		}
		cur = ec.applyFilters(cur, conjuncts, used)
	}
	for i, c := range conjuncts {
		if !used[i] {
			// Not yet applied anywhere: it must resolve now, or the query is
			// invalid.
			var aggs []*sqlparse.FuncExpr
			collectAggregates(c, &aggs)
			if len(aggs) > 0 {
				return nil, fmt.Errorf("aggregates are not allowed in WHERE")
			}
			var refs []*sqlparse.ColumnRef
			columnRefs(c, &refs)
			for _, r := range refs {
				if _, err := cur.env.resolve(r); err != nil {
					return nil, err
				}
			}
			cc := c
			_ = ec.ops.exec("filter", cc.String(), func() (int, error) {
				cur = filter(cur, []sqlparse.Expr{cc})
				return len(cur.tuples), nil
			})
			used[i] = true
		}
	}

	var ar *aggRelation
	if err := ec.ops.exec("aggregate", exprListText(s.GroupBy), func() (int, error) {
		var aerr error
		ar, aerr = aggregate(s, cur)
		if aerr != nil {
			return 0, aerr
		}
		return len(ar.rel.tuples), nil
	}); err != nil {
		return nil, err
	}
	if !ar.aggregate {
		// Plain query: the aggregate stage was a pass-through, not an operator.
		ec.ops.dropLast()
	}
	return ar, nil
}

// splitConjuncts flattens a WHERE tree into AND-connected conjuncts.
func splitConjuncts(e sqlparse.Expr, out *[]sqlparse.Expr) {
	if e == nil {
		return
	}
	if be, ok := e.(*sqlparse.BinaryExpr); ok && be.Op == "AND" {
		splitConjuncts(be.Left, out)
		splitConjuncts(be.Right, out)
		return
	}
	*out = append(*out, e)
}

// resolvesIn reports whether every column of e binds in en.
func resolvesIn(e sqlparse.Expr, en *env) bool {
	var refs []*sqlparse.ColumnRef
	columnRefs(e, &refs)
	for _, r := range refs {
		if _, err := en.resolve(r); err != nil {
			return false
		}
	}
	return true
}

// equiJoinSides checks whether c has the shape exprL = exprR with exprL
// resolving only on one side and exprR only on the other, returning the
// left-aligned and right-aligned key expressions.
func equiJoinSides(c sqlparse.Expr, left, right *env) (l, r sqlparse.Expr, ok bool) {
	be, isBin := c.(*sqlparse.BinaryExpr)
	if !isBin || be.Op != "=" {
		return nil, nil, false
	}
	switch {
	case resolvesIn(be.Left, left) && resolvesIn(be.Right, right):
		return be.Left, be.Right, true
	case resolvesIn(be.Right, left) && resolvesIn(be.Left, right):
		return be.Right, be.Left, true
	}
	return nil, nil, false
}

// applicableFilters collects every not-yet-used conjunct that fully
// resolves in rel's env, marking them used.
func applicableFilters(rel relation, conjuncts []sqlparse.Expr, used []bool) []sqlparse.Expr {
	var applicable []sqlparse.Expr
	for i, c := range conjuncts {
		if used[i] || !resolvesIn(c, &rel.env) {
			continue
		}
		// Conjuncts containing aggregates cannot be filters.
		var aggs []*sqlparse.FuncExpr
		collectAggregates(c, &aggs)
		if len(aggs) > 0 {
			continue
		}
		applicable = append(applicable, c)
		used[i] = true
	}
	return applicable
}

// applyFilters applies the applicable conjuncts, recording a filter operator
// when a collector is attached and any conjunct actually applied.
func (ec *stmtCtx) applyFilters(rel relation, conjuncts []sqlparse.Expr, used []bool) relation {
	applicable := applicableFilters(rel, conjuncts, used)
	if len(applicable) == 0 {
		return rel
	}
	out := rel
	_ = ec.ops.exec("filter", exprListText(applicable), func() (int, error) {
		out = filter(rel, applicable)
		return len(out.tuples), nil
	})
	return out
}

func filter(rel relation, conjuncts []sqlparse.Expr) relation {
	out := rel.tuples[:0:0]
	for _, t := range rel.tuples {
		keep := true
		for _, c := range conjuncts {
			v, err := evalExpr(c, &rel.env, t.vals, nil)
			if err != nil || !isTrue(v) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, t)
		}
	}
	rel.tuples = out
	return rel
}

// scanTable materializes the snapshot-visible versions of a table as a
// relation. The tuple layout is the table's columns followed by the four
// hidden provenance attributes, all qualified by the effective (aliased)
// table name. In lineage mode each tuple starts with itself as lineage and
// the scan stamps prov_usedby — the versioning write the paper charges to
// audit overhead (§IX-B). The stamp is atomic because the scan holds only
// the table's read lock.
func (ec *stmtCtx) scanTable(ref sqlparse.TableRef, withLineage bool, stmtID int64, collect map[TupleRef]*storedRow) (relation, error) {
	t, err := ec.table(ref.Name)
	if err != nil {
		// Unknown names fall back to the system-view registry: virtual
		// tables never appear in the lock footprint (lockTables skips
		// unresolved names) and take no locks of their own.
		if vt := ec.db.virtualTable(ref.Name); vt != nil {
			return ec.scanVirtual(vt, ref), nil
		}
		return relation{}, err
	}
	name := ref.EffectiveName()
	var rel relation
	for _, c := range t.Schema.Columns {
		rel.env.bindings = append(rel.env.bindings, binding{table: name, name: c.Name})
	}
	for _, pc := range []string{ColProvRowID, ColProvV, ColProvP, ColProvUsedBy} {
		rel.env.bindings = append(rel.env.bindings, binding{table: name, name: pc})
	}
	ncols := len(t.Schema.Columns)
	mRowsScanned.Add(int64(len(t.rows)))
	rel.tuples = make([]tuple, 0, len(t.rows))
	for _, r := range t.rows {
		if !ec.snap.visible(r) {
			continue
		}
		vals := make([]sqlval.Value, ncols+4)
		copy(vals, r.vals)
		if withLineage {
			r.usedBy.Store(stmtID)
			if collect != nil {
				collect[r.ref(t.Name)] = r
			}
		}
		vals[ncols] = sqlval.NewInt(int64(r.id))
		vals[ncols+1] = sqlval.NewInt(int64(r.version))
		vals[ncols+2] = sqlval.NewString(r.proc)
		vals[ncols+3] = sqlval.NewInt(r.usedBy.Load())
		tp := tuple{vals: vals}
		if withLineage {
			tp.lineage = []TupleRef{r.ref(t.Name)}
		}
		rel.tuples = append(rel.tuples, tp)
	}
	return rel, nil
}

// hashJoin joins two relations on the given key expression lists. With no
// keys it degrades to a cross join.
func hashJoin(left, right relation, leftKeys, rightKeys []sqlparse.Expr) (relation, error) {
	out := relation{}
	out.env.bindings = append(append([]binding(nil), left.env.bindings...), right.env.bindings...)

	combine := func(l, r tuple) tuple {
		vals := make([]sqlval.Value, 0, len(l.vals)+len(r.vals))
		vals = append(vals, l.vals...)
		vals = append(vals, r.vals...)
		return tuple{vals: vals, lineage: mergeLineage(l.lineage, r.lineage)}
	}

	if len(leftKeys) == 0 {
		for _, l := range left.tuples {
			for _, r := range right.tuples {
				out.tuples = append(out.tuples, combine(l, r))
			}
		}
		return out, nil
	}

	keyOf := func(t tuple, en *env, keys []sqlparse.Expr) (string, bool, error) {
		var sb strings.Builder
		for _, k := range keys {
			v, err := evalExpr(k, en, t.vals, nil)
			if err != nil {
				return "", false, err
			}
			if v.IsNull() {
				return "", false, nil // NULL never joins
			}
			sb.WriteString(v.GroupKey())
			sb.WriteByte(0)
		}
		return sb.String(), true, nil
	}

	// Build on the smaller side.
	buildRight := len(right.tuples) <= len(left.tuples)
	build, probe := right, left
	buildKeys, probeKeys := rightKeys, leftKeys
	if !buildRight {
		build, probe = left, right
		buildKeys, probeKeys = leftKeys, rightKeys
	}
	table := make(map[string][]int, len(build.tuples))
	for i, t := range build.tuples {
		k, ok, err := keyOf(t, &build.env, buildKeys)
		if err != nil {
			return relation{}, err
		}
		if ok {
			table[k] = append(table[k], i)
		}
	}
	for _, p := range probe.tuples {
		k, ok, err := keyOf(p, &probe.env, probeKeys)
		if err != nil {
			return relation{}, err
		}
		if !ok {
			continue
		}
		for _, bi := range table[k] {
			b := build.tuples[bi]
			if buildRight {
				out.tuples = append(out.tuples, combine(p, b))
			} else {
				out.tuples = append(out.tuples, combine(b, p))
			}
		}
	}
	return out, nil
}

// aggRelation carries the relation plus, for aggregate queries, the
// per-tuple aggregate values (keyed by the FuncExpr node).
type aggRelation struct {
	rel       relation
	aggs      []map[sqlparse.Expr]sqlval.Value // parallel to rel.tuples; nil for plain queries
	aggregate bool
}

// aggregate applies GROUP BY / aggregate semantics if the query needs them.
func aggregate(s *sqlparse.Select, rel relation) (*aggRelation, error) {
	var aggCalls []*sqlparse.FuncExpr
	for _, it := range s.Items {
		if it.Expr != nil {
			collectAggregates(it.Expr, &aggCalls)
		}
	}
	for _, o := range s.OrderBy {
		collectAggregates(o.Expr, &aggCalls)
	}
	if s.Having != nil {
		collectAggregates(s.Having, &aggCalls)
	}
	if len(aggCalls) == 0 && len(s.GroupBy) == 0 {
		return &aggRelation{rel: rel}, nil
	}
	for _, c := range aggCalls {
		if !sqlparse.AggregateFuncs[c.Name] {
			return nil, fmt.Errorf("unknown function %s", c.Name)
		}
	}

	type group struct {
		rep     tuple // representative tuple (first member)
		lineage []TupleRef
		linSeen map[TupleRef]bool
		accs    []*aggAcc
	}
	newAccs := func() []*aggAcc {
		accs := make([]*aggAcc, len(aggCalls))
		for i, c := range aggCalls {
			accs[i] = newAggAcc(c)
		}
		return accs
	}

	groups := map[string]*group{}
	var order []string
	for _, t := range rel.tuples {
		var sb strings.Builder
		for _, g := range s.GroupBy {
			v, err := evalExpr(g, &rel.env, t.vals, nil)
			if err != nil {
				return nil, err
			}
			sb.WriteString(v.GroupKey())
			sb.WriteByte(0)
		}
		key := sb.String()
		grp, ok := groups[key]
		if !ok {
			grp = &group{rep: t, accs: newAccs(), linSeen: map[TupleRef]bool{}}
			groups[key] = grp
			order = append(order, key)
		}
		// Accumulate lineage with a per-group set: repeated mergeLineage
		// calls would be quadratic in the group size (fatal for global
		// aggregates like Q3's count(*), whose single group spans the whole
		// join result).
		for _, ref := range t.lineage {
			if !grp.linSeen[ref] {
				grp.linSeen[ref] = true
				grp.lineage = append(grp.lineage, ref)
			}
		}
		for i, c := range aggCalls {
			var arg sqlval.Value
			if c.Arg != nil {
				v, err := evalExpr(c.Arg, &rel.env, t.vals, nil)
				if err != nil {
					return nil, err
				}
				arg = v
			}
			grp.accs[i].add(arg)
		}
	}
	// A global aggregate over an empty input still yields one (empty) group.
	if len(groups) == 0 && len(s.GroupBy) == 0 {
		groups[""] = &group{rep: tuple{vals: make([]sqlval.Value, len(rel.env.bindings))}, accs: newAccs()}
		order = append(order, "")
	}

	out := &aggRelation{aggregate: true}
	out.rel.env = rel.env
	for _, key := range order {
		grp := groups[key]
		t := grp.rep
		t.lineage = grp.lineage
		m := make(map[sqlparse.Expr]sqlval.Value, len(aggCalls))
		for i, c := range aggCalls {
			m[c] = grp.accs[i].result()
		}
		// HAVING filters whole groups, evaluated with the aggregate context.
		if s.Having != nil {
			v, err := evalExpr(s.Having, &rel.env, t.vals, m)
			if err != nil {
				return nil, err
			}
			if !isTrue(v) {
				continue
			}
		}
		out.rel.tuples = append(out.rel.tuples, t)
		out.aggs = append(out.aggs, m)
	}
	return out, nil
}

// aggAcc accumulates one aggregate call.
type aggAcc struct {
	fn       string
	star     bool
	distinct bool
	count    int64
	sum      float64
	sumInt   int64
	intOnly  bool
	min, max sqlval.Value
	seen     map[string]bool
}

func newAggAcc(c *sqlparse.FuncExpr) *aggAcc {
	a := &aggAcc{fn: c.Name, star: c.Star, distinct: c.Distinct, intOnly: true}
	if c.Distinct {
		a.seen = map[string]bool{}
	}
	return a
}

func (a *aggAcc) add(v sqlval.Value) {
	if a.star {
		a.count++
		return
	}
	if v.IsNull() {
		return
	}
	if a.distinct {
		k := v.GroupKey()
		if a.seen[k] {
			return
		}
		a.seen[k] = true
	}
	a.count++
	switch a.fn {
	case "SUM", "AVG":
		if f, ok := v.AsFloat(); ok {
			a.sum += f
			if v.Kind() == sqlval.KindInt {
				a.sumInt += v.Int()
			} else {
				a.intOnly = false
			}
		}
	case "MIN":
		if a.min.IsNull() {
			a.min = v
		} else if c, ok := v.Compare(a.min); ok && c < 0 {
			a.min = v
		}
	case "MAX":
		if a.max.IsNull() {
			a.max = v
		} else if c, ok := v.Compare(a.max); ok && c > 0 {
			a.max = v
		}
	}
}

func (a *aggAcc) result() sqlval.Value {
	switch a.fn {
	case "COUNT":
		return sqlval.NewInt(a.count)
	case "SUM":
		if a.count == 0 {
			return sqlval.Null
		}
		if a.intOnly {
			return sqlval.NewInt(a.sumInt)
		}
		return sqlval.NewFloat(a.sum)
	case "AVG":
		if a.count == 0 {
			return sqlval.Null
		}
		return sqlval.NewFloat(a.sum / float64(a.count))
	case "MIN":
		return a.min
	case "MAX":
		return a.max
	default:
		return sqlval.Null
	}
}

// project evaluates the select list (star expansion excludes the hidden
// provenance attributes), then applies DISTINCT, ORDER BY, and LIMIT —
// each recorded as its own operator when EXPLAIN ANALYZE is collecting.
func project(s *sqlparse.Select, ar *aggRelation, withLineage bool, oc *opCollector) (cols []string, rows [][]sqlval.Value, lineage [][]TupleRef, err error) {
	rel := ar.rel

	// Resolve output columns.
	type outCol struct {
		name string
		expr sqlparse.Expr // nil for direct slot copy
		slot int
	}
	var outs []outCol
	for _, it := range s.Items {
		switch {
		case it.Star:
			for i, b := range rel.env.bindings {
				if IsProvColumn(b.name) {
					continue
				}
				if it.Table != "" && b.table != it.Table {
					continue
				}
				outs = append(outs, outCol{name: b.name, slot: i, expr: nil})
			}
			if it.Table != "" {
				found := false
				for _, b := range rel.env.bindings {
					if b.table == it.Table {
						found = true
						break
					}
				}
				if !found {
					return nil, nil, nil, fmt.Errorf("table %q does not exist in FROM clause", it.Table)
				}
			}
		default:
			name := it.Alias
			if name == "" {
				if cr, ok := it.Expr.(*sqlparse.ColumnRef); ok {
					name = cr.Column
				} else if fe, ok := it.Expr.(*sqlparse.FuncExpr); ok {
					name = strings.ToLower(fe.Name)
				} else {
					name = "column"
				}
			}
			outs = append(outs, outCol{name: name, expr: it.Expr, slot: -1})
		}
	}
	cols = make([]string, len(outs))
	for i, o := range outs {
		cols[i] = o.name
	}

	// Validate every column reference in the select list against the layout
	// so that errors surface even on empty inputs.
	for _, o := range outs {
		if o.expr == nil {
			continue
		}
		var refs []*sqlparse.ColumnRef
		columnRefs(o.expr, &refs)
		for _, r := range refs {
			if _, err := rel.env.resolve(r); err != nil {
				return nil, nil, nil, err
			}
		}
	}

	// Evaluate output rows plus ORDER BY keys.
	type outRow struct {
		vals    []sqlval.Value
		keys    []sqlval.Value
		lineage []TupleRef
	}
	aliasIndex := func(name string) int {
		for i, o := range outs {
			if o.name == name {
				return i
			}
		}
		return -1
	}
	var outRows []outRow
	for ti, t := range rel.tuples {
		var agg map[sqlparse.Expr]sqlval.Value
		if ar.aggs != nil {
			agg = ar.aggs[ti]
		}
		r := outRow{vals: make([]sqlval.Value, len(outs)), lineage: t.lineage}
		for i, o := range outs {
			if o.expr == nil {
				r.vals[i] = t.vals[o.slot]
				continue
			}
			v, err := evalExpr(o.expr, &rel.env, t.vals, agg)
			if err != nil {
				return nil, nil, nil, err
			}
			r.vals[i] = v
		}
		for _, ob := range s.OrderBy {
			// A bare identifier matching an output alias orders by that output.
			if cr, ok := ob.Expr.(*sqlparse.ColumnRef); ok && cr.Table == "" {
				if i := aliasIndex(cr.Column); i >= 0 {
					if _, rerr := rel.env.resolve(cr); rerr != nil {
						r.keys = append(r.keys, r.vals[i])
						continue
					}
				}
			}
			v, err := evalExpr(ob.Expr, &rel.env, t.vals, agg)
			if err != nil {
				return nil, nil, nil, err
			}
			r.keys = append(r.keys, v)
		}
		outRows = append(outRows, r)
	}

	if s.Distinct {
		_ = oc.exec("distinct", "", func() (int, error) {
			seen := map[string]int{}
			dedup := outRows[:0:0]
			var linSeen []map[TupleRef]bool // parallel to dedup, lazily built
			for _, r := range outRows {
				var sb strings.Builder
				for _, v := range r.vals {
					sb.WriteString(v.GroupKey())
					sb.WriteByte(0)
				}
				k := sb.String()
				if i, dup := seen[k]; dup {
					// Union lineage through a per-row set; pairwise merging would
					// be quadratic in the duplicate count.
					if linSeen[i] == nil {
						linSeen[i] = map[TupleRef]bool{}
						for _, ref := range dedup[i].lineage {
							linSeen[i][ref] = true
						}
					}
					for _, ref := range r.lineage {
						if !linSeen[i][ref] {
							linSeen[i][ref] = true
							dedup[i].lineage = append(dedup[i].lineage, ref)
						}
					}
					continue
				}
				seen[k] = len(dedup)
				dedup = append(dedup, r)
				linSeen = append(linSeen, nil)
			}
			outRows = dedup
			return len(outRows), nil
		})
	}

	if len(s.OrderBy) > 0 {
		keys := make([]sqlparse.Expr, len(s.OrderBy))
		for i, o := range s.OrderBy {
			keys[i] = o.Expr
		}
		_ = oc.exec("sort", exprListText(keys), func() (int, error) {
			sort.SliceStable(outRows, func(i, j int) bool {
				for k, ob := range s.OrderBy {
					a, b := outRows[i].keys[k], outRows[j].keys[k]
					if a.Equal(b) {
						continue
					}
					less := sqlval.SortLess(a, b)
					if ob.Desc {
						return !less
					}
					return less
				}
				return false
			})
			return len(outRows), nil
		})
	}
	if s.Limit >= 0 && len(outRows) > s.Limit {
		_ = oc.exec("limit", strconv.Itoa(s.Limit), func() (int, error) {
			outRows = outRows[:s.Limit]
			return len(outRows), nil
		})
	}

	rows = make([][]sqlval.Value, len(outRows))
	lineage = make([][]TupleRef, len(outRows))
	for i, r := range outRows {
		rows[i] = r.vals
		lineage[i] = r.lineage
	}
	if !withLineage {
		lineage = nil
	}
	return cols, rows, lineage, nil
}
