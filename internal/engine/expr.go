package engine

import (
	"fmt"

	"ldv/internal/sqlparse"
	"ldv/internal/sqlval"
)

// binding names one slot of an executor tuple: the effective table name
// (alias if given) and the column name. Hidden provenance attributes are
// bound like ordinary columns.
type binding struct {
	table string
	name  string
}

// env resolves column references against the current tuple layout. params
// holds the execution's bound parameter values (prepared statements); it is
// copied into every derived env so `?` placeholders resolve at any depth of
// the operator tree.
type env struct {
	bindings []binding
	params   []sqlval.Value
}

// resolve returns the slot index for a column reference. Unqualified names
// must be unambiguous across all bound tables.
func (e *env) resolve(ref *sqlparse.ColumnRef) (int, error) {
	found := -1
	for i, b := range e.bindings {
		if b.name != ref.Column {
			continue
		}
		if ref.Table != "" && b.table != ref.Table {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("column reference %q is ambiguous", ref.String())
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("column %q does not exist", ref.String())
	}
	return found, nil
}

// tuple is one row flowing through the executor, with its lineage (the set
// of stored tuple versions it depends on) when lineage tracking is on.
type tuple struct {
	vals    []sqlval.Value
	lineage []TupleRef
}

// mergeLineage unions two lineage lists, deduplicating refs.
func mergeLineage(a, b []TupleRef) []TupleRef {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	seen := make(map[TupleRef]bool, len(a)+len(b))
	out := make([]TupleRef, 0, len(a)+len(b))
	for _, r := range a {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for _, r := range b {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// evalExpr evaluates an expression against a tuple. agg supplies
// pre-computed aggregate values when evaluating the select list of an
// aggregate query; it is nil elsewhere (aggregates are then an error).
func evalExpr(ex sqlparse.Expr, en *env, vals []sqlval.Value, agg map[sqlparse.Expr]sqlval.Value) (sqlval.Value, error) {
	switch e := ex.(type) {
	case *sqlparse.Literal:
		return e.Value, nil
	case *sqlparse.Param:
		if e.Index < 1 || e.Index > len(en.params) {
			return sqlval.Null, fmt.Errorf("parameter %d is not bound (%d values supplied)", e.Index, len(en.params))
		}
		return en.params[e.Index-1], nil
	case *sqlparse.ColumnRef:
		i, err := en.resolve(e)
		if err != nil {
			return sqlval.Null, err
		}
		return vals[i], nil
	case *sqlparse.UnaryExpr:
		v, err := evalExpr(e.Expr, en, vals, agg)
		if err != nil {
			return sqlval.Null, err
		}
		if e.Op == "-" {
			return sqlval.Neg(v)
		}
		// NOT with three-valued logic.
		if v.IsNull() {
			return sqlval.Null, nil
		}
		if v.Kind() != sqlval.KindBool {
			return sqlval.Null, fmt.Errorf("NOT requires a boolean operand, got %s", v.Kind())
		}
		return sqlval.NewBool(!v.Bool()), nil
	case *sqlparse.BinaryExpr:
		return evalBinary(e, en, vals, agg)
	case *sqlparse.BetweenExpr:
		v, err := evalExpr(e.Expr, en, vals, agg)
		if err != nil {
			return sqlval.Null, err
		}
		lo, err := evalExpr(e.Lo, en, vals, agg)
		if err != nil {
			return sqlval.Null, err
		}
		hi, err := evalExpr(e.Hi, en, vals, agg)
		if err != nil {
			return sqlval.Null, err
		}
		geLo := compareBool(v, lo, ">=")
		leHi := compareBool(v, hi, "<=")
		res := and3(geLo, leHi)
		if e.Negated {
			res = not3(res)
		}
		return res, nil
	case *sqlparse.InExpr:
		v, err := evalExpr(e.Expr, en, vals, agg)
		if err != nil {
			return sqlval.Null, err
		}
		anyNull := v.IsNull()
		matched := false
		for _, item := range e.List {
			iv, err := evalExpr(item, en, vals, agg)
			if err != nil {
				return sqlval.Null, err
			}
			eq := compareBool(v, iv, "=")
			if eq.IsNull() {
				anyNull = true
			} else if eq.Bool() {
				matched = true
				break
			}
		}
		var res sqlval.Value
		switch {
		case matched:
			res = sqlval.NewBool(true)
		case anyNull:
			res = sqlval.Null
		default:
			res = sqlval.NewBool(false)
		}
		if e.Negated {
			res = not3(res)
		}
		return res, nil
	case *sqlparse.IsNullExpr:
		v, err := evalExpr(e.Expr, en, vals, agg)
		if err != nil {
			return sqlval.Null, err
		}
		if e.Negated {
			return sqlval.NewBool(!v.IsNull()), nil
		}
		return sqlval.NewBool(v.IsNull()), nil
	case *sqlparse.FuncExpr:
		if agg == nil {
			return sqlval.Null, fmt.Errorf("aggregate %s is not allowed here", e.Name)
		}
		v, ok := agg[e]
		if !ok {
			return sqlval.Null, fmt.Errorf("internal: aggregate %s not precomputed", e.Name)
		}
		return v, nil
	default:
		return sqlval.Null, fmt.Errorf("unsupported expression %T", ex)
	}
}

func evalBinary(e *sqlparse.BinaryExpr, en *env, vals []sqlval.Value, agg map[sqlparse.Expr]sqlval.Value) (sqlval.Value, error) {
	switch e.Op {
	case "AND", "OR":
		l, err := evalExpr(e.Left, en, vals, agg)
		if err != nil {
			return sqlval.Null, err
		}
		// Short-circuit where three-valued logic allows.
		if e.Op == "AND" && isFalse(l) {
			return sqlval.NewBool(false), nil
		}
		if e.Op == "OR" && isTrue(l) {
			return sqlval.NewBool(true), nil
		}
		r, err := evalExpr(e.Right, en, vals, agg)
		if err != nil {
			return sqlval.Null, err
		}
		if e.Op == "AND" {
			return and3(l, r), nil
		}
		return or3(l, r), nil
	}
	l, err := evalExpr(e.Left, en, vals, agg)
	if err != nil {
		return sqlval.Null, err
	}
	r, err := evalExpr(e.Right, en, vals, agg)
	if err != nil {
		return sqlval.Null, err
	}
	switch e.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		return compareBool(l, r, e.Op), nil
	case "LIKE":
		m, ok := sqlval.Like(l, r)
		if !ok {
			if l.IsNull() || r.IsNull() {
				return sqlval.Null, nil
			}
			return sqlval.Null, fmt.Errorf("LIKE requires text operands, got %s and %s", l.Kind(), r.Kind())
		}
		return sqlval.NewBool(m), nil
	case "||":
		return sqlval.Concat(l, r)
	case "+", "-", "*", "/", "%":
		// "+" doubles as concatenation when either side is text, matching the
		// lenient behaviour of several engines; otherwise numeric.
		if e.Op == "+" && (l.Kind() == sqlval.KindString || r.Kind() == sqlval.KindString) {
			return sqlval.Concat(l, r)
		}
		switch e.Op {
		case "+":
			return sqlval.Add(l, r)
		case "-":
			return sqlval.Sub(l, r)
		case "*":
			return sqlval.Mul(l, r)
		case "/":
			return sqlval.Div(l, r)
		default:
			return sqlval.Mod(l, r)
		}
	default:
		return sqlval.Null, fmt.Errorf("unsupported operator %q", e.Op)
	}
}

// compareBool applies a comparison with SQL three-valued semantics,
// returning a BOOLEAN or NULL value.
func compareBool(l, r sqlval.Value, op string) sqlval.Value {
	c, ok := l.Compare(r)
	if !ok {
		return sqlval.Null
	}
	switch op {
	case "=":
		return sqlval.NewBool(c == 0)
	case "<>":
		return sqlval.NewBool(c != 0)
	case "<":
		return sqlval.NewBool(c < 0)
	case "<=":
		return sqlval.NewBool(c <= 0)
	case ">":
		return sqlval.NewBool(c > 0)
	case ">=":
		return sqlval.NewBool(c >= 0)
	default:
		return sqlval.Null
	}
}

func isTrue(v sqlval.Value) bool  { return v.Kind() == sqlval.KindBool && v.Bool() }
func isFalse(v sqlval.Value) bool { return v.Kind() == sqlval.KindBool && !v.Bool() }

func and3(a, b sqlval.Value) sqlval.Value {
	if isFalse(a) || isFalse(b) {
		return sqlval.NewBool(false)
	}
	if a.IsNull() || b.IsNull() {
		return sqlval.Null
	}
	return sqlval.NewBool(true)
}

func or3(a, b sqlval.Value) sqlval.Value {
	if isTrue(a) || isTrue(b) {
		return sqlval.NewBool(true)
	}
	if a.IsNull() || b.IsNull() {
		return sqlval.Null
	}
	return sqlval.NewBool(false)
}

func not3(a sqlval.Value) sqlval.Value {
	if a.IsNull() {
		return sqlval.Null
	}
	return sqlval.NewBool(!a.Bool())
}

// collectAggregates walks an expression and appends every aggregate call.
func collectAggregates(ex sqlparse.Expr, out *[]*sqlparse.FuncExpr) {
	switch e := ex.(type) {
	case *sqlparse.FuncExpr:
		*out = append(*out, e)
	case *sqlparse.BinaryExpr:
		collectAggregates(e.Left, out)
		collectAggregates(e.Right, out)
	case *sqlparse.UnaryExpr:
		collectAggregates(e.Expr, out)
	case *sqlparse.BetweenExpr:
		collectAggregates(e.Expr, out)
		collectAggregates(e.Lo, out)
		collectAggregates(e.Hi, out)
	case *sqlparse.InExpr:
		collectAggregates(e.Expr, out)
		for _, i := range e.List {
			collectAggregates(i, out)
		}
	case *sqlparse.IsNullExpr:
		collectAggregates(e.Expr, out)
	}
}

// columnRefs walks an expression and appends every column reference.
func columnRefs(ex sqlparse.Expr, out *[]*sqlparse.ColumnRef) {
	switch e := ex.(type) {
	case *sqlparse.ColumnRef:
		*out = append(*out, e)
	case *sqlparse.BinaryExpr:
		columnRefs(e.Left, out)
		columnRefs(e.Right, out)
	case *sqlparse.UnaryExpr:
		columnRefs(e.Expr, out)
	case *sqlparse.BetweenExpr:
		columnRefs(e.Expr, out)
		columnRefs(e.Lo, out)
		columnRefs(e.Hi, out)
	case *sqlparse.InExpr:
		columnRefs(e.Expr, out)
		for _, i := range e.List {
			columnRefs(i, out)
		}
	case *sqlparse.IsNullExpr:
		columnRefs(e.Expr, out)
	case *sqlparse.FuncExpr:
		if e.Arg != nil {
			columnRefs(e.Arg, out)
		}
	}
}
