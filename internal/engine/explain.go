package engine

import (
	"strings"
	"time"

	"ldv/internal/obs"
	"ldv/internal/plan"
	"ldv/internal/sqlparse"
	"ldv/internal/sqlval"
)

// EXPLAIN [ANALYZE]: the execution tree comes back as ordinary result rows
// (op, detail, rows, time_ns), so any client that can run a SELECT can read
// a plan. Plain EXPLAIN renders the planned pipeline without executing or
// locking anything; ANALYZE runs the inner statement with an opCollector
// attached and reports the rows and wall time each operator actually
// produced, discarding the inner statement's own result rows.

// stmtWrites reports whether executing stmt would modify the database — the
// read-only (replica) gate.
func stmtWrites(stmt sqlparse.Statement) bool {
	switch s := stmt.(type) {
	case *sqlparse.Insert, *sqlparse.Update, *sqlparse.Delete,
		*sqlparse.CreateTable, *sqlparse.DropTable,
		*sqlparse.CreateIndex, *sqlparse.DropIndex:
		return true
	case *sqlparse.Copy:
		return !s.To // COPY ... TO only reads
	case *sqlparse.Vacuum:
		// Reclaims versions and logs a WAL record; replicas receive the
		// horizon through the replication stream instead.
		return true
	case *sqlparse.Explain:
		// Plain EXPLAIN never executes; ANALYZE runs the inner statement.
		return s.Analyze && stmtWrites(s.Stmt)
	}
	return false
}

// opCollector accumulates per-operator execution records for EXPLAIN
// ANALYZE. The nil collector is the common (non-EXPLAIN) case: exec then
// runs the operator with no timing, span, or allocation overhead.
type opCollector struct {
	parent *obs.Span
	recs   []opRecord
}

// opRecord is one executed operator: what it did, the planner's output
// estimate (negative = none), the rows it produced, and the wall time it
// took (child operators' time included — records appear in completion
// order, children before parents).
type opRecord struct {
	op     string
	detail string
	est    float64
	rows   int
	ns     int64
}

// exec runs one operator through the collector with no planner estimate. f
// returns the operator's output row count; the record is appended after f
// completes so nested operators (e.g. the SELECT feeding an INSERT) list
// before their parent.
func (oc *opCollector) exec(op, detail string, f func() (int, error)) error {
	return oc.execEst(op, detail, -1, f)
}

// execEst is exec with the planner's output-cardinality estimate attached
// to the record (negative renders as NULL).
func (oc *opCollector) execEst(op, detail string, est float64, f func() (int, error)) error {
	if oc == nil {
		_, err := f()
		return err
	}
	t0 := time.Now()
	sp := oc.parent.Child("engine.op." + op)
	defer sp.End()
	n, err := f()
	oc.recs = append(oc.recs, opRecord{op: op, detail: detail, est: est, rows: n, ns: int64(time.Since(t0))})
	return err
}

// dropLast discards the most recent record (used when a stage turns out to
// be a no-op, like aggregate over a plain query).
func (oc *opCollector) dropLast() {
	if oc != nil && len(oc.recs) > 0 {
		oc.recs = oc.recs[:len(oc.recs)-1]
	}
}

// execExplainStmt serves EXPLAIN and EXPLAIN ANALYZE.
func (s *Session) execExplainStmt(ex *sqlparse.Explain, opts ExecOptions, res *Result) error {
	res.Columns = []string{"op", "detail", "est_rows", "rows", "time_ns"}
	if !ex.Analyze {
		// Plain EXPLAIN renders the planner's tree without executing or
		// locking anything: est_rows from the statistics catalog, rows and
		// time_ns NULL. What is printed is the tree the executor would walk.
		tree := plan.PlanStatement(dbCatalog{s.db}, ex.Stmt)
		var rows [][]sqlval.Value
		for _, n := range tree.Nodes() {
			rows = append(rows, []sqlval.Value{
				sqlval.NewString(n.Op()),
				sqlval.NewString(n.Detail()),
				sqlval.NewInt(int64(n.EstRows())),
				sqlval.Null,
				sqlval.Null,
			})
		}
		if tree != nil && tree.AsOf != "" {
			rows = append(rows, []sqlval.Value{
				sqlval.NewString("asof"),
				sqlval.NewString("tick " + tree.AsOf),
				sqlval.Null, sqlval.Null, sqlval.Null,
			})
		}
		res.Rows = rows
		return nil
	}

	oc := &opCollector{parent: opts.Span}
	inner := &Result{StmtID: res.StmtID, Start: res.Start, TraceID: res.TraceID}
	t0 := time.Now()
	var err error
	switch st := ex.Stmt.(type) {
	case *sqlparse.Select:
		err = s.execSelectOps(st, opts, inner, oc)
	default:
		err = s.execDMLOps(ex.Stmt, opts, inner, oc)
	}
	total := time.Since(t0)
	if err != nil {
		return err
	}
	res.planNS = inner.planNS
	res.RowsAffected = inner.RowsAffected
	res.CommitSeq = inner.CommitSeq

	rows := make([][]sqlval.Value, 0, len(oc.recs)+1)
	for _, r := range oc.recs {
		est := sqlval.Null
		if r.est >= 0 {
			est = sqlval.NewInt(int64(r.est))
		}
		rows = append(rows, []sqlval.Value{
			sqlval.NewString(r.op),
			sqlval.NewString(r.detail),
			est,
			sqlval.NewInt(int64(r.rows)),
			sqlval.NewInt(r.ns),
		})
	}
	if sel, ok := ex.Stmt.(*sqlparse.Select); ok && sel.AsOf != nil {
		rows = append(rows, []sqlval.Value{
			sqlval.NewString("asof"),
			sqlval.NewString("tick " + sel.AsOf.String()),
			sqlval.Null, sqlval.Null, sqlval.Null,
		})
	}
	resultRows := len(inner.Rows) + inner.RowsAffected
	rows = append(rows, []sqlval.Value{
		sqlval.NewString("result"),
		sqlval.NewString(""),
		sqlval.Null,
		sqlval.NewInt(int64(resultRows)),
		sqlval.NewInt(int64(total)),
	})
	res.Rows = rows
	return nil
}

// exprListText renders expressions as a comma-separated detail string.
func exprListText(exprs []sqlparse.Expr) string {
	if len(exprs) == 0 {
		return ""
	}
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}
