package engine

import (
	"strconv"
	"strings"
	"time"

	"ldv/internal/obs"
	"ldv/internal/sqlparse"
	"ldv/internal/sqlval"
)

// EXPLAIN [ANALYZE]: the execution tree comes back as ordinary result rows
// (op, detail, rows, time_ns), so any client that can run a SELECT can read
// a plan. Plain EXPLAIN renders the planned pipeline without executing or
// locking anything; ANALYZE runs the inner statement with an opCollector
// attached and reports the rows and wall time each operator actually
// produced, discarding the inner statement's own result rows.

// stmtWrites reports whether executing stmt would modify the database — the
// read-only (replica) gate.
func stmtWrites(stmt sqlparse.Statement) bool {
	switch s := stmt.(type) {
	case *sqlparse.Insert, *sqlparse.Update, *sqlparse.Delete,
		*sqlparse.CreateTable, *sqlparse.DropTable:
		return true
	case *sqlparse.Copy:
		return !s.To // COPY ... TO only reads
	case *sqlparse.Explain:
		// Plain EXPLAIN never executes; ANALYZE runs the inner statement.
		return s.Analyze && stmtWrites(s.Stmt)
	}
	return false
}

// opCollector accumulates per-operator execution records for EXPLAIN
// ANALYZE. The nil collector is the common (non-EXPLAIN) case: exec then
// runs the operator with no timing, span, or allocation overhead.
type opCollector struct {
	parent *obs.Span
	recs   []opRecord
}

// opRecord is one executed operator: what it did, the rows it produced, and
// the wall time it took (child operators' time included — records appear in
// completion order, children before parents).
type opRecord struct {
	op     string
	detail string
	rows   int
	ns     int64
}

// exec runs one operator through the collector. f returns the operator's
// output row count; the record is appended after f completes so nested
// operators (e.g. the SELECT feeding an INSERT) list before their parent.
func (oc *opCollector) exec(op, detail string, f func() (int, error)) error {
	if oc == nil {
		_, err := f()
		return err
	}
	t0 := time.Now()
	sp := oc.parent.Child("engine.op." + op)
	defer sp.End()
	n, err := f()
	oc.recs = append(oc.recs, opRecord{op: op, detail: detail, rows: n, ns: int64(time.Since(t0))})
	return err
}

// dropLast discards the most recent record (used when a stage turns out to
// be a no-op, like aggregate over a plain query).
func (oc *opCollector) dropLast() {
	if oc != nil && len(oc.recs) > 0 {
		oc.recs = oc.recs[:len(oc.recs)-1]
	}
}

// execExplainStmt serves EXPLAIN and EXPLAIN ANALYZE.
func (s *Session) execExplainStmt(ex *sqlparse.Explain, opts ExecOptions, res *Result) error {
	res.Columns = []string{"op", "detail", "rows", "time_ns"}
	if !ex.Analyze {
		res.Rows = explainOutline(ex.Stmt)
		return nil
	}

	oc := &opCollector{parent: opts.Span}
	inner := &Result{StmtID: res.StmtID, Start: res.Start, TraceID: res.TraceID}
	t0 := time.Now()
	var err error
	switch st := ex.Stmt.(type) {
	case *sqlparse.Select:
		err = s.execSelectOps(st, opts, inner, oc)
	default:
		err = s.execDMLOps(ex.Stmt, opts, inner, oc)
	}
	total := time.Since(t0)
	if err != nil {
		return err
	}
	res.planNS = inner.planNS
	res.RowsAffected = inner.RowsAffected
	res.CommitSeq = inner.CommitSeq

	rows := make([][]sqlval.Value, 0, len(oc.recs)+1)
	for _, r := range oc.recs {
		rows = append(rows, []sqlval.Value{
			sqlval.NewString(r.op),
			sqlval.NewString(r.detail),
			sqlval.NewInt(int64(r.rows)),
			sqlval.NewInt(r.ns),
		})
	}
	resultRows := len(inner.Rows) + inner.RowsAffected
	rows = append(rows, []sqlval.Value{
		sqlval.NewString("result"),
		sqlval.NewString(""),
		sqlval.NewInt(int64(resultRows)),
		sqlval.NewInt(int64(total)),
	})
	res.Rows = rows
	return nil
}

// explainOutline renders the planned operator pipeline of a statement
// without executing it: rows and time_ns are NULL. The order mirrors the
// executor (exec_select.go's runSelect/project, exec_dml.go).
func explainOutline(stmt sqlparse.Statement) [][]sqlval.Value {
	var rows [][]sqlval.Value
	add := func(op, detail string) {
		rows = append(rows, []sqlval.Value{
			sqlval.NewString(op), sqlval.NewString(detail), sqlval.Null, sqlval.Null,
		})
	}
	switch st := stmt.(type) {
	case *sqlparse.Select:
		outlineSelect(st, add)
	case *sqlparse.Insert:
		if st.Query != nil {
			outlineSelect(st.Query, add)
		}
		add("insert", st.Table)
	case *sqlparse.Update:
		add("scan", st.Table)
		if st.Where != nil {
			add("filter", st.Where.String())
		}
		add("update", st.Table)
	case *sqlparse.Delete:
		add("scan", st.Table)
		if st.Where != nil {
			add("filter", st.Where.String())
		}
		add("delete", st.Table)
	}
	return rows
}

func outlineSelect(s *sqlparse.Select, add func(op, detail string)) {
	if len(s.From) == 0 {
		add("values", "")
	} else {
		add("scan", s.From[0].EffectiveName())
		for _, r := range s.From[1:] {
			add("scan", r.EffectiveName())
			add("hash_join", r.EffectiveName())
		}
		for _, j := range s.Joins {
			add("scan", j.Table.EffectiveName())
			add("hash_join", j.Table.EffectiveName())
		}
	}
	if s.Where != nil {
		add("filter", s.Where.String())
	}
	var aggs []*sqlparse.FuncExpr
	for _, it := range s.Items {
		if it.Expr != nil {
			collectAggregates(it.Expr, &aggs)
		}
	}
	if s.Having != nil {
		collectAggregates(s.Having, &aggs)
	}
	if len(s.GroupBy) > 0 || len(aggs) > 0 {
		add("aggregate", exprListText(s.GroupBy))
	}
	if s.Distinct {
		add("distinct", "")
	}
	if len(s.OrderBy) > 0 {
		keys := make([]sqlparse.Expr, len(s.OrderBy))
		for i, o := range s.OrderBy {
			keys[i] = o.Expr
		}
		add("sort", exprListText(keys))
	}
	if s.Limit >= 0 {
		add("limit", strconv.Itoa(s.Limit))
	}
	add("project", "")
}

// exprListText renders expressions as a comma-separated detail string.
func exprListText(exprs []sqlparse.Expr) string {
	if len(exprs) == 0 {
		return ""
	}
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}
