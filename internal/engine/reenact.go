package engine

import (
	"fmt"
	"sort"
	"strings"

	"ldv/internal/sqlparse"
	"ldv/internal/sqlval"
)

// Transaction reenactment (GProM-style): REENACT TRANSACTION <id> replays a
// committed transaction's recorded statements against the historical
// snapshot the transaction actually read, in an isolated read-only pass.
// Each statement is replayed with the original's parameter bindings under a
// snapshot that additionally exposes the transaction's own earlier writes
// (self-visibility bounded by the statement's start tick), so the replay
// observes exactly the database state the original statement saw. Writes are
// never re-applied — UPDATE/DELETE replay as dry runs that re-derive the
// affected row set and its lineage; INSERT replays its source query (or
// counts its literal rows).
//
// The what-if variant SUBSTITUTE n WITH '<sql>' replaces statement n before
// replay. Substituted statements run against the same recorded state; a
// substituted write's hypothetical effects do not propagate into later
// statements of the replay (later statements still see the original
// history), which keeps the pass read-only.

// execReenact serves REENACT TRANSACTION. One result row per replayed
// statement: its ordinal, the SQL replayed, the statement kind, the row
// count the replay produced, the row count recorded at original execution,
// whether the two match, the replayed result rows (SELECT only), and the
// lineage (input tuple versions) the replay derived.
func (s *Session) execReenact(st *sqlparse.Reenact, opts ExecOptions, res *Result) error {
	db := s.db
	v, err := evalConstExpr(st.Txn, opts.Params)
	if err != nil {
		return fmt.Errorf("REENACT TRANSACTION: %w", err)
	}
	if v.Kind() != sqlval.KindInt || v.Int() <= 0 {
		return fmt.Errorf("REENACT TRANSACTION expects a positive transaction id, got %s", v.String())
	}
	txid := v.Int()
	rec, ok := db.TxnHistory(txid)
	if !ok {
		return fmt.Errorf("no recorded history for transaction %d (history covers committed write transactions above the retention horizon)", txid)
	}
	if h := db.vacuumHorizon.Load(); rec.SnapTS < h {
		mAsOfRejected.Inc()
		return fmt.Errorf("transaction %d read at tick %d, below the vacuum horizon %d: its input versions have been reclaimed", txid, rec.SnapTS, h)
	}
	subs := make(map[int]string, len(st.Subs))
	for _, sub := range st.Subs {
		if sub.Ordinal > len(rec.Stmts) {
			return fmt.Errorf("SUBSTITUTE %d: transaction %d recorded only %d statements", sub.Ordinal, txid, len(rec.Stmts))
		}
		subs[sub.Ordinal] = sub.SQL
	}

	res.Columns = []string{"ordinal", "statement", "kind", "rows", "recorded_rows", "match", "result", "lineage"}
	for i, h := range rec.Stmts {
		ord := i + 1
		sql := h.SQL
		if sub, ok := subs[ord]; ok {
			sql = sub
		}
		stmt, err := timedParse(sql)
		if err != nil {
			return fmt.Errorf("REENACT statement %d: %w", ord, err)
		}

		// The historical cut at the transaction's snapshot tick, widened so
		// the transaction's own writes from statements before this one are
		// visible — the state the original statement executed against.
		snap := db.takeSnapshotAsOf(rec.SnapTS)
		snap.self = rec.TxnID
		snap.selfBound = h.Start

		replay := func(sel *sqlparse.Select) (*Result, error) {
			ec := &stmtCtx{db: db, snap: snap, ws: s.ws, params: h.Params}
			unlock := ec.plan(sel, opts.Span)
			defer unlock()
			inner := &Result{StmtID: db.newStmtID(), Start: rec.SnapTS}
			err := ec.execSelect(sel, ExecOptions{Params: h.Params, WithLineage: true, Proc: opts.Proc}, inner)
			return inner, err
		}

		var rows int
		var resultText, lineageText string
		switch p := stmt.(type) {
		case *sqlparse.Select:
			inner, err := replay(p)
			if err != nil {
				return fmt.Errorf("REENACT statement %d: %w", ord, err)
			}
			rows = len(inner.Rows)
			resultText = renderResultRows(inner.Rows)
			lineageText = renderLineage(inner)
		case *sqlparse.Update:
			inner, err := replay(dryRunSelect(p.Table, p.Where))
			if err != nil {
				return fmt.Errorf("REENACT statement %d: %w", ord, err)
			}
			rows = len(inner.Rows)
			lineageText = renderLineage(inner)
		case *sqlparse.Delete:
			inner, err := replay(dryRunSelect(p.Table, p.Where))
			if err != nil {
				return fmt.Errorf("REENACT statement %d: %w", ord, err)
			}
			rows = len(inner.Rows)
			lineageText = renderLineage(inner)
		case *sqlparse.Insert:
			if p.Query != nil {
				inner, err := replay(p.Query)
				if err != nil {
					return fmt.Errorf("REENACT statement %d: %w", ord, err)
				}
				rows = len(inner.Rows)
				lineageText = renderLineage(inner)
			} else {
				rows = len(p.Rows)
			}
		default:
			return fmt.Errorf("REENACT statement %d: only SELECT, INSERT, UPDATE, DELETE can be replayed, got %T", ord, stmt)
		}

		res.Rows = append(res.Rows, []sqlval.Value{
			sqlval.NewInt(int64(ord)),
			sqlval.NewString(sql),
			sqlval.NewString(stmtKindName(stmt)),
			sqlval.NewInt(int64(rows)),
			sqlval.NewInt(int64(h.Rows)),
			sqlval.NewBool(rows == h.Rows),
			sqlval.NewString(resultText),
			sqlval.NewString(lineageText),
		})
	}
	mReenacts.Inc()
	return nil
}

// dryRunSelect builds the SELECT * equivalent of a write statement's row
// filter — the read-only replay of an UPDATE or DELETE.
func dryRunSelect(table string, where sqlparse.Expr) *sqlparse.Select {
	return &sqlparse.Select{
		Items: []sqlparse.SelectItem{{Star: true}},
		From:  []sqlparse.TableRef{{Name: table}},
		Where: where,
		Limit: -1,
	}
}

// renderResultRows flattens result rows to one deterministic text cell.
func renderResultRows(rows [][]sqlval.Value) string {
	if len(rows) == 0 {
		return ""
	}
	parts := make([]string, len(rows))
	for i, r := range rows {
		cells := make([]string, len(r))
		for j, v := range r {
			cells[j] = v.String()
		}
		parts[i] = "(" + strings.Join(cells, ", ") + ")"
	}
	return strings.Join(parts, "; ")
}

// renderLineage flattens a result's lineage to a sorted, deduplicated list
// of tuple version references.
func renderLineage(res *Result) string {
	seen := map[string]bool{}
	refs := []string{}
	for _, l := range res.Lineage {
		for _, r := range l {
			if s := r.String(); !seen[s] {
				seen[s] = true
				refs = append(refs, s)
			}
		}
	}
	sort.Strings(refs)
	return strings.Join(refs, " ")
}
