package engine

import (
	"sort"
	"time"

	"ldv/internal/obs"
	"ldv/internal/sqlparse"
)

// Statements declare their whole table footprint before touching any data:
// lockTables walks the AST (including every subquery position), resolves the
// names under the catalog lock, and acquires the per-table RWMutexes in
// sorted name order — write mode subsuming read mode. Sorted acquisition
// makes the locking deadlock-free, and the up-front footprint means no lock
// is ever taken inside a scan (table RWMutexes are not reentrant, which
// matters for statements like INSERT INTO t SELECT ... FROM t).

// lockSet is a statement's table footprint.
type lockSet struct {
	reads  map[string]bool
	writes map[string]bool
}

// stmtTables computes the lock set of a statement.
func stmtTables(stmt sqlparse.Statement) lockSet {
	ls := lockSet{reads: map[string]bool{}, writes: map[string]bool{}}
	switch s := stmt.(type) {
	case *sqlparse.Select:
		collectSelectTables(s, &ls)
	case *sqlparse.Insert:
		ls.writes[s.Table] = true
		for _, row := range s.Rows {
			for _, e := range row {
				collectExprTables(e, &ls)
			}
		}
		if s.Query != nil {
			collectSelectTables(s.Query, &ls)
		}
	case *sqlparse.Update:
		ls.writes[s.Table] = true
		collectExprTables(s.Where, &ls)
		for _, a := range s.Set {
			collectExprTables(a.Expr, &ls)
		}
	case *sqlparse.Delete:
		ls.writes[s.Table] = true
		collectExprTables(s.Where, &ls)
	}
	return ls
}

func collectSelectTables(s *sqlparse.Select, ls *lockSet) {
	for _, r := range s.From {
		ls.reads[r.Name] = true
	}
	for _, j := range s.Joins {
		ls.reads[j.Table.Name] = true
		collectExprTables(j.On, ls)
	}
	for _, it := range s.Items {
		collectExprTables(it.Expr, ls)
	}
	collectExprTables(s.Where, ls)
	collectExprTables(s.Having, ls)
	for _, g := range s.GroupBy {
		collectExprTables(g, ls)
	}
	for _, o := range s.OrderBy {
		collectExprTables(o.Expr, ls)
	}
}

func collectExprTables(e sqlparse.Expr, ls *lockSet) {
	switch x := e.(type) {
	case nil:
	case *sqlparse.SubqueryExpr:
		collectSelectTables(x.Query, ls)
	case *sqlparse.ExistsExpr:
		collectSelectTables(x.Query, ls)
	case *sqlparse.InExpr:
		collectExprTables(x.Expr, ls)
		for _, i := range x.List {
			collectExprTables(i, ls)
		}
		if x.Sub != nil {
			collectSelectTables(x.Sub, ls)
		}
	case *sqlparse.BinaryExpr:
		collectExprTables(x.Left, ls)
		collectExprTables(x.Right, ls)
	case *sqlparse.UnaryExpr:
		collectExprTables(x.Expr, ls)
	case *sqlparse.BetweenExpr:
		collectExprTables(x.Expr, ls)
		collectExprTables(x.Lo, ls)
		collectExprTables(x.Hi, ls)
	case *sqlparse.IsNullExpr:
		collectExprTables(x.Expr, ls)
	case *sqlparse.FuncExpr:
		collectExprTables(x.Arg, ls)
	}
}

// lockTables resolves and locks the statement's footprint, filling
// ec.tables, and returns the release function. Names that do not resolve
// are simply absent from the footprint; the executor reports them as
// missing tables when it looks them up.
func (ec *stmtCtx) lockTables(ls lockSet) func() {
	names := make([]string, 0, len(ls.reads)+len(ls.writes))
	for n := range ls.writes {
		names = append(names, n)
	}
	for n := range ls.reads {
		if !ls.writes[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	ec.db.mu.RLock()
	ec.tables = make(map[string]*Table, len(names))
	locked := make([]*Table, 0, len(names))
	writeMode := make([]bool, 0, len(names))
	for _, n := range names {
		if t, ok := ec.db.tables[n]; ok {
			ec.tables[n] = t
			locked = append(locked, t)
			writeMode = append(writeMode, ls.writes[n])
		}
	}
	ec.db.mu.RUnlock()

	t0 := time.Now()
	for i, t := range locked {
		w0 := time.Now()
		// Uncontended acquisitions take the try fast path and are not
		// waits; only actual blocking reaches lockSlow and the lock.table
		// wait event (PostgreSQL's wait-event semantics).
		if writeMode[i] {
			if !t.mu.TryLock() {
				ec.lockSlow(t, true)
			}
		} else {
			if !t.mu.TryRLock() {
				ec.lockSlow(t, false)
			}
		}
		t.lockWaits.Add(1)
		t.lockWaitNS.Add(int64(time.Since(w0)))
	}
	hLockWait.Observe(time.Since(t0))

	return func() {
		for i := len(locked) - 1; i >= 0; i-- {
			if writeMode[i] {
				locked[i].mu.Unlock()
			} else {
				locked[i].mu.RUnlock()
			}
		}
	}
}

// lockSlow blocks on one contended table lock under a published lock.table
// wait, so the stall is visible to the ASH sampler and accumulates into the
// cumulative wait-event stats while it is still in progress.
func (ec *stmtCtx) lockSlow(t *Table, write bool) {
	end := obs.WaitBegin(ec.ws, obs.WaitLockTable)
	defer end()
	if write {
		t.mu.Lock()
	} else {
		t.mu.RLock()
	}
}
