package engine

import (
	"fmt"

	"ldv/internal/sqlparse"
	"ldv/internal/sqlval"
)

// execInsert handles INSERT ... VALUES and INSERT ... SELECT. Produced tuple
// versions are stamped with the executing process and statement so that
// packaging can exclude application-created tuples (§II of the paper).
func (db *DB) execInsert(s *sqlparse.Insert, opts ExecOptions, res *Result) error {
	t, ok := db.tables[s.Table]
	if !ok {
		return fmt.Errorf("table %q does not exist", s.Table)
	}

	// Map the statement's column list onto schema positions.
	colIdx := make([]int, 0, len(t.Schema.Columns))
	if s.Columns == nil {
		for i := range t.Schema.Columns {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, name := range s.Columns {
			i := t.Schema.ColumnIndex(name)
			if i < 0 {
				return fmt.Errorf("table %q has no column %q", s.Table, name)
			}
			colIdx = append(colIdx, i)
		}
	}

	var inputRows [][]sqlval.Value
	if s.Query != nil {
		sub := &Result{StmtID: res.StmtID}
		if err := db.execSelect(s.Query, opts, sub); err != nil {
			return err
		}
		inputRows = sub.Rows
		// INSERT ... SELECT reads the query's lineage (reenactment-style).
		// Accumulate through a set; pairwise merging would be quadratic in
		// the row count.
		if opts.WithLineage {
			seen := map[TupleRef]bool{}
			for _, lin := range sub.Lineage {
				for _, ref := range lin {
					if !seen[ref] {
						seen[ref] = true
						res.ReadRefs = append(res.ReadRefs, ref)
					}
				}
			}
			res.TupleValues = sub.TupleValues
		}
	} else {
		// Resolve subqueries in VALUES expressions, e.g.
		// INSERT INTO t VALUES ((SELECT MAX(a) FROM t) + 1).
		var st *subqueryState
		for _, rowExprs := range s.Rows {
			for _, e := range rowExprs {
				if hasSubqueries(e) {
					st = &subqueryState{db: db, opts: opts, stmtID: res.StmtID}
				}
			}
		}
		emptyEnv := &env{}
		for _, rowExprs := range s.Rows {
			row := make([]sqlval.Value, len(rowExprs))
			for i, e := range rowExprs {
				if st != nil {
					ne, _, err := st.rewriteExpr(e)
					if err != nil {
						return err
					}
					e = ne
				}
				v, err := evalExpr(e, emptyEnv, nil, nil)
				if err != nil {
					return err
				}
				row[i] = v
			}
			inputRows = append(inputRows, row)
		}
		if st != nil {
			db.mergeSubProvenance(st, opts, res)
		}
	}

	for _, in := range inputRows {
		if len(in) != len(colIdx) {
			return fmt.Errorf("INSERT into %q: %d values for %d columns", s.Table, len(in), len(colIdx))
		}
		vals := make([]sqlval.Value, len(t.Schema.Columns))
		for i, slot := range colIdx {
			vals[slot] = in[i]
		}
		db.nextRow++
		r := &storedRow{
			id:      db.nextRow,
			vals:    vals,
			version: db.clock.Tick(),
			proc:    opts.Proc,
			stmt:    res.StmtID,
		}
		if err := t.insertRow(r); err != nil {
			db.nextRow--
			return err
		}
		db.logUndo(db.undoInsert(s.Table, r.id))
		res.WrittenRefs = append(res.WrittenRefs, r.ref(s.Table))
		res.RowsAffected++
	}
	return nil
}

// execUpdate applies an UPDATE. Provenance is captured by reenactment: the
// pre-update tuple versions are recorded (ReadRefs) *before* the
// modification is applied, mirroring GProM's retrieve-then-execute strategy
// (§VII-B of the paper). Each modified row becomes a new version.
func (db *DB) execUpdate(s *sqlparse.Update, opts ExecOptions, res *Result) error {
	t, ok := db.tables[s.Table]
	if !ok {
		return fmt.Errorf("table %q does not exist", s.Table)
	}
	if err := db.resolveDMLSubqueries(&s, opts, res); err != nil {
		return err
	}
	en, matches, err := db.matchRows(t, s.Where)
	if err != nil {
		return err
	}

	// Validate SET column names up front.
	setIdx := make([]int, len(s.Set))
	for i, a := range s.Set {
		idx := t.Schema.ColumnIndex(a.Column)
		if idx < 0 {
			return fmt.Errorf("table %q has no column %q", s.Table, a.Column)
		}
		setIdx[i] = idx
	}

	pk := t.Schema.PrimaryKeyIndex()
	for _, ri := range matches {
		r := t.rows[ri]
		// Reenactment: record the pre-update version, values included,
		// *before* applying the modification — afterwards it no longer
		// exists anywhere.
		if opts.WithLineage {
			ref := r.ref(s.Table)
			res.ReadRefs = append(res.ReadRefs, ref)
			if res.TupleValues == nil {
				res.TupleValues = map[TupleRef][]sqlval.Value{}
			}
			res.TupleValues[ref] = append([]sqlval.Value(nil), r.vals...)
			r.usedBy = res.StmtID
		}
		newVals := append([]sqlval.Value(nil), r.vals...)
		envVals := rowEnvVals(r, len(t.Schema.Columns))
		for i, a := range s.Set {
			v, err := evalExpr(a.Expr, en, envVals, nil)
			if err != nil {
				return err
			}
			v, err = checkValue(t.Schema.Columns[setIdx[i]], v)
			if err != nil {
				return err
			}
			newVals[setIdx[i]] = v
		}
		if pk >= 0 && !newVals[pk].Equal(r.vals[pk]) {
			newKey := newVals[pk].GroupKey()
			if other, dup := t.pkIndex[newKey]; dup && other != ri {
				return fmt.Errorf("table %s: duplicate primary key %s", s.Table, newVals[pk])
			}
			delete(t.pkIndex, r.vals[pk].GroupKey())
			t.pkIndex[newKey] = ri
		}
		db.logUndo(db.undoUpdate(s.Table, r, *r))
		r.vals = newVals
		r.version = db.clock.Tick()
		r.proc = opts.Proc
		r.stmt = res.StmtID
		res.WrittenRefs = append(res.WrittenRefs, r.ref(s.Table))
		res.RowsAffected++
	}
	return nil
}

// execDelete removes matching rows, recording the deleted versions as reads
// (a delete's provenance is the tuples it consumed).
func (db *DB) execDelete(s *sqlparse.Delete, opts ExecOptions, res *Result) error {
	t, ok := db.tables[s.Table]
	if !ok {
		return fmt.Errorf("table %q does not exist", s.Table)
	}
	if err := db.resolveDeleteSubqueries(&s, opts, res); err != nil {
		return err
	}
	_, matches, err := db.matchRows(t, s.Where)
	if err != nil {
		return err
	}
	// Delete from highest index down so earlier indices stay valid under the
	// swap-with-last strategy.
	for i := len(matches) - 1; i >= 0; i-- {
		ri := matches[i]
		r := t.rows[ri]
		if opts.WithLineage {
			ref := r.ref(s.Table)
			res.ReadRefs = append(res.ReadRefs, ref)
			if res.TupleValues == nil {
				res.TupleValues = map[TupleRef][]sqlval.Value{}
			}
			res.TupleValues[ref] = append([]sqlval.Value(nil), r.vals...)
		}
		db.logUndo(db.undoDelete(s.Table, r))
		t.deleteAt(ri)
		res.RowsAffected++
	}
	return nil
}

// matchRows evaluates a WHERE clause over a single table and returns the
// matching row indices in ascending order, plus the evaluation env.
func (db *DB) matchRows(t *Table, where sqlparse.Expr) (*env, []int, error) {
	en := &env{}
	for _, c := range t.Schema.Columns {
		en.bindings = append(en.bindings, binding{table: t.Name, name: c.Name})
	}
	for _, pc := range []string{ColProvRowID, ColProvV, ColProvP, ColProvUsedBy} {
		en.bindings = append(en.bindings, binding{table: t.Name, name: pc})
	}
	var matches []int
	for i, r := range t.rows {
		if where != nil {
			v, err := evalExpr(where, en, rowEnvVals(r, len(t.Schema.Columns)), nil)
			if err != nil {
				return nil, nil, err
			}
			if !isTrue(v) {
				continue
			}
		}
		matches = append(matches, i)
	}
	return en, matches, nil
}

// rowEnvVals lays out a stored row as executor values including the hidden
// provenance attributes.
func rowEnvVals(r *storedRow, ncols int) []sqlval.Value {
	vals := make([]sqlval.Value, ncols+4)
	copy(vals, r.vals)
	vals[ncols] = sqlval.NewInt(int64(r.id))
	vals[ncols+1] = sqlval.NewInt(int64(r.version))
	vals[ncols+2] = sqlval.NewString(r.proc)
	vals[ncols+3] = sqlval.NewInt(r.usedBy)
	return vals
}
