package engine

import (
	"fmt"

	"ldv/internal/plan"
	"ldv/internal/sqlparse"
	"ldv/internal/sqlval"
)

// The write path always runs inside a transaction (the session wraps
// auto-commit DML in an implicit one) while holding the target table's write
// lock. Writes read the *current committed* state rather than the snapshot —
// first-updater-wins: a row already modified by a concurrent uncommitted
// transaction raises a serialization error instead of silently producing a
// lost update.

// execInsert handles INSERT ... VALUES and INSERT ... SELECT. Produced tuple
// versions are stamped with the executing process and statement so that
// packaging can exclude application-created tuples (§II of the paper).
func (ec *stmtCtx) execInsert(s *sqlparse.Insert, opts ExecOptions, res *Result) error {
	t, err := ec.table(s.Table)
	if err != nil {
		return err
	}

	// Map the statement's column list onto schema positions.
	colIdx := make([]int, 0, len(t.Schema.Columns))
	if s.Columns == nil {
		for i := range t.Schema.Columns {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, name := range s.Columns {
			i := t.Schema.ColumnIndex(name)
			if i < 0 {
				return fmt.Errorf("table %q has no column %q", s.Table, name)
			}
			colIdx = append(colIdx, i)
		}
	}

	var inputRows [][]sqlval.Value
	if s.Query != nil {
		sub := &Result{StmtID: res.StmtID}
		if err := ec.execSelect(s.Query, opts, sub); err != nil {
			return err
		}
		inputRows = sub.Rows
		// INSERT ... SELECT reads the query's lineage (reenactment-style).
		// Accumulate through a set; pairwise merging would be quadratic in
		// the row count.
		if opts.WithLineage {
			seen := map[TupleRef]bool{}
			for _, lin := range sub.Lineage {
				for _, ref := range lin {
					if !seen[ref] {
						seen[ref] = true
						res.ReadRefs = append(res.ReadRefs, ref)
					}
				}
			}
			res.TupleValues = sub.TupleValues
		}
	} else {
		// Resolve subqueries in VALUES expressions, e.g.
		// INSERT INTO t VALUES ((SELECT MAX(a) FROM t) + 1).
		var st *subqueryState
		for _, rowExprs := range s.Rows {
			for _, e := range rowExprs {
				if hasSubqueries(e) {
					st = &subqueryState{ec: ec, opts: opts, stmtID: res.StmtID}
				}
			}
		}
		emptyEnv := &env{params: ec.params}
		for _, rowExprs := range s.Rows {
			row := make([]sqlval.Value, len(rowExprs))
			for i, e := range rowExprs {
				if st != nil {
					ne, _, err := st.rewriteExpr(e)
					if err != nil {
						return err
					}
					e = ne
				}
				v, err := evalExpr(e, emptyEnv, nil, nil)
				if err != nil {
					return err
				}
				row[i] = v
			}
			inputRows = append(inputRows, row)
		}
		if st != nil {
			mergeSubProvenance(st, opts, res)
		}
	}

	for _, in := range inputRows {
		if len(in) != len(colIdx) {
			return fmt.Errorf("INSERT into %q: %d values for %d columns", s.Table, len(in), len(colIdx))
		}
		vals := make([]sqlval.Value, len(t.Schema.Columns))
		for i, slot := range colIdx {
			vals[slot] = in[i]
		}
		r := &storedRow{
			id:      ec.db.newRowID(),
			vals:    vals,
			version: ec.db.clock.Tick(),
			proc:    opts.Proc,
			stmt:    res.StmtID,
			txnID:   ec.txn.id,
		}
		if err := t.insertRow(r); err != nil {
			return err
		}
		ec.txn.logUndo(t, undoInsert(t, r))
		ec.txn.logRedo(redoInsertEntry(s.Table, r))
		res.WrittenRefs = append(res.WrittenRefs, r.ref(s.Table))
		res.RowsAffected++
	}
	return nil
}

// redoInsertEntry captures a freshly inserted version's immutable fields
// for the transaction's WAL record.
func redoInsertEntry(table string, r *storedRow) redoEntry {
	return redoEntry{
		kind: walInsert, table: table,
		id: r.id, version: r.version, proc: r.proc, stmt: r.stmt, vals: r.vals,
	}
}

// execUpdate applies an UPDATE. Provenance is captured by reenactment: the
// pre-update tuple versions are recorded (ReadRefs) *before* the
// modification is applied, mirroring GProM's retrieve-then-execute strategy
// (§VII-B of the paper). Each modified row version is end-marked and a
// successor version appended.
func (ec *stmtCtx) execUpdate(s *sqlparse.Update, opts ExecOptions, res *Result) error {
	t, err := ec.table(s.Table)
	if err != nil {
		return err
	}
	if err := ec.resolveDMLSubqueries(&s, opts, res); err != nil {
		return err
	}
	en, matches, err := ec.matchRows(t, s.Where)
	if err != nil {
		return err
	}

	// Validate SET column names up front.
	setIdx := make([]int, len(s.Set))
	for i, a := range s.Set {
		idx := t.Schema.ColumnIndex(a.Column)
		if idx < 0 {
			return fmt.Errorf("table %q has no column %q", s.Table, a.Column)
		}
		setIdx[i] = idx
	}

	pk := t.Schema.PrimaryKeyIndex()
	for _, r := range matches {
		// Reenactment: record the pre-update version, values included,
		// *before* applying the modification — it stays addressable as a
		// superseded version but its role here is the statement's input.
		if opts.WithLineage {
			ref := r.ref(s.Table)
			res.ReadRefs = append(res.ReadRefs, ref)
			if res.TupleValues == nil {
				res.TupleValues = map[TupleRef][]sqlval.Value{}
			}
			res.TupleValues[ref] = append([]sqlval.Value(nil), r.vals...)
			r.usedBy.Store(res.StmtID)
		}
		newVals := append([]sqlval.Value(nil), r.vals...)
		envVals := rowEnvVals(r, len(t.Schema.Columns))
		for i, a := range s.Set {
			v, err := evalExpr(a.Expr, en, envVals, nil)
			if err != nil {
				return err
			}
			v, err = checkValue(t.Schema.Columns[setIdx[i]], v)
			if err != nil {
				return err
			}
			newVals[setIdx[i]] = v
		}
		nv := &storedRow{
			id:      r.id,
			vals:    newVals,
			version: ec.db.clock.Tick(),
			proc:    opts.Proc,
			stmt:    res.StmtID,
			txnID:   ec.txn.id,
		}
		// Keep the pk index pointing at the live latest version; all checks
		// precede any mutation so an error leaves this row untouched.
		if pk >= 0 {
			oldKey := r.vals[pk].GroupKey()
			newKey := newVals[pk].GroupKey()
			if newKey != oldKey {
				if _, dup := t.pkIndex[newKey]; dup {
					return fmt.Errorf("table %s: duplicate primary key %s", s.Table, newVals[pk])
				}
				delete(t.pkIndex, oldKey)
			}
			t.pkIndex[newKey] = nv
		}
		r.end = nv.version
		r.endTxn = ec.txn.id
		t.liveRows.Add(-1)
		t.deadVersions.Add(1)
		t.rows = append(t.rows, nv)
		t.indexInsert(nv)
		t.versions.Add(1)
		t.liveRows.Add(1)
		ec.txn.logUndo(t, undoUpdate(t, r, nv))
		ec.txn.logRedo(redoEntry{kind: walEnd, table: s.Table, id: r.id, version: r.version, end: r.end})
		ec.txn.logRedo(redoInsertEntry(s.Table, nv))
		res.WrittenRefs = append(res.WrittenRefs, nv.ref(s.Table))
		res.RowsAffected++
	}
	return nil
}

// execDelete end-marks matching row versions, recording them as reads (a
// delete's provenance is the tuples it consumed).
func (ec *stmtCtx) execDelete(s *sqlparse.Delete, opts ExecOptions, res *Result) error {
	t, err := ec.table(s.Table)
	if err != nil {
		return err
	}
	if err := ec.resolveDeleteSubqueries(&s, opts, res); err != nil {
		return err
	}
	_, matches, err := ec.matchRows(t, s.Where)
	if err != nil {
		return err
	}
	pk := t.Schema.PrimaryKeyIndex()
	for _, r := range matches {
		if opts.WithLineage {
			ref := r.ref(s.Table)
			res.ReadRefs = append(res.ReadRefs, ref)
			if res.TupleValues == nil {
				res.TupleValues = map[TupleRef][]sqlval.Value{}
			}
			res.TupleValues[ref] = append([]sqlval.Value(nil), r.vals...)
		}
		r.end = ec.db.clock.Tick()
		r.endTxn = ec.txn.id
		t.liveRows.Add(-1)
		t.deadVersions.Add(1)
		if pk >= 0 {
			key := r.vals[pk].GroupKey()
			if t.pkIndex[key] == r {
				delete(t.pkIndex, key)
			}
		}
		ec.txn.logUndo(t, undoDelete(t, r))
		ec.txn.logRedo(redoEntry{kind: walEnd, table: s.Table, id: r.id, version: r.version, end: r.end})
		res.RowsAffected++
	}
	return nil
}

// matchRows evaluates a WHERE clause over the current committed state of a
// table (plus the transaction's own writes) and returns the matching live
// versions. A matching row end-marked by a concurrent uncommitted
// transaction is a write-write conflict: first-updater-wins, the later
// writer errors out.
//
// The access path comes from the planner: when an index predicate applies,
// only the candidate versions in the matching buckets are considered.
// Because an index holds *every* version carrying a key (end-marked ones
// included) and the full WHERE clause is still evaluated on each candidate,
// both the match set and the conflict detection are exactly what a full
// scan would produce.
func (ec *stmtCtx) matchRows(t *Table, where sqlparse.Expr) (*env, []*storedRow, error) {
	en := &env{params: ec.params}
	for _, c := range t.Schema.Columns {
		en.bindings = append(en.bindings, binding{table: t.Name, name: c.Name})
	}
	for _, pc := range []string{ColProvRowID, ColProvV, ColProvP, ColProvUsedBy} {
		en.bindings = append(en.bindings, binding{table: t.Name, name: pc})
	}

	access, est := plan.PlanAccess(stmtCatalog{ec}, t.Name, where)
	leaf := access
	if f, ok := leaf.(*plan.FilterNode); ok {
		leaf = f.Input
	}
	candidates := t.rows
	if isn, ok := leaf.(*plan.IndexScanNode); ok {
		if ix := t.findIndex(isn.Index); ix != nil {
			var cand []*storedRow
			_ = ec.ops.execEst("index_scan", isn.Detail(), isn.Est, func() (int, error) {
				cand = indexCandidates(ix, isn, ec.params)
				return len(cand), nil
			})
			ix.scans.Add(1)
			candidates = cand
		}
	} else if sn, ok := leaf.(*plan.ScanNode); ok {
		_ = ec.ops.execEst("scan", sn.Detail(), sn.Est, func() (int, error) {
			return len(t.rows), nil
		})
	}
	mRowsScanned.Add(int64(len(candidates)))

	self := ec.txn.id
	var matches []*storedRow
	match := func() error {
		for _, r := range candidates {
			if r.txnID != self && ec.db.txnActive(r.txnID) {
				continue // uncommitted insert of another transaction
			}
			conflict := false
			if r.end != 0 {
				if r.endTxn == self || !ec.db.txnActive(r.endTxn) {
					continue // superseded/deleted by self or by a committed txn
				}
				conflict = true // end-marked by a concurrent uncommitted txn
			}
			if where != nil {
				v, err := evalExpr(where, en, rowEnvVals(r, len(t.Schema.Columns)), nil)
				if err != nil {
					return err
				}
				if !isTrue(v) {
					continue
				}
			}
			if conflict {
				return fmt.Errorf("could not serialize access due to concurrent update on table %s", t.Name)
			}
			matches = append(matches, r)
		}
		return nil
	}
	if where != nil {
		if err := ec.ops.execEst("filter", where.String(), est, func() (int, error) {
			return len(matches), match()
		}); err != nil {
			return nil, nil, err
		}
	} else if err := match(); err != nil {
		return nil, nil, err
	}
	return en, matches, nil
}

// rowEnvVals lays out a stored row as executor values including the hidden
// provenance attributes.
func rowEnvVals(r *storedRow, ncols int) []sqlval.Value {
	vals := make([]sqlval.Value, ncols+4)
	copy(vals, r.vals)
	vals[ncols] = sqlval.NewInt(int64(r.id))
	vals[ncols+1] = sqlval.NewInt(int64(r.version))
	vals[ncols+2] = sqlval.NewString(r.proc)
	vals[ncols+3] = sqlval.NewInt(r.usedBy.Load())
	return vals
}
