package engine

import (
	"fmt"
	"path"
	"time"
)

// Crash recovery: load the latest checkpoint, replay the WAL tail over it,
// drop the torn suffix a crash may have left, and re-attach the log for new
// commits. Replay is idempotent — an entry whose effect is already present
// (because a table file written mid-checkpoint is newer than the record) is
// skipped — which is what makes the checkpoint protocol safe without any
// cross-file atomicity: a crash anywhere during Checkpoint leaves a mix of
// old and new table files plus a log that covers at least everything the
// old files miss.

// RecoveryStats reports what Recover found and did.
type RecoveryStats struct {
	Tables          int   // tables loaded from the checkpoint
	ReplayedTxns    int   // WAL records applied
	ReplayedEntries int   // redo entries applied (skipped ones included)
	WALBytes        int64 // valid log bytes scanned
	TornBytes       int64 // trailing bytes discarded as torn/corrupt
}

// ClockAdvancer is implemented by clocks that can jump forward. Recovery
// uses it to push the logical clock past every timestamp the restored state
// carries, so new ticks never collide with (or sort before) recovered
// versions and end marks.
type ClockAdvancer interface {
	// AdvanceTo moves the clock to at least t.
	AdvanceTo(t uint64)
}

// AdvanceTo implements ClockAdvancer for the default counter clock.
func (c *counterClock) AdvanceTo(t uint64) {
	for {
		cur := c.t.Load()
		if cur >= t || c.t.CompareAndSwap(cur, t) {
			return
		}
	}
}

// Recover restores the database from dir: it loads the checkpointed table
// files, replays every intact WAL record after them, truncates any torn log
// tail, advances the id generators and the logical clock past the restored
// state, and attaches the WAL so subsequent commits are logged. It must run
// on a quiescent DB (no open sessions) — the boot path.
func (db *DB) Recover(fs FileSystem, dir string) (RecoveryStats, error) {
	var st RecoveryStats
	t0 := time.Now()
	if err := fs.MkdirAll(dir); err != nil {
		return st, fmt.Errorf("recover: %w", err)
	}
	if err := db.LoadDir(fs, dir); err != nil {
		return st, fmt.Errorf("recover: %w", err)
	}
	st.Tables = len(db.TableNames())

	walPath := path.Join(dir, WALFileName)
	data, err := fs.ReadFile(walPath)
	if err != nil {
		// No log yet: first boot. Create an empty one so appends have a
		// well-formed file to extend.
		data = []byte(walMagic)
		if werr := fs.WriteFile(walPath, data); werr != nil {
			return st, fmt.Errorf("recover: create wal: %w", werr)
		}
	}

	idx := newReplayIndex(db)
	var recHorizon, maxTick uint64
	var seq uint64
	valid, err := scanWAL(data, func(payload []byte) error {
		txnID, entries, derr := decodeWALTxn(payload)
		if derr != nil {
			return derr
		}
		seq++
		for _, e := range entries {
			switch e.kind {
			case walVacuum:
				// Track the highest logged horizon; the prune itself re-runs
				// after replay settles the final version set (idempotent).
				if e.version > recHorizon {
					recHorizon = e.version
				}
				if e.version > maxTick {
					maxTick = e.version
				}
			case walStmt:
				db.recordRecoveredStmt(txnID, e, seq)
				if e.end > maxTick {
					maxTick = e.end
				}
			default:
				if aerr := db.applyRedo(idx, e); aerr != nil {
					return aerr
				}
			}
			st.ReplayedEntries++
		}
		st.ReplayedTxns++
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("recover: replay: %w", err)
	}
	st.WALBytes = valid
	st.TornBytes = int64(len(data)) - valid
	if st.TornBytes > 0 {
		// Drop the torn tail before re-opening for append: records written
		// after a tear would be unreachable to the next recovery.
		data = data[:valid]
		if err := fs.WriteFile(walPath, data); err != nil {
			return st, fmt.Errorf("recover: truncate torn tail: %w", err)
		}
	}

	db.finishRecovery()
	if adv, ok := db.clock.(ClockAdvancer); ok {
		adv.AdvanceTo(maxTick)
	}
	if recHorizon > 0 {
		// Re-establish the retention floor and re-apply the prune: a crash
		// mid-vacuum may have left versions below the logged horizon.
		db.vacuumHorizon.Store(recHorizon)
		db.pruneVersions(recHorizon)
		db.pruneMetaBelow(recHorizon)
	}
	mRecoveredTxns.Add(int64(st.ReplayedTxns))
	hRecoveryNS.Observe(time.Since(t0))
	db.SetWAL(openWAL(fs, dir, data))
	return st, nil
}

// EnableWAL attaches a write-ahead log under dir without restoring any
// state — the fresh-database path (Recover subsumes it on reboots).
func (db *DB) EnableWAL(fs FileSystem, dir string) error {
	if err := fs.MkdirAll(dir); err != nil {
		return fmt.Errorf("enable wal: %w", err)
	}
	walPath := path.Join(dir, WALFileName)
	data, err := fs.ReadFile(walPath)
	if err != nil {
		data = []byte(walMagic)
		if werr := fs.WriteFile(walPath, data); werr != nil {
			return fmt.Errorf("enable wal: %w", werr)
		}
	} else if _, serr := scanWAL(data, nil); serr != nil {
		return fmt.Errorf("enable wal: %w", serr)
	}
	db.SetWAL(openWAL(fs, dir, data))
	return nil
}

// SetWAL attaches (or detaches, with nil) the log every subsequent commit
// writes through. Boot-time only with respect to in-flight commits.
func (db *DB) SetWAL(w *WAL) {
	db.commitMu.Lock()
	db.wal = w
	db.commitMu.Unlock()
}

// WAL returns the attached log, or nil.
func (db *DB) WAL() *WAL {
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	return db.wal
}

// replayIndex accelerates idempotency checks: per table, every stored
// version keyed by (row id, version). Built lazily per table — recovery of
// a short log over a large checkpoint should not index untouched tables.
type replayIndex struct {
	db     *DB
	tables map[string]map[TupleRef]*storedRow
}

func newReplayIndex(db *DB) *replayIndex {
	return &replayIndex{db: db, tables: map[string]map[TupleRef]*storedRow{}}
}

func (ix *replayIndex) forTable(t *Table) map[TupleRef]*storedRow {
	m, ok := ix.tables[t.Name]
	if !ok {
		m = make(map[TupleRef]*storedRow, len(t.rows))
		for _, r := range t.rows {
			m[TupleRef{Row: r.id, Version: r.version}] = r
		}
		ix.tables[t.Name] = m
	}
	return m
}

// applyRedo applies one redo entry to the quiescent database. Inserts and
// end marks skip work already present; DDL skips already-done operations.
// Primary-key indexes are not maintained here — finishRecovery rebuilds
// them once the final live set is known, because replaying over a
// mid-checkpoint mix can transiently hold two versions of one key.
func (db *DB) applyRedo(ix *replayIndex, e redoEntry) error {
	switch e.kind {
	case walCreate, walDrop, walCreateIndex, walDropIndex:
		// Replayed DDL changes the catalog like executed DDL does:
		// invalidate any plans cached against the old shape.
		db.bumpDDLEpoch()
	}
	switch e.kind {
	case walCreate:
		if _, err := db.lookupTable(e.table); err == nil {
			return nil // already present (newer checkpoint or rerun)
		}
		db.mu.Lock()
		db.tables[e.table] = newTable(e.table, e.schema)
		db.mu.Unlock()
		return nil
	case walDrop:
		db.mu.Lock()
		delete(db.tables, e.table)
		db.mu.Unlock()
		delete(ix.tables, e.table)
		return nil
	case walInsert:
		t, err := db.lookupTable(e.table)
		if err != nil {
			return fmt.Errorf("wal replay: insert into %q: %w", e.table, err)
		}
		m := ix.forTable(t)
		key := TupleRef{Row: e.id, Version: e.version}
		if _, exists := m[key]; exists {
			return nil // checkpoint already holds this version
		}
		if len(e.vals) != len(t.Schema.Columns) {
			return fmt.Errorf("wal replay: table %s: row has %d values, schema has %d columns",
				t.Name, len(e.vals), len(t.Schema.Columns))
		}
		r := &storedRow{id: e.id, vals: e.vals, version: e.version, proc: e.proc, stmt: e.stmt}
		t.rows = append(t.rows, r)
		t.versions.Add(1)
		t.liveRows.Add(1)
		m[key] = r
		return nil
	case walCreateIndex:
		t, err := db.lookupTable(e.table)
		if err != nil {
			return fmt.Errorf("wal replay: create index on %q: %w", e.table, err)
		}
		if t.findIndex(e.idxName) != nil {
			return nil // already present (newer checkpoint or rerun)
		}
		pos := t.Schema.ColumnIndex(e.idxCol)
		if pos < 0 {
			return fmt.Errorf("wal replay: index %q: table %q has no column %q", e.idxName, e.table, e.idxCol)
		}
		// Register the definition only; finishRecovery builds the contents
		// once replay has settled the final version set.
		t.addIndex(newTableIndex(e.idxName, e.idxCol, pos, e.idxKind))
		return nil
	case walDropIndex:
		t, err := db.lookupTable(e.table)
		if err != nil {
			return nil // table itself dropped later in the log or before the checkpoint
		}
		t.removeIndex(e.idxName)
		return nil
	case walEnd:
		t, err := db.lookupTable(e.table)
		if err != nil {
			return fmt.Errorf("wal replay: end mark on %q: %w", e.table, err)
		}
		if r, ok := ix.forTable(t)[TupleRef{Row: e.id, Version: e.version}]; ok && r.end == 0 {
			r.end = e.end
			t.liveRows.Add(-1)
			t.deadVersions.Add(1)
		}
		// A missing version is fine: the checkpoint may already exclude it
		// (superseded versions are not checkpointed).
		return nil
	}
	return fmt.Errorf("wal replay: unknown redo kind %d", e.kind)
}

// finishRecovery rebuilds every primary-key index from the live versions
// and advances the row/statement/clock generators past everything the
// restored state references.
func (db *DB) finishRecovery() {
	var maxTS uint64
	var maxStmt int64
	db.mu.RLock()
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.mu.RUnlock()
	for _, t := range tables {
		if t.pkIndex != nil {
			t.pkIndex = make(map[string]*storedRow, len(t.rows))
		}
		pk := t.Schema.PrimaryKeyIndex()
		for _, r := range t.rows {
			if r.version > maxTS {
				maxTS = r.version
			}
			if r.end > maxTS {
				maxTS = r.end
			}
			if r.stmt > maxStmt {
				maxStmt = r.stmt
			}
			for {
				cur := db.nextRow.Load()
				if uint64(r.id) <= cur || db.nextRow.CompareAndSwap(cur, uint64(r.id)) {
					break
				}
			}
			if pk >= 0 && r.end == 0 {
				t.pkIndex[r.vals[pk].GroupKey()] = r
			}
		}
		// WAL replay appends raw rows without touching secondary indexes;
		// rebuild them now that the final version set is known.
		t.rebuildIndexes()
	}
	for {
		cur := db.nextStmt.Load()
		if maxStmt <= cur || db.nextStmt.CompareAndSwap(cur, maxStmt) {
			break
		}
	}
	if adv, ok := db.clock.(ClockAdvancer); ok {
		adv.AdvanceTo(maxTS)
	}
}
